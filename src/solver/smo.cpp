#include "casvm/solver/smo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "casvm/kernel/row_cache.hpp"
#include "casvm/obs/trace.hpp"
#include "casvm/support/error.hpp"
#include "casvm/support/timer.hpp"

namespace casvm::solver {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEtaFloor = 1e-12;

/// Relative slack treating alphas within eps of a box bound as *at* the
/// bound. Without this, an alpha at C - 1e-17 keeps its sample in the high
/// set while leaving the two-variable step no room to move, and the solver
/// spins on an unmovable pair.
constexpr double kBoundSlack = 1e-10;

/// Membership in the high set: can f_i still decrease the upper threshold?
inline bool inHighSet(std::int8_t y, double alpha, double ci, double eps) {
  return (y == 1 && alpha < ci - eps) || (y == -1 && alpha > eps);
}

/// Membership in the low set: mirror condition for the lower threshold.
inline bool inLowSet(std::int8_t y, double alpha, double ci, double eps) {
  return (y == 1 && alpha > eps) || (y == -1 && alpha < ci - eps);
}

}  // namespace

SmoSolver::SmoSolver(SolverOptions options) : options_(options) {
  CASVM_CHECK(options_.C > 0.0, "C must be positive");
  CASVM_CHECK(options_.tolerance > 0.0, "tolerance must be positive");
  CASVM_CHECK(options_.positiveWeight > 0.0 && options_.negativeWeight > 0.0,
              "class weights must be positive");
  CASVM_CHECK(options_.shrinkInterval > 0, "shrink interval must be positive");
  CASVM_CHECK(options_.trace == nullptr || options_.traceInterval > 0,
              "trace interval must be positive");
  CASVM_CHECK(!options_.snapshotSink || options_.snapshotInterval > 0,
              "snapshot interval must be positive when a sink is set");
}

SolverResult SmoSolver::solve(const data::Dataset& ds,
                              std::span<const double> initialAlpha) const {
  const std::size_t m = ds.rows();
  CASVM_CHECK(m >= 2, "SMO needs at least two samples");
  CASVM_CHECK(initialAlpha.empty() || initialAlpha.size() == m,
              "initial alpha must match sample count");
  // A single-class subproblem cannot satisfy the equality constraint with a
  // separating solution; callers partitioning data must guard against it.
  CASVM_CHECK(ds.positives() > 0 && ds.negatives() > 0,
              "SMO needs samples of both classes");

  WallTimer timer;
  // CPU-clock origin for trace progress timestamps: relative CPU time maps
  // onto the caller's timeline via traceTimeOffset (see SolverOptions).
  const double traceCpuStart =
      options_.trace != nullptr ? threadCpuSeconds() : 0.0;
  const double cPos = options_.C * options_.positiveWeight;
  const double cNeg = options_.C * options_.negativeWeight;
  const double boundEps = kBoundSlack * std::max(cPos, cNeg);
  const double tau = options_.tolerance;
  const kernel::Kernel kern(options_.kernel);
  // Row producer: the exact kernel unless the caller supplied a source
  // (e.g. the Nyström low-rank factor). The cache and the diagonal both
  // come from the same source, so selection and the two-variable step see
  // one consistent (approximate or exact) kernel matrix.
  kernel::ExactRowSource exactSource(kern, ds);
  kernel::RowSource* src =
      options_.rowSource != nullptr ? options_.rowSource : &exactSource;
  CASVM_CHECK(src->rows() == m,
              "solver row source does not match the dataset row count");
  kernel::RowCache cache(*src, options_.cacheBytes);

  // Kernel diagonal, computed once. The second-order working-set selection
  // reads K_jj for every candidate on every iteration; without this it
  // costs a full dot product each time.
  std::vector<double> diag(m);
  src->fillDiagonal(diag);

  auto boxOf = [&](std::size_t i) {
    return ds.label(i) == 1 ? cPos : cNeg;
  };

  std::vector<double> alpha(m, 0.0);
  std::vector<double> f(m);

  if (options_.resumeFrom != nullptr) {
    // Mid-stream resume: every piece of iteration state is restored
    // verbatim. In particular f is NOT reconstructed from alpha — the
    // reconstruction sums kernel rows in a different order than the
    // incremental updates that produced the snapshot, so its rounding
    // would diverge bitwise from the uninterrupted run.
    const SolverSnapshot& snap = *options_.resumeFrom;
    CASVM_CHECK(snap.alpha.size() == m && snap.f.size() == m,
                "solver resume: snapshot row count does not match dataset");
    CASVM_CHECK(!snap.active.empty() && snap.active.size() <= m,
                "solver resume: invalid active set");
    for (std::size_t i : snap.active) {
      CASVM_CHECK(i < m, "solver resume: active index out of range");
    }
    alpha = snap.alpha;
    f = snap.f;
  } else if (initialAlpha.empty()) {
    // f_i = -y_i when alpha == 0 (eqn. 4).
    for (std::size_t i = 0; i < m; ++i) f[i] = -double(ds.label(i));
  } else {
    for (std::size_t i = 0; i < m; ++i) {
      alpha[i] = std::clamp(initialAlpha[i], 0.0, boxOf(i));
    }
    // Full gradient reconstruction: one kernel row per nonzero alpha.
    for (std::size_t i = 0; i < m; ++i) f[i] = -double(ds.label(i));
    for (std::size_t j = 0; j < m; ++j) {
      if (alpha[j] == 0.0) continue;
      const double coef = alpha[j] * double(ds.label(j));
      const std::span<const double> kj = cache.row(j);
      for (std::size_t i = 0; i < m; ++i) f[i] += coef * kj[i];
    }
  }

  const std::size_t maxIters =
      options_.maxIterations > 0 ? options_.maxIterations : 100 * m + 10000;

  // Active working set: all samples initially; shrinking trims it.
  std::vector<std::size_t> active(m);
  std::iota(active.begin(), active.end(), 0);
  bool everShrunk = false;
  std::size_t startIter = 0;
  if (options_.resumeFrom != nullptr) {
    active = options_.resumeFrom->active;
    everShrunk = options_.resumeFrom->everShrunk;
    startIter = options_.resumeFrom->iteration;
  }

  // Kernel row fetch for the current iteration: while shrunk, evicted-row
  // refills only compute the active entries (the gradient update and the
  // selection scans never read outside the active set).
  auto fetchRow = [&](std::size_t i) {
    return active.size() < m
               ? cache.row(i, std::span<const std::size_t>(active))
               : cache.row(i);
  };

  // Rebuild f entries of shrunk-out samples from the nonzero alphas, then
  // reactivate everything. Called before convergence can be declared.
  auto unshrink = [&] {
    if (active.size() == m) return;
    // The active set is about to grow back to the full problem: partial
    // row fills from this shrink phase must not serve later full reads.
    cache.invalidatePartial();
    std::vector<bool> isActive(m, false);
    for (std::size_t i : active) isActive[i] = true;
    for (std::size_t i = 0; i < m; ++i) {
      if (!isActive[i]) f[i] = -double(ds.label(i));
    }
    for (std::size_t j = 0; j < m; ++j) {
      if (alpha[j] == 0.0) continue;
      const double coef = alpha[j] * double(ds.label(j));
      const std::span<const double> kj = cache.row(j);
      for (std::size_t i = 0; i < m; ++i) {
        if (!isActive[i]) f[i] += coef * kj[i];
      }
    }
    active.resize(m);
    std::iota(active.begin(), active.end(), 0);
  };

  std::size_t iter = startIter;
  bool converged = false;
  bool degenerateRetried = false;
  double bHigh = 0.0, bLow = 0.0;

  for (; iter < maxIters; ++iter) {
    // Snapshot hand-off, at the top of the iteration before any of its
    // state mutates — restoring here and continuing replays the run
    // bitwise. Skipped at the resume iteration itself (that snapshot is
    // already durable) and at iteration 0 (nothing to save yet).
    if (options_.snapshotSink && options_.snapshotInterval > 0 &&
        iter != 0 && iter != startIter &&
        iter % options_.snapshotInterval == 0) {
      SolverSnapshot snap;
      snap.iteration = iter;
      snap.everShrunk = everShrunk;
      snap.alpha = alpha;
      snap.f = f;
      snap.active = active;
      options_.snapshotSink(snap);
    }

    // Working-set selection: the maximal violating pair over the active set.
    std::size_t iHigh = m, iLow = m;
    bHigh = kInf;
    bLow = -kInf;
    for (std::size_t i : active) {
      const std::int8_t y = ds.label(i);
      const double a = alpha[i];
      const double ci = boxOf(i);
      if (inHighSet(y, a, ci, boundEps) && f[i] < bHigh) {
        bHigh = f[i];
        iHigh = i;
      }
      if (inLowSet(y, a, ci, boundEps) && f[i] > bLow) {
        bLow = f[i];
        iLow = i;
      }
    }

    if (iHigh == m || iLow == m || bLow <= bHigh + 2.0 * tau) {
      // Converged over the active set. If anything was shrunk away, bring
      // it back and re-check against the full problem before declaring
      // victory (the shrink rules are heuristics).
      if (everShrunk && active.size() < m) {
        unshrink();
        everShrunk = false;  // one reconstruction per convergence attempt
        continue;
      }
      converged = true;
      break;
    }

    // Progress instant: the scan just refreshed bHigh/bLow and the
    // convergence check above guarantees both are finite here. The null
    // test short-circuits first — the untraced path pays one branch.
    if (options_.trace != nullptr && iter % options_.traceInterval == 0) {
      const double hits = static_cast<double>(cache.hits());
      const double lookups = hits + static_cast<double>(cache.misses());
      options_.trace->progress(
          options_.traceTimeOffset + (threadCpuSeconds() - traceCpuStart),
          static_cast<std::int64_t>(iter),
          static_cast<std::int64_t>(active.size()), bLow - bHigh,
          lookups > 0.0 ? hits / lookups : 0.0);
    }

    const std::span<const double> rowHigh = fetchRow(iHigh);
    // Pin the rows backing the spans held across this iteration, so the
    // second fetch (and any refill) can never recycle their storage.
    cache.pin(iHigh);
    const std::uint64_t genHigh = cache.generation(iHigh);

    if (options_.selection == Selection::SecondOrder) {
      // Re-pick iLow to maximize the guaranteed objective decrease
      // (b_high - f_j)^2 / eta_j among violating candidates. K_jj comes
      // from the precomputed diagonal (bitwise-identical to eval(ds,j,j)).
      const double kHigh = diag[iHigh];
      double bestGain = -kInf;
      std::size_t bestJ = m;
      for (std::size_t j : active) {
        if (!inLowSet(ds.label(j), alpha[j], boxOf(j), boundEps)) continue;
        const double diff = f[j] - bHigh;
        if (diff <= 2.0 * tau) continue;
        double eta = kHigh + diag[j] - 2.0 * rowHigh[j];
        if (eta < kEtaFloor) eta = kEtaFloor;
        const double gain = diff * diff / eta;
        if (gain > bestGain) {
          bestGain = gain;
          bestJ = j;
        }
      }
      if (bestJ < m) iLow = bestJ;
    }

    const std::span<const double> rowLow = fetchRow(iLow);
    cache.pin(iLow);
    const std::uint64_t genLow = cache.generation(iLow);

    const std::int8_t yHigh = ds.label(iHigh);
    const std::int8_t yLow = ds.label(iLow);
    const double cHigh = boxOf(iHigh);
    const double cLow = boxOf(iLow);
    const double fHigh = f[iHigh];
    const double fLow = f[iLow];

    // Two-variable analytic step (eqns. 6-7), clipped to the per-class box.
    double eta = rowHigh[iHigh] + rowLow[iLow] - 2.0 * rowHigh[iLow];
    if (eta < kEtaFloor) eta = kEtaFloor;

    const double s = double(yHigh) * double(yLow);
    const double aHighOld = alpha[iHigh];
    const double aLowOld = alpha[iLow];

    double low, high;  // feasible range for the new alpha[iLow]
    if (s < 0.0) {
      low = std::max(0.0, aLowOld - aHighOld);
      high = std::min(cLow, cHigh + aLowOld - aHighOld);
    } else {
      low = std::max(0.0, aHighOld + aLowOld - cHigh);
      high = std::min(cLow, aHighOld + aLowOld);
    }

    double aLowNew = aLowOld + double(yLow) * (fHigh - fLow) / eta;
    aLowNew = std::clamp(aLowNew, low, high);
    const double dLow = aLowNew - aLowOld;
    if (std::abs(dLow) < 1e-14) {
      // Degenerate step: the maximal violating pair is pinned at the box
      // and cannot move. With bound-slack set membership this should not
      // occur on the full problem — but while shrunk it can be an artifact
      // of the shrunk set (the sample that would free the pair was shrunk
      // away), so restore the full problem and retry once before giving up.
      cache.unpin(iHigh);
      cache.unpin(iLow);
      if (active.size() < m && !degenerateRetried) {
        unshrink();
        everShrunk = false;
        degenerateRetried = true;
        continue;
      }
      break;
    }
    const double dHigh = -s * dLow;
    double aHighNew = aHighOld + dHigh;
    // Snap to the box against accumulated floating-point drift so bound
    // membership stays crisp.
    if (aLowNew < boundEps) aLowNew = 0.0;
    if (aLowNew > cLow - boundEps) aLowNew = cLow;
    if (aHighNew < boundEps) aHighNew = 0.0;
    if (aHighNew > cHigh - boundEps) aHighNew = cHigh;
    alpha[iLow] = aLowNew;
    alpha[iHigh] = aHighNew;

    // Gradient update with the two cached rows (eqn. 5), active rows only.
    // The generation checks turn a span whose backing row was recycled — a
    // pinning-contract violation — into an immediate assertion failure.
    cache.checkLive(iHigh, genHigh);
    cache.checkLive(iLow, genLow);
    const double coefHigh = dHigh * double(yHigh);
    const double coefLow = dLow * double(yLow);
    for (std::size_t k : active) {
      f[k] += coefHigh * rowHigh[k] + coefLow * rowLow[k];
    }
    cache.unpin(iHigh);
    cache.unpin(iLow);

    // Periodic shrink pass: drop bound-pinned samples whose gradient keeps
    // them out of contention for either threshold.
    if (options_.shrinking && (iter + 1) % options_.shrinkInterval == 0) {
      // The pair update above just mutated f, so the selection-time
      // bHigh/bLow are stale: filtering with them can shrink a sample the
      // update made violating, stalling convergence until the unshrink
      // rescue. Recompute the thresholds over the post-update gradient.
      double sHigh = kInf, sLow = -kInf;
      for (std::size_t k : active) {
        const std::int8_t y = ds.label(k);
        const double a = alpha[k];
        const double ck = boxOf(k);
        if (inHighSet(y, a, ck, boundEps)) sHigh = std::min(sHigh, f[k]);
        if (inLowSet(y, a, ck, boundEps)) sLow = std::max(sLow, f[k]);
      }
      const auto keep = [&](std::size_t i) {
        const std::int8_t y = ds.label(i);
        const double a = alpha[i];
        const double ci = boxOf(i);
        if (a <= boundEps) {
          // Lower bound: only ever a high candidate (y=+1) / low (y=-1).
          if (y == 1 && f[i] > sLow + tau) return false;
          if (y == -1 && f[i] < sHigh - tau) return false;
        } else if (a >= ci - boundEps) {
          // Upper bound: only ever a low candidate (y=+1) / high (y=-1).
          if (y == 1 && f[i] < sHigh - tau) return false;
          if (y == -1 && f[i] > sLow + tau) return false;
        }
        return true;
      };
      if (sLow > sHigh + 2.0 * tau) {
        std::vector<std::size_t> stillActive;
        stillActive.reserve(active.size());
        for (std::size_t i : active) {
          if (keep(i)) stillActive.push_back(i);
        }
        // Never shrink below a workable core.
        if (stillActive.size() >= 2 && stillActive.size() < active.size()) {
          active = std::move(stillActive);
          everShrunk = true;
        }
      }
    }
  }

  if (!converged && everShrunk) unshrink();

  // Bias from the two thresholds at the solution. If a working-set scan
  // found no high (or no low) candidate — possible when a warm start pins
  // every alpha at a box bound — the corresponding threshold is still
  // +-inf and the midpoint would be NaN/inf. Fall back to the KKT bounds:
  // an empty high set means every sample only upper-bounds b (b <= -f_i
  // over the low set), so the tightest bound -bLow is a valid bias; the
  // empty-low case mirrors it. Free support vectors always sit in both
  // sets, so whenever they exist both thresholds are finite.
  if (!std::isfinite(bHigh) || !std::isfinite(bLow)) {
    if (std::isfinite(bLow)) {
      bHigh = bLow;
    } else if (std::isfinite(bHigh)) {
      bLow = bHigh;
    } else {
      // Both candidate sets empty (degenerate box, e.g. C below the bound
      // slack): bracket b with the full gradient range.
      bHigh = kInf;
      bLow = -kInf;
      for (std::size_t i = 0; i < m; ++i) {
        bHigh = std::min(bHigh, f[i]);
        bLow = std::max(bLow, f[i]);
      }
    }
  }
  const double bias = -(bHigh + bLow) / 2.0;

  // Dual objective: F = sum a_i - 1/2 sum_i a_i y_i (f_i + y_i).
  // (With shrinking, f of inactive rows was reconstructed above whenever
  // the run ended; the identity holds for the full vector.)
  double objective = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    objective += alpha[i] - 0.5 * alpha[i] * double(ds.label(i)) *
                                (f[i] + double(ds.label(i)));
  }

  // Extract the support vectors.
  std::vector<std::size_t> svIdx;
  std::vector<double> alphaY;
  for (std::size_t i = 0; i < m; ++i) {
    if (alpha[i] > 0.0) {
      svIdx.push_back(i);
      alphaY.push_back(alpha[i] * double(ds.label(i)));
    }
  }

  SolverResult result;
  result.model =
      Model(options_.kernel, ds.subset(svIdx), std::move(alphaY), bias);
  result.alpha = std::move(alpha);
  result.iterations = iter;
  result.converged = converged;
  result.objective = objective;
  result.seconds = timer.seconds();
  result.kernelRowsComputed = cache.misses();
  result.kernelRowHits = cache.hits();
  return result;
}

}  // namespace casvm::solver
