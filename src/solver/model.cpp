#include "casvm/solver/model.hpp"

#include <cstring>
#include <fstream>

#include "casvm/serve/compiled_model.hpp"
#include "casvm/support/atomic_file.hpp"
#include "casvm/support/error.hpp"

namespace casvm::solver {

Model::Model(kernel::KernelParams params, data::Dataset supportVectors,
             std::vector<double> alphaY, double bias)
    : params_(params), kernel_(params), svs_(std::move(supportVectors)),
      alphaY_(std::move(alphaY)), bias_(bias) {
  CASVM_CHECK(svs_.rows() == alphaY_.size(),
              "one coefficient per support vector required");
}

double Model::decision(std::span<const float> x) const {
  double xSelf = 0.0;
  for (float v : x) xSelf += double(v) * double(v);
  double acc = bias_;
  for (std::size_t i = 0; i < svs_.rows(); ++i) {
    acc += alphaY_[i] * kernel_.evalWith(svs_, i, x, xSelf);
  }
  return acc;
}

double Model::decisionFor(const data::Dataset& ds, std::size_t i) const {
  double acc = bias_;
  for (std::size_t s = 0; s < svs_.rows(); ++s) {
    acc += alphaY_[s] * kernel_.evalCross(svs_, s, ds, i);
  }
  return acc;
}

double Model::accuracy(const data::Dataset& testSet) const {
  CASVM_CHECK(testSet.rows() > 0, "empty test set");
  // Batch path: one compiled SV pack scores the whole test set through the
  // tiled micro-kernel; decisions are bitwise-identical to decisionFor.
  const serve::CompiledModel compiled(params_, svs_, alphaY_, bias_);
  serve::BatchScratch scratch;
  std::vector<double> decisions(testSet.rows(), 0.0);
  compiled.decisionAll(testSet, decisions, scratch);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < testSet.rows(); ++i) {
    const std::int8_t label = decisions[i] >= 0.0 ? 1 : -1;
    correct += (label == testSet.label(i));
  }
  return static_cast<double>(correct) / static_cast<double>(testSet.rows());
}

std::vector<std::byte> Model::pack() const {
  const std::vector<std::byte> svBytes = svs_.packAll();
  std::vector<std::byte> out;
  out.reserve(sizeof(params_) + sizeof(bias_) + sizeof(std::uint64_t) +
              alphaY_.size() * sizeof(double) + svBytes.size());
  auto append = [&out](const void* data, std::size_t bytes) {
    const std::size_t off = out.size();
    out.resize(off + bytes);
    std::memcpy(out.data() + off, data, bytes);
  };
  // KernelParams has internal padding whose bytes are indeterminate; pack a
  // zeroed copy written member by member so identical models always pack to
  // identical bytes (checkpoint resume compares raw pack() output bitwise).
  kernel::KernelParams cleanParams;
  std::memset(&cleanParams, 0, sizeof(cleanParams));
  cleanParams.type = params_.type;
  cleanParams.gamma = params_.gamma;
  cleanParams.a = params_.a;
  cleanParams.r = params_.r;
  cleanParams.degree = params_.degree;
  append(&cleanParams, sizeof(cleanParams));
  append(&bias_, sizeof(bias_));
  const std::uint64_t count = alphaY_.size();
  append(&count, sizeof(count));
  append(alphaY_.data(), alphaY_.size() * sizeof(double));
  append(svBytes.data(), svBytes.size());
  return out;
}

Model Model::unpack(std::span<const std::byte> bytes) {
  auto read = [&bytes](void* data, std::size_t count) {
    CASVM_CHECK(bytes.size() >= count, "model unpack: truncated");
    std::memcpy(data, bytes.data(), count);
    bytes = bytes.subspan(count);
  };
  Model m;
  read(&m.params_, sizeof(m.params_));
  read(&m.bias_, sizeof(m.bias_));
  std::uint64_t count = 0;
  read(&count, sizeof(count));
  // A corrupt header can claim an absurd coefficient count; validate it
  // against the remaining payload before sizing any allocation. Dividing
  // (instead of multiplying count by sizeof(double)) avoids the overflow a
  // hostile count could use to sneak past the check.
  CASVM_CHECK(count <= bytes.size() / sizeof(double),
              "model unpack: coefficient count exceeds payload");
  m.alphaY_.resize(count);
  read(m.alphaY_.data(), count * sizeof(double));
  m.kernel_ = kernel::Kernel(m.params_);
  m.svs_ = data::Dataset::unpack(bytes);
  CASVM_CHECK(m.svs_.rows() == m.alphaY_.size(),
              "model unpack: SV/coefficient count mismatch");
  return m;
}

void Model::save(const std::string& path) const {
  // Atomic temp-file + rename: a crash mid-save leaves either the previous
  // model or none — never a truncated file a later load would trip over.
  support::writeFileAtomic(path, std::span<const std::byte>(pack()));
}

Model Model::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  CASVM_CHECK(in.good(), "cannot open model file: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  CASVM_CHECK(in.good(), "model read failed: " + path);
  return unpack(bytes);
}

}  // namespace casvm::solver
