#include "casvm/kernel/row_cache.hpp"

#include <algorithm>

#include "casvm/support/error.hpp"

namespace casvm::kernel {

RowCache::RowCache(const Kernel& kernel, const data::Dataset& ds,
                   std::size_t budgetBytes)
    : kernel_(kernel), ds_(ds) {
  const std::size_t rowBytes = std::max<std::size_t>(1, ds.rows()) * sizeof(double);
  // Two-slot floor: callers may hold spans to two rows at once (SMO).
  capacityRows_ = std::max<std::size_t>(2, budgetBytes / rowBytes);
}

std::span<const double> RowCache::row(std::size_t i) {
  CASVM_CHECK(i < ds_.rows(), "kernel row out of range");
  if (auto it = index_.find(i); it != index_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->values;
  }
  ++misses_;
  if (lru_.size() >= capacityRows_) {
    // Recycle the least-recently-used slot's allocation.
    auto victim = std::prev(lru_.end());
    index_.erase(victim->rowIndex);
    victim->rowIndex = i;
    kernel_.row(ds_, i, victim->values);
    lru_.splice(lru_.begin(), lru_, victim);
  } else {
    lru_.push_front(Slot{i, std::vector<double>(ds_.rows())});
    kernel_.row(ds_, i, lru_.front().values);
  }
  index_[i] = lru_.begin();
  return lru_.front().values;
}

}  // namespace casvm::kernel
