#include "casvm/kernel/row_cache.hpp"

#include <algorithm>
#include <limits>

#include "casvm/support/error.hpp"

namespace casvm::kernel {

RowCache::RowCache(const Kernel& kernel, const data::Dataset& ds,
                   std::size_t budgetBytes)
    : ownedExact_(std::make_unique<ExactRowSource>(kernel, ds)),
      src_(ownedExact_.get()) {
  const std::size_t rowBytes =
      std::max<std::size_t>(1, src_->rows()) * sizeof(double);
  // Two-slot floor: callers may hold spans to two rows at once (SMO).
  capacityRows_ = std::max<std::size_t>(2, budgetBytes / rowBytes);
}

RowCache::RowCache(RowSource& source, std::size_t budgetBytes)
    : src_(&source) {
  const std::size_t rowBytes =
      std::max<std::size_t>(1, src_->rows()) * sizeof(double);
  capacityRows_ = std::max<std::size_t>(2, budgetBytes / rowBytes);
}

RowCache::Slot& RowCache::claimSlot(std::size_t i) {
  if (lru_.size() >= capacityRows_) {
    // Recycle the least-recently-used *unpinned* slot's allocation: a
    // pinned row backs a span the solver currently holds, and recycling it
    // would silently corrupt that span.
    for (auto it = std::prev(lru_.end());; --it) {
      if (it->pins == 0) {
        index_.erase(it->rowIndex);
        it->rowIndex = i;
        lru_.splice(lru_.begin(), lru_, it);
        index_[i] = lru_.begin();
        return *it;
      }
      if (it == lru_.begin()) break;
    }
    // Every slot is pinned (cannot happen with the solver's at-most-two
    // pins and the two-slot capacity floor, but stay safe): grow past the
    // budget for this fill rather than corrupt a live span.
  }
  lru_.push_front(Slot{i, std::vector<double>(src_->rows()), 0, false, 0});
  index_[i] = lru_.begin();
  return lru_.front();
}

std::span<const double> RowCache::row(std::size_t i) {
  CASVM_CHECK(i < src_->rows(), "kernel row out of range");
  if (auto it = index_.find(i); it != index_.end()) {
    Slot& slot = *it->second;
    lru_.splice(lru_.begin(), lru_, it->second);
    if (!slot.partial) {
      ++hits_;
      return slot.values;
    }
    // A partial fill cannot serve a full-row read: upgrade in place.
    ++misses_;
    src_->fillRow(i, slot.values);
    slot.partial = false;
    slot.generation = nextGeneration_++;
    return slot.values;
  }
  ++misses_;
  Slot& slot = claimSlot(i);
  src_->fillRow(i, slot.values);
  slot.partial = false;
  slot.generation = nextGeneration_++;
  return slot.values;
}

std::span<const double> RowCache::row(std::size_t i,
                                      std::span<const std::size_t> active) {
  CASVM_CHECK(i < src_->rows(), "kernel row out of range");
  if (auto it = index_.find(i); it != index_.end()) {
    // Full rows serve any index set; a partial fill serves subsets of the
    // set it was computed with, which holds while the active set only
    // shrinks (invalidatePartial() handles the grow-back).
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->values;
  }
  ++misses_;
  // The source knows whether its full-row fill (e.g. the dense tiled
  // micro-kernel) beats a scalar subset fill of this many entries.
  if (src_->preferFullFill(active.size())) {
    Slot& slot = claimSlot(i);
    src_->fillRow(i, slot.values);
    slot.partial = false;
    slot.generation = nextGeneration_++;
    return slot.values;
  }
  ++partialFills_;
  Slot& slot = claimSlot(i);
#ifndef CASVM_NO_ASSERT
  // Poison the untouched entries so a read outside `active` trips tests
  // instead of returning a stale previous row.
  std::fill(slot.values.begin(), slot.values.end(),
            std::numeric_limits<double>::quiet_NaN());
#endif
  src_->fillRowSubset(i, active, slot.values);
  slot.partial = true;
  slot.generation = nextGeneration_++;
  return slot.values;
}

void RowCache::pin(std::size_t i) {
  auto it = index_.find(i);
  CASVM_ASSERT(it != index_.end(), "pin of a row that is not cached");
  if (it->second->pins++ == 0) ++pinned_;
}

void RowCache::unpin(std::size_t i) {
  auto it = index_.find(i);
  CASVM_ASSERT(it != index_.end(), "unpin of a row that is not cached");
  CASVM_ASSERT(it->second->pins > 0, "unpin without matching pin");
  if (--it->second->pins == 0) --pinned_;
}

void RowCache::invalidatePartial() {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (!it->partial) {
      ++it;
      continue;
    }
    CASVM_ASSERT(it->pins == 0, "invalidatePartial with a pinned partial row");
    index_.erase(it->rowIndex);
    it = lru_.erase(it);
  }
}

std::uint64_t RowCache::generation(std::size_t i) const {
  const auto it = index_.find(i);
  return it == index_.end() ? 0 : it->second->generation;
}

void RowCache::checkLive(std::size_t i, std::uint64_t gen) const {
  (void)i;
  (void)gen;
  CASVM_ASSERT(generation(i) == gen && gen != 0,
               "kernel row span used after eviction");
}

}  // namespace casvm::kernel
