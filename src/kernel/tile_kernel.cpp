#include "casvm/kernel/tile_kernel.hpp"

#include <algorithm>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define CASVM_TILE_X86 1
#include <immintrin.h>
#endif

namespace casvm::kernel::tile {

void pack(const data::Dataset& ds, std::vector<float>& tiles) {
  const std::size_t m = ds.rows(), n = ds.cols();
  const std::size_t blocks = blockCount(m);
  tiles.assign(blocks * n * kRows, 0.0f);
  for (std::size_t j = 0; j < m; ++j) {
    const float* r = ds.denseRow(j).data();
    float* base = tiles.data() + (j / kRows) * n * kRows + j % kRows;
    for (std::size_t k = 0; k < n; ++k) base[k * kRows] = r[k];
  }
}

namespace {

void dotPortable(const float* tiles, const double* xd, std::size_t m,
                 std::size_t n, double* out) {
  const std::size_t blocks = blockCount(m);
  for (std::size_t b = 0; b < blocks; ++b) {
    const float* t = tiles + b * n * kRows;
    double acc[kRows] = {};
    for (std::size_t k = 0; k < n; ++k) {
      const double x = xd[k];
      for (std::size_t l = 0; l < kRows; ++l) {
        acc[l] += x * double(t[k * kRows + l]);
      }
    }
    const std::size_t base = b * kRows;
    const std::size_t cnt = std::min(kRows, m - base);
    std::memcpy(out + base, acc, cnt * sizeof(double));
  }
}

#ifdef CASVM_TILE_X86
// Multiplies must stay separate from adds (no FMA contraction) so lane
// rounding matches the scalar path exactly.
__attribute__((target("avx2")))
void dotAvx2(const float* tiles, const double* xd, std::size_t m,
             std::size_t n, double* out) {
  const std::size_t blocks = blockCount(m);
  for (std::size_t b = 0; b < blocks; ++b) {
    const float* t = tiles + b * n * kRows;
    __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd(), a3 = _mm256_setzero_pd();
    for (std::size_t k = 0; k < n; ++k) {
      const __m256d x = _mm256_broadcast_sd(xd + k);
      const float* tk = t + k * kRows;
      a0 = _mm256_add_pd(a0, _mm256_mul_pd(x, _mm256_cvtps_pd(_mm_loadu_ps(tk))));
      a1 = _mm256_add_pd(a1, _mm256_mul_pd(x, _mm256_cvtps_pd(_mm_loadu_ps(tk + 4))));
      a2 = _mm256_add_pd(a2, _mm256_mul_pd(x, _mm256_cvtps_pd(_mm_loadu_ps(tk + 8))));
      a3 = _mm256_add_pd(a3, _mm256_mul_pd(x, _mm256_cvtps_pd(_mm_loadu_ps(tk + 12))));
    }
    const std::size_t base = b * kRows;
    if (m - base >= kRows) {
      _mm256_storeu_pd(out + base, a0);
      _mm256_storeu_pd(out + base + 4, a1);
      _mm256_storeu_pd(out + base + 8, a2);
      _mm256_storeu_pd(out + base + 12, a3);
    } else {
      double buf[kRows];
      _mm256_storeu_pd(buf, a0);
      _mm256_storeu_pd(buf + 4, a1);
      _mm256_storeu_pd(buf + 8, a2);
      _mm256_storeu_pd(buf + 12, a3);
      std::memcpy(out + base, buf, (m - base) * sizeof(double));
    }
  }
}
#endif  // CASVM_TILE_X86

}  // namespace

DotFn dotFn() {
#ifdef CASVM_TILE_X86
  static const DotFn fn =
      __builtin_cpu_supports("avx2") ? &dotAvx2 : &dotPortable;
#else
  static const DotFn fn = &dotPortable;
#endif
  return fn;
}

}  // namespace casvm::kernel::tile
