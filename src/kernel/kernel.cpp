#include "casvm/kernel/kernel.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "casvm/kernel/tile_kernel.hpp"
#include "casvm/support/error.hpp"

namespace casvm::kernel {

std::string kernelName(KernelType type) {
  switch (type) {
    case KernelType::Linear: return "linear";
    case KernelType::Polynomial: return "polynomial";
    case KernelType::Gaussian: return "gaussian";
    case KernelType::Sigmoid: return "sigmoid";
  }
  return "unknown";
}

double Kernel::fromDot(double dot, double selfI, double selfJ) const {
  switch (params_.type) {
    case KernelType::Linear:
      return dot;
    case KernelType::Polynomial:
      return std::pow(params_.a * dot + params_.r, params_.degree);
    case KernelType::Gaussian: {
      const double d2 = selfI + selfJ - 2.0 * dot;
      // Guard tiny negative values from floating-point cancellation.
      return std::exp(-params_.gamma * (d2 > 0.0 ? d2 : 0.0));
    }
    case KernelType::Sigmoid:
      return std::tanh(params_.a * dot + params_.r);
  }
  throw Error("unknown kernel type");
}

double Kernel::eval(const data::Dataset& ds, std::size_t i,
                    std::size_t j) const {
  return fromDot(ds.dot(i, j), ds.selfDot(i), ds.selfDot(j));
}

double Kernel::evalWith(const data::Dataset& ds, std::size_t i,
                        std::span<const float> x, double xSelfDot) const {
  return fromDot(ds.dotWith(i, x), ds.selfDot(i), xSelfDot);
}

double Kernel::evalCross(const data::Dataset& a, std::size_t i,
                         const data::Dataset& b, std::size_t j) const {
  CASVM_CHECK(a.cols() == b.cols(), "cross-kernel feature counts differ");
  double dot = 0.0;
  if (b.storage() == data::Storage::Dense) {
    dot = a.dotWith(i, b.denseRow(j));
  } else if (a.storage() == data::Storage::Dense) {
    dot = b.dotWith(j, a.denseRow(i));
  } else {
    // Sparse x sparse across datasets: merge join.
    const auto ia = a.sparseIndices(i);
    const auto va = a.sparseValues(i);
    const auto ib = b.sparseIndices(j);
    const auto vb = b.sparseValues(j);
    std::size_t pa = 0, pb = 0;
    while (pa < ia.size() && pb < ib.size()) {
      if (ia[pa] == ib[pb]) {
        dot += double(va[pa]) * double(vb[pb]);
        ++pa;
        ++pb;
      } else if (ia[pa] < ib[pb]) {
        ++pa;
      } else {
        ++pb;
      }
    }
  }
  return fromDot(dot, a.selfDot(i), b.selfDot(j));
}

double Kernel::evalVectors(std::span<const float> x, double xSelfDot,
                           std::span<const float> z, double zSelfDot) const {
  CASVM_CHECK(x.size() == z.size(), "vector lengths differ");
  double dot = 0.0;
  for (std::size_t k = 0; k < x.size(); ++k) {
    dot += double(x[k]) * double(z[k]);
  }
  return fromDot(dot, xSelfDot, zSelfDot);
}

namespace {

/// Rows per block of the dense row micro-kernel: xi[k] is loaded once and
/// multiplied into eight contiguous row streams, which the compiler turns
/// into wide FMA code without any per-element call or type dispatch.
constexpr std::size_t kDenseBlock = 8;

/// out[j] = xi . xj for j in [0, m), dense row-major storage.
void denseDotRow(const data::Dataset& ds, std::size_t i,
                 std::span<double> out) {
  const std::span<const float> xi = ds.denseRow(i);
  const std::size_t m = ds.rows();
  const std::size_t n = ds.cols();
  std::size_t j = 0;
  for (; j + kDenseBlock <= m; j += kDenseBlock) {
    const float* rows[kDenseBlock];
    for (std::size_t b = 0; b < kDenseBlock; ++b) {
      rows[b] = ds.denseRow(j + b).data();
    }
    double acc[kDenseBlock] = {};
    for (std::size_t k = 0; k < n; ++k) {
      const double x = double(xi[k]);
      for (std::size_t b = 0; b < kDenseBlock; ++b) {
        acc[b] += x * double(rows[b][k]);
      }
    }
    for (std::size_t b = 0; b < kDenseBlock; ++b) out[j + b] = acc[b];
  }
  for (; j < m; ++j) {
    const float* rj = ds.denseRow(j).data();
    double acc = 0.0;
    for (std::size_t k = 0; k < n; ++k) acc += double(xi[k]) * double(rj[k]);
    out[j] = acc;
  }
}

/// Scratch for the scattered dense copy of sparse row i; reused across row
/// fills so the only per-fill cost is an O(n) clear.
std::vector<float>& sparseScatterScratch() {
  static thread_local std::vector<float> scratch;
  return scratch;
}

/// Scatter sparse row i into the dense buffer `xd` (resized to cols()).
void scatterSparseRow(const data::Dataset& ds, std::size_t i,
                      std::vector<float>& xd) {
  xd.assign(ds.cols(), 0.0f);
  const auto idx = ds.sparseIndices(i);
  const auto val = ds.sparseValues(i);
  for (std::size_t p = 0; p < idx.size(); ++p) xd[idx[p]] = val[p];
}

/// out[j] = xi . xj for j in [0, m), CSR storage: row i is scattered into a
/// dense buffer once, then each row j streams its nonzeros against it. The
/// nonzero products accumulate in the same ascending-column order as the
/// sparse-sparse merge join, so sums are bitwise-identical to Dataset::dot.
void sparseDotRow(const data::Dataset& ds, std::size_t i,
                  std::span<double> out, std::vector<float>& xd) {
  scatterSparseRow(ds, i, xd);
  const std::size_t m = ds.rows();
  for (std::size_t j = 0; j < m; ++j) {
    const auto ji = ds.sparseIndices(j);
    const auto jv = ds.sparseValues(j);
    double acc = 0.0;
    for (std::size_t p = 0; p < ji.size(); ++p) {
      acc += double(jv[p]) * double(xd[ji[p]]);
    }
    out[j] = acc;
  }
}

}  // namespace

// The workspace keeps the dense matrix in the blocked k-major tiling of
// kernel::tile (see tile_kernel.hpp); fills run through tile::dotFn(), the
// same runtime-dispatched micro-kernel the serve engine's compiled models
// score with.

void RowWorkspace::bind(const data::Dataset& ds) {
  if (bound_ == &ds && rows_ == ds.rows() && cols_ == ds.cols()) return;
  bound_ = &ds;
  rows_ = ds.rows();
  cols_ = ds.cols();
  if (ds.storage() == data::Storage::Dense) {
    tile::pack(ds, tiles_);
    xd_.resize(cols_);
  } else {
    tiles_.clear();
    xd_.clear();
  }
}

void Kernel::transformRow(const data::Dataset& ds, std::size_t i,
                          std::span<double> out) const {
  // Kernel transform over the whole row: one type dispatch per row.
  const std::size_t m = ds.rows();
  switch (params_.type) {
    case KernelType::Linear:
      break;
    case KernelType::Polynomial:
      for (std::size_t j = 0; j < m; ++j) {
        out[j] = std::pow(params_.a * out[j] + params_.r, params_.degree);
      }
      break;
    case KernelType::Gaussian: {
      const double selfI = ds.selfDot(i);
      for (std::size_t j = 0; j < m; ++j) {
        const double d2 = selfI + ds.selfDot(j) - 2.0 * out[j];
        out[j] = std::exp(-params_.gamma * (d2 > 0.0 ? d2 : 0.0));
      }
      break;
    }
    case KernelType::Sigmoid:
      for (std::size_t j = 0; j < m; ++j) {
        out[j] = std::tanh(params_.a * out[j] + params_.r);
      }
      break;
  }
}

void Kernel::row(const data::Dataset& ds, std::size_t i,
                 std::span<double> out) const {
  CASVM_CHECK(out.size() == ds.rows(), "kernel row output has wrong length");
  if (ds.storage() == data::Storage::Dense) {
    denseDotRow(ds, i, out);
  } else {
    sparseDotRow(ds, i, out, sparseScatterScratch());
  }
  transformRow(ds, i, out);
}

void Kernel::row(const data::Dataset& ds, std::size_t i, std::span<double> out,
                 RowWorkspace& ws) const {
  CASVM_CHECK(out.size() == ds.rows(), "kernel row output has wrong length");
  ws.bind(ds);
  if (ds.storage() == data::Storage::Dense) {
    const std::span<const float> xi = ds.denseRow(i);
    for (std::size_t k = 0; k < ws.cols_; ++k) ws.xd_[k] = double(xi[k]);
    tile::dotFn()(ws.tiles_.data(), ws.xd_.data(), ws.rows_, ws.cols_,
                  out.data());
  } else {
    sparseDotRow(ds, i, out, ws.scatter_);
  }
  transformRow(ds, i, out);
}

void Kernel::transformSubset(const data::Dataset& ds, std::size_t i,
                             std::span<const std::size_t> subset,
                             std::span<double> out) const {
  switch (params_.type) {
    case KernelType::Linear:
      break;
    case KernelType::Polynomial:
      for (std::size_t j : subset) {
        out[j] = std::pow(params_.a * out[j] + params_.r, params_.degree);
      }
      break;
    case KernelType::Gaussian: {
      const double selfI = ds.selfDot(i);
      for (std::size_t j : subset) {
        const double d2 = selfI + ds.selfDot(j) - 2.0 * out[j];
        out[j] = std::exp(-params_.gamma * (d2 > 0.0 ? d2 : 0.0));
      }
      break;
    }
    case KernelType::Sigmoid:
      for (std::size_t j : subset) {
        out[j] = std::tanh(params_.a * out[j] + params_.r);
      }
      break;
  }
}

namespace {

/// Subset dot fills, shared by both subset row() overloads. `xd` is the
/// sparse scatter scratch (unused for dense storage).
void subsetDotRow(const data::Dataset& ds, std::size_t i,
                  std::span<const std::size_t> subset, std::span<double> out,
                  std::vector<float>& xd) {
  if (ds.storage() == data::Storage::Dense) {
    const std::span<const float> xi = ds.denseRow(i);
    const std::size_t n = ds.cols();
    for (std::size_t j : subset) {
      const float* rj = ds.denseRow(j).data();
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += double(xi[k]) * double(rj[k]);
      out[j] = acc;
    }
  } else {
    scatterSparseRow(ds, i, xd);
    for (std::size_t j : subset) {
      const auto ji = ds.sparseIndices(j);
      const auto jv = ds.sparseValues(j);
      double acc = 0.0;
      for (std::size_t p = 0; p < ji.size(); ++p) {
        acc += double(jv[p]) * double(xd[ji[p]]);
      }
      out[j] = acc;
    }
  }
}

}  // namespace

void Kernel::row(const data::Dataset& ds, std::size_t i,
                 std::span<const std::size_t> subset,
                 std::span<double> out) const {
  CASVM_CHECK(out.size() == ds.rows(), "kernel row output has wrong length");
  subsetDotRow(ds, i, subset, out, sparseScatterScratch());
  transformSubset(ds, i, subset, out);
}

void Kernel::row(const data::Dataset& ds, std::size_t i,
                 std::span<const std::size_t> subset, std::span<double> out,
                 RowWorkspace& ws) const {
  CASVM_CHECK(out.size() == ds.rows(), "kernel row output has wrong length");
  ws.bind(ds);
  subsetDotRow(ds, i, subset, out, ws.scatter_);
  transformSubset(ds, i, subset, out);
}

void Kernel::rowWith(const data::Dataset& ds, std::span<const float> x,
                     double xSelfDot, std::span<double> out,
                     RowWorkspace& ws) const {
  CASVM_CHECK(out.size() == ds.rows(), "kernel column output has wrong length");
  CASVM_CHECK(x.size() == ds.cols(), "external vector has wrong length");
  ws.bind(ds);
  const std::size_t m = ds.rows();
  if (ds.storage() == data::Storage::Dense) {
    for (std::size_t k = 0; k < ws.cols_; ++k) ws.xd_[k] = double(x[k]);
    tile::dotFn()(ws.tiles_.data(), ws.xd_.data(), ws.rows_, ws.cols_,
                  out.data());
  } else {
    for (std::size_t j = 0; j < m; ++j) out[j] = ds.dotWith(j, x);
  }
  // Transform with the external vector's self-dot on the x side; same
  // per-row dispatch shape as transformRow.
  switch (params_.type) {
    case KernelType::Linear:
      break;
    case KernelType::Polynomial:
      for (std::size_t j = 0; j < m; ++j) {
        out[j] = std::pow(params_.a * out[j] + params_.r, params_.degree);
      }
      break;
    case KernelType::Gaussian:
      for (std::size_t j = 0; j < m; ++j) {
        const double d2 = ds.selfDot(j) + xSelfDot - 2.0 * out[j];
        out[j] = std::exp(-params_.gamma * (d2 > 0.0 ? d2 : 0.0));
      }
      break;
    case KernelType::Sigmoid:
      for (std::size_t j = 0; j < m; ++j) {
        out[j] = std::tanh(params_.a * out[j] + params_.r);
      }
      break;
  }
}

void Kernel::diagonal(const data::Dataset& ds, std::span<double> out) const {
  CASVM_CHECK(out.size() == ds.rows(), "kernel diagonal output has wrong length");
  const std::size_t m = ds.rows();
  // selfDot accumulates in the same order as dot(j, j), so every branch
  // below is bitwise-identical to eval(ds, j, j).
  switch (params_.type) {
    case KernelType::Linear:
      for (std::size_t j = 0; j < m; ++j) out[j] = ds.selfDot(j);
      break;
    case KernelType::Polynomial:
      for (std::size_t j = 0; j < m; ++j) {
        out[j] = std::pow(params_.a * ds.selfDot(j) + params_.r, params_.degree);
      }
      break;
    case KernelType::Gaussian:
      // d2 = selfDot + selfDot - 2*dot(j, j) == 0 exactly.
      for (std::size_t j = 0; j < m; ++j) out[j] = 1.0;
      break;
    case KernelType::Sigmoid:
      for (std::size_t j = 0; j < m; ++j) {
        out[j] = std::tanh(params_.a * ds.selfDot(j) + params_.r);
      }
      break;
  }
}

double Kernel::flopsPerEval(const data::Dataset& ds) const {
  // Dominated by the dot product: ~2 flops per stored nonzero per row pair.
  const double avgNnzPerRow =
      ds.rows() == 0 ? 0.0
                     : static_cast<double>(ds.nonzeros()) /
                           static_cast<double>(ds.rows());
  return 2.0 * avgNnzPerRow + 4.0;
}

}  // namespace casvm::kernel
