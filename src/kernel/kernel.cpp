#include "casvm/kernel/kernel.hpp"

#include <cmath>

#include "casvm/support/error.hpp"

namespace casvm::kernel {

std::string kernelName(KernelType type) {
  switch (type) {
    case KernelType::Linear: return "linear";
    case KernelType::Polynomial: return "polynomial";
    case KernelType::Gaussian: return "gaussian";
    case KernelType::Sigmoid: return "sigmoid";
  }
  return "unknown";
}

double Kernel::fromDot(double dot, double selfI, double selfJ) const {
  switch (params_.type) {
    case KernelType::Linear:
      return dot;
    case KernelType::Polynomial:
      return std::pow(params_.a * dot + params_.r, params_.degree);
    case KernelType::Gaussian: {
      const double d2 = selfI + selfJ - 2.0 * dot;
      // Guard tiny negative values from floating-point cancellation.
      return std::exp(-params_.gamma * (d2 > 0.0 ? d2 : 0.0));
    }
    case KernelType::Sigmoid:
      return std::tanh(params_.a * dot + params_.r);
  }
  throw Error("unknown kernel type");
}

double Kernel::eval(const data::Dataset& ds, std::size_t i,
                    std::size_t j) const {
  return fromDot(ds.dot(i, j), ds.selfDot(i), ds.selfDot(j));
}

double Kernel::evalWith(const data::Dataset& ds, std::size_t i,
                        std::span<const float> x, double xSelfDot) const {
  return fromDot(ds.dotWith(i, x), ds.selfDot(i), xSelfDot);
}

double Kernel::evalCross(const data::Dataset& a, std::size_t i,
                         const data::Dataset& b, std::size_t j) const {
  CASVM_CHECK(a.cols() == b.cols(), "cross-kernel feature counts differ");
  double dot = 0.0;
  if (b.storage() == data::Storage::Dense) {
    dot = a.dotWith(i, b.denseRow(j));
  } else if (a.storage() == data::Storage::Dense) {
    dot = b.dotWith(j, a.denseRow(i));
  } else {
    // Sparse x sparse across datasets: merge join.
    const auto ia = a.sparseIndices(i);
    const auto va = a.sparseValues(i);
    const auto ib = b.sparseIndices(j);
    const auto vb = b.sparseValues(j);
    std::size_t pa = 0, pb = 0;
    while (pa < ia.size() && pb < ib.size()) {
      if (ia[pa] == ib[pb]) {
        dot += double(va[pa]) * double(vb[pb]);
        ++pa;
        ++pb;
      } else if (ia[pa] < ib[pb]) {
        ++pa;
      } else {
        ++pb;
      }
    }
  }
  return fromDot(dot, a.selfDot(i), b.selfDot(j));
}

double Kernel::evalVectors(std::span<const float> x, double xSelfDot,
                           std::span<const float> z, double zSelfDot) const {
  CASVM_CHECK(x.size() == z.size(), "vector lengths differ");
  double dot = 0.0;
  for (std::size_t k = 0; k < x.size(); ++k) {
    dot += double(x[k]) * double(z[k]);
  }
  return fromDot(dot, xSelfDot, zSelfDot);
}

void Kernel::row(const data::Dataset& ds, std::size_t i,
                 std::span<double> out) const {
  CASVM_CHECK(out.size() == ds.rows(), "kernel row output has wrong length");
  for (std::size_t j = 0; j < ds.rows(); ++j) out[j] = eval(ds, i, j);
}

double Kernel::flopsPerEval(const data::Dataset& ds) const {
  // Dominated by the dot product: ~2 flops per stored nonzero per row pair.
  const double avgNnzPerRow =
      ds.rows() == 0 ? 0.0
                     : static_cast<double>(ds.nonzeros()) /
                           static_cast<double>(ds.rows());
  return 2.0 * avgNnzPerRow + 4.0;
}

}  // namespace casvm::kernel
