#include "casvm/cluster/kmeans.hpp"

#include <cmath>
#include <limits>

#include "casvm/support/error.hpp"
#include "casvm/support/rng.hpp"

namespace casvm::cluster {

namespace {

/// Nearest center to row i, using precomputed center squared norms.
int nearest(const data::Dataset& ds, std::size_t i,
            const std::vector<std::vector<float>>& centers,
            const std::vector<double>& centerSelf) {
  int best = 0;
  double bestDist = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centers.size(); ++c) {
    const double d = ds.squaredDistanceTo(i, centers[c], centerSelf[c]);
    if (d < bestDist) {
      bestDist = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

std::vector<double> selfDots(const std::vector<std::vector<float>>& centers) {
  std::vector<double> out(centers.size(), 0.0);
  for (std::size_t c = 0; c < centers.size(); ++c) {
    for (float v : centers[c]) out[c] += double(v) * double(v);
  }
  return out;
}

std::vector<std::vector<float>> initialCenters(const data::Dataset& ds,
                                               int k, std::uint64_t seed,
                                               bool plusPlus) {
  Rng rng(seed);
  std::vector<std::vector<float>> centers(
      static_cast<std::size_t>(k), std::vector<float>(ds.cols(), 0.0f));
  if (!plusPlus) {
    const std::vector<std::size_t> picks =
        rng.sampleWithoutReplacement(ds.rows(), static_cast<std::size_t>(k));
    for (std::size_t c = 0; c < picks.size(); ++c) {
      ds.copyRowDense(picks[c], centers[c]);
    }
    return centers;
  }
  // k-means++ (Arthur & Vassilvitskii): each next center is a sample drawn
  // with probability proportional to its squared distance from the chosen
  // set, which provably avoids the collapsed initializations uniform
  // sampling can produce.
  std::vector<double> minDist(ds.rows(),
                              std::numeric_limits<double>::infinity());
  std::size_t pick = static_cast<std::size_t>(rng.below(ds.rows()));
  for (int c = 0; c < k; ++c) {
    ds.copyRowDense(pick, centers[static_cast<std::size_t>(c)]);
    if (c + 1 == k) break;
    double total = 0.0;
    for (std::size_t i = 0; i < ds.rows(); ++i) {
      const double d = ds.squaredDistance(i, pick);
      if (d < minDist[i]) minDist[i] = d;
      total += minDist[i];
    }
    double target = rng.uniform() * total;
    pick = ds.rows() - 1;
    for (std::size_t i = 0; i < ds.rows(); ++i) {
      target -= minDist[i];
      if (target <= 0.0) {
        pick = i;
        break;
      }
    }
  }
  return centers;
}

}  // namespace

namespace {

/// Within-cluster sum of squared distances of a finished partition.
double partitionSse(const data::Dataset& ds, const Partition& partition) {
  const std::vector<double> centerSelf = selfDots(partition.centers);
  double sse = 0.0;
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    const auto c = static_cast<std::size_t>(partition.assign[i]);
    sse += ds.squaredDistanceTo(i, partition.centers[c], centerSelf[c]);
  }
  return sse;
}

/// One Lloyd run from one seed.
KMeansResult kmeansSingle(const data::Dataset& ds,
                          const KMeansOptions& options, std::uint64_t seed) {
  const int k = options.clusters;
  const std::size_t m = ds.rows();
  const std::size_t n = ds.cols();

  std::vector<std::vector<float>> centers =
      initialCenters(ds, k, seed, options.plusPlusInit);
  std::vector<int> assign(m, -1);

  KMeansResult result;
  for (std::size_t loop = 0; loop < options.maxLoops; ++loop) {
    ++result.loops;
    const std::vector<double> centerSelf = selfDots(centers);
    std::size_t changed = 0;
    for (std::size_t i = 0; i < m; ++i) {
      const int c = nearest(ds, i, centers, centerSelf);
      if (c != assign[i]) {
        assign[i] = c;
        ++changed;
      }
    }
    // Recompute the centers from the fresh assignment (Algorithm 2 line 6).
    std::vector<std::vector<double>> sums(
        static_cast<std::size_t>(k), std::vector<double>(n, 0.0));
    std::vector<std::size_t> counts(static_cast<std::size_t>(k), 0);
    for (std::size_t i = 0; i < m; ++i) {
      const auto c = static_cast<std::size_t>(assign[i]);
      ds.addRowTo(i, sums[c]);
      ++counts[c];
    }
    for (std::size_t c = 0; c < static_cast<std::size_t>(k); ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its old center
      for (std::size_t f = 0; f < n; ++f) {
        centers[c][f] = static_cast<float>(sums[c][f] / double(counts[c]));
      }
    }
    if (static_cast<double>(changed) / static_cast<double>(m) <=
        options.changeThreshold) {
      result.converged = true;
      break;
    }
  }

  result.partition.parts = k;
  result.partition.assign = std::move(assign);
  result.partition.centers = std::move(centers);
  result.sse = partitionSse(ds, result.partition);
  return result;
}

}  // namespace

KMeansResult kmeans(const data::Dataset& ds, const KMeansOptions& options) {
  CASVM_CHECK(options.clusters > 0, "clusters must be positive");
  CASVM_CHECK(ds.rows() >= static_cast<std::size_t>(options.clusters),
              "fewer samples than clusters");
  CASVM_CHECK(options.restarts >= 1, "restarts must be at least 1");
  KMeansResult best = kmeansSingle(ds, options, options.seed);
  for (int r = 1; r < options.restarts; ++r) {
    KMeansResult candidate =
        kmeansSingle(ds, options, options.seed + static_cast<std::uint64_t>(r));
    if (candidate.sse < best.sse) best = std::move(candidate);
  }
  return best;
}

KMeansResult kmeansDistributed(net::Comm& comm, const data::Dataset& local,
                               const KMeansOptions& options) {
  const int k = options.clusters;
  CASVM_CHECK(k > 0, "clusters must be positive");
  const std::size_t localRows = local.rows();
  const std::size_t n = local.cols();
  const auto totalRows = static_cast<std::size_t>(
      comm.allreduceSum(static_cast<long long>(localRows)));
  CASVM_CHECK(totalRows >= static_cast<std::size_t>(k),
              "fewer samples than clusters");

  // Rank 0 seeds the centers from its own block and broadcasts them
  // (Algorithm 4 lines 1-4 use the same root-seeded scheme).
  std::vector<float> flatCenters(static_cast<std::size_t>(k) * n, 0.0f);
  if (comm.rank() == 0) {
    CASVM_CHECK(localRows >= static_cast<std::size_t>(k),
                "rank 0 needs at least k local samples to seed centers");
    const std::vector<std::vector<float>> init =
        initialCenters(local, k, options.seed, options.plusPlusInit);
    for (std::size_t c = 0; c < init.size(); ++c) {
      std::copy(init[c].begin(), init[c].end(),
                flatCenters.begin() + static_cast<std::ptrdiff_t>(c * n));
    }
  }
  comm.bcast(flatCenters, 0);

  std::vector<std::vector<float>> centers(
      static_cast<std::size_t>(k), std::vector<float>(n, 0.0f));
  auto unflatten = [&] {
    for (std::size_t c = 0; c < static_cast<std::size_t>(k); ++c) {
      std::copy(flatCenters.begin() + static_cast<std::ptrdiff_t>(c * n),
                flatCenters.begin() + static_cast<std::ptrdiff_t>((c + 1) * n),
                centers[c].begin());
    }
  };
  unflatten();

  std::vector<int> assign(localRows, -1);
  KMeansResult result;
  for (std::size_t loop = 0; loop < options.maxLoops; ++loop) {
    ++result.loops;
    const std::vector<double> centerSelf = selfDots(centers);
    long long changed = 0;
    for (std::size_t i = 0; i < localRows; ++i) {
      const int c = nearest(local, i, centers, centerSelf);
      if (c != assign[i]) {
        assign[i] = c;
        ++changed;
      }
    }

    // Global center recomputation: allreduce per-center sums and counts.
    std::vector<double> sums(static_cast<std::size_t>(k) * n, 0.0);
    std::vector<long long> counts(static_cast<std::size_t>(k), 0);
    for (std::size_t i = 0; i < localRows; ++i) {
      const auto c = static_cast<std::size_t>(assign[i]);
      local.addRowTo(i, std::span<double>(sums).subspan(c * n, n));
      ++counts[c];
    }
    sums = comm.allreduce(std::move(sums),
                          [](double a, double b) { return a + b; });
    counts = comm.allreduce(std::move(counts),
                            [](long long a, long long b) { return a + b; });
    for (std::size_t c = 0; c < static_cast<std::size_t>(k); ++c) {
      if (counts[c] == 0) continue;
      for (std::size_t f = 0; f < n; ++f) {
        flatCenters[c * n + f] =
            static_cast<float>(sums[c * n + f] / double(counts[c]));
      }
    }
    unflatten();

    const long long totalChanged = comm.allreduceSum(changed);
    if (static_cast<double>(totalChanged) / static_cast<double>(totalRows) <=
        options.changeThreshold) {
      result.converged = true;
      break;
    }
  }

  result.partition.parts = k;
  result.partition.assign = std::move(assign);
  result.partition.centers = std::move(centers);
  return result;
}

}  // namespace casvm::cluster
