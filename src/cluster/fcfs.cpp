#include "casvm/cluster/fcfs.hpp"

#include <cmath>
#include <limits>

#include "casvm/support/error.hpp"
#include "casvm/support/rng.hpp"

namespace casvm::cluster {

namespace {

std::vector<double> centerSelfDots(
    const std::vector<std::vector<float>>& centers) {
  std::vector<double> out(centers.size(), 0.0);
  for (std::size_t c = 0; c < centers.size(); ++c) {
    for (float v : centers[c]) out[c] += double(v) * double(v);
  }
  return out;
}

std::size_t ceilDiv(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Core of Algorithm 3: assign each sample to the nearest center that has
/// remaining quota for the sample's class bucket. `quota[bucket][center]`
/// is decremented as samples land. bucket(i) selects 0 for the class-blind
/// variant, or 0/1 by label for the ratio-balanced variant.
template <class BucketFn>
std::vector<int> assignFcfs(const data::Dataset& ds,
                            const std::vector<std::vector<float>>& centers,
                            std::vector<std::vector<std::size_t>>& quota,
                            BucketFn bucket) {
  const std::vector<double> centerSelf = centerSelfDots(centers);
  std::vector<int> assign(ds.rows(), -1);
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    std::vector<std::size_t>& q = quota[bucket(i)];
    double bestDist = std::numeric_limits<double>::infinity();
    int best = -1;
    for (std::size_t c = 0; c < centers.size(); ++c) {
      if (q[c] == 0) continue;  // center already balanced for this class
      const double d = ds.squaredDistanceTo(i, centers[c], centerSelf[c]);
      if (d < bestDist) {
        bestDist = d;
        best = static_cast<int>(c);
      }
    }
    CASVM_ASSERT(best >= 0, "quota exhausted: ceil-divided quotas must fit");
    --q[static_cast<std::size_t>(best)];
    assign[i] = best;
  }
  return assign;
}

std::vector<std::vector<std::size_t>> makeQuota(const data::Dataset& ds,
                                                int parts,
                                                bool ratioBalanced) {
  const auto p = static_cast<std::size_t>(parts);
  if (!ratioBalanced) {
    return {std::vector<std::size_t>(p, ceilDiv(ds.rows(), p))};
  }
  // Bucket 0 = negative samples, bucket 1 = positive samples.
  return {std::vector<std::size_t>(p, ceilDiv(ds.negatives(), p)),
          std::vector<std::size_t>(p, ceilDiv(ds.positives(), p))};
}

std::vector<std::vector<float>> pickInitialCenters(const data::Dataset& ds,
                                                   int parts,
                                                   std::uint64_t seed) {
  Rng rng(seed);
  const std::vector<std::size_t> picks = rng.sampleWithoutReplacement(
      ds.rows(), static_cast<std::size_t>(parts));
  std::vector<std::vector<float>> centers(
      static_cast<std::size_t>(parts), std::vector<float>(ds.cols(), 0.0f));
  for (std::size_t c = 0; c < picks.size(); ++c) {
    ds.copyRowDense(picks[c], centers[c]);
  }
  return centers;
}

}  // namespace

Partition fcfsPartition(const data::Dataset& ds, const FcfsOptions& options) {
  const int parts = options.parts;
  CASVM_CHECK(parts > 0, "parts must be positive");
  CASVM_CHECK(ds.rows() >= static_cast<std::size_t>(parts),
              "fewer samples than parts");

  std::vector<std::vector<float>> centers =
      pickInitialCenters(ds, parts, options.seed);
  std::vector<std::vector<std::size_t>> quota =
      makeQuota(ds, parts, options.ratioBalanced);

  Partition out;
  out.parts = parts;
  if (options.ratioBalanced) {
    out.assign = assignFcfs(ds, centers, quota, [&](std::size_t i) {
      return ds.label(i) == 1 ? std::size_t{1} : std::size_t{0};
    });
  } else {
    out.assign =
        assignFcfs(ds, centers, quota, [](std::size_t) { return std::size_t{0}; });
  }

  out.centers = options.recomputeCenters
                    ? computeCenters(ds, out.assign, parts)
                    : std::move(centers);
  return out;
}

Partition fcfsPartitionDistributed(net::Comm& comm, const data::Dataset& local,
                                   const FcfsOptions& options) {
  const int parts = options.parts;
  CASVM_CHECK(parts > 0, "parts must be positive");
  const std::size_t n = local.cols();

  // Root seeds centers from its block and broadcasts (Algorithm 4 lines 1-4).
  std::vector<float> flat(static_cast<std::size_t>(parts) * n, 0.0f);
  if (comm.rank() == 0) {
    CASVM_CHECK(local.rows() >= static_cast<std::size_t>(parts),
                "rank 0 needs at least `parts` local samples");
    const auto init = pickInitialCenters(local, parts, options.seed);
    for (std::size_t c = 0; c < init.size(); ++c) {
      std::copy(init[c].begin(), init[c].end(),
                flat.begin() + static_cast<std::ptrdiff_t>(c * n));
    }
  }
  comm.bcast(flat, 0);
  std::vector<std::vector<float>> centers(
      static_cast<std::size_t>(parts), std::vector<float>(n, 0.0f));
  for (std::size_t c = 0; c < static_cast<std::size_t>(parts); ++c) {
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(c * n),
              flat.begin() + static_cast<std::ptrdiff_t>((c + 1) * n),
              centers[c].begin());
  }

  // Each rank solves the m/P -> P x m/P^2 subproblem independently
  // (Algorithm 4 lines 8-22) with per-rank quotas over its own block.
  std::vector<std::vector<std::size_t>> quota =
      makeQuota(local, parts, options.ratioBalanced);
  std::vector<int> assign;
  if (options.ratioBalanced) {
    assign = assignFcfs(local, centers, quota, [&](std::size_t i) {
      return local.label(i) == 1 ? std::size_t{1} : std::size_t{0};
    });
  } else {
    assign = assignFcfs(local, centers, quota,
                        [](std::size_t) { return std::size_t{0}; });
  }

  // Conquer phase (lines 23-26): recompute CT and CS with allreduces.
  std::vector<double> sums(static_cast<std::size_t>(parts) * n, 0.0);
  std::vector<long long> counts(static_cast<std::size_t>(parts), 0);
  for (std::size_t i = 0; i < local.rows(); ++i) {
    const auto c = static_cast<std::size_t>(assign[i]);
    local.addRowTo(i, std::span<double>(sums).subspan(c * n, n));
    ++counts[c];
  }
  sums = comm.allreduce(std::move(sums),
                        [](double a, double b) { return a + b; });
  counts = comm.allreduce(std::move(counts),
                          [](long long a, long long b) { return a + b; });

  Partition out;
  out.parts = parts;
  out.assign = assign;
  out.centers.assign(static_cast<std::size_t>(parts),
                     std::vector<float>(n, 0.0f));
  if (options.recomputeCenters) {
    for (std::size_t c = 0; c < static_cast<std::size_t>(parts); ++c) {
      if (counts[c] == 0) {
        // Globally empty cluster: a mean does not exist, and an all-zeros
        // center would silently attract prediction-time routing toward the
        // origin. Keep the seed center — a real data point.
        out.centers[c] = centers[c];
        continue;
      }
      for (std::size_t f = 0; f < n; ++f) {
        out.centers[c][f] =
            static_cast<float>(sums[c * n + f] / double(counts[c]));
      }
    }
  } else {
    out.centers = std::move(centers);
  }

  // Line 27: gather the membership to node 0 (kept for communication-volume
  // fidelity with the paper's algorithm; the result is rank-local anyway).
  (void)comm.gatherv(assign, 0);
  return out;
}

}  // namespace casvm::cluster
