#include "casvm/cluster/partition.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "casvm/support/error.hpp"
#include "casvm/support/rng.hpp"

namespace casvm::cluster {

std::vector<std::size_t> Partition::sizes() const {
  std::vector<std::size_t> out(static_cast<std::size_t>(parts), 0);
  for (int a : assign) {
    CASVM_ASSERT(a >= 0 && a < parts, "assignment out of range");
    ++out[static_cast<std::size_t>(a)];
  }
  return out;
}

std::vector<std::vector<std::size_t>> Partition::groups() const {
  std::vector<std::vector<std::size_t>> out(static_cast<std::size_t>(parts));
  for (std::size_t i = 0; i < assign.size(); ++i) {
    out[static_cast<std::size_t>(assign[i])].push_back(i);
  }
  return out;
}

std::vector<std::size_t> Partition::positiveCounts(
    const data::Dataset& ds) const {
  CASVM_CHECK(ds.rows() == assign.size(), "dataset/assignment size mismatch");
  std::vector<std::size_t> out(static_cast<std::size_t>(parts), 0);
  for (std::size_t i = 0; i < assign.size(); ++i) {
    if (ds.label(i) == 1) ++out[static_cast<std::size_t>(assign[i])];
  }
  return out;
}

double Partition::imbalance() const {
  if (assign.empty() || parts == 0) return 1.0;
  const std::vector<std::size_t> s = sizes();
  const std::size_t largest = *std::max_element(s.begin(), s.end());
  const double balanced =
      std::ceil(static_cast<double>(assign.size()) / parts);
  return static_cast<double>(largest) / balanced;
}

int Partition::nearestCenter(std::span<const float> x) const {
  CASVM_CHECK(!centers.empty(), "partition has no centers");
  int best = 0;
  double bestDist = std::numeric_limits<double>::infinity();
  for (int c = 0; c < parts; ++c) {
    const auto& center = centers[static_cast<std::size_t>(c)];
    CASVM_CHECK(center.size() == x.size(), "center/vector length mismatch");
    double d = 0.0;
    for (std::size_t k = 0; k < x.size(); ++k) {
      const double diff = double(x[k]) - double(center[k]);
      d += diff * diff;
    }
    if (d < bestDist) {
      bestDist = d;
      best = c;
    }
  }
  return best;
}

int Partition::nearestCenter(const data::Dataset& ds, std::size_t i) const {
  CASVM_CHECK(!centers.empty(), "partition has no centers");
  int best = 0;
  double bestDist = std::numeric_limits<double>::infinity();
  for (int c = 0; c < parts; ++c) {
    const auto& center = centers[static_cast<std::size_t>(c)];
    double centerSelf = 0.0;
    for (float v : center) centerSelf += double(v) * double(v);
    const double d = ds.squaredDistanceTo(i, center, centerSelf);
    if (d < bestDist) {
      bestDist = d;
      best = c;
    }
  }
  return best;
}

void Partition::validate(std::size_t expectedSamples) const {
  CASVM_CHECK(parts > 0, "partition has no parts");
  CASVM_CHECK(assign.size() == expectedSamples,
              "assignment length mismatch");
  for (int a : assign) {
    CASVM_CHECK(a >= 0 && a < parts, "assignment out of range");
  }
  CASVM_CHECK(centers.empty() ||
                  centers.size() == static_cast<std::size_t>(parts),
              "center count mismatch");
}

std::vector<std::vector<float>> computeCenters(const data::Dataset& ds,
                                               const std::vector<int>& assign,
                                               int parts) {
  CASVM_CHECK(ds.rows() == assign.size(), "dataset/assignment size mismatch");
  const std::size_t n = ds.cols();
  std::vector<std::vector<double>> sums(
      static_cast<std::size_t>(parts), std::vector<double>(n, 0.0));
  std::vector<std::size_t> counts(static_cast<std::size_t>(parts), 0);
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    const auto part = static_cast<std::size_t>(assign[i]);
    ds.addRowTo(i, sums[part]);
    ++counts[part];
  }
  std::vector<std::vector<float>> centers(static_cast<std::size_t>(parts),
                                          std::vector<float>(n, 0.0f));
  for (std::size_t p = 0; p < static_cast<std::size_t>(parts); ++p) {
    if (counts[p] == 0) continue;  // empty part keeps the zero center
    for (std::size_t k = 0; k < n; ++k) {
      centers[p][k] = static_cast<float>(sums[p][k] / double(counts[p]));
    }
  }
  return centers;
}

Partition randomPartition(const data::Dataset& ds, int parts,
                          std::uint64_t seed) {
  CASVM_CHECK(parts > 0, "parts must be positive");
  CASVM_CHECK(ds.rows() >= static_cast<std::size_t>(parts),
              "fewer samples than parts");
  Rng rng(seed);
  std::vector<std::size_t> order(ds.rows());
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);

  Partition out;
  out.parts = parts;
  out.assign.resize(ds.rows());
  // Deal contiguous slices of the shuffled order so sizes differ by <= 1.
  const std::size_t m = ds.rows();
  for (int p = 0; p < parts; ++p) {
    const std::size_t begin = m * static_cast<std::size_t>(p) /
                              static_cast<std::size_t>(parts);
    const std::size_t end = m * (static_cast<std::size_t>(p) + 1) /
                            static_cast<std::size_t>(parts);
    for (std::size_t k = begin; k < end; ++k) out.assign[order[k]] = p;
  }
  out.centers = computeCenters(ds, out.assign, parts);
  return out;
}

Partition blockPartition(const data::Dataset& ds, int parts) {
  CASVM_CHECK(parts > 0, "parts must be positive");
  CASVM_CHECK(ds.rows() >= static_cast<std::size_t>(parts),
              "fewer samples than parts");
  Partition out;
  out.parts = parts;
  out.assign.resize(ds.rows());
  const std::size_t m = ds.rows();
  for (int p = 0; p < parts; ++p) {
    const std::size_t begin = m * static_cast<std::size_t>(p) /
                              static_cast<std::size_t>(parts);
    const std::size_t end = m * (static_cast<std::size_t>(p) + 1) /
                            static_cast<std::size_t>(parts);
    for (std::size_t k = begin; k < end; ++k) out.assign[k] = p;
  }
  out.centers = computeCenters(ds, out.assign, parts);
  return out;
}

}  // namespace casvm::cluster
