#include "casvm/cluster/balanced_kmeans.hpp"

#include <cmath>
#include <limits>

#include "casvm/support/error.hpp"

namespace casvm::cluster {

namespace {

std::size_t ceilDiv(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Algorithm 5's migration loop over one class bucket: move the farthest
/// sample of each over-loaded center to the nearest under-loaded center.
/// `eligible(i)` filters the samples that belong to the bucket; `quota` is
/// the per-center capacity for that bucket; `load` its current counts.
template <class EligibleFn>
std::size_t rebalanceBucket(const data::Dataset& ds,
                            const std::vector<std::vector<double>>& dist,
                            std::vector<int>& assign,
                            std::vector<std::size_t>& load,
                            const std::vector<std::size_t>& quota,
                            EligibleFn eligible) {
  const int parts = static_cast<int>(quota.size());
  std::size_t moves = 0;
  for (int j = 0; j < parts; ++j) {
    const auto uj = static_cast<std::size_t>(j);
    while (load[uj] > quota[uj]) {
      // Farthest eligible sample still assigned to center j (lines 14-17).
      double maxDist = -1.0;
      std::size_t maxInd = ds.rows();
      for (std::size_t i = 0; i < ds.rows(); ++i) {
        if (assign[i] != j || !eligible(i)) continue;
        if (dist[i][uj] > maxDist) {
          maxDist = dist[i][uj];
          maxInd = i;
        }
      }
      CASVM_ASSERT(maxInd < ds.rows(), "over-loaded center has no samples");

      // Nearest under-loaded center for that sample (lines 18-24).
      double minDist = std::numeric_limits<double>::infinity();
      int minInd = -1;
      for (int c = 0; c < parts; ++c) {
        const auto uc = static_cast<std::size_t>(c);
        if (load[uc] >= quota[uc]) continue;
        if (dist[maxInd][uc] < minDist) {
          minDist = dist[maxInd][uc];
          minInd = c;
        }
      }
      CASVM_ASSERT(minInd >= 0, "no under-loaded center available");

      assign[maxInd] = minInd;            // lines 25-27
      --load[uj];
      ++load[static_cast<std::size_t>(minInd)];
      ++moves;
    }
  }
  return moves;
}

/// Shared rebalancing core used by the serial and distributed variants:
/// full m x P distance matrix, then one (class-blind) or two (per-class)
/// migration passes.
std::size_t rebalance(const data::Dataset& ds, Partition& partition,
                      bool ratioBalanced) {
  const int parts = partition.parts;
  const auto p = static_cast<std::size_t>(parts);
  const std::size_t m = ds.rows();

  // Distance matrix (Algorithm 5 lines 6-8).
  std::vector<double> centerSelf(p, 0.0);
  for (std::size_t c = 0; c < p; ++c) {
    for (float v : partition.centers[c]) centerSelf[c] += double(v) * double(v);
  }
  std::vector<std::vector<double>> dist(m, std::vector<double>(p));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t c = 0; c < p; ++c) {
      dist[i][c] =
          ds.squaredDistanceTo(i, partition.centers[c], centerSelf[c]);
    }
  }

  std::size_t moves = 0;
  if (!ratioBalanced) {
    std::vector<std::size_t> load(p, 0);
    for (int a : partition.assign) ++load[static_cast<std::size_t>(a)];
    const std::vector<std::size_t> quota(p, ceilDiv(m, p));
    moves += rebalanceBucket(ds, dist, partition.assign, load, quota,
                             [](std::size_t) { return true; });
    return moves;
  }

  // Ratio-balanced: one migration pass per class with class quotas.
  for (const std::int8_t cls : {std::int8_t{1}, std::int8_t{-1}}) {
    std::vector<std::size_t> load(p, 0);
    std::size_t classTotal = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (ds.label(i) == cls) {
        ++load[static_cast<std::size_t>(partition.assign[i])];
        ++classTotal;
      }
    }
    if (classTotal == 0) continue;
    const std::vector<std::size_t> quota(p, ceilDiv(classTotal, p));
    moves += rebalanceBucket(ds, dist, partition.assign, load, quota,
                             [&](std::size_t i) { return ds.label(i) == cls; });
  }
  return moves;
}

}  // namespace

BalancedKMeansResult balancedKmeans(const data::Dataset& ds,
                                    const BalancedKMeansOptions& options) {
  CASVM_CHECK(options.parts > 0, "parts must be positive");
  CASVM_CHECK(ds.rows() >= static_cast<std::size_t>(options.parts),
              "fewer samples than parts");

  KMeansOptions km;
  km.clusters = options.parts;
  km.maxLoops = options.maxKmeansLoops;
  km.changeThreshold = options.kmeansChangeThreshold;
  km.seed = options.seed;
  KMeansResult base = kmeans(ds, km);

  BalancedKMeansResult result;
  result.kmeansLoops = base.loops;
  result.partition = std::move(base.partition);
  result.moves = rebalance(ds, result.partition, options.ratioBalanced);
  if (options.recomputeCenters) {
    result.partition.centers =
        computeCenters(ds, result.partition.assign, options.parts);
  }
  return result;
}

BalancedKMeansResult balancedKmeansDistributed(
    net::Comm& comm, const data::Dataset& local,
    const BalancedKMeansOptions& options) {
  CASVM_CHECK(options.parts > 0, "parts must be positive");

  KMeansOptions km;
  km.clusters = options.parts;
  km.maxLoops = options.maxKmeansLoops;
  km.changeThreshold = options.kmeansChangeThreshold;
  km.seed = options.seed;
  KMeansResult base = kmeansDistributed(comm, local, km);

  BalancedKMeansResult result;
  result.kmeansLoops = base.loops;
  result.partition = std::move(base.partition);
  // Divide-and-conquer rebalance: per-rank quotas over the local block.
  result.moves = rebalance(local, result.partition, options.ratioBalanced);

  // Conquer: recompute global centers from the final assignment.
  if (options.recomputeCenters) {
    const std::size_t n = local.cols();
    const auto p = static_cast<std::size_t>(options.parts);
    std::vector<double> sums(p * n, 0.0);
    std::vector<long long> counts(p, 0);
    for (std::size_t i = 0; i < local.rows(); ++i) {
      const auto c = static_cast<std::size_t>(result.partition.assign[i]);
      local.addRowTo(i, std::span<double>(sums).subspan(c * n, n));
      ++counts[c];
    }
    sums = comm.allreduce(std::move(sums),
                          [](double a, double b) { return a + b; });
    counts = comm.allreduce(std::move(counts),
                            [](long long a, long long b) { return a + b; });
    for (std::size_t c = 0; c < p; ++c) {
      if (counts[c] == 0) continue;
      for (std::size_t f = 0; f < n; ++f) {
        result.partition.centers[c][f] =
            static_cast<float>(sums[c * n + f] / double(counts[c]));
      }
    }
  }
  return result;
}

}  // namespace casvm::cluster
