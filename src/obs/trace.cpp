#include "casvm/obs/trace.hpp"

#include <cstdio>
#include <cstring>
#include <type_traits>

#include "casvm/support/error.hpp"
#include "casvm/support/strings.hpp"

namespace casvm::obs {

const char* catName(Cat cat) {
  switch (cat) {
    case Cat::Comm: return "comm";
    case Cat::Phase: return "phase";
    case Cat::Solver: return "solver";
    case Cat::Serve: return "serve";
  }
  return "unknown";
}

Lane& TraceRecorder::addLane(int pid, int tid, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  lanes_.push_back(std::make_unique<Lane>(pid, tid, std::move(name)));
  return *lanes_.back();
}

std::size_t TraceRecorder::laneCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lanes_.size();
}

const Lane& TraceRecorder::lane(std::size_t i) const {
  std::lock_guard<std::mutex> lock(mutex_);
  CASVM_CHECK(i < lanes_.size(), "lane index out of range");
  return *lanes_[i];
}

std::size_t TraceRecorder::eventCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& lane : lanes_) total += lane->events().size();
  return total;
}

std::size_t TraceRecorder::spanCount(int pid, Cat cat) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& lane : lanes_) {
    if (lane->pid() != pid) continue;
    for (const Event& e : lane->events()) {
      if (!e.instant && e.cat == cat) ++total;
    }
  }
  return total;
}

double TraceRecorder::commSeconds(int pid) const {
  std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const auto& lane : lanes_) {
    if (lane->pid() != pid) continue;
    for (const Event& e : lane->events()) {
      if (!e.instant && e.cat == Cat::Comm) total += e.durationSeconds();
    }
  }
  return total;
}

std::string TraceRecorder::chromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ",";
    first = false;
    out += "\n  ";
  };

  // Metadata events naming each process/thread row.
  for (const auto& lane : lanes_) {
    sep();
    appendFormat(out,
                 "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, "
                 "\"tid\": %d, \"args\": {\"name\": \"%s\"}}",
                 lane->pid(), lane->tid(), lane->name().c_str());
  }

  for (const auto& lane : lanes_) {
    for (const Event& e : lane->events()) {
      sep();
      // Chrome timestamps are microseconds; producers record seconds.
      const double ts = e.startSeconds * 1e6;
      if (e.instant) {
        appendFormat(out,
                     "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"i\", "
                     "\"s\": \"t\", \"pid\": %d, \"tid\": %d, \"ts\": %.3f, "
                     "\"args\": {\"iter\": %lld, \"active\": %lld, "
                     "\"gap\": %.6g, \"hit_rate\": %.4f}}",
                     e.name, catName(e.cat), lane->pid(), lane->tid(), ts,
                     static_cast<long long>(e.iter),
                     static_cast<long long>(e.active), e.gap, e.hitRate);
        continue;
      }
      appendFormat(out,
                   "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                   "\"pid\": %d, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f",
                   e.name, catName(e.cat), lane->pid(), lane->tid(), ts,
                   e.durationSeconds() * 1e6);
      out += ", \"args\": {";
      bool firstArg = true;
      const auto arg = [&](const char* key, long long value) {
        appendFormat(out, "%s\"%s\": %lld", firstArg ? "" : ", ", key, value);
        firstArg = false;
      };
      if (e.peer >= 0) arg("peer", e.peer);
      if (e.bytes >= 0) arg("bytes", e.bytes);
      if (e.detail >= 0) arg("detail", e.detail);
      out += "}}";
    }
  }
  out += "\n]}\n";
  return out;
}

namespace {

// Tiny flat codec for trace shards: scalars are memcpy'd little-endian
// as-stored, strings and blobs are u64-length-prefixed.
template <class T>
void putScalar(std::vector<std::byte>& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &v, sizeof(T));
}

void putString(std::vector<std::byte>& out, const std::string& s) {
  putScalar<std::uint64_t>(out, s.size());
  const std::size_t at = out.size();
  out.resize(at + s.size());
  std::memcpy(out.data() + at, s.data(), s.size());
}

template <class T>
T getScalar(const std::vector<std::byte>& in, std::size_t& at) {
  static_assert(std::is_trivially_copyable_v<T>);
  CASVM_CHECK(at + sizeof(T) <= in.size(), "trace shard truncated");
  T v;
  std::memcpy(&v, in.data() + at, sizeof(T));
  at += sizeof(T);
  return v;
}

std::string getString(const std::vector<std::byte>& in, std::size_t& at) {
  const auto len = getScalar<std::uint64_t>(in, at);
  CASVM_CHECK(at + len <= in.size(), "trace shard truncated");
  std::string s(reinterpret_cast<const char*>(in.data() + at), len);
  at += len;
  return s;
}

}  // namespace

std::vector<std::byte> TraceRecorder::encodeShard() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::byte> out;
  putScalar<std::uint64_t>(out, lanes_.size());
  for (const auto& lane : lanes_) {
    putScalar<std::int32_t>(out, lane->pid());
    putScalar<std::int32_t>(out, lane->tid());
    putString(out, lane->name());
    putScalar<std::uint64_t>(out, lane->events().size());
    for (const Event& e : lane->events()) {
      putString(out, e.name);
      putScalar<std::uint8_t>(out, static_cast<std::uint8_t>(e.cat));
      putScalar<std::uint8_t>(out, e.instant ? 1 : 0);
      putScalar<double>(out, e.startSeconds);
      putScalar<double>(out, e.endSeconds);
      putScalar<std::int64_t>(out, e.peer);
      putScalar<std::int64_t>(out, e.bytes);
      putScalar<std::int64_t>(out, e.detail);
      putScalar<std::int64_t>(out, e.iter);
      putScalar<std::int64_t>(out, e.active);
      putScalar<double>(out, e.gap);
      putScalar<double>(out, e.hitRate);
    }
  }
  return out;
}

void TraceRecorder::absorbShard(const std::vector<std::byte>& shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t at = 0;
  const auto laneCount = getScalar<std::uint64_t>(shard, at);
  for (std::uint64_t l = 0; l < laneCount; ++l) {
    const auto pid = getScalar<std::int32_t>(shard, at);
    const auto tid = getScalar<std::int32_t>(shard, at);
    std::string name = getString(shard, at);
    lanes_.push_back(std::make_unique<Lane>(pid, tid, std::move(name)));
    Lane& lane = *lanes_.back();
    const auto eventCount = getScalar<std::uint64_t>(shard, at);
    for (std::uint64_t i = 0; i < eventCount; ++i) {
      Event e;
      e.name = intern(getString(shard, at));
      e.cat = static_cast<Cat>(getScalar<std::uint8_t>(shard, at));
      e.instant = getScalar<std::uint8_t>(shard, at) != 0;
      e.startSeconds = getScalar<double>(shard, at);
      e.endSeconds = getScalar<double>(shard, at);
      e.peer = getScalar<std::int64_t>(shard, at);
      e.bytes = getScalar<std::int64_t>(shard, at);
      e.detail = getScalar<std::int64_t>(shard, at);
      e.iter = getScalar<std::int64_t>(shard, at);
      e.active = getScalar<std::int64_t>(shard, at);
      e.gap = getScalar<double>(shard, at);
      e.hitRate = getScalar<double>(shard, at);
      lane.record(e);
    }
  }
  CASVM_CHECK(at == shard.size(), "trace shard has trailing bytes");
}

const char* TraceRecorder::intern(const std::string& name) {
  for (const auto& s : interned_) {
    if (*s == name) return s->c_str();
  }
  interned_.push_back(std::make_unique<std::string>(name));
  return interned_.back()->c_str();
}

void TraceRecorder::writeChromeTrace(const std::string& path) const {
  const std::string json = chromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  CASVM_CHECK(f != nullptr, "cannot open trace output file: " + path);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int closed = std::fclose(f);
  CASVM_CHECK(written == json.size() && closed == 0,
              "failed to write trace output file: " + path);
}

}  // namespace casvm::obs
