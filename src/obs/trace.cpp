#include "casvm/obs/trace.hpp"

#include <cstdio>

#include "casvm/support/error.hpp"
#include "casvm/support/strings.hpp"

namespace casvm::obs {

const char* catName(Cat cat) {
  switch (cat) {
    case Cat::Comm: return "comm";
    case Cat::Phase: return "phase";
    case Cat::Solver: return "solver";
    case Cat::Serve: return "serve";
  }
  return "unknown";
}

Lane& TraceRecorder::addLane(int pid, int tid, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  lanes_.push_back(std::make_unique<Lane>(pid, tid, std::move(name)));
  return *lanes_.back();
}

std::size_t TraceRecorder::laneCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lanes_.size();
}

const Lane& TraceRecorder::lane(std::size_t i) const {
  std::lock_guard<std::mutex> lock(mutex_);
  CASVM_CHECK(i < lanes_.size(), "lane index out of range");
  return *lanes_[i];
}

std::size_t TraceRecorder::eventCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& lane : lanes_) total += lane->events().size();
  return total;
}

std::size_t TraceRecorder::spanCount(int pid, Cat cat) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& lane : lanes_) {
    if (lane->pid() != pid) continue;
    for (const Event& e : lane->events()) {
      if (!e.instant && e.cat == cat) ++total;
    }
  }
  return total;
}

double TraceRecorder::commSeconds(int pid) const {
  std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const auto& lane : lanes_) {
    if (lane->pid() != pid) continue;
    for (const Event& e : lane->events()) {
      if (!e.instant && e.cat == Cat::Comm) total += e.durationSeconds();
    }
  }
  return total;
}

std::string TraceRecorder::chromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ",";
    first = false;
    out += "\n  ";
  };

  // Metadata events naming each process/thread row.
  for (const auto& lane : lanes_) {
    sep();
    appendFormat(out,
                 "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, "
                 "\"tid\": %d, \"args\": {\"name\": \"%s\"}}",
                 lane->pid(), lane->tid(), lane->name().c_str());
  }

  for (const auto& lane : lanes_) {
    for (const Event& e : lane->events()) {
      sep();
      // Chrome timestamps are microseconds; producers record seconds.
      const double ts = e.startSeconds * 1e6;
      if (e.instant) {
        appendFormat(out,
                     "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"i\", "
                     "\"s\": \"t\", \"pid\": %d, \"tid\": %d, \"ts\": %.3f, "
                     "\"args\": {\"iter\": %lld, \"active\": %lld, "
                     "\"gap\": %.6g, \"hit_rate\": %.4f}}",
                     e.name, catName(e.cat), lane->pid(), lane->tid(), ts,
                     static_cast<long long>(e.iter),
                     static_cast<long long>(e.active), e.gap, e.hitRate);
        continue;
      }
      appendFormat(out,
                   "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                   "\"pid\": %d, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f",
                   e.name, catName(e.cat), lane->pid(), lane->tid(), ts,
                   e.durationSeconds() * 1e6);
      out += ", \"args\": {";
      bool firstArg = true;
      const auto arg = [&](const char* key, long long value) {
        appendFormat(out, "%s\"%s\": %lld", firstArg ? "" : ", ", key, value);
        firstArg = false;
      };
      if (e.peer >= 0) arg("peer", e.peer);
      if (e.bytes >= 0) arg("bytes", e.bytes);
      if (e.detail >= 0) arg("detail", e.detail);
      out += "}}";
    }
  }
  out += "\n]}\n";
  return out;
}

void TraceRecorder::writeChromeTrace(const std::string& path) const {
  const std::string json = chromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  CASVM_CHECK(f != nullptr, "cannot open trace output file: " + path);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int closed = std::fclose(f);
  CASVM_CHECK(written == json.size() && closed == 0,
              "failed to write trace output file: " + path);
}

}  // namespace casvm::obs
