#include "casvm/obs/metrics.hpp"

#include <cstdio>

#include "casvm/support/atomic_file.hpp"
#include "casvm/support/error.hpp"
#include "casvm/support/strings.hpp"

namespace casvm::obs {

std::string MetricsReport::toJson() const {
  std::string out;
  appendFormat(out,
               "{\n  \"ranks\": %d,\n  \"wall_seconds\": %.6f,\n"
               "  \"trace_events\": %llu,\n  \"per_rank\": [",
               ranks, wallSeconds,
               static_cast<unsigned long long>(traceEvents));
  for (std::size_t i = 0; i < perRank.size(); ++i) {
    const RankMetrics& r = perRank[i];
    appendFormat(out,
                 "%s\n    {\"rank\": %d, \"compute_seconds\": %.6f, "
                 "\"comm_seconds\": %.6f, \"wait_seconds\": %.6f, "
                 "\"trace_comm_seconds\": %.6f, \"comm_spans\": %llu}",
                 i == 0 ? "" : ",", r.rank, r.computeSeconds, r.commSeconds,
                 r.waitSeconds, r.traceCommSeconds,
                 static_cast<unsigned long long>(r.commSpans));
  }
  out += "\n  ],\n  \"phases\": [";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseTraffic& p = phases[i];
    appendFormat(out,
                 "%s\n    {\"phase\": \"%s\", \"bytes\": %llu, "
                 "\"ops\": %llu}",
                 i == 0 ? "" : ",", p.phase.c_str(),
                 static_cast<unsigned long long>(p.bytes),
                 static_cast<unsigned long long>(p.ops));
  }
  out += "\n  ],\n  \"recovery\": {";
  appendFormat(out,
               "\n    \"degraded\": %s,\n    \"resumed\": %s,\n"
               "    \"checkpoints_loaded\": %llu,",
               recovery.degraded ? "true" : "false",
               recovery.resumed ? "true" : "false",
               static_cast<unsigned long long>(recovery.checkpointsLoaded));
  const auto intList = [&out](const char* key, const std::vector<int>& v,
                              const char* trailer) {
    appendFormat(out, "\n    \"%s\": [", key);
    for (std::size_t i = 0; i < v.size(); ++i) {
      appendFormat(out, "%s%d", i == 0 ? "" : ", ", v[i]);
    }
    appendFormat(out, "]%s", trailer);
  };
  intList("failed_ranks", recovery.failedRanks, ",");
  intList("recovered_ranks", recovery.recoveredRanks, ",");
  intList("retries_per_rank", recovery.retriesPerRank, "");
  out += "\n  }\n}\n";
  return out;
}

void MetricsReport::writeFile(const std::string& path) const {
  // Atomic temp-file + rename: a consumer polling the path (the CI chaos
  // smoke does) never observes a partially written report.
  support::writeFileAtomic(path, toJson());
}

}  // namespace casvm::obs
