#include "casvm/obs/metrics.hpp"

#include <cstdio>

#include "casvm/support/error.hpp"
#include "casvm/support/strings.hpp"

namespace casvm::obs {

std::string MetricsReport::toJson() const {
  std::string out;
  appendFormat(out,
               "{\n  \"ranks\": %d,\n  \"wall_seconds\": %.6f,\n"
               "  \"trace_events\": %llu,\n  \"per_rank\": [",
               ranks, wallSeconds,
               static_cast<unsigned long long>(traceEvents));
  for (std::size_t i = 0; i < perRank.size(); ++i) {
    const RankMetrics& r = perRank[i];
    appendFormat(out,
                 "%s\n    {\"rank\": %d, \"compute_seconds\": %.6f, "
                 "\"comm_seconds\": %.6f, \"wait_seconds\": %.6f, "
                 "\"trace_comm_seconds\": %.6f, \"comm_spans\": %llu}",
                 i == 0 ? "" : ",", r.rank, r.computeSeconds, r.commSeconds,
                 r.waitSeconds, r.traceCommSeconds,
                 static_cast<unsigned long long>(r.commSpans));
  }
  out += "\n  ],\n  \"phases\": [";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseTraffic& p = phases[i];
    appendFormat(out,
                 "%s\n    {\"phase\": \"%s\", \"bytes\": %llu, "
                 "\"ops\": %llu}",
                 i == 0 ? "" : ",", p.phase.c_str(),
                 static_cast<unsigned long long>(p.bytes),
                 static_cast<unsigned long long>(p.ops));
  }
  out += "\n  ]\n}\n";
  return out;
}

void MetricsReport::writeFile(const std::string& path) const {
  const std::string json = toJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  CASVM_CHECK(f != nullptr, "cannot open metrics output file: " + path);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int closed = std::fclose(f);
  CASVM_CHECK(written == json.size() && closed == 0,
              "failed to write metrics output file: " + path);
}

}  // namespace casvm::obs
