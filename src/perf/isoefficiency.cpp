#include "casvm/perf/isoefficiency.hpp"

#include <cmath>

#include "casvm/support/error.hpp"

namespace casvm::perf {

namespace {

double log2d(int p) { return std::log2(static_cast<double>(p)); }

/// Parallel overhead To(W, P) for each model, with W the work in flops.
/// Only the W-independent part is returned for models affine in W; the
/// affine coefficient is handled in the solver below.
struct Overhead {
  double constant;  ///< To term independent of W
  double slope;     ///< To term proportional to W (e.g. the 4m of eqn. 10)
};

Overhead overhead(ScalingMethod method, int P, const IsoParams& q) {
  const double p = P;
  const double lg = P > 1 ? log2d(P) : 0.0;
  switch (method) {
    case ScalingMethod::MatVec1D:
      // Row-block matvec: flat allgather of the x vector gives
      // To ~ ts*P + tw*n*P, and the tw term forces n ~ P, W ~ P^2.
      return {q.ts * p + q.tw * p * p, 0.0};
    case ScalingMethod::MatVec2D:
      // 2-D blocked matvec: To ~ ts*P*log P + tw*n*sqrt(P)*log P.
      return {q.ts * p * lg + q.tw * p * std::sqrt(p) * lg, 0.0};
    case ScalingMethod::DisSmo: {
      // Eqn. (10): To = 14 P logP ts + (2n P logP + 4P^3) tw + 4m + 2P^2 + nP
      // with W = 2mn, so the 4m term contributes slope 2/n.
      const double constant = 14.0 * p * lg * q.ts +
                              (2.0 * q.n * p * lg + 4.0 * p * p * p) * q.tw +
                              2.0 * p * p + q.n * p;
      return {constant, 2.0 / q.n};
    }
    case ScalingMethod::Cascade:
    case ScalingMethod::DcSvm: {
      // Communication bound of eqn. (11): the P^2 * V_final term with
      // V_final = Omega(P) (at least one support vector per node) gives
      // the Table IV lower bound W = Omega(P^3). The layer traffic that
      // scales with W vanishes against the quadratic-in-m work of the
      // converged solve, so no W-proportional slope is charged.
      const double constant = q.tw * p * p * p +  // P^2 * V with V = Omega(P)
                              14.0 * p * lg * q.ts;
      return {constant, 0.0};
    }
    case ScalingMethod::CaSvm:
      // No inter-node communication; overhead is per-process system cost.
      return {q.ts * p, 0.0};
  }
  throw Error("unknown scaling method");
}

}  // namespace

std::string isoefficiencyFormula(ScalingMethod method) {
  switch (method) {
    case ScalingMethod::MatVec1D: return "W = Omega(P^2)";
    case ScalingMethod::MatVec2D: return "W = Omega(P)";
    case ScalingMethod::DisSmo: return "W = Omega(P^3)";
    case ScalingMethod::Cascade: return "W = Omega(P^3)";
    case ScalingMethod::DcSvm: return "W = Omega(P^3)";
    case ScalingMethod::CaSvm: return "W = Omega(P)";
  }
  throw Error("unknown scaling method");
}

double isoefficiencyW(ScalingMethod method, int P, const IsoParams& params) {
  CASVM_CHECK(P >= 1, "P must be positive");
  CASVM_CHECK(params.efficiency > 0.0 && params.efficiency < 1.0,
              "efficiency must be in (0, 1)");
  const double K = params.efficiency / (1.0 - params.efficiency);
  const Overhead o = overhead(method, P, params);
  // W = K * (constant + slope * W)  =>  W (1 - K*slope) = K*constant.
  const double denom = 1.0 - K * o.slope;
  CASVM_CHECK(denom > 0.0,
              "overhead grows at least linearly with W: no finite "
              "isoefficiency point at this efficiency");
  return K * o.constant / denom;
}

}  // namespace casvm::perf
