#include "casvm/perf/comm_model.hpp"

#include "casvm/support/error.hpp"

namespace casvm::perf {

double predictedCommBytes(core::Method method, const CommModelParams& q) {
  const double m = static_cast<double>(q.m);
  const double n = static_cast<double>(q.n);
  const double s = static_cast<double>(q.s);
  const double I = static_cast<double>(q.I);
  const double k = static_cast<double>(q.k);
  const double p = static_cast<double>(q.p);
  constexpr double w = 4.0;  // bytes per word, as in the paper's example

  switch (method) {
    case core::Method::DisSmo:
      // Theta(26Ip + 2pm + 4mn)
      return w * (26.0 * I * p + 2.0 * p * m + 4.0 * m * n);
    case core::Method::Cascade:
      // O(3mn + 3m + 3sn)
      return w * (3.0 * m * n + 3.0 * m + 3.0 * s * n);
    case core::Method::DcSvm:
      // Theta(9mn + 12m + 2kpn)
      return w * (9.0 * m * n + 12.0 * m + 2.0 * k * p * n);
    case core::Method::DcFilter:
      // O(6mn + 7m + 3sn + 2kpn)
      return w * (6.0 * m * n + 7.0 * m + 3.0 * s * n + 2.0 * k * p * n);
    case core::Method::CpSvm:
      // Theta(6mn + 7m + 2kpn)
      return w * (6.0 * m * n + 7.0 * m + 2.0 * k * p * n);
    case core::Method::BkmCa:
    case core::Method::FcfsCa:
      // Partitioning-only traffic, same order as CP-SVM's K-means part.
      return w * (3.0 * m * n + 3.0 * m + 2.0 * k * p * n);
    case core::Method::RaCa:
      return 0.0;
  }
  throw Error("unknown method");
}

const char* commFormula(core::Method method) {
  switch (method) {
    case core::Method::DisSmo: return "Theta(26Ip + 2pm + 4mn)";
    case core::Method::Cascade: return "O(3mn + 3m + 3sn)";
    case core::Method::DcSvm: return "Theta(9mn + 12m + 2kpn)";
    case core::Method::DcFilter: return "O(6mn + 7m + 3sn + 2kpn)";
    case core::Method::CpSvm: return "Theta(6mn + 7m + 2kpn)";
    case core::Method::BkmCa: return "O(3mn + 3m + 2kpn)";
    case core::Method::FcfsCa: return "O(3mn + 3m + 2kpn)";
    case core::Method::RaCa: return "0";
  }
  throw Error("unknown method");
}

}  // namespace casvm::perf
