#include "casvm/perf/comm_model.hpp"

#include "casvm/support/error.hpp"

namespace casvm::perf {

double predictedCommBytes(core::Method method, const CommModelParams& q) {
  const double m = static_cast<double>(q.m);
  const double n = static_cast<double>(q.n);
  const double s = static_cast<double>(q.s);
  const double I = static_cast<double>(q.I);
  const double k = static_cast<double>(q.k);
  const double p = static_cast<double>(q.p);
  constexpr double w = 4.0;  // bytes per word, as in the paper's example

  const double r = static_cast<double>(q.r);
  const double sigma = q.sigma;
  // Low-rank backend startup cost (Dis-SMO family only): the global
  // landmark allgatherv replicates L rows of n words plus self-dots on
  // every rank. Zero for the exact backend and for the per-cluster
  // (partitioned/tree) factor builds, which touch no wire.
  const double landmarkWords =
      q.L > 0 ? p * static_cast<double>(q.L) * (n + 2.0) : 0.0;

  switch (method) {
    case core::Method::DisSmo:
      // Theta(26Ip + 2pm + 4mn) [+ pL(n+2) with the Nystrom backend]
      return w * (26.0 * I * p + 2.0 * p * m + 4.0 * m * n + landmarkWords);
    case core::Method::DisSmoShrink:
      // Same election scalars every iteration, but the elected-row
      // payload (the 4mn term: I ~ m iterations x 2 rows x n words)
      // shrinks to the surviving fraction sigma once the replicated cache
      // engages: Theta(26Ip + 2pm + 4mn*sigma).
      return w * (26.0 * I * p + 2.0 * p * m + 4.0 * m * n * sigma +
                  landmarkWords);
    case core::Method::Pbm:
      // The replicated row store ships each changed sample's features once
      // for the whole run (~the SV set, 2sn words with self-dots); every
      // round re-syncs (key, coefficient) pairs (4rs words) plus the
      // line-search scalars, and the I pair corrections pay Dis-SMO's
      // scalar price with their row broadcasts absorbed by the store:
      // O(2sn + 4rs + 26Ip + 6rp).
      return w * (2.0 * s * n + 4.0 * r * s + 26.0 * I * p + 6.0 * r * p);
    case core::Method::Cascade:
      // O(3mn + 3m + 3sn)
      return w * (3.0 * m * n + 3.0 * m + 3.0 * s * n);
    case core::Method::DcSvm:
      // Theta(9mn + 12m + 2kpn)
      return w * (9.0 * m * n + 12.0 * m + 2.0 * k * p * n);
    case core::Method::DcFilter:
      // O(6mn + 7m + 3sn + 2kpn)
      return w * (6.0 * m * n + 7.0 * m + 3.0 * s * n + 2.0 * k * p * n);
    case core::Method::CpSvm:
      // Theta(6mn + 7m + 2kpn)
      return w * (6.0 * m * n + 7.0 * m + 2.0 * k * p * n);
    case core::Method::BkmCa:
    case core::Method::FcfsCa:
      // Partitioning-only traffic, same order as CP-SVM's K-means part.
      return w * (3.0 * m * n + 3.0 * m + 2.0 * k * p * n);
    case core::Method::RaCa:
      return 0.0;
  }
  throw Error("unknown method");
}

const char* commFormula(core::Method method) {
  switch (method) {
    case core::Method::DisSmo: return "Theta(26Ip + 2pm + 4mn)";
    case core::Method::DisSmoShrink:
      return "Theta(26Ip + 2pm + 4mn*sigma)";
    case core::Method::Pbm: return "O(2sn + 4rs + 26Ip + 6rp)";
    case core::Method::Cascade: return "O(3mn + 3m + 3sn)";
    case core::Method::DcSvm: return "Theta(9mn + 12m + 2kpn)";
    case core::Method::DcFilter: return "O(6mn + 7m + 3sn + 2kpn)";
    case core::Method::CpSvm: return "Theta(6mn + 7m + 2kpn)";
    case core::Method::BkmCa: return "O(3mn + 3m + 2kpn)";
    case core::Method::FcfsCa: return "O(3mn + 3m + 2kpn)";
    case core::Method::RaCa: return "0";
  }
  throw Error("unknown method");
}

}  // namespace casvm::perf
