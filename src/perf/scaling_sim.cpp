#include "casvm/perf/scaling_sim.hpp"

#include <algorithm>
#include <cmath>

#include "casvm/cluster/kmeans.hpp"
#include "casvm/support/error.hpp"
#include "casvm/support/rng.hpp"
#include "casvm/support/timer.hpp"

namespace casvm::perf {

namespace {

double log2d(int p) { return p > 1 ? std::log2(static_cast<double>(p)) : 0.0; }

/// Largest K-means part relative to m/P at P parts: lambda(P), from the
/// calibrated power law, capped so the part never exceeds the dataset.
double kmeansLambda(const ScalingCalibration& cal, int P) {
  const double lambda =
      cal.cpImbalance * std::pow(static_cast<double>(P) / 8.0,
                                 cal.cpImbalanceGrowth);
  return std::min(lambda, static_cast<double>(P));  // lambda*m/P <= m
}

/// Iterations of one sub-solve of `rows` samples (warm: merged layer).
double smoIters(const ScalingCalibration& cal, double rows, bool warm) {
  return cal.itersPerSample * rows * (warm ? cal.warmStartFactor : 1.0);
}

/// Compute seconds of one sub-solve: iterations x per-row iteration cost.
double smoCompute(const ScalingCalibration& cal, double rows, bool warm) {
  return smoIters(cal, rows, warm) * cal.secPerIterRow * rows;
}

/// Modeled K-means (+ all-to-all redistribution) cost per rank.
ModeledTime kmeansInit(const ScalingCalibration& cal, double m, int P) {
  const double n = static_cast<double>(cal.features);
  const double lg = log2d(P);
  ModeledTime t;
  // Assignment pass: P distance evaluations per local row per loop; one
  // distance costs ~one kernel-row entry, i.e. secPerIterRow/2 per row.
  t.compute = cal.kmeansLoops * (m / P) * P * (cal.secPerIterRow / 2.0);
  // Per loop: allreduce of P*n center sums (two tree phases).
  const double centerBytes = 8.0 * P * n;
  t.comm = cal.kmeansLoops * 2.0 * lg *
           cal.cost.messageSeconds(centerBytes);
  // All-to-all redistribution: each rank re-sends almost its whole block.
  const double blockBytes = (m / P) * 4.0 * n;
  t.comm += (P - 1) * cal.cost.alpha + cal.cost.beta * blockBytes;
  return t;
}

}  // namespace

ScalingCalibration calibrate(const data::Dataset& ds,
                             const solver::SolverOptions& options,
                             const std::vector<std::size_t>& sizes,
                             std::uint64_t seed) {
  CASVM_CHECK(!sizes.empty(), "need at least one calibration size");
  ScalingCalibration cal;
  cal.features = static_cast<long long>(ds.cols());

  Rng rng(seed);
  double ciSum = 0.0, rSum = 0.0, svSum = 0.0;
  int fitted = 0;
  for (std::size_t size : sizes) {
    CASVM_CHECK(size >= 2 && size <= ds.rows(),
                "calibration size out of range");
    const std::vector<std::size_t> idx =
        rng.sampleWithoutReplacement(ds.rows(), size);
    const data::Dataset sub = ds.subset(idx);
    if (sub.positives() == 0 || sub.negatives() == 0) continue;
    solver::SmoSolver solver(options);
    const solver::SolverResult res = solver.solve(sub);
    if (res.iterations == 0) continue;
    const double m = static_cast<double>(size);
    ciSum += static_cast<double>(res.iterations) / m;
    rSum += res.seconds / (static_cast<double>(res.iterations) * m);
    svSum += static_cast<double>(res.model.numSupportVectors()) / m;
    ++fitted;
  }
  CASVM_CHECK(fitted > 0, "calibration produced no usable solves");
  cal.itersPerSample = ciSum / fitted;
  cal.secPerIterRow = rSum / fitted;
  cal.svFraction = svSum / fitted;

  // K-means shape: convergence loops, the worst part's relative size at
  // k = 8, and how that imbalance grows with k (fitted from a k = 32 run).
  auto imbalanceAt = [&](int k) {
    cluster::KMeansOptions km;
    km.clusters = k;
    km.seed = seed;
    km.changeThreshold = 0.001;
    const cluster::KMeansResult res = cluster::kmeans(ds, km);
    const std::vector<std::size_t> sizesPerPart = res.partition.sizes();
    const std::size_t largest =
        *std::max_element(sizesPerPart.begin(), sizesPerPart.end());
    return std::pair<double, double>(
        static_cast<double>(largest) /
            (static_cast<double>(ds.rows()) / static_cast<double>(k)),
        static_cast<double>(res.loops));
  };
  const auto [lambda8, loops8] = imbalanceAt(8);
  cal.kmeansLoops = loops8;
  cal.cpImbalance = lambda8;
  if (ds.rows() >= 64) {
    const auto [lambda32, loops32] = imbalanceAt(32);
    (void)loops32;
    cal.cpImbalanceGrowth = std::clamp(
        std::log(lambda32 / lambda8) / std::log(32.0 / 8.0), 0.0, 1.0);
  }
  return cal;
}

ModeledTime modeledTrainTime(core::Method method,
                             const ScalingCalibration& cal, long long mIn,
                             int P) {
  CASVM_CHECK(P >= 1, "P must be positive");
  CASVM_CHECK(mIn >= P, "need at least one sample per process");
  const double m = static_cast<double>(mIn);
  const double n = static_cast<double>(cal.features);
  const double lg = log2d(P);
  const double sampleBytes = 4.0 * n + 8.0;  // features + alpha on the wire
  ModeledTime t;

  switch (method) {
    case core::Method::DisSmo: {
      // One global solve: iterations scale with the FULL m, each iteration
      // does 2 kernel rows over the local block plus 2 allreduces and 2
      // sample broadcasts (eqn. 9).
      const double iters = smoIters(cal, m, false);
      t.compute = iters * cal.secPerIterRow * (m / P);
      const double perIterComm =
          lg * (4.0 * cal.cost.messageSeconds(16.0) +        // minloc/maxloc
                2.0 * cal.cost.messageSeconds(4.0 * n + 24.0));  // samples
      t.comm = iters * perIterComm;
      return t;
    }
    case core::Method::DisSmoShrink: {
      // Dis-SMO with adaptive shrinking: elections still happen every
      // iteration, but after shrinking engages the gradient update runs
      // over the surviving active fraction and the replicated elected-row
      // cache absorbs most sample broadcasts. Model both with a fixed
      // surviving fraction of one half, averaged over the run.
      constexpr double sigma = 0.5;
      const double iters = smoIters(cal, m, false);
      t.compute = iters * cal.secPerIterRow * (m / P) * (0.5 + 0.5 * sigma);
      const double perIterComm =
          lg * (4.0 * cal.cost.messageSeconds(16.0) +  // minloc/maxloc
                2.0 * sigma *
                    cal.cost.messageSeconds(4.0 * n + 24.0));  // samples
      t.comm = iters * perIterComm;
      return t;
    }
    case core::Method::Pbm: {
      // A handful of outer rounds: a warm-started local solve per round
      // (iterations scale with the LOCAL block), one allgatherv of the
      // changed rows plus line-search scalars, and a short pair-correction
      // tail. The replicated row store means the sample payload (~ the SV
      // set) crosses once for the whole run; later rounds re-sync only
      // (key, coefficient) pairs, and the tail's row broadcasts are
      // absorbed too, leaving its scalar elections and 24B metadata.
      constexpr double rounds = 8.0;
      constexpr double pairPerRound = 64.0;
      t.compute = smoCompute(cal, m / P, false) +
                  (rounds - 1.0) * smoCompute(cal, m / P, true);
      const double changedBytes = cal.svFraction * m * sampleBytes;
      const double coefBytes = cal.svFraction * m * 16.0;
      t.comm = lg * cal.cost.messageSeconds(changedBytes);
      t.comm += rounds * lg * (cal.cost.messageSeconds(coefBytes) +
                               2.0 * cal.cost.messageSeconds(16.0));
      const double pairIters = rounds * pairPerRound;
      t.compute += pairIters * cal.secPerIterRow * (m / P);
      t.comm += pairIters * lg *
                (4.0 * cal.cost.messageSeconds(16.0) +
                 2.0 * cal.cost.messageSeconds(24.0));
      return t;
    }
    case core::Method::Cascade:
    case core::Method::DcSvm:
    case core::Method::DcFilter: {
      if (method != core::Method::Cascade) {
        const ModeledTime init = kmeansInit(cal, m, P);
        t.compute += init.compute;
        t.comm += init.comm;
      }
      const int layers = static_cast<int>(std::round(lg)) + 1;
      // First-layer part size: K-means parts are imbalanced, even blocks
      // are not.
      double v =
          (method == core::Method::Cascade ? 1.0 : kmeansLambda(cal, P)) *
          m / P;
      for (int l = 1; l <= layers; ++l) {
        t.compute += smoCompute(cal, v, l > 1);
        double outSize;  // what this layer ships to the next
        if (method == core::Method::DcSvm) {
          outSize = v;  // everything
        } else {
          outSize = cal.svFraction * v;  // support vectors only
        }
        if (l < layers) {
          t.comm += cal.cost.messageSeconds(outSize * sampleBytes);
          v = 2.0 * outSize;  // merge with the partner's output
          if (method == core::Method::DcSvm) v = std::min(v, m);
        }
      }
      return t;
    }
    case core::Method::CpSvm: {
      const ModeledTime init = kmeansInit(cal, m, P);
      t.compute = init.compute;
      t.comm = init.comm;
      // The slowest rank owns the largest K-means part, whose relative
      // size grows with P (bounded natural cluster count).
      const double mLoc = kmeansLambda(cal, P) * m / P;
      t.compute += smoCompute(cal, mLoc, false);
      return t;
    }
    case core::Method::BkmCa: {
      const ModeledTime init = kmeansInit(cal, m, P);
      t.compute = init.compute;
      t.comm = init.comm;
      t.compute += smoCompute(cal, m / P, false);  // balanced parts
      return t;
    }
    case core::Method::FcfsCa: {
      // FCFS is a single assignment pass plus two allreduces.
      t.compute = (m / P) * P * (cal.secPerIterRow / 2.0);
      t.comm = 2.0 * lg * cal.cost.messageSeconds(8.0 * P * n) +
               (P - 1) * cal.cost.alpha + cal.cost.beta * (m / P) * 4.0 * n;
      t.compute += smoCompute(cal, m / P, false);
      return t;
    }
    case core::Method::RaCa: {
      // casvm2: no communication at all; iterations and per-iteration work
      // both shrink with m/P — the source of superlinear strong scaling.
      t.compute = smoCompute(cal, m / P, false);
      t.comm = 0.0;
      return t;
    }
  }
  throw Error("unknown method");
}

}  // namespace casvm::perf
