#include "casvm/lowrank/landmarks.hpp"

#include <algorithm>
#include <limits>

#include "casvm/support/error.hpp"
#include "casvm/support/rng.hpp"

namespace casvm::lowrank {

std::string strategyName(LandmarkStrategy strategy) {
  switch (strategy) {
    case LandmarkStrategy::Uniform: return "uniform";
    case LandmarkStrategy::KmeansPP: return "kmeans++";
  }
  return "unknown";
}

LandmarkStrategy strategyFromName(const std::string& name) {
  if (name == "uniform") return LandmarkStrategy::Uniform;
  if (name == "kmeans++" || name == "kmeanspp" || name == "kmeans") {
    return LandmarkStrategy::KmeansPP;
  }
  throw Error("unknown landmark strategy: " + name +
              " (expected uniform | kmeans++)");
}

namespace {

std::vector<std::size_t> selectKmeansPP(const data::Dataset& ds,
                                        std::size_t count,
                                        std::uint64_t seed) {
  const std::size_t m = ds.rows();
  Rng rng(seed);
  std::vector<std::size_t> chosen;
  chosen.reserve(count);
  chosen.push_back(static_cast<std::size_t>(rng.below(m)));

  // minD2[j]: squared distance of row j to the nearest chosen landmark.
  std::vector<double> minD2(m);
  double total = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    const double d2 = std::max(0.0, ds.squaredDistance(j, chosen[0]));
    minD2[j] = d2;
    total += d2;
  }

  while (chosen.size() < count) {
    std::size_t next = m;
    if (total > 0.0) {
      // D² sampling: prefix walk over minD2 at a uniform target.
      const double target = rng.uniform() * total;
      double acc = 0.0;
      for (std::size_t j = 0; j < m; ++j) {
        acc += minD2[j];
        if (acc > target) {
          next = j;
          break;
        }
      }
      // Rounding can leave the walk one short; take the last positive mass.
      if (next == m) {
        for (std::size_t j = m; j-- > 0;) {
          if (minD2[j] > 0.0) {
            next = j;
            break;
          }
        }
      }
    }
    if (next == m) {
      // All remaining rows coincide with chosen landmarks (duplicate-heavy
      // data): fall back to the first unchosen index, deterministically.
      std::vector<char> used(m, 0);
      for (std::size_t c : chosen) used[c] = 1;
      for (std::size_t j = 0; j < m; ++j) {
        if (!used[j]) {
          next = j;
          break;
        }
      }
      if (next == m) break;  // count > distinct rows; return what we have
    }
    chosen.push_back(next);
    for (std::size_t j = 0; j < m; ++j) {
      const double d2 = std::max(0.0, ds.squaredDistance(j, next));
      if (d2 < minD2[j]) {
        total -= minD2[j] - d2;
        minD2[j] = d2;
      }
    }
  }
  return chosen;
}

}  // namespace

std::vector<std::size_t> selectLandmarks(const data::Dataset& ds,
                                         std::size_t count,
                                         LandmarkStrategy strategy,
                                         std::uint64_t seed) {
  CASVM_CHECK(ds.rows() > 0, "landmark selection over an empty dataset");
  CASVM_CHECK(count > 0, "landmark count must be positive");
  count = std::min(count, ds.rows());

  std::vector<std::size_t> indices;
  switch (strategy) {
    case LandmarkStrategy::Uniform: {
      Rng rng(seed);
      indices = rng.sampleWithoutReplacement(ds.rows(), count);
      break;
    }
    case LandmarkStrategy::KmeansPP:
      indices = selectKmeansPP(ds, count, seed);
      break;
  }
  // Ascending order: callers and checkpoints get one canonical form
  // regardless of the draw order.
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  return indices;
}

LandmarkSet extractLandmarks(const data::Dataset& ds,
                             std::span<const std::size_t> indices) {
  LandmarkSet set;
  set.features = ds.cols();
  set.rows.assign(indices.size() * ds.cols(), 0.0f);
  set.selfDots.reserve(indices.size());
  for (std::size_t l = 0; l < indices.size(); ++l) {
    CASVM_CHECK(indices[l] < ds.rows(), "landmark index out of range");
    ds.copyRowDense(indices[l],
                    std::span<float>(set.rows).subspan(l * ds.cols(),
                                                       ds.cols()));
    set.selfDots.push_back(ds.selfDot(indices[l]));
  }
  return set;
}

}  // namespace casvm::lowrank
