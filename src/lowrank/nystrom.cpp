#include "casvm/lowrank/nystrom.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "casvm/kernel/tile_kernel.hpp"
#include "casvm/support/error.hpp"

namespace casvm::lowrank {

void jacobiEigenSymmetric(std::vector<double>& a, std::size_t s,
                          std::vector<double>& eigenvalues,
                          std::vector<double>& vectors) {
  CASVM_CHECK(a.size() == s * s, "jacobi: matrix size mismatch");
  vectors.assign(s * s, 0.0);
  for (std::size_t i = 0; i < s; ++i) vectors[i * s + i] = 1.0;

  // Cyclic sweeps in fixed (p, q) order: the rotation sequence — and with
  // it every rounding — depends only on the input bytes, so identical
  // matrices decompose identically on every rank.
  constexpr int kMaxSweeps = 64;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < s; ++p) {
      for (std::size_t q = p + 1; q < s; ++q) {
        off += a[p * s + q] * a[p * s + q];
      }
    }
    if (off <= 1e-30) break;
    for (std::size_t p = 0; p + 1 < s; ++p) {
      for (std::size_t q = p + 1; q < s; ++q) {
        const double apq = a[p * s + q];
        if (std::abs(apq) <= 1e-300) continue;
        const double theta = (a[q * s + q] - a[p * s + p]) / (2.0 * apq);
        const double t =
            (theta >= 0.0 ? 1.0 : -1.0) /
            (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double sn = t * c;
        // Rotate rows/columns p and q of `a`.
        for (std::size_t k = 0; k < s; ++k) {
          const double akp = a[k * s + p];
          const double akq = a[k * s + q];
          a[k * s + p] = c * akp - sn * akq;
          a[k * s + q] = sn * akp + c * akq;
        }
        for (std::size_t k = 0; k < s; ++k) {
          const double apk = a[p * s + k];
          const double aqk = a[q * s + k];
          a[p * s + k] = c * apk - sn * aqk;
          a[q * s + k] = sn * apk + c * aqk;
        }
        // Accumulate the rotation into the eigenvector columns.
        for (std::size_t k = 0; k < s; ++k) {
          const double vkp = vectors[k * s + p];
          const double vkq = vectors[k * s + q];
          vectors[k * s + p] = c * vkp - sn * vkq;
          vectors[k * s + q] = sn * vkp + c * vkq;
        }
      }
    }
  }

  eigenvalues.resize(s);
  for (std::size_t i = 0; i < s; ++i) eigenvalues[i] = a[i * s + i];

  // Sort descending by eigenvalue; ties keep the lower original column
  // first, so the ordering is total and deterministic.
  std::vector<std::size_t> order(s);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) {
                     return eigenvalues[x] > eigenvalues[y];
                   });
  std::vector<double> sortedEv(s);
  std::vector<double> sortedVec(s * s);
  for (std::size_t t = 0; t < s; ++t) {
    sortedEv[t] = eigenvalues[order[t]];
    for (std::size_t k = 0; k < s; ++k) {
      sortedVec[k * s + t] = vectors[k * s + order[t]];
    }
  }
  eigenvalues = std::move(sortedEv);
  vectors = std::move(sortedVec);
}

NystromFactor NystromFactor::build(const kernel::Kernel& kern,
                                   const data::Dataset& ds,
                                   const NystromOptions& opts) {
  const std::vector<std::size_t> indices =
      selectLandmarks(ds, opts.landmarks, opts.strategy, opts.seed);
  return buildWithLandmarks(kern, ds, extractLandmarks(ds, indices),
                            opts.eigenFloor);
}

NystromFactor NystromFactor::buildWithLandmarks(const kernel::Kernel& kern,
                                                const data::Dataset& ds,
                                                LandmarkSet landmarks,
                                                double eigenFloor) {
  CASVM_CHECK(landmarks.count() > 0, "nystrom: empty landmark set");
  CASVM_CHECK(landmarks.features == ds.cols(),
              "nystrom: landmark feature count does not match the dataset");
  CASVM_CHECK(eigenFloor >= 0.0, "nystrom: eigenvalue floor must be >= 0");

  NystromFactor f;
  f.m_ = ds.rows();
  f.landmarks_ = std::move(landmarks);
  const std::size_t L = f.landmarks_.count();

  // Landmark Gram matrix K_LL (symmetric bitwise: evalVectors' serial dot
  // is commutative term by term).
  std::vector<double> kll(L * L);
  for (std::size_t p = 0; p < L; ++p) {
    for (std::size_t q = 0; q < L; ++q) {
      kll[p * L + q] =
          kern.evalVectors(f.landmarks_.row(p), f.landmarks_.selfDots[p],
                           f.landmarks_.row(q), f.landmarks_.selfDots[q]);
    }
  }

  std::vector<double> ev, vec;
  jacobiEigenSymmetric(kll, L, ev, vec);

  // Pseudo-inverse square root: truncate eigenpairs below the relative
  // floor (and any non-positive ones — K_LL is PSD up to rounding).
  const double lambdaMax = ev.empty() ? 0.0 : ev[0];
  const double floor = lambdaMax > 0.0 ? eigenFloor * lambdaMax : 0.0;
  std::size_t r = 0;
  while (r < L && ev[r] > floor && ev[r] > 0.0) ++r;
  if (r == 0) {
    // Fully degenerate landmark Gram matrix (e.g. all-zero rows): keep a
    // single zero column so downstream shapes stay valid; K̃ is then 0 and
    // the solver's eta floor takes over.
    f.r_ = 1;
    f.w_.assign(L, 0.0);
  } else {
    f.r_ = r;
    f.w_.assign(L * r, 0.0);
    for (std::size_t t = 0; t < r; ++t) {
      const double inv = 1.0 / std::sqrt(ev[t]);
      for (std::size_t l = 0; l < L; ++l) {
        f.w_[l * r + t] = vec[l * L + t] * inv;
      }
    }
  }

  // Z = K_{m,L} W, accumulated in doubles column-of-K at a time: each
  // landmark's kernel column comes from one tiled rowWith() fill, then
  // rank-1 updates into the m×r accumulator. Ascending-l order fixes the
  // accumulation rounding.
  const std::size_t m = f.m_;
  const std::size_t rr = f.r_;
  std::vector<double> zd(m * rr, 0.0);
  std::vector<double> col(m);
  kernel::RowWorkspace ws;
  for (std::size_t l = 0; l < L; ++l) {
    kern.rowWith(ds, f.landmarks_.row(l), f.landmarks_.selfDots[l], col, ws);
    const double* wl = &f.w_[l * rr];
    for (std::size_t j = 0; j < m; ++j) {
      const double cj = col[j];
      double* zj = &zd[j * rr];
      for (std::size_t t = 0; t < rr; ++t) zj[t] += cj * wl[t];
    }
  }

  // Pack Z into the 16-row k-major float tiling (tail block zero-padded) —
  // the same layout tile::dotFn streams, so an approximate row fill is one
  // tile-dot over rr columns.
  f.tiles_.assign(kernel::tile::blockCount(m) * rr * kernel::tile::kRows,
                  0.0f);
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t block = j / kernel::tile::kRows;
    const std::size_t lane = j % kernel::tile::kRows;
    for (std::size_t k = 0; k < rr; ++k) {
      f.tiles_[(block * rr + k) * kernel::tile::kRows + lane] =
          static_cast<float>(zd[j * rr + k]);
    }
  }
  f.xd_.resize(rr);
  return f;
}

void NystromFactor::widenRow(std::size_t i) {
  const std::size_t block = i / kernel::tile::kRows;
  const std::size_t lane = i % kernel::tile::kRows;
  for (std::size_t k = 0; k < r_; ++k) {
    xd_[k] =
        double(tiles_[(block * r_ + k) * kernel::tile::kRows + lane]);
  }
}

void NystromFactor::fillRow(std::size_t i, std::span<double> out) {
  CASVM_CHECK(i < m_, "nystrom row out of range");
  CASVM_CHECK(out.size() == m_, "nystrom row output has wrong length");
  widenRow(i);
  kernel::tile::dotFn()(tiles_.data(), xd_.data(), m_, r_, out.data());
}

void NystromFactor::fillRowSubset(std::size_t i,
                                  std::span<const std::size_t> active,
                                  std::span<double> out) {
  CASVM_CHECK(i < m_, "nystrom row out of range");
  CASVM_CHECK(out.size() == m_, "nystrom row output has wrong length");
  widenRow(i);
  // Serial ascending-k accumulation per row: bitwise-identical to the
  // tile-dot's per-row sum, so partial and full fills agree.
  for (std::size_t j : active) {
    const std::size_t block = j / kernel::tile::kRows;
    const std::size_t lane = j % kernel::tile::kRows;
    double acc = 0.0;
    for (std::size_t k = 0; k < r_; ++k) {
      acc += xd_[k] *
             double(tiles_[(block * r_ + k) * kernel::tile::kRows + lane]);
    }
    out[j] = acc;
  }
}

void NystromFactor::fillDiagonal(std::span<double> out) {
  CASVM_CHECK(out.size() == m_, "nystrom diagonal output has wrong length");
  for (std::size_t j = 0; j < m_; ++j) {
    const std::size_t block = j / kernel::tile::kRows;
    const std::size_t lane = j % kernel::tile::kRows;
    double acc = 0.0;
    for (std::size_t k = 0; k < r_; ++k) {
      const double z =
          double(tiles_[(block * r_ + k) * kernel::tile::kRows + lane]);
      acc += z * z;
    }
    out[j] = acc;
  }
}

void NystromFactor::map(const kernel::Kernel& kern, std::span<const float> x,
                        double xSelfDot, std::span<double> z) const {
  CASVM_CHECK(x.size() == landmarks_.features,
              "nystrom map: vector has wrong length");
  CASVM_CHECK(z.size() == r_, "nystrom map: output has wrong length");
  std::fill(z.begin(), z.end(), 0.0);
  // z = Wᵀ k_L(x), ascending-l accumulation: every rank that receives the
  // same x bytes computes the same z bitwise (W and the landmark set are
  // replicated).
  for (std::size_t l = 0; l < landmarks_.count(); ++l) {
    const double kl = kern.evalVectors(landmarks_.row(l),
                                       landmarks_.selfDots[l], x, xSelfDot);
    const double* wl = &w_[l * r_];
    for (std::size_t t = 0; t < r_; ++t) z[t] += kl * wl[t];
  }
}

double NystromFactor::zdot(std::size_t i, std::span<const double> z) const {
  CASVM_CHECK(i < m_, "nystrom zdot row out of range");
  CASVM_CHECK(z.size() == r_, "nystrom zdot: vector has wrong length");
  const std::size_t block = i / kernel::tile::kRows;
  const std::size_t lane = i % kernel::tile::kRows;
  double acc = 0.0;
  for (std::size_t k = 0; k < r_; ++k) {
    acc += double(tiles_[(block * r_ + k) * kernel::tile::kRows + lane]) *
           z[k];
  }
  return acc;
}

namespace {

void appendRaw(std::vector<std::byte>& out, const void* data,
               std::size_t bytes) {
  const std::size_t at = out.size();
  out.resize(at + bytes);
  std::memcpy(out.data() + at, data, bytes);
}

template <class T>
void appendScalar(std::vector<std::byte>& out, T value) {
  appendRaw(out, &value, sizeof(T));
}

template <class T>
T readScalar(std::span<const std::byte> bytes, std::size_t& at) {
  CASVM_CHECK(at + sizeof(T) <= bytes.size(),
              "nystrom decode: truncated payload");
  T value;
  std::memcpy(&value, bytes.data() + at, sizeof(T));
  at += sizeof(T);
  return value;
}

template <class T>
std::vector<T> readVec(std::span<const std::byte> bytes, std::size_t& at,
                       std::size_t count) {
  CASVM_CHECK(count <= (bytes.size() - at) / sizeof(T),
              "nystrom decode: truncated payload");
  std::vector<T> v(count);
  std::memcpy(v.data(), bytes.data() + at, count * sizeof(T));
  at += count * sizeof(T);
  return v;
}

}  // namespace

std::vector<std::byte> NystromFactor::encode() const {
  std::vector<std::byte> out;
  const std::uint64_t L = landmarks_.count();
  appendScalar<std::uint64_t>(out, m_);
  appendScalar<std::uint64_t>(out, r_);
  appendScalar<std::uint64_t>(out, L);
  appendScalar<std::uint64_t>(out, landmarks_.features);
  appendRaw(out, landmarks_.rows.data(),
            landmarks_.rows.size() * sizeof(float));
  appendRaw(out, landmarks_.selfDots.data(),
            landmarks_.selfDots.size() * sizeof(double));
  appendRaw(out, w_.data(), w_.size() * sizeof(double));
  appendRaw(out, tiles_.data(), tiles_.size() * sizeof(float));
  return out;
}

NystromFactor NystromFactor::decode(std::span<const std::byte> bytes) {
  std::size_t at = 0;
  NystromFactor f;
  f.m_ = readScalar<std::uint64_t>(bytes, at);
  f.r_ = readScalar<std::uint64_t>(bytes, at);
  const std::uint64_t L = readScalar<std::uint64_t>(bytes, at);
  f.landmarks_.features = readScalar<std::uint64_t>(bytes, at);
  CASVM_CHECK(f.r_ > 0 && L > 0, "nystrom decode: degenerate shape");
  f.landmarks_.rows = readVec<float>(bytes, at, L * f.landmarks_.features);
  f.landmarks_.selfDots = readVec<double>(bytes, at, L);
  f.w_ = readVec<double>(bytes, at, L * f.r_);
  f.tiles_ = readVec<float>(
      bytes, at,
      kernel::tile::blockCount(f.m_) * f.r_ * kernel::tile::kRows);
  CASVM_CHECK(at == bytes.size(), "nystrom decode: trailing bytes");
  f.xd_.resize(f.r_);
  return f;
}

}  // namespace casvm::lowrank
