#include "casvm/serve/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "casvm/support/strings.hpp"

namespace casvm::serve {

int Log2Histogram::bucketOf(double value) {
  if (!(value >= 1.0)) return 0;
  const auto v = static_cast<std::uint64_t>(value);
  const int b = std::bit_width(v);  // v in [2^(b-1), 2^b)
  return std::min(b, kBuckets - 1);
}

void Log2Histogram::record(double value) {
  ++counts_[bucketOf(value)];
  ++total_;
  sum_ += value;
  max_ = std::max(max_, value);
}

double Log2Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  const double rank = q * double(total_);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts_[b];
    if (double(seen) >= rank) {
      // The bucket midpoint can overshoot the largest value actually
      // recorded (e.g. a single sample at the low edge of its bucket), so
      // clamp: no quantile may exceed the observed maximum.
      if (b == 0) return std::min(0.5, max_);
      const double lo = std::ldexp(1.0, b - 1);
      // geometric midpoint of [2^(b-1), 2^b)
      return std::min(lo * std::sqrt(2.0), max_);
    }
  }
  return max_;
}

void Log2Histogram::merge(const Log2Histogram& other) {
  for (int b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
  total_ += other.total_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

std::string ServeStats::toJson() const {
  // formatString sizes the buffer to the formatted length, so extreme
  // counter or latency values can never truncate the object.
  return formatString(
      "{\"submitted\": %llu, \"completed\": %llu, \"shed\": %llu, "
      "\"timed_out\": %llu, \"rejected_stopped\": %llu, "
      "\"bad_requests\": %llu, \"batches\": %llu, "
      "\"expired_at_admission\": %llu, \"expired_in_queue\": %llu, "
      "\"shed_low\": %llu, \"brownout_engaged\": %llu, "
      "\"brownout_batches\": %llu, \"breaker_trips\": %llu, "
      "\"breaker_recoveries\": %llu, \"model_generation\": %llu, "
      "\"model_swaps\": %llu, \"health\": \"%s\", "
      "\"elapsed_seconds\": %.6f, \"qps\": %.1f, "
      "\"latency_p50_us\": %.1f, \"latency_p95_us\": %.1f, "
      "\"latency_p99_us\": %.1f, \"latency_max_us\": %.1f, "
      "\"mean_batch_rows\": %.2f, \"batch_rows_p50\": %.1f, "
      "\"batch_rows_max\": %.0f}",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(timedOut),
      static_cast<unsigned long long>(rejectedStopped),
      static_cast<unsigned long long>(badRequests),
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(expiredAtAdmission),
      static_cast<unsigned long long>(expiredInQueue),
      static_cast<unsigned long long>(shedLow),
      static_cast<unsigned long long>(brownoutEngaged),
      static_cast<unsigned long long>(brownoutBatches),
      static_cast<unsigned long long>(breakerTrips),
      static_cast<unsigned long long>(breakerRecoveries),
      static_cast<unsigned long long>(modelGeneration),
      static_cast<unsigned long long>(modelSwaps), health.c_str(),
      elapsedSeconds, qps, latencyP50 * 1e6, latencyP95 * 1e6,
      latencyP99 * 1e6, latencyMax * 1e6, meanBatchRows, batchRowsP50,
      batchRowsMax);
}

}  // namespace casvm::serve
