#include "casvm/serve/compiled_ensemble.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <numeric>
#include <string>
#include <unordered_map>

#include "casvm/support/error.hpp"

namespace casvm::serve {

CompiledModel compile(const solver::Model& model) {
  return CompiledModel(model.kernelParams(), model.supportVectors(),
                       model.alphaY(), model.bias());
}

// --- CompiledDistributedModel ----------------------------------------------

CompiledDistributedModel CompiledDistributedModel::compile(
    const core::DistributedModel& model) {
  CASVM_CHECK(model.numModels() > 0, "empty distributed model");
  CompiledDistributedModel cm;
  cm.models_.reserve(model.numModels());
  for (std::size_t i = 0; i < model.numModels(); ++i) {
    cm.models_.push_back(serve::compile(model.model(i)));
  }
  cm.centers_ = model.centers();
  cm.centerSelfDots_.reserve(cm.centers_.size());
  for (const auto& c : cm.centers_) {
    // Same accumulation as DistributedModel::routed's cached norms.
    double s = 0.0;
    for (float v : c) s += double(v) * double(v);
    cm.centerSelfDots_.push_back(s);
  }
  return cm;
}

std::size_t CompiledDistributedModel::totalSupportVectors() const {
  std::size_t total = 0;
  for (const auto& m : models_) total += m.numSupportVectors();
  return total;
}

std::size_t CompiledDistributedModel::cols() const {
  for (const auto& m : models_) {
    if (!m.empty()) return m.cols();
  }
  return 0;
}

std::size_t CompiledDistributedModel::packedBytes() const {
  std::size_t total = 0;
  for (const auto& m : models_) total += m.supportVectors().packedBytes();
  return total;
}

std::size_t CompiledDistributedModel::route(const data::Dataset& ds,
                                            std::size_t i) const {
  if (!isRouted()) return 0;
  std::size_t best = 0;
  double bestDist = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centers_.size(); ++c) {
    const double d = ds.squaredDistanceTo(i, centers_[c], centerSelfDots_[c]);
    if (d < bestDist) {
      bestDist = d;
      best = c;
    }
  }
  return best;
}

void CompiledDistributedModel::decisionBatch(const data::Dataset& ds,
                                             std::span<const std::size_t> rows,
                                             std::span<double> out,
                                             BatchScratch& scratch) const {
  CASVM_CHECK(!models_.empty(), "empty distributed model");
  CASVM_CHECK(out.size() >= rows.size(), "output buffer too small");
  if (!isRouted()) {
    models_[0].decisionBatch(ds, rows, out, scratch);
    return;
  }
  scratch.route.resize(rows.size());
  for (std::size_t j = 0; j < rows.size(); ++j) {
    scratch.route[j] = route(ds, rows[j]);
  }
  for (std::size_t g = 0; g < models_.size(); ++g) {
    scratch.groupRows.clear();
    scratch.groupPos.clear();
    for (std::size_t j = 0; j < rows.size(); ++j) {
      if (scratch.route[j] == g) {
        scratch.groupRows.push_back(rows[j]);
        scratch.groupPos.push_back(j);
      }
    }
    if (scratch.groupRows.empty()) continue;
    scratch.sub.resize(scratch.groupRows.size());
    models_[g].decisionBatch(ds, scratch.groupRows, scratch.sub, scratch);
    for (std::size_t k = 0; k < scratch.groupPos.size(); ++k) {
      out[scratch.groupPos[k]] = scratch.sub[k];
    }
  }
}

void CompiledDistributedModel::decisionAll(const data::Dataset& ds,
                                           std::span<double> out,
                                           BatchScratch& scratch) const {
  CASVM_CHECK(out.size() >= ds.rows(), "output buffer too small");
  std::vector<std::size_t> rows(ds.rows());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  decisionBatch(ds, rows, out, scratch);
}

double CompiledDistributedModel::decision(std::span<const float> x,
                                          BatchScratch& scratch) const {
  CASVM_CHECK(!models_.empty(), "empty distributed model");
  if (!isRouted()) return models_[0].decision(x, scratch);
  double xSelf = 0.0;
  for (float v : x) xSelf += double(v) * double(v);
  std::size_t best = 0;
  double bestDist = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centers_.size(); ++c) {
    const auto& center = centers_[c];
    CASVM_CHECK(center.size() == x.size(), "query/center dimensions differ");
    double dot = 0.0;
    for (std::size_t k = 0; k < center.size(); ++k) {
      dot += double(x[k]) * double(center[k]);
    }
    const double d = xSelf + centerSelfDots_[c] - 2.0 * dot;
    if (d < bestDist) {
      bestDist = d;
      best = c;
    }
  }
  return models_[best].decision(x, scratch);
}

double CompiledDistributedModel::accuracy(const data::Dataset& testSet,
                                          BatchScratch& scratch) const {
  CASVM_CHECK(testSet.rows() > 0, "empty test set");
  std::vector<double> dec(testSet.rows());
  decisionAll(testSet, dec, scratch);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < testSet.rows(); ++i) {
    const std::int8_t label = dec[i] >= 0.0 ? 1 : -1;
    correct += (label == testSet.label(i));
  }
  return static_cast<double>(correct) / static_cast<double>(testSet.rows());
}

// --- CompiledMulticlassModel ------------------------------------------------

namespace {

bool sameParams(const kernel::KernelParams& a, const kernel::KernelParams& b) {
  return a.type == b.type && a.gamma == b.gamma && a.a == b.a && a.r == b.r &&
         a.degree == b.degree;
}

/// Content key of one SV row (features only — labels don't enter kernels).
std::string rowKey(const data::Dataset& ds, std::size_t i) {
  std::string key;
  if (ds.storage() == data::Storage::Dense) {
    const auto r = ds.denseRow(i);
    key.assign(reinterpret_cast<const char*>(r.data()),
               r.size() * sizeof(float));
    return key;
  }
  const auto idx = ds.sparseIndices(i);
  const auto val = ds.sparseValues(i);
  const std::uint64_t nnz = idx.size();
  key.append(reinterpret_cast<const char*>(&nnz), sizeof(nnz));
  key.append(reinterpret_cast<const char*>(idx.data()),
             idx.size() * sizeof(std::uint32_t));
  key.append(reinterpret_cast<const char*>(val.data()),
             val.size() * sizeof(float));
  return key;
}

}  // namespace

CompiledMulticlassModel CompiledMulticlassModel::compile(
    const core::MulticlassModel& model) {
  CASVM_CHECK(!model.pairs().empty(), "empty multiclass model");
  CompiledMulticlassModel cm;
  cm.classes_ = model.classes();

  // Shared-pool eligibility: every pair is a single non-routed sub-model
  // with identical kernel parameters, and all non-empty SV sets agree on
  // storage and feature count.
  bool eligible = true;
  const kernel::KernelParams* params = nullptr;
  const data::Dataset* shape = nullptr;
  for (const auto& pair : model.pairs()) {
    if (pair.model.isRouted() || pair.model.numModels() != 1) {
      eligible = false;
      break;
    }
    const solver::Model& sub = pair.model.model(0);
    if (params == nullptr) {
      params = &sub.kernelParams();
    } else if (!sameParams(*params, sub.kernelParams())) {
      eligible = false;
      break;
    }
    if (sub.empty()) continue;
    const data::Dataset& svs = sub.supportVectors();
    if (shape == nullptr) {
      shape = &svs;
    } else if (svs.storage() != shape->storage() ||
               svs.cols() != shape->cols()) {
      eligible = false;
      break;
    }
  }

  if (!eligible) {
    for (const auto& pair : model.pairs()) {
      cm.fallback_.push_back({pair.positiveClass, pair.negativeClass,
                              CompiledDistributedModel::compile(pair.model)});
    }
    return cm;
  }

  cm.sharedPool_ = true;
  cm.params_ = *params;
  const bool dense =
      shape == nullptr || shape->storage() == data::Storage::Dense;
  const std::size_t cols = shape == nullptr ? 0 : shape->cols();

  std::unordered_map<std::string, std::uint32_t> slots;
  std::vector<float> poolDense;
  std::vector<std::size_t> poolRowPtr{0};
  std::vector<std::uint32_t> poolColIdx;
  std::vector<float> poolVals;
  std::vector<std::int8_t> poolLabels;  // placeholder +1 per pooled SV

  for (const auto& pair : model.pairs()) {
    const solver::Model& sub = pair.model.model(0);
    PairRef ref;
    ref.positiveClass = pair.positiveClass;
    ref.negativeClass = pair.negativeClass;
    ref.bias = sub.bias();
    ref.alphaY = sub.alphaY();
    const data::Dataset& svs = sub.supportVectors();
    ref.poolIdx.reserve(svs.rows());
    for (std::size_t s = 0; s < svs.rows(); ++s) {
      const std::string key = rowKey(svs, s);
      auto [it, inserted] =
          slots.emplace(key, static_cast<std::uint32_t>(poolLabels.size()));
      if (inserted) {
        if (dense) {
          const auto r = svs.denseRow(s);
          poolDense.insert(poolDense.end(), r.begin(), r.end());
        } else {
          const auto idx = svs.sparseIndices(s);
          const auto val = svs.sparseValues(s);
          poolColIdx.insert(poolColIdx.end(), idx.begin(), idx.end());
          poolVals.insert(poolVals.end(), val.begin(), val.end());
          poolRowPtr.push_back(poolColIdx.size());
        }
        poolLabels.push_back(1);
      }
      ref.poolIdx.push_back(it->second);
    }
    cm.pairRefs_.push_back(std::move(ref));
  }

  if (!poolLabels.empty()) {
    const data::Dataset pool =
        dense ? data::Dataset::fromDense(cols, std::move(poolDense),
                                         std::move(poolLabels))
              : data::Dataset::fromSparse(cols, std::move(poolRowPtr),
                                          std::move(poolColIdx),
                                          std::move(poolVals),
                                          std::move(poolLabels));
    cm.pool_ = CompiledSvSet(pool);
  }
  return cm;
}

std::size_t CompiledMulticlassModel::pairSvTotal() const {
  std::size_t total = 0;
  if (sharedPool_) {
    for (const auto& p : pairRefs_) total += p.alphaY.size();
  } else {
    for (const auto& p : fallback_) total += p.model.totalSupportVectors();
  }
  return total;
}

int CompiledMulticlassModel::voteFrom(
    std::span<const double> pairDecisions) const {
  // Replicates MulticlassModel::predictFor's vote and tie-break exactly.
  std::map<int, int> votes;
  std::map<int, double> margin;
  for (std::size_t p = 0; p < pairDecisions.size(); ++p) {
    const double d = pairDecisions[p];
    const int pos =
        sharedPool_ ? pairRefs_[p].positiveClass : fallback_[p].positiveClass;
    const int neg =
        sharedPool_ ? pairRefs_[p].negativeClass : fallback_[p].negativeClass;
    const int winner = d >= 0.0 ? pos : neg;
    ++votes[winner];
    margin[winner] += std::abs(d);
  }
  int best = classes_.front();
  int bestVotes = -1;
  double bestMargin = -1.0;
  for (int cls : classes_) {
    const int v = votes.count(cls) ? votes.at(cls) : 0;
    const double g = margin.count(cls) ? margin.at(cls) : 0.0;
    if (v > bestVotes || (v == bestVotes && g > bestMargin)) {
      best = cls;
      bestVotes = v;
      bestMargin = g;
    }
  }
  return best;
}

void CompiledMulticlassModel::predictBatch(const data::Dataset& ds,
                                           std::span<const std::size_t> rows,
                                           std::span<int> out,
                                           BatchScratch& scratch) const {
  CASVM_CHECK(numPairs() > 0, "empty multiclass model");
  CASVM_CHECK(out.size() >= rows.size(), "output buffer too small");
  const std::size_t pairs = numPairs();
  if (sharedPool_) {
    scratch.pairDecisions.resize(pairs);
    if (!pool_.empty()) scratch.kval.resize(pool_.size());
    for (std::size_t j = 0; j < rows.size(); ++j) {
      const std::size_t i = rows[j];
      if (!pool_.empty()) {
        // One kernel row over the deduplicated pool serves every pair.
        pool_.dotRow(ds, i, scratch.kval, scratch);
        transformDots(params_, pool_, ds.selfDot(i), scratch.kval);
      }
      for (std::size_t p = 0; p < pairs; ++p) {
        const PairRef& ref = pairRefs_[p];
        double acc = ref.bias;
        for (std::size_t s = 0; s < ref.alphaY.size(); ++s) {
          acc += ref.alphaY[s] * scratch.kval[ref.poolIdx[s]];
        }
        scratch.pairDecisions[p] = acc;
      }
      out[j] = voteFrom(scratch.pairDecisions);
    }
    return;
  }
  // Fallback: one batched decision pass per pair, then the vote per row.
  scratch.pairDecisions.resize(pairs * rows.size());
  std::vector<double> one(rows.size());
  for (std::size_t p = 0; p < pairs; ++p) {
    fallback_[p].model.decisionBatch(ds, rows, one, scratch);
    std::copy(one.begin(), one.end(),
              scratch.pairDecisions.begin() + p * rows.size());
  }
  std::vector<double> column(pairs);
  for (std::size_t j = 0; j < rows.size(); ++j) {
    for (std::size_t p = 0; p < pairs; ++p) {
      column[p] = scratch.pairDecisions[p * rows.size() + j];
    }
    out[j] = voteFrom(column);
  }
}

void CompiledMulticlassModel::predictAll(const data::Dataset& ds,
                                         std::span<int> out,
                                         BatchScratch& scratch) const {
  CASVM_CHECK(out.size() >= ds.rows(), "output buffer too small");
  std::vector<std::size_t> rows(ds.rows());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  predictBatch(ds, rows, out, scratch);
}

double CompiledMulticlassModel::accuracy(const data::Dataset& ds,
                                         const std::vector<int>& labels,
                                         BatchScratch& scratch) const {
  CASVM_CHECK(ds.rows() == labels.size(), "label count mismatch");
  CASVM_CHECK(ds.rows() > 0, "empty test set");
  std::vector<int> pred(ds.rows());
  predictAll(ds, pred, scratch);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    correct += (pred[i] == labels[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(ds.rows());
}

}  // namespace casvm::serve
