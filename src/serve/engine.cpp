#include "casvm/serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>

#include "casvm/obs/trace.hpp"
#include "casvm/support/error.hpp"

namespace casvm::serve {

namespace {

double secondsBetween(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::max();

}  // namespace

const char* serveCodeName(ServeCode code) {
  switch (code) {
    case ServeCode::Ok: return "ok";
    case ServeCode::Shed: return "shed";
    case ServeCode::Timeout: return "timeout";
    case ServeCode::Stopped: return "stopped";
    case ServeCode::BadRequest: return "bad_request";
  }
  return "unknown";
}

ServeEngine::ServeEngine(CompiledDistributedModel model, ServeConfig config)
    : slot_(std::move(model)),
      config_(config),
      queue_(std::max<std::size_t>(1, config.queueCapacity)),
      start_(std::chrono::steady_clock::now()),
      breaker_(config.breaker) {
  config_.workers = std::max(1, config_.workers);
  config_.batchSize = std::max<std::size_t>(1, config_.batchSize);
  config_.maxWaitUs = std::max<long long>(0, config_.maxWaitUs);
  config_.queueCapacity = queue_.capacity();

  const double lowFrac =
      std::clamp(config_.lowPriorityAdmitFraction, 0.0, 1.0);
  config_.lowPriorityAdmitFraction = lowFrac;
  lowPriorityCap_ = static_cast<std::size_t>(
      std::floor(lowFrac * static_cast<double>(config_.queueCapacity)));

  const BrownoutConfig& bo = config_.brownout;
  if (bo.engageFraction > 0.0 && bo.engageFraction <= 1.0) {
    brownoutEngageDepth_ = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(
               bo.engageFraction * double(config_.queueCapacity))));
    brownoutRecoverDepth_ = static_cast<std::size_t>(std::floor(
        std::clamp(bo.recoverFraction, 0.0, bo.engageFraction) *
        double(config_.queueCapacity)));
  } else {
    brownoutEngageDepth_ = SIZE_MAX;  // disabled
    brownoutRecoverDepth_ = 0;
  }

  if (config_.trace != nullptr) {
    healthLane_ = &config_.trace->addLane(kServeTracePid, config_.workers,
                                          "serve health");
  }
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    obs::Lane* lane =
        config_.trace != nullptr
            ? &config_.trace->addLane(kServeTracePid, i,
                                      "serve worker " + std::to_string(i))
            : nullptr;
    workers_.emplace_back([this, lane] { workerLoop(lane); });
  }
  transitionHealth(Health::Ready);
}

ServeEngine::~ServeEngine() { drain(); }

std::uint64_t ServeEngine::publish(CompiledDistributedModel model) {
  return slot_.publish(std::move(model));
}

std::future<ServeReply> ServeEngine::submit(std::vector<float> features,
                                            SubmitOptions options) {
  Request req;
  req.features = std::move(features);
  req.enqueued = std::chrono::steady_clock::now();
  req.priority = options.priority;
  std::future<ServeReply> fut = req.promise.get_future();

  // 1. Validate the feature width (a width-0 engine — no support vectors
  //    anywhere — scores any width as a pure bias). Scoring a wrong-width
  //    vector would read garbage, so this is a hard reject, not a shed.
  const std::size_t cols = slot_.cols();
  if (cols != 0 && req.features.size() != cols) {
    ServeReply reply;
    reply.code = ServeCode::BadRequest;
    req.promise.set_value(reply);
    std::lock_guard<std::mutex> lock(statsMutex_);
    ++badRequests_;
    return fut;
  }

  // 2. Resolve the deadline and reject already-expired submits before
  //    they consume a queue slot.
  if (options.deadline.has_value()) {
    req.deadline = *options.deadline;
  } else {
    const long long budgetUs =
        options.deadlineUs >= 0 ? options.deadlineUs : config_.requestTimeoutUs;
    req.deadline = budgetUs > 0
                       ? req.enqueued + std::chrono::microseconds(budgetUs)
                       : kNoDeadline;
  }
  if (req.deadline <= req.enqueued) {
    ServeReply reply;
    reply.code = ServeCode::Timeout;
    req.promise.set_value(reply);
    std::lock_guard<std::mutex> lock(statsMutex_);
    ++expiredAtAdmission_;
    ++timedOut_;
    return fut;
  }

  // 3. While the breaker holds the engine Degraded, low-priority work is
  //    shed outright (a policy shed: it is not fed back into the breaker,
  //    or the breaker could never observe recovery).
  if (req.priority == Priority::Low &&
      degraded_.load(std::memory_order_relaxed)) {
    ServeReply reply;
    reply.code = ServeCode::Shed;
    req.promise.set_value(reply);
    std::lock_guard<std::mutex> lock(statsMutex_);
    ++shed_;
    ++shedLow_;
    return fut;
  }

  // 4. Queue admission. Low priority only sees lowPriorityCap_ slots, so
  //    under pressure low requests shed first while high ones still fit.
  //    tryPush only consumes the request when it actually enqueues it, so
  //    on Full/Closed the promise is still ours to fulfil.
  const std::size_t cap =
      req.priority == Priority::Low ? lowPriorityCap_ : SIZE_MAX;
  switch (queue_.tryPush(std::move(req), cap)) {
    case PushResult::Ok: {
      std::lock_guard<std::mutex> lock(statsMutex_);
      ++submitted_;
      break;
    }
    case PushResult::Full: {
      ServeReply reply;
      reply.code = ServeCode::Shed;
      req.promise.set_value(reply);
      {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++shed_;
        if (req.priority == Priority::Low) ++shedLow_;
      }
      feedBreaker(true, 0.0);
      break;
    }
    case PushResult::Closed: {
      ServeReply reply;
      reply.code = ServeCode::Stopped;
      req.promise.set_value(reply);
      std::lock_guard<std::mutex> lock(statsMutex_);
      ++rejectedStopped_;
      break;
    }
  }
  return fut;
}

ServeReply ServeEngine::score(std::vector<float> features,
                              SubmitOptions options) {
  return submit(std::move(features), options).get();
}

void ServeEngine::expireRequest(Request& req,
                                std::chrono::steady_clock::time_point now) {
  ServeReply reply;
  reply.code = ServeCode::Timeout;
  reply.latencySeconds = secondsBetween(req.enqueued, now);
  {
    std::lock_guard<std::mutex> lock(statsMutex_);
    ++expiredInQueue_;
    ++timedOut_;
  }
  req.promise.set_value(reply);
}

bool ServeEngine::updateBrownout() {
  const std::size_t depth = queue_.size();
  const bool engaged = brownout_.load(std::memory_order_relaxed);
  if (!engaged && depth >= brownoutEngageDepth_) {
    if (!brownout_.exchange(true, std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(statsMutex_);
      ++brownoutEngaged_;
    }
    return true;
  }
  if (engaged && depth <= brownoutRecoverDepth_) {
    brownout_.store(false, std::memory_order_relaxed);
    return false;
  }
  return engaged;
}

void ServeEngine::workerLoop(obs::Lane* lane) {
  BatchScratch scratch;
  std::vector<Request> batch;
  for (;;) {
    Request first;
    if (queue_.waitPop(first) == PopResult::Closed) return;
    // In-queue expiry at pop: an expired request neither occupies a batch
    // slot nor delays the linger of live ones.
    if (first.deadline <= std::chrono::steady_clock::now()) {
      expireRequest(first, std::chrono::steady_clock::now());
      continue;
    }
    batch.clear();
    batch.push_back(std::move(first));

    // Brownout shrinks the linger (and optionally the flush threshold):
    // when the queue is deep, waiting for stragglers only adds latency —
    // flush what is already there.
    const bool brownout = updateBrownout();
    const long long lingerUs =
        brownout ? std::max<long long>(0, config_.brownout.maxWaitUs)
                 : config_.maxWaitUs;
    const std::size_t flushSize =
        brownout && config_.brownout.batchSize > 0
            ? std::min(config_.batchSize, config_.brownout.batchSize)
            : config_.batchSize;

    // Linger for up to lingerUs after the first request, flushing early
    // once the batch is full. Closed still returns queued items, so a
    // drain never strands admitted requests.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(lingerUs);
    while (batch.size() < flushSize) {
      Request next;
      if (queue_.waitPop(next, deadline) != PopResult::Item) break;
      if (next.deadline <= std::chrono::steady_clock::now()) {
        expireRequest(next, std::chrono::steady_clock::now());
        continue;
      }
      batch.push_back(std::move(next));
    }
    scoreBatch(batch, scratch, lane, brownout);
  }
}

void ServeEngine::scoreBatch(std::vector<Request>& batch,
                             BatchScratch& scratch, obs::Lane* lane,
                             bool brownout) {
  if (config_.injectScoreDelayUs > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(config_.injectScoreDelayUs));
  }

  // Pin the current model generation for the whole batch: a publish()
  // racing this batch takes effect at the next batch, and the retired
  // pack stays alive until the last pin drops.
  const std::shared_ptr<const ModelPack> pack = slot_.acquire();
  const CompiledDistributedModel& model = pack->model;

  const auto scoreStart = std::chrono::steady_clock::now();
  std::vector<Request*> live;
  live.reserve(batch.size());
  std::uint64_t expired = 0;
  for (auto& r : batch) {
    // Deadlines are rechecked at scoring start: the injected delay and
    // the linger both run after the pop-time check. Expired rows are
    // skipped before they burn scoring FLOPs or inflate batch stats.
    if (r.deadline <= scoreStart) {
      ServeReply reply;
      reply.code = ServeCode::Timeout;
      reply.latencySeconds = secondsBetween(r.enqueued, scoreStart);
      r.promise.set_value(reply);
      ++expired;
    } else {
      live.push_back(&r);
    }
  }

  std::vector<double> decisions(live.size(), 0.0);
  const std::size_t cols = model.cols();
  if (!live.empty()) {
    if (cols == 0) {
      // Degenerate model with no support vectors anywhere: every decision
      // is a bias; no batch dataset to build.
      for (std::size_t j = 0; j < live.size(); ++j) {
        decisions[j] = model.decision(live[j]->features, scratch);
      }
    } else {
      std::vector<float> flat(live.size() * cols);
      for (std::size_t j = 0; j < live.size(); ++j) {
        std::copy(live[j]->features.begin(), live[j]->features.end(),
                  flat.begin() + static_cast<std::ptrdiff_t>(j * cols));
      }
      const data::Dataset ds = data::Dataset::fromDense(
          cols, std::move(flat),
          std::vector<std::int8_t>(live.size(), std::int8_t{1}));
      model.decisionAll(ds, decisions, scratch);
    }
  }

  const auto done = std::chrono::steady_clock::now();
  if (lane != nullptr && !live.empty()) {
    lane->span("batch", obs::Cat::Serve, secondsBetween(start_, scoreStart),
               secondsBetween(start_, done), -1,
               static_cast<std::int64_t>(live.size() * cols * sizeof(float)),
               static_cast<std::int64_t>(live.size()));
  }
  std::vector<double> latencies(live.size(), 0.0);
  for (std::size_t j = 0; j < live.size(); ++j) {
    latencies[j] = secondsBetween(live[j]->enqueued, done);
  }

  // Record before fulfilling the promises: once a caller sees its reply,
  // a stats() snapshot must already account for it.
  {
    std::lock_guard<std::mutex> lock(statsMutex_);
    expiredInQueue_ += expired;
    timedOut_ += expired;
    completed_ += live.size();
    if (!live.empty()) {
      ++batches_;
      if (brownout) ++brownoutBatches_;
      batchRows_.record(static_cast<double>(live.size()));
      for (double lat : latencies) latencyUs_.record(lat * 1e6);
    }
  }

  for (std::size_t j = 0; j < live.size(); ++j) {
    ServeReply reply;
    reply.code = ServeCode::Ok;
    reply.decision = decisions[j];
    reply.label = decisions[j] >= 0.0 ? std::int8_t{1} : std::int8_t{-1};
    reply.latencySeconds = latencies[j];
    reply.batchRows = live.size();
    reply.modelGeneration = pack->generation;
    live[j]->promise.set_value(reply);
  }
  for (double lat : latencies) feedBreaker(false, lat * 1e6);
}

void ServeEngine::feedBreaker(bool shedOutcome, double latencyUs) {
  CircuitBreaker::Action action;
  {
    std::lock_guard<std::mutex> lock(statsMutex_);
    action = breaker_.onOutcome(shedOutcome, latencyUs);
  }
  if (action == CircuitBreaker::Action::Trip) {
    degraded_.store(true, std::memory_order_relaxed);
    transitionHealth(Health::Degraded);
  } else if (action == CircuitBreaker::Action::Recover) {
    degraded_.store(false, std::memory_order_relaxed);
    transitionHealth(Health::Ready);
  }
}

void ServeEngine::transitionHealth(Health to) {
  std::lock_guard<std::mutex> lock(healthMutex_);
  if (health_ == to) return;
  // The drain tail is final: a late breaker recovery (or trip) must not
  // pull a Draining/Drained engine back into service states.
  if (health_ >= Health::Draining && to < Health::Draining) return;
  HealthTransition t;
  t.from = health_;
  t.to = to;
  t.atSeconds = secondsBetween(start_, std::chrono::steady_clock::now());
  transitions_.push_back(t);
  health_ = to;
}

Health ServeEngine::health() const {
  std::lock_guard<std::mutex> lock(healthMutex_);
  return health_;
}

std::vector<HealthTransition> ServeEngine::healthTransitions() const {
  std::lock_guard<std::mutex> lock(healthMutex_);
  return transitions_;
}

void ServeEngine::flushHealthLane() {
  if (healthLane_ == nullptr) return;
  // Called after the workers joined and health reached Drained, so the
  // timeline is final and the lane has a single writer.
  std::vector<HealthTransition> timeline = healthTransitions();
  double at = 0.0;
  Health state = Health::Starting;
  for (const HealthTransition& t : timeline) {
    healthLane_->span(healthName(state), obs::Cat::Serve, at, t.atSeconds, -1,
                      -1, static_cast<std::int64_t>(state));
    at = t.atSeconds;
    state = t.to;
  }
  healthLane_->span(healthName(state), obs::Cat::Serve, at,
                    secondsBetween(start_, std::chrono::steady_clock::now()),
                    -1, -1, static_cast<std::int64_t>(state));
}

void ServeEngine::drain() {
  std::lock_guard<std::mutex> lifecycle(lifecycleMutex_);
  if (drained_) return;
  transitionHealth(Health::Draining);
  queue_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  drained_ = true;
  transitionHealth(Health::Drained);
  flushHealthLane();
  std::lock_guard<std::mutex> lock(statsMutex_);
  drainedElapsed_ = secondsBetween(start_, std::chrono::steady_clock::now());
}

ServeStats ServeEngine::stats() const {
  std::lock_guard<std::mutex> lock(statsMutex_);
  ServeStats s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.shed = shed_;
  s.timedOut = timedOut_;
  s.rejectedStopped = rejectedStopped_;
  s.badRequests = badRequests_;
  s.expiredAtAdmission = expiredAtAdmission_;
  s.expiredInQueue = expiredInQueue_;
  s.shedLow = shedLow_;
  s.brownoutEngaged = brownoutEngaged_;
  s.brownoutBatches = brownoutBatches_;
  s.breakerTrips = breaker_.trips();
  s.breakerRecoveries = breaker_.recoveries();
  s.modelGeneration = slot_.generation();
  s.modelSwaps = slot_.swaps();
  s.batches = batches_;
  {
    std::lock_guard<std::mutex> healthLock(healthMutex_);
    s.health = healthName(health_);
  }
  s.elapsedSeconds =
      drainedElapsed_ >= 0.0
          ? drainedElapsed_
          : secondsBetween(start_, std::chrono::steady_clock::now());
  s.qps = s.elapsedSeconds > 0.0
              ? static_cast<double>(completed_) / s.elapsedSeconds
              : 0.0;
  s.latencyP50 = latencyUs_.quantile(0.50) / 1e6;
  s.latencyP95 = latencyUs_.quantile(0.95) / 1e6;
  s.latencyP99 = latencyUs_.quantile(0.99) / 1e6;
  s.latencyMax = latencyUs_.max() / 1e6;
  s.meanBatchRows = batchRows_.mean();
  s.batchRowsP50 = batchRows_.quantile(0.50);
  s.batchRowsMax = batchRows_.max();
  return s;
}

}  // namespace casvm::serve
