#include "casvm/serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "casvm/obs/trace.hpp"
#include "casvm/support/error.hpp"

namespace casvm::serve {

namespace {

double secondsBetween(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

const char* serveCodeName(ServeCode code) {
  switch (code) {
    case ServeCode::Ok: return "ok";
    case ServeCode::Shed: return "shed";
    case ServeCode::Timeout: return "timeout";
    case ServeCode::Stopped: return "stopped";
  }
  return "unknown";
}

ServeEngine::ServeEngine(CompiledDistributedModel model, ServeConfig config)
    : model_(std::move(model)),
      config_(config),
      queue_(std::max<std::size_t>(1, config.queueCapacity)),
      start_(std::chrono::steady_clock::now()) {
  config_.workers = std::max(1, config_.workers);
  config_.batchSize = std::max<std::size_t>(1, config_.batchSize);
  config_.maxWaitUs = std::max<long long>(0, config_.maxWaitUs);
  config_.queueCapacity = queue_.capacity();
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    obs::Lane* lane =
        config_.trace != nullptr
            ? &config_.trace->addLane(kServeTracePid, i,
                                      "serve worker " + std::to_string(i))
            : nullptr;
    workers_.emplace_back([this, lane] { workerLoop(lane); });
  }
}

ServeEngine::~ServeEngine() { drain(); }

std::future<ServeReply> ServeEngine::submit(std::vector<float> features) {
  const std::size_t cols = model_.cols();
  CASVM_CHECK(cols == 0 || features.size() == cols,
              "serve: request feature width does not match the model");

  Request req;
  req.features = std::move(features);
  req.enqueued = std::chrono::steady_clock::now();
  std::future<ServeReply> fut = req.promise.get_future();

  // tryPush only consumes the request when it actually enqueues it, so on
  // Full/Closed the promise is still ours to fulfil with the reject code.
  switch (queue_.tryPush(std::move(req))) {
    case PushResult::Ok: {
      std::lock_guard<std::mutex> lock(statsMutex_);
      ++submitted_;
      break;
    }
    case PushResult::Full: {
      ServeReply reply;
      reply.code = ServeCode::Shed;
      req.promise.set_value(reply);
      std::lock_guard<std::mutex> lock(statsMutex_);
      ++shed_;
      break;
    }
    case PushResult::Closed: {
      ServeReply reply;
      reply.code = ServeCode::Stopped;
      req.promise.set_value(reply);
      std::lock_guard<std::mutex> lock(statsMutex_);
      ++rejectedStopped_;
      break;
    }
  }
  return fut;
}

ServeReply ServeEngine::score(std::vector<float> features) {
  return submit(std::move(features)).get();
}

void ServeEngine::workerLoop(obs::Lane* lane) {
  BatchScratch scratch;
  std::vector<Request> batch;
  for (;;) {
    Request first;
    if (queue_.waitPop(first) == PopResult::Closed) return;
    batch.clear();
    batch.push_back(std::move(first));

    // Linger for up to maxWaitUs after the first request, flushing early
    // once the batch is full. Closed still returns queued items, so a
    // drain never strands admitted requests.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(config_.maxWaitUs);
    while (batch.size() < config_.batchSize) {
      Request next;
      if (queue_.waitPop(next, deadline) != PopResult::Item) break;
      batch.push_back(std::move(next));
    }
    scoreBatch(batch, scratch, lane);
  }
}

void ServeEngine::scoreBatch(std::vector<Request>& batch,
                             BatchScratch& scratch, obs::Lane* lane) {
  if (config_.injectScoreDelayUs > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(config_.injectScoreDelayUs));
  }

  const auto scoreStart = std::chrono::steady_clock::now();
  std::vector<Request*> live;
  live.reserve(batch.size());
  std::uint64_t expired = 0;
  for (auto& r : batch) {
    if (config_.requestTimeoutUs > 0 &&
        scoreStart - r.enqueued >
            std::chrono::microseconds(config_.requestTimeoutUs)) {
      ServeReply reply;
      reply.code = ServeCode::Timeout;
      reply.latencySeconds = secondsBetween(r.enqueued, scoreStart);
      r.promise.set_value(reply);
      ++expired;
    } else {
      live.push_back(&r);
    }
  }

  std::vector<double> decisions(live.size(), 0.0);
  const std::size_t cols = model_.cols();
  if (!live.empty()) {
    if (cols == 0) {
      // Degenerate model with no support vectors anywhere: every decision
      // is a bias; no batch dataset to build.
      for (std::size_t j = 0; j < live.size(); ++j) {
        decisions[j] = model_.decision(live[j]->features, scratch);
      }
    } else {
      std::vector<float> flat(live.size() * cols);
      for (std::size_t j = 0; j < live.size(); ++j) {
        std::copy(live[j]->features.begin(), live[j]->features.end(),
                  flat.begin() + static_cast<std::ptrdiff_t>(j * cols));
      }
      const data::Dataset ds = data::Dataset::fromDense(
          cols, std::move(flat),
          std::vector<std::int8_t>(live.size(), std::int8_t{1}));
      model_.decisionAll(ds, decisions, scratch);
    }
  }

  const auto done = std::chrono::steady_clock::now();
  if (lane != nullptr && !live.empty()) {
    lane->span("batch", obs::Cat::Serve, secondsBetween(start_, scoreStart),
               secondsBetween(start_, done), -1,
               static_cast<std::int64_t>(live.size() * cols * sizeof(float)),
               static_cast<std::int64_t>(live.size()));
  }
  std::vector<double> latencies(live.size(), 0.0);
  for (std::size_t j = 0; j < live.size(); ++j) {
    latencies[j] = secondsBetween(live[j]->enqueued, done);
  }

  // Record before fulfilling the promises: once a caller sees its reply,
  // a stats() snapshot must already account for it.
  {
    std::lock_guard<std::mutex> lock(statsMutex_);
    timedOut_ += expired;
    completed_ += live.size();
    if (!live.empty()) {
      ++batches_;
      batchRows_.record(static_cast<double>(live.size()));
      for (double lat : latencies) latencyUs_.record(lat * 1e6);
    }
  }

  for (std::size_t j = 0; j < live.size(); ++j) {
    ServeReply reply;
    reply.code = ServeCode::Ok;
    reply.decision = decisions[j];
    reply.label = decisions[j] >= 0.0 ? std::int8_t{1} : std::int8_t{-1};
    reply.latencySeconds = latencies[j];
    reply.batchRows = live.size();
    live[j]->promise.set_value(reply);
  }
}

void ServeEngine::drain() {
  std::lock_guard<std::mutex> lifecycle(lifecycleMutex_);
  if (drained_) return;
  queue_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  drained_ = true;
  std::lock_guard<std::mutex> lock(statsMutex_);
  drainedElapsed_ = secondsBetween(start_, std::chrono::steady_clock::now());
}

ServeStats ServeEngine::stats() const {
  std::lock_guard<std::mutex> lock(statsMutex_);
  ServeStats s;
  s.submitted = submitted_;
  s.completed = completed_;
  s.shed = shed_;
  s.timedOut = timedOut_;
  s.rejectedStopped = rejectedStopped_;
  s.batches = batches_;
  s.elapsedSeconds =
      drainedElapsed_ >= 0.0
          ? drainedElapsed_
          : secondsBetween(start_, std::chrono::steady_clock::now());
  s.qps = s.elapsedSeconds > 0.0
              ? static_cast<double>(completed_) / s.elapsedSeconds
              : 0.0;
  s.latencyP50 = latencyUs_.quantile(0.50) / 1e6;
  s.latencyP95 = latencyUs_.quantile(0.95) / 1e6;
  s.latencyP99 = latencyUs_.quantile(0.99) / 1e6;
  s.latencyMax = latencyUs_.max() / 1e6;
  s.meanBatchRows = batchRows_.mean();
  s.batchRowsP50 = batchRows_.quantile(0.50);
  s.batchRowsMax = batchRows_.max();
  return s;
}

}  // namespace casvm::serve
