#include "casvm/serve/compiled_model.hpp"

#include <algorithm>
#include <cmath>

#include "casvm/kernel/tile_kernel.hpp"
#include "casvm/support/error.hpp"

namespace casvm::serve {

CompiledSvSet::CompiledSvSet(const data::Dataset& svs)
    : count_(svs.rows()), cols_(svs.cols()),
      dense_(svs.storage() == data::Storage::Dense) {
  selfDots_.reserve(count_);
  for (std::size_t s = 0; s < count_; ++s) selfDots_.push_back(svs.selfDot(s));
  if (count_ == 0) return;
  if (dense_) {
    kernel::tile::pack(svs, tiles_);
    return;
  }
  rowPtr_.reserve(count_ + 1);
  rowPtr_.push_back(0);
  for (std::size_t s = 0; s < count_; ++s) {
    const auto idx = svs.sparseIndices(s);
    const auto val = svs.sparseValues(s);
    colIdx_.insert(colIdx_.end(), idx.begin(), idx.end());
    vals_.insert(vals_.end(), val.begin(), val.end());
    rowPtr_.push_back(colIdx_.size());
  }
}

std::size_t CompiledSvSet::packedBytes() const {
  return tiles_.size() * sizeof(float) + vals_.size() * sizeof(float) +
         colIdx_.size() * sizeof(std::uint32_t) +
         rowPtr_.size() * sizeof(std::size_t) +
         selfDots_.size() * sizeof(double);
}

void CompiledSvSet::dotAgainstScratch(std::span<double> kval,
                                      BatchScratch& scratch) const {
  if (dense_) {
    kernel::tile::dotFn()(tiles_.data(), scratch.xd.data(), count_, cols_,
                          kval.data());
    return;
  }
  // CSR scatter: the query sits densified in scratch.xd; each SV streams
  // its nonzeros against it in ascending-column order, which is
  // bitwise-identical to Dataset::dotWith / the sparse-sparse merge join
  // (zero products never perturb the running sum).
  for (std::size_t s = 0; s < count_; ++s) {
    double acc = 0.0;
    for (std::size_t p = rowPtr_[s]; p < rowPtr_[s + 1]; ++p) {
      acc += double(vals_[p]) * scratch.xd[colIdx_[p]];
    }
    kval[s] = acc;
  }
}

void CompiledSvSet::dotRow(const data::Dataset& ds, std::size_t i,
                           std::span<double> kval,
                           BatchScratch& scratch) const {
  CASVM_CHECK(ds.cols() == cols_, "query feature count differs from SVs");
  CASVM_CHECK(kval.size() >= count_, "kernel value buffer too small");
  scratch.xd.assign(cols_, 0.0);
  if (ds.storage() == data::Storage::Dense) {
    const std::span<const float> r = ds.denseRow(i);
    for (std::size_t k = 0; k < cols_; ++k) scratch.xd[k] = double(r[k]);
  } else {
    const auto idx = ds.sparseIndices(i);
    const auto val = ds.sparseValues(i);
    for (std::size_t p = 0; p < idx.size(); ++p) {
      scratch.xd[idx[p]] = double(val[p]);
    }
  }
  dotAgainstScratch(kval, scratch);
}

void CompiledSvSet::dotVector(std::span<const float> x, std::span<double> kval,
                              BatchScratch& scratch) const {
  CASVM_CHECK(x.size() == cols_, "query feature count differs from SVs");
  CASVM_CHECK(kval.size() >= count_, "kernel value buffer too small");
  scratch.xd.resize(cols_);
  for (std::size_t k = 0; k < cols_; ++k) scratch.xd[k] = double(x[k]);
  dotAgainstScratch(kval, scratch);
}

void transformDots(const kernel::KernelParams& params, const CompiledSvSet& svs,
                   double querySelfDot, std::span<double> kval) {
  const std::size_t m = svs.size();
  switch (params.type) {
    case kernel::KernelType::Linear:
      break;
    case kernel::KernelType::Polynomial:
      for (std::size_t s = 0; s < m; ++s) {
        kval[s] = std::pow(params.a * kval[s] + params.r, params.degree);
      }
      break;
    case kernel::KernelType::Gaussian:
      for (std::size_t s = 0; s < m; ++s) {
        // Same order as Kernel::fromDot: selfI (SV) + selfJ (query) first.
        const double d2 = svs.selfDot(s) + querySelfDot - 2.0 * kval[s];
        kval[s] = std::exp(-params.gamma * (d2 > 0.0 ? d2 : 0.0));
      }
      break;
    case kernel::KernelType::Sigmoid:
      for (std::size_t s = 0; s < m; ++s) {
        kval[s] = std::tanh(params.a * kval[s] + params.r);
      }
      break;
  }
}

CompiledModel::CompiledModel(kernel::KernelParams params,
                             const data::Dataset& svs,
                             std::vector<double> alphaY, double bias)
    : params_(params), svs_(svs), alphaY_(std::move(alphaY)), bias_(bias) {
  CASVM_CHECK(svs_.size() == alphaY_.size(),
              "one coefficient per support vector required");
}

double CompiledModel::reduce(std::span<const double> kval) const {
  double acc = bias_;
  for (std::size_t s = 0; s < alphaY_.size(); ++s) {
    acc += alphaY_[s] * kval[s];
  }
  return acc;
}

void CompiledModel::decisionBatch(const data::Dataset& ds,
                                  std::span<const std::size_t> rows,
                                  std::span<double> out,
                                  BatchScratch& scratch) const {
  CASVM_CHECK(out.size() >= rows.size(), "output buffer too small");
  if (svs_.empty()) {
    for (std::size_t j = 0; j < rows.size(); ++j) out[j] = bias_;
    return;
  }
  scratch.kval.resize(svs_.size());
  for (std::size_t j = 0; j < rows.size(); ++j) {
    const std::size_t i = rows[j];
    svs_.dotRow(ds, i, scratch.kval, scratch);
    transformDots(params_, svs_, ds.selfDot(i), scratch.kval);
    out[j] = reduce(scratch.kval);
  }
}

void CompiledModel::decisionAll(const data::Dataset& ds, std::span<double> out,
                                BatchScratch& scratch) const {
  CASVM_CHECK(out.size() >= ds.rows(), "output buffer too small");
  if (svs_.empty()) {
    for (std::size_t i = 0; i < ds.rows(); ++i) out[i] = bias_;
    return;
  }
  scratch.kval.resize(svs_.size());
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    svs_.dotRow(ds, i, scratch.kval, scratch);
    transformDots(params_, svs_, ds.selfDot(i), scratch.kval);
    out[i] = reduce(scratch.kval);
  }
}

double CompiledModel::decision(std::span<const float> x,
                               BatchScratch& scratch) const {
  if (svs_.empty()) return bias_;
  // Same accumulation order as Model::decision's xSelf.
  double xSelf = 0.0;
  for (float v : x) xSelf += double(v) * double(v);
  scratch.kval.resize(svs_.size());
  svs_.dotVector(x, scratch.kval, scratch);
  transformDots(params_, svs_, xSelf, scratch.kval);
  return reduce(scratch.kval);
}

}  // namespace casvm::serve
