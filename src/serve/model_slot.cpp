#include "casvm/serve/model_slot.hpp"

#include "casvm/support/error.hpp"

namespace casvm::serve {

ModelSlot::ModelSlot(CompiledDistributedModel initial) {
  auto pack = std::make_shared<ModelPack>();
  pack->model = std::move(initial);
  pack->generation = 1;
  cols_ = pack->model.cols();
  current_ = std::move(pack);
}

std::uint64_t ModelSlot::publish(CompiledDistributedModel model) {
  const std::size_t newCols = model.cols();
  std::lock_guard<std::mutex> lock(mutex_);
  CASVM_CHECK(newCols == 0 || cols_ == 0 || newCols == cols_,
              "serve: published model feature width does not match the "
              "width this engine was created with");
  auto pack = std::make_shared<ModelPack>();
  pack->model = std::move(model);
  pack->generation = current_->generation + 1;
  if (cols_ == 0) cols_ = newCols;
  current_ = std::move(pack);
  ++swaps_;
  return current_->generation;
}

std::shared_ptr<const ModelPack> ModelSlot::acquire() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

std::uint64_t ModelSlot::generation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_->generation;
}

std::uint64_t ModelSlot::swaps() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return swaps_;
}

std::size_t ModelSlot::cols() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cols_;
}

}  // namespace casvm::serve
