#include "casvm/serve/health.hpp"

#include <algorithm>

namespace casvm::serve {

const char* healthName(Health health) {
  switch (health) {
    case Health::Starting: return "starting";
    case Health::Ready: return "ready";
    case Health::Degraded: return "degraded";
    case Health::Draining: return "draining";
    case Health::Drained: return "drained";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(BreakerConfig config) : config_(config) {
  config_.tripWindows = std::max(1, config_.tripWindows);
  config_.recoverWindows = std::max(1, config_.recoverWindows);
}

CircuitBreaker::Action CircuitBreaker::onOutcome(bool shed, double latencyUs) {
  if (config_.windowRequests == 0) return Action::None;
  ++windowTotal_;
  if (shed) {
    ++windowShed_;
  } else {
    windowLatencyUs_.record(latencyUs);
  }
  if (windowTotal_ < config_.windowRequests) return Action::None;
  return evaluateWindow();
}

CircuitBreaker::Action CircuitBreaker::evaluateWindow() {
  const double shedRate =
      static_cast<double>(windowShed_) / static_cast<double>(windowTotal_);
  const double p99Us = windowLatencyUs_.quantile(0.99);
  const bool breach = shedRate > config_.maxShedRate ||
                      (config_.maxP99Us > 0.0 && p99Us > config_.maxP99Us);
  windowTotal_ = 0;
  windowShed_ = 0;
  windowLatencyUs_ = Log2Histogram{};

  Action action = Action::None;
  if (!open_) {
    breachStreak_ = breach ? breachStreak_ + 1 : 0;
    if (breachStreak_ >= config_.tripWindows) {
      open_ = true;
      ++trips_;
      breachStreak_ = 0;
      healthyStreak_ = 0;
      action = Action::Trip;
    }
  } else {
    healthyStreak_ = breach ? 0 : healthyStreak_ + 1;
    if (healthyStreak_ >= config_.recoverWindows) {
      open_ = false;
      ++recoveries_;
      breachStreak_ = 0;
      healthyStreak_ = 0;
      action = Action::Recover;
    }
  }
  return action;
}

}  // namespace casvm::serve
