#include "casvm/core/distributed_model.hpp"

#include <cstring>
#include <fstream>
#include <limits>

#include "casvm/support/atomic_file.hpp"
#include "casvm/support/error.hpp"

namespace casvm::core {

DistributedModel DistributedModel::single(solver::Model model) {
  DistributedModel dm;
  dm.models_.push_back(std::move(model));
  return dm;
}

DistributedModel DistributedModel::routed(
    std::vector<solver::Model> models,
    std::vector<std::vector<float>> centers) {
  CASVM_CHECK(!models.empty(), "routed model needs at least one sub-model");
  CASVM_CHECK(models.size() == centers.size(),
              "one center per sub-model required");
  DistributedModel dm;
  dm.models_ = std::move(models);
  dm.centers_ = std::move(centers);
  dm.centerSelfDots_.reserve(dm.centers_.size());
  for (const auto& c : dm.centers_) {
    double s = 0.0;
    for (float v : c) s += double(v) * double(v);
    dm.centerSelfDots_.push_back(s);
  }
  return dm;
}

std::size_t DistributedModel::totalSupportVectors() const {
  std::size_t total = 0;
  for (const auto& m : models_) total += m.numSupportVectors();
  return total;
}

std::size_t DistributedModel::route(const data::Dataset& ds,
                                    std::size_t i) const {
  if (!isRouted()) return 0;
  std::size_t best = 0;
  double bestDist = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centers_.size(); ++c) {
    const double d =
        ds.squaredDistanceTo(i, centers_[c], centerSelfDots_[c]);
    if (d < bestDist) {
      bestDist = d;
      best = c;
    }
  }
  return best;
}

double DistributedModel::decisionFor(const data::Dataset& ds,
                                     std::size_t i) const {
  CASVM_CHECK(!models_.empty(), "empty distributed model");
  return models_[route(ds, i)].decisionFor(ds, i);
}

double DistributedModel::accuracy(const data::Dataset& testSet) const {
  CASVM_CHECK(testSet.rows() > 0, "empty test set");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < testSet.rows(); ++i) {
    correct += (predictFor(testSet, i) == testSet.label(i));
  }
  return static_cast<double>(correct) / static_cast<double>(testSet.rows());
}

std::vector<std::byte> DistributedModel::pack() const {
  std::vector<std::byte> out;
  auto append = [&out](const void* data, std::size_t bytes) {
    const std::size_t off = out.size();
    out.resize(off + bytes);
    std::memcpy(out.data() + off, data, bytes);
  };
  const std::uint64_t count = models_.size();
  const std::uint64_t routedFlag = isRouted() ? 1 : 0;
  append(&count, sizeof(count));
  append(&routedFlag, sizeof(routedFlag));
  for (const auto& m : models_) {
    const std::vector<std::byte> bytes = m.pack();
    const std::uint64_t len = bytes.size();
    append(&len, sizeof(len));
    append(bytes.data(), bytes.size());
  }
  if (isRouted()) {
    const std::uint64_t dim = centers_.empty() ? 0 : centers_[0].size();
    append(&dim, sizeof(dim));
    for (const auto& c : centers_) {
      CASVM_CHECK(c.size() == dim, "center dimensions differ");
      append(c.data(), c.size() * sizeof(float));
    }
  }
  return out;
}

DistributedModel DistributedModel::unpack(std::span<const std::byte> bytes) {
  auto read = [&bytes](void* data, std::size_t count) {
    CASVM_CHECK(bytes.size() >= count, "distributed model unpack: truncated");
    std::memcpy(data, bytes.data(), count);
    bytes = bytes.subspan(count);
  };
  std::uint64_t count = 0, routedFlag = 0;
  read(&count, sizeof(count));
  read(&routedFlag, sizeof(routedFlag));
  // Every sub-model needs at least its 8-byte length prefix, so a count
  // larger than that bound is corrupt; check before reserving anything.
  CASVM_CHECK(count <= bytes.size() / sizeof(std::uint64_t),
              "distributed model unpack: sub-model count exceeds payload");
  std::vector<solver::Model> models;
  models.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t len = 0;
    read(&len, sizeof(len));
    CASVM_CHECK(bytes.size() >= len, "distributed model unpack: truncated");
    models.push_back(solver::Model::unpack(bytes.subspan(0, len)));
    bytes = bytes.subspan(len);
  }
  if (routedFlag == 0) {
    CASVM_CHECK(count == 1, "single model must have exactly one sub-model");
    return single(std::move(models.front()));
  }
  std::uint64_t dim = 0;
  read(&dim, sizeof(dim));
  CASVM_CHECK(dim <= bytes.size() / sizeof(float),
              "distributed model unpack: center dimension exceeds payload");
  std::vector<std::vector<float>> centers(count, std::vector<float>(dim));
  for (auto& c : centers) read(c.data(), dim * sizeof(float));
  CASVM_CHECK(bytes.empty(), "distributed model unpack: trailing bytes");
  return routed(std::move(models), std::move(centers));
}

void DistributedModel::save(const std::string& path) const {
  // Atomic temp-file + rename: a crash mid-save leaves either the previous
  // model or none — never a truncated file a later load would trip over.
  support::writeFileAtomic(path, std::span<const std::byte>(pack()));
}

DistributedModel DistributedModel::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  CASVM_CHECK(in.good(), "cannot open model file: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  CASVM_CHECK(in.good(), "model read failed: " + path);
  return unpack(bytes);
}

}  // namespace casvm::core
