// Distributed SMO (the paper's Dis-SMO baseline, after Cao et al. 2006).
//
// One global SMO solve runs across P ranks, each owning a block of rows.
// Every iteration performs:
//   1. local working-set scan over the owned rows,
//   2. two allreduce MINLOC/MAXLOC reductions electing (i_high, i_low),
//   3. two broadcasts shipping the elected samples to everyone,
//   4. a local gradient update of f over the owned rows (eqn. 5).
// This is exactly the 14 log P t_s + 2 n log P t_w per-iteration pattern of
// the paper's eqn. (9), and is why Dis-SMO's isoefficiency is W = Omega(P^3).

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "methods.hpp"
#include "casvm/kernel/kernel.hpp"
#include "casvm/obs/trace.hpp"
#include "casvm/support/error.hpp"

namespace casvm::core::detail {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Encodes (rank, local index) into the 63-bit index of a ValIdx reduction.
constexpr long long kRankStride = 1LL << 40;

// Metadata broadcast with each elected sample.
struct ElectedMeta {
  double alpha;
  double selfDot;
  double y;
};

constexpr double kBoundSlack = 1e-10;

inline bool inHighSet(std::int8_t y, double alpha, double C, double eps) {
  return (y == 1 && alpha < C - eps) || (y == -1 && alpha > eps);
}

inline bool inLowSet(std::int8_t y, double alpha, double C, double eps) {
  return (y == 1 && alpha > eps) || (y == -1 && alpha < C - eps);
}

}  // namespace

void runDisSmo(net::Comm& comm, const MethodContext& ctx) {
  const int rank = comm.rank();
  const auto urank = static_cast<std::size_t>(rank);
  const data::Dataset& local = ctx.initialBlocks[urank];
  RankBoard& board = ctx.board;

  board.samples[urank] = static_cast<long long>(local.rows());
  board.positives[urank] = static_cast<long long>(local.positives());

  // Init phase: blocks are pre-placed; nothing to distribute.
  markInitEnd(comm, ctx);
  comm.faultCheckpoint("train");

  const solver::SolverOptions& opts = ctx.config.solver;
  const double C = opts.C;
  const double boundEps = kBoundSlack * C;
  const double tau = opts.tolerance;
  const kernel::Kernel kern(opts.kernel);
  const std::size_t mLocal = local.rows();
  const std::size_t n = local.cols();

  std::vector<double> alpha(mLocal, 0.0);
  std::vector<double> f(mLocal);
  for (std::size_t i = 0; i < mLocal; ++i) f[i] = -double(local.label(i));

  const long long globalM =
      comm.allreduceSum(static_cast<long long>(mLocal));
  const std::size_t maxIters =
      opts.maxIterations > 0
          ? opts.maxIterations
          : static_cast<std::size_t>(100 * globalM + 10000);

  std::vector<float> xHigh(n), xLow(n);
  double bHigh = 0.0, bLow = 0.0;
  long long iters = 0;

  obs::Lane* lane = comm.traceLane();
  constexpr std::size_t kProgressInterval = 512;
  std::optional<PhaseSpan> solvePhase;
  solvePhase.emplace(comm, "solve");

  for (std::size_t it = 0; it < maxIters; ++it) {
    // 1. Local scan for the maximal violating pair over owned rows.
    double localHigh = kInf, localLow = -kInf;
    long long localHighIdx = -1, localLowIdx = -1;
    for (std::size_t i = 0; i < mLocal; ++i) {
      const std::int8_t y = local.label(i);
      const double a = alpha[i];
      if (inHighSet(y, a, C, boundEps) && f[i] < localHigh) {
        localHigh = f[i];
        localHighIdx = rank * kRankStride + static_cast<long long>(i);
      }
      if (inLowSet(y, a, C, boundEps) && f[i] > localLow) {
        localLow = f[i];
        localLowIdx = rank * kRankStride + static_cast<long long>(i);
      }
    }

    // 2. Global election.
    const net::Comm::ValIdx high = comm.allreduceMinloc(localHigh, localHighIdx);
    const net::Comm::ValIdx low = comm.allreduceMaxloc(localLow, localLowIdx);
    bHigh = high.value;
    bLow = low.value;
    if (bLow <= bHigh + 2.0 * tau) break;

    // Both thresholds are finite past the convergence check (an empty
    // candidate set leaves one at +-inf, which takes the break above).
    if (lane != nullptr && it % kProgressInterval == 0) {
      lane->progress(virtualNow(comm), static_cast<std::int64_t>(it),
                     static_cast<std::int64_t>(mLocal), bLow - bHigh, 0.0);
    }

    const int ownerHigh = static_cast<int>(high.index / kRankStride);
    const int ownerLow = static_cast<int>(low.index / kRankStride);
    const auto localHighI = static_cast<std::size_t>(high.index % kRankStride);
    const auto localLowI = static_cast<std::size_t>(low.index % kRankStride);

    // 3. Owners ship the elected samples (values + label + alpha + norm).
    ElectedMeta metaHigh{}, metaLow{};
    if (rank == ownerHigh) {
      metaHigh = {alpha[localHighI], local.selfDot(localHighI),
                  double(local.label(localHighI))};
      local.copyRowDense(localHighI, xHigh);
    }
    comm.bcast(metaHigh, ownerHigh);
    comm.bcast(xHigh, ownerHigh);
    if (rank == ownerLow) {
      metaLow = {alpha[localLowI], local.selfDot(localLowI),
                 double(local.label(localLowI))};
      local.copyRowDense(localLowI, xLow);
    }
    comm.bcast(metaLow, ownerLow);
    comm.bcast(xLow, ownerLow);

    // Every rank computes the identical two-variable step (eqns. 6-7).
    const double kHH = kern.evalVectors(xHigh, metaHigh.selfDot, xHigh,
                                        metaHigh.selfDot);
    const double kLL =
        kern.evalVectors(xLow, metaLow.selfDot, xLow, metaLow.selfDot);
    const double kHL =
        kern.evalVectors(xHigh, metaHigh.selfDot, xLow, metaLow.selfDot);
    double eta = kHH + kLL - 2.0 * kHL;
    if (eta < 1e-12) eta = 1e-12;

    const double s = metaHigh.y * metaLow.y;
    double lo, hi;
    if (s < 0.0) {
      lo = std::max(0.0, metaLow.alpha - metaHigh.alpha);
      hi = std::min(C, C + metaLow.alpha - metaHigh.alpha);
    } else {
      lo = std::max(0.0, metaHigh.alpha + metaLow.alpha - C);
      hi = std::min(C, metaHigh.alpha + metaLow.alpha);
    }
    double aLowNew = metaLow.alpha + metaLow.y * (bHigh - bLow) / eta;
    aLowNew = std::clamp(aLowNew, lo, hi);
    const double dLow = aLowNew - metaLow.alpha;
    if (std::abs(dLow) < 1e-14) break;  // pinned pair: numerical convergence
    const double dHigh = -s * dLow;

    if (rank == ownerHigh) {
      double a = alpha[localHighI] + dHigh;
      if (a < boundEps) a = 0.0;
      if (a > C - boundEps) a = C;
      alpha[localHighI] = a;
    }
    if (rank == ownerLow) {
      double a = alpha[localLowI] + dLow;
      if (a < boundEps) a = 0.0;
      if (a > C - boundEps) a = C;
      alpha[localLowI] = a;
    }

    // 4. Local gradient update (eqn. 5) over the owned block: the 2mn/P
    // term of eqn. (9).
    const double coefHigh = dHigh * metaHigh.y;
    const double coefLow = dLow * metaLow.y;
    for (std::size_t i = 0; i < mLocal; ++i) {
      f[i] += coefHigh * kern.evalWith(local, i, xHigh, metaHigh.selfDot) +
              coefLow * kern.evalWith(local, i, xLow, metaLow.selfDot);
    }
    ++iters;
  }
  solvePhase.reset();  // end the "solve" span before train-end bookkeeping

  markTrainEnd(comm, ctx);

  // Deposit this rank's model fragment (its support vectors); the driver
  // concatenates fragments into the single global model. Every rank saw the
  // same final thresholds, so any rank's bias is authoritative.
  const double bias = -(bHigh + bLow) / 2.0;
  std::vector<std::size_t> svIdx;
  std::vector<double> alphaY;
  for (std::size_t i = 0; i < mLocal; ++i) {
    if (alpha[i] > 0.0) {
      svIdx.push_back(i);
      alphaY.push_back(alpha[i] * double(local.label(i)));
    }
  }
  board.models[urank] = solver::Model(opts.kernel, local.subset(svIdx),
                                      std::move(alphaY), bias);
  board.iterations[urank] = iters;
  board.svs[urank] = static_cast<long long>(svIdx.size());
}

}  // namespace casvm::core::detail
