// Distributed SMO (the paper's Dis-SMO baseline, after Cao et al. 2006),
// plus the adaptive-shrinking variant (Narasimhan & Vishnu 2014).
//
// One global SMO solve runs across P ranks, each owning a block of rows.
// Every iteration performs:
//   1. local working-set scan over the owned (active) rows,
//   2. two allreduce MINLOC/MAXLOC reductions electing (i_high, i_low),
//   3. two broadcasts shipping the elected samples to everyone,
//   4. a local gradient update of f over the owned active rows (eqn. 5).
// This is exactly the 14 log P t_s + 2 n log P t_w per-iteration pattern of
// the paper's eqn. (9), and is why Dis-SMO's isoefficiency is W = Omega(P^3).
//
// Method::DisSmoShrink adds distributed adaptive shrinking on top: every
// shrinkInterval iterations the ranks agree (one allreduce pair) on global
// shrink thresholds, each rank drops its bound-pinned out-of-contention
// rows, and the scan/gradient work falls to the surviving active set. Once
// shrinking engages, elections concentrate on the recurring support-vector
// core, so a replicated elected-row cache starts absorbing the row
// broadcasts — shrinking cuts both the O(m/P) compute term and the
// 2n log P t_w bandwidth term of eqn. (9). Before convergence is declared
// the full gradient is rebuilt from the globally gathered support vectors
// and every row reactivated, exactly like the serial solver's unshrink.
//
// Every branch that changes collective structure (shrink commit, unshrink,
// convergence, degenerate bail, cache hit/miss) is decided from allreduced
// or broadcast values, so all ranks take it together — the loop stays
// deadlock-free by construction.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <unordered_map>

#include "global_common.hpp"
#include "methods.hpp"
#include "casvm/ckpt/state.hpp"
#include "casvm/ckpt/store.hpp"
#include "casvm/lowrank/nystrom.hpp"
#include "casvm/obs/trace.hpp"
#include "casvm/support/error.hpp"

namespace casvm::core::detail {

namespace {

/// Replicated cache of elected samples, keyed by the election index
/// (rank * kRankStride + local row). Engaged once shrinking has fired:
/// the active set is then dominated by the recurring support-vector core,
/// so the same rows win election again and again and their broadcasts are
/// pure waste. Every rank inserts on the same misses and applies the same
/// alpha updates (both derive from broadcast/allreduced values), so the
/// cache contents — and therefore hit/miss decisions — are identical
/// everywhere, keeping the skipped broadcasts collective-safe.
class ElectedRowCache {
 public:
  struct Entry {
    ElectedMeta meta;
    std::vector<float> row;
  };

  /// Hard entry cap: insertion stops deterministically when full (no
  /// eviction), so all ranks stop inserting at the same miss.
  static constexpr std::size_t kMaxEntries = 4096;

  Entry* find(long long key) {
    const auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  void insert(long long key, const ElectedMeta& meta,
              const std::vector<float>& row) {
    if (map_.size() >= kMaxEntries) return;
    map_.emplace(key, Entry{meta, row});
  }

  /// Keep a cached alpha exact after a step touched its sample. No-op for
  /// uncached keys. Unshrinking never moves alphas, so steps are the only
  /// writers and cached metadata can never go stale.
  void updateAlpha(long long key, double alpha) {
    const auto it = map_.find(key);
    if (it != map_.end()) it->second.meta.alpha = alpha;
  }

 private:
  std::unordered_map<long long, Entry> map_;
};

}  // namespace

void runDisSmo(net::Comm& comm, const MethodContext& ctx) {
  const int rank = comm.rank();
  const auto urank = static_cast<std::size_t>(rank);
  const data::Dataset& local = ctx.initialBlocks[urank];
  RankBoard& board = ctx.board;

  board.samples[urank] = static_cast<long long>(local.rows());
  board.positives[urank] = static_cast<long long>(local.positives());

  // Init phase: blocks are pre-placed; nothing to distribute.
  markInitEnd(comm, ctx);
  comm.faultCheckpoint("train");

  const solver::SolverOptions& opts = ctx.config.solver;
  const double cPos = opts.C * opts.positiveWeight;
  const double cNeg = opts.C * opts.negativeWeight;
  const double boundEps = kGlobalBoundSlack * std::max(cPos, cNeg);
  const double tau = opts.tolerance;
  const kernel::Kernel kern(opts.kernel);
  const std::size_t mLocal = local.rows();
  const std::size_t n = local.cols();
  const bool shrinking = ctx.config.method == Method::DisSmoShrink;

  const GlobalDual prob{local, kern, cPos, cNeg, boundEps, tau};

  // Low-rank backend: ONE global landmark set shared by every rank. Each
  // rank selects its deterministic share of the L landmarks from its own
  // block, an allgatherv concatenates the shares in rank order, and every
  // rank builds its local Z against the identical set. The z-map of a
  // broadcast row is then the same bytes everywhere, so the elected-pair
  // step (eta, deltas) stays replicated — the collective-safety invariant
  // survives the approximation. Per-rank landmark sets would break it:
  // K̃ would differ by rank and elections would diverge.
  const bool lowrankOn = ctx.config.solverBackend == SolverBackend::Nystrom;
  std::optional<lowrank::NystromFactor> lrFactor;
  if (lowrankOn) {
    PhaseSpan span(comm, "lowrank");
    const int P = comm.size();
    const std::size_t L = ctx.config.nystromLandmarks;
    std::size_t share = L / static_cast<std::size_t>(P) +
                        (static_cast<std::size_t>(rank) < L % static_cast<std::size_t>(P) ? 1 : 0);
    share = std::min(share, mLocal);
    const std::vector<std::size_t> mineIdx = lowrank::selectLandmarks(
        local, share, ctx.config.nystromStrategy,
        ctx.config.seed ^ (0x9E3779B97F4A7C15ull *
                           static_cast<std::uint64_t>(rank + 1)));
    const lowrank::LandmarkSet localSet =
        lowrank::extractLandmarks(local, mineIdx);
    lowrank::LandmarkSet globalSet;
    globalSet.features = n;
    globalSet.rows = comm.allgatherv(localSet.rows);
    globalSet.selfDots = comm.allgatherv(localSet.selfDots);
    lrFactor = lowrank::NystromFactor::buildWithLandmarks(
        kern, local, std::move(globalSet), ctx.config.nystromEigenFloor);
  }

  std::vector<double> alpha(mLocal, 0.0);
  std::vector<double> f(mLocal);
  for (std::size_t i = 0; i < mLocal; ++i) f[i] = -double(local.label(i));

  std::vector<std::size_t> active(mLocal);
  std::iota(active.begin(), active.end(), 0);
  bool everShrunk = false;
  std::size_t startIter = 0;
  long long shrinkEngaged = -1;    ///< iteration the first shrink committed
  long long rowBcastsSkipped = 0;  ///< elected-row broadcasts served by cache

  ckpt::CheckpointStore* store = ctx.config.checkpoints;
  const std::string solverName = "solver.r" + std::to_string(rank);

  if (store != nullptr && ctx.config.resume) {
    // Cross-process resume. Snapshots are written in lock-step (aligned at
    // iteration multiples, and the blocking collectives keep ranks within
    // one iteration of each other), so the allreduce-min of each rank's
    // newest snapshot iteration is a generation every rank still holds —
    // the store keeps two. The agreement is double-checked: a rank missing
    // the agreed generation (e.g. a corrupt file) vetoes the restore and
    // everyone starts fresh together.
    std::vector<solver::SolverSnapshot> snaps;
    for (const auto& payload :
         store->loadGenerations(solverName, ckpt::Kind::DisSmoState)) {
      solver::SolverSnapshot snap = ckpt::decodeDisSmoState(payload);
      // A snapshot of a different placement (row-count mismatch) is stale.
      if (snap.alpha.size() == mLocal) snaps.push_back(std::move(snap));
    }
    long long newest = -1;
    for (const auto& s : snaps) {
      newest = std::max(newest, static_cast<long long>(s.iteration));
    }
    const long long agreed =
        comm.allreduce(newest, [](long long a, long long b) {
          return a < b ? a : b;
        });
    if (agreed > 0) {
      const solver::SolverSnapshot* chosen = nullptr;
      for (const auto& s : snaps) {
        if (static_cast<long long>(s.iteration) == agreed) chosen = &s;
      }
      int canUse = chosen != nullptr ? 1 : 0;
      canUse = comm.allreduce(canUse, [](int a, int b) { return a < b ? a : b; });
      if (canUse != 0) {
        alpha = chosen->alpha;
        f = chosen->f;
        active = chosen->active;
        everShrunk = chosen->everShrunk;
        startIter = chosen->iteration;
        ++board.checkpointsLoaded[urank];
        // Re-engage the elected-row cache where the interrupted run had
        // it. The cache itself is deliberately not checkpointed —
        // rebuilding it from scratch changes only communication volume,
        // never the trajectory.
        if (shrinking && everShrunk) {
          shrinkEngaged = static_cast<long long>(startIter);
        }
      }
    }
  }

  const long long globalM = comm.allreduceSum(static_cast<long long>(mLocal));
  const std::size_t maxIters =
      opts.maxIterations > 0
          ? opts.maxIterations
          : static_cast<std::size_t>(100 * globalM + 10000);

  std::vector<float> xHigh(n), xLow(n);
  double bHigh = 0.0, bLow = 0.0;
  long long iters = static_cast<long long>(startIter);
  ElectedRowCache rowCache;

  // z-space images of the elected pair (low-rank backend only) and the
  // fixed-order dot over them. Identical on every rank: the z-map is
  // deterministic in the broadcast bytes.
  const std::size_t zRank = lowrankOn ? lrFactor->rank() : 0;
  std::vector<double> zHigh(zRank), zLow(zRank);
  const auto zdotVec = [](std::span<const double> a,
                          std::span<const double> b) {
    double s = 0.0;
    for (std::size_t k = 0; k < a.size(); ++k) s += a[k] * b[k];
    return s;
  };

  // Rebuild the gradient of shrunk-out rows and reactivate everything.
  // Collective (one allgatherv round shipping the global support vectors);
  // callers gate it on `everShrunk`, which is derived from allreduced
  // values and therefore identical on every rank — never on the local
  // active size, which may legitimately differ.
  auto unshrink = [&] {
    std::vector<std::size_t> nzIdx;
    for (std::size_t i = 0; i < mLocal; ++i) {
      if (alpha[i] != 0.0) nzIdx.push_back(i);
    }
    std::vector<float> rowsFlat(nzIdx.size() * n, 0.0f);
    std::vector<double> coefs(nzIdx.size());
    std::vector<double> dots(nzIdx.size());
    for (std::size_t k = 0; k < nzIdx.size(); ++k) {
      const std::size_t j = nzIdx[k];
      local.copyRowDense(j, std::span<float>(rowsFlat).subspan(k * n, n));
      coefs[k] = alpha[j] * double(local.label(j));
      dots[k] = local.selfDot(j);
    }
    const std::vector<float> allRows = comm.allgatherv(rowsFlat);
    const std::vector<double> allCoefs = comm.allgatherv(coefs);
    const std::vector<double> allDots = comm.allgatherv(dots);

    std::vector<bool> isActive(mLocal, false);
    for (std::size_t i : active) isActive[i] = true;
    const std::span<const float> rows(allRows);
    if (lowrankOn) {
      // Rebuild against the SAME K̃ the iterations used: map every gathered
      // support vector into z-space once, then each stale gradient is a
      // sum of z-dots. Mixing exact rows into an approximate trajectory
      // would desynchronize f from the alphas that produced it.
      const std::size_t r = lrFactor->rank();
      std::vector<double> zAll(allCoefs.size() * r);
      for (std::size_t j = 0; j < allCoefs.size(); ++j) {
        lrFactor->map(kern, rows.subspan(j * n, n), allDots[j],
                      std::span<double>(zAll).subspan(j * r, r));
      }
      for (std::size_t i = 0; i < mLocal; ++i) {
        if (isActive[i]) continue;
        double fi = -double(local.label(i));
        for (std::size_t j = 0; j < allCoefs.size(); ++j) {
          fi += allCoefs[j] *
                lrFactor->zdot(i, std::span<const double>(zAll)
                                      .subspan(j * r, r));
        }
        f[i] = fi;
      }
    } else {
      for (std::size_t i = 0; i < mLocal; ++i) {
        if (isActive[i]) continue;
        double fi = -double(local.label(i));
        for (std::size_t j = 0; j < allCoefs.size(); ++j) {
          fi += allCoefs[j] *
                kern.evalWith(local, i, rows.subspan(j * n, n), allDots[j]);
        }
        f[i] = fi;
      }
    }
    active.resize(mLocal);
    std::iota(active.begin(), active.end(), 0);
  };

  // Fetch an elected sample: through the replicated cache once shrinking
  // engaged, by owner broadcast otherwise. Hit/miss decisions replicate
  // exactly, so the skipped broadcasts stay collective-safe.
  auto fetchElected = [&](long long key, int owner, std::size_t li,
                          ElectedMeta& meta, std::vector<float>& x,
                          bool cacheOn) {
    if (cacheOn) {
      if (ElectedRowCache::Entry* hit = rowCache.find(key)) {
        meta = hit->meta;
        x = hit->row;
        ++rowBcastsSkipped;
        return;
      }
    }
    if (rank == owner) {
      meta = {alpha[li], local.selfDot(li), double(local.label(li))};
      local.copyRowDense(li, x);
    }
    comm.bcast(meta, owner);
    comm.bcast(x, owner);
    if (cacheOn) rowCache.insert(key, meta, x);
  };

  obs::Lane* lane = comm.traceLane();
  constexpr std::size_t kProgressInterval = 512;
  std::optional<PhaseSpan> solvePhase;
  solvePhase.emplace(comm, "solve");

  bool degenerateRetried = false;
  for (std::size_t it = startIter; it < maxIters; ++it) {
    // Snapshot at the top of the iteration, before any of its state
    // mutates — restoring here and continuing replays the run bitwise.
    // Skipped at iteration 0 and at the resume iteration itself (that
    // snapshot is already durable). Durable-first ordering: the fault
    // checkpoint fires only after the snapshot is on disk, so a crash at
    // phase=solve is exactly resumable.
    if (store != nullptr && ctx.config.checkpointEvery > 0 && it != 0 &&
        it != startIter && it % ctx.config.checkpointEvery == 0) {
      solver::SolverSnapshot snap;
      snap.iteration = it;
      snap.everShrunk = everShrunk;
      snap.alpha = alpha;
      snap.f = f;
      snap.active = active;
      store->save(solverName, ckpt::Kind::DisSmoState,
                  ckpt::encodeDisSmoState(snap));
      comm.faultCheckpoint("solve");
    }

    // 1. Local scan for the maximal violating pair over the active rows,
    // against the per-class boxes (weighted problems shrink or stretch
    // each class's side of the box independently).
    double localHigh = kGlobalInf, localLow = -kGlobalInf;
    long long localHighIdx = -1, localLowIdx = -1;
    for (std::size_t i : active) {
      const std::int8_t y = local.label(i);
      const double a = alpha[i];
      const double ci = prob.boxOf(i);
      if (globalInHighSet(y, a, ci, boundEps) && f[i] < localHigh) {
        localHigh = f[i];
        localHighIdx = rank * kRankStride + static_cast<long long>(i);
      }
      if (globalInLowSet(y, a, ci, boundEps) && f[i] > localLow) {
        localLow = f[i];
        localLowIdx = rank * kRankStride + static_cast<long long>(i);
      }
    }

    // 2. Global election.
    const net::Comm::ValIdx high = comm.allreduceMinloc(localHigh, localHighIdx);
    const net::Comm::ValIdx low = comm.allreduceMaxloc(localLow, localLowIdx);
    bHigh = high.value;
    bLow = low.value;
    if (bLow <= bHigh + 2.0 * tau) {
      // Converged over the (possibly shrunk) active set. The shrink rules
      // are heuristics: rebuild the full problem and re-check before
      // declaring victory. One reconstruction per convergence attempt.
      if (everShrunk) {
        unshrink();
        everShrunk = false;
        continue;
      }
      break;
    }

    // Both thresholds are finite past the convergence check (an empty
    // candidate set leaves one at +-inf, which takes the branch above).
    if (lane != nullptr && it % kProgressInterval == 0) {
      lane->progress(virtualNow(comm), static_cast<std::int64_t>(it),
                     static_cast<std::int64_t>(active.size()), bLow - bHigh,
                     0.0);
    }

    const int ownerHigh = static_cast<int>(high.index / kRankStride);
    const int ownerLow = static_cast<int>(low.index / kRankStride);
    const auto localHighI = static_cast<std::size_t>(high.index % kRankStride);
    const auto localLowI = static_cast<std::size_t>(low.index % kRankStride);

    // 3. Ship (or recall) the elected samples.
    const bool cacheOn = shrinking && shrinkEngaged >= 0;
    ElectedMeta metaHigh{}, metaLow{};
    fetchElected(high.index, ownerHigh, localHighI, metaHigh, xHigh, cacheOn);
    fetchElected(low.index, ownerLow, localLowI, metaLow, xLow, cacheOn);

    // Every rank computes the identical two-variable step (eqns. 6-7),
    // clipped to the per-class boxes. Low-rank: eta is computed in z-space
    // so it matches the K̃ the gradient updates use — K̃ is PSD, so eta
    // stays non-negative and the usual floor applies.
    double kHH, kLL, kHL;
    if (lowrankOn) {
      lrFactor->map(kern, xHigh, metaHigh.selfDot, zHigh);
      lrFactor->map(kern, xLow, metaLow.selfDot, zLow);
      kHH = zdotVec(zHigh, zHigh);
      kLL = zdotVec(zLow, zLow);
      kHL = zdotVec(zHigh, zLow);
    } else {
      kHH = kern.evalVectors(xHigh, metaHigh.selfDot, xHigh, metaHigh.selfDot);
      kLL = kern.evalVectors(xLow, metaLow.selfDot, xLow, metaLow.selfDot);
      kHL = kern.evalVectors(xHigh, metaHigh.selfDot, xLow, metaLow.selfDot);
    }
    double eta = kHH + kLL - 2.0 * kHL;
    if (eta < 1e-12) eta = 1e-12;

    const double cHigh = prob.boxFor(metaHigh.y);
    const double cLow = prob.boxFor(metaLow.y);
    const double s = metaHigh.y * metaLow.y;
    double lo, hi;
    if (s < 0.0) {
      lo = std::max(0.0, metaLow.alpha - metaHigh.alpha);
      hi = std::min(cLow, cHigh + metaLow.alpha - metaHigh.alpha);
    } else {
      lo = std::max(0.0, metaHigh.alpha + metaLow.alpha - cHigh);
      hi = std::min(cLow, metaHigh.alpha + metaLow.alpha);
    }
    double aLowNew = metaLow.alpha + metaLow.y * (bHigh - bLow) / eta;
    aLowNew = std::clamp(aLowNew, lo, hi);
    const double dLow = aLowNew - metaLow.alpha;
    if (std::abs(dLow) < 1e-14) {
      // Degenerate step: the maximal violating pair is pinned and cannot
      // move. While shrunk this can be an artifact of the shrunk set (the
      // sample that would free the pair was shrunk away): restore the full
      // problem and retry once before giving up. Both the bail and the
      // retry derive from broadcast values — every rank takes them together.
      if (everShrunk && !degenerateRetried) {
        unshrink();
        everShrunk = false;
        degenerateRetried = true;
        continue;
      }
      break;
    }
    const double dHigh = -s * dLow;

    // Snap to the per-class box against accumulated floating-point drift.
    // Every rank computes the identical snapped alphas; the owners commit
    // and the cache (replicated) tracks both keys.
    double aHighNew = metaHigh.alpha + dHigh;
    aLowNew = metaLow.alpha + dLow;
    if (aLowNew < boundEps) aLowNew = 0.0;
    if (aLowNew > cLow - boundEps) aLowNew = cLow;
    if (aHighNew < boundEps) aHighNew = 0.0;
    if (aHighNew > cHigh - boundEps) aHighNew = cHigh;
    if (rank == ownerHigh) alpha[localHighI] = aHighNew;
    if (rank == ownerLow) alpha[localLowI] = aLowNew;
    rowCache.updateAlpha(high.index, aHighNew);
    rowCache.updateAlpha(low.index, aLowNew);

    // 4. Local gradient update (eqn. 5) over the owned active rows: the
    // 2mn/P term of eqn. (9), cut to the surviving fraction once shrunk.
    const double coefHigh = dHigh * metaHigh.y;
    const double coefLow = dLow * metaLow.y;
    if (lowrankOn) {
      // The m·r/P replacement for the 2mn/P term: two z-dots per owned
      // active row instead of two n-wide kernel evaluations.
      for (std::size_t i : active) {
        f[i] += coefHigh * lrFactor->zdot(i, zHigh) +
                coefLow * lrFactor->zdot(i, zLow);
      }
    } else {
      for (std::size_t i : active) {
        f[i] += coefHigh * kern.evalWith(local, i, xHigh, metaHigh.selfDot) +
                coefLow * kern.evalWith(local, i, xLow, metaLow.selfDot);
      }
    }
    ++iters;

    // 5. Periodic shrink pass (DisSmoShrink only): agree on global
    // thresholds over the post-update gradient, filter locally with the
    // serial solver's keep() rules, then commit only on a globally agreed
    // decision — the commit condition compares allreduced counts, so the
    // active sets shrink (or don't) in unison.
    if (shrinking && (it + 1) % opts.shrinkInterval == 0) {
      double sHighLocal = kGlobalInf, sLowLocal = -kGlobalInf;
      for (std::size_t k : active) {
        const std::int8_t y = local.label(k);
        const double a = alpha[k];
        const double ck = prob.boxOf(k);
        if (globalInHighSet(y, a, ck, boundEps)) {
          sHighLocal = std::min(sHighLocal, f[k]);
        }
        if (globalInLowSet(y, a, ck, boundEps)) {
          sLowLocal = std::max(sLowLocal, f[k]);
        }
      }
      const double sHigh = comm.allreduce(
          sHighLocal, [](double a, double b) { return std::min(a, b); });
      const double sLow = comm.allreduce(
          sLowLocal, [](double a, double b) { return std::max(a, b); });
      if (sLow > sHigh + 2.0 * tau) {
        const auto keep = [&](std::size_t i) {
          const std::int8_t y = local.label(i);
          const double a = alpha[i];
          const double ci = prob.boxOf(i);
          if (a <= boundEps) {
            // Lower bound: only ever a high candidate (y=+1) / low (y=-1).
            if (y == 1 && f[i] > sLow + tau) return false;
            if (y == -1 && f[i] < sHigh - tau) return false;
          } else if (a >= ci - boundEps) {
            // Upper bound: only ever a low candidate (y=+1) / high (y=-1).
            if (y == 1 && f[i] < sHigh - tau) return false;
            if (y == -1 && f[i] > sLow + tau) return false;
          }
          return true;
        };
        std::vector<std::size_t> stillActive;
        stillActive.reserve(active.size());
        for (std::size_t i : active) {
          if (keep(i)) stillActive.push_back(i);
        }
        const long long globalKeep =
            comm.allreduceSum(static_cast<long long>(stillActive.size()));
        const long long globalActive =
            comm.allreduceSum(static_cast<long long>(active.size()));
        // Never shrink below a workable global core, and only commit a
        // pass that actually dropped something somewhere.
        if (globalKeep >= 2 && globalKeep < globalActive) {
          active = std::move(stillActive);
          everShrunk = true;
          if (shrinkEngaged < 0) shrinkEngaged = static_cast<long long>(it);
        }
      }
    }
  }

  // Loop exits (iteration cap, degenerate bail) can leave rows shrunk out
  // with stale gradients; the bias fallback below and the reported state
  // must see the full problem.
  if (everShrunk) {
    unshrink();
    everShrunk = false;
  }

  // A warm start or degenerate box can leave an elected set empty and its
  // threshold at +-inf; fall back to finite KKT bounds like the serial
  // solver, with one allreduce pair in the both-empty case.
  ensureFiniteThresholds(comm, local, f, bHigh, bLow);

  solvePhase.reset();  // end the "solve" span before train-end bookkeeping

  markTrainEnd(comm, ctx);

  // Deposit this rank's model fragment (its support vectors); the driver
  // concatenates fragments into the single global model. Every rank saw the
  // same final thresholds, so any rank's bias is authoritative.
  const double bias = -(bHigh + bLow) / 2.0;
  std::vector<std::size_t> svIdx;
  std::vector<double> alphaY;
  for (std::size_t i = 0; i < mLocal; ++i) {
    if (alpha[i] > 0.0) {
      svIdx.push_back(i);
      alphaY.push_back(alpha[i] * double(local.label(i)));
    }
  }
  board.models[urank] = solver::Model(opts.kernel, local.subset(svIdx),
                                      std::move(alphaY), bias);
  board.iterations[urank] = iters;
  board.svs[urank] = static_cast<long long>(svIdx.size());
  board.shrinkEngagedIter[urank] = shrinkEngaged;
  board.rowBcastsSkipped[urank] = rowBcastsSkipped;
}

}  // namespace casvm::core::detail
