#pragma once

// Shared primitives of the global methods (Dis-SMO, Dis-SMO + shrinking,
// PBM): the (rank, local index) election encoding, the elected-sample
// metadata that travels with each broadcast, the per-class box-membership
// predicates mirroring src/solver/smo.cpp, the distributed finite-bias
// fallback, and the global maximal-violating-pair step PBM reuses for its
// cross-block correction iterations. Everything here is collective-safe by
// construction: every decision derives from allreduce results, so all ranks
// take identical branches.

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <unordered_map>
#include <vector>

#include "casvm/data/dataset.hpp"
#include "casvm/kernel/kernel.hpp"
#include "casvm/net/comm.hpp"

namespace casvm::core::detail {

inline constexpr double kGlobalInf = std::numeric_limits<double>::infinity();

/// Encodes (rank, local index) into the 63-bit index of a ValIdx reduction.
inline constexpr long long kRankStride = 1LL << 40;

/// Relative slack treating alphas within eps of a box bound as *at* the
/// bound (same constant as the serial solver's kBoundSlack).
inline constexpr double kGlobalBoundSlack = 1e-10;

/// Metadata broadcast with each elected sample.
struct ElectedMeta {
  double alpha;
  double selfDot;
  double y;
};

/// Membership in the high set under the per-class box `ci`.
inline bool globalInHighSet(std::int8_t y, double alpha, double ci,
                            double eps) {
  return (y == 1 && alpha < ci - eps) || (y == -1 && alpha > eps);
}

/// Membership in the low set: mirror condition for the lower threshold.
inline bool globalInLowSet(std::int8_t y, double alpha, double ci,
                           double eps) {
  return (y == 1 && alpha > eps) || (y == -1 && alpha < ci - eps);
}

/// The one global dual problem the ranks cooperate on: the local block,
/// the kernel, and the per-class boxes.
struct GlobalDual {
  const data::Dataset& local;
  const kernel::Kernel& kern;
  double cPos;
  double cNeg;
  double boundEps;
  double tau;

  double boxOf(std::size_t i) const {
    return local.label(i) == 1 ? cPos : cNeg;
  }
  double boxFor(double y) const { return y > 0.0 ? cPos : cNeg; }
};

/// Finite-bias fallback, distributed (ported from src/solver/smo.cpp).
/// An empty high/low elected set leaves a threshold at +-inf and the
/// midpoint bias would be NaN/inf. An empty high set means every sample
/// only upper-bounds b, so the tightest bound -bLow is a valid bias; the
/// empty-low case mirrors it. Both empty (degenerate box) brackets b with
/// the global gradient range — the only case needing communication, and
/// every rank reaches it together because bHigh/bLow are allreduce
/// results.
inline void ensureFiniteThresholds(net::Comm& comm,
                                   const data::Dataset& local,
                                   const std::vector<double>& f,
                                   double& bHigh, double& bLow) {
  if (std::isfinite(bHigh) && std::isfinite(bLow)) return;
  if (std::isfinite(bLow)) {
    bHigh = bLow;
  } else if (std::isfinite(bHigh)) {
    bLow = bHigh;
  } else {
    double lo = kGlobalInf, hi = -kGlobalInf;
    for (std::size_t i = 0; i < local.rows(); ++i) {
      lo = std::min(lo, f[i]);
      hi = std::max(hi, f[i]);
    }
    bHigh = comm.allreduce(lo, [](double a, double b) { return std::min(a, b); });
    bLow = comm.allreduce(hi, [](double a, double b) { return std::max(a, b); });
  }
}

/// Replicated per-sample store keyed by the global
/// rank * kRankStride + localIdx encoding. A sample's features, squared
/// norm and label never change during training, so once a sample has
/// crossed the wire every rank keeps a copy and skips all future transfers
/// of it: PBM's round sync ships only samples the store has not seen, and
/// a pair-correction election of a stored sample costs no broadcast at all.
/// The store also mirrors each stored sample's CURRENT alpha — every alpha
/// write is either a two-variable pair step or a beta-scaled line-search
/// step, both computed bitwise-identically on every rank from collective
/// values, so the callers re-apply the same update to the store via
/// updateAlpha() and the mirror never goes stale. Insertions only ever
/// process broadcast or allgathered payloads in their collective order,
/// which keeps the store bitwise-identical across ranks and makes
/// contains()/fetchElected() collective-safe branch conditions. When full
/// (kMaxRows, identical everywhere) inserts become no-ops and the affected
/// samples simply keep paying the transfer.
class GlobalRowStore {
 public:
  explicit GlobalRowStore(std::size_t n) : n_(n) {}

  bool contains(long long key) const { return index_.count(key) != 0; }

  /// Borrow the cached row (no copy); false and untouched outputs on miss.
  /// The pointer is invalidated by the next insert().
  bool lookup(long long key, const float*& x, double& selfDot) const {
    const auto it = index_.find(key);
    if (it == index_.end()) return false;
    x = rows_.data() + it->second * n_;
    selfDot = dots_[it->second];
    return true;
  }

  /// Serve an election from the mirror: copy the row into `out`, fill the
  /// metadata (current alpha, self-dot, label) and count the avoided
  /// broadcast pair. False and untouched outputs on miss.
  bool fetchElected(long long key, std::span<float> out, ElectedMeta& meta) {
    const auto it = index_.find(key);
    if (it == index_.end()) return false;
    std::copy_n(rows_.data() + it->second * n_, n_, out.data());
    meta = {alphas_[it->second], dots_[it->second], ys_[it->second]};
    ++hits_;
    return true;
  }

  /// Current label and alpha of a stored sample (for replicated updates).
  bool alphaOf(long long key, double& y, double& alpha) const {
    const auto it = index_.find(key);
    if (it == index_.end()) return false;
    y = ys_[it->second];
    alpha = alphas_[it->second];
    return true;
  }

  void insert(long long key, std::span<const float> x, double selfDot,
              double y, double alpha) {
    if (index_.size() >= kMaxRows || index_.count(key) != 0) return;
    index_.emplace(key, dots_.size());
    rows_.insert(rows_.end(), x.begin(), x.end());
    dots_.push_back(selfDot);
    ys_.push_back(y);
    alphas_.push_back(alpha);
  }

  /// Mirror an alpha write every rank just computed identically (no-op for
  /// samples the store never accepted).
  void updateAlpha(long long key, double alpha) {
    const auto it = index_.find(key);
    if (it != index_.end()) alphas_[it->second] = alpha;
  }

  /// Row broadcasts avoided by fetchElected() hits (reported per rank).
  long long hits() const { return hits_; }

 private:
  static constexpr std::size_t kMaxRows = 1u << 20;
  std::size_t n_;
  std::unordered_map<long long, std::size_t> index_;  ///< key -> slot
  std::vector<float> rows_;  ///< slot-major flat feature storage
  std::vector<double> dots_;
  std::vector<double> ys_;
  std::vector<double> alphas_;  ///< mirrored current alphas
  long long hits_ = 0;
};

enum class PairStepResult {
  Stepped,     ///< one two-variable step was applied everywhere
  Converged,   ///< global bLow <= bHigh + 2*tau
  Degenerate,  ///< the elected pair is pinned and cannot move
};

/// One global maximal-violating-pair step over ALL local rows (no
/// shrinking): local scan, MINLOC/MAXLOC election, elected-sample
/// broadcasts, the identical two-variable step on every rank, and the
/// local gradient update. This is one Dis-SMO iteration; PBM runs it as
/// its cross-block correction, which moves equality-constraint mass
/// between blocks (the per-block solves can't). `bHigh`/`bLow` are left
/// holding the election thresholds, so the caller's convergence state and
/// final bias always reflect the latest global scan. With a `store` an
/// election of a mirrored sample costs no broadcast at all (row, label and
/// self-dot are immutable; the mirrored alpha is kept current by the
/// replicated updateAlpha calls below), and first-time samples are
/// inserted right after their broadcast.
inline PairStepResult globalPairStep(net::Comm& comm, const GlobalDual& p,
                                     std::vector<double>& alpha,
                                     std::vector<double>& f,
                                     std::vector<float>& xHigh,
                                     std::vector<float>& xLow,
                                     double& bHigh, double& bLow,
                                     GlobalRowStore* store = nullptr) {
  const int rank = comm.rank();
  const data::Dataset& local = p.local;
  const std::size_t mLocal = local.rows();

  double localHigh = kGlobalInf, localLow = -kGlobalInf;
  long long localHighIdx = -1, localLowIdx = -1;
  for (std::size_t i = 0; i < mLocal; ++i) {
    const std::int8_t y = local.label(i);
    const double a = alpha[i];
    const double ci = p.boxOf(i);
    if (globalInHighSet(y, a, ci, p.boundEps) && f[i] < localHigh) {
      localHigh = f[i];
      localHighIdx = rank * kRankStride + static_cast<long long>(i);
    }
    if (globalInLowSet(y, a, ci, p.boundEps) && f[i] > localLow) {
      localLow = f[i];
      localLowIdx = rank * kRankStride + static_cast<long long>(i);
    }
  }

  const net::Comm::ValIdx high = comm.allreduceMinloc(localHigh, localHighIdx);
  const net::Comm::ValIdx low = comm.allreduceMaxloc(localLow, localLowIdx);
  bHigh = high.value;
  bLow = low.value;
  if (bLow <= bHigh + 2.0 * p.tau) return PairStepResult::Converged;

  const int ownerHigh = static_cast<int>(high.index / kRankStride);
  const int ownerLow = static_cast<int>(low.index / kRankStride);
  const auto localHighI = static_cast<std::size_t>(high.index % kRankStride);
  const auto localLowI = static_cast<std::size_t>(low.index % kRankStride);

  ElectedMeta metaHigh{}, metaLow{};
  if (store == nullptr || !store->fetchElected(high.index, xHigh, metaHigh)) {
    if (rank == ownerHigh) {
      metaHigh = {alpha[localHighI], local.selfDot(localHighI),
                  double(local.label(localHighI))};
      local.copyRowDense(localHighI, xHigh);
    }
    comm.bcast(metaHigh, ownerHigh);
    comm.bcast(xHigh, ownerHigh);
    if (store != nullptr) {
      store->insert(high.index, xHigh, metaHigh.selfDot, metaHigh.y,
                    metaHigh.alpha);
    }
  }
  if (store == nullptr || !store->fetchElected(low.index, xLow, metaLow)) {
    if (rank == ownerLow) {
      metaLow = {alpha[localLowI], local.selfDot(localLowI),
                 double(local.label(localLowI))};
      local.copyRowDense(localLowI, xLow);
    }
    comm.bcast(metaLow, ownerLow);
    comm.bcast(xLow, ownerLow);
    if (store != nullptr) {
      store->insert(low.index, xLow, metaLow.selfDot, metaLow.y,
                    metaLow.alpha);
    }
  }

  const double kHH =
      p.kern.evalVectors(xHigh, metaHigh.selfDot, xHigh, metaHigh.selfDot);
  const double kLL =
      p.kern.evalVectors(xLow, metaLow.selfDot, xLow, metaLow.selfDot);
  const double kHL =
      p.kern.evalVectors(xHigh, metaHigh.selfDot, xLow, metaLow.selfDot);
  double eta = kHH + kLL - 2.0 * kHL;
  if (eta < 1e-12) eta = 1e-12;

  const double cHigh = p.boxFor(metaHigh.y);
  const double cLow = p.boxFor(metaLow.y);
  const double s = metaHigh.y * metaLow.y;
  double lo, hi;
  if (s < 0.0) {
    lo = std::max(0.0, metaLow.alpha - metaHigh.alpha);
    hi = std::min(cLow, cHigh + metaLow.alpha - metaHigh.alpha);
  } else {
    lo = std::max(0.0, metaHigh.alpha + metaLow.alpha - cHigh);
    hi = std::min(cLow, metaHigh.alpha + metaLow.alpha);
  }
  double aLowNew = metaLow.alpha + metaLow.y * (bHigh - bLow) / eta;
  aLowNew = std::clamp(aLowNew, lo, hi);
  const double dLow = aLowNew - metaLow.alpha;
  if (std::abs(dLow) < 1e-14) return PairStepResult::Degenerate;
  const double dHigh = -s * dLow;

  // Every rank computes the identical snapped alphas; the owners commit.
  double aHighNew = metaHigh.alpha + dHigh;
  if (aLowNew < p.boundEps) aLowNew = 0.0;
  if (aLowNew > cLow - p.boundEps) aLowNew = cLow;
  if (aHighNew < p.boundEps) aHighNew = 0.0;
  if (aHighNew > cHigh - p.boundEps) aHighNew = cHigh;
  if (rank == ownerHigh) alpha[localHighI] = aHighNew;
  if (rank == ownerLow) alpha[localLowI] = aLowNew;
  if (store != nullptr) {
    store->updateAlpha(high.index, aHighNew);
    store->updateAlpha(low.index, aLowNew);
  }

  const double coefHigh = dHigh * metaHigh.y;
  const double coefLow = dLow * metaLow.y;
  for (std::size_t i = 0; i < mLocal; ++i) {
    f[i] += coefHigh * p.kern.evalWith(local, i, xHigh, metaHigh.selfDot) +
            coefLow * p.kern.evalWith(local, i, xLow, metaLow.selfDot);
  }
  return PairStepResult::Stepped;
}

}  // namespace casvm::core::detail
