#include "board_codec.hpp"

#include <cstdint>
#include <cstring>

#include "casvm/ckpt/state.hpp"
#include "casvm/support/error.hpp"

namespace casvm::core::detail {

namespace {

template <typename T>
void putScalar(std::vector<std::byte>& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t off = out.size();
  out.resize(off + sizeof v);
  std::memcpy(out.data() + off, &v, sizeof v);
}

void putBlob(std::vector<std::byte>& out, const std::vector<std::byte>& blob) {
  putScalar(out, static_cast<std::uint64_t>(blob.size()));
  out.insert(out.end(), blob.begin(), blob.end());
}

template <typename T>
void putVec(std::vector<std::byte>& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  putScalar(out, static_cast<std::uint64_t>(v.size()));
  const std::size_t off = out.size();
  out.resize(off + v.size() * sizeof(T));
  if (!v.empty()) {
    std::memcpy(out.data() + off, v.data(), v.size() * sizeof(T));
  }
}

struct Cursor {
  const std::vector<std::byte>& buf;
  std::size_t off = 0;

  template <typename T>
  T scalar() {
    static_assert(std::is_trivially_copyable_v<T>);
    CASVM_CHECK(off + sizeof(T) <= buf.size(), "board slot payload truncated");
    T v;
    std::memcpy(&v, buf.data() + off, sizeof v);
    off += sizeof v;
    return v;
  }

  std::vector<std::byte> blob() {
    const auto len = scalar<std::uint64_t>();
    CASVM_CHECK(off + len <= buf.size(), "board slot payload truncated");
    std::vector<std::byte> b(buf.begin() + static_cast<std::ptrdiff_t>(off),
                             buf.begin() +
                                 static_cast<std::ptrdiff_t>(off + len));
    off += len;
    return b;
  }

  template <typename T>
  std::vector<T> vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto len = scalar<std::uint64_t>();
    CASVM_CHECK(off + len * sizeof(T) <= buf.size(),
                "board slot payload truncated");
    std::vector<T> v(len);
    if (len > 0) std::memcpy(v.data(), buf.data() + off, len * sizeof(T));
    off += len * sizeof(T);
    return v;
  }
};

}  // namespace

std::vector<std::byte> encodeBoardSlot(const RankBoard& board, int rank) {
  const auto r = static_cast<std::size_t>(rank);
  std::vector<std::byte> out;

  // The model rides the checkpoint layer's exact sub-model codec.
  ckpt::SubModelState sub;
  sub.model = board.models[r];
  sub.iterations = board.iterations[r];
  sub.svs = board.svs[r];
  putBlob(out, ckpt::encodeSubModel(sub));

  putVec(out, board.alphas[r]);
  putVec(out, board.centers[r]);
  putScalar(out, board.samples[r]);
  putScalar(out, board.positives[r]);
  putScalar(out, board.initEndVirtual[r]);
  putScalar(out, board.trainEndVirtual[r]);
  putScalar(out, static_cast<std::uint64_t>(board.kmeansLoops[r]));

  const auto& layers = board.layerRecords[r];
  putScalar(out, static_cast<std::uint64_t>(layers.size()));
  for (const RankBoard::LayerRecord& rec : layers) {
    putScalar(out, static_cast<std::int32_t>(rec.layer));
    putScalar(out, rec.samples);
    putScalar(out, rec.iterations);
    putScalar(out, rec.svs);
    putScalar(out, rec.seconds);
  }

  putScalar(out, static_cast<std::int32_t>(board.retries[r]));
  putScalar(out, static_cast<std::uint8_t>(board.recovered[r]));
  putScalar(out, board.checkpointsLoaded[r]);
  putScalar(out, board.auxIterations[r]);
  putScalar(out, board.shrinkEngagedIter[r]);
  putScalar(out, board.rowBcastsSkipped[r]);

  // The init/train-boundary traffic snapshot (rank 0 fills it inside the
  // instrumentation fence; everyone else ships an empty one).
  putScalar(out, static_cast<std::int32_t>(board.initSnapshot.size));
  putVec(out, board.initSnapshot.bytes);
  putVec(out, board.initSnapshot.ops);
  return out;
}

void absorbBoardSlot(RankBoard& board, int rank,
                     const std::vector<std::byte>& bytes) {
  const auto r = static_cast<std::size_t>(rank);
  Cursor cur{bytes};

  const ckpt::SubModelState sub = ckpt::decodeSubModel(cur.blob());
  board.models[r] = sub.model;
  board.iterations[r] = sub.iterations;
  board.svs[r] = sub.svs;

  board.alphas[r] = cur.vec<double>();
  board.centers[r] = cur.vec<float>();
  board.samples[r] = cur.scalar<long long>();
  board.positives[r] = cur.scalar<long long>();
  board.initEndVirtual[r] = cur.scalar<double>();
  board.trainEndVirtual[r] = cur.scalar<double>();
  board.kmeansLoops[r] =
      static_cast<std::size_t>(cur.scalar<std::uint64_t>());

  const auto layerCount = cur.scalar<std::uint64_t>();
  auto& layers = board.layerRecords[r];
  layers.clear();
  layers.reserve(layerCount);
  for (std::uint64_t i = 0; i < layerCount; ++i) {
    RankBoard::LayerRecord rec;
    rec.layer = cur.scalar<std::int32_t>();
    rec.samples = cur.scalar<long long>();
    rec.iterations = cur.scalar<long long>();
    rec.svs = cur.scalar<long long>();
    rec.seconds = cur.scalar<double>();
    layers.push_back(rec);
  }

  board.retries[r] = cur.scalar<std::int32_t>();
  board.recovered[r] = cur.scalar<std::uint8_t>();
  board.checkpointsLoaded[r] = cur.scalar<long long>();
  board.auxIterations[r] = cur.scalar<long long>();
  board.shrinkEngagedIter[r] = cur.scalar<long long>();
  board.rowBcastsSkipped[r] = cur.scalar<long long>();

  // Only absorb a non-empty snapshot: every rank's payload carries the
  // field, but only rank 0 ever filled it.
  net::TrafficSnapshot snap;
  snap.size = cur.scalar<std::int32_t>();
  snap.bytes = cur.vec<std::size_t>();
  snap.ops = cur.vec<std::size_t>();
  if (snap.size > 0) board.initSnapshot = std::move(snap);
  CASVM_CHECK(cur.off == bytes.size(), "board slot payload has trailing bytes");
}

}  // namespace casvm::core::detail
