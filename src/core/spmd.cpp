#include "casvm/core/spmd.hpp"

#include "casvm/obs/trace.hpp"
#include "casvm/support/error.hpp"

namespace casvm::core {

LocalSolve trainLocalSvm(const data::Dataset& local,
                         const solver::SolverOptions& options,
                         std::span<const double> initialAlpha) {
  LocalSolve out;
  if (local.empty()) {
    out.model = solver::Model(options.kernel, data::Dataset(), {}, 0.0);
    return out;
  }
  const std::size_t pos = local.positives();
  if (local.rows() < 2 || pos == 0 || pos == local.rows()) {
    // Single-class part: every neighbour agrees, so the local decision
    // rule is the constant class label.
    const double bias = local.label(0) >= 0 ? 1.0 : -1.0;
    out.model = solver::Model(options.kernel, data::Dataset(), {}, bias);
    out.alpha.assign(local.rows(), 0.0);
    return out;
  }
  solver::SmoSolver solver(options);
  solver::SolverResult res = solver.solve(local, initialAlpha);
  out.model = std::move(res.model);
  out.alpha = std::move(res.alpha);
  out.iterations = static_cast<long long>(res.iterations);
  out.svs = static_cast<long long>(out.model.numSupportVectors());
  return out;
}

data::Dataset exchangeToOwners(net::Comm& comm, const data::Dataset& local,
                               const std::vector<int>& assign) {
  const int size = comm.size();
  const int rank = comm.rank();
  CASVM_CHECK(assign.size() == local.rows(),
              "assignment length must match local rows");

  // Bucket local row indices by destination rank.
  std::vector<std::vector<std::size_t>> buckets(
      static_cast<std::size_t>(size));
  for (std::size_t i = 0; i < assign.size(); ++i) {
    CASVM_CHECK(assign[i] >= 0 && assign[i] < size,
                "assignment targets a rank outside the communicator");
    buckets[static_cast<std::size_t>(assign[i])].push_back(i);
  }

  // One personalized all-to-all moves every sample to its owner.
  std::vector<std::vector<std::byte>> outgoing(
      static_cast<std::size_t>(size));
  for (int dst = 0; dst < size; ++dst) {
    if (dst == rank) continue;  // own bucket stays local, unserialized
    outgoing[static_cast<std::size_t>(dst)] =
        local.pack(buckets[static_cast<std::size_t>(dst)]);
  }
  const std::vector<std::vector<std::byte>> incoming =
      comm.alltoallvBytes(std::move(outgoing));

  data::Dataset merged = local.subset(buckets[static_cast<std::size_t>(rank)]);
  for (int src = 0; src < size; ++src) {
    if (src == rank) continue;
    data::Dataset part =
        data::Dataset::unpack(incoming[static_cast<std::size_t>(src)]);
    if (!part.empty()) merged = data::Dataset::concat(merged, part);
  }
  return merged;
}

double virtualNow(net::Comm& comm) {
  comm.clock().sampleCompute();
  return comm.clock().now();
}

PhaseSpan::PhaseSpan(net::Comm& comm, const char* name, long long detail)
    : comm_(comm), name_(name), detail_(detail) {
  if (comm_.traceLane() == nullptr) return;
  start_ = virtualNow(comm_);
}

PhaseSpan::~PhaseSpan() {
  obs::Lane* lane = comm_.traceLane();
  if (lane == nullptr) return;
  lane->span(name_, obs::Cat::Phase, start_, virtualNow(comm_), -1, -1,
             detail_);
}

}  // namespace casvm::core
