#include "casvm/core/model_selection.hpp"

#include <algorithm>
#include <cmath>

#include "casvm/support/error.hpp"
#include "casvm/support/rng.hpp"

namespace casvm::core {

namespace {

/// Stratified fold assignment: shuffle each class separately, deal
/// round-robin, so every fold carries the global class ratio.
std::vector<int> stratifiedFolds(const data::Dataset& ds, int folds,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> fold(ds.rows(), 0);
  for (const std::int8_t cls : {std::int8_t{1}, std::int8_t{-1}}) {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < ds.rows(); ++i) {
      if (ds.label(i) == cls) members.push_back(i);
    }
    std::shuffle(members.begin(), members.end(), rng);
    for (std::size_t j = 0; j < members.size(); ++j) {
      fold[members[j]] = static_cast<int>(j % static_cast<std::size_t>(folds));
    }
  }
  return fold;
}

/// Shrink the process count for small training folds (same policy as the
/// multiclass pair trainer).
int clampProcesses(const TrainConfig& config, std::size_t rows) {
  int p = std::min<int>(config.processes,
                        std::max<int>(1, static_cast<int>(rows / 4)));
  if (isTreeMethod(config.method)) {
    int pow2 = 1;
    while (pow2 * 2 <= p) pow2 *= 2;
    p = pow2;
  }
  return std::max(p, 1);
}

}  // namespace

CrossValidationResult crossValidate(const data::Dataset& ds,
                                    const TrainConfig& config, int folds,
                                    std::uint64_t seed) {
  CASVM_CHECK(folds >= 2, "need at least two folds");
  CASVM_CHECK(ds.rows() >= static_cast<std::size_t>(2 * folds),
              "too few samples for this many folds");
  CASVM_CHECK(ds.positives() >= static_cast<std::size_t>(folds) &&
                  ds.negatives() >= static_cast<std::size_t>(folds),
              "each fold needs at least one sample of each class");

  const std::vector<int> fold = stratifiedFolds(ds, folds, seed);

  CrossValidationResult result;
  for (int k = 0; k < folds; ++k) {
    std::vector<std::size_t> trainIdx, testIdx;
    for (std::size_t i = 0; i < ds.rows(); ++i) {
      (fold[i] == k ? testIdx : trainIdx).push_back(i);
    }
    const data::Dataset trainSet = ds.subset(trainIdx);
    const data::Dataset testSet = ds.subset(testIdx);

    TrainConfig foldConfig = config;
    foldConfig.processes = clampProcesses(config, trainSet.rows());
    const TrainResult trained = train(trainSet, foldConfig);
    result.foldAccuracies.push_back(trained.model.accuracy(testSet));
    result.totalIterations += trained.totalIterations;
  }

  double sum = 0.0;
  for (double a : result.foldAccuracies) sum += a;
  result.meanAccuracy = sum / folds;
  double var = 0.0;
  for (double a : result.foldAccuracies) {
    var += (a - result.meanAccuracy) * (a - result.meanAccuracy);
  }
  result.stddev = std::sqrt(var / folds);
  return result;
}

GridSearchResult gridSearch(const data::Dataset& ds, TrainConfig config,
                            const std::vector<double>& gammas,
                            const std::vector<double>& Cs, int folds,
                            std::uint64_t seed) {
  CASVM_CHECK(!gammas.empty() && !Cs.empty(), "empty parameter grid");

  GridSearchResult result;
  bool first = true;
  for (double gamma : gammas) {
    for (double c : Cs) {
      config.solver.kernel = kernel::KernelParams::gaussian(gamma);
      config.solver.C = c;
      const CrossValidationResult cv = crossValidate(ds, config, folds, seed);
      GridPoint point{gamma, c, cv.meanAccuracy, cv.stddev};
      result.evaluated.push_back(point);
      const bool better =
          first || point.meanAccuracy > result.best.meanAccuracy ||
          (point.meanAccuracy == result.best.meanAccuracy &&
           point.C < result.best.C);
      if (better) result.best = point;
      first = false;
    }
  }
  return result;
}

}  // namespace casvm::core
