#include "casvm/core/metrics.hpp"

#include <cmath>
#include <sstream>

#include "casvm/support/error.hpp"

namespace casvm::core {

double BinaryMetrics::accuracy() const {
  const long long t = total();
  return t == 0 ? 0.0
               : static_cast<double>(truePositives + trueNegatives) / t;
}

double BinaryMetrics::recall() const {
  const long long positives = truePositives + falseNegatives;
  return positives == 0 ? 0.0
                        : static_cast<double>(truePositives) / positives;
}

double BinaryMetrics::precision() const {
  const long long predicted = truePositives + falsePositives;
  return predicted == 0 ? 0.0
                        : static_cast<double>(truePositives) / predicted;
}

double BinaryMetrics::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double BinaryMetrics::specificity() const {
  const long long negatives = trueNegatives + falsePositives;
  return negatives == 0 ? 0.0
                        : static_cast<double>(trueNegatives) / negatives;
}

double BinaryMetrics::balancedAccuracy() const {
  return (recall() + specificity()) / 2.0;
}

double BinaryMetrics::matthews() const {
  const double tp = static_cast<double>(truePositives);
  const double tn = static_cast<double>(trueNegatives);
  const double fp = static_cast<double>(falsePositives);
  const double fn = static_cast<double>(falseNegatives);
  const double denom =
      std::sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn));
  return denom == 0.0 ? 0.0 : (tp * tn - fp * fn) / denom;
}

std::string BinaryMetrics::report() const {
  std::ostringstream os;
  os << "confusion: TP=" << truePositives << " FN=" << falseNegatives
     << " FP=" << falsePositives << " TN=" << trueNegatives << "\n";
  auto pct = [](double v) { return std::round(v * 1000.0) / 10.0; };
  os << "accuracy=" << pct(accuracy()) << "% recall=" << pct(recall())
     << "% precision=" << pct(precision()) << "% F1=" << pct(f1())
     << "% balanced=" << pct(balancedAccuracy()) << "% MCC="
     << std::round(matthews() * 1000.0) / 1000.0 << "\n";
  return os.str();
}

BinaryMetrics evaluate(const DistributedModel& model,
                       const data::Dataset& testSet) {
  CASVM_CHECK(testSet.rows() > 0, "empty test set");
  BinaryMetrics m;
  for (std::size_t i = 0; i < testSet.rows(); ++i) {
    const bool predictedPositive = model.predictFor(testSet, i) == 1;
    const bool actuallyPositive = testSet.label(i) == 1;
    if (predictedPositive && actuallyPositive) ++m.truePositives;
    else if (predictedPositive) ++m.falsePositives;
    else if (actuallyPositive) ++m.falseNegatives;
    else ++m.trueNegatives;
  }
  return m;
}

BinaryMetrics evaluatePredictions(const std::vector<std::int8_t>& predictions,
                                  const data::Dataset& testSet) {
  CASVM_CHECK(predictions.size() == testSet.rows(),
              "one prediction per test row required");
  CASVM_CHECK(testSet.rows() > 0, "empty test set");
  BinaryMetrics m;
  for (std::size_t i = 0; i < testSet.rows(); ++i) {
    const bool predictedPositive = predictions[i] == 1;
    const bool actuallyPositive = testSet.label(i) == 1;
    if (predictedPositive && actuallyPositive) ++m.truePositives;
    else if (predictedPositive) ++m.falsePositives;
    else if (actuallyPositive) ++m.falseNegatives;
    else ++m.trueNegatives;
  }
  return m;
}

}  // namespace casvm::core
