#include "methods.hpp"

namespace casvm::core::detail {

void markInitEnd(net::Comm& comm, const MethodContext& ctx) {
  const auto rank = static_cast<std::size_t>(comm.rank());
  ctx.board.initEndVirtual[rank] = virtualNow(comm);
  // Consistent cut between the init and training phases: while rank 0
  // snapshots, every rank is parked in the fence with its init-phase sends
  // already recorded. The fence itself records no traffic.
  comm.instrumentationFence([&] {
    ctx.board.initSnapshot = comm.trafficSnapshot();
  });
  // Crash point at the init/train boundary. Placed AFTER the fence so a
  // rank that dies here has met every communication obligation of the init
  // phase — for the partitioned methods the rest of training is purely
  // local, which is what makes a phase=train crash survivable. It also
  // gives zero-communication runs (RA-CA casvm2) a deterministic crash
  // point that crash-at-op-N can never provide.
  comm.faultCheckpoint("train");
}

void markTrainEnd(net::Comm& comm, const MethodContext& ctx) {
  const auto rank = static_cast<std::size_t>(comm.rank());
  ctx.board.trainEndVirtual[rank] = virtualNow(comm);
}

}  // namespace casvm::core::detail
