#include "methods.hpp"

namespace casvm::core::detail {

void markInitEnd(net::Comm& comm, const MethodContext& ctx) {
  const auto rank = static_cast<std::size_t>(comm.rank());
  ctx.board.initEndVirtual[rank] = virtualNow(comm);
  // Consistent cut between the init and training phases: while rank 0
  // snapshots, every rank is parked in the fence with its init-phase sends
  // already recorded. The fence itself records no traffic.
  comm.instrumentationFence([&] {
    ctx.board.initSnapshot = comm.trafficSnapshot();
  });
  // The phase=train crash point is NOT injected here: each method body
  // places its own comm.faultCheckpoint("train") right after this call —
  // the partitioned methods inside their retry loop, so a crashed rank
  // can re-enter the checkpoint (and survive it once the clause's crash
  // budget is spent) without repeating the instrumentation fence above.
}

void markTrainEnd(net::Comm& comm, const MethodContext& ctx) {
  const auto rank = static_cast<std::size_t>(comm.rank());
  ctx.board.trainEndVirtual[rank] = virtualNow(comm);
}

}  // namespace casvm::core::detail
