#include "casvm/core/multiclass.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>

#include "casvm/support/error.hpp"
#include "methods.hpp"

namespace casvm::core {

MulticlassModel::MulticlassModel(std::vector<int> classes,
                                 std::vector<Pair> pairs)
    : classes_(std::move(classes)), pairs_(std::move(pairs)) {
  CASVM_CHECK(classes_.size() >= 2, "need at least two classes");
  CASVM_CHECK(std::is_sorted(classes_.begin(), classes_.end()),
              "classes must be sorted");
  CASVM_CHECK(pairs_.size() == classes_.size() * (classes_.size() - 1) / 2,
              "one model per unordered class pair required");
}

int MulticlassModel::predictFor(const data::Dataset& ds,
                                std::size_t i) const {
  CASVM_CHECK(!pairs_.empty(), "empty multiclass model");
  std::map<int, int> votes;
  std::map<int, double> margin;
  for (const Pair& pair : pairs_) {
    const double d = pair.model.decisionFor(ds, i);
    const int winner = d >= 0.0 ? pair.positiveClass : pair.negativeClass;
    ++votes[winner];
    margin[winner] += std::abs(d);
  }
  int best = classes_.front();
  int bestVotes = -1;
  double bestMargin = -1.0;
  for (int cls : classes_) {
    const int v = votes.count(cls) ? votes.at(cls) : 0;
    const double g = margin.count(cls) ? margin.at(cls) : 0.0;
    if (v > bestVotes || (v == bestVotes && g > bestMargin)) {
      best = cls;
      bestVotes = v;
      bestMargin = g;
    }
  }
  return best;
}

double MulticlassModel::accuracy(const data::Dataset& ds,
                                 const std::vector<int>& labels) const {
  CASVM_CHECK(ds.rows() == labels.size(), "label count mismatch");
  CASVM_CHECK(ds.rows() > 0, "empty test set");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    correct += (predictFor(ds, i) == labels[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(ds.rows());
}

std::vector<std::byte> MulticlassModel::pack() const {
  std::vector<std::byte> out;
  auto append = [&out](const void* data, std::size_t bytes) {
    const std::size_t off = out.size();
    out.resize(off + bytes);
    std::memcpy(out.data() + off, data, bytes);
  };
  const std::uint64_t numClasses = classes_.size();
  append(&numClasses, sizeof(numClasses));
  append(classes_.data(), classes_.size() * sizeof(int));
  const std::uint64_t numPairs = pairs_.size();
  append(&numPairs, sizeof(numPairs));
  for (const Pair& pair : pairs_) {
    append(&pair.positiveClass, sizeof(int));
    append(&pair.negativeClass, sizeof(int));
    const std::vector<std::byte> bytes = pair.model.pack();
    const std::uint64_t len = bytes.size();
    append(&len, sizeof(len));
    append(bytes.data(), bytes.size());
  }
  return out;
}

MulticlassModel MulticlassModel::unpack(std::span<const std::byte> bytes) {
  auto read = [&bytes](void* data, std::size_t count) {
    CASVM_CHECK(bytes.size() >= count, "multiclass unpack: truncated");
    std::memcpy(data, bytes.data(), count);
    bytes = bytes.subspan(count);
  };
  std::uint64_t numClasses = 0;
  read(&numClasses, sizeof(numClasses));
  CASVM_CHECK(numClasses <= bytes.size() / sizeof(int),
              "multiclass unpack: class count exceeds payload");
  std::vector<int> classes(numClasses);
  read(classes.data(), numClasses * sizeof(int));
  std::uint64_t numPairs = 0;
  read(&numPairs, sizeof(numPairs));
  CASVM_CHECK(numPairs <= bytes.size() / sizeof(std::uint64_t),
              "multiclass unpack: pair count exceeds payload");
  std::vector<Pair> pairs;
  pairs.reserve(numPairs);
  for (std::uint64_t p = 0; p < numPairs; ++p) {
    Pair pair;
    read(&pair.positiveClass, sizeof(int));
    read(&pair.negativeClass, sizeof(int));
    std::uint64_t len = 0;
    read(&len, sizeof(len));
    CASVM_CHECK(bytes.size() >= len, "multiclass unpack: truncated");
    pair.model = DistributedModel::unpack(bytes.subspan(0, len));
    bytes = bytes.subspan(len);
    pairs.push_back(std::move(pair));
  }
  CASVM_CHECK(bytes.empty(), "multiclass unpack: trailing bytes");
  return MulticlassModel(std::move(classes), std::move(pairs));
}

void MulticlassModel::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  CASVM_CHECK(out.good(), "cannot open model file for writing: " + path);
  const std::vector<std::byte> bytes = pack();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  CASVM_CHECK(out.good(), "model write failed: " + path);
}

MulticlassModel MulticlassModel::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  CASVM_CHECK(in.good(), "cannot open model file: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  CASVM_CHECK(in.good(), "model read failed: " + path);
  return unpack(bytes);
}

namespace {

/// Largest usable process count for a pairwise subproblem: no more ranks
/// than samples (with a little headroom). Tree methods handle ragged
/// (non-power-of-two) rank counts, so no further clamping is needed.
int clampProcesses(const TrainConfig& config, std::size_t pairRows) {
  const int p = std::min<int>(config.processes,
                              std::max<int>(1, static_cast<int>(pairRows / 4)));
  return std::max(p, 1);
}

/// The pairwise subproblems of a one-vs-one decomposition.
struct PairProblem {
  int positiveClass = 0;
  int negativeClass = 0;
  data::Dataset data;
};

std::vector<PairProblem> buildPairs(const data::Dataset& features,
                                    const std::vector<int>& classLabels,
                                    const std::vector<int>& classes) {
  std::vector<PairProblem> pairs;
  for (std::size_t a = 0; a < classes.size(); ++a) {
    for (std::size_t b = a + 1; b < classes.size(); ++b) {
      const int pos = classes[a];
      const int neg = classes[b];
      std::vector<std::size_t> rows;
      for (std::size_t i = 0; i < classLabels.size(); ++i) {
        if (classLabels[i] == pos || classLabels[i] == neg) rows.push_back(i);
      }
      CASVM_CHECK(rows.size() >= 2, "degenerate class pair");
      std::vector<std::int8_t> labels(rows.size());
      for (std::size_t i = 0; i < rows.size(); ++i) {
        labels[i] = classLabels[rows[i]] == pos ? 1 : -1;
      }
      pairs.push_back({pos, neg,
                       data::Dataset::relabel(features.subset(rows),
                                              std::move(labels))});
    }
  }
  return pairs;
}

}  // namespace

MulticlassResult trainMulticlass(const data::Dataset& features,
                                 const std::vector<int>& classLabels,
                                 const TrainConfig& config) {
  CASVM_CHECK(features.rows() == classLabels.size(),
              "one class label per row required");
  const std::set<int> classSet(classLabels.begin(), classLabels.end());
  CASVM_CHECK(classSet.size() >= 2, "need at least two distinct classes");
  const std::vector<int> classes(classSet.begin(), classSet.end());

  const std::vector<PairProblem> problems =
      buildPairs(features, classLabels, classes);

  std::vector<MulticlassModel::Pair> pairs;
  MulticlassResult result;
  for (const PairProblem& problem : problems) {
    TrainConfig pairConfig = config;
    pairConfig.processes = clampProcesses(config, problem.data.rows());
    const TrainResult trained = train(problem.data, pairConfig);

    result.totalIterations += trained.totalIterations;
    result.trainSeconds += trained.initSeconds + trained.trainSeconds;
    ++result.pairsTrained;
    pairs.push_back({problem.positiveClass, problem.negativeClass,
                     trained.model});
  }

  result.model = MulticlassModel(classes, std::move(pairs));
  return result;
}

MulticlassResult trainMulticlassParallel(const data::Dataset& features,
                                         const std::vector<int>& classLabels,
                                         const TrainConfig& config,
                                         int groups) {
  CASVM_CHECK(features.rows() == classLabels.size(),
              "one class label per row required");
  CASVM_CHECK(groups >= 1, "need at least one group");
  const std::set<int> classSet(classLabels.begin(), classLabels.end());
  CASVM_CHECK(classSet.size() >= 2, "need at least two distinct classes");
  const std::vector<int> classes(classSet.begin(), classSet.end());

  const std::vector<PairProblem> problems =
      buildPairs(features, classLabels, classes);
  const int numPairs = static_cast<int>(problems.size());
  CASVM_CHECK((numPairs + groups - 1) / groups <= 15,
              "too many pairs per group (split budget); raise `groups`");

  // Per-pair configuration, placement and deposit board, prepared by the
  // driver so every rank of a group sees identical inputs.
  std::vector<TrainConfig> configs;
  std::vector<std::vector<data::Dataset>> placements;
  std::vector<std::unique_ptr<RankBoard>> boards;
  for (const PairProblem& problem : problems) {
    TrainConfig pairConfig = config;
    pairConfig.processes = clampProcesses(config, problem.data.rows());
    placements.push_back(detail::placementFor(problem.data, pairConfig));
    boards.push_back(std::make_unique<RankBoard>(pairConfig.processes));
    configs.push_back(pairConfig);
  }

  const int perGroup = config.processes;
  net::Engine engine(groups * perGroup, config.cost);
  const net::RunStats stats = engine.run([&](net::Comm& world) {
    const int groupId = world.rank() / perGroup;
    net::Comm group = world.split(groupId, world.rank());
    for (int pairIdx = groupId; pairIdx < numPairs; pairIdx += groups) {
      const int pairProcs = configs[static_cast<std::size_t>(pairIdx)].processes;
      // Carve the pair's communicator out of the group (some ranks may sit
      // a round out when the pair is too small for the full group).
      const bool active = group.rank() < pairProcs;
      net::Comm pairComm = group.split(active ? 0 : 1, group.rank());
      if (!active) continue;
      detail::MethodContext ctx{
          configs[static_cast<std::size_t>(pairIdx)],
          placements[static_cast<std::size_t>(pairIdx)],
          *boards[static_cast<std::size_t>(pairIdx)]};
      detail::runMethod(pairComm, ctx);
    }
  });

  MulticlassResult result;
  std::vector<MulticlassModel::Pair> pairs;
  for (int p = 0; p < numPairs; ++p) {
    const auto up = static_cast<std::size_t>(p);
    TrainResult assembled = detail::assembleFromBoard(
        configs[up], *boards[up], configs[up].processes);
    result.totalIterations += assembled.totalIterations;
    ++result.pairsTrained;
    pairs.push_back({problems[up].positiveClass, problems[up].negativeClass,
                     std::move(assembled.model)});
  }
  // Groups ran concurrently: the run's critical path is the honest time.
  result.trainSeconds = stats.virtualSeconds();
  result.model = MulticlassModel(classes, std::move(pairs));
  return result;
}

}  // namespace casvm::core
