#include "casvm/core/method.hpp"

#include "casvm/support/error.hpp"

namespace casvm::core {

std::string methodName(Method method) {
  switch (method) {
    case Method::DisSmo: return "dis-smo";
    case Method::Cascade: return "cascade";
    case Method::DcSvm: return "dc-svm";
    case Method::DcFilter: return "dc-filter";
    case Method::CpSvm: return "cp-svm";
    case Method::BkmCa: return "bkm-ca";
    case Method::FcfsCa: return "fcfs-ca";
    case Method::RaCa: return "ra-ca";
    case Method::Pbm: return "pbm";
    case Method::DisSmoShrink: return "dis-smo-shrink";
  }
  throw Error("unknown method");
}

Method methodFromName(const std::string& name) {
  for (Method m : allMethods()) {
    if (methodName(m) == name) return m;
  }
  if (name == "ca-svm" || name == "casvm") return Method::RaCa;
  throw Error("unknown method name: " + name);
}

std::vector<Method> allMethods() {
  return {Method::DisSmo, Method::DisSmoShrink, Method::Pbm,
          Method::Cascade, Method::DcSvm,       Method::DcFilter,
          Method::CpSvm,   Method::BkmCa,       Method::FcfsCa,
          Method::RaCa};
}

bool isTreeMethod(Method method) {
  return method == Method::Cascade || method == Method::DcSvm ||
         method == Method::DcFilter;
}

bool isPartitionedMethod(Method method) {
  return method == Method::CpSvm || method == Method::BkmCa ||
         method == Method::FcfsCa || method == Method::RaCa;
}

bool usesKmeans(Method method) {
  return method == Method::DcSvm || method == Method::DcFilter ||
         method == Method::CpSvm || method == Method::BkmCa;
}

bool isCaSvm(Method method) {
  return method == Method::BkmCa || method == Method::FcfsCa ||
         method == Method::RaCa;
}

bool isGlobalMethod(Method method) {
  return method == Method::DisSmo || method == Method::DisSmoShrink ||
         method == Method::Pbm;
}

}  // namespace casvm::core
