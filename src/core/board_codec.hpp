#pragma once

// Cross-process codec for one rank's RankBoard slots. On the proc
// transport the SPMD body runs in a forked worker whose board writes land
// in copy-on-write memory and die with the process; the worker therefore
// serializes its rank's slots through the engine's result channel and the
// supervisor absorbs them into the parent's board. Doubles travel as raw
// bit patterns so the assembled TrainResult is bitwise-identical to the
// thread backend's.

#include <cstddef>
#include <vector>

#include "casvm/core/spmd.hpp"

namespace casvm::core::detail {

/// Pack every slot rank `rank` owns (including the init-phase traffic
/// snapshot, which only rank 0 ever fills).
std::vector<std::byte> encodeBoardSlot(const RankBoard& board, int rank);

/// Unpack a worker's slot bytes into the parent-side board. Throws
/// casvm::Error on a malformed payload.
void absorbBoardSlot(RankBoard& board, int rank,
                     const std::vector<std::byte>& bytes);

}  // namespace casvm::core::detail
