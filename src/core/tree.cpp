// The binary-reduction-tree methods: Cascade SVM, DC-SVM and DC-Filter.
//
// All three run log2(P)+1 layers. Layer 1 trains P sub-SVMs; at each later
// layer half of the previously active ranks ship their current output to a
// partner, which merges and re-trains with the received alphas as a warm
// start. They differ in (a) the initial partition — even blocks for
// Cascade, K-means for DC-SVM and DC-Filter — and (b) what travels between
// layers — only support vectors (Cascade, DC-Filter) or the entire sample
// set (DC-SVM). The paper's Table V profile (parallelism halving per
// layer, the single-node bottom layer dominating) falls directly out of
// this structure.

#include <algorithm>
#include <optional>
#include <string>

#include "casvm/ckpt/state.hpp"
#include "casvm/ckpt/store.hpp"
#include "casvm/cluster/kmeans.hpp"
#include "casvm/lowrank/lowrank_kernel.hpp"
#include "casvm/lowrank/nystrom.hpp"
#include "methods.hpp"
#include "casvm/support/error.hpp"

namespace casvm::core::detail {

namespace {

constexpr int kTreeDataTag = 200;
constexpr int kTreeAlphaTag = 201;

int log2int(int p) {
  int layers = 0;
  while ((1 << layers) < p) ++layers;
  return layers;
}

/// Indices of the nonzero-alpha rows of a just-solved subproblem.
std::vector<std::size_t> supportIndices(const std::vector<double>& alpha) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    if (alpha[i] > 0.0) idx.push_back(i);
  }
  return idx;
}

}  // namespace

void runTree(net::Comm& comm, const MethodContext& ctx) {
  const int rank = comm.rank();
  const auto urank = static_cast<std::size_t>(rank);
  const int P = comm.size();
  const Method method = ctx.config.method;
  RankBoard& board = ctx.board;

  ckpt::CheckpointStore* store = ctx.config.checkpoints;
  const std::string rankTag = ".r" + std::to_string(rank);
  const std::string partName = "part" + rankTag;

  // --- init phase: place the data ----------------------------------------
  data::Dataset current;

  // Cross-process resume of the partition. For DC-SVM / DC-Filter the
  // partition phase is collective (K-means + all-to-all), so skipping it
  // needs agreement from every rank: an allreduce-AND. Cascade's even-block
  // placement is purely local, so each rank decides on its own.
  bool restoredPartition = false;
  if (store != nullptr && ctx.config.resume) {
    std::optional<ckpt::PartitionState> part;
    if (const auto payload = store->load(partName, ckpt::Kind::Partition)) {
      part = ckpt::decodePartition(*payload);
    }
    int canSkip = part.has_value() ? 1 : 0;
    if (method != Method::Cascade) {
      canSkip =
          comm.allreduce(canSkip, [](int a, int b) { return a < b ? a : b; });
    }
    if (canSkip != 0) {
      current = std::move(part->local);
      board.kmeansLoops[urank] = part->kmeansLoops;
      ++board.checkpointsLoaded[urank];
      restoredPartition = true;
    }
  }

  if (!restoredPartition) {
    if (method == Method::Cascade) {
      PhaseSpan span(comm, "partition");
      current = ctx.initialBlocks[urank];  // even blocks, no communication
    } else {
      // DC-SVM / DC-Filter: distributed K-means over the initial blocks,
      // then an all-to-all moving each sample to its cluster's owner rank.
      cluster::KMeansResult result;
      {
        PhaseSpan span(comm, "partition");
        cluster::KMeansOptions km;
        km.clusters = P;
        km.maxLoops = ctx.config.kmeansMaxLoops;
        km.changeThreshold = ctx.config.kmeansChangeThreshold;
        km.seed = ctx.config.seed;
        result = cluster::kmeansDistributed(comm, ctx.initialBlocks[urank], km);
      }
      board.kmeansLoops[urank] = result.loops;
      PhaseSpan span(comm, "scatter");
      current = exchangeToOwners(comm, ctx.initialBlocks[urank],
                                 result.partition.assign);
    }

    if (store != nullptr) {
      ckpt::PartitionState part;
      part.local = current;
      part.kmeansLoops = board.kmeansLoops[urank];
      store->save(partName, ckpt::Kind::Partition,
                  ckpt::encodePartition(part));
    }
  }

  board.samples[urank] = static_cast<long long>(current.rows());
  board.positives[urank] = static_cast<long long>(current.positives());
  markInitEnd(comm, ctx);
  comm.faultCheckpoint("train");

  // --- training phase: the reduction tree ---------------------------------
  const int layers = log2int(P) + 1;
  const int passes = std::max(1, ctx.config.cascadePasses);
  const data::Dataset original = current;  // this rank's pass-1 input
  std::vector<double> currentAlpha;        // warm start, empty on layer 1

  for (int pass = 1; pass <= passes; ++pass) {
    if (pass > 1) {
      // Fig. 2's feedback loop: rank 0 distributes the final SV set (with
      // alphas) to every node; each node re-enters the top layer on its
      // original data plus the global support vectors, warm-started.
      std::vector<std::byte> packedSvs;
      if (rank == 0) packedSvs = current.packAll();
      comm.bcast(packedSvs, 0);
      std::vector<double> svAlpha = currentAlpha;
      comm.bcast(svAlpha, 0);
      const data::Dataset svs = data::Dataset::unpack(packedSvs);
      current = data::Dataset::concat(original, svs);
      currentAlpha.assign(original.rows(), 0.0);
      currentAlpha.insert(currentAlpha.end(), svAlpha.begin(), svAlpha.end());
    }

    for (int layer = 1; layer <= layers; ++layer) {
      const int step = 1 << (layer - 1);
      if (rank % step != 0) break;  // this rank went inactive this pass

      if (layer > 1) {
        // Merge the partner's output with ours. With a non-power-of-two P
        // the tree is ragged: a rank on the right edge may have no partner
        // at this layer (e.g. P=6, layer 3: rank 4's partner would be rank
        // 6). Such a rank skips the merge but stays active, re-entering the
        // solve with its current data so its samples still reach the root.
        const int partner = rank + step / 2;
        if (partner < P) {
          PhaseSpan span(comm, "merge", (pass - 1) * layers + layer);
          const data::Dataset partnerData =
              data::Dataset::unpack(comm.recvBytes(partner, kTreeDataTag));
          const std::vector<double> partnerAlpha =
              comm.recvVec<double>(partner, kTreeAlphaTag);
          CASVM_ASSERT(partnerData.rows() == partnerAlpha.size(),
                       "tree merge: sample/alpha count mismatch");
          current = data::Dataset::concat(current, partnerData);
          currentAlpha.insert(currentAlpha.end(), partnerAlpha.begin(),
                              partnerAlpha.end());
        }
      }

      // Layers keep counting across passes so per-layer checkpoint names
      // and stats stay unique.
      const int globalLayer = (pass - 1) * layers + layer;
      const std::string layerName =
          "tree" + rankTag + ".l" + std::to_string(globalLayer);
      const std::string solverName =
          "solver" + rankTag + ".l" + std::to_string(globalLayer);

      // Cross-process resume of a completed layer: restore its post-filter
      // output instead of re-solving. The merge above still ran — on resume
      // every rank replays its sends from restored (hence bitwise-identical)
      // state, so the communication pattern is exactly that of the original
      // run and the restored state matches what the partner just sent.
      std::optional<ckpt::TreeLayerState> done;
      if (store != nullptr && ctx.config.resume) {
        if (const auto payload = store->load(layerName, ckpt::Kind::TreeLayer)) {
          done = ckpt::decodeTreeLayer(*payload);
        }
      }

      if (done.has_value()) {
        ++board.checkpointsLoaded[urank];
        current = std::move(done->current);
        currentAlpha = std::move(done->currentAlpha);
        // Iteration/second counters report work done in THIS run; restoring
        // a finished layer cost neither (the checkpoint still records the
        // original figures for inspection).
        board.layerRecords[urank].push_back(
            {globalLayer, done->samples, 0, done->svs, 0.0});
        if (layer == layers) {
          CASVM_ASSERT(rank == 0, "final layer must run on rank 0");
          CASVM_CHECK(done->model.has_value(),
                      "final-layer checkpoint is missing its model");
          board.models[0] = std::move(*done->model);
          board.svs[0] = done->svs;
        }
      } else {
        solver::SolverOptions sopts = ctx.config.solver;
        if (comm.traceLane() != nullptr) {
          sopts.trace = comm.traceLane();
          sopts.traceTimeOffset = virtualNow(comm);
        }
        std::optional<solver::SolverSnapshot> resumeSnap;
        if (store != nullptr) {
          if (ctx.config.resume) {
            if (const auto payload =
                    store->load(solverName, ckpt::Kind::SolverState)) {
              resumeSnap = ckpt::decodeSolverState(*payload);
              if (resumeSnap->alpha.size() == current.rows()) {
                ++board.checkpointsLoaded[urank];
              } else {
                resumeSnap.reset();  // snapshot of a different merge state
              }
            }
          }
          if (resumeSnap.has_value()) sopts.resumeFrom = &*resumeSnap;
          sopts.snapshotInterval = ctx.config.checkpointEvery;
          sopts.snapshotSink = [&](const solver::SolverSnapshot& snap) {
            store->save(solverName, ckpt::Kind::SolverState,
                        ckpt::encodeSolverState(snap));
            // Durable-first: a crash at this checkpoint always has its
            // resume snapshot already on disk.
            comm.faultCheckpoint("solve");
          };
        }
        // Low-rank backend: each layer's merged working set is this rank's
        // cluster at that depth, so a fresh per-layer factor keeps the
        // approximation anchored to the data actually being solved. The
        // factor is durable per (rank, layer); a mid-layer resume restores
        // it, and the deterministic build makes restore == rebuild bitwise.
        std::optional<lowrank::LowRankKernel> lowrankSource;
        const std::string factorName =
            "lowrank" + rankTag + ".l" + std::to_string(globalLayer);
        if (ctx.config.solverBackend == SolverBackend::Nystrom &&
            current.rows() > 0) {
          std::optional<lowrank::NystromFactor> factor;
          if (store != nullptr && ctx.config.resume) {
            if (const auto payload =
                    store->load(factorName, ckpt::Kind::LowRankFactor)) {
              lowrank::NystromFactor restored =
                  lowrank::NystromFactor::decode(*payload);
              if (restored.rows() == current.rows()) {
                factor = std::move(restored);
                ++board.checkpointsLoaded[urank];
              }
            }
          }
          if (!factor.has_value()) {
            PhaseSpan span(comm, "lowrank", globalLayer);
            lowrank::NystromOptions nopts;
            nopts.landmarks = ctx.config.nystromLandmarks;
            nopts.strategy = ctx.config.nystromStrategy;
            nopts.eigenFloor = ctx.config.nystromEigenFloor;
            // Salt the seed per (rank, layer): every layer's working set is
            // a different cluster and selects its own landmarks.
            const std::uint64_t salt =
                (static_cast<std::uint64_t>(rank) << 32) |
                static_cast<std::uint64_t>(globalLayer);
            nopts.seed = ctx.config.seed ^ (0x9E3779B97F4A7C15ull * (salt + 1));
            const kernel::Kernel kern(sopts.kernel);
            factor = lowrank::NystromFactor::build(kern, current, nopts);
            if (store != nullptr) {
              store->save(factorName, ckpt::Kind::LowRankFactor,
                          factor->encode());
            }
          }
          lowrankSource.emplace(std::move(*factor));
          sopts.rowSource = &*lowrankSource;
        }

        const double t0 = virtualNow(comm);
        LocalSolve solve;
        {
          PhaseSpan span(comm, "solve", globalLayer);
          solve = trainLocalSvm(
              current, sopts,
              ctx.config.treeWarmStart ? std::span<const double>(currentAlpha)
                                       : std::span<const double>());
        }
        const double t1 = virtualNow(comm);

        const auto layerSamples = static_cast<long long>(current.rows());
        board.layerRecords[urank].push_back(
            {globalLayer, layerSamples, solve.iterations, solve.svs, t1 - t0});

        // Prepare this layer's output: everything for DC-SVM, only the
        // support vectors (with their alphas, the warm start for the next
        // layer) for Cascade and DC-Filter.
        if (method == Method::DcSvm) {
          currentAlpha = solve.alpha;
        } else {
          const std::vector<std::size_t> svIdx = supportIndices(solve.alpha);
          if (svIdx.empty() && !current.empty()) {
            // Degenerate subproblem (typically a single-class K-means part
            // under DC-Filter): there is no margin yet, so *every* sample is
            // a potential support vector once the other class joins at the
            // next layer. Filtering to the empty SV set would silently
            // delete this part's information from the cascade.
            currentAlpha.assign(current.rows(), 0.0);
          } else {
            std::vector<double> svAlpha;
            svAlpha.reserve(svIdx.size());
            for (std::size_t i : svIdx) svAlpha.push_back(solve.alpha[i]);
            current = current.subset(svIdx);
            currentAlpha = std::move(svAlpha);
          }
        }

        if (store != nullptr) {
          ckpt::TreeLayerState state;
          state.layer = globalLayer;
          state.current = current;  // post-filter: the next layer's input
          state.currentAlpha = currentAlpha;
          state.samples = layerSamples;
          state.iterations = solve.iterations;
          state.svs = solve.svs;
          state.seconds = t1 - t0;
          if (layer == layers) state.model = solve.model;
          store->save(layerName, ckpt::Kind::TreeLayer,
                      ckpt::encodeTreeLayer(state));
          store->remove(solverName);  // mid-solve state is now obsolete
          store->remove(factorName);  // so is the layer's low-rank factor
        }

        if (layer == layers) {
          // Bottom of the tree: rank 0 holds the final model.
          CASVM_ASSERT(rank == 0, "final layer must run on rank 0");
          board.models[0] = solve.model;
          board.svs[0] = solve.svs;
        }
      }

      if (layer != layers && rank % (step * 2) != 0) {
        // This rank is the sending half of the next layer's pairs.
        const int dst = rank - step;
        const std::vector<std::byte> packed = current.packAll();
        comm.sendBytes(dst, kTreeDataTag, packed.data(), packed.size());
        comm.send(dst, currentAlpha, kTreeAlphaTag);
        break;  // inactive for the rest of this pass
      }
    }
  }

  markTrainEnd(comm, ctx);
}

}  // namespace casvm::core::detail
