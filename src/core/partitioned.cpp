// The single-layer partitioned methods: CP-SVM and the CA-SVM family
// (BKM-CA, FCFS-CA, RA-CA).
//
// All four partition the data into P parts, train P fully independent
// sub-SVMs, and keep P model files routed by nearest data center at
// prediction time (paper Fig. 3 / Algorithm 6). They differ only in the
// partitioner: K-means (CP-SVM), ratio-balanced balanced-K-means (BKM-CA),
// ratio-balanced FCFS (FCFS-CA) or a random even split (RA-CA). RA-CA in
// its casvm2 placement — data born distributed — performs zero
// communication during the entire training process, which is the paper's
// headline communication-avoiding property.

#include "casvm/cluster/balanced_kmeans.hpp"
#include "casvm/cluster/fcfs.hpp"
#include "casvm/cluster/kmeans.hpp"
#include "methods.hpp"
#include "casvm/support/error.hpp"

namespace casvm::core::detail {

namespace {

constexpr int kScatterTag = 300;

/// Mean of all local rows (eqn. 14): the data center a RA-CA rank
/// publishes for prediction routing. Purely local.
std::vector<float> localMeanCenter(const data::Dataset& ds) {
  std::vector<float> center(ds.cols(), 0.0f);
  if (ds.rows() == 0) return center;
  std::vector<double> sum(ds.cols(), 0.0);
  for (std::size_t i = 0; i < ds.rows(); ++i) ds.addRowTo(i, sum);
  for (std::size_t k = 0; k < ds.cols(); ++k) {
    center[k] = static_cast<float>(sum[k] / double(ds.rows()));
  }
  return center;
}

}  // namespace

void runPartitioned(net::Comm& comm, const MethodContext& ctx) {
  const int rank = comm.rank();
  const auto urank = static_cast<std::size_t>(rank);
  const int P = comm.size();
  const Method method = ctx.config.method;
  RankBoard& board = ctx.board;
  const data::Dataset& initial = ctx.initialBlocks[urank];

  // --- init phase: build the partition and place the parts ---------------
  data::Dataset mine;
  std::vector<float> myCenter;

  switch (method) {
    case Method::CpSvm: {
      cluster::KMeansResult result;
      {
        PhaseSpan span(comm, "partition");
        cluster::KMeansOptions km;
        km.clusters = P;
        km.maxLoops = ctx.config.kmeansMaxLoops;
        km.changeThreshold = ctx.config.kmeansChangeThreshold;
        km.seed = ctx.config.seed;
        result = cluster::kmeansDistributed(comm, initial, km);
      }
      board.kmeansLoops[urank] = result.loops;
      {
        PhaseSpan span(comm, "scatter");
        mine = exchangeToOwners(comm, initial, result.partition.assign);
      }
      myCenter = result.partition.centers[urank];
      break;
    }
    case Method::BkmCa: {
      cluster::BalancedKMeansResult result;
      {
        PhaseSpan span(comm, "partition");
        cluster::BalancedKMeansOptions bkm;
        bkm.parts = P;
        bkm.ratioBalanced = ctx.config.ratioBalance;
        bkm.maxKmeansLoops = ctx.config.kmeansMaxLoops;
        bkm.kmeansChangeThreshold = ctx.config.kmeansChangeThreshold;
        bkm.seed = ctx.config.seed;
        result = cluster::balancedKmeansDistributed(comm, initial, bkm);
      }
      board.kmeansLoops[urank] = result.kmeansLoops;
      {
        PhaseSpan span(comm, "scatter");
        mine = exchangeToOwners(comm, initial, result.partition.assign);
      }
      myCenter = result.partition.centers[urank];
      break;
    }
    case Method::FcfsCa: {
      cluster::Partition partition;
      {
        PhaseSpan span(comm, "partition");
        cluster::FcfsOptions fcfs;
        fcfs.parts = P;
        fcfs.ratioBalanced = ctx.config.ratioBalance;
        fcfs.seed = ctx.config.seed;
        partition = cluster::fcfsPartitionDistributed(comm, initial, fcfs);
      }
      {
        PhaseSpan span(comm, "scatter");
        mine = exchangeToOwners(comm, initial, partition.assign);
      }
      myCenter = partition.centers[urank];
      break;
    }
    case Method::RaCa: {
      if (ctx.config.raInitialDataOnRoot) {
        // casvm1: the whole dataset starts on rank 0, which deals random
        // even parts to everyone — this distribution is RA-CA's only
        // communication, shown in the paper's Fig. 9 as casvm1.
        PhaseSpan span(comm, "scatter");
        if (rank == 0) {
          const cluster::Partition part = cluster::randomPartition(
              initial, P, ctx.config.seed);
          const auto groups = part.groups();
          for (int dst = 1; dst < P; ++dst) {
            const std::vector<std::byte> packed =
                initial.pack(groups[static_cast<std::size_t>(dst)]);
            comm.sendBytes(dst, kScatterTag, packed.data(), packed.size());
          }
          mine = initial.subset(groups[0]);
        } else {
          mine = data::Dataset::unpack(comm.recvBytes(0, kScatterTag));
        }
      } else {
        // casvm2: data is born distributed; no communication at all.
        PhaseSpan span(comm, "partition");
        mine = initial;
      }
      myCenter = localMeanCenter(mine);
      break;
    }
    default:
      throw Error("runPartitioned called with a non-partitioned method");
  }

  board.samples[urank] = static_cast<long long>(mine.rows());
  board.positives[urank] = static_cast<long long>(mine.positives());
  markInitEnd(comm, ctx);

  // --- training phase: one fully independent sub-SVM ----------------------
  solver::SolverOptions sopts = ctx.config.solver;
  if (comm.traceLane() != nullptr) {
    sopts.trace = comm.traceLane();
    sopts.traceTimeOffset = virtualNow(comm);
  }
  LocalSolve solve;
  {
    PhaseSpan span(comm, "solve");
    solve = trainLocalSvm(mine, sopts);
  }
  markTrainEnd(comm, ctx);

  board.models[urank] = solve.model;
  board.centers[urank] = std::move(myCenter);
  board.iterations[urank] = solve.iterations;
  board.svs[urank] = solve.svs;
}

}  // namespace casvm::core::detail
