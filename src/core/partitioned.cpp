// The single-layer partitioned methods: CP-SVM and the CA-SVM family
// (BKM-CA, FCFS-CA, RA-CA).
//
// All four partition the data into P parts, train P fully independent
// sub-SVMs, and keep P model files routed by nearest data center at
// prediction time (paper Fig. 3 / Algorithm 6). They differ only in the
// partitioner: K-means (CP-SVM), ratio-balanced balanced-K-means (BKM-CA),
// ratio-balanced FCFS (FCFS-CA) or a random even split (RA-CA). RA-CA in
// its casvm2 placement — data born distributed — performs zero
// communication during the entire training process, which is the paper's
// headline communication-avoiding property.

#include <algorithm>
#include <optional>

#include "casvm/ckpt/state.hpp"
#include "casvm/ckpt/store.hpp"
#include "casvm/net/fault.hpp"
#include "casvm/cluster/balanced_kmeans.hpp"
#include "casvm/cluster/fcfs.hpp"
#include "casvm/cluster/kmeans.hpp"
#include "casvm/lowrank/lowrank_kernel.hpp"
#include "casvm/lowrank/nystrom.hpp"
#include "methods.hpp"
#include "casvm/support/error.hpp"

namespace casvm::core::detail {

namespace {

constexpr int kScatterTag = 300;

/// Mean of all local rows (eqn. 14): the data center a RA-CA rank
/// publishes for prediction routing. Purely local.
std::vector<float> localMeanCenter(const data::Dataset& ds) {
  std::vector<float> center(ds.cols(), 0.0f);
  if (ds.rows() == 0) return center;
  std::vector<double> sum(ds.cols(), 0.0);
  for (std::size_t i = 0; i < ds.rows(); ++i) ds.addRowTo(i, sum);
  for (std::size_t k = 0; k < ds.cols(); ++k) {
    center[k] = static_cast<float>(sum[k] / double(ds.rows()));
  }
  return center;
}

}  // namespace

void runPartitioned(net::Comm& comm, const MethodContext& ctx) {
  const int rank = comm.rank();
  const auto urank = static_cast<std::size_t>(rank);
  const int P = comm.size();
  const Method method = ctx.config.method;
  RankBoard& board = ctx.board;
  const data::Dataset& initial = ctx.initialBlocks[urank];

  ckpt::CheckpointStore* store = ctx.config.checkpoints;
  const std::string rankTag = ".r" + std::to_string(rank);
  const std::string partName = "part" + rankTag;
  const std::string solverName = "solver" + rankTag;
  const std::string modelName = "model" + rankTag;

  // --- init phase: build the partition and place the parts ---------------
  data::Dataset mine;
  std::vector<float> myCenter;

  // Cross-process resume of the partition. The partition phase is
  // collective (K-means rounds, the all-to-all exchange, the casvm1
  // scatter), so it can only be skipped if EVERY rank restored its part —
  // the agreement is an allreduce-AND. RA-CA casvm2 partitions with zero
  // communication, so each rank decides locally and the method's headline
  // property is preserved on resume.
  bool restoredPartition = false;
  if (store != nullptr && ctx.config.resume) {
    std::optional<ckpt::PartitionState> part;
    if (const auto payload = store->load(partName, ckpt::Kind::Partition)) {
      part = ckpt::decodePartition(*payload);
    }
    int canSkip = part.has_value() ? 1 : 0;
    const bool localOnlyInit =
        method == Method::RaCa && !ctx.config.raInitialDataOnRoot;
    if (!localOnlyInit) {
      canSkip = comm.allreduce(
          canSkip, [](int a, int b) { return a < b ? a : b; });
    }
    if (canSkip != 0) {
      mine = std::move(part->local);
      myCenter = std::move(part->center);
      board.kmeansLoops[urank] = part->kmeansLoops;
      ++board.checkpointsLoaded[urank];
      restoredPartition = true;
    }
  }

  if (!restoredPartition) {
    switch (method) {
    case Method::CpSvm: {
      cluster::KMeansResult result;
      {
        PhaseSpan span(comm, "partition");
        cluster::KMeansOptions km;
        km.clusters = P;
        km.maxLoops = ctx.config.kmeansMaxLoops;
        km.changeThreshold = ctx.config.kmeansChangeThreshold;
        km.seed = ctx.config.seed;
        result = cluster::kmeansDistributed(comm, initial, km);
      }
      board.kmeansLoops[urank] = result.loops;
      {
        PhaseSpan span(comm, "scatter");
        mine = exchangeToOwners(comm, initial, result.partition.assign);
      }
      myCenter = result.partition.centers[urank];
      break;
    }
    case Method::BkmCa: {
      cluster::BalancedKMeansResult result;
      {
        PhaseSpan span(comm, "partition");
        cluster::BalancedKMeansOptions bkm;
        bkm.parts = P;
        bkm.ratioBalanced = ctx.config.ratioBalance;
        bkm.maxKmeansLoops = ctx.config.kmeansMaxLoops;
        bkm.kmeansChangeThreshold = ctx.config.kmeansChangeThreshold;
        bkm.seed = ctx.config.seed;
        result = cluster::balancedKmeansDistributed(comm, initial, bkm);
      }
      board.kmeansLoops[urank] = result.kmeansLoops;
      {
        PhaseSpan span(comm, "scatter");
        mine = exchangeToOwners(comm, initial, result.partition.assign);
      }
      myCenter = result.partition.centers[urank];
      break;
    }
    case Method::FcfsCa: {
      cluster::Partition partition;
      {
        PhaseSpan span(comm, "partition");
        cluster::FcfsOptions fcfs;
        fcfs.parts = P;
        fcfs.ratioBalanced = ctx.config.ratioBalance;
        fcfs.seed = ctx.config.seed;
        partition = cluster::fcfsPartitionDistributed(comm, initial, fcfs);
      }
      {
        PhaseSpan span(comm, "scatter");
        mine = exchangeToOwners(comm, initial, partition.assign);
      }
      myCenter = partition.centers[urank];
      break;
    }
    case Method::RaCa: {
      if (ctx.config.raInitialDataOnRoot) {
        // casvm1: the whole dataset starts on rank 0, which deals random
        // even parts to everyone — this distribution is RA-CA's only
        // communication, shown in the paper's Fig. 9 as casvm1.
        PhaseSpan span(comm, "scatter");
        if (rank == 0) {
          const cluster::Partition part = cluster::randomPartition(
              initial, P, ctx.config.seed);
          const auto groups = part.groups();
          for (int dst = 1; dst < P; ++dst) {
            const std::vector<std::byte> packed =
                initial.pack(groups[static_cast<std::size_t>(dst)]);
            comm.sendBytes(dst, kScatterTag, packed.data(), packed.size());
          }
          mine = initial.subset(groups[0]);
        } else {
          mine = data::Dataset::unpack(comm.recvBytes(0, kScatterTag));
        }
      } else {
        // casvm2: data is born distributed; no communication at all.
        PhaseSpan span(comm, "partition");
        mine = initial;
      }
      myCenter = localMeanCenter(mine);
      break;
    }
    default:
      throw Error("runPartitioned called with a non-partitioned method");
    }

    if (store != nullptr) {
      ckpt::PartitionState part;
      part.local = mine;
      part.center = myCenter;
      part.kmeansLoops = board.kmeansLoops[urank];
      store->save(partName, ckpt::Kind::Partition,
                  ckpt::encodePartition(part));
    }
  }

  board.samples[urank] = static_cast<long long>(mine.rows());
  board.positives[urank] = static_cast<long long>(mine.positives());
  markInitEnd(comm, ctx);

  // Completed sub-model from a previous process: the whole training phase
  // of this rank is done, deposit it and return. Purely local.
  if (store != nullptr && ctx.config.resume) {
    if (const auto payload = store->load(modelName, ckpt::Kind::SubModel)) {
      ckpt::SubModelState sub = ckpt::decodeSubModel(*payload);
      ++board.checkpointsLoaded[urank];
      markTrainEnd(comm, ctx);
      board.models[urank] = std::move(sub.model);
      board.centers[urank] = std::move(myCenter);
      // Iteration counters report solver work done in THIS run; a restored
      // sub-model cost zero iterations here.
      board.iterations[urank] = 0;
      board.svs[urank] = sub.svs;
      return;
    }
  }

  // --- training phase: one fully independent sub-SVM ----------------------
  // From here to the board deposits this rank performs no communication
  // (that is the point of the partitioned methods), so an injected crash
  // can be retried locally: no peer is waiting on a collective we would
  // re-enter. Each attempt resumes from the newest solver snapshot.
  const int maxAttempts = 1 + std::max(0, ctx.config.rankRetries);
  for (int attempt = 0; attempt < maxAttempts; ++attempt) {
    try {
      // The phase=train crash point, inside the retry window (see
      // markInitEnd). A clause with times=N kills the first N attempts.
      comm.faultCheckpoint("train");

      solver::SolverOptions sopts = ctx.config.solver;
      if (comm.traceLane() != nullptr) {
        sopts.trace = comm.traceLane();
        sopts.traceTimeOffset = virtualNow(comm);
      }
      std::optional<solver::SolverSnapshot> resumeSnap;
      if (store != nullptr) {
        if (ctx.config.resume || attempt > 0) {
          if (const auto payload =
                  store->load(solverName, ckpt::Kind::SolverState)) {
            resumeSnap = ckpt::decodeSolverState(*payload);
            if (resumeSnap->alpha.size() == mine.rows()) {
              ++board.checkpointsLoaded[urank];
            } else {
              resumeSnap.reset();  // stale snapshot of a different part
            }
          }
        }
        if (resumeSnap.has_value()) sopts.resumeFrom = &*resumeSnap;
        sopts.snapshotInterval = ctx.config.checkpointEvery;
        sopts.snapshotSink = [&](const solver::SolverSnapshot& snap) {
          store->save(solverName, ckpt::Kind::SolverState,
                      ckpt::encodeSolverState(snap));
          // Durable-first ordering: when a crash fires at this solve
          // checkpoint, the snapshot it would resume from is already on
          // disk — mid-solve interrupts are exactly resumable.
          comm.faultCheckpoint("solve");
        };
      }

      // Low-rank backend: this rank's partition IS its cluster, so the
      // per-cluster Nyström factor is built right here from local rows —
      // zero communication, composing with whichever partitioner ran
      // above. The factor is durable (Kind::LowRankFactor): a retry or
      // resume restores it instead of rebuilding, and because the build is
      // deterministic both paths yield the bitwise-identical factor.
      std::optional<lowrank::LowRankKernel> lowrankSource;
      const std::string factorName = "lowrank" + rankTag;
      if (ctx.config.solverBackend == SolverBackend::Nystrom &&
          mine.rows() > 0) {
        std::optional<lowrank::NystromFactor> factor;
        if (store != nullptr && (ctx.config.resume || attempt > 0)) {
          if (const auto payload =
                  store->load(factorName, ckpt::Kind::LowRankFactor)) {
            lowrank::NystromFactor restored =
                lowrank::NystromFactor::decode(*payload);
            if (restored.rows() == mine.rows()) {
              factor = std::move(restored);
              ++board.checkpointsLoaded[urank];
            }
          }
        }
        if (!factor.has_value()) {
          PhaseSpan span(comm, "lowrank");
          lowrank::NystromOptions nopts;
          nopts.landmarks = ctx.config.nystromLandmarks;
          nopts.strategy = ctx.config.nystromStrategy;
          nopts.eigenFloor = ctx.config.nystromEigenFloor;
          // Salt the seed per rank so each cluster selects its own
          // landmarks independently.
          nopts.seed = ctx.config.seed ^ (0x9E3779B97F4A7C15ull *
                                          static_cast<std::uint64_t>(rank + 1));
          const kernel::Kernel kern(sopts.kernel);
          factor = lowrank::NystromFactor::build(kern, mine, nopts);
          if (store != nullptr) {
            store->save(factorName, ckpt::Kind::LowRankFactor,
                        factor->encode());
          }
        }
        lowrankSource.emplace(std::move(*factor));
        sopts.rowSource = &*lowrankSource;
      }

      LocalSolve solve;
      {
        PhaseSpan span(comm, "solve");
        solve = trainLocalSvm(mine, sopts);
      }

      if (store != nullptr) {
        ckpt::SubModelState sub;
        sub.model = solve.model;
        sub.iterations = solve.iterations;
        sub.svs = solve.svs;
        store->save(modelName, ckpt::Kind::SubModel,
                    ckpt::encodeSubModel(sub));
        store->remove(solverName);  // mid-solve state is now obsolete
        store->remove(factorName);  // so is the low-rank factor
      }
      markTrainEnd(comm, ctx);

      board.models[urank] = solve.model;
      board.centers[urank] = std::move(myCenter);
      board.iterations[urank] = solve.iterations;
      board.svs[urank] = solve.svs;
      board.retries[urank] = attempt;
      if (attempt > 0) board.recovered[urank] = 1;
      return;
    } catch (const net::RankCrash&) {
      board.retries[urank] = attempt;
      if (attempt + 1 >= maxAttempts) throw;  // budget spent: degraded path
      // Bounded linear backoff, charged to the virtual clock like any
      // local work (a real system would sleep before respawning).
      comm.clock().addCompute(ctx.config.retryBackoffSeconds *
                              static_cast<double>(attempt + 1));
    }
  }
}

void resumeRankLocal(net::Comm& comm, const MethodContext& ctx, int attempt) {
  // Collective-free by construction: this runs in a respawned worker whose
  // peers are mid-solve (or finished) and will never re-enter a collective
  // with us. Everything below is checkpoint loads and local compute, which
  // is exactly what the partitioned methods' training phase consists of —
  // the property that makes a real process kill survivable at all.
  const int rank = comm.rank();
  const auto urank = static_cast<std::size_t>(rank);
  RankBoard& board = ctx.board;
  ckpt::CheckpointStore* store = ctx.config.checkpoints;
  CASVM_CHECK(store != nullptr,
              "resumeRankLocal needs a checkpoint store (the driver only "
              "installs a respawn entry when one is configured)");
  const std::string rankTag = ".r" + std::to_string(rank);
  const std::string partName = "part" + rankTag;
  const std::string solverName = "solver" + rankTag;
  const std::string modelName = "model" + rankTag;
  const std::string factorName = "lowrank" + rankTag;

  // The partition is the resume anchor: without it there is no local data
  // to retrain on, so the rank stays dead and the run degrades around it.
  std::optional<ckpt::PartitionState> part;
  if (const auto payload = store->load(partName, ckpt::Kind::Partition)) {
    part = ckpt::decodePartition(*payload);
  }
  if (!part.has_value()) {
    throw net::RankCrash(
        rank, "respawned rank " + std::to_string(rank) +
                  " found no partition checkpoint to resume from (the worker "
                  "died before the partition phase completed)");
  }
  data::Dataset mine = std::move(part->local);
  std::vector<float> myCenter = std::move(part->center);
  board.kmeansLoops[urank] = part->kmeansLoops;
  ++board.checkpointsLoaded[urank];
  board.samples[urank] = static_cast<long long>(mine.rows());
  board.positives[urank] = static_cast<long long>(mine.positives());
  // The respawned incarnation's clock starts fresh; its init phase is the
  // checkpoint load that just happened. No instrumentation fence — that is
  // a collective, and the fence already ran in the first incarnation.
  board.initEndVirtual[urank] = virtualNow(comm);

  // The previous incarnation may have finished the solve and died between
  // the sub-model save and its result frame — then the work is done.
  if (const auto payload = store->load(modelName, ckpt::Kind::SubModel)) {
    ckpt::SubModelState sub = ckpt::decodeSubModel(*payload);
    ++board.checkpointsLoaded[urank];
    markTrainEnd(comm, ctx);
    board.models[urank] = std::move(sub.model);
    board.centers[urank] = std::move(myCenter);
    board.iterations[urank] = 0;
    board.svs[urank] = sub.svs;
    board.retries[urank] = attempt;
    board.recovered[urank] = 1;
    return;
  }

  solver::SolverOptions sopts = ctx.config.solver;
  if (comm.traceLane() != nullptr) {
    sopts.trace = comm.traceLane();
    sopts.traceTimeOffset = virtualNow(comm);
  }
  std::optional<solver::SolverSnapshot> resumeSnap;
  if (const auto payload = store->load(solverName, ckpt::Kind::SolverState)) {
    resumeSnap = ckpt::decodeSolverState(*payload);
    if (resumeSnap->alpha.size() == mine.rows()) {
      ++board.checkpointsLoaded[urank];
    } else {
      resumeSnap.reset();  // stale snapshot of a different part
    }
  }
  if (resumeSnap.has_value()) sopts.resumeFrom = &*resumeSnap;
  sopts.snapshotInterval = ctx.config.checkpointEvery;
  sopts.snapshotSink = [&](const solver::SolverSnapshot& snap) {
    store->save(solverName, ckpt::Kind::SolverState,
                ckpt::encodeSolverState(snap));
  };

  std::optional<lowrank::LowRankKernel> lowrankSource;
  if (ctx.config.solverBackend == SolverBackend::Nystrom && mine.rows() > 0) {
    std::optional<lowrank::NystromFactor> factor;
    if (const auto payload =
            store->load(factorName, ckpt::Kind::LowRankFactor)) {
      lowrank::NystromFactor restored =
          lowrank::NystromFactor::decode(*payload);
      if (restored.rows() == mine.rows()) {
        factor = std::move(restored);
        ++board.checkpointsLoaded[urank];
      }
    }
    if (!factor.has_value()) {
      PhaseSpan span(comm, "lowrank");
      lowrank::NystromOptions nopts;
      nopts.landmarks = ctx.config.nystromLandmarks;
      nopts.strategy = ctx.config.nystromStrategy;
      nopts.eigenFloor = ctx.config.nystromEigenFloor;
      nopts.seed = ctx.config.seed ^ (0x9E3779B97F4A7C15ull *
                                      static_cast<std::uint64_t>(rank + 1));
      const kernel::Kernel kern(sopts.kernel);
      factor = lowrank::NystromFactor::build(kern, mine, nopts);
      store->save(factorName, ckpt::Kind::LowRankFactor, factor->encode());
    }
    lowrankSource.emplace(std::move(*factor));
    sopts.rowSource = &*lowrankSource;
  }

  LocalSolve solve;
  {
    PhaseSpan span(comm, "solve");
    solve = trainLocalSvm(mine, sopts);
  }

  ckpt::SubModelState sub;
  sub.model = solve.model;
  sub.iterations = solve.iterations;
  sub.svs = solve.svs;
  store->save(modelName, ckpt::Kind::SubModel, ckpt::encodeSubModel(sub));
  store->remove(solverName);
  store->remove(factorName);
  markTrainEnd(comm, ctx);

  board.models[urank] = solve.model;
  board.centers[urank] = std::move(myCenter);
  board.iterations[urank] = solve.iterations;
  board.svs[urank] = solve.svs;
  board.retries[urank] = attempt;
  board.recovered[urank] = 1;
}

}  // namespace casvm::core::detail
