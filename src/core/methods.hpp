#pragma once

// Internal declarations of the per-method SPMD bodies. Each function is
// executed once per rank under the net::Engine; the shared MethodContext
// provides the configuration, the per-rank initial data placement and the
// deposit board the driver reads afterwards.

#include "casvm/core/spmd.hpp"
#include "casvm/core/train.hpp"

namespace casvm::core::detail {

struct MethodContext {
  const TrainConfig& config;
  const std::vector<data::Dataset>& initialBlocks;  // one per rank
  RankBoard& board;
};

/// Mark the end of the init phase: records this rank's virtual time and
/// lets rank 0 take a consistent traffic snapshot (via an unrecorded
/// instrumentation fence, so the measurement never shows up as traffic).
/// Callers must place their own comm.faultCheckpoint("train") after this
/// — placed AFTER the fence a rank that dies there has met every
/// communication obligation of the init phase; for the partitioned
/// methods the rest of training is purely local, which is what makes a
/// phase=train crash survivable (and retryable, when the checkpoint sits
/// inside the retry loop). It also gives zero-communication runs (RA-CA
/// casvm2) a deterministic crash point crash-at-op-N can never provide.
void markInitEnd(net::Comm& comm, const MethodContext& ctx);

/// Mark the end of the training phase for this rank.
void markTrainEnd(net::Comm& comm, const MethodContext& ctx);

/// Dis-SMO and its adaptive-shrinking variant (DisSmoShrink): one global
/// SMO solve in lock-step collectives, with periodic globally-agreed
/// shrink passes and an elected-row broadcast cache in the shrink variant.
void runDisSmo(net::Comm& comm, const MethodContext& ctx);
/// Parallel Block Minimization: per-rank warm-started block solves joined
/// by a global line search each round, plus pair-correction iterations.
void runPbm(net::Comm& comm, const MethodContext& ctx);
void runTree(net::Comm& comm, const MethodContext& ctx);
void runPartitioned(net::Comm& comm, const MethodContext& ctx);

/// Respawn entry for the proc transport (partitioned methods only): a
/// replacement worker re-derives its rank's partition and sub-model from
/// the newest checkpoints with NO collectives (peers are mid-solve and
/// will not re-enter one). `attempt` is the 1-based respawn count. Throws
/// net::RankCrash when no partition checkpoint exists — the rank then
/// falls through to the engine's degraded path.
void resumeRankLocal(net::Comm& comm, const MethodContext& ctx, int attempt);

/// Dispatch to the method body for `ctx.config.method`.
void runMethod(net::Comm& comm, const MethodContext& ctx);

/// Build the per-run TrainResult pieces derivable from the deposit board
/// (model, timing, iterations, per-rank detail). Traffic and RunStats are
/// filled by the caller, which owns the engine. `failures` lists ranks that
/// crashed under fault tolerance: their board slots are unfinished, so the
/// assembly routes the model around them and marks the result degraded.
/// `totalTrainRows` is the true training-set size, used as the covered-
/// fraction denominator: on the process transport a killed worker's
/// `board.samples` deposit dies with it, so summing board slots would
/// silently drop the dead partition from the total. Pass -1 to fall back
/// to the board sum (exact whenever every rank deposited).
TrainResult assembleFromBoard(const TrainConfig& config, RankBoard& board,
                              int P,
                              const std::vector<net::RankFailure>& failures = {},
                              long long totalTrainRows = -1);

/// Deterministic initial per-rank data placement for a method run.
std::vector<data::Dataset> placementFor(const data::Dataset& trainSet,
                                        const TrainConfig& config);

}  // namespace casvm::core::detail
