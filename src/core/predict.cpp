#include "casvm/core/predict.hpp"

#include "casvm/support/error.hpp"

namespace casvm::core {

DistributedPredictResult distributedPredict(const DistributedModel& model,
                                            const data::Dataset& testSet,
                                            net::CostModel cost) {
  CASVM_CHECK(model.numModels() >= 1, "empty distributed model");
  CASVM_CHECK(testSet.rows() > 0, "empty test set");
  const int P = static_cast<int>(model.numModels());

  constexpr int kQueryTag = 400;
  constexpr int kLabelTag = 401;

  DistributedPredictResult result;
  result.predictions.assign(testSet.rows(), 0);

  net::Engine engine(P, cost);
  result.runStats = engine.run([&](net::Comm& comm) {
    const int rank = comm.rank();
    if (rank == 0) {
      // Route each test sample to the owner of its nearest center
      // (Algorithm 6, prediction steps 1-2).
      std::vector<std::vector<std::size_t>> buckets(
          static_cast<std::size_t>(P));
      for (std::size_t i = 0; i < testSet.rows(); ++i) {
        buckets[model.route(testSet, i)].push_back(i);
      }
      for (int dst = 1; dst < P; ++dst) {
        const std::vector<std::byte> packed =
            testSet.pack(buckets[static_cast<std::size_t>(dst)]);
        comm.sendBytes(dst, kQueryTag, packed.data(), packed.size());
      }
      // Rank 0's own share.
      for (std::size_t i : buckets[0]) {
        result.predictions[i] = model.model(0).predictFor(testSet, i);
      }
      // Collect the labels (step 3's results coming home).
      for (int src = 1; src < P; ++src) {
        const std::vector<std::int8_t> labels =
            comm.recvVec<std::int8_t>(src, kLabelTag);
        const auto& bucket = buckets[static_cast<std::size_t>(src)];
        CASVM_CHECK(labels.size() == bucket.size(),
                    "prediction count mismatch");
        for (std::size_t j = 0; j < bucket.size(); ++j) {
          result.predictions[bucket[j]] = labels[j];
        }
      }
    } else {
      const data::Dataset queries =
          data::Dataset::unpack(comm.recvBytes(0, kQueryTag));
      std::vector<std::int8_t> labels(queries.rows());
      const solver::Model& mine = model.model(static_cast<std::size_t>(rank));
      for (std::size_t i = 0; i < queries.rows(); ++i) {
        labels[i] = mine.predictFor(queries, i);
      }
      comm.send(0, labels, kLabelTag);
    }
  });

  std::size_t correct = 0;
  for (std::size_t i = 0; i < testSet.rows(); ++i) {
    correct += (result.predictions[i] == testSet.label(i));
  }
  result.accuracy =
      static_cast<double>(correct) / static_cast<double>(testSet.rows());
  return result;
}

}  // namespace casvm::core
