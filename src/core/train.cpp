#include "casvm/core/train.hpp"

#include <algorithm>
#include <cstring>

#include "casvm/ckpt/state.hpp"
#include "casvm/ckpt/store.hpp"
#include "casvm/cluster/partition.hpp"
#include "casvm/support/checksum.hpp"
#include "casvm/support/error.hpp"
#include "board_codec.hpp"
#include "methods.hpp"

namespace casvm::core {

namespace {

/// Initial per-rank data placement, modelling a dataset that lives
/// distributed on a parallel filesystem (or, for RA-CA casvm1, staged on
/// one node). This happens outside the engine and is not charged to any
/// phase — it is where the data *starts*, not something the method does.
std::vector<data::Dataset> initialPlacement(const data::Dataset& trainSet,
                                            const TrainConfig& config) {
  const int P = config.processes;
  std::vector<data::Dataset> blocks(static_cast<std::size_t>(P));
  if (config.method == Method::RaCa && !config.raInitialDataOnRoot) {
    // casvm2: random even parts are already in place on each node.
    const cluster::Partition part =
        cluster::randomPartition(trainSet, P, config.seed);
    const auto groups = part.groups();
    for (int r = 0; r < P; ++r) {
      blocks[static_cast<std::size_t>(r)] =
          trainSet.subset(groups[static_cast<std::size_t>(r)]);
    }
  } else if (config.method == Method::RaCa) {
    // casvm1: everything starts on rank 0.
    blocks[0] = trainSet;
  } else if (config.method == Method::Pbm) {
    // PBM warm-starts a serial SMO on every block each round: random even
    // parts keep each block two-class (a contiguous slice of a sorted
    // dataset would hand a rank a single-class block it cannot solve).
    const cluster::Partition part =
        cluster::randomPartition(trainSet, P, config.seed);
    const auto groups = part.groups();
    for (int r = 0; r < P; ++r) {
      blocks[static_cast<std::size_t>(r)] =
          trainSet.subset(groups[static_cast<std::size_t>(r)]);
    }
  } else {
    // Even contiguous blocks, the standard distributed starting layout.
    const cluster::Partition part = cluster::blockPartition(trainSet, P);
    const auto groups = part.groups();
    for (int r = 0; r < P; ++r) {
      blocks[static_cast<std::size_t>(r)] =
          trainSet.subset(groups[static_cast<std::size_t>(r)]);
    }
  }
  return blocks;
}

template <typename T>
void appendScalar(std::vector<std::byte>& out, T v) {
  std::byte raw[sizeof(T)];
  std::memcpy(raw, &v, sizeof(T));
  out.insert(out.end(), raw, raw + sizeof(T));
}

/// Identity hash of (config, dataset) for checkpoint-directory validation.
/// Fields are appended individually (never whole structs, whose padding
/// bytes are indeterminate) so the fingerprint is deterministic.
std::uint64_t runFingerprint(const data::Dataset& trainSet,
                             const TrainConfig& config) {
  std::vector<std::byte> bytes;
  appendScalar(bytes, static_cast<std::uint32_t>(config.method));
  appendScalar(bytes, static_cast<std::int64_t>(config.processes));
  appendScalar(bytes, config.seed);
  appendScalar(bytes, static_cast<std::uint64_t>(config.kmeansMaxLoops));
  appendScalar(bytes, config.kmeansChangeThreshold);
  appendScalar(bytes, static_cast<std::uint8_t>(config.raInitialDataOnRoot));
  appendScalar(bytes, static_cast<std::int64_t>(config.cascadePasses));
  appendScalar(bytes, static_cast<std::uint8_t>(config.treeWarmStart));
  appendScalar(bytes, static_cast<std::uint8_t>(config.ratioBalance));
  const solver::SolverOptions& s = config.solver;
  appendScalar(bytes, static_cast<std::uint8_t>(s.kernel.type));
  appendScalar(bytes, s.kernel.gamma);
  appendScalar(bytes, s.kernel.a);
  appendScalar(bytes, s.kernel.r);
  appendScalar(bytes, static_cast<std::int64_t>(s.kernel.degree));
  appendScalar(bytes, s.C);
  appendScalar(bytes, s.tolerance);
  appendScalar(bytes, static_cast<std::uint64_t>(s.maxIterations));
  appendScalar(bytes, static_cast<std::uint8_t>(s.selection));
  appendScalar(bytes, s.positiveWeight);
  appendScalar(bytes, s.negativeWeight);
  appendScalar(bytes, static_cast<std::uint8_t>(s.shrinking));
  appendScalar(bytes, static_cast<std::uint64_t>(s.shrinkInterval));
  appendScalar(bytes, static_cast<std::uint64_t>(config.checkpointEvery));
  appendScalar(bytes, static_cast<std::int64_t>(config.pbmRounds));
  appendScalar(bytes, static_cast<std::uint64_t>(config.pbmInnerIterations));
  appendScalar(bytes, static_cast<std::int64_t>(config.pbmPairIterations));
  appendScalar(bytes, static_cast<std::uint8_t>(config.solverBackend));
  appendScalar(bytes, static_cast<std::uint64_t>(config.nystromLandmarks));
  appendScalar(bytes, static_cast<std::uint8_t>(config.nystromStrategy));
  appendScalar(bytes, config.nystromEigenFloor);
  appendScalar(bytes, static_cast<std::uint64_t>(trainSet.rows()));
  appendScalar(bytes, static_cast<std::uint64_t>(trainSet.cols()));
  appendScalar(bytes, static_cast<std::uint64_t>(trainSet.positives()));
  const std::uint32_t lo = support::crc32(bytes);
  const std::uint32_t hi = support::crc32(bytes, lo);
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

long long LayerStatsMaxOf(const std::vector<long long>& v) {
  long long best = 0;
  for (long long x : v) best = std::max(best, x);
  return best;
}

}  // namespace

const char* backendName(SolverBackend backend) {
  switch (backend) {
    case SolverBackend::Exact:
      return "exact";
    case SolverBackend::Nystrom:
      return "nystrom";
  }
  return "exact";
}

SolverBackend backendFromName(std::string_view name) {
  if (name == "exact") return SolverBackend::Exact;
  if (name == "nystrom") return SolverBackend::Nystrom;
  CASVM_CHECK(false, "unknown solver backend (expected exact|nystrom)");
  return SolverBackend::Exact;
}

long long LayerStats::maxIterations() const {
  return LayerStatsMaxOf(iterationsPerNode);
}

long long LayerStats::totalSVs() const {
  long long total = 0;
  for (long long s : svsPerNode) total += s;
  return total;
}

double LayerStats::maxSeconds() const {
  double best = 0.0;
  for (double s : secondsPerNode) best = std::max(best, s);
  return best;
}

long long LayerStats::maxSamples() const {
  return LayerStatsMaxOf(samplesPerNode);
}

TrainResult train(const data::Dataset& trainSet, const TrainConfig& config) {
  const int P = config.processes;
  CASVM_CHECK(P >= 1, "need at least one process");
  CASVM_CHECK(trainSet.rows() >= static_cast<std::size_t>(P),
              "fewer samples than processes");
  if (config.solverBackend == SolverBackend::Nystrom) {
    CASVM_CHECK(config.method != Method::Pbm,
                "PBM does not support the Nystrom backend: its replicated "
                "line search is defined over exact cross-block kernel rows");
    CASVM_CHECK(config.nystromLandmarks > 0,
                "the Nystrom backend needs at least one landmark");
  }

  // Checkpoint-directory identity: a fresh run stamps the directory with
  // the run's fingerprint; a resume refuses to blend state from a different
  // config or dataset into nonsense.
  if (config.checkpoints != nullptr) {
    CASVM_CHECK(config.checkpointEvery > 0,
                "checkpointEvery must be > 0 when checkpointing is enabled");
    ckpt::RunMeta meta;
    meta.fingerprint = runFingerprint(trainSet, config);
    meta.method = static_cast<std::uint32_t>(config.method);
    meta.processes = static_cast<std::uint32_t>(P);
    meta.rows = trainSet.rows();
    meta.cols = trainSet.cols();
    if (config.resume) {
      if (const auto payload =
              config.checkpoints->load("meta", ckpt::Kind::Meta)) {
        const ckpt::RunMeta prev = ckpt::decodeMeta(*payload);
        CASVM_CHECK(prev.fingerprint == meta.fingerprint &&
                        prev.method == meta.method &&
                        prev.processes == meta.processes &&
                        prev.rows == meta.rows && prev.cols == meta.cols,
                    "resume refused: the checkpoint directory was written "
                    "by a different run (config/dataset fingerprint "
                    "mismatch)");
      }
    }
    config.checkpoints->save("meta", ckpt::Kind::Meta, ckpt::encodeMeta(meta));
  } else {
    CASVM_CHECK(!config.resume,
                "resume requested without a checkpoint store");
  }

  const std::vector<data::Dataset> blocks = initialPlacement(trainSet, config);
  RankBoard board(P);
  detail::MethodContext mctx{config, blocks, board};

  net::Engine engine(P, config.cost);
  engine.setFaultPlan(config.faults);
  engine.setWatchdogSeconds(config.watchdogSeconds);
  engine.setTraceRecorder(config.trace);
  // Partitioned methods train P fully independent sub-SVMs, so a crashed
  // rank only costs its own partition; tree methods and Dis-SMO need every
  // rank and must fail fast instead.
  engine.setTolerateRankFailures(isPartitionedMethod(config.method));
  engine.setTransport(config.transport, config.transportTuning);
  if (config.transport == net::TransportKind::Proc) {
    // Workers are separate processes: board writes die with the worker, so
    // each rank ships its slots back through the engine's result channel.
    net::Engine::ResultChannel channel;
    channel.serialize = [&board](int rank) {
      return detail::encodeBoardSlot(board, rank);
    };
    channel.absorb = [&board](int rank, const std::vector<std::byte>& bytes) {
      detail::absorbBoardSlot(board, rank, bytes);
    };
    engine.setResultChannel(std::move(channel));
    engine.setSupervisorLogPath(config.supervisorLog);
    // A killed worker can be respawned against the newest agreed
    // checkpoint generation — but only for the partitioned methods, whose
    // training phase is collective-free (the checkpoint store is what the
    // replacement resumes from).
    if (config.checkpoints != nullptr && config.rankRetries > 0 &&
        isPartitionedMethod(config.method)) {
      engine.setRespawnBudget(config.rankRetries);
      engine.setRespawnFn([&mctx](net::Comm& comm, int attempt) {
        detail::resumeRankLocal(comm, mctx, attempt);
      });
    }
  }
  net::RunStats stats = engine.run(
      [&](net::Comm& comm) { detail::runMethod(comm, mctx); });

  CASVM_CHECK(stats.failures.size() < static_cast<std::size_t>(P),
              "every rank crashed — no surviving partition to build a "
              "model from");

  TrainResult out = detail::assembleFromBoard(
      config, board, P, stats.failures,
      static_cast<long long>(trainSet.rows()));
  out.runStats = stats;
  out.wallSeconds = stats.wallSeconds;

  // --- traffic ----------------------------------------------------------------
  out.initTraffic = board.initSnapshot;
  if (out.initTraffic.size == 0) {
    // Zero-communication path never snapshotted; synthesize an empty one.
    out.initTraffic.size = stats.size;
    out.initTraffic.bytes.assign(
        static_cast<std::size_t>(stats.size) * stats.size, 0);
    out.initTraffic.ops.assign(
        static_cast<std::size_t>(stats.size) * stats.size, 0);
  }
  out.trainTraffic = stats.traffic.since(out.initTraffic);
  return out;
}

namespace detail {

TrainResult assembleFromBoard(const TrainConfig& config, RankBoard& board,
                              int P,
                              const std::vector<net::RankFailure>& failures,
                              long long totalTrainRows) {
  TrainResult out;
  out.method = config.method;

  // --- fault-tolerance bookkeeping ------------------------------------------
  // A crashed rank's board slots past its crash point were never written:
  // its model is empty, its center is empty, its trainEndVirtual is 0.
  // Everything below must route around those holes.
  std::vector<char> survived(static_cast<std::size_t>(P), 1);
  for (const net::RankFailure& f : failures) {
    survived[static_cast<std::size_t>(f.rank)] = 0;
    out.failedRanks.push_back(f.rank);
  }
  std::sort(out.failedRanks.begin(), out.failedRanks.end());
  out.degraded = !failures.empty();

  // --- recovery bookkeeping -------------------------------------------------
  // Ranks that crashed but were brought back by in-run retry are NOT
  // failures: their partitions are covered and the run is not degraded on
  // their account.
  out.retriesPerRank.assign(board.retries.begin(), board.retries.end());
  out.resumed = config.resume;
  for (int r = 0; r < P; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    if (board.recovered[ur] != 0) out.recoveredRanks.push_back(r);
    out.checkpointsLoaded +=
        static_cast<std::size_t>(board.checkpointsLoaded[ur]);
  }

  // --- model assembly ------------------------------------------------------
  if (isGlobalMethod(config.method)) {
    data::Dataset svs;
    std::vector<double> alphaY;
    for (int r = 0; r < P; ++r) {
      const solver::Model& fragment = board.models[static_cast<std::size_t>(r)];
      svs = data::Dataset::concat(svs, fragment.supportVectors());
      alphaY.insert(alphaY.end(), fragment.alphaY().begin(),
                    fragment.alphaY().end());
    }
    out.model = DistributedModel::single(solver::Model(
        config.solver.kernel, std::move(svs), std::move(alphaY),
        board.models[0].bias()));
  } else if (isTreeMethod(config.method)) {
    out.model = DistributedModel::single(board.models[0]);
  } else {
    // Partitioned methods: keep the surviving sub-models only. Prediction
    // routes by nearest center, so dropping a (model, center) pair sends
    // that partition's queries to the nearest surviving neighbour.
    std::vector<solver::Model> models;
    std::vector<std::vector<float>> centers;
    long long totalSamples = 0;
    long long coveredSamples = 0;
    for (int r = 0; r < P; ++r) {
      const auto ur = static_cast<std::size_t>(r);
      totalSamples += board.samples[ur];
      out.coverage.push_back(PartitionCoverage{
          r, board.samples[ur], survived[ur] != 0});
      if (survived[ur] != 0) {
        coveredSamples += board.samples[ur];
        models.push_back(board.models[ur]);
        centers.push_back(board.centers[ur]);
      }
    }
    // On the process transport a SIGKILLed rank never deposited its
    // sample count, so the board sum under-reports the total; the caller
    // passes the true dataset size to keep the fraction honest.
    if (totalTrainRows >= 0) totalSamples = totalTrainRows;
    if (totalSamples > 0) {
      out.coveredFraction =
          static_cast<double>(coveredSamples) / static_cast<double>(totalSamples);
    }
    out.model = DistributedModel::routed(std::move(models), std::move(centers));
  }

  // --- timing ---------------------------------------------------------------
  for (int r = 0; r < P; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    out.initSeconds = std::max(out.initSeconds, board.initEndVirtual[ur]);
    if (survived[ur] == 0) continue;  // dead rank never marked train end
    out.trainSeconds = std::max(
        out.trainSeconds,
        board.trainEndVirtual[ur] - board.initEndVirtual[ur]);
  }

  // --- per-rank detail -------------------------------------------------------
  out.samplesPerRank = board.samples;
  out.svsPerRank = board.svs;
  out.positivesPerRank = board.positives;
  out.trainSecondsPerRank.resize(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    out.trainSecondsPerRank[ur] =
        survived[ur] != 0
            ? board.trainEndVirtual[ur] - board.initEndVirtual[ur]
            : 0.0;
  }
  out.kmeansLoops = *std::max_element(board.kmeansLoops.begin(),
                                      board.kmeansLoops.end());

  // --- iterations ------------------------------------------------------------
  if (config.method == Method::DisSmo ||
      config.method == Method::DisSmoShrink) {
    // Lock-step global iterations: every rank executed the same count, so
    // the total IS the critical path (rank 0's counter is authoritative).
    out.iterationsPerRank = board.iterations;
    out.totalIterations = board.iterations[0];
    out.criticalIterations = board.iterations[0];
  } else if (config.method == Method::Pbm) {
    // Block solves run in parallel per rank; the pair corrections are
    // lock-step global iterations shared by everyone (rank 0's counter).
    out.iterationsPerRank = board.iterations;
    out.pairIterations = board.auxIterations[0];
    long long maxBlock = 0;
    for (long long it : board.iterations) {
      out.totalIterations += it;
      maxBlock = std::max(maxBlock, it);
    }
    out.totalIterations += board.auxIterations[0];
    out.criticalIterations = maxBlock + board.auxIterations[0];
  } else if (isTreeMethod(config.method)) {
    int maxLayer = 0;
    for (const auto& records : board.layerRecords) {
      for (const auto& rec : records) maxLayer = std::max(maxLayer, rec.layer);
    }
    for (int layer = 1; layer <= maxLayer; ++layer) {
      LayerStats ls;
      ls.layer = layer;
      for (int r = 0; r < P; ++r) {
        for (const auto& rec : board.layerRecords[static_cast<std::size_t>(r)]) {
          if (rec.layer != layer) continue;
          ++ls.nodesUsed;
          ls.samplesPerNode.push_back(rec.samples);
          ls.iterationsPerNode.push_back(rec.iterations);
          ls.svsPerNode.push_back(rec.svs);
          ls.secondsPerNode.push_back(rec.seconds);
          out.totalIterations += rec.iterations;
        }
      }
      out.criticalIterations += ls.maxIterations();
      out.layers.push_back(std::move(ls));
    }
  } else {
    out.iterationsPerRank = board.iterations;
    for (long long it : board.iterations) {
      out.totalIterations += it;
      out.criticalIterations = std::max(out.criticalIterations, it);
    }
  }

  // --- shrinking / caching detail (DisSmoShrink, Pbm; inert elsewhere) -----
  out.shrinkEngagedIteration = board.shrinkEngagedIter[0];
  for (long long skipped : board.rowBcastsSkipped) {
    out.electedRowBcastsSkipped += skipped;
  }

  return out;
}

/// Deterministic initial data placement, shared with the group-parallel
/// multiclass trainer (every rank recomputes the same placement locally).
std::vector<data::Dataset> placementFor(const data::Dataset& trainSet,
                                        const TrainConfig& config) {
  return initialPlacement(trainSet, config);
}

void runMethod(net::Comm& comm, const MethodContext& ctx) {
  comm.faultCheckpoint("init");
  switch (ctx.config.method) {
    case Method::DisSmo:
    case Method::DisSmoShrink:
      runDisSmo(comm, ctx);
      break;
    case Method::Pbm:
      runPbm(comm, ctx);
      break;
    case Method::Cascade:
    case Method::DcSvm:
    case Method::DcFilter:
      runTree(comm, ctx);
      break;
    default:
      runPartitioned(comm, ctx);
      break;
  }
}

}  // namespace detail

}  // namespace casvm::core
