// Parallel Block Minimization (Hsieh, Si & Dhillon 2016) — the middle rung
// of the communication ladder between Dis-SMO (a collective round per SMO
// iteration) and the partitioned CA-SVM family (no training communication).
//
// Each outer round, every rank runs a warm-started serial SMO on its own
// block with the other blocks' alphas frozen, proposing a direction
// Delta = alpha_block_new - alpha_block_old. The ranks then take one
// GLOBAL line-search step alpha += beta * Delta along the combined
// direction: for the concave dual F(alpha + beta*Delta) = F + beta*g -
// 1/2 beta^2 h with
//     g = sum_i Delta_i dF/dalpha_i = -sum_i c_i f_i   (c_i = y_i Delta_i)
//     h = sum_ij c_i c_j K(x_i, x_j)   over the changed samples,
// so beta* = clamp(g/h, 0, 1). g needs one scalar allreduce; h is computed
// identically on every rank from the changed rows. Rows are immutable, so
// a replicated GlobalRowStore makes each sample's features cross the wire
// at most once for the whole run: the per-round allgatherv ships
// (key, coefficient) pairs for every changed sample but feature rows only
// for samples the store has never seen — the changed sets of consecutive
// warm-started rounds overlap heavily (the same support vectors keep
// moving), so steady-state round traffic is O(s) words, not O(s*n).
// Since every block's SMO preserves its own sum(y_i alpha_i), any
// beta in [0,1] keeps the global equality constraint intact, and concavity
// of F guarantees g >= 0 (each block improved F, so the combined direction
// is an ascent direction). With P = 1 the single "block" is the whole
// problem: the KKT multiplier signs give grad F(alpha*) . Delta >= 0 at
// the block optimum, hence beta* >= 1 clamps to exactly 1 and round 0
// reproduces the serial solve.
//
// Block solves cannot move mass across blocks (each preserves its local
// equality sum), so each round finishes with a few global
// maximal-violating-pair corrections — plain Dis-SMO iterations — and a
// pure pair-correction tail polishes to the global KKT conditions after
// the rounds are spent.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "global_common.hpp"
#include "methods.hpp"
#include "casvm/ckpt/state.hpp"
#include "casvm/ckpt/store.hpp"
#include "casvm/core/pbm_curvature.hpp"
#include "casvm/obs/trace.hpp"
#include "casvm/support/error.hpp"

namespace casvm::core::detail {

void runPbm(net::Comm& comm, const MethodContext& ctx) {
  // Defense in depth — train() rejects this combination up front.
  CASVM_CHECK(ctx.config.solverBackend != SolverBackend::Nystrom,
              "PBM does not support the Nystrom backend: its replicated "
              "line search is defined over exact cross-block kernel rows");
  const int rank = comm.rank();
  const auto urank = static_cast<std::size_t>(rank);
  const data::Dataset& local = ctx.initialBlocks[urank];
  RankBoard& board = ctx.board;

  board.samples[urank] = static_cast<long long>(local.rows());
  board.positives[urank] = static_cast<long long>(local.positives());

  // Init phase: blocks are pre-placed; nothing to distribute.
  markInitEnd(comm, ctx);
  comm.faultCheckpoint("train");

  const solver::SolverOptions& opts = ctx.config.solver;
  const double cPos = opts.C * opts.positiveWeight;
  const double cNeg = opts.C * opts.negativeWeight;
  const double boundEps = kGlobalBoundSlack * std::max(cPos, cNeg);
  const double tau = opts.tolerance;
  const kernel::Kernel kern(opts.kernel);
  const std::size_t mLocal = local.rows();
  const std::size_t n = local.cols();

  const GlobalDual prob{local, kern, cPos, cNeg, boundEps, tau};

  std::vector<double> alpha(mLocal, 0.0);
  std::vector<double> f(mLocal);
  for (std::size_t i = 0; i < mLocal; ++i) f[i] = -double(local.label(i));

  long long blockIters = 0;  ///< serial SMO iterations inside block solves
  long long pairIters = 0;   ///< global pair-correction iterations
  std::size_t startRound = 0;

  ckpt::CheckpointStore* store = ctx.config.checkpoints;
  const std::string solverName = "solver.r" + std::to_string(rank);

  if (store != nullptr && ctx.config.resume) {
    // Same agreed-generation protocol as the Dis-SMO resume: snapshots are
    // written in lock-step at the top of each round, so the allreduce-min
    // of the newest round every rank holds is restorable everywhere (the
    // store keeps two generations), and any rank missing it vetoes.
    std::vector<ckpt::PbmRoundState> snaps;
    for (const auto& payload :
         store->loadGenerations(solverName, ckpt::Kind::PbmRound)) {
      ckpt::PbmRoundState snap = ckpt::decodePbmRound(payload);
      if (snap.alpha.size() == mLocal) snaps.push_back(std::move(snap));
    }
    long long newest = -1;
    for (const auto& s : snaps) {
      newest = std::max(newest, static_cast<long long>(s.round));
    }
    const long long agreed =
        comm.allreduce(newest, [](long long a, long long b) {
          return a < b ? a : b;
        });
    if (agreed > 0) {
      const ckpt::PbmRoundState* chosen = nullptr;
      for (const auto& s : snaps) {
        if (static_cast<long long>(s.round) == agreed) chosen = &s;
      }
      int canUse = chosen != nullptr ? 1 : 0;
      canUse = comm.allreduce(canUse, [](int a, int b) { return a < b ? a : b; });
      if (canUse != 0) {
        alpha = chosen->alpha;
        f = chosen->f;
        blockIters = chosen->blockIterations;
        pairIters = chosen->pairIterations;
        startRound = chosen->round;
        ++board.checkpointsLoaded[urank];
      }
    }
  }

  const long long globalM = comm.allreduceSum(static_cast<long long>(mLocal));
  const std::size_t maxIters =
      opts.maxIterations > 0
          ? opts.maxIterations
          : static_cast<std::size_t>(100 * globalM + 10000);

  const int rounds = std::max(1, ctx.config.pbmRounds);
  const int pairCap = std::max(0, ctx.config.pbmPairIterations);

  std::vector<float> xHigh(n), xLow(n);
  double bHigh = 0.0, bLow = 0.0;
  bool converged = false;
  bool sawThresholds = false;

  // Replicated immutable-row cache shared by the round sync and the pair
  // corrections. Deliberately not checkpointed: a resume rebuilds it empty
  // and only the communication volume differs, never the iterates.
  GlobalRowStore rowStore(n);

  obs::Lane* lane = comm.traceLane();
  std::optional<PhaseSpan> solvePhase;
  solvePhase.emplace(comm, "solve");

  for (std::size_t round = startRound;
       round < static_cast<std::size_t>(rounds) && !converged; ++round) {
    // Top-of-round snapshot (rounds are coarse, so every round is saved),
    // durable before the fault checkpoint — a phase=solve crash resumes
    // from exactly this state. Skipped at round 0 and the resume round.
    if (store != nullptr && round != 0 && round != startRound) {
      ckpt::PbmRoundState snap;
      snap.round = round;
      snap.blockIterations = blockIters;
      snap.pairIterations = pairIters;
      snap.alpha = alpha;
      snap.f = f;
      store->save(solverName, ckpt::Kind::PbmRound,
                  ckpt::encodePbmRound(snap));
      comm.faultCheckpoint("solve");
    }

    // --- block solve: warm-started serial SMO on the owned rows ----------
    // The resume snapshot restores alpha AND the gradient f verbatim: with
    // the other blocks frozen, the globally maintained f restricted to the
    // local rows IS the correct local gradient, and rebuilding it from the
    // local alphas alone would wrongly forget the other blocks' terms.
    std::vector<double> delta(mLocal, 0.0);
    const bool solvable =
        mLocal >= 2 && local.positives() > 0 && local.negatives() > 0;
    if (solvable) {
      solver::SolverOptions sopts = opts;
      sopts.trace = nullptr;  // rank-level progress is traced below
      sopts.snapshotSink = nullptr;
      sopts.snapshotInterval = 0;
      if (ctx.config.pbmInnerIterations > 0) {
        sopts.maxIterations = ctx.config.pbmInnerIterations;
      }
      solver::SolverSnapshot warm;
      warm.iteration = 0;
      warm.everShrunk = false;
      warm.alpha = alpha;
      warm.f = f;
      warm.active.resize(mLocal);
      std::iota(warm.active.begin(), warm.active.end(), 0);
      sopts.resumeFrom = &warm;
      const solver::SolverResult result = solver::SmoSolver(sopts).solve(local);
      blockIters += static_cast<long long>(result.iterations);
      for (std::size_t i = 0; i < mLocal; ++i) {
        delta[i] = result.alpha[i] - alpha[i];
      }
    }

    // --- global line search along the combined direction ------------------
    // (key, coefficient) pairs travel for every changed sample; feature
    // rows and self-dots only for samples the replicated store hasn't seen
    // (every rank mirrors every row it ever gathered, so the dedup decision
    // is identical everywhere).
    std::vector<std::size_t> changed;
    for (std::size_t i = 0; i < mLocal; ++i) {
      if (delta[i] != 0.0) changed.push_back(i);
    }
    std::vector<long long> keys(changed.size());
    std::vector<double> coefs(changed.size());  // c_i = y_i * Delta_i
    std::vector<long long> newKeys;
    std::vector<float> newRowsFlat;
    std::vector<double> newAux;  // [selfDot, y, pre-step alpha] per new row
    double gLocal = 0.0;
    for (std::size_t k = 0; k < changed.size(); ++k) {
      const std::size_t i = changed[k];
      keys[k] = rank * kRankStride + static_cast<long long>(i);
      coefs[k] = delta[i] * double(local.label(i));
      gLocal -= coefs[k] * f[i];  // Delta_i * dF/dalpha_i with dF = -y_i f_i
      if (!rowStore.contains(keys[k])) {
        newKeys.push_back(keys[k]);
        const std::size_t off = newRowsFlat.size();
        newRowsFlat.resize(off + n);
        local.copyRowDense(i, std::span<float>(newRowsFlat).subspan(off, n));
        newAux.push_back(local.selfDot(i));
        newAux.push_back(double(local.label(i)));
        newAux.push_back(alpha[i]);
      }
    }
    const double g = comm.allreduceSum(gLocal);
    const std::vector<long long> allKeys = comm.allgatherv(keys);
    const std::vector<double> allCoefs = comm.allgatherv(coefs);
    const std::vector<long long> allNewKeys = comm.allgatherv(newKeys);
    const std::vector<float> allNewRows = comm.allgatherv(newRowsFlat);
    const std::vector<double> allNewAux = comm.allgatherv(newAux);
    const std::size_t sGlobal = allKeys.size();

    // Mirror the first-time samples (identical allgatherv order
    // everywhere; the shipped pre-step alpha seeds the mirror and the
    // replicated beta update below brings it current), then resolve every
    // changed row to a borrowed view. A row missing from a full store is
    // still in this round's gathered payload. No inserts happen between
    // here and the last use of these pointers.
    const std::span<const float> fresh(allNewRows);
    for (std::size_t k = 0; k < allNewKeys.size(); ++k) {
      rowStore.insert(allNewKeys[k], fresh.subspan(k * n, n),
                      allNewAux[k * 3], allNewAux[k * 3 + 1],
                      allNewAux[k * 3 + 2]);
    }
    std::vector<const float*> rowPtr(sGlobal);
    std::vector<double> rowDot(sGlobal);
    {
      std::unordered_map<long long, std::size_t> freshIdx;
      for (std::size_t k = 0; k < allNewKeys.size(); ++k) {
        freshIdx.emplace(allNewKeys[k], k);
      }
      for (std::size_t j = 0; j < sGlobal; ++j) {
        if (rowStore.lookup(allKeys[j], rowPtr[j], rowDot[j])) continue;
        const auto it = freshIdx.find(allKeys[j]);
        CASVM_CHECK(it != freshIdx.end(),
                    "changed row neither cached nor shipped this round");
        rowPtr[j] = allNewRows.data() + it->second * n;
        rowDot[j] = allNewAux[it->second * 3];
      }
    }
    const auto rowOf = [&](std::size_t j) {
      return std::span<const float>(rowPtr[j], n);
    };

    // Curvature h = c^T K c, distributed: each rank evaluates only its
    // contiguous share of the per-sample terms (O(s^2 / P) kernel
    // evaluations instead of the full O(s^2) replicated on everyone), one
    // allgatherv concatenates the terms back in ascending-a order, and the
    // serial left-to-right term sum makes h bitwise-identical on every
    // rank — and invariant in P (see pbm_curvature.hpp).
    const auto [aBegin, aEnd] =
        pbmCurvatureBlock(sGlobal, rank, comm.size());
    const std::vector<double> myTerms = pbmCurvatureTerms(
        kern, allCoefs, rowOf, rowDot, aBegin, aEnd);
    const std::vector<double> allTerms = comm.allgatherv(myTerms);
    CASVM_ASSERT(allTerms.size() == sGlobal,
                 "curvature terms lost in the allgatherv");
    const double h = pbmCurvatureSum(allTerms);
    const double beta =
        h > 1e-300 ? std::clamp(g / h, 0.0, 1.0) : (g > 0.0 ? 1.0 : 0.0);

    if (sGlobal > 0 && beta > 0.0) {
      // Apply the step to the owned alphas, snapped to the per-class box
      // against floating-point drift (a full beta = 1 step lands the
      // block-solver's already-snapped values eps-close to the bound).
      for (std::size_t i : changed) {
        double a = alpha[i] + beta * delta[i];
        const double ci = prob.boxOf(i);
        if (a < boundEps) a = 0.0;
        if (a > ci - boundEps) a = ci;
        alpha[i] = a;
      }
      // Replicated mirror refresh: y * coef is exactly Delta (y in
      // {-1, +1}), so this recomputes the owner's snapped value bit for
      // bit on every rank for every mirrored changed sample.
      for (std::size_t j = 0; j < sGlobal; ++j) {
        double yj = 0.0, aj = 0.0;
        if (!rowStore.alphaOf(allKeys[j], yj, aj)) continue;
        double a = aj + beta * yj * allCoefs[j];
        const double cj = prob.boxFor(yj);
        if (a < boundEps) a = 0.0;
        if (a > cj - boundEps) a = cj;
        rowStore.updateAlpha(allKeys[j], a);
      }
      // Gradient refresh over ALL owned rows from the gathered global
      // direction, with the raw beta-scaled coefficients (the eps-level
      // snap above is deliberately not folded in — same policy as the
      // serial solver's gradient update).
      for (std::size_t i = 0; i < mLocal; ++i) {
        double fi = f[i];
        for (std::size_t j = 0; j < sGlobal; ++j) {
          fi += beta * allCoefs[j] * kern.evalWith(local, i, rowOf(j), rowDot[j]);
        }
        f[i] = fi;
      }
    }

    if (lane != nullptr) {
      lane->progress(virtualNow(comm), static_cast<std::int64_t>(round),
                     static_cast<std::int64_t>(sGlobal),
                     sawThresholds ? bLow - bHigh : 0.0, beta);
    }

    // --- pair-correction: move equality mass across blocks ----------------
    // A few plain Dis-SMO iterations per round; every outcome (stepped,
    // converged, degenerate) is derived from allreduced values, so all
    // ranks leave the loop together. A degenerate pair while blocks are
    // unconverged is usually freed by the next block solve — break, don't
    // give up.
    for (int p = 0; p < pairCap; ++p) {
      const PairStepResult step = globalPairStep(
          comm, prob, alpha, f, xHigh, xLow, bHigh, bLow, &rowStore);
      sawThresholds = true;
      if (step == PairStepResult::Converged) {
        converged = true;
        break;
      }
      if (step == PairStepResult::Degenerate) break;
      ++pairIters;
    }
  }

  // Rounds exhausted without meeting the global KKT conditions: polish
  // with the pure pair-correction tail (plain Dis-SMO), capped by the
  // global iteration budget.
  while (!converged && static_cast<std::size_t>(pairIters) < maxIters) {
    const PairStepResult step = globalPairStep(
        comm, prob, alpha, f, xHigh, xLow, bHigh, bLow, &rowStore);
    sawThresholds = true;
    if (step == PairStepResult::Converged) {
      converged = true;
      break;
    }
    if (step == PairStepResult::Degenerate) break;
    ++pairIters;
    if (lane != nullptr && pairIters % 512 == 0) {
      lane->progress(virtualNow(comm), pairIters,
                     static_cast<std::int64_t>(mLocal), bLow - bHigh, 1.0);
    }
  }

  // The last pair scan left the election thresholds in bHigh/bLow; they
  // are finite whenever both candidate sets are nonempty, and the
  // distributed fallback covers the degenerate cases.
  ensureFiniteThresholds(comm, local, f, bHigh, bLow);

  solvePhase.reset();  // end the "solve" span before train-end bookkeeping

  markTrainEnd(comm, ctx);

  // Deposit this rank's model fragment; the driver concatenates fragments
  // into the single global model. Every rank saw the same final
  // thresholds, so any rank's bias is authoritative.
  const double bias = -(bHigh + bLow) / 2.0;
  std::vector<std::size_t> svIdx;
  std::vector<double> alphaY;
  for (std::size_t i = 0; i < mLocal; ++i) {
    if (alpha[i] > 0.0) {
      svIdx.push_back(i);
      alphaY.push_back(alpha[i] * double(local.label(i)));
    }
  }
  board.models[urank] = solver::Model(opts.kernel, local.subset(svIdx),
                                      std::move(alphaY), bias);
  board.iterations[urank] = blockIters;
  board.auxIterations[urank] = pairIters;
  board.svs[urank] = static_cast<long long>(svIdx.size());
  board.rowBcastsSkipped[urank] = rowStore.hits();
}

}  // namespace casvm::core::detail
