#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "casvm/net/comm.hpp"
#include "casvm/obs/trace.hpp"
#include "casvm/support/log.hpp"
#include "casvm/support/timer.hpp"

namespace casvm::net {

namespace {

/// Cascaded-failure messages: symptoms of someone else's death, never the
/// root cause the user should see.
bool isCascadeError(const std::string& what) {
  return what.find("run aborted") != std::string::npos;
}

/// Errors that directly name an injected fault (either the RankCrash
/// itself or a peer woken by failSource) make the best root cause.
bool namesInjectedFault(const std::string& what) {
  return what.find("injected fault") != std::string::npos;
}

}  // namespace

Engine::Engine(int size, CostModel cost) : size_(size), cost_(cost) {
  CASVM_CHECK(size > 0, "engine needs at least one rank");
}

RunStats Engine::run(const std::function<void(Comm&)>& fn) {
  std::optional<FaultInjector> injector;
  if (!faultPlan_.empty()) injector.emplace(faultPlan_, size_);
  World world(size_, cost_, injector ? &*injector : nullptr);
  std::vector<VirtualClock> clocks(static_cast<std::size_t>(size_));
  std::vector<std::optional<std::string>> errors(
      static_cast<std::size_t>(size_));
  std::vector<std::optional<RankFailure>> crashes(
      static_cast<std::size_t>(size_));
  std::vector<std::atomic<char>> finished(static_cast<std::size_t>(size_));
  for (auto& f : finished) f.store(0, std::memory_order_relaxed);
  std::atomic<bool> failed{false};

  // --- deadlock watchdog ---------------------------------------------------
  // A dropped message under a collective leaves every rank parked in a
  // receive with nothing in flight; without this thread the run (and
  // ctest) would hang forever. Deadlock test: every unfinished rank is
  // blocked in take() AND the world-wide mailbox op count has not moved
  // for watchdogSeconds_ of wall time. Blocked ranks cannot generate
  // progress, so the condition is stable once true; the stall timer
  // absorbs the benign race where a just-delivered message has not woken
  // its receiver yet.
  std::mutex wdMutex;
  std::condition_variable wdCv;
  bool wdStop = false;
  std::string watchdogReport;
  std::thread watchdog;
  if (watchdogSeconds_ > 0.0) {
    watchdog = std::thread([&] {
      constexpr auto kTick = std::chrono::milliseconds(20);
      double stalledSeconds = 0.0;
      std::uint64_t lastOps = ~std::uint64_t{0};
      std::unique_lock<std::mutex> lock(wdMutex);
      while (!wdCv.wait_for(lock, kTick, [&] { return wdStop; })) {
        std::uint64_t ops = 0;
        bool allBlocked = true;
        int running = 0;
        for (int r = 0; r < size_; ++r) {
          ops += world.mailbox(r).opCount();
          if (finished[static_cast<std::size_t>(r)].load(
                  std::memory_order_acquire)) {
            continue;
          }
          ++running;
          if (!world.mailbox(r).waitState().waiting) allBlocked = false;
        }
        if (running == 0) break;
        if (allBlocked && ops == lastOps) {
          stalledSeconds +=
              std::chrono::duration<double>(kTick).count();
        } else {
          stalledSeconds = 0.0;
        }
        lastOps = ops;
        if (stalledSeconds < watchdogSeconds_) continue;

        // Deadlock: dump every rank's wait target and every mailbox's
        // pending (src, tag) queues, then unwind the run.
        std::ostringstream report;
        report << "deadlock watchdog: no message progress for "
               << stalledSeconds
               << "s with every running rank blocked in a receive";
        for (int r = 0; r < size_; ++r) {
          report << "\n  rank " << r << ": ";
          if (finished[static_cast<std::size_t>(r)].load(
                  std::memory_order_acquire)) {
            if (crashes[static_cast<std::size_t>(r)]) {
              report << "crashed ("
                     << crashes[static_cast<std::size_t>(r)]->reason << ")";
            } else {
              report << "finished";
            }
            continue;
          }
          const Mailbox::WaitState ws = world.mailbox(r).waitState();
          if (ws.waiting) {
            report << "blocked waiting on (src=" << ws.src
                   << ", tag=" << ws.tag << ")";
          } else {
            report << "running";
          }
          const auto queues = world.mailbox(r).pendingQueues();
          if (queues.empty()) {
            report << "; mailbox empty";
          } else {
            report << "; mailbox pending:";
            for (const auto& q : queues) {
              report << " (src=" << q.src << ", tag=" << q.tag << ") x"
                     << q.depth;
            }
          }
        }
        if (injector) {
          report << "\n  active fault plan: " << injector->plan().describe();
        }
        watchdogReport = report.str();
        failed = true;
        world.abortAll();
        break;
      }
    });
  }

  // Lanes are created up front on the engine thread so rank threads never
  // contend on the recorder's mutex inside the run.
  std::vector<obs::Lane*> lanes(static_cast<std::size_t>(size_), nullptr);
  if (trace_ != nullptr) {
    for (int r = 0; r < size_; ++r) {
      lanes[static_cast<std::size_t>(r)] =
          &trace_->addLane(r, 0, "rank " + std::to_string(r));
    }
  }

  WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      VirtualClock& clock = clocks[static_cast<std::size_t>(r)];
      if (injector) clock.setComputeScale(injector->computeScale(r));
      clock.start();
      Comm comm(&world, r, &clock);
      comm.setTraceLane(lanes[static_cast<std::size_t>(r)]);
      try {
        fn(comm);
        clock.sampleCompute();
      } catch (const RankCrash& e) {
        clock.sampleCompute();
        if (tolerateRankFailures_) {
          // Survivable by construction for communication-avoiding methods:
          // record the death, poison this rank as a message source, and
          // let everyone else run to completion.
          crashes[static_cast<std::size_t>(r)] = RankFailure{r, e.what()};
          world.markFailed(r, e.what());
        } else {
          errors[static_cast<std::size_t>(r)] = e.what();
          failed = true;
          world.abortAll();
        }
      } catch (const std::exception& e) {
        errors[static_cast<std::size_t>(r)] = e.what();
        failed = true;
        world.abortAll();
      }
      finished[static_cast<std::size_t>(r)].store(1,
                                                  std::memory_order_release);
    });
  }
  for (auto& t : threads) t.join();
  // Read the wall timer before waiting on the watchdog: its up-to-20ms
  // shutdown tick is engine overhead, not part of the run being measured.
  const double wallSeconds = wall.seconds();

  if (watchdog.joinable()) {
    {
      std::lock_guard<std::mutex> lock(wdMutex);
      wdStop = true;
    }
    wdCv.notify_all();
    watchdog.join();
  }

  if (failed) {
    if (!watchdogReport.empty()) {
      throw Error("engine run failed: " + watchdogReport);
    }
    // Prefer a message naming the injected fault, then any non-cascade
    // root cause, over the cascaded "run aborted" ones.
    std::string best;
    bool bestNamesFault = false;
    bool bestIsCascade = true;
    for (int r = 0; r < size_; ++r) {
      const auto& err = errors[static_cast<std::size_t>(r)];
      if (!err) continue;
      const bool cascade = isCascadeError(*err);
      const bool fault = namesInjectedFault(*err);
      const bool better =
          best.empty() || (fault && !bestNamesFault) ||
          (!bestNamesFault && bestIsCascade && !cascade);
      if (better) {
        best = "rank " + std::to_string(r) + ": " + *err;
        bestNamesFault = fault;
        bestIsCascade = cascade;
        if (fault) break;
      }
    }
    // A tolerated crash that still sank the run (e.g. inside a collective)
    // is the real root cause; name it if the errors did not already.
    if (!bestNamesFault) {
      for (const auto& crash : crashes) {
        if (!crash) continue;
        best += (best.empty() ? "" : "; after ") + crash->reason;
        break;
      }
    }
    throw Error("engine run failed: " + best);
  }

  RunStats stats;
  stats.size = size_;
  stats.wallSeconds = wallSeconds;
  stats.computeSeconds.reserve(static_cast<std::size_t>(size_));
  stats.commSeconds.reserve(static_cast<std::size_t>(size_));
  stats.waitSeconds.reserve(static_cast<std::size_t>(size_));
  for (const auto& clock : clocks) {
    stats.computeSeconds.push_back(clock.computeSeconds());
    stats.commSeconds.push_back(clock.commSeconds());
    stats.waitSeconds.push_back(clock.waitSeconds());
  }
  stats.traffic = world.traffic().snapshot();
  for (const auto& crash : crashes) {
    if (crash) stats.failures.push_back(*crash);
  }
  return stats;
}

}  // namespace casvm::net
