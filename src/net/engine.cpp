#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "casvm/net/comm.hpp"
#include "casvm/net/proc_transport.hpp"
#include "casvm/net/supervisor.hpp"
#include "casvm/obs/trace.hpp"
#include "casvm/support/log.hpp"
#include "casvm/support/posix.hpp"
#include "casvm/support/timer.hpp"

namespace casvm::net {

namespace {

/// Cascaded-failure messages: symptoms of someone else's death, never the
/// root cause the user should see.
bool isCascadeError(const std::string& what) {
  return what.find("run aborted") != std::string::npos;
}

/// Errors that directly name an injected fault (either the RankCrash
/// itself or a peer woken by failSource) make the best root cause.
bool namesInjectedFault(const std::string& what) {
  return what.find("injected fault") != std::string::npos;
}

}  // namespace

Engine::Engine(int size, CostModel cost) : size_(size), cost_(cost) {
  CASVM_CHECK(size > 0, "engine needs at least one rank");
}

RunStats Engine::run(const std::function<void(Comm&)>& fn) {
  if (transportKind_ == TransportKind::Thread) {
    CASVM_CHECK(!faultPlan_.requiresProcessTransport(),
                "fault plan contains kill/hang clauses, which deliver real "
                "signals to worker processes; they require the process "
                "transport (--transport proc), but the thread backend is "
                "selected (" + faultPlan_.describe() + ")");
    return runThread(fn);
  }
  return runProc(fn);
}

RunStats Engine::runThread(const std::function<void(Comm&)>& fn) {
  std::optional<FaultInjector> injector;
  if (!faultPlan_.empty()) injector.emplace(faultPlan_, size_);
  World world(size_, cost_, injector ? &*injector : nullptr);
  std::vector<VirtualClock> clocks(static_cast<std::size_t>(size_));
  std::vector<std::optional<std::string>> errors(
      static_cast<std::size_t>(size_));
  std::vector<std::optional<RankFailure>> crashes(
      static_cast<std::size_t>(size_));
  std::vector<std::atomic<char>> finished(static_cast<std::size_t>(size_));
  for (auto& f : finished) f.store(0, std::memory_order_relaxed);
  std::atomic<bool> failed{false};

  // --- deadlock watchdog ---------------------------------------------------
  // A dropped message under a collective leaves every rank parked in a
  // receive with nothing in flight; without this thread the run (and
  // ctest) would hang forever. Deadlock test: every unfinished rank is
  // blocked in take() AND the world-wide mailbox op count has not moved
  // for watchdogSeconds_ of wall time. Blocked ranks cannot generate
  // progress, so the condition is stable once true; the stall timer
  // absorbs the benign race where a just-delivered message has not woken
  // its receiver yet.
  std::mutex wdMutex;
  std::condition_variable wdCv;
  bool wdStop = false;
  std::string watchdogReport;
  std::thread watchdog;
  if (watchdogSeconds_ > 0.0) {
    watchdog = std::thread([&] {
      constexpr auto kTick = std::chrono::milliseconds(20);
      double stalledSeconds = 0.0;
      std::uint64_t lastOps = ~std::uint64_t{0};
      std::unique_lock<std::mutex> lock(wdMutex);
      while (!wdCv.wait_for(lock, kTick, [&] { return wdStop; })) {
        std::uint64_t ops = 0;
        bool allBlocked = true;
        int running = 0;
        for (int r = 0; r < size_; ++r) {
          ops += world.mailbox(r).opCount();
          if (finished[static_cast<std::size_t>(r)].load(
                  std::memory_order_acquire)) {
            continue;
          }
          ++running;
          if (!world.mailbox(r).waitState().waiting) allBlocked = false;
        }
        if (running == 0) break;
        if (allBlocked && ops == lastOps) {
          stalledSeconds +=
              std::chrono::duration<double>(kTick).count();
        } else {
          stalledSeconds = 0.0;
        }
        lastOps = ops;
        if (stalledSeconds < watchdogSeconds_) continue;

        // Deadlock: dump every rank's wait target and every mailbox's
        // pending (src, tag) queues, then unwind the run.
        std::ostringstream report;
        report << "deadlock watchdog: no message progress for "
               << stalledSeconds
               << "s with every running rank blocked in a receive";
        for (int r = 0; r < size_; ++r) {
          report << "\n  rank " << r << ": ";
          if (finished[static_cast<std::size_t>(r)].load(
                  std::memory_order_acquire)) {
            if (crashes[static_cast<std::size_t>(r)]) {
              report << "crashed ("
                     << crashes[static_cast<std::size_t>(r)]->reason << ")";
            } else {
              report << "finished";
            }
            continue;
          }
          const Mailbox::WaitState ws = world.mailbox(r).waitState();
          if (ws.waiting) {
            report << "blocked waiting on (src=" << ws.src
                   << ", tag=" << ws.tag << ")";
          } else {
            report << "running";
          }
          const auto queues = world.mailbox(r).pendingQueues();
          if (queues.empty()) {
            report << "; mailbox empty";
          } else {
            report << "; mailbox pending:";
            for (const auto& q : queues) {
              report << " (src=" << q.src << ", tag=" << q.tag << ") x"
                     << q.depth;
            }
          }
        }
        if (injector) {
          report << "\n  active fault plan: " << injector->plan().describe();
        }
        watchdogReport = report.str();
        failed = true;
        world.abortAll();
        break;
      }
    });
  }

  // Lanes are created up front on the engine thread so rank threads never
  // contend on the recorder's mutex inside the run.
  std::vector<obs::Lane*> lanes(static_cast<std::size_t>(size_), nullptr);
  if (trace_ != nullptr) {
    for (int r = 0; r < size_; ++r) {
      lanes[static_cast<std::size_t>(r)] =
          &trace_->addLane(r, 0, "rank " + std::to_string(r));
    }
  }

  WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      VirtualClock& clock = clocks[static_cast<std::size_t>(r)];
      if (injector) clock.setComputeScale(injector->computeScale(r));
      clock.start();
      Comm comm(&world, r, &clock);
      comm.setTraceLane(lanes[static_cast<std::size_t>(r)]);
      try {
        fn(comm);
        clock.sampleCompute();
      } catch (const RankCrash& e) {
        clock.sampleCompute();
        if (tolerateRankFailures_) {
          // Survivable by construction for communication-avoiding methods:
          // record the death, poison this rank as a message source, and
          // let everyone else run to completion.
          crashes[static_cast<std::size_t>(r)] = RankFailure{r, e.what()};
          world.markFailed(r, e.what());
        } else {
          errors[static_cast<std::size_t>(r)] = e.what();
          failed = true;
          world.abortAll();
        }
      } catch (const std::exception& e) {
        errors[static_cast<std::size_t>(r)] = e.what();
        failed = true;
        world.abortAll();
      }
      finished[static_cast<std::size_t>(r)].store(1,
                                                  std::memory_order_release);
    });
  }
  for (auto& t : threads) t.join();
  // Read the wall timer before waiting on the watchdog: its up-to-20ms
  // shutdown tick is engine overhead, not part of the run being measured.
  const double wallSeconds = wall.seconds();

  if (watchdog.joinable()) {
    {
      std::lock_guard<std::mutex> lock(wdMutex);
      wdStop = true;
    }
    wdCv.notify_all();
    watchdog.join();
  }

  if (failed) {
    if (!watchdogReport.empty()) {
      throw Error("engine run failed: " + watchdogReport);
    }
    // Prefer a message naming the injected fault, then any non-cascade
    // root cause, over the cascaded "run aborted" ones.
    std::string best;
    bool bestNamesFault = false;
    bool bestIsCascade = true;
    for (int r = 0; r < size_; ++r) {
      const auto& err = errors[static_cast<std::size_t>(r)];
      if (!err) continue;
      const bool cascade = isCascadeError(*err);
      const bool fault = namesInjectedFault(*err);
      const bool better =
          best.empty() || (fault && !bestNamesFault) ||
          (!bestNamesFault && bestIsCascade && !cascade);
      if (better) {
        best = "rank " + std::to_string(r) + ": " + *err;
        bestNamesFault = fault;
        bestIsCascade = cascade;
        if (fault) break;
      }
    }
    // A tolerated crash that still sank the run (e.g. inside a collective)
    // is the real root cause; name it if the errors did not already.
    if (!bestNamesFault) {
      for (const auto& crash : crashes) {
        if (!crash) continue;
        best += (best.empty() ? "" : "; after ") + crash->reason;
        break;
      }
    }
    throw Error("engine run failed: " + best);
  }

  RunStats stats;
  stats.size = size_;
  stats.wallSeconds = wallSeconds;
  stats.computeSeconds.reserve(static_cast<std::size_t>(size_));
  stats.commSeconds.reserve(static_cast<std::size_t>(size_));
  stats.waitSeconds.reserve(static_cast<std::size_t>(size_));
  for (const auto& clock : clocks) {
    stats.computeSeconds.push_back(clock.computeSeconds());
    stats.commSeconds.push_back(clock.commSeconds());
    stats.waitSeconds.push_back(clock.waitSeconds());
  }
  stats.traffic = world.traffic().snapshot();
  for (const auto& crash : crashes) {
    if (crash) stats.failures.push_back(*crash);
  }
  return stats;
}

// --- proc backend -----------------------------------------------------------

namespace {

// Result-frame payload codec. A worker packs its outcome into a byte
// payload (doubles and u64-length-prefixed blobs), the supervisor parses
// it back; every read is bounds-checked because the bytes crossed a
// process boundary.

void putF64(std::vector<std::byte>& out, double v) {
  const std::size_t off = out.size();
  out.resize(off + sizeof v);
  std::memcpy(out.data() + off, &v, sizeof v);
}

void putBlob(std::vector<std::byte>& out, const std::vector<std::byte>& blob) {
  const std::uint64_t len = blob.size();
  const std::size_t off = out.size();
  out.resize(off + sizeof len + blob.size());
  std::memcpy(out.data() + off, &len, sizeof len);
  if (!blob.empty()) {
    std::memcpy(out.data() + off + sizeof len, blob.data(), blob.size());
  }
}

void putStr(std::vector<std::byte>& out, const std::string& s) {
  std::vector<std::byte> blob(s.size());
  if (!s.empty()) std::memcpy(blob.data(), s.data(), s.size());
  putBlob(out, blob);
}

struct FrameCursor {
  const std::vector<std::byte>& buf;
  std::size_t off = 0;

  double f64() {
    CASVM_CHECK(off + sizeof(double) <= buf.size(),
                "worker result frame truncated");
    double v = 0.0;
    std::memcpy(&v, buf.data() + off, sizeof v);
    off += sizeof v;
    return v;
  }

  std::vector<std::byte> blob() {
    CASVM_CHECK(off + sizeof(std::uint64_t) <= buf.size(),
                "worker result frame truncated");
    std::uint64_t len = 0;
    std::memcpy(&len, buf.data() + off, sizeof len);
    off += sizeof len;
    CASVM_CHECK(off + len <= buf.size(), "worker result frame truncated");
    std::vector<std::byte> b(buf.begin() + static_cast<std::ptrdiff_t>(off),
                             buf.begin() +
                                 static_cast<std::ptrdiff_t>(off + len));
    off += len;
    return b;
  }

  std::string str() {
    const std::vector<std::byte> b = blob();
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }
};

/// One complete [type u8][len u64][payload] frame on the result pipe.
void writeFrame(int fd, char type, const std::vector<std::byte>& payload) {
  std::vector<std::byte> wire(1 + sizeof(std::uint64_t) + payload.size());
  wire[0] = static_cast<std::byte>(type);
  const std::uint64_t len = payload.size();
  std::memcpy(wire.data() + 1, &len, sizeof len);
  if (!payload.empty()) {
    std::memcpy(wire.data() + 1 + sizeof len, payload.data(), payload.size());
  }
  support::writeFull(fd, wire.data(), wire.size());
}

}  // namespace

RunStats Engine::runProc(const std::function<void(Comm&)>& fn) {
  ProcTransport transport(size_, tuning_);
  Supervisor::Options opts;
  opts.tuning = tuning_;
  opts.respawnBudget = respawnBudget_;
  opts.allowRespawn = static_cast<bool>(respawnFn_) && respawnBudget_ > 0;
  opts.tolerateFailures = tolerateRankFailures_;
  opts.logPath = supervisorLogPath_;
  Supervisor supervisor(transport, opts);

  // Runs in the forked worker process. Everything it touches is either
  // the shared arena (transport) or this process's copy-on-write memory;
  // the only channels back to the supervisor are the arena and the one
  // result frame written at the end.
  const auto childMain = [&](int rank, int attempt, int resultFd) {
    transport.attachWorker(rank);

    // The fault schedule only arms the first incarnation: deterministic
    // kill/crash clauses must not re-fire in the respawned worker, or a
    // respawn budget of N would just die N+1 times at the same op.
    std::optional<FaultInjector> injector;
    if (attempt == 0 && !faultPlan_.empty()) {
      injector.emplace(faultPlan_, size_);
      injector->enableProcessSignals();
    }
    World world(size_, cost_, injector ? &*injector : nullptr, &transport);

    // Trace events are recorded into a process-local shard and shipped in
    // the result frame; the supervisor merges shards rank by rank.
    obs::TraceRecorder localTrace;
    obs::Lane* lane = nullptr;
    if (trace_ != nullptr) {
      lane = &localTrace.addLane(rank, 0, "rank " + std::to_string(rank));
    }

    VirtualClock clock;
    if (injector) clock.setComputeScale(injector->computeScale(rank));
    clock.start();
    Comm comm(&world, rank, &clock);
    comm.setTraceLane(lane);

    char type = 'R';
    std::string errorMsg;
    try {
      if (attempt == 0) {
        fn(comm);
      } else {
        respawnFn_(comm, attempt);
      }
      clock.sampleCompute();
    } catch (const RankCrash& e) {
      clock.sampleCompute();
      errorMsg = e.what();
      if (tolerateRankFailures_) {
        type = 'C';
        world.markFailed(rank, errorMsg);
      } else {
        type = 'E';
        world.abortAll();
      }
    } catch (const std::exception& e) {
      type = 'E';
      errorMsg = e.what();
      world.abortAll();
    }

    std::vector<std::byte> payload;
    if (type != 'R') putStr(payload, errorMsg);
    if (type != 'E') {
      putF64(payload, clock.computeSeconds());
      putF64(payload, clock.commSeconds());
      putF64(payload, clock.waitSeconds());
      putBlob(payload, resultChannel_.serialize
                           ? resultChannel_.serialize(rank)
                           : std::vector<std::byte>{});
      putBlob(payload, trace_ != nullptr ? localTrace.encodeShard()
                                         : std::vector<std::byte>{});
    }
    writeFrame(resultFd, type, payload);
    transport.detachWorker();
  };

  WallTimer wall;
  const std::vector<Supervisor::RankOutcome> outcomes =
      supervisor.run(childMain);
  const double wallSeconds = wall.seconds();

  std::vector<std::optional<std::string>> errors(
      static_cast<std::size_t>(size_));
  std::vector<std::optional<RankFailure>> crashes(
      static_cast<std::size_t>(size_));
  std::vector<double> computeSeconds(static_cast<std::size_t>(size_), 0.0);
  std::vector<double> commSeconds(static_cast<std::size_t>(size_), 0.0);
  std::vector<double> waitSeconds(static_cast<std::size_t>(size_), 0.0);
  bool failed = false;

  for (int r = 0; r < size_; ++r) {
    const auto i = static_cast<std::size_t>(r);
    const Supervisor::RankOutcome& o = outcomes[i];
    if (!o.resolved) {
      // Finally dead without a frame: the supervisor already either marked
      // the rank failed (tolerated) or aborted the run.
      if (tolerateRankFailures_) {
        crashes[i] = RankFailure{r, o.deathReason};
      } else {
        errors[i] = o.deathReason;
        failed = true;
      }
      continue;
    }
    FrameCursor cur{o.frame.payload};
    if (o.frame.type == 'E') {
      errors[i] = cur.str();
      failed = true;
      continue;
    }
    CASVM_CHECK(o.frame.type == 'R' || o.frame.type == 'C',
                "worker result frame has unknown type '" +
                    std::string(1, o.frame.type) + "'");
    if (o.frame.type == 'C') crashes[i] = RankFailure{r, cur.str()};
    computeSeconds[i] = cur.f64();
    commSeconds[i] = cur.f64();
    waitSeconds[i] = cur.f64();
    const std::vector<std::byte> board = cur.blob();
    const std::vector<std::byte> shard = cur.blob();
    if (resultChannel_.absorb && !board.empty()) {
      resultChannel_.absorb(r, board);
    }
    if (trace_ != nullptr && !shard.empty()) trace_->absorbShard(shard);
  }

  if (failed) {
    // Same root-cause selection as the thread backend: prefer a message
    // naming the injected fault, then any non-cascade error.
    std::string best;
    bool bestNamesFault = false;
    bool bestIsCascade = true;
    for (int r = 0; r < size_; ++r) {
      const auto& err = errors[static_cast<std::size_t>(r)];
      if (!err) continue;
      const bool cascade = isCascadeError(*err);
      const bool fault = namesInjectedFault(*err);
      const bool better = best.empty() || (fault && !bestNamesFault) ||
                          (!bestNamesFault && bestIsCascade && !cascade);
      if (better) {
        best = "rank " + std::to_string(r) + ": " + *err;
        bestNamesFault = fault;
        bestIsCascade = cascade;
        if (fault) break;
      }
    }
    if (!bestNamesFault) {
      for (const auto& crash : crashes) {
        if (!crash) continue;
        best += (best.empty() ? "" : "; after ") + crash->reason;
        break;
      }
    }
    throw Error("engine run failed: " + best);
  }

  RunStats stats;
  stats.size = size_;
  stats.wallSeconds = wallSeconds;
  stats.computeSeconds = std::move(computeSeconds);
  stats.commSeconds = std::move(commSeconds);
  stats.waitSeconds = std::move(waitSeconds);
  // The traffic counters live in the shared arena, so the supervisor sees
  // exactly what the workers recorded — snapshot through a view.
  stats.traffic = TrafficMatrix(size_, transport.trafficBytesStorage(),
                                transport.trafficOpsStorage())
                      .snapshot();
  for (const auto& crash : crashes) {
    if (crash) stats.failures.push_back(*crash);
  }
  return stats;
}

}  // namespace casvm::net
