#include <atomic>
#include <optional>
#include <string>
#include <thread>

#include "casvm/net/comm.hpp"
#include "casvm/support/log.hpp"
#include "casvm/support/timer.hpp"

namespace casvm::net {

Engine::Engine(int size, CostModel cost) : size_(size), cost_(cost) {
  CASVM_CHECK(size > 0, "engine needs at least one rank");
}

RunStats Engine::run(const std::function<void(Comm&)>& fn) {
  World world(size_, cost_);
  std::vector<VirtualClock> clocks(static_cast<std::size_t>(size_));
  std::vector<std::optional<std::string>> errors(
      static_cast<std::size_t>(size_));
  std::atomic<bool> failed{false};

  WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      VirtualClock& clock = clocks[static_cast<std::size_t>(r)];
      clock.start();
      Comm comm(&world, r, &clock);
      try {
        fn(comm);
        clock.sampleCompute();
      } catch (const std::exception& e) {
        errors[static_cast<std::size_t>(r)] = e.what();
        failed = true;
        world.abortAll();
      }
    });
  }
  for (auto& t : threads) t.join();

  if (failed) {
    // Prefer a root-cause message over the cascaded "run aborted" ones.
    std::string best;
    for (int r = 0; r < size_; ++r) {
      const auto& err = errors[static_cast<std::size_t>(r)];
      if (!err) continue;
      const bool cascade = err->find("run aborted") != std::string::npos;
      if (best.empty() || !cascade) {
        best = "rank " + std::to_string(r) + ": " + *err;
        if (!cascade) break;
      }
    }
    throw Error("engine run failed: " + best);
  }

  RunStats stats;
  stats.size = size_;
  stats.wallSeconds = wall.seconds();
  stats.computeSeconds.reserve(static_cast<std::size_t>(size_));
  stats.commSeconds.reserve(static_cast<std::size_t>(size_));
  for (const auto& clock : clocks) {
    stats.computeSeconds.push_back(clock.computeSeconds());
    stats.commSeconds.push_back(clock.commSeconds());
  }
  stats.traffic = world.traffic().snapshot();
  return stats;
}

}  // namespace casvm::net
