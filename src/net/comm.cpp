#include "casvm/net/comm.hpp"

#include <algorithm>

#include "casvm/net/thread_transport.hpp"
#include "casvm/obs/trace.hpp"

namespace casvm::net {

namespace detail {

CommOpScope::CommOpScope(Comm& comm, const char* name, int peer)
    : comm_(comm), name_(name), peer_(peer) {
  if (comm_.lane_ == nullptr) return;
  if (comm_.traceDepth_++ > 0) return;  // nested op: the outer span covers it
  active_ = true;
  comm_.clock_->sampleCompute();
  start_ = comm_.clock_->now();
  commStart_ = comm_.clock_->commSeconds();
  bytesStart_ = comm_.traceBytes_;
}

CommOpScope::~CommOpScope() {
  if (comm_.lane_ == nullptr) return;
  --comm_.traceDepth_;
  if (!active_) return;
  // The span's duration is the op's comm (+wait) clock charge alone, not
  // the full virtual-time delta: real CPU slivers spent inside the op
  // (packing, memcpy) are compute, and counting them here would make the
  // summed comm spans drift above the clock's commSeconds().
  comm_.lane_->span(
      name_, obs::Cat::Comm, start_,
      start_ + (comm_.clock_->commSeconds() - commStart_), peer_,
      static_cast<std::int64_t>(comm_.traceBytes_ - bytesStart_));
}

}  // namespace detail

namespace {

/// Both halves of the kUserTagLimit contract produce the same diagnostic.
std::string badUserTag(const char* op, int tag) {
  return std::string(op) + ": user tag " + std::to_string(tag) +
         " outside [0, " + std::to_string(Comm::kUserTagLimit) +
         ") — tags >= kUserTagLimit are reserved for collective internals";
}

}  // namespace

namespace {

/// World's traffic matrix: private storage by default, a view over the
/// backend's shared counters when it provides them (proc arena).
TrafficMatrix trafficFor(int size, Transport* transport) {
  std::atomic<std::size_t>* bytes = transport->trafficBytesStorage();
  std::atomic<std::size_t>* ops = transport->trafficOpsStorage();
  if (bytes != nullptr && ops != nullptr) {
    return TrafficMatrix(size, bytes, ops);
  }
  return TrafficMatrix(size);
}

}  // namespace

World::World(int size, CostModel cost, FaultInjector* injector)
    : size_(size), cost_(cost),
      ownedTransport_(std::make_unique<ThreadTransport>(size)),
      transport_(ownedTransport_.get()), traffic_(size), injector_(injector) {
  CASVM_CHECK(size > 0, "world needs at least one rank");
}

World::World(int size, CostModel cost, FaultInjector* injector,
             Transport* transport)
    : size_(size), cost_(cost), transport_(transport),
      traffic_(trafficFor(size, transport)), injector_(injector) {
  CASVM_CHECK(size > 0, "world needs at least one rank");
  CASVM_CHECK(transport != nullptr && transport->size() == size,
              "world/transport size mismatch");
}

World::~World() = default;

Mailbox& World::mailbox(int rank) {
  CASVM_ASSERT(rank >= 0 && rank < size_, "rank out of range");
  auto* threads = dynamic_cast<ThreadTransport*>(transport_);
  CASVM_CHECK(threads != nullptr,
              "World::mailbox is only available on the thread transport");
  return threads->mailbox(rank);
}

void Comm::sendRaw(int dst, int tag, const void* data, std::size_t bytes) {
  CASVM_CHECK(dst >= 0 && dst < size(), "send: bad destination rank");
  CASVM_CHECK(dst != rank_, "send: self-messaging is not allowed");
  const int worldDst = toWorld(dst);
  const int worldSrc = worldRank();
  detail::CommOpScope scope(*this, "send", worldDst);
  if (lane_ != nullptr) traceBytes_ += bytes;

  // Fold the compute since the last comm call into the clock, then ask the
  // fault plan for its verdict (which may kill this rank right here),
  // then charge the transfer; the message carries its modeled arrival time.
  clock_->sampleCompute();
  FaultInjector::SendVerdict verdict;
  if (FaultInjector* injector = world_->injector()) {
    verdict = injector->onSend(worldSrc, worldDst);  // may throw RankCrash
  }
  clock_->addComm(world_->cost().messageSeconds(static_cast<double>(bytes)));

  Message msg;
  msg.payload.resize(bytes);
  if (bytes > 0) std::memcpy(msg.payload.data(), data, bytes);
  msg.arrivalVirtualTime = clock_->now() + verdict.delaySeconds;

  // The sender pays for the transfer and the traffic matrix records it
  // even when the message is dropped: the bytes left this rank's NIC.
  world_->traffic().record(worldSrc, worldDst, bytes);
  if (!verdict.drop) {
    world_->transport().put(worldSrc, worldDst, contextTag(tag),
                            std::move(msg));
  }
}

Message Comm::recvRaw(int src, int tag) {
  CASVM_CHECK(src >= 0 && src < size(), "recv: bad source rank");
  CASVM_CHECK(src != rank_, "recv: self-messaging is not allowed");
  detail::CommOpScope scope(*this, "recv", toWorld(src));
  clock_->sampleCompute();
  if (FaultInjector* injector = world_->injector()) {
    injector->onRecv(worldRank());  // may throw RankCrash
  }
  Message msg =
      world_->transport().take(worldRank(), toWorld(src), contextTag(tag));
  if (lane_ != nullptr) traceBytes_ += msg.payload.size();
  // If the sender finished later than our local virtual now, we were
  // waiting: advance to the arrival time (the wait shows up as comm time).
  clock_->advanceTo(msg.arrivalVirtualTime);
  return msg;
}

void Comm::sendBytes(int dst, int tag, const void* data, std::size_t bytes) {
  CASVM_CHECK(tag >= 0 && tag < kUserTagLimit, badUserTag("send", tag));
  sendRaw(dst, tag, data, bytes);
}

std::vector<std::byte> Comm::recvBytes(int src, int tag) {
  CASVM_CHECK(tag >= 0 && tag < kUserTagLimit, badUserTag("recv", tag));
  return recvRaw(src, tag).payload;
}

void Comm::faultCheckpoint(const std::string& label) {
  if (FaultInjector* injector = world_->injector()) {
    injector->atPhase(worldRank(), label);  // may throw RankCrash
  }
}

void Comm::barrier() {
  detail::CommOpScope scope(*this, "barrier");
  // Reduce a token to rank 0, then broadcast it back: 2 log P rounds whose
  // timestamps drag every rank up to the global maximum virtual time.
  unsigned char token = 0;
  token = reduce(token, [](unsigned char a, unsigned char) { return a; }, 0);
  bcastBytes(&token, sizeof(token), 0, tagBarrier);
}

void Comm::instrumentationFence(const std::function<void()>& atRoot) {
  // Centralized two-phase barrier over the raw mailboxes: no traffic
  // recording, no clock charges. While rank 0 runs `atRoot`, every other
  // rank is parked waiting for its release token and all messages sent
  // before the fence have already been recorded by their senders.
  const int members = size();
  const int rootWorld = toWorld(0);
  const int fenceTag = contextTag(tagFence);
  Transport& transport = world_->transport();
  if (rank_ == 0) {
    for (int r = 1; r < members; ++r) {
      (void)transport.take(rootWorld, toWorld(r), fenceTag);
    }
    if (atRoot) atRoot();
    for (int r = 1; r < members; ++r) {
      transport.put(rootWorld, toWorld(r), fenceTag, Message{});
    }
  } else {
    transport.put(worldRank(), rootWorld, fenceTag, Message{});
    (void)transport.take(worldRank(), rootWorld, fenceTag);
  }
}

Comm Comm::split(int color, int key) {
  // Everyone learns everyone's (color, key) through the parent.
  struct Entry {
    int color;
    int key;
    int localRank;
  };
  const std::vector<Entry> all = allgather(Entry{color, key, rank_});

  // My group: same color, ordered by (key, old rank).
  std::vector<Entry> members;
  for (const Entry& e : all) {
    if (e.color == color) members.push_back(e);
  }
  std::sort(members.begin(), members.end(), [](const Entry& a, const Entry& b) {
    return a.key != b.key ? a.key < b.key : a.localRank < b.localRank;
  });

  std::vector<int> group;
  group.reserve(members.size());
  int myLocal = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    group.push_back(toWorld(members[i].localRank));
    if (members[i].localRank == rank_) myLocal = static_cast<int>(i);
  }
  CASVM_ASSERT(myLocal >= 0, "split: caller missing from its own group");

  // Deterministic context allocation: every rank of this communicator
  // executes the same split sequence, so the counters agree. Sibling
  // groups of one split call can share a context (their rank sets are
  // disjoint, so no mailbox key can collide).
  ++childContexts_;
  CASVM_CHECK(childContexts_ < 16, "too many splits of one communicator");
  const int childContext = context_ * 16 + childContexts_;
  CASVM_CHECK(childContext <= kMaxContext,
              "communicator nesting too deep (context budget exhausted)");

  Comm child(world_, myLocal, clock_, std::move(group), childContext);
  // The child shares this rank's trace lane: its ops belong to the same
  // physical rank's timeline.
  child.lane_ = lane_;
  return child;
}

void Comm::bcastBytes(void* data, std::size_t bytes, int root, int tag) {
  const int size = this->size();
  CASVM_CHECK(root >= 0 && root < size, "bcast: bad root");
  if (size == 1) return;
  const int vrank = (rank_ - root + size) % size;

  int mask = 1;
  while (mask < size) {
    if (vrank & mask) {
      const int peer = ((vrank - mask) + root) % size;
      Message msg = recvRaw(peer, tag);
      CASVM_CHECK(msg.payload.size() == bytes, "bcast: size mismatch");
      if (bytes > 0) std::memcpy(data, msg.payload.data(), bytes);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < size) {
      const int peer = (vrank + mask + root) % size;
      sendRaw(peer, tag, data, bytes);
    }
    mask >>= 1;
  }
}

std::vector<std::vector<std::byte>> Comm::alltoallvBytes(
    std::vector<std::vector<std::byte>> sendParts) {
  detail::CommOpScope scope(*this, "alltoallv");
  const int size = this->size();
  CASVM_CHECK(sendParts.size() == static_cast<std::size_t>(size),
              "alltoallv: one part per rank required");
  std::vector<std::vector<std::byte>> received(
      static_cast<std::size_t>(size));
  for (int dst = 0; dst < size; ++dst) {
    if (dst == rank_) continue;
    const auto& part = sendParts[static_cast<std::size_t>(dst)];
    sendRaw(dst, tagAlltoall, part.data(), part.size());
  }
  received[static_cast<std::size_t>(rank_)] =
      std::move(sendParts[static_cast<std::size_t>(rank_)]);
  for (int src = 0; src < size; ++src) {
    if (src == rank_) continue;
    received[static_cast<std::size_t>(src)] =
        recvRaw(src, tagAlltoall).payload;
  }
  return received;
}

Comm::ValIdx Comm::allreduceMinloc(double value, long long index) {
  return allreduce(ValIdx{value, index}, [](ValIdx a, ValIdx b) {
    if (a.value < b.value) return a;
    if (b.value < a.value) return b;
    return a.index <= b.index ? a : b;
  });
}

Comm::ValIdx Comm::allreduceMaxloc(double value, long long index) {
  return allreduce(ValIdx{value, index}, [](ValIdx a, ValIdx b) {
    if (a.value > b.value) return a;
    if (b.value > a.value) return b;
    return a.index <= b.index ? a : b;
  });
}

double RunStats::virtualSeconds() const {
  double worst = 0.0;
  for (int r = 0; r < size; ++r) {
    worst = std::max(worst, computeSeconds[static_cast<std::size_t>(r)] +
                                commSeconds[static_cast<std::size_t>(r)]);
  }
  return worst;
}

double RunStats::maxComputeSeconds() const {
  double worst = 0.0;
  for (double c : computeSeconds) worst = std::max(worst, c);
  return worst;
}

double RunStats::maxCommSeconds() const {
  double worst = 0.0;
  for (double c : commSeconds) worst = std::max(worst, c);
  return worst;
}

double RunStats::totalComputeSeconds() const {
  double total = 0.0;
  for (double c : computeSeconds) total += c;
  return total;
}

}  // namespace casvm::net
