#include "casvm/net/mailbox.hpp"

#include <chrono>

#include "casvm/support/error.hpp"

namespace casvm::net {

Mailbox::Key Mailbox::key(int src, int tag) {
  CASVM_ASSERT(src >= 0 && tag >= 0, "negative src/tag");
  return (static_cast<Key>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(tag);
}

void Mailbox::put(int src, int tag, Message msg) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queues_[key(src, tag)].push_back(std::move(msg));
    ops_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_all();
}

Message Mailbox::take(int src, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  const Key k = key(src, tag);
  wait_ = WaitState{true, src, tag};
  cv_.wait(lock, [&] {
    if (aborted_ || deadSources_.count(src) > 0) return true;
    auto it = queues_.find(k);
    return it != queues_.end() && !it->second.empty();
  });
  wait_ = WaitState{};
  auto it = queues_.find(k);
  if (it == queues_.end() || it->second.empty()) {
    // No message will ever arrive: prefer the per-rank root cause (a dead
    // peer) over the generic whole-run abort.
    auto dead = deadSources_.find(src);
    if (dead != deadSources_.end()) {
      throw Error("peer rank " + std::to_string(src) +
                  " failed while this rank was waiting for its message: " +
                  dead->second);
    }
    CASVM_ASSERT(aborted_, "spurious wake without message");
    throw Error("casvm::net run aborted while waiting for a message");
  }
  Message msg = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);
  ops_.fetch_add(1, std::memory_order_relaxed);
  return msg;
}

std::optional<Message> Mailbox::takeFor(int src, int tag, int timeoutMs) {
  std::unique_lock<std::mutex> lock(mutex_);
  const Key k = key(src, tag);
  wait_ = WaitState{true, src, tag};
  const bool ready =
      cv_.wait_for(lock, std::chrono::milliseconds(timeoutMs), [&] {
        if (aborted_ || deadSources_.count(src) > 0) return true;
        auto it = queues_.find(k);
        return it != queues_.end() && !it->second.empty();
      });
  wait_ = WaitState{};
  auto it = queues_.find(k);
  if (it == queues_.end() || it->second.empty()) {
    if (!ready) return std::nullopt;
    auto dead = deadSources_.find(src);
    if (dead != deadSources_.end()) {
      throw Error("peer rank " + std::to_string(src) +
                  " failed while this rank was waiting for its message: " +
                  dead->second);
    }
    CASVM_ASSERT(aborted_, "spurious wake without message");
    throw Error("casvm::net run aborted while waiting for a message");
  }
  Message msg = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);
  ops_.fetch_add(1, std::memory_order_relaxed);
  return msg;
}

void Mailbox::abort() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
  }
  cv_.notify_all();
}

void Mailbox::failSource(int src, std::string reason) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    deadSources_.emplace(src, std::move(reason));
  }
  cv_.notify_all();
}

Mailbox::WaitState Mailbox::waitState() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wait_;
}

std::vector<Mailbox::QueueInfo> Mailbox::pendingQueues() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<QueueInfo> out;
  out.reserve(queues_.size());
  for (const auto& [k, q] : queues_) {
    if (q.empty()) continue;
    out.push_back({static_cast<int>(k >> 32),
                   static_cast<int>(k & 0xffffffffULL), q.size()});
  }
  return out;
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [k, q] : queues_) total += q.size();
  return total;
}

}  // namespace casvm::net
