#include "casvm/net/mailbox.hpp"

#include "casvm/support/error.hpp"

namespace casvm::net {

Mailbox::Key Mailbox::key(int src, int tag) {
  CASVM_ASSERT(src >= 0 && tag >= 0, "negative src/tag");
  return (static_cast<Key>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(tag);
}

void Mailbox::put(int src, int tag, Message msg) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queues_[key(src, tag)].push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::take(int src, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  const Key k = key(src, tag);
  cv_.wait(lock, [&] {
    if (aborted_) return true;
    auto it = queues_.find(k);
    return it != queues_.end() && !it->second.empty();
  });
  auto it = queues_.find(k);
  if (it == queues_.end() || it->second.empty()) {
    CASVM_ASSERT(aborted_, "spurious wake without message");
    throw Error("casvm::net run aborted while waiting for a message");
  }
  Message msg = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);
  return msg;
}

void Mailbox::abort() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
  }
  cv_.notify_all();
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [k, q] : queues_) total += q.size();
  return total;
}

}  // namespace casvm::net
