#include "casvm/net/clock.hpp"

#include "casvm/support/error.hpp"
#include "casvm/support/timer.hpp"

namespace casvm::net {

void VirtualClock::start() {
  lastCpuSample_ = threadCpuSeconds();
  started_ = true;
}

void VirtualClock::sampleCompute() {
  CASVM_ASSERT(started_, "VirtualClock used before start()");
  const double cpu = threadCpuSeconds();
  computeSeconds_ += (cpu - lastCpuSample_) * computeScale_;
  lastCpuSample_ = cpu;
}

void VirtualClock::setComputeScale(double scale) {
  CASVM_CHECK(scale >= 1.0, "compute scale must be >= 1");
  computeScale_ = scale;
}

void VirtualClock::addComm(double seconds) { commSeconds_ += seconds; }

void VirtualClock::addCompute(double seconds) { computeSeconds_ += seconds; }

void VirtualClock::advanceTo(double t) {
  const double current = now();
  if (t > current) skew_ += t - current;
}

}  // namespace casvm::net
