#include "casvm/net/traffic.hpp"

#include <sstream>

#include "casvm/support/error.hpp"
#include "casvm/support/table.hpp"

namespace casvm::net {

std::size_t TrafficSnapshot::bytesBetween(int src, int dst) const {
  CASVM_CHECK(src >= 0 && src < size && dst >= 0 && dst < size,
              "rank out of range");
  return bytes[static_cast<std::size_t>(src) * size + dst];
}

std::size_t TrafficSnapshot::opsBetween(int src, int dst) const {
  CASVM_CHECK(src >= 0 && src < size && dst >= 0 && dst < size,
              "rank out of range");
  return ops[static_cast<std::size_t>(src) * size + dst];
}

std::size_t TrafficSnapshot::totalBytes() const {
  std::size_t total = 0;
  for (std::size_t b : bytes) total += b;
  return total;
}

std::size_t TrafficSnapshot::totalOps() const {
  std::size_t total = 0;
  for (std::size_t o : ops) total += o;
  return total;
}

std::size_t TrafficSnapshot::bytesTouching(int rank) const {
  std::size_t total = 0;
  for (int other = 0; other < size; ++other) {
    total += bytesBetween(rank, other);
    total += bytesBetween(other, rank);
  }
  return total;
}

double TrafficSnapshot::bytesPerOp() const {
  const std::size_t o = totalOps();
  return o == 0 ? 0.0 : static_cast<double>(totalBytes()) / o;
}

std::string TrafficSnapshot::heatmap() const {
  std::vector<std::string> headers{"src\\dst"};
  for (int dst = 0; dst < size; ++dst) headers.push_back(std::to_string(dst));
  TablePrinter table(std::move(headers));
  for (int src = 0; src < size; ++src) {
    std::vector<std::string> row{std::to_string(src)};
    for (int dst = 0; dst < size; ++dst) {
      row.push_back(TablePrinter::fmtBytes(
          static_cast<double>(bytesBetween(src, dst))));
    }
    table.addRow(std::move(row));
  }
  return table.render();
}

TrafficSnapshot TrafficSnapshot::since(const TrafficSnapshot& earlier) const {
  CASVM_CHECK(size == earlier.size, "snapshot sizes differ");
  TrafficSnapshot out;
  out.size = size;
  out.bytes.resize(bytes.size());
  out.ops.resize(ops.size());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    CASVM_CHECK(bytes[i] >= earlier.bytes[i] && ops[i] >= earlier.ops[i],
                "TrafficSnapshot::since: `earlier` has larger counters than "
                "this snapshot — was the matrix reset() between the two?");
    out.bytes[i] = bytes[i] - earlier.bytes[i];
    out.ops[i] = ops[i] - earlier.ops[i];
  }
  return out;
}

TrafficMatrix::TrafficMatrix(int size) : size_(size) {
  CASVM_CHECK(size > 0, "traffic matrix needs at least one rank");
  const std::size_t cells = static_cast<std::size_t>(size) * size;
  ownedBytes_ = std::make_unique<std::atomic<std::size_t>[]>(cells);
  ownedOps_ = std::make_unique<std::atomic<std::size_t>[]>(cells);
  bytes_ = ownedBytes_.get();
  ops_ = ownedOps_.get();
  reset();
}

TrafficMatrix::TrafficMatrix(int size, std::atomic<std::size_t>* bytes,
                             std::atomic<std::size_t>* ops)
    : size_(size), bytes_(bytes), ops_(ops) {
  CASVM_CHECK(size > 0, "traffic matrix needs at least one rank");
  CASVM_CHECK(bytes != nullptr && ops != nullptr,
              "traffic matrix view needs external storage");
  // Deliberately no reset(): several views share one live matrix (every
  // worker process plus the supervisor), and a view constructed mid-run —
  // a respawned worker — must not wipe the counters recorded so far.
}

void TrafficMatrix::record(int src, int dst, std::size_t bytes) {
  CASVM_ASSERT(src >= 0 && src < size_ && dst >= 0 && dst < size_,
               "rank out of range");
  const std::size_t idx = static_cast<std::size_t>(src) * size_ + dst;
  bytes_[idx].fetch_add(bytes, std::memory_order_relaxed);
  ops_[idx].fetch_add(1, std::memory_order_relaxed);
}

void TrafficMatrix::reset() {
  const std::size_t cells = static_cast<std::size_t>(size_) * size_;
  for (std::size_t i = 0; i < cells; ++i) {
    bytes_[i].store(0, std::memory_order_relaxed);
    ops_[i].store(0, std::memory_order_relaxed);
  }
}

TrafficSnapshot TrafficMatrix::snapshot() const {
  TrafficSnapshot snap;
  snap.size = size_;
  const std::size_t cells = static_cast<std::size_t>(size_) * size_;
  snap.bytes.resize(cells);
  snap.ops.resize(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    snap.bytes[i] = bytes_[i].load(std::memory_order_relaxed);
    snap.ops[i] = ops_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

}  // namespace casvm::net
