#include "casvm/net/thread_transport.hpp"

#include "casvm/support/error.hpp"

namespace casvm::net {

const char* transportName(TransportKind kind) {
  switch (kind) {
    case TransportKind::Thread:
      return "thread";
    case TransportKind::Proc:
      return "proc";
  }
  return "thread";
}

TransportKind transportFromName(std::string_view name) {
  if (name == "thread") return TransportKind::Thread;
  if (name == "proc") return TransportKind::Proc;
  CASVM_CHECK(false, "unknown transport '" + std::string(name) +
                         "' (expected thread|proc)");
  return TransportKind::Thread;
}

void TransportTuning::validate() const {
  // Hostile-value guard: each knob individually named so a bad flag fails
  // with its own range, and the ranges keep staleAfterMs()/
  // backoffForAttemptMs() arithmetic far from overflow.
  CASVM_CHECK(heartbeatMs >= 1 && heartbeatMs <= 60'000,
              "transport tuning: heartbeat-ms must be in [1, 60000], got " +
                  std::to_string(heartbeatMs));
  CASVM_CHECK(
      commTimeoutMs >= 1 && commTimeoutMs <= 86'400'000,
      "transport tuning: comm-timeout-ms must be in [1, 86400000], got " +
          std::to_string(commTimeoutMs));
  CASVM_CHECK(
      respawnBackoffMs >= 0 && respawnBackoffMs <= 60'000,
      "transport tuning: respawn-backoff-ms must be in [0, 60000], got " +
          std::to_string(respawnBackoffMs));
}

int TransportTuning::staleAfterMs() const {
  // A worker refreshes its heartbeat every heartbeatMs; give it a generous
  // margin before declaring a hang so a descheduled-but-healthy worker on
  // a loaded CI box is not killed by mistake.
  const long long stale = 10LL * heartbeatMs;
  return static_cast<int>(stale < 500 ? 500 : stale);
}

int TransportTuning::backoffForAttemptMs(int attempt) const {
  if (respawnBackoffMs == 0 || attempt <= 0) return 0;
  // Exponential with a hard cap; the shift is bounded so the arithmetic
  // cannot overflow no matter how many respawns a budget allows.
  const int shift = attempt - 1 > 10 ? 10 : attempt - 1;
  const long long backoff = static_cast<long long>(respawnBackoffMs) << shift;
  constexpr long long kCapMs = 10'000;
  return static_cast<int>(backoff > kCapMs ? kCapMs : backoff);
}

ThreadTransport::ThreadTransport(int size)
    : size_(size), mailboxes_(static_cast<std::size_t>(size)),
      failed_(static_cast<std::size_t>(size), 0) {
  CASVM_CHECK(size > 0, "transport needs at least one rank");
}

Mailbox& ThreadTransport::mailbox(int rank) {
  CASVM_ASSERT(rank >= 0 && rank < size_, "rank out of range");
  return mailboxes_[static_cast<std::size_t>(rank)];
}

void ThreadTransport::put(int src, int dst, int tag, Message msg) {
  CASVM_ASSERT(dst >= 0 && dst < size_, "rank out of range");
  mailboxes_[static_cast<std::size_t>(dst)].put(src, tag, std::move(msg));
}

Message ThreadTransport::take(int self, int src, int tag) {
  CASVM_ASSERT(self >= 0 && self < size_, "rank out of range");
  return mailboxes_[static_cast<std::size_t>(self)].take(src, tag);
}

void ThreadTransport::abortAll() {
  aborted_.store(true, std::memory_order_release);
  for (auto& mb : mailboxes_) mb.abort();
}

void ThreadTransport::markFailed(int rank, const std::string& reason) {
  CASVM_ASSERT(rank >= 0 && rank < size_, "rank out of range");
  {
    std::lock_guard<std::mutex> lock(failMutex_);
    failed_[static_cast<std::size_t>(rank)] = 1;
  }
  // Wake anyone blocked on (or about to block on) a message from the dead
  // rank; messages it sent before dying remain deliverable.
  for (auto& mb : mailboxes_) mb.failSource(rank, reason);
}

bool ThreadTransport::rankFailed(int rank) const {
  CASVM_ASSERT(rank >= 0 && rank < size_, "rank out of range");
  std::lock_guard<std::mutex> lock(failMutex_);
  return failed_[static_cast<std::size_t>(rank)] != 0;
}

std::vector<int> ThreadTransport::failedRanks() const {
  std::lock_guard<std::mutex> lock(failMutex_);
  std::vector<int> out;
  for (int r = 0; r < size_; ++r) {
    if (failed_[static_cast<std::size_t>(r)] != 0) out.push_back(r);
  }
  return out;
}

}  // namespace casvm::net
