#include "casvm/net/fault.hpp"

#include <csignal>
#include <cstdlib>
#include <sstream>

namespace casvm::net {

namespace {

/// Strip leading/trailing whitespace.
std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\n\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\n\r");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> splitOn(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  return parts;
}

long long parseInt(const std::string& clause, const std::string& value) {
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  CASVM_CHECK(end && *end == '\0' && !value.empty(),
              "fault spec: bad integer '" + value + "' in clause '" + clause +
                  "'");
  return v;
}

double parseDouble(const std::string& clause, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  CASVM_CHECK(end && *end == '\0' && !value.empty(),
              "fault spec: bad number '" + value + "' in clause '" + clause +
                  "'");
  return v;
}

/// Keys each clause kind accepts — quoted verbatim in parse errors so a
/// typo names the offending token AND what would have been valid.
const char* validKeysFor(const std::string& kind) {
  if (kind == "crash") return "rank, op, phase, nth, times";
  if (kind == "drop") return "src, dst, nth, prob";
  if (kind == "delay") return "src, dst, nth, prob, seconds";
  if (kind == "slow") return "rank, factor";
  if (kind == "kill" || kind == "hang") return "rank, op, phase, nth, times";
  return "";
}

bool keyValidFor(const std::string& kind, const std::string& key) {
  const std::string valid = validKeysFor(kind);
  // Exact-token membership in the comma-separated list.
  std::size_t pos = 0;
  while (pos < valid.size()) {
    std::size_t end = valid.find(',', pos);
    if (end == std::string::npos) end = valid.size();
    std::string token = valid.substr(pos, end - pos);
    if (!token.empty() && token.front() == ' ') token.erase(0, 1);
    if (token == key) return true;
    pos = end + 1;
  }
  return false;
}

constexpr const char* kValidKinds = "crash, drop, delay, slow, kill, hang";
constexpr const char* kDriverPhases =
    "the training driver defines phases 'init', 'train' and 'solve'";

FaultSpec parseClause(const std::string& raw) {
  const std::string clause = trim(raw);
  const std::size_t colon = clause.find(':');
  CASVM_CHECK(colon != std::string::npos,
              "fault spec: clause '" + clause +
                  "' needs the form kind:key=value,... (valid kinds: " +
                  kValidKinds + ")");
  const std::string kind = trim(clause.substr(0, colon));

  FaultSpec spec;
  bool haveOp = false;
  bool havePhase = false;
  if (kind == "crash") {
    spec.kind = FaultKind::CrashAtOp;  // refined below by op=/phase=
  } else if (kind == "drop") {
    spec.kind = FaultKind::DropMessage;
  } else if (kind == "delay") {
    spec.kind = FaultKind::DelayMessage;
  } else if (kind == "slow") {
    spec.kind = FaultKind::SlowRank;
  } else if (kind == "kill") {
    spec.kind = FaultKind::KillRank;
  } else if (kind == "hang") {
    spec.kind = FaultKind::HangRank;
  } else {
    throw Error("fault spec: unknown fault kind '" + kind + "' in clause '" +
                clause + "' (valid kinds: " + kValidKinds + ")");
  }

  for (const std::string& rawPair : splitOn(clause.substr(colon + 1), ',')) {
    const std::string pair = trim(rawPair);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    CASVM_CHECK(eq != std::string::npos,
                "fault spec: expected key=value, got '" + pair +
                    "' in clause '" + clause + "' (valid keys for " + kind +
                    ": " + validKeysFor(kind) + ")");
    const std::string key = trim(pair.substr(0, eq));
    const std::string value = trim(pair.substr(eq + 1));
    if (!keyValidFor(kind, key)) {
      throw Error("fault spec: key '" + key + "' is not valid for '" + kind +
                  "' in clause '" + clause + "' (valid keys for " + kind +
                  ": " + validKeysFor(kind) + ")");
    }
    if (key == "rank") {
      spec.rank = static_cast<int>(parseInt(clause, value));
    } else if (key == "op") {
      spec.op = parseInt(clause, value);
      haveOp = true;
    } else if (key == "phase") {
      spec.phase = value;
      havePhase = true;
    } else if (key == "src") {
      spec.src = static_cast<int>(parseInt(clause, value));
    } else if (key == "dst") {
      spec.dst = static_cast<int>(parseInt(clause, value));
    } else if (key == "nth") {
      spec.nth = parseInt(clause, value);
    } else if (key == "times") {
      spec.times = parseInt(clause, value);
    } else if (key == "prob") {
      spec.probability = parseDouble(clause, value);
    } else if (key == "seconds") {
      spec.seconds = parseDouble(clause, value);
    } else if (key == "factor") {
      spec.factor = parseDouble(clause, value);
    }
  }

  // Per-kind validation, so a bad plan fails at parse time, not mid-run.
  switch (spec.kind) {
    case FaultKind::CrashAtOp:
    case FaultKind::CrashAtPhase:
    case FaultKind::KillRank:
    case FaultKind::HangRank:
      CASVM_CHECK(spec.rank >= 0,
                  "fault spec: " + kind + " clause needs rank= ('" + clause +
                      "')");
      CASVM_CHECK(haveOp != havePhase,
                  "fault spec: " + kind + " clause needs exactly one of op= "
                  "(1-based comm-op index) or phase= (checkpoint label; " +
                  std::string(kDriverPhases) + ") ('" + clause + "')");
      if (havePhase) {
        if (spec.kind == FaultKind::CrashAtOp) {
          spec.kind = FaultKind::CrashAtPhase;
        }
        CASVM_CHECK(!spec.phase.empty(),
                    "fault spec: phase= needs a label (" +
                        std::string(kDriverPhases) + ") ('" + clause + "')");
        CASVM_CHECK(spec.nth >= 0,
                    "fault spec: nth= must be >= 1 (first matching entry) "
                    "('" + clause + "')");
        CASVM_CHECK(spec.times >= 0,
                    "fault spec: times= must be >= 1 (0 = every entry) ('" +
                        clause + "')");
      } else {
        CASVM_CHECK(spec.op >= 1,
                    "fault spec: " + kind + " op= is 1-based ('" + clause +
                        "')");
        CASVM_CHECK(spec.nth == 0 && spec.times == 1,
                    "fault spec: nth=/times= apply to phase placement only "
                    "('" + clause + "')");
      }
      break;
    case FaultKind::DropMessage:
    case FaultKind::DelayMessage:
      CASVM_CHECK(spec.src >= 0 || spec.dst >= 0,
                  "fault spec: drop/delay clause needs src= and/or dst= ('" +
                      clause + "')");
      CASVM_CHECK(spec.nth >= 0,
                  "fault spec: nth= must be >= 1 (0 = every match) ('" +
                      clause + "')");
      CASVM_CHECK(spec.probability > 0.0 && spec.probability <= 1.0,
                  "fault spec: prob= must be in (0, 1] ('" + clause + "')");
      if (spec.kind == FaultKind::DelayMessage) {
        CASVM_CHECK(spec.seconds > 0.0,
                    "fault spec: delay clause needs seconds= > 0 ('" +
                        clause + "')");
      }
      break;
    case FaultKind::SlowRank:
      CASVM_CHECK(spec.rank >= 0,
                  "fault spec: slow clause needs rank= ('" + clause + "')");
      CASVM_CHECK(spec.factor >= 1.0,
                  "fault spec: slow factor= must be >= 1 ('" + clause + "')");
      break;
  }
  return spec;
}

}  // namespace

std::string FaultSpec::describe() const {
  std::ostringstream out;
  switch (kind) {
    case FaultKind::CrashAtOp:
      out << "crash:rank=" << rank << ",op=" << op;
      break;
    case FaultKind::CrashAtPhase:
      out << "crash:rank=" << rank << ",phase=" << phase;
      if (nth > 1) out << ",nth=" << nth;
      if (times != 1) out << ",times=" << times;
      break;
    case FaultKind::DropMessage:
    case FaultKind::DelayMessage:
      out << (kind == FaultKind::DropMessage ? "drop:" : "delay:");
      {
        const char* sep = "";
        if (src >= 0) { out << sep << "src=" << src; sep = ","; }
        if (dst >= 0) { out << sep << "dst=" << dst; sep = ","; }
        if (nth > 0) { out << sep << "nth=" << nth; sep = ","; }
        if (probability < 1.0) { out << sep << "prob=" << probability; sep = ","; }
        if (kind == FaultKind::DelayMessage) {
          out << sep << "seconds=" << seconds;
        }
      }
      break;
    case FaultKind::SlowRank:
      out << "slow:rank=" << rank << ",factor=" << factor;
      break;
    case FaultKind::KillRank:
    case FaultKind::HangRank:
      out << (kind == FaultKind::KillRank ? "kill:rank=" : "hang:rank=")
          << rank;
      if (phase.empty()) {
        out << ",op=" << op;
      } else {
        out << ",phase=" << phase;
        if (nth > 1) out << ",nth=" << nth;
        if (times != 1) out << ",times=" << times;
      }
      break;
  }
  return out.str();
}

FaultPlan FaultPlan::parse(const std::string& text, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  for (const std::string& clause : splitOn(text, ';')) {
    if (trim(clause).empty()) continue;
    plan.faults.push_back(parseClause(clause));
  }
  return plan;
}

bool FaultPlan::requiresProcessTransport() const {
  for (const FaultSpec& spec : faults) {
    if (spec.kind == FaultKind::KillRank || spec.kind == FaultKind::HangRank) {
      return true;
    }
  }
  return false;
}

std::string FaultPlan::describe() const {
  std::string out;
  for (const FaultSpec& spec : faults) {
    if (!out.empty()) out += ";";
    out += spec.describe();
  }
  return out;
}

FaultInjector::FaultInjector(FaultPlan plan, int worldSize)
    : plan_(std::move(plan)), size_(worldSize) {
  CASVM_CHECK(worldSize > 0, "fault injector needs a positive world size");
  for (const FaultSpec& spec : plan_.faults) {
    const bool ranked = spec.kind == FaultKind::CrashAtOp ||
                        spec.kind == FaultKind::CrashAtPhase ||
                        spec.kind == FaultKind::SlowRank ||
                        spec.kind == FaultKind::KillRank ||
                        spec.kind == FaultKind::HangRank;
    if (ranked) {
      CASVM_CHECK(spec.rank < size_,
                  "fault spec targets rank " + std::to_string(spec.rank) +
                      " outside the world of size " + std::to_string(size_) +
                      " (" + spec.describe() + ")");
    }
    CASVM_CHECK(spec.src < size_ && spec.dst < size_,
                "fault spec targets an edge outside the world of size " +
                    std::to_string(size_) + " (" + spec.describe() + ")");
  }
  opCount_.assign(static_cast<std::size_t>(size_), 0);
  matchCount_.assign(plan_.faults.size() * static_cast<std::size_t>(size_), 0);
  senderRng_.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    // Independent per-sender streams: each rank's drop/delay coin flips
    // depend only on its own program order, never on thread scheduling.
    senderRng_.emplace_back(plan_.seed ^
                            (0x9e3779b97f4a7c15ULL * (std::uint64_t(r) + 1)));
  }
}

void FaultInjector::fireSignalFault(int rank, const FaultSpec& spec) {
  if (!processSignals_) {
    // Backstop: the Engine refuses such plans on the thread backend before
    // any rank runs, so reaching this without process-signals mode means a
    // caller bypassed that check.
    throw Error("fault spec: " +
                std::string(spec.kind == FaultKind::KillRank ? "kill"
                                                             : "hang") +
                " faults deliver real process signals and require the "
                "process transport (--transport proc) (" +
                spec.describe() + ")");
  }
  std::raise(spec.kind == FaultKind::KillRank ? SIGKILL : SIGSTOP);
  // Only reachable for a hang the supervisor chose to resume rather than
  // kill; unwind the rank like a crash so the run stays well-defined.
  throw RankCrash(rank, "injected fault: rank " + std::to_string(rank) +
                            " resumed after an injected hang (" +
                            spec.describe() + ")");
}

void FaultInjector::countOp(int rank) {
  const long long op = ++opCount_[static_cast<std::size_t>(rank)];
  for (const FaultSpec& spec : plan_.faults) {
    if (spec.kind == FaultKind::CrashAtOp && spec.rank == rank &&
        spec.op == op) {
      throw RankCrash(rank, "injected fault: rank " + std::to_string(rank) +
                                " crashed at comm op " + std::to_string(op) +
                                " (" + spec.describe() + ")");
    }
    if ((spec.kind == FaultKind::KillRank ||
         spec.kind == FaultKind::HangRank) &&
        spec.rank == rank && spec.phase.empty() && spec.op == op) {
      fireSignalFault(rank, spec);
    }
  }
}

FaultInjector::SendVerdict FaultInjector::onSend(int src, int dst) {
  countOp(src);  // may throw RankCrash before the message exists
  SendVerdict verdict;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& spec = plan_.faults[i];
    if (spec.kind != FaultKind::DropMessage &&
        spec.kind != FaultKind::DelayMessage) {
      continue;
    }
    if (spec.src >= 0 && spec.src != src) continue;
    if (spec.dst >= 0 && spec.dst != dst) continue;
    const long long match =
        ++matchCount_[i * static_cast<std::size_t>(size_) +
                      static_cast<std::size_t>(src)];
    if (spec.nth > 0 && match != spec.nth) continue;
    if (spec.probability < 1.0 &&
        !senderRng_[static_cast<std::size_t>(src)].bernoulli(
            spec.probability)) {
      continue;
    }
    if (spec.kind == FaultKind::DropMessage) {
      verdict.drop = true;
    } else {
      verdict.delaySeconds += spec.seconds;
    }
  }
  return verdict;
}

void FaultInjector::onRecv(int rank) { countOp(rank); }

void FaultInjector::atPhase(int rank, const std::string& label) {
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& spec = plan_.faults[i];
    const bool phased = spec.kind == FaultKind::CrashAtPhase ||
                        ((spec.kind == FaultKind::KillRank ||
                          spec.kind == FaultKind::HangRank) &&
                         !spec.phase.empty());
    if (!phased || spec.rank != rank || spec.phase != label) continue;
    // Entry counter for this (clause, rank); the matchCount_ stripe is
    // free here because only drop/delay clauses use it on the send path.
    const long long entry =
        ++matchCount_[i * static_cast<std::size_t>(size_) +
                      static_cast<std::size_t>(rank)];
    const long long first = spec.nth > 0 ? spec.nth : 1;
    if (entry < first) continue;
    if (spec.times > 0 && entry >= first + spec.times) continue;
    if (spec.kind != FaultKind::CrashAtPhase) fireSignalFault(rank, spec);
    throw RankCrash(rank, "injected fault: rank " + std::to_string(rank) +
                              " crashed at phase '" + label + "' (" +
                              spec.describe() + ")");
  }
}

double FaultInjector::computeScale(int rank) const {
  double scale = 1.0;
  for (const FaultSpec& spec : plan_.faults) {
    if (spec.kind == FaultKind::SlowRank && spec.rank == rank) {
      scale *= spec.factor;
    }
  }
  return scale;
}

}  // namespace casvm::net
