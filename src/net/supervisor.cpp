#include "casvm/net/supervisor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "casvm/net/proc_transport.hpp"
#include "casvm/support/error.hpp"
#include "casvm/support/posix.hpp"

namespace casvm::net {

namespace {

long long nowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr std::size_t kFrameHeader = 1 + 8;  // type byte + u64 length

}  // namespace

struct Supervisor::Worker {
  int rank = -1;
  pid_t pid = -1;
  int fd = -1;  ///< read end of the result pipe; -1 once closed
  std::vector<std::byte> buf;
  bool live = false;
  bool resolved = false;
  bool finalDead = false;
  bool hangKilled = false;
  int attempt = 0;
  long long respawnAtMs = -1;  ///< scheduled respawn time; -1 = none
  Frame frame;
  std::string deathReason;
};

Supervisor::Supervisor(ProcTransport& transport, Options opts)
    : transport_(transport), opts_(std::move(opts)) {
  opts_.tuning.validate();
  if (!opts_.logPath.empty()) {
    logFile_ = std::fopen(opts_.logPath.c_str(), "a");
    CASVM_CHECK(logFile_ != nullptr,
                "supervisor: cannot open log file: " + opts_.logPath);
  }
}

Supervisor::~Supervisor() {
  if (logFile_ != nullptr) std::fclose(static_cast<std::FILE*>(logFile_));
}

void Supervisor::log(const std::string& line) {
  std::FILE* out =
      logFile_ != nullptr ? static_cast<std::FILE*>(logFile_) : stderr;
  std::fprintf(out, "[casvm-supervisor +%lldms] %s\n", nowMs() % 1000000000,
               line.c_str());
  std::fflush(out);
}

void Supervisor::spawn(const ChildMain& child, int rank, int attempt) {
  int fds[2];
  CASVM_CHECK(::pipe(fds) == 0,
              std::string("supervisor: pipe failed: ") + std::strerror(errno));
  // Heartbeat grace starts at the spawn, not at the previous incarnation's
  // last beat.
  transport_.beatNow(rank);
  const pid_t pid = ::fork();
  CASVM_CHECK(pid >= 0,
              std::string("supervisor: fork failed: ") + std::strerror(errno));
  if (pid == 0) {
    // Worker process. Drop every parent-held read end so a sibling's pipe
    // does not stay open past its death.
    ::close(fds[0]);
    for (const Worker& w : workers_) {
      if (w.fd >= 0) ::close(w.fd);
    }
    try {
      child(rank, attempt, fds[1]);
    } catch (...) {
      ::_exit(13);
    }
    ::_exit(0);
  }
  ::close(fds[1]);
  const int flags = ::fcntl(fds[0], F_GETFL, 0);
  ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);
  Worker& w = workers_[static_cast<std::size_t>(rank)];
  w.rank = rank;
  w.pid = pid;
  w.fd = fds[0];
  w.buf.clear();
  w.live = true;
  w.hangKilled = false;
  w.attempt = attempt;
  w.respawnAtMs = -1;
  log("rank " + std::to_string(rank) + ": spawned worker pid " +
      std::to_string(pid) + " (attempt " + std::to_string(attempt) + ")");
}

void Supervisor::drainPipe(Worker& w) {
  if (w.fd < 0) return;
  for (;;) {
    std::byte chunk[4096];
    const ssize_t n = ::read(w.fd, chunk, sizeof chunk);
    if (n > 0) {
      w.buf.insert(w.buf.end(), chunk, chunk + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EOF (worker closed/exited) or hard error: nothing more will come.
    ::close(w.fd);
    w.fd = -1;
    break;
  }
  if (w.resolved || w.buf.size() < kFrameHeader) return;
  std::uint64_t len = 0;
  std::memcpy(&len, w.buf.data() + 1, 8);
  if (w.buf.size() < kFrameHeader + len) return;
  w.frame.type = static_cast<char>(w.buf[0]);
  w.frame.payload.assign(w.buf.begin() + kFrameHeader,
                         w.buf.begin() + kFrameHeader +
                             static_cast<std::ptrdiff_t>(len));
  w.resolved = true;
  log("rank " + std::to_string(w.rank) + ": result frame '" +
      std::string(1, w.frame.type) + "' (" + std::to_string(len) + " bytes)");
}

void Supervisor::handleDeath(Worker& w, int status) {
  w.live = false;
  // The pipe may still hold a complete frame written just before death.
  drainPipe(w);
  if (w.fd >= 0) {
    ::close(w.fd);
    w.fd = -1;
  }
  if (w.resolved) return;

  std::string taxonomy;
  if (w.hangKilled) {
    taxonomy = "hang (heartbeat stale past " +
               std::to_string(opts_.tuning.staleAfterMs()) + "ms, SIGKILLed)";
  } else if (WIFSIGNALED(status)) {
    taxonomy = "crash (killed by signal " +
               std::to_string(WTERMSIG(status)) + ")";
  } else {
    taxonomy = "crash (exited with status " +
               std::to_string(WIFEXITED(status) ? WEXITSTATUS(status) : -1) +
               " without a result)";
  }
  const std::string what = "rank " + std::to_string(w.rank) + " worker pid " +
                           std::to_string(w.pid) + " died: " + taxonomy;
  log(what);

  if (opts_.allowRespawn && w.attempt < opts_.respawnBudget) {
    const int next = w.attempt + 1;
    const int backoff = opts_.tuning.backoffForAttemptMs(next);
    w.respawnAtMs = nowMs() + backoff;
    log("rank " + std::to_string(w.rank) + ": scheduling respawn attempt " +
        std::to_string(next) + " in " + std::to_string(backoff) + "ms");
    return;
  }

  w.finalDead = true;
  w.deathReason = what + (opts_.allowRespawn
                              ? " (respawn budget of " +
                                    std::to_string(opts_.respawnBudget) +
                                    " exhausted)"
                              : "");
  if (opts_.tolerateFailures) {
    log("rank " + std::to_string(w.rank) +
        ": marking failed, run degrades and continues");
    transport_.markFailed(w.rank, w.deathReason);
  } else {
    log("rank " + std::to_string(w.rank) + ": aborting the whole run");
    transport_.abortAll();
  }
}

std::vector<Supervisor::RankOutcome> Supervisor::run(const ChildMain& child) {
  const int size = transport_.size();
  workers_.assign(static_cast<std::size_t>(size), Worker{});
  for (int r = 0; r < size; ++r) spawn(child, r, 0);

  for (;;) {
    bool allDone = true;
    for (const Worker& w : workers_) {
      if (!(w.finalDead || (w.resolved && !w.live))) {
        allDone = false;
        break;
      }
    }
    if (allDone) break;

    // Wait for pipe activity (bounded so heartbeats and respawn timers
    // stay responsive even with nothing readable).
    std::vector<pollfd> fds;
    for (const Worker& w : workers_) {
      if (w.fd >= 0) fds.push_back(pollfd{w.fd, POLLIN, 0});
    }
    if (fds.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    } else {
      ::poll(fds.data(), fds.size(), 20);
    }
    for (Worker& w : workers_) drainPipe(w);

    for (Worker& w : workers_) {
      if (!w.live) continue;
      int status = 0;
      const pid_t r = support::waitpidRetry(w.pid, &status, WNOHANG);
      if (r == w.pid) handleDeath(w, status);
    }

    // Applies to resolved-but-unreaped workers too: a worker frozen
    // between its result frame and _exit must not stall the run forever.
    for (Worker& w : workers_) {
      if (!w.live || w.hangKilled) continue;
      const long long age = transport_.heartbeatAgeMs(w.rank);
      if (age <= opts_.tuning.staleAfterMs()) continue;
      log("rank " + std::to_string(w.rank) + ": heartbeat stale for " +
          std::to_string(age) + "ms (limit " +
          std::to_string(opts_.tuning.staleAfterMs()) +
          "ms), SIGKILLing pid " + std::to_string(w.pid) +
          " (taxonomy: hang)");
      w.hangKilled = true;
      ::kill(w.pid, SIGKILL);
    }

    const long long now = nowMs();
    for (Worker& w : workers_) {
      if (w.live || w.finalDead || w.resolved) continue;
      if (w.respawnAtMs < 0 || now < w.respawnAtMs) continue;
      transport_.resetInbound(w.rank);
      spawn(child, w.rank, w.attempt + 1);
    }
  }

  std::vector<RankOutcome> outcomes(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    Worker& w = workers_[static_cast<std::size_t>(r)];
    RankOutcome& o = outcomes[static_cast<std::size_t>(r)];
    o.resolved = w.resolved;
    o.attempts = w.attempt;
    o.sawHang = w.hangKilled;
    o.frame = std::move(w.frame);
    o.deathReason = w.deathReason;
    if (w.fd >= 0) {
      ::close(w.fd);
      w.fd = -1;
    }
  }
  return outcomes;
}

}  // namespace casvm::net
