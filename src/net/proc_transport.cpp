#include "casvm/net/proc_transport.hpp"

#include <sys/mman.h>

#include <array>
#include <chrono>
#include <cstring>
#include <new>

#include "casvm/support/error.hpp"

namespace casvm::net {

namespace {

constexpr std::size_t kReasonBytes = 256;
constexpr std::size_t kRingBytes = std::size_t{1} << 18;  // data per edge
constexpr std::size_t kRingHeaderBytes = 64;              // head/tail + pad
constexpr std::size_t kFrameHeaderBytes = 24;
/// Sanity bound on a single message; a larger header length means the
/// reader lost frame alignment (e.g. it attached mid-stream after a
/// partial write) and must stop trusting that edge.
constexpr std::uint64_t kMaxFrameBytes = std::uint64_t{1} << 31;

std::size_t alignUp(std::size_t n, std::size_t a) {
  return (n + a - 1) / a * a;
}

long long nowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void packFrameHeader(std::byte* out, std::uint64_t bytes, int tag,
                     double arrivalVirtualTime) {
  std::memcpy(out, &bytes, 8);
  const std::int32_t tag32 = tag;
  std::memcpy(out + 8, &tag32, 4);
  const std::int32_t pad = 0;
  std::memcpy(out + 12, &pad, 4);
  std::memcpy(out + 16, &arrivalVirtualTime, 8);
}

}  // namespace

/// Shared-memory ring bookkeeping. head/tail are monotonic byte offsets
/// (never wrapped), so fill = tail - head and the data index is offset %
/// kRingBytes. The producer owns tail, the consumer owns head.
struct ProcTransport::Ring {
  std::atomic<std::uint64_t> head;
  std::atomic<std::uint64_t> tail;

  std::byte* data() {
    return reinterpret_cast<std::byte*>(this) + kRingHeaderBytes;
  }

  void write(std::uint64_t at, const std::byte* src, std::size_t n) {
    const std::size_t off = static_cast<std::size_t>(at % kRingBytes);
    const std::size_t first = std::min(n, kRingBytes - off);
    std::memcpy(data() + off, src, first);
    std::memcpy(data(), src + first, n - first);
  }

  void read(std::uint64_t at, std::byte* dst, std::size_t n) {
    const std::size_t off = static_cast<std::size_t>(at % kRingBytes);
    const std::size_t first = std::min(n, kRingBytes - off);
    std::memcpy(dst, data() + off, first);
    std::memcpy(dst + first, data(), n - first);
  }
};

/// Shared control block. The per-rank heartbeat/failure arrays and the
/// traffic counters follow at 64-byte-aligned offsets; pointers to them
/// are computed once in the constructor.
struct ProcTransport::Control {
  std::atomic<int> aborted;
  std::atomic<long long>* heartbeat = nullptr;  // P entries
  std::atomic<int>* failed = nullptr;           // P entries
  char* reasons = nullptr;                      // P * kReasonBytes
};

/// Per-inbound-edge reassembly state (local to the draining process).
struct ProcTransport::EdgeReader {
  bool haveHeader = false;
  std::size_t headerFill = 0;
  std::array<std::byte, kFrameHeaderBytes> header{};
  std::uint64_t payloadBytes = 0;
  int tag = 0;
  double arrivalVirtualTime = 0.0;
  std::vector<std::byte> payload;
  std::size_t payloadFill = 0;
  /// Frame alignment lost (oversized header length): stop draining the
  /// edge rather than deliver garbage or kill the run.
  bool poisoned = false;

  void resetFrame() {
    haveHeader = false;
    headerFill = 0;
    payloadBytes = 0;
    payload.clear();
    payloadFill = 0;
  }
};

ProcTransport::ProcTransport(int size, TransportTuning tuning)
    : size_(size), tuning_(tuning) {
  CASVM_CHECK(size > 0, "proc transport needs at least one rank");
  tuning_.validate();

  const std::size_t p = static_cast<std::size_t>(size);
  const std::size_t heartbeatOff = alignUp(sizeof(Control), 64);
  const std::size_t failedOff =
      alignUp(heartbeatOff + p * sizeof(std::atomic<long long>), 64);
  const std::size_t reasonOff =
      alignUp(failedOff + p * sizeof(std::atomic<int>), 64);
  const std::size_t trafficBytesOff =
      alignUp(reasonOff + p * kReasonBytes, 64);
  const std::size_t trafficOpsOff = alignUp(
      trafficBytesOff + p * p * sizeof(std::atomic<std::size_t>), 64);
  const std::size_t ringsOff =
      alignUp(trafficOpsOff + p * p * sizeof(std::atomic<std::size_t>), 64);
  ringStride_ = kRingHeaderBytes + kRingBytes;
  arenaBytes_ = ringsOff + p * p * ringStride_;

  arena_ = ::mmap(nullptr, arenaBytes_, PROT_READ | PROT_WRITE,
                  MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  CASVM_CHECK(arena_ != MAP_FAILED,
              "proc transport: cannot map a " +
                  std::to_string(arenaBytes_ >> 20) +
                  " MiB shared arena for " + std::to_string(size) + " ranks");

  auto* base = static_cast<std::byte*>(arena_);
  control_ = new (base) Control;
  new (&control_->aborted) std::atomic<int>(0);
  control_->heartbeat =
      reinterpret_cast<std::atomic<long long>*>(base + heartbeatOff);
  control_->failed = reinterpret_cast<std::atomic<int>*>(base + failedOff);
  control_->reasons = reinterpret_cast<char*>(base + reasonOff);
  const long long now = nowMs();
  for (std::size_t r = 0; r < p; ++r) {
    new (&control_->heartbeat[r]) std::atomic<long long>(now);
    new (&control_->failed[r]) std::atomic<int>(0);
  }
  trafficBytes_ =
      reinterpret_cast<std::atomic<std::size_t>*>(base + trafficBytesOff);
  trafficOps_ =
      reinterpret_cast<std::atomic<std::size_t>*>(base + trafficOpsOff);
  for (std::size_t i = 0; i < p * p; ++i) {
    new (&trafficBytes_[i]) std::atomic<std::size_t>(0);
    new (&trafficOps_[i]) std::atomic<std::size_t>(0);
  }
  ringsBase_ = base + ringsOff;
  for (std::size_t i = 0; i < p * p; ++i) {
    auto* r = reinterpret_cast<Ring*>(ringsBase_ + i * ringStride_);
    new (&r->head) std::atomic<std::uint64_t>(0);
    new (&r->tail) std::atomic<std::uint64_t>(0);
  }
}

ProcTransport::~ProcTransport() {
  detachWorker();
  if (arena_ != nullptr) ::munmap(arena_, arenaBytes_);
}

ProcTransport::Ring& ProcTransport::ring(int src, int dst) const {
  const std::size_t i =
      static_cast<std::size_t>(src) * static_cast<std::size_t>(size_) +
      static_cast<std::size_t>(dst);
  return *reinterpret_cast<Ring*>(ringsBase_ + i * ringStride_);
}

bool ProcTransport::sharedAborted() const {
  return control_->aborted.load(std::memory_order_acquire) != 0;
}

// --- shared flag surface -----------------------------------------------------

void ProcTransport::abortAll() {
  control_->aborted.store(1, std::memory_order_release);
  if (self_ >= 0) mailbox_.abort();
}

bool ProcTransport::aborted() const { return sharedAborted(); }

void ProcTransport::markFailed(int rank, const std::string& reason) {
  CASVM_CHECK(rank >= 0 && rank < size_, "markFailed: rank out of range");
  char* slot =
      control_->reasons + static_cast<std::size_t>(rank) * kReasonBytes;
  const std::size_t n = std::min(reason.size(), kReasonBytes - 1);
  std::memcpy(slot, reason.data(), n);
  slot[n] = '\0';
  control_->failed[rank].store(1, std::memory_order_release);
}

bool ProcTransport::rankFailed(int rank) const {
  CASVM_CHECK(rank >= 0 && rank < size_, "rankFailed: rank out of range");
  return control_->failed[rank].load(std::memory_order_acquire) != 0;
}

std::vector<int> ProcTransport::failedRanks() const {
  std::vector<int> out;
  for (int r = 0; r < size_; ++r) {
    if (rankFailed(r)) out.push_back(r);
  }
  return out;
}

std::string ProcTransport::failureReason(int rank) const {
  // The writer NUL-terminates before the release-store on the flag, and
  // callers only read after observing the flag.
  return std::string(control_->reasons +
                     static_cast<std::size_t>(rank) * kReasonBytes);
}

std::atomic<std::size_t>* ProcTransport::trafficBytesStorage() {
  return trafficBytes_;
}

std::atomic<std::size_t>* ProcTransport::trafficOpsStorage() {
  return trafficOps_;
}

// --- heartbeats --------------------------------------------------------------

void ProcTransport::beatNow(int rank) {
  CASVM_CHECK(rank >= 0 && rank < size_, "beatNow: rank out of range");
  control_->heartbeat[rank].store(nowMs(), std::memory_order_release);
}

long long ProcTransport::heartbeatAgeMs(int rank) const {
  CASVM_CHECK(rank >= 0 && rank < size_,
              "heartbeatAgeMs: rank out of range");
  return nowMs() - control_->heartbeat[rank].load(std::memory_order_acquire);
}

// --- data path ---------------------------------------------------------------

bool ProcTransport::writeChunked(Ring& ring, int dst, const void* data,
                                 std::size_t len) {
  const auto* src = static_cast<const std::byte*>(data);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(tuning_.commTimeoutMs);
  std::size_t done = 0;
  while (done < len) {
    const std::uint64_t head = ring.head.load(std::memory_order_acquire);
    const std::uint64_t tail = ring.tail.load(std::memory_order_relaxed);
    const std::size_t free =
        kRingBytes - static_cast<std::size_t>(tail - head);
    if (free == 0) {
      if (sharedAborted()) {
        throw Error("casvm::net run aborted while sending a message");
      }
      // A dead receiver never drains its ring; drop the rest of the
      // frame silently, mirroring the thread backend where messages to a
      // failed rank sit unread in its mailbox.
      if (rankFailed(dst)) return false;
      CASVM_CHECK(std::chrono::steady_clock::now() < deadline,
                  "comm timeout: rank " + std::to_string(self_) + " spent " +
                      std::to_string(tuning_.commTimeoutMs) +
                      "ms blocked sending to rank " + std::to_string(dst) +
                      " (ring full) — the peer process likely hung or died");
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      continue;
    }
    const std::size_t n = std::min(free, len - done);
    ring.write(tail, src + done, n);
    ring.tail.store(tail + n, std::memory_order_release);
    done += n;
  }
  return true;
}

void ProcTransport::put(int src, int dst, int tag, Message msg) {
  CASVM_CHECK(src >= 0 && src < size_ && dst >= 0 && dst < size_,
              "put: rank out of range");
  Ring& r = ring(src, dst);
  std::array<std::byte, kFrameHeaderBytes> header;
  packFrameHeader(header.data(), msg.payload.size(), tag,
                  msg.arrivalVirtualTime);
  if (!writeChunked(r, dst, header.data(), header.size())) return;
  writeChunked(r, dst, msg.payload.data(), msg.payload.size());
}

Message ProcTransport::take(int self, int src, int tag) {
  CASVM_CHECK(self == self_, "take: this process is not attached as rank " +
                                 std::to_string(self));
  auto msg = mailbox_.takeFor(src, tag, tuning_.commTimeoutMs);
  if (!msg) {
    throw Error("comm timeout: rank " + std::to_string(self) + " waited " +
                std::to_string(tuning_.commTimeoutMs) +
                "ms for a message from rank " + std::to_string(src) +
                " (tag " + std::to_string(tag) +
                ") — the peer process likely hung or died; see the "
                "supervisor log for its fate");
  }
  return std::move(*msg);
}

// --- worker attach / drain thread -------------------------------------------

void ProcTransport::attachWorker(int rank) {
  CASVM_CHECK(rank >= 0 && rank < size_, "attachWorker: rank out of range");
  CASVM_CHECK(self_ < 0, "attachWorker: this process is already attached");
  self_ = rank;
  readers_.clear();
  readers_.resize(static_cast<std::size_t>(size_));
  localFailed_.assign(static_cast<std::size_t>(size_), 0);
  localAborted_ = false;
  stopDrain_.store(false, std::memory_order_relaxed);
  beatNow(rank);
  drainThread_ = std::thread([this] { drainLoop(); });
}

void ProcTransport::detachWorker() {
  if (!drainThread_.joinable()) return;
  stopDrain_.store(true, std::memory_order_release);
  drainThread_.join();
}

bool ProcTransport::drainEdge(int src) {
  EdgeReader& st = readers_[static_cast<std::size_t>(src)];
  if (st.poisoned) return false;
  Ring& r = ring(src, self_);
  bool progress = false;
  for (;;) {
    const std::uint64_t tail = r.tail.load(std::memory_order_acquire);
    const std::uint64_t head = r.head.load(std::memory_order_relaxed);
    const std::size_t avail = static_cast<std::size_t>(tail - head);
    if (avail == 0) break;
    if (!st.haveHeader) {
      const std::size_t n =
          std::min(kFrameHeaderBytes - st.headerFill, avail);
      r.read(head, st.header.data() + st.headerFill, n);
      r.head.store(head + n, std::memory_order_release);
      st.headerFill += n;
      progress = true;
      if (st.headerFill < kFrameHeaderBytes) continue;
      std::memcpy(&st.payloadBytes, st.header.data(), 8);
      std::int32_t tag32 = 0;
      std::memcpy(&tag32, st.header.data() + 8, 4);
      st.tag = tag32;
      std::memcpy(&st.arrivalVirtualTime, st.header.data() + 16, 8);
      if (st.payloadBytes > kMaxFrameBytes) {
        // Frame alignment lost (partial write from a dead incarnation the
        // supervisor didn't clear). Poison only this edge.
        st.poisoned = true;
        return progress;
      }
      st.haveHeader = true;
      st.payload.resize(static_cast<std::size_t>(st.payloadBytes));
      st.payloadFill = 0;
    } else {
      const std::size_t n = std::min(
          static_cast<std::size_t>(st.payloadBytes) - st.payloadFill, avail);
      r.read(head, st.payload.data() + st.payloadFill, n);
      r.head.store(head + n, std::memory_order_release);
      st.payloadFill += n;
      progress = true;
    }
    if (st.haveHeader && st.payloadFill == st.payloadBytes) {
      mailbox_.put(src, st.tag,
                   Message{std::move(st.payload), st.arrivalVirtualTime});
      st.resetFrame();
    }
  }
  return progress;
}

void ProcTransport::drainLoop() {
  while (!stopDrain_.load(std::memory_order_acquire)) {
    beatNow(self_);
    bool progress = false;
    for (int src = 0; src < size_; ++src) {
      progress = drainEdge(src) || progress;
    }
    if (!localAborted_ && sharedAborted()) {
      localAborted_ = true;
      mailbox_.abort();
    }
    for (int src = 0; src < size_; ++src) {
      if (src == self_ || localFailed_[static_cast<std::size_t>(src)]) {
        continue;
      }
      if (!rankFailed(src)) continue;
      // Complete frames were already drained above (messages sent before
      // the death still deliver); a partial frame can never complete.
      readers_[static_cast<std::size_t>(src)].resetFrame();
      localFailed_[static_cast<std::size_t>(src)] = 1;
      mailbox_.failSource(src, failureReason(src));
    }
    if (!progress) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

void ProcTransport::resetInbound(int rank) {
  CASVM_CHECK(rank >= 0 && rank < size_, "resetInbound: rank out of range");
  for (int src = 0; src < size_; ++src) {
    Ring& r = ring(src, rank);
    r.head.store(r.tail.load(std::memory_order_acquire),
                 std::memory_order_release);
  }
}

}  // namespace casvm::net
