#include "casvm/data/dataset.hpp"

#include <algorithm>
#include <cstring>

#include "casvm/support/error.hpp"

namespace casvm::data {

namespace {

void checkLabels(const std::vector<std::int8_t>& labels) {
  for (std::int8_t y : labels) {
    CASVM_CHECK(y == 1 || y == -1, "labels must be +1 or -1");
  }
}

// Wire header for pack()/unpack().
struct WireHeader {
  std::uint8_t storage;
  std::uint64_t rows;
  std::uint64_t cols;
  std::uint64_t nnz;  // only meaningful for sparse
};

template <class T>
void appendPod(std::vector<std::byte>& out, const T* data, std::size_t count) {
  const std::size_t bytes = count * sizeof(T);
  const std::size_t off = out.size();
  out.resize(off + bytes);
  if (bytes > 0) std::memcpy(out.data() + off, data, bytes);
}

template <class T>
void readPod(std::span<const std::byte>& in, T* data, std::size_t count) {
  const std::size_t bytes = count * sizeof(T);
  CASVM_CHECK(in.size() >= bytes, "unpack: truncated payload");
  if (bytes > 0) std::memcpy(data, in.data(), bytes);
  in = in.subspan(bytes);
}

}  // namespace

Dataset Dataset::fromDense(std::size_t cols, std::vector<float> values,
                           std::vector<std::int8_t> labels) {
  CASVM_CHECK(cols > 0 || labels.empty(),
              "non-empty dataset needs at least one feature");
  CASVM_CHECK(values.size() == cols * labels.size(),
              "values size must be rows*cols");
  checkLabels(labels);
  Dataset ds;
  ds.storage_ = Storage::Dense;
  ds.cols_ = cols;
  ds.dense_ = std::move(values);
  ds.labels_ = std::move(labels);
  ds.computeSelfDots();
  return ds;
}

Dataset Dataset::fromSparse(std::size_t cols, std::vector<std::size_t> rowPtr,
                            std::vector<std::uint32_t> colIdx,
                            std::vector<float> values,
                            std::vector<std::int8_t> labels) {
  CASVM_CHECK(cols > 0 || labels.empty(),
              "non-empty dataset needs at least one feature");
  CASVM_CHECK(rowPtr.size() == labels.size() + 1,
              "rowPtr must have rows+1 entries");
  CASVM_CHECK(rowPtr.front() == 0 && rowPtr.back() == colIdx.size(),
              "rowPtr must start at 0 and end at nnz");
  CASVM_CHECK(colIdx.size() == values.size(), "colIdx/values size mismatch");
  checkLabels(labels);
  for (std::size_t i = 0; i + 1 < rowPtr.size(); ++i) {
    CASVM_CHECK(rowPtr[i] <= rowPtr[i + 1], "rowPtr must be nondecreasing");
    for (std::size_t k = rowPtr[i]; k + 1 < rowPtr[i + 1]; ++k) {
      CASVM_CHECK(colIdx[k] < colIdx[k + 1],
                  "column indices must be strictly increasing per row");
    }
  }
  for (std::uint32_t c : colIdx) {
    CASVM_CHECK(c < cols, "column index out of range");
  }
  Dataset ds;
  ds.storage_ = Storage::Sparse;
  ds.cols_ = cols;
  ds.rowPtr_ = std::move(rowPtr);
  ds.colIdx_ = std::move(colIdx);
  ds.sparseVals_ = std::move(values);
  ds.labels_ = std::move(labels);
  ds.computeSelfDots();
  return ds;
}

std::size_t Dataset::positives() const {
  std::size_t count = 0;
  for (std::int8_t y : labels_) count += (y == 1);
  return count;
}

std::size_t Dataset::nonzeros() const {
  return storage_ == Storage::Dense ? rows() * cols_ : sparseVals_.size();
}

std::size_t Dataset::sampleBytes() const {
  if (storage_ == Storage::Dense) return dense_.size() * sizeof(float);
  return colIdx_.size() * sizeof(std::uint32_t) +
         sparseVals_.size() * sizeof(float) +
         rowPtr_.size() * sizeof(std::size_t);
}

std::span<const float> Dataset::denseRow(std::size_t i) const {
  CASVM_ASSERT(storage_ == Storage::Dense, "denseRow on sparse dataset");
  CASVM_ASSERT(i < rows(), "row out of range");
  return {dense_.data() + i * cols_, cols_};
}

std::span<const std::uint32_t> Dataset::sparseIndices(std::size_t i) const {
  CASVM_ASSERT(storage_ == Storage::Sparse, "sparseIndices on dense dataset");
  CASVM_ASSERT(i < rows(), "row out of range");
  return {colIdx_.data() + rowPtr_[i], rowPtr_[i + 1] - rowPtr_[i]};
}

std::span<const float> Dataset::sparseValues(std::size_t i) const {
  CASVM_ASSERT(storage_ == Storage::Sparse, "sparseValues on dense dataset");
  CASVM_ASSERT(i < rows(), "row out of range");
  return {sparseVals_.data() + rowPtr_[i], rowPtr_[i + 1] - rowPtr_[i]};
}

double Dataset::dot(std::size_t i, std::size_t j) const {
  CASVM_ASSERT(i < rows() && j < rows(), "row out of range");
  if (storage_ == Storage::Dense) {
    const float* a = dense_.data() + i * cols_;
    const float* b = dense_.data() + j * cols_;
    double acc = 0.0;
    for (std::size_t k = 0; k < cols_; ++k) acc += double(a[k]) * double(b[k]);
    return acc;
  }
  // Sparse-sparse merge join over sorted column indices.
  std::size_t pa = rowPtr_[i], ea = rowPtr_[i + 1];
  std::size_t pb = rowPtr_[j], eb = rowPtr_[j + 1];
  double acc = 0.0;
  while (pa < ea && pb < eb) {
    const std::uint32_t ca = colIdx_[pa], cb = colIdx_[pb];
    if (ca == cb) {
      acc += double(sparseVals_[pa]) * double(sparseVals_[pb]);
      ++pa;
      ++pb;
    } else if (ca < cb) {
      ++pa;
    } else {
      ++pb;
    }
  }
  return acc;
}

double Dataset::dotWith(std::size_t i, std::span<const float> x) const {
  CASVM_ASSERT(i < rows(), "row out of range");
  CASVM_CHECK(x.size() == cols_, "external vector has wrong length");
  double acc = 0.0;
  if (storage_ == Storage::Dense) {
    const float* a = dense_.data() + i * cols_;
    for (std::size_t k = 0; k < cols_; ++k) acc += double(a[k]) * double(x[k]);
    return acc;
  }
  for (std::size_t p = rowPtr_[i]; p < rowPtr_[i + 1]; ++p) {
    acc += double(sparseVals_[p]) * double(x[colIdx_[p]]);
  }
  return acc;
}

void Dataset::addRowTo(std::size_t i, std::span<double> acc) const {
  CASVM_ASSERT(i < rows(), "row out of range");
  CASVM_CHECK(acc.size() == cols_, "accumulator has wrong length");
  if (storage_ == Storage::Dense) {
    const float* a = dense_.data() + i * cols_;
    for (std::size_t k = 0; k < cols_; ++k) acc[k] += a[k];
    return;
  }
  for (std::size_t p = rowPtr_[i]; p < rowPtr_[i + 1]; ++p) {
    acc[colIdx_[p]] += sparseVals_[p];
  }
}

void Dataset::copyRowDense(std::size_t i, std::span<float> out) const {
  CASVM_ASSERT(i < rows(), "row out of range");
  CASVM_CHECK(out.size() == cols_, "output has wrong length");
  if (storage_ == Storage::Dense) {
    const float* a = dense_.data() + i * cols_;
    std::copy(a, a + cols_, out.begin());
    return;
  }
  std::fill(out.begin(), out.end(), 0.0f);
  for (std::size_t p = rowPtr_[i]; p < rowPtr_[i + 1]; ++p) {
    out[colIdx_[p]] = sparseVals_[p];
  }
}

Dataset Dataset::subset(std::span<const std::size_t> idx) const {
  std::vector<std::int8_t> labels;
  labels.reserve(idx.size());
  for (std::size_t i : idx) {
    CASVM_CHECK(i < rows(), "subset index out of range");
    labels.push_back(labels_[i]);
  }
  if (storage_ == Storage::Dense) {
    std::vector<float> values;
    values.reserve(idx.size() * cols_);
    for (std::size_t i : idx) {
      const float* a = dense_.data() + i * cols_;
      values.insert(values.end(), a, a + cols_);
    }
    return fromDense(cols_, std::move(values), std::move(labels));
  }
  std::vector<std::size_t> rowPtr{0};
  std::vector<std::uint32_t> colIdx;
  std::vector<float> values;
  for (std::size_t i : idx) {
    for (std::size_t p = rowPtr_[i]; p < rowPtr_[i + 1]; ++p) {
      colIdx.push_back(colIdx_[p]);
      values.push_back(sparseVals_[p]);
    }
    rowPtr.push_back(colIdx.size());
  }
  return fromSparse(cols_, std::move(rowPtr), std::move(colIdx),
                    std::move(values), std::move(labels));
}

Dataset Dataset::concat(const Dataset& a, const Dataset& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  CASVM_CHECK(a.cols_ == b.cols_, "concat: feature counts differ");
  CASVM_CHECK(a.storage_ == b.storage_, "concat: storage kinds differ");
  std::vector<std::int8_t> labels = a.labels_;
  labels.insert(labels.end(), b.labels_.begin(), b.labels_.end());
  if (a.storage_ == Storage::Dense) {
    std::vector<float> values = a.dense_;
    values.insert(values.end(), b.dense_.begin(), b.dense_.end());
    return fromDense(a.cols_, std::move(values), std::move(labels));
  }
  std::vector<std::size_t> rowPtr = a.rowPtr_;
  const std::size_t offset = a.sparseVals_.size();
  for (std::size_t i = 1; i < b.rowPtr_.size(); ++i) {
    rowPtr.push_back(b.rowPtr_[i] + offset);
  }
  std::vector<std::uint32_t> colIdx = a.colIdx_;
  colIdx.insert(colIdx.end(), b.colIdx_.begin(), b.colIdx_.end());
  std::vector<float> values = a.sparseVals_;
  values.insert(values.end(), b.sparseVals_.begin(), b.sparseVals_.end());
  return fromSparse(a.cols_, std::move(rowPtr), std::move(colIdx),
                    std::move(values), std::move(labels));
}

Dataset Dataset::relabel(Dataset ds, std::vector<std::int8_t> labels) {
  CASVM_CHECK(labels.size() == ds.rows(), "one label per row required");
  checkLabels(labels);
  ds.labels_ = std::move(labels);
  return ds;
}

std::vector<std::byte> Dataset::pack(std::span<const std::size_t> idx) const {
  std::vector<std::byte> out;
  WireHeader header{};
  header.storage = static_cast<std::uint8_t>(storage_);
  header.rows = idx.size();
  header.cols = cols_;

  if (storage_ == Storage::Dense) {
    header.nnz = idx.size() * cols_;
    appendPod(out, &header, 1);
    for (std::size_t i : idx) appendPod(out, &labels_[i], 1);
    for (std::size_t i : idx) {
      appendPod(out, dense_.data() + i * cols_, cols_);
    }
    return out;
  }

  std::uint64_t nnz = 0;
  for (std::size_t i : idx) nnz += rowPtr_[i + 1] - rowPtr_[i];
  header.nnz = nnz;
  appendPod(out, &header, 1);
  for (std::size_t i : idx) appendPod(out, &labels_[i], 1);
  for (std::size_t i : idx) {
    const std::uint64_t len = rowPtr_[i + 1] - rowPtr_[i];
    appendPod(out, &len, 1);
    appendPod(out, colIdx_.data() + rowPtr_[i], len);
    appendPod(out, sparseVals_.data() + rowPtr_[i], len);
  }
  return out;
}

std::vector<std::byte> Dataset::packAll() const {
  std::vector<std::size_t> idx(rows());
  for (std::size_t i = 0; i < rows(); ++i) idx[i] = i;
  return pack(idx);
}

Dataset Dataset::unpack(std::span<const std::byte> bytes) {
  WireHeader header{};
  readPod(bytes, &header, 1);
  const std::size_t m = header.rows;
  const std::size_t n = header.cols;
  std::vector<std::int8_t> labels(m);
  readPod(bytes, labels.data(), m);

  if (header.storage == static_cast<std::uint8_t>(Storage::Dense)) {
    std::vector<float> values(m * n);
    readPod(bytes, values.data(), m * n);
    CASVM_CHECK(bytes.empty(), "unpack: trailing bytes");
    return fromDense(n, std::move(values), std::move(labels));
  }

  std::vector<std::size_t> rowPtr{0};
  std::vector<std::uint32_t> colIdx;
  std::vector<float> values;
  colIdx.reserve(header.nnz);
  values.reserve(header.nnz);
  for (std::size_t i = 0; i < m; ++i) {
    std::uint64_t len = 0;
    readPod(bytes, &len, 1);
    const std::size_t off = colIdx.size();
    colIdx.resize(off + len);
    values.resize(off + len);
    readPod(bytes, colIdx.data() + off, len);
    readPod(bytes, values.data() + off, len);
    rowPtr.push_back(colIdx.size());
  }
  CASVM_CHECK(bytes.empty(), "unpack: trailing bytes");
  return fromSparse(n, std::move(rowPtr), std::move(colIdx), std::move(values),
                    std::move(labels));
}

void Dataset::computeSelfDots() {
  selfDots_.resize(rows());
  for (std::size_t i = 0; i < rows(); ++i) {
    double acc = 0.0;
    if (storage_ == Storage::Dense) {
      const float* a = dense_.data() + i * cols_;
      for (std::size_t k = 0; k < cols_; ++k) acc += double(a[k]) * double(a[k]);
    } else {
      for (std::size_t p = rowPtr_[i]; p < rowPtr_[i + 1]; ++p) {
        acc += double(sparseVals_[p]) * double(sparseVals_[p]);
      }
    }
    selfDots_[i] = acc;
  }
}

}  // namespace casvm::data
