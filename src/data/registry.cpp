#include "casvm/data/registry.hpp"

#include <algorithm>
#include <cmath>

#include "casvm/support/error.hpp"

namespace casvm::data {

namespace {

/// Hard sample budget for any generated stand-in (train + test combined
/// stay well under size_t/row-buffer limits for every registered feature
/// count). 2^24 ~ 16.8M samples — far above the paper's largest set.
constexpr std::size_t kMaxStandinSamples = std::size_t{1} << 24;

MixtureSpec mixture(std::size_t samples, std::size_t features,
                    std::size_t clusters, double positiveFraction,
                    double labelNoise, double sparsity = 0.0,
                    bool sparseOutput = false,
                    bool clusterSparsePattern = false) {
  MixtureSpec spec;
  spec.samples = samples;
  spec.features = features;
  spec.clusters = clusters;
  spec.positiveFraction = positiveFraction;
  spec.labelNoise = labelNoise;
  spec.sparsity = sparsity;
  spec.sparseOutput = sparseOutput;
  spec.clusterSparsePattern = clusterSparsePattern;
  // Scale the mixture geometry so that within-cluster spread stays 1.0
  // while the centers remain well separated in any dimension count.
  spec.centerSpread = 6.0 / std::sqrt(static_cast<double>(features));
  spec.clusterSpread = 1.0 / std::sqrt(static_cast<double>(features));
  // Within-component points scatter ~clusterSpread*sqrt(n) = 1 from their
  // center; keep component centers at least 4 apart so the cluster
  // structure is unambiguous for any seed.
  spec.minCenterSeparation = 4.0;
  return spec;
}

// Container-feasible default sizes; gamma ~ 1/(2 sigma^2 n_effective) for
// the normalized geometry above, tuned per set for high base accuracy.
const std::vector<StandinSpec>& allSpecs() {
  static const std::vector<StandinSpec> specs = [] {
    std::vector<StandinSpec> s;
    // name, field, paper m, paper n, mixture, gamma, C
    s.push_back({"adult", "Economy", 32561, 123,
                 mixture(3200, 123, 8, 0.24, 0.05), 0.5, 1.0});
    s.push_back({"epsilon", "Character Recognition", 400000, 2000,
                 mixture(4000, 200, 16, 0.50, 0.02), 0.5, 1.0});
    s.push_back({"face", "Face Detection", 489410, 361,
                 mixture(4800, 100, 12, 0.05, 0.01), 0.5, 1.0});
    s.push_back({"gisette", "Computer Vision", 6000, 5000,
                 mixture(1200, 500, 4, 0.50, 0.02), 0.5, 1.0});
    s.push_back({"ijcnn", "Text Decoding", 49990, 22,
                 mixture(5000, 22, 10, 0.10, 0.02), 0.5, 1.0});
    s.push_back({"usps", "Transportation", 266079, 675,
                 mixture(4000, 128, 10, 0.50, 0.01), 0.5, 1.0});
    // Structured sparsity (per-component feature supports, like topic
    // vocabularies); gamma is retuned for the shrunken within-component
    // distances (~(1-sparsity) of the dense case).
    s.push_back({"webspam", "Management", 350000, 16609143,
                 mixture(3200, 300, 8, 0.60, 0.02, 0.90, true, true), 2.5,
                 1.0});
    // `forest` (covertype) appears in Table III only.
    s.push_back({"forest", "Forestry", 581012, 54,
                 mixture(4000, 54, 12, 0.49, 0.03), 0.5, 1.0});
    // Small, fast, well-clustered set for tests and profiling examples.
    s.push_back({"toy", "Testing", 2000, 16, mixture(2000, 16, 8, 0.50, 0.01),
                 0.5, 1.0});
    return s;
  }();
  return specs;
}

}  // namespace

std::vector<std::string> standinNames() {
  std::vector<std::string> names;
  for (const auto& spec : allSpecs()) names.push_back(spec.name);
  return names;
}

const StandinSpec& standinSpec(const std::string& name) {
  for (const auto& spec : allSpecs()) {
    if (spec.name == name) return spec;
  }
  throw Error("unknown dataset stand-in: " + name);
}

NamedDataset standin(const std::string& name, double scale,
                     std::uint64_t seed) {
  CASVM_CHECK(std::isfinite(scale) && scale > 0.0,
              "scale must be positive and finite");
  const StandinSpec& spec = standinSpec(name);

  // Validate the scaled count BEFORE any buffer is sized from it: a
  // hostile scale (1e15, inf) would otherwise overflow the llround and
  // size the sample buffers from garbage. The comparison runs in double,
  // where it is exact for every representable budget violation.
  const double requested = static_cast<double>(spec.mixture.samples) * scale;
  CASVM_CHECK(requested <= static_cast<double>(kMaxStandinSamples),
              "scaled stand-in sample count exceeds the generator budget "
              "(2^24 samples)");

  MixtureSpec trainSpec = spec.mixture;
  trainSpec.samples = std::max<std::size_t>(
      16, static_cast<std::size_t>(std::llround(requested)));
  trainSpec.seed = seed;

  MixtureSpec testSpec = trainSpec;
  testSpec.samples = std::max<std::size_t>(16, trainSpec.samples / 5);
  // Same mixture (same seed-derived geometry) but fresh sample draws: the
  // generator derives centers from the seed, so to share geometry we must
  // generate train+test jointly and split.
  MixtureSpec jointSpec = trainSpec;
  jointSpec.samples = trainSpec.samples + testSpec.samples;
  Dataset joint = generateMixture(jointSpec);

  std::vector<std::size_t> trainIdx(trainSpec.samples);
  std::vector<std::size_t> testIdx(testSpec.samples);
  for (std::size_t i = 0; i < trainSpec.samples; ++i) trainIdx[i] = i;
  for (std::size_t i = 0; i < testSpec.samples; ++i) {
    testIdx[i] = trainSpec.samples + i;
  }

  NamedDataset out;
  out.name = name;
  out.train = joint.subset(trainIdx);
  out.test = joint.subset(testIdx);
  out.suggestedGamma = spec.gamma;
  out.suggestedC = spec.C;
  return out;
}

NamedDataset standinSized(const std::string& name, std::size_t samples,
                          std::uint64_t seed) {
  CASVM_CHECK(samples >= 16, "stand-in needs at least 16 samples");
  CASVM_CHECK(samples <= kMaxStandinSamples,
              "requested stand-in sample count exceeds the generator budget "
              "(2^24 samples)");
  const StandinSpec& spec = standinSpec(name);

  // One virtual sample set: train rows are [0, samples), the held-out test
  // rows follow at [samples, samples + testRows). Each part is generated
  // directly through the chunked generator — no joint buffer, no subset
  // copy — so peak memory is the part being built, million-sample safe.
  MixtureSpec gen = spec.mixture;
  const std::size_t testRows = std::max<std::size_t>(16, samples / 5);
  gen.samples = samples + testRows;
  gen.seed = seed;

  NamedDataset out;
  out.name = name;
  out.train = generateMixtureChunk(gen, 0, samples);
  out.test = generateMixtureChunk(gen, samples, testRows);
  out.suggestedGamma = spec.gamma;
  out.suggestedC = spec.C;
  return out;
}

}  // namespace casvm::data
