#include "casvm/data/scale.hpp"

#include <cmath>
#include <fstream>
#include <limits>

#include "casvm/support/error.hpp"

namespace casvm::data {

Scaler Scaler::fit(const Dataset& train, ScalingKind kind, double lower,
                   double upper) {
  CASVM_CHECK(train.rows() > 0, "cannot fit a scaler on an empty dataset");
  CASVM_CHECK(upper > lower, "target range must be non-empty");
  const std::size_t n = train.cols();
  Scaler s;
  s.kind_ = kind;
  s.targetLower_ = lower;
  s.offset_.assign(n, 0.0);
  s.factor_.assign(n, 1.0);

  // Accumulate per-feature statistics with one densifying pass.
  std::vector<float> row(n);
  if (kind == ScalingKind::MinMax) {
    std::vector<double> lo(n, std::numeric_limits<double>::infinity());
    std::vector<double> hi(n, -std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < train.rows(); ++i) {
      train.copyRowDense(i, row);
      for (std::size_t f = 0; f < n; ++f) {
        lo[f] = std::min(lo[f], double(row[f]));
        hi[f] = std::max(hi[f], double(row[f]));
      }
    }
    for (std::size_t f = 0; f < n; ++f) {
      s.offset_[f] = lo[f];
      const double span = hi[f] - lo[f];
      // Constant features map to the lower target bound.
      s.factor_[f] = span > 0.0 ? (upper - lower) / span : 0.0;
    }
  } else {
    std::vector<double> sum(n, 0.0), sumSq(n, 0.0);
    for (std::size_t i = 0; i < train.rows(); ++i) {
      train.copyRowDense(i, row);
      for (std::size_t f = 0; f < n; ++f) {
        sum[f] += row[f];
        sumSq[f] += double(row[f]) * double(row[f]);
      }
    }
    const double m = static_cast<double>(train.rows());
    for (std::size_t f = 0; f < n; ++f) {
      const double mean = sum[f] / m;
      const double var = std::max(0.0, sumSq[f] / m - mean * mean);
      s.offset_[f] = mean;
      s.factor_[f] = var > 0.0 ? 1.0 / std::sqrt(var) : 0.0;
    }
  }
  return s;
}

void Scaler::applyTo(std::span<float> row) const {
  CASVM_CHECK(row.size() == offset_.size(), "feature count mismatch");
  for (std::size_t f = 0; f < row.size(); ++f) {
    double v = (double(row[f]) - offset_[f]) * factor_[f];
    if (kind_ == ScalingKind::MinMax) v += targetLower_;
    row[f] = static_cast<float>(v);
  }
}

Dataset Scaler::apply(const Dataset& ds) const {
  CASVM_CHECK(ds.cols() == features(), "feature count mismatch");
  const std::size_t n = ds.cols();

  if (ds.storage() == Storage::Dense) {
    std::vector<float> values;
    values.reserve(ds.rows() * n);
    std::vector<float> row(n);
    for (std::size_t i = 0; i < ds.rows(); ++i) {
      ds.copyRowDense(i, row);
      applyTo(row);
      values.insert(values.end(), row.begin(), row.end());
    }
    return Dataset::fromDense(n, std::move(values),
                              std::vector<std::int8_t>(ds.labels()));
  }

  // Sparse: scale stored entries only (zeros stay zero — the svm-scale
  // convention, since densifying high-dimensional data is not viable).
  std::vector<std::size_t> rowPtr{0};
  std::vector<std::uint32_t> colIdx;
  std::vector<float> values;
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    const auto idx = ds.sparseIndices(i);
    const auto val = ds.sparseValues(i);
    for (std::size_t p = 0; p < idx.size(); ++p) {
      const std::size_t f = idx[p];
      double v = (double(val[p]) - offset_[f]) * factor_[f];
      if (kind_ == ScalingKind::MinMax) v += targetLower_;
      if (v != 0.0) {
        colIdx.push_back(idx[p]);
        values.push_back(static_cast<float>(v));
      }
    }
    rowPtr.push_back(colIdx.size());
  }
  return Dataset::fromSparse(n, std::move(rowPtr), std::move(colIdx),
                             std::move(values),
                             std::vector<std::int8_t>(ds.labels()));
}

void Scaler::save(const std::string& path) const {
  std::ofstream out(path);
  CASVM_CHECK(out.good(), "cannot open scaler file for writing: " + path);
  out << (kind_ == ScalingKind::MinMax ? "minmax" : "standard") << ' '
      << targetLower_ << ' ' << features() << '\n';
  for (std::size_t f = 0; f < features(); ++f) {
    out << offset_[f] << ' ' << factor_[f] << '\n';
  }
  CASVM_CHECK(out.good(), "scaler write failed: " + path);
}

Scaler Scaler::load(const std::string& path) {
  std::ifstream in(path);
  CASVM_CHECK(in.good(), "cannot open scaler file: " + path);
  std::string kindName;
  std::size_t n = 0;
  Scaler s;
  CASVM_CHECK(static_cast<bool>(in >> kindName >> s.targetLower_ >> n),
              "scaler parse error: header");
  if (kindName == "minmax") {
    s.kind_ = ScalingKind::MinMax;
  } else if (kindName == "standard") {
    s.kind_ = ScalingKind::Standard;
  } else {
    throw Error("scaler parse error: unknown kind " + kindName);
  }
  s.offset_.resize(n);
  s.factor_.resize(n);
  for (std::size_t f = 0; f < n; ++f) {
    CASVM_CHECK(static_cast<bool>(in >> s.offset_[f] >> s.factor_[f]),
                "scaler parse error: feature " + std::to_string(f));
  }
  return s;
}

}  // namespace casvm::data
