#include "casvm/data/io.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "casvm/support/error.hpp"

namespace casvm::data {

Dataset readLibsvm(std::istream& in, std::size_t cols) {
  std::vector<std::size_t> rowPtr{0};
  std::vector<std::uint32_t> colIdx;
  std::vector<float> values;
  std::vector<std::int8_t> labels;
  std::size_t maxCol = 0;

  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    // Strip comments and skip blank lines.
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    double rawLabel = 0.0;
    if (!(ls >> rawLabel)) continue;  // blank or comment-only line
    labels.push_back(rawLabel > 0.0 ? 1 : -1);

    std::string pair;
    std::uint32_t prevIdx = 0;
    bool first = true;
    while (ls >> pair) {
      const std::size_t colon = pair.find(':');
      CASVM_CHECK(colon != std::string::npos,
                  "libsvm parse error (missing ':') at line " +
                      std::to_string(lineNo));
      char* end = nullptr;
      const long long rawIdx = std::strtoll(pair.c_str(), &end, 10);
      CASVM_CHECK(end == pair.c_str() + colon && rawIdx >= 1,
                  "libsvm parse error (bad index) at line " +
                      std::to_string(lineNo));
      const float value =
          std::strtof(pair.c_str() + colon + 1, &end);
      CASVM_CHECK(end == pair.c_str() + pair.size(),
                  "libsvm parse error (bad value) at line " +
                      std::to_string(lineNo));
      const std::uint32_t idx = static_cast<std::uint32_t>(rawIdx - 1);
      CASVM_CHECK(first || idx > prevIdx,
                  "libsvm parse error (indices not increasing) at line " +
                      std::to_string(lineNo));
      first = false;
      prevIdx = idx;
      if (value != 0.0f) {
        colIdx.push_back(idx);
        values.push_back(value);
        maxCol = std::max(maxCol, static_cast<std::size_t>(idx) + 1);
      }
    }
    rowPtr.push_back(colIdx.size());
  }

  std::size_t n = cols;
  if (n == 0) n = maxCol == 0 ? 1 : maxCol;
  CASVM_CHECK(n >= maxCol, "explicit cols smaller than max feature index");
  return Dataset::fromSparse(n, std::move(rowPtr), std::move(colIdx),
                             std::move(values), std::move(labels));
}

Dataset readLibsvmFile(const std::string& path, std::size_t cols) {
  std::ifstream in(path);
  CASVM_CHECK(in.good(), "cannot open libsvm file: " + path);
  return readLibsvm(in, cols);
}

void writeLibsvm(const Dataset& ds, std::ostream& out) {
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    out << static_cast<int>(ds.label(i));
    if (ds.storage() == Storage::Sparse) {
      const auto idx = ds.sparseIndices(i);
      const auto val = ds.sparseValues(i);
      for (std::size_t p = 0; p < idx.size(); ++p) {
        out << ' ' << (idx[p] + 1) << ':' << val[p];
      }
    } else {
      const auto row = ds.denseRow(i);
      for (std::size_t k = 0; k < row.size(); ++k) {
        if (row[k] != 0.0f) out << ' ' << (k + 1) << ':' << row[k];
      }
    }
    out << '\n';
  }
}

void writeLibsvmFile(const Dataset& ds, const std::string& path) {
  std::ofstream out(path);
  CASVM_CHECK(out.good(), "cannot open file for writing: " + path);
  writeLibsvm(ds, out);
  CASVM_CHECK(out.good(), "write failed: " + path);
}

}  // namespace casvm::data
