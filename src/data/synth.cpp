#include "casvm/data/synth.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "casvm/support/error.hpp"
#include "casvm/support/rng.hpp"

namespace casvm::data {

namespace {

void validateMixtureSpec(const MixtureSpec& spec) {
  CASVM_CHECK(spec.samples > 0 && spec.features > 0 && spec.clusters > 0,
              "mixture spec must be non-degenerate");
  CASVM_CHECK(spec.positiveFraction >= 0.0 && spec.positiveFraction <= 1.0,
              "positiveFraction must be in [0, 1]");
  CASVM_CHECK(spec.sparsity >= 0.0 && spec.sparsity < 1.0,
              "sparsity must be in [0, 1)");
}

/// The sample-count-independent part of the mixture, drawn from Rng(seed)
/// in exactly the order generateMixture draws it — so the chunked and
/// one-shot generators see the identical geometry.
struct MixtureGeometry {
  std::vector<double> centers;               ///< k x n component centers
  std::vector<std::int8_t> componentLabel;   ///< dominant label per component
  double expressedPositive = 0.0;            ///< positive share the labels express
  std::vector<double> hyperplane;            ///< global separator (uncorrelated mode)
  std::vector<std::vector<bool>> support;    ///< per-component feature supports
};

MixtureGeometry mixtureGeometry(const MixtureSpec& spec, Rng& rng) {
  const std::size_t n = spec.features;
  const std::size_t k = spec.clusters;
  MixtureGeometry geo;

  // Component centers, redrawn while they violate the separation floor.
  geo.centers.resize(k * n);
  for (std::size_t c = 0; c < k; ++c) {
    for (int attempt = 0; attempt < 100; ++attempt) {
      for (std::size_t f = 0; f < n; ++f) {
        geo.centers[c * n + f] = rng.normal(0.0, spec.centerSpread);
      }
      if (spec.minCenterSeparation <= 0.0) break;
      bool ok = true;
      for (std::size_t other = 0; other < c && ok; ++other) {
        double d2 = 0.0;
        for (std::size_t f = 0; f < n; ++f) {
          const double diff =
              geo.centers[c * n + f] - geo.centers[other * n + f];
          d2 += diff * diff;
        }
        ok = d2 >= spec.minCenterSeparation * spec.minCenterSeparation;
      }
      if (ok) break;  // keep this draw (or give up after 100 attempts)
    }
  }

  // Per-component dominant labels (see generateMixture for the rationale).
  geo.componentLabel.assign(k, -1);
  {
    const std::size_t positives = static_cast<std::size_t>(
        std::round(spec.positiveFraction * static_cast<double>(k)));
    std::vector<std::size_t> order(k);
    std::iota(order.begin(), order.end(), 0);
    std::shuffle(order.begin(), order.end(), rng);
    for (std::size_t i = 0; i < positives && i < k; ++i) {
      geo.componentLabel[order[i]] = 1;
    }
  }
  geo.expressedPositive =
      static_cast<double>(std::count(geo.componentLabel.begin(),
                                     geo.componentLabel.end(), 1)) /
      static_cast<double>(k);

  // Global separating hyperplane (used when labels are not cluster-tied).
  geo.hyperplane.resize(n);
  for (double& w : geo.hyperplane) w = rng.normal();

  // Per-component feature supports for the structured-sparsity mode.
  if (spec.sparsity > 0.0 && spec.clusterSparsePattern) {
    const auto keep = static_cast<std::size_t>(std::llround(
        (1.0 - spec.sparsity) * static_cast<double>(spec.features)));
    geo.support.assign(k, std::vector<bool>(n, false));
    for (std::size_t c = 0; c < k; ++c) {
      for (std::size_t f :
           rng.sampleWithoutReplacement(n, std::max<std::size_t>(1, keep))) {
        geo.support[c][f] = true;
      }
    }
  }
  return geo;
}

/// Draw one sample from its own RNG stream against the shared geometry.
/// The draw order matches generateMixture's per-sample body exactly.
void drawSample(const MixtureSpec& spec, const MixtureGeometry& geo,
                Rng& rng, float* row, std::int8_t& label) {
  const std::size_t n = spec.features;
  const std::size_t comp = static_cast<std::size_t>(rng.below(spec.clusters));
  double proj = 0.0;
  for (std::size_t f = 0; f < n; ++f) {
    const double x =
        geo.centers[comp * n + f] + rng.normal(0.0, spec.clusterSpread);
    row[f] = static_cast<float>(x);
    proj += geo.hyperplane[f] * x;
  }

  std::int8_t y;
  if (spec.clusterCorrelatedLabels) {
    y = geo.componentLabel[comp];
    const double target = spec.positiveFraction;
    const double expressed = geo.expressedPositive;
    if (expressed < target && y == -1) {
      const double deficit = (target - expressed) / (1.0 - expressed);
      if (rng.bernoulli(deficit)) y = 1;
    } else if (expressed > target && y == 1) {
      const double excess = (expressed - target) / expressed;
      if (rng.bernoulli(excess)) y = -1;
    }
  } else {
    y = proj >= 0.0 ? 1 : -1;
  }
  if (rng.bernoulli(spec.labelNoise)) y = static_cast<std::int8_t>(-y);
  label = y;

  if (spec.sparsity > 0.0) {
    if (spec.clusterSparsePattern) {
      for (std::size_t f = 0; f < n; ++f) {
        if (!geo.support[comp][f]) row[f] = 0.0f;
      }
    } else {
      for (std::size_t f = 0; f < n; ++f) {
        if (rng.bernoulli(spec.sparsity)) row[f] = 0.0f;
      }
    }
  }
}

}  // namespace

Dataset generateMixtureChunk(const MixtureSpec& spec, std::size_t begin,
                             std::size_t count) {
  validateMixtureSpec(spec);
  CASVM_CHECK(count > 0, "empty chunk requested");
  CASVM_CHECK(begin + count >= begin && begin + count <= spec.samples,
              "chunk window exceeds the spec's virtual sample count");
  Rng geoRng(spec.seed);
  const MixtureGeometry geo = mixtureGeometry(spec, geoRng);

  const std::size_t n = spec.features;
  std::vector<float> values(count * n);
  std::vector<std::int8_t> labels(count);
  for (std::size_t c = 0; c < count; ++c) {
    const std::size_t i = begin + c;
    // One independent stream per virtual sample index: the same i always
    // yields the same row, whatever chunk it lands in.
    Rng rng(spec.seed ^
            (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(i) + 1)));
    drawSample(spec, geo, rng, values.data() + c * n, labels[c]);
  }

  if (!spec.sparseOutput) {
    return Dataset::fromDense(n, std::move(values), std::move(labels));
  }

  std::vector<std::size_t> rowPtr{0};
  std::vector<std::uint32_t> colIdx;
  std::vector<float> sparseVals;
  for (std::size_t c = 0; c < count; ++c) {
    const float* row = values.data() + c * n;
    for (std::size_t f = 0; f < n; ++f) {
      if (row[f] != 0.0f) {
        colIdx.push_back(static_cast<std::uint32_t>(f));
        sparseVals.push_back(row[f]);
      }
    }
    rowPtr.push_back(colIdx.size());
  }
  return Dataset::fromSparse(n, std::move(rowPtr), std::move(colIdx),
                             std::move(sparseVals), std::move(labels));
}

Dataset generateMixture(const MixtureSpec& spec) {
  CASVM_CHECK(spec.samples > 0 && spec.features > 0 && spec.clusters > 0,
              "mixture spec must be non-degenerate");
  CASVM_CHECK(spec.positiveFraction >= 0.0 && spec.positiveFraction <= 1.0,
              "positiveFraction must be in [0, 1]");
  CASVM_CHECK(spec.sparsity >= 0.0 && spec.sparsity < 1.0,
              "sparsity must be in [0, 1)");
  Rng rng(spec.seed);

  const std::size_t m = spec.samples;
  const std::size_t n = spec.features;
  const std::size_t k = spec.clusters;

  // Component centers, redrawn while they violate the separation floor.
  std::vector<double> centers(k * n);
  for (std::size_t c = 0; c < k; ++c) {
    for (int attempt = 0; attempt < 100; ++attempt) {
      for (std::size_t f = 0; f < n; ++f) {
        centers[c * n + f] = rng.normal(0.0, spec.centerSpread);
      }
      if (spec.minCenterSeparation <= 0.0) break;
      bool ok = true;
      for (std::size_t other = 0; other < c && ok; ++other) {
        double d2 = 0.0;
        for (std::size_t f = 0; f < n; ++f) {
          const double diff = centers[c * n + f] - centers[other * n + f];
          d2 += diff * diff;
        }
        ok = d2 >= spec.minCenterSeparation * spec.minCenterSeparation;
      }
      if (ok) break;  // keep this draw (or give up after 100 attempts)
    }
  }

  // Per-component dominant labels, chosen so the expected overall positive
  // fraction matches the spec: assign +1 to components until the running
  // fraction reaches the target. Components are equally likely per sample.
  std::vector<std::int8_t> componentLabel(k, -1);
  {
    const std::size_t positives = static_cast<std::size_t>(
        std::round(spec.positiveFraction * static_cast<double>(k)));
    std::vector<std::size_t> order(k);
    std::iota(order.begin(), order.end(), 0);
    std::shuffle(order.begin(), order.end(), rng);
    for (std::size_t i = 0; i < positives && i < k; ++i) {
      componentLabel[order[i]] = 1;
    }
    // With very skewed targets (< 1/k) fall back to per-sample mixing below.
  }

  // Global separating hyperplane (used when labels are not cluster-tied).
  std::vector<double> hyperplane(n);
  for (double& w : hyperplane) w = rng.normal();

  // Per-component feature supports for the structured-sparsity mode.
  std::vector<std::vector<bool>> support;
  if (spec.sparsity > 0.0 && spec.clusterSparsePattern) {
    const auto keep = static_cast<std::size_t>(std::llround(
        (1.0 - spec.sparsity) * static_cast<double>(n)));
    support.assign(k, std::vector<bool>(n, false));
    for (std::size_t c = 0; c < k; ++c) {
      for (std::size_t f :
           rng.sampleWithoutReplacement(n, std::max<std::size_t>(1, keep))) {
        support[c][f] = true;
      }
    }
  }

  std::vector<float> values(m * n);
  std::vector<std::int8_t> labels(m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t comp = static_cast<std::size_t>(rng.below(k));
    float* row = values.data() + i * n;
    double proj = 0.0;
    for (std::size_t f = 0; f < n; ++f) {
      const double x =
          centers[comp * n + f] + rng.normal(0.0, spec.clusterSpread);
      row[f] = static_cast<float>(x);
      proj += hyperplane[f] * x;
    }

    std::int8_t y;
    if (spec.clusterCorrelatedLabels) {
      y = componentLabel[comp];
      // Honor very skewed positive fractions that whole-component
      // assignment cannot express (e.g. 4% positives with 8 components):
      // flip a matching share of the dominant-negative samples.
      const double target = spec.positiveFraction;
      const double expressed =
          static_cast<double>(std::count(componentLabel.begin(),
                                         componentLabel.end(), 1)) /
          static_cast<double>(k);
      if (expressed < target && y == -1) {
        const double deficit = (target - expressed) / (1.0 - expressed);
        if (rng.bernoulli(deficit)) y = 1;
      } else if (expressed > target && y == 1) {
        const double excess = (expressed - target) / expressed;
        if (rng.bernoulli(excess)) y = -1;
      }
    } else {
      y = proj >= 0.0 ? 1 : -1;
      // Steer toward the requested label balance by biasing the threshold
      // is unnecessary for the symmetric hyperplane; keep as-is.
    }
    if (rng.bernoulli(spec.labelNoise)) y = static_cast<std::int8_t>(-y);
    labels[i] = y;

    if (spec.sparsity > 0.0) {
      if (spec.clusterSparsePattern) {
        for (std::size_t f = 0; f < n; ++f) {
          if (!support[comp][f]) row[f] = 0.0f;
        }
      } else {
        for (std::size_t f = 0; f < n; ++f) {
          if (rng.bernoulli(spec.sparsity)) row[f] = 0.0f;
        }
      }
    }
  }

  if (!spec.sparseOutput) {
    return Dataset::fromDense(n, std::move(values), std::move(labels));
  }

  std::vector<std::size_t> rowPtr{0};
  std::vector<std::uint32_t> colIdx;
  std::vector<float> sparseVals;
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = values.data() + i * n;
    for (std::size_t f = 0; f < n; ++f) {
      if (row[f] != 0.0f) {
        colIdx.push_back(static_cast<std::uint32_t>(f));
        sparseVals.push_back(row[f]);
      }
    }
    rowPtr.push_back(colIdx.size());
  }
  return Dataset::fromSparse(n, std::move(rowPtr), std::move(colIdx),
                             std::move(sparseVals), std::move(labels));
}

MulticlassData generateMulticlassMixture(const MixtureSpec& spec,
                                         int numClasses) {
  CASVM_CHECK(numClasses >= 2, "need at least two classes");
  CASVM_CHECK(spec.clusters >= static_cast<std::size_t>(numClasses),
              "need at least one mixture component per class");
  Rng rng(spec.seed);

  const std::size_t m = spec.samples;
  const std::size_t n = spec.features;
  const std::size_t k = spec.clusters;

  // Centers with the same separation guarantee as generateMixture.
  std::vector<double> centers(k * n);
  for (std::size_t c = 0; c < k; ++c) {
    for (int attempt = 0; attempt < 100; ++attempt) {
      for (std::size_t f = 0; f < n; ++f) {
        centers[c * n + f] = rng.normal(0.0, spec.centerSpread);
      }
      if (spec.minCenterSeparation <= 0.0) break;
      bool ok = true;
      for (std::size_t other = 0; other < c && ok; ++other) {
        double d2 = 0.0;
        for (std::size_t f = 0; f < n; ++f) {
          const double diff = centers[c * n + f] - centers[other * n + f];
          d2 += diff * diff;
        }
        ok = d2 >= spec.minCenterSeparation * spec.minCenterSeparation;
      }
      if (ok) break;
    }
  }

  MulticlassData out;
  std::vector<float> values(m * n);
  std::vector<std::int8_t> placeholder(m, 1);
  out.labels.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t comp = static_cast<std::size_t>(rng.below(k));
    float* row = values.data() + i * n;
    for (std::size_t f = 0; f < n; ++f) {
      row[f] = static_cast<float>(centers[comp * n + f] +
                                  rng.normal(0.0, spec.clusterSpread));
    }
    int cls = static_cast<int>(comp) % numClasses;
    if (rng.bernoulli(spec.labelNoise)) {
      cls = static_cast<int>(rng.below(static_cast<std::uint64_t>(numClasses)));
    }
    out.labels[i] = cls;
  }
  out.features = Dataset::fromDense(n, std::move(values), std::move(placeholder));
  return out;
}

Dataset generateTwoGaussians(std::size_t samples, std::size_t features,
                             double separation, std::uint64_t seed) {
  CASVM_CHECK(samples > 0 && features > 0, "empty dataset requested");
  Rng rng(seed);
  std::vector<float> values(samples * features);
  std::vector<std::int8_t> labels(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const std::int8_t y = rng.bernoulli(0.5) ? 1 : -1;
    labels[i] = y;
    float* row = values.data() + i * features;
    for (std::size_t f = 0; f < features; ++f) {
      const double mean = (f == 0) ? y * separation / 2.0 : 0.0;
      row[f] = static_cast<float>(rng.normal(mean, 1.0));
    }
  }
  return Dataset::fromDense(features, std::move(values), std::move(labels));
}

Split trainTestSplit(std::size_t m, double testFraction, std::uint64_t seed) {
  CASVM_CHECK(testFraction >= 0.0 && testFraction < 1.0,
              "testFraction must be in [0, 1)");
  Rng rng(seed);
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);
  const std::size_t testCount =
      static_cast<std::size_t>(std::llround(testFraction * double(m)));
  Split split;
  split.test.assign(order.begin(), order.begin() + testCount);
  split.train.assign(order.begin() + testCount, order.end());
  return split;
}

}  // namespace casvm::data
