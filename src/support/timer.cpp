#include "casvm/support/timer.hpp"

#include <ctime>

namespace casvm {

namespace {
double clockSeconds(clockid_t id) {
  timespec ts{};
  clock_gettime(id, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}
}  // namespace

double threadCpuSeconds() { return clockSeconds(CLOCK_THREAD_CPUTIME_ID); }

double processCpuSeconds() { return clockSeconds(CLOCK_PROCESS_CPUTIME_ID); }

}  // namespace casvm
