#include "casvm/support/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "casvm/support/error.hpp"

namespace casvm::support {

namespace {

std::string errnoText() { return std::strerror(errno); }

}  // namespace

void writeFileAtomic(const std::string& path,
                     std::span<const std::byte> bytes) {
  // Stage in the destination directory so the final rename never crosses a
  // filesystem boundary (rename(2) is only atomic within one filesystem).
  // The pid suffix keeps concurrent writers of *different* paths from
  // colliding; concurrent writers of the same path are the caller's bug.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  CASVM_CHECK(fd >= 0,
              "atomic write: cannot create temp file " + tmp + ": " +
                  errnoText());

  auto fail = [&](const std::string& what) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw Error("atomic write: " + what + " (" + tmp + "): " + errnoText());
  };

  const char* data = reinterpret_cast<const char*>(bytes.data());
  std::size_t remaining = bytes.size();
  while (remaining > 0) {
    const ::ssize_t n = ::write(fd, data, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write failed");
    }
    data += n;
    remaining -= static_cast<std::size_t>(n);
  }
  // Durability: the payload must reach the disk before the rename makes it
  // visible, or a crash could expose a complete-looking but empty file.
  if (::fsync(fd) != 0) fail("fsync failed");
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw Error("atomic write: close failed (" + tmp + "): " + errnoText());
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string what = errnoText();
    ::unlink(tmp.c_str());
    throw Error("atomic write: rename to " + path + " failed: " + what);
  }
}

void writeFileAtomic(const std::string& path, const std::string& text) {
  writeFileAtomic(path,
                  std::span<const std::byte>(
                      reinterpret_cast<const std::byte*>(text.data()),
                      text.size()));
}

std::vector<std::byte> readFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  CASVM_CHECK(in.good(), "cannot open file: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  CASVM_CHECK(in.good(), "short read: " + path);
  return bytes;
}

}  // namespace casvm::support
