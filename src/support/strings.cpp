#include "casvm/support/strings.hpp"

#include <cstdarg>
#include <cstdio>

#include "casvm/support/error.hpp"

namespace casvm {

namespace {

std::string vformat(const char* fmt, va_list args) {
  va_list measure;
  va_copy(measure, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, measure);
  va_end(measure);
  CASVM_CHECK(needed >= 0, "formatString: encoding error");
  std::string out(static_cast<std::size_t>(needed), '\0');
  // +1: vsnprintf writes the terminator into the byte past size(), which
  // std::string guarantees to exist and hold '\0' anyway.
  std::vsnprintf(out.data(), static_cast<std::size_t>(needed) + 1, fmt, args);
  return out;
}

}  // namespace

std::string formatString(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::string out = vformat(fmt, args);
  va_end(args);
  return out;
}

void appendFormat(std::string& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  out += vformat(fmt, args);
  va_end(args);
}

}  // namespace casvm
