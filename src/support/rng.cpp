#include "casvm/support/rng.hpp"

#include <algorithm>
#include <unordered_set>

#include "casvm/support/error.hpp"

namespace casvm {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  hasCachedNormal_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) {
  CASVM_CHECK(n > 0, "Rng::below requires n > 0");
  // Unbiased rejection sampling (Lemire-style threshold).
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (hasCachedNormal_) {
    hasCachedNormal_ = false;
    return cachedNormal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cachedNormal_ = r * std::sin(theta);
  hasCachedNormal_ = true;
  return r * std::cos(theta);
}

std::vector<std::size_t> Rng::sampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  CASVM_CHECK(k <= n, "cannot sample more items than population size");
  // Floyd's algorithm: O(k) expected draws, then shuffle for random order.
  std::unordered_set<std::size_t> chosen;
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = static_cast<std::size_t>(below(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  std::shuffle(out.begin(), out.end(), *this);
  return out;
}

Rng Rng::split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace casvm
