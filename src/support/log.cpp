#include "casvm/support/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace casvm {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_logMutex;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel logLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace detail {
void logMessage(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_logMutex);
  std::cerr << "[casvm " << levelName(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace casvm
