#include "casvm/support/error.hpp"

#include <sstream>

namespace casvm::detail {

void throwError(const char* file, int line, const char* expr,
                const std::string& msg) {
  std::ostringstream os;
  os << "casvm error: " << msg << " [" << expr << " at " << file << ":" << line
     << "]";
  throw Error(os.str());
}

}  // namespace casvm::detail
