#include "casvm/support/table.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>

#include "casvm/support/error.hpp"

namespace casvm {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  CASVM_CHECK(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::addRow(std::vector<std::string> cells) {
  CASVM_CHECK(cells.size() == headers_.size(),
              "row arity does not match header");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emitRow = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  auto emitRule = [&]() {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << std::string(width[c] + 2, '-') << "|";
    }
    os << '\n';
  };

  emitRow(headers_);
  emitRule();
  for (const auto& row : rows_) emitRow(row);
  return os.str();
}

void TablePrinter::print() const { std::cout << render() << std::flush; }

std::string TablePrinter::fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TablePrinter::fmtCount(long long v) {
  const bool neg = v < 0;
  unsigned long long u = neg ? static_cast<unsigned long long>(-(v + 1)) + 1
                             : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(u);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::string TablePrinter::fmtBytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return fmt(bytes, u == 0 ? 0 : 1) + units[u];
}

std::string TablePrinter::fmtPercent(double fraction) {
  return fmt(fraction * 100.0, 1) + "%";
}

}  // namespace casvm
