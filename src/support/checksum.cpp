#include "casvm/support/checksum.hpp"

#include <array>

namespace casvm::support {

namespace {

/// The usual 256-entry table for the reflected 0xEDB88320 polynomial,
/// generated once at static-init time.
std::array<std::uint32_t, 256> makeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> bytes, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = makeCrcTable();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::byte b : bytes) {
    c = table[(c ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace casvm::support
