#include "casvm/support/posix.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "casvm/support/error.hpp"

namespace casvm::support {

std::size_t readFull(int fd, void* buf, std::size_t len) {
  std::size_t done = 0;
  char* out = static_cast<char*>(buf);
  while (done < len) {
    const ssize_t n = ::read(fd, out + done, len - done);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) break;  // EOF
    if (errno == EINTR) continue;
    throw Error(std::string("readFull: read failed: ") + std::strerror(errno));
  }
  return done;
}

void writeFull(int fd, const void* buf, std::size_t len) {
  std::size_t done = 0;
  const char* in = static_cast<const char*>(buf);
  while (done < len) {
    const ssize_t n = ::write(fd, in + done, len - done);
    if (n >= 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    throw Error(std::string("writeFull: write failed: ") +
                std::strerror(errno));
  }
}

pid_t waitpidRetry(pid_t pid, int* status, int options) {
  for (;;) {
    const pid_t r = ::waitpid(pid, status, options);
    if (r >= 0 || errno != EINTR) return r;
  }
}

}  // namespace casvm::support
