#include "casvm/ckpt/checkpoint.hpp"

#include <cstring>

#include "casvm/support/checksum.hpp"

namespace casvm::ckpt {

namespace {

constexpr char kMagic[8] = {'C', 'A', 'S', 'V', 'M', 'C', 'K', 'P'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 4;

bool knownKind(std::uint32_t k) {
  switch (static_cast<Kind>(k)) {
    case Kind::Meta:
    case Kind::Partition:
    case Kind::SolverState:
    case Kind::SubModel:
    case Kind::TreeLayer:
    case Kind::DisSmoState:
    case Kind::PbmRound:
    case Kind::LowRankFactor:
      return true;
  }
  return false;
}

}  // namespace

std::vector<std::byte> encodeFrame(Kind kind,
                                   std::span<const std::byte> payload) {
  std::vector<std::byte> out(kHeaderBytes + payload.size());
  std::byte* p = out.data();
  std::memcpy(p, kMagic, sizeof(kMagic));
  p += sizeof(kMagic);
  const std::uint32_t version = kFormatVersion;
  std::memcpy(p, &version, sizeof(version));
  p += sizeof(version);
  const std::uint32_t k = static_cast<std::uint32_t>(kind);
  std::memcpy(p, &k, sizeof(k));
  p += sizeof(k);
  const std::uint64_t size = payload.size();
  std::memcpy(p, &size, sizeof(size));
  p += sizeof(size);
  const std::uint32_t crc = support::crc32(payload);
  std::memcpy(p, &crc, sizeof(crc));
  p += sizeof(crc);
  std::memcpy(p, payload.data(), payload.size());
  return out;
}

std::optional<Frame> decodeFrame(std::span<const std::byte> bytes) {
  if (bytes.size() < kHeaderBytes) return std::nullopt;  // short read
  const std::byte* p = bytes.data();
  if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0) return std::nullopt;
  p += sizeof(kMagic);
  std::uint32_t version = 0;
  std::memcpy(&version, p, sizeof(version));
  p += sizeof(version);
  if (version != kFormatVersion) return std::nullopt;
  std::uint32_t kindRaw = 0;
  std::memcpy(&kindRaw, p, sizeof(kindRaw));
  p += sizeof(kindRaw);
  if (!knownKind(kindRaw)) return std::nullopt;
  std::uint64_t size = 0;
  std::memcpy(&size, p, sizeof(size));
  p += sizeof(size);
  // The declared size must match the actual file length exactly: a frame
  // with trailing garbage is as suspect as a truncated one.
  if (size != bytes.size() - kHeaderBytes) return std::nullopt;
  std::uint32_t crc = 0;
  std::memcpy(&crc, p, sizeof(crc));
  const std::span<const std::byte> payload = bytes.subspan(kHeaderBytes);
  if (support::crc32(payload) != crc) return std::nullopt;
  Frame frame;
  frame.kind = static_cast<Kind>(kindRaw);
  frame.payload.assign(payload.begin(), payload.end());
  return frame;
}

}  // namespace casvm::ckpt
