#include "casvm/ckpt/store.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "casvm/support/atomic_file.hpp"
#include "casvm/support/error.hpp"
#include "casvm/support/log.hpp"

namespace fs = std::filesystem;

namespace casvm::ckpt {

namespace {

constexpr const char* kSuffix = ".ckpt";

/// Parse "<name>.g<N>.ckpt" → N, or nullopt if `filename` is not a
/// generation file of `name`.
std::optional<std::uint64_t> generationOf(const std::string& filename,
                                          const std::string& name) {
  const std::string prefix = name + ".g";
  if (filename.size() <= prefix.size() + std::string(kSuffix).size()) {
    return std::nullopt;
  }
  if (filename.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (filename.compare(filename.size() - 5, 5, kSuffix) != 0) {
    return std::nullopt;
  }
  const std::string digits =
      filename.substr(prefix.size(), filename.size() - prefix.size() - 5);
  if (digits.empty()) return std::nullopt;
  std::uint64_t gen = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    gen = gen * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return gen;
}

}  // namespace

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  CASVM_CHECK(!dir_.empty(), "checkpoint store needs a directory");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  CASVM_CHECK(!ec && fs::is_directory(dir_),
              "cannot create checkpoint directory: " + dir_);
}

std::vector<std::pair<std::uint64_t, std::string>>
CheckpointStore::generationsOf(const std::string& name) const {
  std::vector<std::pair<std::uint64_t, std::string>> gens;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string filename = entry.path().filename().string();
    if (const auto gen = generationOf(filename, name)) {
      gens.emplace_back(*gen, entry.path().string());
    }
  }
  std::sort(gens.begin(), gens.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return gens;
}

void CheckpointStore::save(const std::string& name, Kind kind,
                           std::span<const std::byte> payload) {
  CASVM_CHECK(name.find('/') == std::string::npos,
              "checkpoint name must not contain '/': " + name);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto gens = generationsOf(name);
  const std::uint64_t next = gens.empty() ? 1 : gens.front().first + 1;
  const std::string path =
      dir_ + "/" + name + ".g" + std::to_string(next) + kSuffix;
  support::writeFileAtomic(path, encodeFrame(kind, payload));
  // Prune: the new generation plus kKeepGenerations-1 predecessors stay, so
  // a corrupt newest file always has a complete fallback.
  for (std::size_t i = kKeepGenerations - 1; i < gens.size(); ++i) {
    std::error_code ec;
    fs::remove(gens[i].second, ec);  // best effort; stale files are harmless
  }
}

std::optional<std::vector<std::byte>> CheckpointStore::load(
    const std::string& name, Kind kind) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [gen, path] : generationsOf(name)) {
    std::optional<Frame> frame;
    try {
      frame = decodeFrame(support::readFileBytes(path));
    } catch (const Error&) {
      frame = std::nullopt;  // unreadable file == corrupt generation
    }
    if (frame && frame->kind == kind) return std::move(frame->payload);
    ++corruptSkipped_;
    CASVM_WARN("checkpoint: ignoring corrupt or mismatched generation "
               << path << (frame ? " (wrong kind)" : " (failed integrity check)")
               << "; falling back to the previous generation");
  }
  return std::nullopt;
}

std::vector<std::vector<std::byte>> CheckpointStore::loadGenerations(
    const std::string& name, Kind kind) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::vector<std::byte>> payloads;
  for (const auto& [gen, path] : generationsOf(name)) {
    std::optional<Frame> frame;
    try {
      frame = decodeFrame(support::readFileBytes(path));
    } catch (const Error&) {
      frame = std::nullopt;  // unreadable file == corrupt generation
    }
    if (frame && frame->kind == kind) {
      payloads.push_back(std::move(frame->payload));
      continue;
    }
    ++corruptSkipped_;
    CASVM_WARN("checkpoint: ignoring corrupt or mismatched generation "
               << path << (frame ? " (wrong kind)" : " (failed integrity check)")
               << "; falling back to the previous generation");
  }
  return payloads;
}

bool CheckpointStore::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return !generationsOf(name).empty();
}

void CheckpointStore::remove(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [gen, path] : generationsOf(name)) {
    std::error_code ec;
    fs::remove(path, ec);
  }
}

std::size_t CheckpointStore::corruptSkipped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return corruptSkipped_;
}

}  // namespace casvm::ckpt
