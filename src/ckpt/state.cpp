#include "casvm/ckpt/state.hpp"

#include <cstring>

#include "casvm/support/error.hpp"

namespace casvm::ckpt {

namespace {

/// Append-only byte builder shared by the encoders. Scalars are written as
/// raw little-endian bit patterns (this is a single-host checkpoint, the
/// reader is the same build); variable-length fields carry a u64 count.
class Writer {
 public:
  void raw(const void* data, std::size_t bytes) {
    const std::size_t off = out_.size();
    out_.resize(off + bytes);
    std::memcpy(out_.data() + off, data, bytes);
  }
  template <class T>
  void scalar(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    raw(&v, sizeof(v));
  }
  template <class T>
  void vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    scalar<std::uint64_t>(v.size());
    raw(v.data(), v.size() * sizeof(T));
  }
  void bytes(std::span<const std::byte> b) {
    scalar<std::uint64_t>(b.size());
    raw(b.data(), b.size());
  }
  std::vector<std::byte> take() { return std::move(out_); }

 private:
  std::vector<std::byte> out_;
};

/// Mirror of Writer. Every read is bounds-checked: the payload passed the
/// frame CRC, so a failure here is a codec bug, and throwing loudly beats
/// fabricating state.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> in) : in_(in) {}
  void raw(void* data, std::size_t bytes) {
    CASVM_CHECK(in_.size() >= bytes, "checkpoint decode: truncated payload");
    std::memcpy(data, in_.data(), bytes);
    in_ = in_.subspan(bytes);
  }
  template <class T>
  T scalar() {
    T v;
    raw(&v, sizeof(v));
    return v;
  }
  template <class T>
  std::vector<T> vec() {
    const std::uint64_t count = scalar<std::uint64_t>();
    CASVM_CHECK(count <= in_.size() / sizeof(T),
                "checkpoint decode: count exceeds payload");
    std::vector<T> v(count);
    raw(v.data(), count * sizeof(T));
    return v;
  }
  std::vector<std::byte> bytes() { return vec<std::byte>(); }
  void expectEnd() const {
    CASVM_CHECK(in_.empty(), "checkpoint decode: trailing bytes");
  }

 private:
  std::span<const std::byte> in_;
};

}  // namespace

std::vector<std::byte> encodeMeta(const RunMeta& meta) {
  Writer w;
  w.scalar(meta.fingerprint);
  w.scalar(meta.method);
  w.scalar(meta.processes);
  w.scalar(meta.rows);
  w.scalar(meta.cols);
  return w.take();
}

RunMeta decodeMeta(std::span<const std::byte> payload) {
  Reader r(payload);
  RunMeta meta;
  meta.fingerprint = r.scalar<std::uint64_t>();
  meta.method = r.scalar<std::uint32_t>();
  meta.processes = r.scalar<std::uint32_t>();
  meta.rows = r.scalar<std::uint64_t>();
  meta.cols = r.scalar<std::uint64_t>();
  r.expectEnd();
  return meta;
}

std::vector<std::byte> encodePartition(const PartitionState& state) {
  Writer w;
  w.scalar(state.kmeansLoops);
  w.vec(state.center);
  w.bytes(state.local.packAll());
  return w.take();
}

PartitionState decodePartition(std::span<const std::byte> payload) {
  Reader r(payload);
  PartitionState state;
  state.kmeansLoops = r.scalar<std::uint64_t>();
  state.center = r.vec<float>();
  state.local = data::Dataset::unpack(r.bytes());
  r.expectEnd();
  return state;
}

std::vector<std::byte> encodeSolverState(const solver::SolverSnapshot& snap) {
  Writer w;
  w.scalar<std::uint64_t>(snap.iteration);
  w.scalar<std::uint8_t>(snap.everShrunk ? 1 : 0);
  w.vec(snap.alpha);
  w.vec(snap.f);
  w.vec(snap.active);
  return w.take();
}

solver::SolverSnapshot decodeSolverState(std::span<const std::byte> payload) {
  Reader r(payload);
  solver::SolverSnapshot snap;
  snap.iteration = r.scalar<std::uint64_t>();
  snap.everShrunk = r.scalar<std::uint8_t>() != 0;
  snap.alpha = r.vec<double>();
  snap.f = r.vec<double>();
  snap.active = r.vec<std::size_t>();
  r.expectEnd();
  return snap;
}

std::vector<std::byte> encodeDisSmoState(const solver::SolverSnapshot& snap) {
  return encodeSolverState(snap);
}

solver::SolverSnapshot decodeDisSmoState(std::span<const std::byte> payload) {
  return decodeSolverState(payload);
}

std::vector<std::byte> encodePbmRound(const PbmRoundState& state) {
  Writer w;
  w.scalar(state.round);
  w.scalar(state.blockIterations);
  w.scalar(state.pairIterations);
  w.vec(state.alpha);
  w.vec(state.f);
  return w.take();
}

PbmRoundState decodePbmRound(std::span<const std::byte> payload) {
  Reader r(payload);
  PbmRoundState state;
  state.round = r.scalar<std::uint64_t>();
  state.blockIterations = r.scalar<long long>();
  state.pairIterations = r.scalar<long long>();
  state.alpha = r.vec<double>();
  state.f = r.vec<double>();
  r.expectEnd();
  return state;
}

std::vector<std::byte> encodeSubModel(const SubModelState& state) {
  Writer w;
  w.scalar(state.iterations);
  w.scalar(state.svs);
  w.bytes(state.model.pack());
  return w.take();
}

SubModelState decodeSubModel(std::span<const std::byte> payload) {
  Reader r(payload);
  SubModelState state;
  state.iterations = r.scalar<long long>();
  state.svs = r.scalar<long long>();
  state.model = solver::Model::unpack(r.bytes());
  r.expectEnd();
  return state;
}

std::vector<std::byte> encodeTreeLayer(const TreeLayerState& state) {
  Writer w;
  w.scalar(state.layer);
  w.scalar(state.samples);
  w.scalar(state.iterations);
  w.scalar(state.svs);
  w.scalar(state.seconds);
  w.vec(state.currentAlpha);
  w.bytes(state.current.packAll());
  w.scalar<std::uint8_t>(state.model.has_value() ? 1 : 0);
  if (state.model.has_value()) w.bytes(state.model->pack());
  return w.take();
}

TreeLayerState decodeTreeLayer(std::span<const std::byte> payload) {
  Reader r(payload);
  TreeLayerState state;
  state.layer = r.scalar<std::int64_t>();
  state.samples = r.scalar<long long>();
  state.iterations = r.scalar<long long>();
  state.svs = r.scalar<long long>();
  state.seconds = r.scalar<double>();
  state.currentAlpha = r.vec<double>();
  state.current = data::Dataset::unpack(r.bytes());
  if (r.scalar<std::uint8_t>() != 0) {
    state.model = solver::Model::unpack(r.bytes());
  }
  r.expectEnd();
  return state;
}

}  // namespace casvm::ckpt
