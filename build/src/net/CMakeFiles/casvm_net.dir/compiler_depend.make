# Empty compiler generated dependencies file for casvm_net.
# This may be replaced when dependencies are built.
