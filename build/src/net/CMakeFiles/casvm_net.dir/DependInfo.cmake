
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/clock.cpp" "src/net/CMakeFiles/casvm_net.dir/clock.cpp.o" "gcc" "src/net/CMakeFiles/casvm_net.dir/clock.cpp.o.d"
  "/root/repo/src/net/comm.cpp" "src/net/CMakeFiles/casvm_net.dir/comm.cpp.o" "gcc" "src/net/CMakeFiles/casvm_net.dir/comm.cpp.o.d"
  "/root/repo/src/net/engine.cpp" "src/net/CMakeFiles/casvm_net.dir/engine.cpp.o" "gcc" "src/net/CMakeFiles/casvm_net.dir/engine.cpp.o.d"
  "/root/repo/src/net/mailbox.cpp" "src/net/CMakeFiles/casvm_net.dir/mailbox.cpp.o" "gcc" "src/net/CMakeFiles/casvm_net.dir/mailbox.cpp.o.d"
  "/root/repo/src/net/traffic.cpp" "src/net/CMakeFiles/casvm_net.dir/traffic.cpp.o" "gcc" "src/net/CMakeFiles/casvm_net.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/casvm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
