file(REMOVE_RECURSE
  "libcasvm_net.a"
)
