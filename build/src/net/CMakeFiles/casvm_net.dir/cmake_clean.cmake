file(REMOVE_RECURSE
  "CMakeFiles/casvm_net.dir/clock.cpp.o"
  "CMakeFiles/casvm_net.dir/clock.cpp.o.d"
  "CMakeFiles/casvm_net.dir/comm.cpp.o"
  "CMakeFiles/casvm_net.dir/comm.cpp.o.d"
  "CMakeFiles/casvm_net.dir/engine.cpp.o"
  "CMakeFiles/casvm_net.dir/engine.cpp.o.d"
  "CMakeFiles/casvm_net.dir/mailbox.cpp.o"
  "CMakeFiles/casvm_net.dir/mailbox.cpp.o.d"
  "CMakeFiles/casvm_net.dir/traffic.cpp.o"
  "CMakeFiles/casvm_net.dir/traffic.cpp.o.d"
  "libcasvm_net.a"
  "libcasvm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casvm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
