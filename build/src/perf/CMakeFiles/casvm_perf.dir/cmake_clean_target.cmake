file(REMOVE_RECURSE
  "libcasvm_perf.a"
)
