file(REMOVE_RECURSE
  "CMakeFiles/casvm_perf.dir/comm_model.cpp.o"
  "CMakeFiles/casvm_perf.dir/comm_model.cpp.o.d"
  "CMakeFiles/casvm_perf.dir/isoefficiency.cpp.o"
  "CMakeFiles/casvm_perf.dir/isoefficiency.cpp.o.d"
  "CMakeFiles/casvm_perf.dir/scaling_sim.cpp.o"
  "CMakeFiles/casvm_perf.dir/scaling_sim.cpp.o.d"
  "libcasvm_perf.a"
  "libcasvm_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casvm_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
