# Empty compiler generated dependencies file for casvm_perf.
# This may be replaced when dependencies are built.
