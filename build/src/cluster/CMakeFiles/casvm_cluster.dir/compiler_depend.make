# Empty compiler generated dependencies file for casvm_cluster.
# This may be replaced when dependencies are built.
