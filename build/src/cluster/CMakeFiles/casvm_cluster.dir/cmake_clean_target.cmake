file(REMOVE_RECURSE
  "libcasvm_cluster.a"
)
