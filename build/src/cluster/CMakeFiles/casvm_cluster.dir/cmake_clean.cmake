file(REMOVE_RECURSE
  "CMakeFiles/casvm_cluster.dir/balanced_kmeans.cpp.o"
  "CMakeFiles/casvm_cluster.dir/balanced_kmeans.cpp.o.d"
  "CMakeFiles/casvm_cluster.dir/fcfs.cpp.o"
  "CMakeFiles/casvm_cluster.dir/fcfs.cpp.o.d"
  "CMakeFiles/casvm_cluster.dir/kmeans.cpp.o"
  "CMakeFiles/casvm_cluster.dir/kmeans.cpp.o.d"
  "CMakeFiles/casvm_cluster.dir/partition.cpp.o"
  "CMakeFiles/casvm_cluster.dir/partition.cpp.o.d"
  "libcasvm_cluster.a"
  "libcasvm_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casvm_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
