
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/balanced_kmeans.cpp" "src/cluster/CMakeFiles/casvm_cluster.dir/balanced_kmeans.cpp.o" "gcc" "src/cluster/CMakeFiles/casvm_cluster.dir/balanced_kmeans.cpp.o.d"
  "/root/repo/src/cluster/fcfs.cpp" "src/cluster/CMakeFiles/casvm_cluster.dir/fcfs.cpp.o" "gcc" "src/cluster/CMakeFiles/casvm_cluster.dir/fcfs.cpp.o.d"
  "/root/repo/src/cluster/kmeans.cpp" "src/cluster/CMakeFiles/casvm_cluster.dir/kmeans.cpp.o" "gcc" "src/cluster/CMakeFiles/casvm_cluster.dir/kmeans.cpp.o.d"
  "/root/repo/src/cluster/partition.cpp" "src/cluster/CMakeFiles/casvm_cluster.dir/partition.cpp.o" "gcc" "src/cluster/CMakeFiles/casvm_cluster.dir/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/casvm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/casvm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/casvm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
