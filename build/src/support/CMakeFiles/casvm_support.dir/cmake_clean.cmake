file(REMOVE_RECURSE
  "CMakeFiles/casvm_support.dir/error.cpp.o"
  "CMakeFiles/casvm_support.dir/error.cpp.o.d"
  "CMakeFiles/casvm_support.dir/log.cpp.o"
  "CMakeFiles/casvm_support.dir/log.cpp.o.d"
  "CMakeFiles/casvm_support.dir/rng.cpp.o"
  "CMakeFiles/casvm_support.dir/rng.cpp.o.d"
  "CMakeFiles/casvm_support.dir/table.cpp.o"
  "CMakeFiles/casvm_support.dir/table.cpp.o.d"
  "CMakeFiles/casvm_support.dir/timer.cpp.o"
  "CMakeFiles/casvm_support.dir/timer.cpp.o.d"
  "libcasvm_support.a"
  "libcasvm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casvm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
