# Empty dependencies file for casvm_support.
# This may be replaced when dependencies are built.
