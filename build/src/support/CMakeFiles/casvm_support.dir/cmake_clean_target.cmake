file(REMOVE_RECURSE
  "libcasvm_support.a"
)
