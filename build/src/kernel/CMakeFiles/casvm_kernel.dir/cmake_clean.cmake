file(REMOVE_RECURSE
  "CMakeFiles/casvm_kernel.dir/kernel.cpp.o"
  "CMakeFiles/casvm_kernel.dir/kernel.cpp.o.d"
  "CMakeFiles/casvm_kernel.dir/row_cache.cpp.o"
  "CMakeFiles/casvm_kernel.dir/row_cache.cpp.o.d"
  "libcasvm_kernel.a"
  "libcasvm_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casvm_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
