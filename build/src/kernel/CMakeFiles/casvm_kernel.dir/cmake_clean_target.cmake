file(REMOVE_RECURSE
  "libcasvm_kernel.a"
)
