# Empty compiler generated dependencies file for casvm_kernel.
# This may be replaced when dependencies are built.
