file(REMOVE_RECURSE
  "CMakeFiles/casvm_core.dir/dis_smo.cpp.o"
  "CMakeFiles/casvm_core.dir/dis_smo.cpp.o.d"
  "CMakeFiles/casvm_core.dir/distributed_model.cpp.o"
  "CMakeFiles/casvm_core.dir/distributed_model.cpp.o.d"
  "CMakeFiles/casvm_core.dir/method.cpp.o"
  "CMakeFiles/casvm_core.dir/method.cpp.o.d"
  "CMakeFiles/casvm_core.dir/metrics.cpp.o"
  "CMakeFiles/casvm_core.dir/metrics.cpp.o.d"
  "CMakeFiles/casvm_core.dir/model_selection.cpp.o"
  "CMakeFiles/casvm_core.dir/model_selection.cpp.o.d"
  "CMakeFiles/casvm_core.dir/multiclass.cpp.o"
  "CMakeFiles/casvm_core.dir/multiclass.cpp.o.d"
  "CMakeFiles/casvm_core.dir/partitioned.cpp.o"
  "CMakeFiles/casvm_core.dir/partitioned.cpp.o.d"
  "CMakeFiles/casvm_core.dir/phase.cpp.o"
  "CMakeFiles/casvm_core.dir/phase.cpp.o.d"
  "CMakeFiles/casvm_core.dir/predict.cpp.o"
  "CMakeFiles/casvm_core.dir/predict.cpp.o.d"
  "CMakeFiles/casvm_core.dir/spmd.cpp.o"
  "CMakeFiles/casvm_core.dir/spmd.cpp.o.d"
  "CMakeFiles/casvm_core.dir/train.cpp.o"
  "CMakeFiles/casvm_core.dir/train.cpp.o.d"
  "CMakeFiles/casvm_core.dir/tree.cpp.o"
  "CMakeFiles/casvm_core.dir/tree.cpp.o.d"
  "libcasvm_core.a"
  "libcasvm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casvm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
