
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dis_smo.cpp" "src/core/CMakeFiles/casvm_core.dir/dis_smo.cpp.o" "gcc" "src/core/CMakeFiles/casvm_core.dir/dis_smo.cpp.o.d"
  "/root/repo/src/core/distributed_model.cpp" "src/core/CMakeFiles/casvm_core.dir/distributed_model.cpp.o" "gcc" "src/core/CMakeFiles/casvm_core.dir/distributed_model.cpp.o.d"
  "/root/repo/src/core/method.cpp" "src/core/CMakeFiles/casvm_core.dir/method.cpp.o" "gcc" "src/core/CMakeFiles/casvm_core.dir/method.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/casvm_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/casvm_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/model_selection.cpp" "src/core/CMakeFiles/casvm_core.dir/model_selection.cpp.o" "gcc" "src/core/CMakeFiles/casvm_core.dir/model_selection.cpp.o.d"
  "/root/repo/src/core/multiclass.cpp" "src/core/CMakeFiles/casvm_core.dir/multiclass.cpp.o" "gcc" "src/core/CMakeFiles/casvm_core.dir/multiclass.cpp.o.d"
  "/root/repo/src/core/partitioned.cpp" "src/core/CMakeFiles/casvm_core.dir/partitioned.cpp.o" "gcc" "src/core/CMakeFiles/casvm_core.dir/partitioned.cpp.o.d"
  "/root/repo/src/core/phase.cpp" "src/core/CMakeFiles/casvm_core.dir/phase.cpp.o" "gcc" "src/core/CMakeFiles/casvm_core.dir/phase.cpp.o.d"
  "/root/repo/src/core/predict.cpp" "src/core/CMakeFiles/casvm_core.dir/predict.cpp.o" "gcc" "src/core/CMakeFiles/casvm_core.dir/predict.cpp.o.d"
  "/root/repo/src/core/spmd.cpp" "src/core/CMakeFiles/casvm_core.dir/spmd.cpp.o" "gcc" "src/core/CMakeFiles/casvm_core.dir/spmd.cpp.o.d"
  "/root/repo/src/core/train.cpp" "src/core/CMakeFiles/casvm_core.dir/train.cpp.o" "gcc" "src/core/CMakeFiles/casvm_core.dir/train.cpp.o.d"
  "/root/repo/src/core/tree.cpp" "src/core/CMakeFiles/casvm_core.dir/tree.cpp.o" "gcc" "src/core/CMakeFiles/casvm_core.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/casvm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/casvm_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/casvm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/casvm_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/casvm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/casvm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
