# Empty dependencies file for casvm_core.
# This may be replaced when dependencies are built.
