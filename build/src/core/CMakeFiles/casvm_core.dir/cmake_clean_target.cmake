file(REMOVE_RECURSE
  "libcasvm_core.a"
)
