# Empty dependencies file for casvm_data.
# This may be replaced when dependencies are built.
