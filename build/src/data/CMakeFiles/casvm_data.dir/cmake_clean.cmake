file(REMOVE_RECURSE
  "CMakeFiles/casvm_data.dir/dataset.cpp.o"
  "CMakeFiles/casvm_data.dir/dataset.cpp.o.d"
  "CMakeFiles/casvm_data.dir/io.cpp.o"
  "CMakeFiles/casvm_data.dir/io.cpp.o.d"
  "CMakeFiles/casvm_data.dir/registry.cpp.o"
  "CMakeFiles/casvm_data.dir/registry.cpp.o.d"
  "CMakeFiles/casvm_data.dir/scale.cpp.o"
  "CMakeFiles/casvm_data.dir/scale.cpp.o.d"
  "CMakeFiles/casvm_data.dir/synth.cpp.o"
  "CMakeFiles/casvm_data.dir/synth.cpp.o.d"
  "libcasvm_data.a"
  "libcasvm_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casvm_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
