file(REMOVE_RECURSE
  "libcasvm_data.a"
)
