file(REMOVE_RECURSE
  "libcasvm_solver.a"
)
