# Empty dependencies file for casvm_solver.
# This may be replaced when dependencies are built.
