file(REMOVE_RECURSE
  "CMakeFiles/casvm_solver.dir/model.cpp.o"
  "CMakeFiles/casvm_solver.dir/model.cpp.o.d"
  "CMakeFiles/casvm_solver.dir/smo.cpp.o"
  "CMakeFiles/casvm_solver.dir/smo.cpp.o.d"
  "libcasvm_solver.a"
  "libcasvm_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casvm_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
