# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tools_workflow "/usr/bin/cmake" "-E" "env" "sh" "/root/repo/tests/tools_workflow.sh" "/root/repo/build")
set_tests_properties(tools_workflow PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
