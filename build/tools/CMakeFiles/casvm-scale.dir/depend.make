# Empty dependencies file for casvm-scale.
# This may be replaced when dependencies are built.
