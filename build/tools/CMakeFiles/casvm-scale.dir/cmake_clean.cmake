file(REMOVE_RECURSE
  "CMakeFiles/casvm-scale.dir/casvm_scale.cpp.o"
  "CMakeFiles/casvm-scale.dir/casvm_scale.cpp.o.d"
  "casvm-scale"
  "casvm-scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casvm-scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
