# Empty compiler generated dependencies file for casvm-model.
# This may be replaced when dependencies are built.
