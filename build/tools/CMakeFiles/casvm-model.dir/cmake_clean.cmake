file(REMOVE_RECURSE
  "CMakeFiles/casvm-model.dir/casvm_model.cpp.o"
  "CMakeFiles/casvm-model.dir/casvm_model.cpp.o.d"
  "casvm-model"
  "casvm-model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casvm-model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
