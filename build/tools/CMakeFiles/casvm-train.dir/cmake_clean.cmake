file(REMOVE_RECURSE
  "CMakeFiles/casvm-train.dir/casvm_train.cpp.o"
  "CMakeFiles/casvm-train.dir/casvm_train.cpp.o.d"
  "casvm-train"
  "casvm-train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casvm-train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
