# Empty compiler generated dependencies file for casvm-train.
# This may be replaced when dependencies are built.
