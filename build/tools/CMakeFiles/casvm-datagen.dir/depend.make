# Empty dependencies file for casvm-datagen.
# This may be replaced when dependencies are built.
