file(REMOVE_RECURSE
  "CMakeFiles/casvm-datagen.dir/casvm_datagen.cpp.o"
  "CMakeFiles/casvm-datagen.dir/casvm_datagen.cpp.o.d"
  "casvm-datagen"
  "casvm-datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casvm-datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
