# Empty dependencies file for casvm-predict.
# This may be replaced when dependencies are built.
