file(REMOVE_RECURSE
  "CMakeFiles/casvm-predict.dir/casvm_predict.cpp.o"
  "CMakeFiles/casvm-predict.dir/casvm_predict.cpp.o.d"
  "casvm-predict"
  "casvm-predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casvm-predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
