file(REMOVE_RECURSE
  "CMakeFiles/method_tour.dir/method_tour.cpp.o"
  "CMakeFiles/method_tour.dir/method_tour.cpp.o.d"
  "method_tour"
  "method_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/method_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
