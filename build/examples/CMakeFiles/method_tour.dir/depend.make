# Empty dependencies file for method_tour.
# This may be replaced when dependencies are built.
