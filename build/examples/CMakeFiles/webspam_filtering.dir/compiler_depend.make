# Empty compiler generated dependencies file for webspam_filtering.
# This may be replaced when dependencies are built.
