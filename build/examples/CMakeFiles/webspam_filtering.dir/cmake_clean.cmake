file(REMOVE_RECURSE
  "CMakeFiles/webspam_filtering.dir/webspam_filtering.cpp.o"
  "CMakeFiles/webspam_filtering.dir/webspam_filtering.cpp.o.d"
  "webspam_filtering"
  "webspam_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webspam_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
