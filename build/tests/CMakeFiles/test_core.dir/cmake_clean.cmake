file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/distributed_model_test.cpp.o"
  "CMakeFiles/test_core.dir/core/distributed_model_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/equivalence_test.cpp.o"
  "CMakeFiles/test_core.dir/core/equivalence_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/method_test.cpp.o"
  "CMakeFiles/test_core.dir/core/method_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/metrics_test.cpp.o"
  "CMakeFiles/test_core.dir/core/metrics_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/model_selection_test.cpp.o"
  "CMakeFiles/test_core.dir/core/model_selection_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/multiclass_test.cpp.o"
  "CMakeFiles/test_core.dir/core/multiclass_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/predict_test.cpp.o"
  "CMakeFiles/test_core.dir/core/predict_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/spmd_test.cpp.o"
  "CMakeFiles/test_core.dir/core/spmd_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/train_test.cpp.o"
  "CMakeFiles/test_core.dir/core/train_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
