
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/distributed_model_test.cpp" "tests/CMakeFiles/test_core.dir/core/distributed_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/distributed_model_test.cpp.o.d"
  "/root/repo/tests/core/equivalence_test.cpp" "tests/CMakeFiles/test_core.dir/core/equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/equivalence_test.cpp.o.d"
  "/root/repo/tests/core/method_test.cpp" "tests/CMakeFiles/test_core.dir/core/method_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/method_test.cpp.o.d"
  "/root/repo/tests/core/metrics_test.cpp" "tests/CMakeFiles/test_core.dir/core/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/metrics_test.cpp.o.d"
  "/root/repo/tests/core/model_selection_test.cpp" "tests/CMakeFiles/test_core.dir/core/model_selection_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/model_selection_test.cpp.o.d"
  "/root/repo/tests/core/multiclass_test.cpp" "tests/CMakeFiles/test_core.dir/core/multiclass_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/multiclass_test.cpp.o.d"
  "/root/repo/tests/core/predict_test.cpp" "tests/CMakeFiles/test_core.dir/core/predict_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/predict_test.cpp.o.d"
  "/root/repo/tests/core/spmd_test.cpp" "tests/CMakeFiles/test_core.dir/core/spmd_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/spmd_test.cpp.o.d"
  "/root/repo/tests/core/train_test.cpp" "tests/CMakeFiles/test_core.dir/core/train_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/train_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perf/CMakeFiles/casvm_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/casvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/casvm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/casvm_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/casvm_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/casvm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/casvm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/casvm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
