file(REMOVE_RECURSE
  "CMakeFiles/test_data.dir/data/dataset_test.cpp.o"
  "CMakeFiles/test_data.dir/data/dataset_test.cpp.o.d"
  "CMakeFiles/test_data.dir/data/fuzz_test.cpp.o"
  "CMakeFiles/test_data.dir/data/fuzz_test.cpp.o.d"
  "CMakeFiles/test_data.dir/data/io_test.cpp.o"
  "CMakeFiles/test_data.dir/data/io_test.cpp.o.d"
  "CMakeFiles/test_data.dir/data/registry_test.cpp.o"
  "CMakeFiles/test_data.dir/data/registry_test.cpp.o.d"
  "CMakeFiles/test_data.dir/data/scale_test.cpp.o"
  "CMakeFiles/test_data.dir/data/scale_test.cpp.o.d"
  "CMakeFiles/test_data.dir/data/synth_test.cpp.o"
  "CMakeFiles/test_data.dir/data/synth_test.cpp.o.d"
  "test_data"
  "test_data.pdb"
  "test_data[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
