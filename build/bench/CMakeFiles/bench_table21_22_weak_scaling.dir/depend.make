# Empty dependencies file for bench_table21_22_weak_scaling.
# This may be replaced when dependencies are built.
