file(REMOVE_RECURSE
  "CMakeFiles/bench_table03_iters_vs_samples.dir/bench_table03_iters_vs_samples.cpp.o"
  "CMakeFiles/bench_table03_iters_vs_samples.dir/bench_table03_iters_vs_samples.cpp.o.d"
  "bench_table03_iters_vs_samples"
  "bench_table03_iters_vs_samples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table03_iters_vs_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
