# Empty dependencies file for bench_table03_iters_vs_samples.
# This may be replaced when dependencies are built.
