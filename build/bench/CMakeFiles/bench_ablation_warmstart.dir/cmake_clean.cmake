file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_warmstart.dir/bench_ablation_warmstart.cpp.o"
  "CMakeFiles/bench_ablation_warmstart.dir/bench_ablation_warmstart.cpp.o.d"
  "bench_ablation_warmstart"
  "bench_ablation_warmstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_warmstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
