
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table13_18_datasets.cpp" "bench/CMakeFiles/bench_table13_18_datasets.dir/bench_table13_18_datasets.cpp.o" "gcc" "bench/CMakeFiles/bench_table13_18_datasets.dir/bench_table13_18_datasets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perf/CMakeFiles/casvm_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/casvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/casvm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/casvm_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/casvm_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/casvm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/casvm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/casvm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
