# Empty dependencies file for bench_table13_18_datasets.
# This may be replaced when dependencies are built.
