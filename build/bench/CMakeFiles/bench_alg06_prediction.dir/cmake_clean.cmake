file(REMOVE_RECURSE
  "CMakeFiles/bench_alg06_prediction.dir/bench_alg06_prediction.cpp.o"
  "CMakeFiles/bench_alg06_prediction.dir/bench_alg06_prediction.cpp.o.d"
  "bench_alg06_prediction"
  "bench_alg06_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alg06_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
