# Empty dependencies file for bench_alg06_prediction.
# This may be replaced when dependencies are built.
