# Empty dependencies file for bench_table06_09_load_balance.
# This may be replaced when dependencies are built.
