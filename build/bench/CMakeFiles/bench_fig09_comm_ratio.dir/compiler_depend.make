# Empty compiler generated dependencies file for bench_fig09_comm_ratio.
# This may be replaced when dependencies are built.
