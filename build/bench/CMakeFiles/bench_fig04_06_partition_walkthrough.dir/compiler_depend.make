# Empty compiler generated dependencies file for bench_fig04_06_partition_walkthrough.
# This may be replaced when dependencies are built.
