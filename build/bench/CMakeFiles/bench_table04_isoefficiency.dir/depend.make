# Empty dependencies file for bench_table04_isoefficiency.
# This may be replaced when dependencies are built.
