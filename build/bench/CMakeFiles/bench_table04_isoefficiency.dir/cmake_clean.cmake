file(REMOVE_RECURSE
  "CMakeFiles/bench_table04_isoefficiency.dir/bench_table04_isoefficiency.cpp.o"
  "CMakeFiles/bench_table04_isoefficiency.dir/bench_table04_isoefficiency.cpp.o.d"
  "bench_table04_isoefficiency"
  "bench_table04_isoefficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table04_isoefficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
