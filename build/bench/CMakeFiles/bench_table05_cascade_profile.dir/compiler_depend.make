# Empty compiler generated dependencies file for bench_table05_cascade_profile.
# This may be replaced when dependencies are built.
