# Empty dependencies file for bench_table11_comm_efficiency.
# This may be replaced when dependencies are built.
