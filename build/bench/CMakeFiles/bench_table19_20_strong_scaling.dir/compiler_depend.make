# Empty compiler generated dependencies file for bench_table19_20_strong_scaling.
# This may be replaced when dependencies are built.
