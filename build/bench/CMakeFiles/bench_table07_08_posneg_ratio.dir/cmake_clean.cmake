file(REMOVE_RECURSE
  "CMakeFiles/bench_table07_08_posneg_ratio.dir/bench_table07_08_posneg_ratio.cpp.o"
  "CMakeFiles/bench_table07_08_posneg_ratio.dir/bench_table07_08_posneg_ratio.cpp.o.d"
  "bench_table07_08_posneg_ratio"
  "bench_table07_08_posneg_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table07_08_posneg_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
