# Empty dependencies file for bench_table07_08_posneg_ratio.
# This may be replaced when dependencies are built.
