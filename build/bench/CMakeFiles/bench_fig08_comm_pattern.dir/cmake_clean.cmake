file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_comm_pattern.dir/bench_fig08_comm_pattern.cpp.o"
  "CMakeFiles/bench_fig08_comm_pattern.dir/bench_fig08_comm_pattern.cpp.o.d"
  "bench_fig08_comm_pattern"
  "bench_fig08_comm_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_comm_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
