# Empty compiler generated dependencies file for bench_fig08_comm_pattern.
# This may be replaced when dependencies are built.
