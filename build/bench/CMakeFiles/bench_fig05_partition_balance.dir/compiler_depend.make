# Empty compiler generated dependencies file for bench_fig05_partition_balance.
# This may be replaced when dependencies are built.
