// casvm::lowrank property tests:
//
//  * Landmark selection is deterministic under a fixed seed (both
//    strategies), returns ascending distinct indices, and clamps to the
//    dataset size.
//  * The cyclic Jacobi eigendecomposition reconstructs symmetric matrices
//    and produces orthonormal eigenvectors, sorted descending.
//  * NystromFactor fills: fillRow / fillRowSubset / fillDiagonal agree
//    bitwise on shared entries, the approximate matrix is bitwise
//    symmetric, and the diagonal is non-negative (PSD by construction).
//  * The factor matches the explicit Z·Zᵀ matrix recomputed independently
//    through map(), builds are bitwise deterministic, and the checkpoint
//    codec round-trips bitwise.
//  * Accuracy-vs-exact: for all four kernels × dense/CSR storage, an SMO
//    solve against the low-rank RowSource loses only a small accuracy
//    delta versus the exact-kernel solve on the same split.
//  * Train-level: the Nystrom backend tracks the exact backend's held-out
//    accuracy across a partitioned, a tree, and a global method.

#include "casvm/lowrank/nystrom.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include "casvm/core/train.hpp"
#include "casvm/data/registry.hpp"
#include "casvm/data/synth.hpp"
#include "casvm/kernel/kernel.hpp"
#include "casvm/lowrank/landmarks.hpp"
#include "casvm/lowrank/lowrank_kernel.hpp"
#include "casvm/solver/smo.hpp"
#include "casvm/support/error.hpp"

namespace casvm::lowrank {
namespace {

data::MixtureSpec testSpec(bool sparse, std::size_t samples) {
  data::MixtureSpec spec;
  spec.samples = samples;
  spec.features = 12;
  spec.clusters = 4;
  spec.centerSpread = 6.0 / std::sqrt(12.0);
  spec.clusterSpread = 1.0 / std::sqrt(12.0);
  spec.minCenterSeparation = 4.0;
  spec.labelNoise = 0.02;
  spec.seed = 7;
  if (sparse) {
    spec.sparsity = 0.5;
    spec.clusterSparsePattern = true;
    spec.sparseOutput = true;
  }
  return spec;
}

data::Dataset makeData(bool sparse, std::size_t samples = 320) {
  return data::generateMixture(testSpec(sparse, samples));
}

/// Train/test split sharing one mixture geometry (like the registry does).
std::pair<data::Dataset, data::Dataset> makeSplit(bool sparse) {
  const std::size_t trainRows = 360;
  const std::size_t testRows = 120;
  const data::Dataset joint = makeData(sparse, trainRows + testRows);
  std::vector<std::size_t> trainIdx(trainRows);
  std::vector<std::size_t> testIdx(testRows);
  for (std::size_t i = 0; i < trainRows; ++i) trainIdx[i] = i;
  for (std::size_t i = 0; i < testRows; ++i) testIdx[i] = trainRows + i;
  return {joint.subset(trainIdx), joint.subset(testIdx)};
}

// ---------------------------------------------------------------------------
// Landmark selection
// ---------------------------------------------------------------------------

TEST(LandmarkTest, DeterministicUnderFixedSeed) {
  const data::Dataset ds = makeData(false);
  for (const LandmarkStrategy strategy :
       {LandmarkStrategy::Uniform, LandmarkStrategy::KmeansPP}) {
    const auto a = selectLandmarks(ds, 24, strategy, 17);
    const auto b = selectLandmarks(ds, 24, strategy, 17);
    EXPECT_EQ(a, b) << strategyName(strategy);
    ASSERT_EQ(a.size(), 24u);
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
    EXPECT_EQ(std::adjacent_find(a.begin(), a.end()), a.end())
        << "duplicate landmark index";
    for (const std::size_t i : a) EXPECT_LT(i, ds.rows());
  }
}

TEST(LandmarkTest, DifferentSeedsPickDifferentSets) {
  const data::Dataset ds = makeData(false);
  const auto a = selectLandmarks(ds, 24, LandmarkStrategy::Uniform, 1);
  const auto b = selectLandmarks(ds, 24, LandmarkStrategy::Uniform, 2);
  EXPECT_NE(a, b);
}

TEST(LandmarkTest, ClampsToDatasetRows) {
  const data::Dataset ds = makeData(false, 20);
  const auto idx = selectLandmarks(ds, 1000, LandmarkStrategy::KmeansPP, 3);
  ASSERT_EQ(idx.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(idx[i], i);
}

TEST(LandmarkTest, StrategyNamesRoundTrip) {
  EXPECT_EQ(strategyFromName("uniform"), LandmarkStrategy::Uniform);
  EXPECT_EQ(strategyFromName("kmeans++"), LandmarkStrategy::KmeansPP);
  EXPECT_EQ(strategyFromName(strategyName(LandmarkStrategy::Uniform)),
            LandmarkStrategy::Uniform);
  EXPECT_EQ(strategyFromName(strategyName(LandmarkStrategy::KmeansPP)),
            LandmarkStrategy::KmeansPP);
  EXPECT_THROW((void)strategyFromName("nope"), Error);
}

TEST(LandmarkTest, ExtractDensifiesSparseRows) {
  const data::Dataset ds = makeData(true);
  const std::vector<std::size_t> idx{0, 5, 9};
  const LandmarkSet set = extractLandmarks(ds, idx);
  EXPECT_EQ(set.count(), 3u);
  EXPECT_EQ(set.features, ds.cols());
  for (std::size_t l = 0; l < idx.size(); ++l) {
    EXPECT_DOUBLE_EQ(set.selfDots[l], ds.selfDot(idx[l]));
    double dot = 0.0;
    for (const float v : set.row(l)) dot += static_cast<double>(v) * v;
    EXPECT_NEAR(dot, ds.selfDot(idx[l]), 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Jacobi eigendecomposition
// ---------------------------------------------------------------------------

TEST(JacobiTest, DiagonalMatrixSortedDescending) {
  std::vector<double> a{3.0, 0.0, 0.0,  //
                        0.0, 1.0, 0.0,  //
                        0.0, 0.0, 2.0};
  std::vector<double> ev;
  std::vector<double> vecs;
  jacobiEigenSymmetric(a, 3, ev, vecs);
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_DOUBLE_EQ(ev[0], 3.0);
  EXPECT_DOUBLE_EQ(ev[1], 2.0);
  EXPECT_DOUBLE_EQ(ev[2], 1.0);
}

TEST(JacobiTest, ReconstructsRandomSymmetricMatrix) {
  constexpr std::size_t s = 8;
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  std::vector<double> original(s * s);
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = i; j < s; ++j) {
      const double v = uni(rng);
      original[i * s + j] = v;
      original[j * s + i] = v;
    }
  }
  std::vector<double> work = original;
  std::vector<double> ev;
  std::vector<double> vecs;
  jacobiEigenSymmetric(work, s, ev, vecs);

  // Descending eigenvalues, orthonormal eigenvector columns.
  for (std::size_t t = 1; t < s; ++t) EXPECT_GE(ev[t - 1], ev[t]);
  for (std::size_t t = 0; t < s; ++t) {
    for (std::size_t u = 0; u < s; ++u) {
      double dot = 0.0;
      for (std::size_t i = 0; i < s; ++i) {
        dot += vecs[i * s + t] * vecs[i * s + u];
      }
      EXPECT_NEAR(dot, t == u ? 1.0 : 0.0, 1e-10);
    }
  }
  // A == V diag(ev) V^T.
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = 0; j < s; ++j) {
      double v = 0.0;
      for (std::size_t t = 0; t < s; ++t) {
        v += vecs[i * s + t] * ev[t] * vecs[j * s + t];
      }
      EXPECT_NEAR(v, original[i * s + j], 1e-10) << i << "," << j;
    }
  }
}

// ---------------------------------------------------------------------------
// NystromFactor fills
// ---------------------------------------------------------------------------

NystromFactor buildFactor(const data::Dataset& ds,
                          const kernel::Kernel& kern,
                          std::size_t landmarks = 48) {
  NystromOptions opts;
  opts.landmarks = landmarks;
  opts.seed = 5;
  return NystromFactor::build(kern, ds, opts);
}

TEST(NystromTest, FillsAgreeBitwiseAndMatrixIsSymmetric) {
  const data::Dataset ds = makeData(false, 200);
  const kernel::Kernel kern(kernel::KernelParams::gaussian(0.5));
  NystromFactor factor = buildFactor(ds, kern);
  ASSERT_EQ(factor.rows(), ds.rows());
  ASSERT_GT(factor.rank(), 0u);

  const std::size_t m = ds.rows();
  std::vector<double> full(m);
  std::vector<double> diag(m);
  factor.fillDiagonal(diag);
  std::vector<std::vector<double>> rows(m, std::vector<double>(m));
  for (std::size_t i = 0; i < m; ++i) factor.fillRow(i, rows[i]);

  const std::vector<std::size_t> active{0, 3, 7, 42, 199};
  std::vector<double> subset(m);  // scatter semantics: full-length output
  for (std::size_t i = 0; i < m; i += 37) {
    // Full fill vs partial fill: bitwise equal on the shared entries.
    factor.fillRowSubset(i, active, subset);
    for (const std::size_t j : active) {
      EXPECT_EQ(subset[j], rows[i][j]) << i << "," << j;
    }
    // Diagonal path agrees bitwise with the row path.
    EXPECT_EQ(diag[i], rows[i][i]) << i;
    // PSD: every diagonal entry is a squared norm.
    EXPECT_GE(diag[i], 0.0);
  }
  // Bitwise symmetry of the full approximate matrix.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      ASSERT_EQ(rows[i][j], rows[j][i]) << i << "," << j;
    }
  }
}

TEST(NystromTest, MatchesExplicitZZtThroughMap) {
  // Recompute z-rows independently through map() (double-precision W^T
  // k_L(x) from the raw features) and check the tiled fills against the
  // explicit Z·Zᵀ product. The tiles round z to float, so the comparison
  // is near-equality, not bitwise.
  const data::Dataset ds = makeData(false, 150);
  const kernel::Kernel kern(kernel::KernelParams::gaussian(0.5));
  NystromFactor factor = buildFactor(ds, kern, 40);
  const std::size_t m = ds.rows();
  const std::size_t r = factor.rank();

  std::vector<std::vector<double>> z(m, std::vector<double>(r));
  for (std::size_t i = 0; i < m; ++i) {
    factor.map(kern, ds.denseRow(i), ds.selfDot(i), z[i]);
  }
  std::vector<double> row(m);
  for (std::size_t i = 0; i < m; i += 13) {
    factor.fillRow(i, row);
    for (std::size_t j = 0; j < m; ++j) {
      double explicitly = 0.0;
      for (std::size_t t = 0; t < r; ++t) explicitly += z[i][t] * z[j][t];
      EXPECT_NEAR(row[j], explicitly, 1e-4) << i << "," << j;
    }
    // zdot over a mapped row is the same inner product.
    EXPECT_NEAR(factor.zdot(i, z[i]), row[i], 1e-4);
  }
}

TEST(NystromTest, ApproximatesExactKernelOnLandmarkSpans) {
  // With L = m (every row a landmark) the Nyström approximation is exact
  // up to floating point: K̃ = K K⁻¹ K = K.
  const data::Dataset ds = makeData(false, 64);
  const kernel::Kernel kern(kernel::KernelParams::gaussian(0.5));
  NystromFactor factor = buildFactor(ds, kern, ds.rows());
  std::vector<double> approx(ds.rows());
  for (std::size_t i = 0; i < ds.rows(); i += 7) {
    factor.fillRow(i, approx);
    for (std::size_t j = 0; j < ds.rows(); ++j) {
      EXPECT_NEAR(approx[j], kern.eval(ds, i, j), 5e-3) << i << "," << j;
    }
  }
}

TEST(NystromTest, BuildIsDeterministicBitwise) {
  const data::Dataset ds = makeData(true, 180);
  const kernel::Kernel kern(kernel::KernelParams::gaussian(2.5));
  NystromFactor a = buildFactor(ds, kern);
  NystromFactor b = buildFactor(ds, kern);
  EXPECT_EQ(a.encode(), b.encode());
}

TEST(NystromTest, CodecRoundTripsBitwise) {
  const data::Dataset ds = makeData(false, 120);
  const kernel::Kernel kern(kernel::KernelParams::polynomial(0.5, 1.0, 2));
  NystromFactor original = buildFactor(ds, kern, 32);
  const std::vector<std::byte> bytes = original.encode();
  NystromFactor restored = NystromFactor::decode(bytes);

  EXPECT_EQ(restored.rows(), original.rows());
  EXPECT_EQ(restored.rank(), original.rank());
  EXPECT_EQ(restored.landmarks().count(), original.landmarks().count());
  EXPECT_EQ(restored.encode(), bytes) << "re-encode differs";
  std::vector<double> a(ds.rows());
  std::vector<double> b(ds.rows());
  for (std::size_t i = 0; i < ds.rows(); i += 11) {
    original.fillRow(i, a);
    restored.fillRow(i, b);
    EXPECT_EQ(a, b) << "restored row " << i << " differs bitwise";
  }

  // Truncated payloads are rejected, not misread.
  EXPECT_THROW(
      (void)NystromFactor::decode(
          std::span<const std::byte>(bytes.data(), bytes.size() / 2)),
      Error);
}

TEST(NystromTest, RankDeficientLandmarksAreTruncatedNotInverted) {
  // All-identical rows: K_LL is rank one, so the eigenvalue floor must
  // truncate to r = 1 instead of blowing up (K_LL)^{-1/2}.
  const std::size_t m = 40;
  const std::size_t n = 6;
  std::vector<float> values(m * n, 0.25f);
  std::vector<std::int8_t> labels(m, 1);
  for (std::size_t i = 0; i < m; i += 2) labels[i] = -1;
  const data::Dataset ds =
      data::Dataset::fromDense(n, std::move(values), std::move(labels));
  const kernel::Kernel kern(kernel::KernelParams::gaussian(0.5));
  NystromFactor factor = buildFactor(ds, kern, 16);
  EXPECT_EQ(factor.rank(), 1u);
  std::vector<double> diag(m);
  factor.fillDiagonal(diag);
  for (const double d : diag) {
    EXPECT_TRUE(std::isfinite(d));
    EXPECT_NEAR(d, 1.0, 1e-5);  // K(x, x) = 1 for the Gaussian kernel
  }
}

// ---------------------------------------------------------------------------
// Accuracy vs exact: 4 kernels × dense/CSR through the solver's RowSource
// ---------------------------------------------------------------------------

struct AccuracyCase {
  const char* kernelTag;
  bool sparse;
  double maxDelta;  ///< allowed held-out accuracy loss vs the exact solve
};

kernel::KernelParams kernelFor(const std::string& tag) {
  if (tag == "linear") return kernel::KernelParams::linear();
  if (tag == "gaussian") return kernel::KernelParams::gaussian(0.5);
  if (tag == "polynomial") return kernel::KernelParams::polynomial(0.5, 1.0, 2);
  // A small slope with a positive offset keeps the (inherently indefinite)
  // sigmoid kernel near-PSD on this data, so the eigenvalue floor drops
  // little of its spectrum and the approximation stays tight. Strongly
  // indefinite parameterizations lose accuracy structurally: the floor
  // discards the negative eigenspace that K̃ = Z·Zᵀ cannot represent.
  if (tag == "sigmoid") return kernel::KernelParams::sigmoid(0.01, 0.5);
  throw Error("unknown kernel tag in test");
}

class LowRankAccuracyTest : public ::testing::TestWithParam<AccuracyCase> {};

std::string accuracyCaseName(
    const ::testing::TestParamInfo<AccuracyCase>& info) {
  return std::string(info.param.kernelTag) +
         (info.param.sparse ? "_csr" : "_dense");
}

TEST_P(LowRankAccuracyTest, SolverLosesLittleAccuracy) {
  const AccuracyCase& ac = GetParam();
  const auto [train, test] = makeSplit(ac.sparse);

  solver::SolverOptions exactOpts;
  exactOpts.kernel = kernelFor(ac.kernelTag);
  exactOpts.C = 1.0;
  const solver::SolverResult exact =
      solver::SmoSolver(exactOpts).solve(train);
  const double exactAcc = exact.model.accuracy(test);

  NystromOptions nopts;
  nopts.landmarks = 96;
  nopts.seed = 9;
  const kernel::Kernel kern(exactOpts.kernel);
  LowRankKernel source(NystromFactor::build(kern, train, nopts));
  solver::SolverOptions lowOpts = exactOpts;
  lowOpts.rowSource = &source;
  const solver::SolverResult low = solver::SmoSolver(lowOpts).solve(train);
  const double lowAcc = low.model.accuracy(test);

  EXPECT_GE(lowAcc, exactAcc - ac.maxDelta)
      << "exact " << exactAcc << " vs low-rank " << lowAcc;
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, LowRankAccuracyTest,
    ::testing::Values(AccuracyCase{"linear", false, 0.03},
                      AccuracyCase{"linear", true, 0.03},
                      AccuracyCase{"gaussian", false, 0.03},
                      AccuracyCase{"gaussian", true, 0.03},
                      AccuracyCase{"polynomial", false, 0.03},
                      AccuracyCase{"polynomial", true, 0.03},
                      // The sigmoid kernel is indefinite; the eigenvalue
                      // floor drops its negative spectrum, so the
                      // approximation is looser by construction.
                      AccuracyCase{"sigmoid", false, 0.06},
                      AccuracyCase{"sigmoid", true, 0.06}),
    accuracyCaseName);

// ---------------------------------------------------------------------------
// Train-level: the backend flag reaches every method family
// ---------------------------------------------------------------------------

TEST(LowRankTrainTest, BackendTracksExactAccuracyAcrossMethodFamilies) {
  const data::NamedDataset nd = data::standin("toy", 0.25);
  // One partitioned, one tree, one global method — the three distinct
  // factor compositions (per-cluster, per-layer, global-landmark).
  for (const core::Method method :
       {core::Method::BkmCa, core::Method::Cascade, core::Method::DisSmo}) {
    core::TrainConfig cfg;
    cfg.method = method;
    cfg.processes = 4;
    cfg.solver.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
    cfg.solver.C = nd.suggestedC;
    const double exactAcc =
        core::train(nd.train, cfg).model.accuracy(nd.test);

    cfg.solverBackend = core::SolverBackend::Nystrom;
    cfg.nystromLandmarks = 64;
    const double lowAcc = core::train(nd.train, cfg).model.accuracy(nd.test);
    EXPECT_GE(lowAcc, exactAcc - 0.03)
        << core::methodName(method) << ": exact " << exactAcc
        << " vs nystrom " << lowAcc;
  }
}

TEST(LowRankTrainTest, PbmRejectsTheNystromBackend) {
  const data::NamedDataset nd = data::standin("toy", 0.25);
  core::TrainConfig cfg;
  cfg.method = core::Method::Pbm;
  cfg.processes = 4;
  cfg.solver.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
  cfg.solverBackend = core::SolverBackend::Nystrom;
  EXPECT_THROW((void)core::train(nd.train, cfg), Error);
}

TEST(LowRankTrainTest, BackendNamesRoundTrip) {
  EXPECT_STREQ(core::backendName(core::SolverBackend::Exact), "exact");
  EXPECT_STREQ(core::backendName(core::SolverBackend::Nystrom), "nystrom");
  EXPECT_EQ(core::backendFromName("exact"), core::SolverBackend::Exact);
  EXPECT_EQ(core::backendFromName("nystrom"), core::SolverBackend::Nystrom);
  EXPECT_THROW((void)core::backendFromName("magic"), Error);
}

}  // namespace
}  // namespace casvm::lowrank
