#!/bin/sh
# End-to-end CLI workflow: datagen -> scale -> train -> predict (local and
# distributed). Run by ctest with the build directory as $1.
set -e
BIN="$1/tools"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$BIN/casvm-datagen" --list > "$WORK/list.txt"
grep -q webspam "$WORK/list.txt"

"$BIN/casvm-datagen" --standin toy --scale 0.5 \
  --out "$WORK/train.libsvm" --test-out "$WORK/test.libsvm"
test -s "$WORK/train.libsvm"
test -s "$WORK/test.libsvm"

"$BIN/casvm-scale" --data "$WORK/train.libsvm" --kind standard \
  --out "$WORK/train.scaled" --save-params "$WORK/scaler.txt"
"$BIN/casvm-scale" --data "$WORK/test.libsvm" \
  --out "$WORK/test.scaled" --load-params "$WORK/scaler.txt"

"$BIN/casvm-train" --data "$WORK/train.scaled" --method fcfs-ca \
  --gamma 0.5 --procs 4 --out "$WORK/model.bin" > "$WORK/train.log"
grep -q "model written" "$WORK/train.log"

"$BIN/casvm-predict" --model "$WORK/model.bin" --data "$WORK/test.scaled" \
  --out "$WORK/labels.txt" > "$WORK/predict.log"
grep -q "accuracy" "$WORK/predict.log"
# One label per test sample.
test "$(wc -l < "$WORK/labels.txt")" = "$(wc -l < "$WORK/test.scaled")"

"$BIN/casvm-predict" --model "$WORK/model.bin" --data "$WORK/test.scaled" \
  --distributed > "$WORK/predict_dist.log"
grep -q "distributed prediction" "$WORK/predict_dist.log"

# Accuracy parity between local and routed prediction.
ACC1=$(grep -o 'accuracy: [0-9.]*' "$WORK/predict.log" | head -1)
ACC2=$(grep -o 'accuracy: [0-9.]*' "$WORK/predict_dist.log" | head -1)
test "$ACC1" = "$ACC2"
# The local path serves through the compiled-batch engine and reports it.
grep -q "throughput" "$WORK/predict.log"
grep -q "latency" "$WORK/predict.log"

# Serving load generator over the same saved model: closed loop, every
# request must get an explicit result code (the tool exits nonzero on any
# lost reply).
"$BIN/casvm-serve" --model "$WORK/model.bin" --data "$WORK/test.scaled" \
  --mode closed --requests 2000 --out "$WORK/serve.json" > "$WORK/serve.log"
grep -q '"bench": "serve"' "$WORK/serve.json"
grep -q '"shed"' "$WORK/serve.json"
grep -q "qps" "$WORK/serve.log"

"$BIN/casvm-model" --mode strong --m 16000 --procs 8,32,128 \
  --standin toy > "$WORK/model_tool.log"
grep -q "ra-ca" "$WORK/model_tool.log"

# Fault injection: a partitioned method degrades around a crashed rank and
# the surviving model still predicts.
"$BIN/casvm-train" --data "$WORK/train.scaled" --method ra-ca \
  --gamma 0.5 --procs 4 --fault-spec "crash:rank=2,phase=train" \
  --fault-seed 7 --out "$WORK/degraded.bin" > "$WORK/degraded.log"
grep -q "degraded run" "$WORK/degraded.log"
grep -q "3 of 4 partitions survived" "$WORK/degraded.log"
grep -q "model written" "$WORK/degraded.log"
"$BIN/casvm-predict" --model "$WORK/degraded.bin" --data "$WORK/test.scaled" \
  > "$WORK/degraded_predict.log"
grep -q "accuracy" "$WORK/degraded_predict.log"

# The same crash sinks a tree method fast, naming the injected fault.
if "$BIN/casvm-train" --data "$WORK/train.scaled" --method cascade \
  --gamma 0.5 --procs 4 --fault-spec "crash:rank=2,phase=train" \
  > "$WORK/failfast.log" 2>&1; then
  echo "expected cascade to fail under an injected crash" >&2
  exit 1
fi
grep -q "injected fault" "$WORK/failfast.log"

# A malformed fault spec is rejected up front.
if "$BIN/casvm-train" --data "$WORK/train.scaled" --method ra-ca \
  --gamma 0.5 --procs 4 --fault-spec "explode:rank=1" \
  > "$WORK/badspec.log" 2>&1; then
  echo "expected a malformed --fault-spec to be rejected" >&2
  exit 1
fi
grep -q "unknown fault kind" "$WORK/badspec.log"

# An aborting traced run still flushes its partial trace before teardown.
if "$BIN/casvm-train" --data "$WORK/train.scaled" --method cascade \
  --gamma 0.5 --procs 4 --fault-spec "crash:rank=2,phase=train" \
  --trace "$WORK/partial_trace.json" > "$WORK/traceabort.log" 2>&1; then
  echo "expected the traced cascade run to fail" >&2
  exit 1
fi
grep -q "partial trace flushed" "$WORK/traceabort.log"
test -s "$WORK/partial_trace.json"

# Checkpoint/resume: a run killed mid-solve restarts from its checkpoint
# directory and still writes a model.
if "$BIN/casvm-train" --data "$WORK/train.scaled" --method cascade \
  --gamma 0.5 --procs 4 --fault-spec "crash:rank=0,phase=solve,nth=2" \
  --checkpoint-dir "$WORK/ckpt" --checkpoint-every 8 \
  > "$WORK/ckpt_crash.log" 2>&1; then
  echo "expected the checkpointed cascade run to crash" >&2
  exit 1
fi
"$BIN/casvm-train" --data "$WORK/train.scaled" --method cascade \
  --gamma 0.5 --procs 4 --checkpoint-dir "$WORK/ckpt" --checkpoint-every 8 \
  --resume --out "$WORK/resumed.bin" > "$WORK/resume.log"
grep -q "resumed:" "$WORK/resume.log"
grep -q "model written" "$WORK/resume.log"

# --resume without --checkpoint-dir is rejected up front.
if "$BIN/casvm-train" --data "$WORK/train.scaled" --method ra-ca \
  --gamma 0.5 --procs 4 --resume > "$WORK/noresume.log" 2>&1; then
  echo "expected --resume without --checkpoint-dir to be rejected" >&2
  exit 1
fi
grep -q -- "--resume needs --checkpoint-dir" "$WORK/noresume.log"

# Rank retry: the crashed rank respawns and full coverage is restored —
# the run is recovered, not degraded.
"$BIN/casvm-train" --data "$WORK/train.scaled" --method ra-ca \
  --gamma 0.5 --procs 4 --fault-spec "crash:rank=2,phase=train" \
  --rank-retries 1 --checkpoint-dir "$WORK/ckpt_retry" \
  --out "$WORK/retried.bin" > "$WORK/retry.log"
grep -q "recovered: rank(s) 2" "$WORK/retry.log"
grep -q "model written" "$WORK/retry.log"
if grep -q "degraded run" "$WORK/retry.log"; then
  echo "a recovered run must not be reported degraded" >&2
  exit 1
fi

echo "tools workflow OK"
