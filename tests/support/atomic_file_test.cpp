// Crash-consistent file writes and the CRC32 they pair with: the two
// support-layer primitives every durable artifact (models, checkpoints,
// metrics) is built on.

#include "casvm/support/atomic_file.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "casvm/support/checksum.hpp"
#include "casvm/support/error.hpp"

namespace fs = std::filesystem;

namespace casvm::support {
namespace {

std::vector<std::byte> toBytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::string freshDir(const std::string& leaf) {
  const std::string dir = ::testing::TempDir() + "/" + leaf;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(Crc32Test, MatchesTheStandardCheckVector) {
  // The canonical IEEE 802.3 check value: CRC32("123456789") = 0xCBF43926.
  EXPECT_EQ(crc32(toBytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(Crc32Test, StreamingInChunksEqualsOneShot) {
  const auto bytes = toBytes("the quick brown fox jumps over the lazy dog");
  const std::uint32_t oneShot = crc32(bytes);
  std::uint32_t streamed = 0;
  const std::span<const std::byte> span(bytes);
  streamed = crc32(span.first(7), streamed);
  streamed = crc32(span.subspan(7, 20), streamed);
  streamed = crc32(span.subspan(27), streamed);
  EXPECT_EQ(streamed, oneShot);
}

TEST(Crc32Test, SingleBitFlipChangesTheChecksum) {
  auto bytes = toBytes("checkpoint payload");
  const std::uint32_t before = crc32(bytes);
  bytes[5] ^= std::byte{0x01};
  EXPECT_NE(crc32(bytes), before);
}

TEST(AtomicFileTest, WriteReadRoundTrip) {
  const std::string dir = freshDir("atomic_roundtrip");
  const std::string path = dir + "/data.bin";
  const auto payload = toBytes("hello, durable world");
  writeFileAtomic(path, std::span<const std::byte>(payload));
  EXPECT_EQ(readFileBytes(path), payload);
}

TEST(AtomicFileTest, TextOverloadRoundTrip) {
  const std::string dir = freshDir("atomic_text");
  const std::string path = dir + "/note.txt";
  writeFileAtomic(path, std::string("line one\nline two\n"));
  const auto back = readFileBytes(path);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(back.data()),
                        back.size()),
            "line one\nline two\n");
}

TEST(AtomicFileTest, OverwriteReplacesWholeContent) {
  const std::string dir = freshDir("atomic_overwrite");
  const std::string path = dir + "/data.bin";
  const auto longer = toBytes("a much longer first version of the file");
  const auto shorter = toBytes("v2");
  writeFileAtomic(path, std::span<const std::byte>(longer));
  writeFileAtomic(path, std::span<const std::byte>(shorter));
  // A non-atomic in-place write of a shorter payload would leave a tail of
  // the first version behind.
  EXPECT_EQ(readFileBytes(path), shorter);
}

TEST(AtomicFileTest, NoTemporaryLeftBehind) {
  const std::string dir = freshDir("atomic_clean");
  const auto payload = toBytes("x");
  writeFileAtomic(dir + "/a.bin", std::span<const std::byte>(payload));
  writeFileAtomic(dir + "/a.bin", std::span<const std::byte>(payload));
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);  // just a.bin — no .tmp.* stragglers
}

TEST(AtomicFileTest, FailedWriteLeavesPreviousContentAndNoTemp) {
  const std::string dir = freshDir("atomic_fail");
  // Writing to a path whose parent does not exist must throw and create
  // nothing.
  const auto payload = toBytes("doomed");
  EXPECT_THROW(writeFileAtomic(dir + "/no/such/dir/f.bin",
                               std::span<const std::byte>(payload)),
               Error);
  EXPECT_FALSE(fs::exists(dir + "/no"));
}

TEST(AtomicFileTest, ReadMissingFileThrows) {
  EXPECT_THROW((void)readFileBytes("/nonexistent/casvm/file.bin"), Error);
}

TEST(AtomicFileTest, ReadEmptyFileYieldsEmptyVector) {
  const std::string dir = freshDir("atomic_empty");
  const std::string path = dir + "/empty.bin";
  writeFileAtomic(path, std::span<const std::byte>());
  EXPECT_TRUE(readFileBytes(path).empty());
}

}  // namespace
}  // namespace casvm::support
