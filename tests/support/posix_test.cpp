// EINTR-safety tests for casvm::support's POSIX wrappers: a pipe with a
// deliberately tiny kernel buffer plus a thread hammering the caller with
// SIGUSR1 guarantees the underlying read()/write() calls get interrupted
// mid-transfer, which is exactly the condition the wrappers must absorb.

#include "casvm/support/posix.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "casvm/support/error.hpp"

namespace casvm::support {
namespace {

void noopHandler(int) {}

// Install SIGUSR1 without SA_RESTART so blocking syscalls really do
// return EINTR instead of being transparently restarted by the kernel.
struct InterruptingHandler {
  InterruptingHandler() {
    struct sigaction sa {};
    sa.sa_handler = noopHandler;
    sa.sa_flags = 0;
    sigemptyset(&sa.sa_mask);
    EXPECT_EQ(0, sigaction(SIGUSR1, &sa, &old_));
  }
  ~InterruptingHandler() { sigaction(SIGUSR1, &old_, nullptr); }
  struct sigaction old_ {};
};

// Fires SIGUSR1 at `target` every ~200us until stopped.
class SignalStorm {
 public:
  explicit SignalStorm(pthread_t target) : target_(target) {
    thread_ = std::thread([this] {
      while (!stop_.load(std::memory_order_relaxed)) {
        pthread_kill(target_, SIGUSR1);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }
  ~SignalStorm() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

 private:
  pthread_t target_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

std::vector<char> patternBytes(std::size_t n) {
  std::vector<char> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<char>((i * 131 + 7) & 0xff);
  }
  return data;
}

TEST(PosixTest, WriteFullSurvivesSignalsAndBackpressure) {
  InterruptingHandler handler;
  int fds[2];
  ASSERT_EQ(0, pipe(fds));
#ifdef F_SETPIPE_SZ
  fcntl(fds[1], F_SETPIPE_SZ, 4096);  // small buffer => many short writes
#endif

  const std::vector<char> sent = patternBytes(1 << 20);
  std::vector<char> received(sent.size());

  // Reader drains slowly on another thread so the writer blocks and gets
  // interrupted while blocked.
  std::thread reader([&] {
    std::size_t got = 0;
    while (got < received.size()) {
      const ssize_t n = ::read(fds[0], received.data() + got,
                               std::min<std::size_t>(2048, received.size() - got));
      if (n > 0) {
        got += static_cast<std::size_t>(n);
      } else if (n < 0 && errno != EINTR) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  {
    SignalStorm storm(pthread_self());
    writeFull(fds[1], sent.data(), sent.size());
  }
  close(fds[1]);
  reader.join();
  close(fds[0]);

  EXPECT_EQ(0, std::memcmp(sent.data(), received.data(), sent.size()));
}

TEST(PosixTest, ReadFullSurvivesSignalsAndShortReads) {
  InterruptingHandler handler;
  int fds[2];
  ASSERT_EQ(0, pipe(fds));

  const std::vector<char> sent = patternBytes(1 << 19);

  // Writer dribbles the payload in small chunks so the reader blocks
  // between chunks and takes signals while blocked.
  std::thread writer([&] {
    std::size_t put = 0;
    while (put < sent.size()) {
      const std::size_t chunk = std::min<std::size_t>(1024, sent.size() - put);
      const ssize_t n = ::write(fds[1], sent.data() + put, chunk);
      if (n > 0) {
        put += static_cast<std::size_t>(n);
      } else if (n < 0 && errno != EINTR) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    close(fds[1]);
  });

  std::vector<char> received(sent.size());
  {
    SignalStorm storm(pthread_self());
    const std::size_t got = readFull(fds[0], received.data(), received.size());
    EXPECT_EQ(sent.size(), got);
  }
  writer.join();
  close(fds[0]);

  EXPECT_EQ(0, std::memcmp(sent.data(), received.data(), sent.size()));
}

TEST(PosixTest, ReadFullReportsEofShort) {
  int fds[2];
  ASSERT_EQ(0, pipe(fds));
  ASSERT_EQ(3, ::write(fds[1], "abc", 3));
  close(fds[1]);

  char buf[16];
  EXPECT_EQ(3u, readFull(fds[0], buf, sizeof buf));
  EXPECT_EQ(0, std::memcmp(buf, "abc", 3));
  close(fds[0]);
}

TEST(PosixTest, WriteFullThrowsOnClosedPipe) {
  // EPIPE must surface as an error, not a hang; ignore the signal so the
  // write returns -1/EPIPE instead of killing the process.
  struct sigaction ign {}, old {};
  ign.sa_handler = SIG_IGN;
  sigaction(SIGPIPE, &ign, &old);

  int fds[2];
  ASSERT_EQ(0, pipe(fds));
  close(fds[0]);
  const std::vector<char> data(4096, 'x');
  EXPECT_THROW(writeFull(fds[1], data.data(), data.size()), Error);
  close(fds[1]);

  sigaction(SIGPIPE, &old, nullptr);
}

TEST(PosixTest, WaitpidRetrySurvivesSignals) {
  InterruptingHandler handler;
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    usleep(100 * 1000);  // keep the parent waiting long enough to be hit
    _exit(42);
  }

  int status = 0;
  pid_t reaped = -1;
  {
    SignalStorm storm(pthread_self());
    reaped = waitpidRetry(child, &status, 0);
  }
  EXPECT_EQ(child, reaped);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(42, WEXITSTATUS(status));
}

}  // namespace
}  // namespace casvm::support
