#include "casvm/support/error.hpp"

#include <gtest/gtest.h>

namespace casvm {
namespace {

TEST(ErrorTest, CheckPassesOnTrue) {
  EXPECT_NO_THROW(CASVM_CHECK(1 + 1 == 2, "math works"));
}

TEST(ErrorTest, CheckThrowsOnFalse) {
  EXPECT_THROW(CASVM_CHECK(false, "always fails"), Error);
}

TEST(ErrorTest, MessageContainsContext) {
  try {
    CASVM_CHECK(2 > 3, "impossible comparison");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("impossible comparison"), std::string::npos);
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(ErrorTest, AssertBehavesLikeCheck) {
  EXPECT_THROW(CASVM_ASSERT(false, "invariant broken"), Error);
  EXPECT_NO_THROW(CASVM_ASSERT(true, "ok"));
}

TEST(ErrorTest, ErrorIsRuntimeError) {
  const Error e("boom");
  const std::runtime_error& base = e;
  EXPECT_STREQ(base.what(), "boom");
}

}  // namespace
}  // namespace casvm
