#include "casvm/support/table.hpp"

#include <gtest/gtest.h>

#include "casvm/support/error.hpp"

namespace casvm {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  TablePrinter t({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addRow({"beta", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TableTest, ColumnsAligned) {
  TablePrinter t({"a", "b"});
  t.addRow({"xxxxxx", "1"});
  t.addRow({"y", "2"});
  const std::string out = t.render();
  // Every line has the same length when columns are padded.
  std::size_t firstLen = out.find('\n');
  std::size_t pos = firstLen + 1;
  while (pos < out.size()) {
    const std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, firstLen);
    pos = next + 1;
  }
}

TEST(TableTest, RowArityMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), Error);
}

TEST(TableTest, EmptyHeaderThrows) {
  EXPECT_THROW(TablePrinter({}), Error);
}

TEST(TableTest, RowCount) {
  TablePrinter t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.addRow({"1"});
  t.addRow({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableFmtTest, FixedPoint) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::fmt(-1.5, 1), "-1.5");
}

TEST(TableFmtTest, CountSeparators) {
  EXPECT_EQ(TablePrinter::fmtCount(0), "0");
  EXPECT_EQ(TablePrinter::fmtCount(999), "999");
  EXPECT_EQ(TablePrinter::fmtCount(1000), "1,000");
  EXPECT_EQ(TablePrinter::fmtCount(30297), "30,297");
  EXPECT_EQ(TablePrinter::fmtCount(1234567), "1,234,567");
  EXPECT_EQ(TablePrinter::fmtCount(-1234), "-1,234");
}

TEST(TableFmtTest, Bytes) {
  EXPECT_EQ(TablePrinter::fmtBytes(0), "0B");
  EXPECT_EQ(TablePrinter::fmtBytes(512), "512B");
  EXPECT_EQ(TablePrinter::fmtBytes(2048), "2.0KB");
  EXPECT_EQ(TablePrinter::fmtBytes(8.41 * 1024 * 1024), "8.4MB");
}

TEST(TableFmtTest, Percent) {
  EXPECT_EQ(TablePrinter::fmtPercent(0.953), "95.3%");
  EXPECT_EQ(TablePrinter::fmtPercent(1.0), "100.0%");
}

}  // namespace
}  // namespace casvm
