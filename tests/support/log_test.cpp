#include "casvm/support/log.hpp"

#include <gtest/gtest.h>

namespace casvm {
namespace {

TEST(LogTest, LevelRoundTrips) {
  const LogLevel original = logLevel();
  setLogLevel(LogLevel::Debug);
  EXPECT_EQ(logLevel(), LogLevel::Debug);
  setLogLevel(LogLevel::Error);
  EXPECT_EQ(logLevel(), LogLevel::Error);
  setLogLevel(original);
}

TEST(LogTest, MacrosCompileAndRespectLevel) {
  const LogLevel original = logLevel();
  setLogLevel(LogLevel::Off);
  // Should be a no-op (nothing observable, but must not crash).
  CASVM_DEBUG("debug " << 1);
  CASVM_INFO("info " << 2);
  CASVM_WARN("warn " << 3);
  CASVM_ERROR("error " << 4);
  setLogLevel(original);
}

TEST(LogTest, ExpressionNotEvaluatedBelowLevel) {
  const LogLevel original = logLevel();
  setLogLevel(LogLevel::Off);
  int evaluations = 0;
  auto sideEffect = [&]() {
    ++evaluations;
    return "x";
  };
  CASVM_DEBUG(sideEffect());
  EXPECT_EQ(evaluations, 0);
  setLogLevel(original);
}

}  // namespace
}  // namespace casvm
