#include "casvm/support/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace casvm {
namespace {

TEST(TimerTest, WallTimerAdvances) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(t.seconds(), 0.009);
}

TEST(TimerTest, ResetRestarts) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.reset();
  EXPECT_LT(t.seconds(), 0.009);
}

TEST(TimerTest, ThreadCpuGrowsWithWork) {
  const double before = threadCpuSeconds();
  double x = 1.0;
  for (int i = 0; i < 20000000; ++i) x = x * 1.0000001 + 1e-9;
  const double after = threadCpuSeconds();
  EXPECT_GT(x, 0.0);
  EXPECT_GT(after, before);
}

TEST(TimerTest, ThreadCpuIgnoresSleep) {
  const double before = threadCpuSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const double after = threadCpuSeconds();
  // Sleeping burns (almost) no CPU.
  EXPECT_LT(after - before, 0.02);
}

TEST(TimerTest, ProcessCpuAtLeastThreadCpu) {
  double x = 1.0;
  for (int i = 0; i < 1000000; ++i) x = x * 1.0000001 + 1e-9;
  EXPECT_GT(x, 0.0);
  EXPECT_GE(processCpuSeconds(), threadCpuSeconds() * 0.5);
}

}  // namespace
}  // namespace casvm
