#include "casvm/support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "casvm/support/error.hpp"

namespace casvm {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  const std::uint64_t first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(RngTest, BelowCoversAllValues) {
  Rng rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, BelowZeroThrows) {
  Rng rng(11);
  EXPECT_THROW(rng.below(0), Error);
}

TEST(RngTest, NormalMoments) {
  Rng rng(12);
  const int n = 200000;
  double sum = 0.0, sumSq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumSq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumSq / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(14);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(15);
  const auto sample = rng.sampleWithoutReplacement(100, 40);
  EXPECT_EQ(sample.size(), 40u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 40u);
  for (std::size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWholePopulation) {
  Rng rng(16);
  const auto sample = rng.sampleWithoutReplacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleTooManyThrows) {
  Rng rng(17);
  EXPECT_THROW(rng.sampleWithoutReplacement(5, 6), Error);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(18);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent.next() == child.next());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, WorksWithStdShuffle) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<int> original = v;
  std::shuffle(v.begin(), v.end(), rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

}  // namespace
}  // namespace casvm
