#include "casvm/data/scale.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "casvm/data/synth.hpp"
#include "casvm/support/error.hpp"

namespace casvm::data {
namespace {

Dataset wideRanges() {
  // Feature 0 in [0, 1000], feature 1 in [-1, 1], feature 2 constant.
  return Dataset::fromDense(3,
                            {0.0f, -1.0f, 5.0f,     //
                             500.0f, 0.0f, 5.0f,    //
                             1000.0f, 1.0f, 5.0f},  //
                            {1, -1, 1});
}

TEST(ScalerMinMaxTest, MapsToTargetRange) {
  const Dataset ds = wideRanges();
  const Scaler s = Scaler::fit(ds, ScalingKind::MinMax, -1.0, 1.0);
  const Dataset scaled = s.apply(ds);
  EXPECT_FLOAT_EQ(scaled.denseRow(0)[0], -1.0f);
  EXPECT_FLOAT_EQ(scaled.denseRow(1)[0], 0.0f);
  EXPECT_FLOAT_EQ(scaled.denseRow(2)[0], 1.0f);
  EXPECT_FLOAT_EQ(scaled.denseRow(0)[1], -1.0f);
  EXPECT_FLOAT_EQ(scaled.denseRow(2)[1], 1.0f);
}

TEST(ScalerMinMaxTest, ConstantFeatureGoesToLowerBound) {
  const Dataset ds = wideRanges();
  const Scaler s = Scaler::fit(ds, ScalingKind::MinMax, 0.0, 1.0);
  const Dataset scaled = s.apply(ds);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(scaled.denseRow(i)[2], 0.0f);
  }
}

TEST(ScalerMinMaxTest, CustomRange) {
  const Dataset ds = wideRanges();
  const Scaler s = Scaler::fit(ds, ScalingKind::MinMax, 0.0, 10.0);
  const Dataset scaled = s.apply(ds);
  EXPECT_FLOAT_EQ(scaled.denseRow(0)[0], 0.0f);
  EXPECT_FLOAT_EQ(scaled.denseRow(2)[0], 10.0f);
}

TEST(ScalerStandardTest, ZeroMeanUnitVariance) {
  MixtureSpec spec;
  spec.samples = 500;
  spec.features = 6;
  spec.seed = 5;
  const Dataset ds = generateMixture(spec);
  const Scaler s = Scaler::fit(ds, ScalingKind::Standard);
  const Dataset scaled = s.apply(ds);
  for (std::size_t f = 0; f < scaled.cols(); ++f) {
    double sum = 0.0, sumSq = 0.0;
    for (std::size_t i = 0; i < scaled.rows(); ++i) {
      sum += scaled.denseRow(i)[f];
      sumSq += double(scaled.denseRow(i)[f]) * scaled.denseRow(i)[f];
    }
    const double mean = sum / scaled.rows();
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sumSq / scaled.rows() - mean * mean, 1.0, 1e-3);
  }
}

TEST(ScalerTest, LabelsPreserved) {
  const Dataset ds = wideRanges();
  const Dataset scaled = Scaler::fit(ds, ScalingKind::Standard).apply(ds);
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    EXPECT_EQ(scaled.label(i), ds.label(i));
  }
}

TEST(ScalerTest, TrainFitAppliesToTest) {
  // The central leak-prevention property: test data scaled with TRAIN
  // statistics, so identical values map identically.
  const Dataset train = wideRanges();
  const Dataset test = Dataset::fromDense(3, {250.0f, 0.5f, 5.0f}, {1});
  const Scaler s = Scaler::fit(train, ScalingKind::MinMax, -1.0, 1.0);
  const Dataset scaled = s.apply(test);
  EXPECT_FLOAT_EQ(scaled.denseRow(0)[0], -0.5f);  // 250/1000 -> -0.5
  EXPECT_FLOAT_EQ(scaled.denseRow(0)[1], 0.5f);
}

TEST(ScalerTest, SparseStaysSparse) {
  MixtureSpec spec;
  spec.samples = 100;
  spec.features = 40;
  spec.sparsity = 0.8;
  spec.sparseOutput = true;
  spec.seed = 9;
  const Dataset ds = generateMixture(spec);
  const Scaler s = Scaler::fit(ds, ScalingKind::Standard);
  const Dataset scaled = s.apply(ds);
  EXPECT_EQ(scaled.storage(), Storage::Sparse);
  EXPECT_LE(scaled.nonzeros(), ds.nonzeros());
}

TEST(ScalerTest, ApplyToSingleRow) {
  const Dataset ds = wideRanges();
  const Scaler s = Scaler::fit(ds, ScalingKind::MinMax, -1.0, 1.0);
  std::vector<float> row{500.0f, 0.0f, 5.0f};
  s.applyTo(row);
  EXPECT_FLOAT_EQ(row[0], 0.0f);
  EXPECT_FLOAT_EQ(row[1], 0.0f);
}

TEST(ScalerTest, SaveLoadRoundTrip) {
  const Dataset ds = wideRanges();
  const Scaler s = Scaler::fit(ds, ScalingKind::MinMax, -1.0, 1.0);
  const std::string path = ::testing::TempDir() + "/casvm_scaler_test.txt";
  s.save(path);
  const Scaler back = Scaler::load(path);
  EXPECT_EQ(back.kind(), s.kind());
  EXPECT_EQ(back.features(), s.features());
  const Dataset a = s.apply(ds);
  const Dataset b = back.apply(ds);
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    for (std::size_t f = 0; f < ds.cols(); ++f) {
      EXPECT_FLOAT_EQ(a.denseRow(i)[f], b.denseRow(i)[f]);
    }
  }
  std::remove(path.c_str());
}

TEST(ScalerTest, ErrorsOnMisuse) {
  const Dataset ds = wideRanges();
  EXPECT_THROW((void)Scaler::fit(data::Dataset(), ScalingKind::MinMax), Error);
  EXPECT_THROW((void)Scaler::fit(ds, ScalingKind::MinMax, 1.0, 1.0), Error);
  const Scaler s = Scaler::fit(ds, ScalingKind::MinMax);
  const Dataset wrong = Dataset::fromDense(2, {1.0f, 2.0f}, {1});
  EXPECT_THROW((void)s.apply(wrong), Error);
  EXPECT_THROW((void)Scaler::load("/nonexistent/scaler.txt"), Error);
}

}  // namespace
}  // namespace casvm::data
