#include <gtest/gtest.h>

#include <sstream>

#include "casvm/data/io.hpp"
#include "casvm/data/synth.hpp"
#include "casvm/support/rng.hpp"

namespace casvm::data {
namespace {

/// Randomized structural invariants over chained dataset operations:
/// subset, concat, pack/unpack and LIBSVM round trips must preserve row
/// identity (norms + labels) for arbitrary shapes, both storages.
class DatasetFuzzTest : public ::testing::TestWithParam<int> {
 protected:
  Dataset randomDataset(Rng& rng, bool sparse) {
    MixtureSpec spec;
    spec.samples = 5 + rng.below(60);
    spec.features = 1 + rng.below(24);
    spec.clusters = 1 + rng.below(4);
    spec.positiveFraction = rng.uniform(0.2, 0.8);
    spec.sparsity = sparse ? rng.uniform(0.3, 0.9) : 0.0;
    spec.sparseOutput = sparse;
    spec.seed = rng.next();
    return generateMixture(spec);
  }

  static void expectSameRows(const Dataset& a, const Dataset& b) {
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
      EXPECT_EQ(a.label(i), b.label(i)) << i;
      EXPECT_NEAR(a.selfDot(i), b.selfDot(i),
                  1e-6 * std::max(1.0, a.selfDot(i)))
          << i;
    }
  }
};

TEST_P(DatasetFuzzTest, PackUnpackIdentity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (bool sparse : {false, true}) {
    const Dataset ds = randomDataset(rng, sparse);
    expectSameRows(ds, Dataset::unpack(ds.packAll()));
  }
}

TEST_P(DatasetFuzzTest, SubsetThenConcatIsPermutation) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  for (bool sparse : {false, true}) {
    const Dataset ds = randomDataset(rng, sparse);
    // Split at a random point and re-concatenate.
    const std::size_t cut = 1 + rng.below(ds.rows() - 1);
    std::vector<std::size_t> front(cut), back(ds.rows() - cut);
    for (std::size_t i = 0; i < cut; ++i) front[i] = i;
    for (std::size_t i = cut; i < ds.rows(); ++i) back[i - cut] = i;
    const Dataset glued =
        Dataset::concat(ds.subset(front), ds.subset(back));
    expectSameRows(ds, glued);
  }
}

TEST_P(DatasetFuzzTest, LibsvmRoundTripPreservesRows) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 200);
  const Dataset ds = randomDataset(rng, true);
  std::ostringstream out;
  writeLibsvm(ds, out);
  std::istringstream in(out.str());
  const Dataset back = readLibsvm(in, ds.cols());
  ASSERT_EQ(back.rows(), ds.rows());
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    EXPECT_EQ(back.label(i), ds.label(i));
    // Text serialization uses default float precision; allow small error.
    EXPECT_NEAR(back.selfDot(i), ds.selfDot(i),
                1e-4 * std::max(1.0, ds.selfDot(i)));
  }
}

TEST_P(DatasetFuzzTest, DotSymmetryAndCauchySchwarz) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 300);
  const Dataset ds = randomDataset(rng, rng.bernoulli(0.5));
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t i = rng.below(ds.rows());
    const std::size_t j = rng.below(ds.rows());
    const double dij = ds.dot(i, j);
    EXPECT_NEAR(dij, ds.dot(j, i), 1e-9);
    EXPECT_LE(dij * dij,
              ds.selfDot(i) * ds.selfDot(j) * (1.0 + 1e-9) + 1e-12);
    EXPECT_GE(ds.squaredDistance(i, j), -1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatasetFuzzTest, ::testing::Range(1, 11));

}  // namespace
}  // namespace casvm::data
