#include "casvm/data/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "casvm/support/error.hpp"

namespace casvm::data {
namespace {

TEST(RegistryTest, AllPaperDatasetsPresent) {
  const auto names = standinNames();
  for (const char* expected :
       {"adult", "epsilon", "face", "gisette", "ijcnn", "usps", "webspam",
        "forest", "toy"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(RegistryTest, UnknownNameThrows) {
  EXPECT_THROW((void)standinSpec("nope"), Error);
  EXPECT_THROW((void)standin("nope"), Error);
}

TEST(RegistryTest, SpecRecordsPaperShape) {
  const StandinSpec& spec = standinSpec("webspam");
  EXPECT_EQ(spec.paperSamples, 350000u);
  EXPECT_EQ(spec.paperFeatures, 16609143u);
  EXPECT_TRUE(spec.mixture.sparseOutput);
}

TEST(RegistryTest, TrainAndTestShareGeometry) {
  const NamedDataset nd = standin("toy");
  EXPECT_EQ(nd.train.cols(), nd.test.cols());
  EXPECT_GT(nd.train.rows(), nd.test.rows());
  EXPECT_GT(nd.test.rows(), 0u);
}

TEST(RegistryTest, ScaleControlsSize) {
  const NamedDataset full = standin("toy", 1.0);
  const NamedDataset half = standin("toy", 0.5);
  EXPECT_NEAR(static_cast<double>(half.train.rows()),
              full.train.rows() / 2.0, 2.0);
}

TEST(RegistryTest, DeterministicInSeed) {
  const NamedDataset a = standin("ijcnn", 0.1, 5);
  const NamedDataset b = standin("ijcnn", 0.1, 5);
  ASSERT_EQ(a.train.rows(), b.train.rows());
  for (std::size_t i = 0; i < a.train.rows(); ++i) {
    EXPECT_DOUBLE_EQ(a.train.selfDot(i), b.train.selfDot(i));
  }
}

TEST(RegistryTest, FaceIsImbalanced) {
  const NamedDataset nd = standin("face", 0.5);
  const double frac =
      static_cast<double>(nd.train.positives()) / nd.train.rows();
  EXPECT_LT(frac, 0.12);
  EXPECT_GT(frac, 0.01);
}

TEST(RegistryTest, WebspamIsSparse) {
  const NamedDataset nd = standin("webspam", 0.2);
  EXPECT_EQ(nd.train.storage(), Storage::Sparse);
  const double density = static_cast<double>(nd.train.nonzeros()) /
                         (nd.train.rows() * nd.train.cols());
  EXPECT_LT(density, 0.3);
}

TEST(RegistryTest, SuggestedParametersPositive) {
  for (const auto& name : standinNames()) {
    const NamedDataset nd = standin(name, 0.05);
    EXPECT_GT(nd.suggestedGamma, 0.0) << name;
    EXPECT_GT(nd.suggestedC, 0.0) << name;
  }
}

TEST(RegistryTest, BothClassesInEveryStandin) {
  for (const auto& name : standinNames()) {
    const NamedDataset nd = standin(name, 0.25);
    EXPECT_GT(nd.train.positives(), 0u) << name;
    EXPECT_GT(nd.train.negatives(), 0u) << name;
  }
}

TEST(RegistryTest, InvalidScaleThrows) {
  EXPECT_THROW((void)standin("toy", 0.0), Error);
  EXPECT_THROW((void)standin("toy", -1.0), Error);
}

TEST(RegistryTest, HostileScalesAreRejectedBeforeBufferSizing) {
  // A hostile scale must hit a named check, not overflow llround and size
  // a buffer from garbage.
  EXPECT_THROW((void)standin("epsilon", 1e15), Error);
  EXPECT_THROW((void)standin("toy", 1e300), Error);
  EXPECT_THROW((void)standin("toy",
                             std::numeric_limits<double>::infinity()),
               Error);
  EXPECT_THROW((void)standin("toy",
                             std::numeric_limits<double>::quiet_NaN()),
               Error);
}

TEST(RegistryTest, SizedStandinHasExplicitTrainCount) {
  const NamedDataset nd = standinSized("toy", 500, 7);
  EXPECT_EQ(nd.train.rows(), 500u);
  EXPECT_EQ(nd.test.rows(), 100u);  // max(16, samples/5)
  EXPECT_EQ(nd.train.cols(), standinSpec("toy").mixture.features);
  EXPECT_GT(nd.train.positives(), 0u);
  EXPECT_GT(nd.train.negatives(), 0u);
  EXPECT_GT(nd.suggestedGamma, 0.0);
}

TEST(RegistryTest, SizedStandinIsDeterministicInSeed) {
  const NamedDataset a = standinSized("ijcnn", 300, 5);
  const NamedDataset b = standinSized("ijcnn", 300, 5);
  ASSERT_EQ(a.train.rows(), b.train.rows());
  for (std::size_t i = 0; i < a.train.rows(); ++i) {
    ASSERT_EQ(a.train.selfDot(i), b.train.selfDot(i)) << i;
  }
}

TEST(RegistryTest, SizedStandinPreservesSparseStorage) {
  const NamedDataset nd = standinSized("webspam", 200, 3);
  EXPECT_EQ(nd.train.storage(), Storage::Sparse);
  EXPECT_EQ(nd.test.storage(), Storage::Sparse);
}

TEST(RegistryTest, SizedStandinGuardsItsBudget) {
  EXPECT_THROW((void)standinSized("toy", 8), Error);  // below the 16 floor
  EXPECT_THROW((void)standinSized("toy", (std::size_t{1} << 24) + 1), Error);
  EXPECT_THROW((void)standinSized("nope", 500), Error);
}

}  // namespace
}  // namespace casvm::data
