#include "casvm/data/synth.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "casvm/support/error.hpp"

namespace casvm::data {
namespace {

TEST(MixtureTest, ShapeMatchesSpec) {
  MixtureSpec spec;
  spec.samples = 500;
  spec.features = 12;
  spec.clusters = 4;
  const Dataset ds = generateMixture(spec);
  EXPECT_EQ(ds.rows(), 500u);
  EXPECT_EQ(ds.cols(), 12u);
  EXPECT_EQ(ds.storage(), Storage::Dense);
}

TEST(MixtureTest, DeterministicInSeed) {
  MixtureSpec spec;
  spec.samples = 100;
  spec.seed = 99;
  const Dataset a = generateMixture(spec);
  const Dataset b = generateMixture(spec);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    EXPECT_EQ(a.label(i), b.label(i));
    EXPECT_DOUBLE_EQ(a.selfDot(i), b.selfDot(i));
  }
}

TEST(MixtureTest, DifferentSeedsDiffer) {
  MixtureSpec spec;
  spec.samples = 100;
  spec.seed = 1;
  const Dataset a = generateMixture(spec);
  spec.seed = 2;
  const Dataset b = generateMixture(spec);
  int same = 0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    same += (a.selfDot(i) == b.selfDot(i));
  }
  EXPECT_LT(same, 5);
}

TEST(MixtureTest, PositiveFractionApproximatelyMet) {
  MixtureSpec spec;
  spec.samples = 4000;
  spec.clusters = 8;
  spec.positiveFraction = 0.25;
  spec.labelNoise = 0.0;
  const Dataset ds = generateMixture(spec);
  const double frac = static_cast<double>(ds.positives()) / ds.rows();
  EXPECT_NEAR(frac, 0.25, 0.06);
}

TEST(MixtureTest, SkewedPositiveFraction) {
  MixtureSpec spec;
  spec.samples = 6000;
  spec.clusters = 8;
  spec.positiveFraction = 0.05;  // below 1/clusters: needs per-sample mixing
  spec.labelNoise = 0.0;
  const Dataset ds = generateMixture(spec);
  const double frac = static_cast<double>(ds.positives()) / ds.rows();
  EXPECT_NEAR(frac, 0.05, 0.02);
}

TEST(MixtureTest, ClusterStructureExists) {
  // With cluster-correlated labels and low noise, nearby samples should
  // mostly share a label: check label purity among the 3 nearest samples.
  MixtureSpec spec;
  spec.samples = 400;
  spec.features = 8;
  spec.clusters = 4;
  spec.labelNoise = 0.0;
  const Dataset ds = generateMixture(spec);
  int agree = 0, total = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    double best = 1e300;
    std::size_t nearest = 0;
    for (std::size_t j = 0; j < ds.rows(); ++j) {
      if (j == i) continue;
      const double d = ds.squaredDistance(i, j);
      if (d < best) {
        best = d;
        nearest = j;
      }
    }
    agree += (ds.label(i) == ds.label(nearest));
    ++total;
  }
  EXPECT_GT(static_cast<double>(agree) / total, 0.8);
}

TEST(MixtureTest, HyperplaneLabelsWhenNotClusterCorrelated) {
  MixtureSpec spec;
  spec.samples = 1000;
  spec.clusterCorrelatedLabels = false;
  spec.labelNoise = 0.0;
  const Dataset ds = generateMixture(spec);
  // Both classes present and roughly balanced for a symmetric hyperplane.
  const double frac = static_cast<double>(ds.positives()) / ds.rows();
  EXPECT_GT(frac, 0.2);
  EXPECT_LT(frac, 0.8);
}

TEST(MixtureTest, SparsityZeroesEntries) {
  MixtureSpec spec;
  spec.samples = 300;
  spec.features = 50;
  spec.sparsity = 0.8;
  const Dataset ds = generateMixture(spec);
  std::size_t nonzero = 0;
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    for (float v : ds.denseRow(i)) nonzero += (v != 0.0f);
  }
  const double density =
      static_cast<double>(nonzero) / (ds.rows() * ds.cols());
  EXPECT_NEAR(density, 0.2, 0.05);
}

TEST(MixtureTest, SparseOutputUsesCsr) {
  MixtureSpec spec;
  spec.samples = 100;
  spec.features = 40;
  spec.sparsity = 0.9;
  spec.sparseOutput = true;
  const Dataset ds = generateMixture(spec);
  EXPECT_EQ(ds.storage(), Storage::Sparse);
  EXPECT_LT(ds.nonzeros(), ds.rows() * ds.cols() / 2);
}

TEST(MixtureTest, DegenerateSpecThrows) {
  MixtureSpec spec;
  spec.samples = 0;
  EXPECT_THROW((void)generateMixture(spec), Error);
  spec.samples = 10;
  spec.positiveFraction = 1.5;
  EXPECT_THROW((void)generateMixture(spec), Error);
}

TEST(TwoGaussiansTest, SeparableByFirstFeature) {
  const Dataset ds = generateTwoGaussians(500, 4, 10.0, 3);
  int correct = 0;
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    const std::int8_t predicted = ds.denseRow(i)[0] >= 0.0f ? 1 : -1;
    correct += (predicted == ds.label(i));
  }
  EXPECT_GT(static_cast<double>(correct) / ds.rows(), 0.98);
}

TEST(TwoGaussiansTest, BothClassesPresent) {
  const Dataset ds = generateTwoGaussians(200, 2, 4.0, 5);
  EXPECT_GT(ds.positives(), 50u);
  EXPECT_GT(ds.negatives(), 50u);
}

TEST(SplitTest, PartitionsAllIndices) {
  const Split split = trainTestSplit(100, 0.2, 7);
  EXPECT_EQ(split.test.size(), 20u);
  EXPECT_EQ(split.train.size(), 80u);
  std::set<std::size_t> all(split.train.begin(), split.train.end());
  all.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(SplitTest, ZeroTestFraction) {
  const Split split = trainTestSplit(50, 0.0, 7);
  EXPECT_TRUE(split.test.empty());
  EXPECT_EQ(split.train.size(), 50u);
}

TEST(SplitTest, InvalidFractionThrows) {
  EXPECT_THROW((void)trainTestSplit(10, 1.0, 7), Error);
  EXPECT_THROW((void)trainTestSplit(10, -0.1, 7), Error);
}

// ---------------------------------------------------------------------------
// Chunked generation: counter-derived sample streams, so the output is
// invariant in how the window is split into chunks
// ---------------------------------------------------------------------------

MixtureSpec chunkSpec(bool sparse) {
  MixtureSpec spec;
  spec.samples = 600;
  spec.features = 10;
  spec.clusters = 4;
  spec.minCenterSeparation = 3.0;
  spec.seed = 21;
  if (sparse) {
    spec.sparsity = 0.5;
    spec.clusterSparsePattern = true;
    spec.sparseOutput = true;
  }
  return spec;
}

void expectSameRows(const Dataset& a, std::size_t ai, const Dataset& b,
                    std::size_t bi) {
  ASSERT_EQ(a.label(ai), b.label(bi));
  ASSERT_EQ(a.selfDot(ai), b.selfDot(bi)) << "self-dot differs bitwise";
  std::vector<float> ra(a.cols(), 0.0f);
  std::vector<float> rb(b.cols(), 0.0f);
  a.copyRowDense(ai, ra);
  b.copyRowDense(bi, rb);
  ASSERT_EQ(ra, rb) << "features differ bitwise";
}

TEST(ChunkTest, ChunkingIsInvariantInChunkSize) {
  for (const bool sparse : {false, true}) {
    const MixtureSpec spec = chunkSpec(sparse);
    const Dataset whole = generateMixtureChunk(spec, 0, spec.samples);
    ASSERT_EQ(whole.rows(), spec.samples);
    for (const std::size_t chunk : {1ul, 7ul, 100ul, 600ul}) {
      std::size_t row = 0;
      for (std::size_t begin = 0; begin < spec.samples;) {
        const std::size_t count = std::min(chunk, spec.samples - begin);
        const Dataset part = generateMixtureChunk(spec, begin, count);
        ASSERT_EQ(part.rows(), count);
        for (std::size_t i = 0; i < count; ++i, ++row) {
          expectSameRows(whole, row, part, i);
        }
        begin += count;
      }
    }
  }
}

TEST(ChunkTest, WindowsAreIndependentOfTheRest) {
  // A middle window matches the corresponding rows of the full set — each
  // sample's stream is derived from its global index, not from how many
  // samples were drawn before it.
  const MixtureSpec spec = chunkSpec(false);
  const Dataset whole = generateMixtureChunk(spec, 0, spec.samples);
  const Dataset middle = generateMixtureChunk(spec, 250, 100);
  for (std::size_t i = 0; i < 100; ++i) {
    expectSameRows(whole, 250 + i, middle, i);
  }
}

TEST(ChunkTest, DeterministicInSeedAndDifferentAcrossSeeds) {
  MixtureSpec spec = chunkSpec(false);
  const Dataset a = generateMixtureChunk(spec, 100, 50);
  const Dataset b = generateMixtureChunk(spec, 100, 50);
  for (std::size_t i = 0; i < 50; ++i) expectSameRows(a, i, b, i);
  spec.seed = 22;
  const Dataset c = generateMixtureChunk(spec, 100, 50);
  bool anyDiffer = false;
  for (std::size_t i = 0; i < 50 && !anyDiffer; ++i) {
    anyDiffer = a.selfDot(i) != c.selfDot(i);
  }
  EXPECT_TRUE(anyDiffer);
}

TEST(ChunkTest, BothClassesAndClusterStructureSurvive) {
  const MixtureSpec spec = chunkSpec(false);
  const Dataset ds = generateMixtureChunk(spec, 0, spec.samples);
  EXPECT_GT(ds.positives(), spec.samples / 5);
  EXPECT_GT(ds.negatives(), spec.samples / 5);
}

TEST(ChunkTest, InvalidWindowsThrow) {
  const MixtureSpec spec = chunkSpec(false);
  EXPECT_THROW((void)generateMixtureChunk(spec, 0, 0), Error);
  EXPECT_THROW((void)generateMixtureChunk(spec, 0, spec.samples + 1), Error);
  EXPECT_THROW((void)generateMixtureChunk(spec, spec.samples, 1), Error);
  // begin + count overflow must be caught, not wrapped.
  EXPECT_THROW((void)generateMixtureChunk(
                   spec, static_cast<std::size_t>(-1), 2),
               Error);
}

}  // namespace
}  // namespace casvm::data
