#include "casvm/data/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "casvm/support/error.hpp"

namespace casvm::data {
namespace {

TEST(LibsvmReadTest, ParsesBasicFile) {
  std::istringstream in("+1 1:0.5 3:2.0\n-1 2:1.5\n");
  const Dataset ds = readLibsvm(in);
  ASSERT_EQ(ds.rows(), 2u);
  EXPECT_EQ(ds.cols(), 3u);
  EXPECT_EQ(ds.storage(), Storage::Sparse);
  EXPECT_EQ(ds.label(0), 1);
  EXPECT_EQ(ds.label(1), -1);
  EXPECT_DOUBLE_EQ(ds.selfDot(0), 0.25 + 4.0);
  EXPECT_DOUBLE_EQ(ds.selfDot(1), 2.25);
}

TEST(LibsvmReadTest, ZeroOneLabelsMapToPlusMinus) {
  std::istringstream in("1 1:1\n0 1:2\n");
  const Dataset ds = readLibsvm(in);
  EXPECT_EQ(ds.label(0), 1);
  EXPECT_EQ(ds.label(1), -1);
}

TEST(LibsvmReadTest, SkipsBlankLinesAndComments) {
  std::istringstream in("\n# full comment line\n+1 1:1.0 # trailing\n\n-1 1:2\n");
  const Dataset ds = readLibsvm(in);
  EXPECT_EQ(ds.rows(), 2u);
}

TEST(LibsvmReadTest, ExplicitColumnCount) {
  std::istringstream in("+1 2:1.0\n");
  const Dataset ds = readLibsvm(in, 10);
  EXPECT_EQ(ds.cols(), 10u);
}

TEST(LibsvmReadTest, ExplicitColumnsTooSmallThrows) {
  std::istringstream in("+1 5:1.0\n");
  EXPECT_THROW((void)readLibsvm(in, 2), Error);
}

TEST(LibsvmReadTest, MissingColonThrows) {
  std::istringstream in("+1 1-0.5\n");
  EXPECT_THROW((void)readLibsvm(in), Error);
}

TEST(LibsvmReadTest, ZeroIndexThrows) {
  std::istringstream in("+1 0:0.5\n");
  EXPECT_THROW((void)readLibsvm(in), Error);
}

TEST(LibsvmReadTest, NonIncreasingIndicesThrow) {
  std::istringstream in("+1 3:1.0 2:1.0\n");
  EXPECT_THROW((void)readLibsvm(in), Error);
}

TEST(LibsvmReadTest, ExplicitZeroValuesDropped) {
  std::istringstream in("+1 1:0 2:3.0\n");
  const Dataset ds = readLibsvm(in);
  EXPECT_EQ(ds.nonzeros(), 1u);
}

TEST(LibsvmReadTest, SamplesWithNoFeatures) {
  std::istringstream in("+1\n-1 1:1.0\n");
  const Dataset ds = readLibsvm(in);
  ASSERT_EQ(ds.rows(), 2u);
  EXPECT_DOUBLE_EQ(ds.selfDot(0), 0.0);
}

TEST(LibsvmRoundTripTest, SparseWriteRead) {
  std::istringstream in("+1 1:0.5 3:-2.25\n-1 2:1.5\n+1 1:4\n");
  const Dataset ds = readLibsvm(in);
  std::ostringstream out;
  writeLibsvm(ds, out);
  std::istringstream in2(out.str());
  const Dataset back = readLibsvm(in2, ds.cols());
  ASSERT_EQ(back.rows(), ds.rows());
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    EXPECT_EQ(back.label(i), ds.label(i));
    EXPECT_DOUBLE_EQ(back.selfDot(i), ds.selfDot(i));
  }
}

TEST(LibsvmRoundTripTest, DenseWriteSkipsZeros) {
  const Dataset ds = Dataset::fromDense(3, {1.0f, 0.0f, 2.0f}, {1});
  std::ostringstream out;
  writeLibsvm(ds, out);
  EXPECT_EQ(out.str(), "1 1:1 3:2\n");
}

TEST(LibsvmFileTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/casvm_io_test.libsvm";
  const Dataset ds = Dataset::fromDense(2, {1.5f, -2.0f, 0.0f, 3.0f}, {1, -1});
  writeLibsvmFile(ds, path);
  const Dataset back = readLibsvmFile(path, 2);
  ASSERT_EQ(back.rows(), 2u);
  EXPECT_DOUBLE_EQ(back.selfDot(0), ds.selfDot(0));
  EXPECT_DOUBLE_EQ(back.selfDot(1), ds.selfDot(1));
  std::remove(path.c_str());
}

TEST(LibsvmFileTest, MissingFileThrows) {
  EXPECT_THROW((void)readLibsvmFile("/nonexistent/path/file.libsvm"), Error);
}

}  // namespace
}  // namespace casvm::data
