#include "casvm/data/dataset.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "casvm/support/error.hpp"

namespace casvm::data {
namespace {

Dataset smallDense() {
  // 3 samples, 2 features.
  return Dataset::fromDense(2, {1.0f, 2.0f, 3.0f, 4.0f, -1.0f, 0.5f},
                            {1, -1, 1});
}

Dataset smallSparse() {
  // Same values as smallDense but stored CSR (no explicit zeros to drop).
  return Dataset::fromSparse(2, {0, 2, 4, 6}, {0, 1, 0, 1, 0, 1},
                             {1.0f, 2.0f, 3.0f, 4.0f, -1.0f, 0.5f},
                             {1, -1, 1});
}

TEST(DatasetTest, BasicShape) {
  const Dataset ds = smallDense();
  EXPECT_EQ(ds.rows(), 3u);
  EXPECT_EQ(ds.cols(), 2u);
  EXPECT_EQ(ds.storage(), Storage::Dense);
  EXPECT_FALSE(ds.empty());
  EXPECT_EQ(ds.label(0), 1);
  EXPECT_EQ(ds.label(1), -1);
  EXPECT_EQ(ds.positives(), 2u);
  EXPECT_EQ(ds.negatives(), 1u);
  EXPECT_EQ(ds.nonzeros(), 6u);
}

TEST(DatasetTest, InvalidLabelRejected) {
  EXPECT_THROW(Dataset::fromDense(1, {1.0f}, {0}), Error);
  EXPECT_THROW(Dataset::fromDense(1, {1.0f}, {2}), Error);
}

TEST(DatasetTest, SizeMismatchRejected) {
  EXPECT_THROW(Dataset::fromDense(2, {1.0f, 2.0f, 3.0f}, {1, -1}), Error);
}

TEST(DatasetTest, SparseValidation) {
  // rowPtr not ending at nnz.
  EXPECT_THROW(Dataset::fromSparse(2, {0, 1, 3}, {0, 1}, {1.0f, 2.0f},
                                   {1, -1}),
               Error);
  // Column index out of range.
  EXPECT_THROW(Dataset::fromSparse(2, {0, 1}, {5}, {1.0f}, {1}), Error);
  // Decreasing indices within a row.
  EXPECT_THROW(Dataset::fromSparse(3, {0, 2}, {2, 0}, {1.0f, 2.0f}, {1}),
               Error);
}

TEST(DatasetTest, DotDense) {
  const Dataset ds = smallDense();
  EXPECT_DOUBLE_EQ(ds.dot(0, 1), 1.0 * 3.0 + 2.0 * 4.0);
  EXPECT_DOUBLE_EQ(ds.dot(0, 0), 5.0);
}

TEST(DatasetTest, SelfDotCached) {
  const Dataset ds = smallDense();
  EXPECT_DOUBLE_EQ(ds.selfDot(0), 5.0);
  EXPECT_DOUBLE_EQ(ds.selfDot(2), 1.0 + 0.25);
}

TEST(DatasetTest, SquaredDistance) {
  const Dataset ds = smallDense();
  const double expected = (1.0 - 3.0) * (1.0 - 3.0) + (2.0 - 4.0) * (2.0 - 4.0);
  EXPECT_NEAR(ds.squaredDistance(0, 1), expected, 1e-12);
  EXPECT_NEAR(ds.squaredDistance(1, 1), 0.0, 1e-12);
}

TEST(DatasetTest, SparseMatchesDense) {
  const Dataset dense = smallDense();
  const Dataset sparse = smallSparse();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(dense.selfDot(i), sparse.selfDot(i));
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(dense.dot(i, j), sparse.dot(i, j));
      EXPECT_NEAR(dense.squaredDistance(i, j), sparse.squaredDistance(i, j),
                  1e-12);
    }
  }
}

TEST(DatasetTest, DotWithExternalVector) {
  const Dataset dense = smallDense();
  const Dataset sparse = smallSparse();
  const std::vector<float> x{2.0f, -1.0f};
  EXPECT_DOUBLE_EQ(dense.dotWith(0, x), 2.0 - 2.0);
  EXPECT_DOUBLE_EQ(sparse.dotWith(0, x), dense.dotWith(0, x));
  EXPECT_THROW(dense.dotWith(0, std::vector<float>{1.0f}), Error);
}

TEST(DatasetTest, SquaredDistanceToExternalVector) {
  const Dataset ds = smallDense();
  const std::vector<float> x{0.0f, 0.0f};
  EXPECT_NEAR(ds.squaredDistanceTo(0, x, 0.0), 5.0, 1e-12);
}

TEST(DatasetTest, AddRowToAccumulates) {
  const Dataset dense = smallDense();
  const Dataset sparse = smallSparse();
  std::vector<double> accD(2, 0.0), accS(2, 0.0);
  for (std::size_t i = 0; i < 3; ++i) {
    dense.addRowTo(i, accD);
    sparse.addRowTo(i, accS);
  }
  EXPECT_DOUBLE_EQ(accD[0], 3.0);
  EXPECT_DOUBLE_EQ(accD[1], 6.5);
  EXPECT_EQ(accD, accS);
}

TEST(DatasetTest, CopyRowDense) {
  const Dataset sparse = smallSparse();
  std::vector<float> out(2, 99.0f);
  sparse.copyRowDense(2, out);
  EXPECT_EQ(out[0], -1.0f);
  EXPECT_EQ(out[1], 0.5f);
}

TEST(DatasetTest, SubsetPreservesContent) {
  const Dataset ds = smallDense();
  const std::vector<std::size_t> idx{2, 0};
  const Dataset sub = ds.subset(idx);
  EXPECT_EQ(sub.rows(), 2u);
  EXPECT_EQ(sub.label(0), 1);
  EXPECT_DOUBLE_EQ(sub.selfDot(0), ds.selfDot(2));
  EXPECT_DOUBLE_EQ(sub.dot(0, 1), ds.dot(2, 0));
}

TEST(DatasetTest, SubsetSparse) {
  const Dataset ds = smallSparse();
  const std::vector<std::size_t> idx{1};
  const Dataset sub = ds.subset(idx);
  EXPECT_EQ(sub.rows(), 1u);
  EXPECT_EQ(sub.storage(), Storage::Sparse);
  EXPECT_DOUBLE_EQ(sub.selfDot(0), 25.0);
}

TEST(DatasetTest, SubsetOutOfRangeThrows) {
  const Dataset ds = smallDense();
  const std::vector<std::size_t> idx{5};
  EXPECT_THROW((void)ds.subset(idx), Error);
}

TEST(DatasetTest, EmptySubset) {
  const Dataset ds = smallDense();
  const Dataset sub = ds.subset(std::vector<std::size_t>{});
  EXPECT_TRUE(sub.empty());
  EXPECT_EQ(sub.cols(), 2u);
}

TEST(DatasetTest, ConcatDense) {
  const Dataset a = smallDense();
  const Dataset b = smallDense();
  const Dataset c = Dataset::concat(a, b);
  EXPECT_EQ(c.rows(), 6u);
  EXPECT_DOUBLE_EQ(c.dot(0, 3), a.dot(0, 0));
  EXPECT_EQ(c.label(4), -1);
}

TEST(DatasetTest, ConcatSparse) {
  const Dataset a = smallSparse();
  const Dataset c = Dataset::concat(a, a);
  EXPECT_EQ(c.rows(), 6u);
  EXPECT_EQ(c.storage(), Storage::Sparse);
  EXPECT_DOUBLE_EQ(c.dot(1, 4), a.selfDot(1));
}

TEST(DatasetTest, ConcatWithEmpty) {
  const Dataset a = smallDense();
  const Dataset c = Dataset::concat(Dataset(), a);
  EXPECT_EQ(c.rows(), 3u);
  const Dataset d = Dataset::concat(a, Dataset());
  EXPECT_EQ(d.rows(), 3u);
}

TEST(DatasetTest, ConcatMismatchThrows) {
  const Dataset a = smallDense();
  const Dataset b = Dataset::fromDense(3, {1, 2, 3}, {1});
  EXPECT_THROW((void)Dataset::concat(a, b), Error);
  EXPECT_THROW((void)Dataset::concat(a, smallSparse()), Error);
}

TEST(DatasetPackTest, DenseRoundTrip) {
  const Dataset ds = smallDense();
  const Dataset back = Dataset::unpack(ds.packAll());
  ASSERT_EQ(back.rows(), ds.rows());
  EXPECT_EQ(back.cols(), ds.cols());
  EXPECT_EQ(back.storage(), Storage::Dense);
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    EXPECT_EQ(back.label(i), ds.label(i));
    for (std::size_t j = 0; j < ds.rows(); ++j) {
      EXPECT_DOUBLE_EQ(back.dot(i, j), ds.dot(i, j));
    }
  }
}

TEST(DatasetPackTest, SparseRoundTrip) {
  const Dataset ds = smallSparse();
  const Dataset back = Dataset::unpack(ds.packAll());
  EXPECT_EQ(back.storage(), Storage::Sparse);
  ASSERT_EQ(back.rows(), ds.rows());
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    EXPECT_DOUBLE_EQ(back.selfDot(i), ds.selfDot(i));
  }
}

TEST(DatasetPackTest, PackSelectedRows) {
  const Dataset ds = smallDense();
  const std::vector<std::size_t> idx{1, 2};
  const Dataset back = Dataset::unpack(ds.pack(idx));
  ASSERT_EQ(back.rows(), 2u);
  EXPECT_EQ(back.label(0), -1);
  EXPECT_DOUBLE_EQ(back.selfDot(1), ds.selfDot(2));
}

TEST(DatasetPackTest, EmptyPackRoundTrip) {
  const Dataset ds = smallDense();
  const Dataset back = Dataset::unpack(ds.pack(std::vector<std::size_t>{}));
  EXPECT_TRUE(back.empty());
  EXPECT_EQ(back.cols(), 2u);
}

TEST(DatasetPackTest, TruncatedPayloadThrows) {
  const Dataset ds = smallDense();
  std::vector<std::byte> bytes = ds.packAll();
  bytes.resize(bytes.size() - 4);
  EXPECT_THROW((void)Dataset::unpack(bytes), Error);
}

TEST(DatasetTest, SampleBytesPositive) {
  EXPECT_GT(smallDense().sampleBytes(), 0u);
  EXPECT_GT(smallSparse().sampleBytes(), 0u);
}

}  // namespace
}  // namespace casvm::data
