// PBM distributed curvature (h = c^T K c) fixed-order reduction:
//
//  * Correctness: the term decomposition sums to the naive quadratic form.
//  * P-invariance: concatenating the per-rank blocks and replaying the
//    serial left-to-right sum yields the BITWISE-identical h for any
//    process count — the property PBM's replicated line search needs so
//    every rank picks the identical step without a broadcast.

#include "casvm/core/pbm_curvature.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <random>
#include <vector>

#include "casvm/kernel/kernel.hpp"

namespace casvm::core {
namespace {

struct CurvatureFixture {
  std::size_t s = 23;
  std::size_t n = 7;
  std::vector<float> rows;      // s x n
  std::vector<double> rowDot;   // ||x_a||^2
  std::vector<double> coefs;    // c_a
  kernel::Kernel kern{kernel::KernelParams::gaussian(0.5)};

  CurvatureFixture() {
    std::mt19937_64 rng(13);
    std::uniform_real_distribution<float> feat(-1.0f, 1.0f);
    std::uniform_real_distribution<double> coef(-2.0, 2.0);
    rows.resize(s * n);
    for (float& v : rows) v = feat(rng);
    rowDot.resize(s);
    for (std::size_t a = 0; a < s; ++a) {
      double d = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        d += static_cast<double>(rows[a * n + j]) * rows[a * n + j];
      }
      rowDot[a] = d;
    }
    coefs.resize(s);
    for (double& c : coefs) c = coef(rng);
  }

  PbmRowFn rowOf() const {
    return [this](std::size_t a) {
      return std::span<const float>(rows).subspan(a * n, n);
    };
  }
};

TEST(PbmCurvatureTest, TermsSumToTheQuadraticForm) {
  const CurvatureFixture fx;
  const std::vector<double> terms =
      pbmCurvatureTerms(fx.kern, fx.coefs, fx.rowOf(), fx.rowDot, 0, fx.s);
  const double h = pbmCurvatureSum(terms);

  double naive = 0.0;
  for (std::size_t a = 0; a < fx.s; ++a) {
    for (std::size_t b = 0; b < fx.s; ++b) {
      naive += fx.coefs[a] * fx.coefs[b] *
               fx.kern.evalVectors(fx.rowOf()(a), fx.rowDot[a], fx.rowOf()(b),
                                   fx.rowDot[b]);
    }
  }
  EXPECT_NEAR(h, naive, 1e-10 * std::max(1.0, std::abs(naive)));
  EXPECT_GE(h, -1e-9) << "Gaussian kernel curvature should be PSD";
}

TEST(PbmCurvatureTest, BlocksPartitionEveryIndexExactlyOnce) {
  for (const int P : {1, 2, 3, 4, 7, 16, 64}) {
    std::size_t covered = 0;
    std::size_t expectedBegin = 0;
    for (int r = 0; r < P; ++r) {
      const auto [first, last] = pbmCurvatureBlock(23, r, P);
      EXPECT_EQ(first, expectedBegin) << "gap or overlap at rank " << r;
      EXPECT_LE(first, last);
      covered += last - first;
      expectedBegin = last;
    }
    EXPECT_EQ(covered, 23u) << "P=" << P;
    EXPECT_EQ(expectedBegin, 23u) << "P=" << P;
  }
}

TEST(PbmCurvatureTest, CurvatureIsBitwiseInvariantInProcessCount) {
  const CurvatureFixture fx;
  const std::vector<double> reference =
      pbmCurvatureTerms(fx.kern, fx.coefs, fx.rowOf(), fx.rowDot, 0, fx.s);
  const double hReference = pbmCurvatureSum(reference);

  for (const int P : {1, 2, 3, 4, 7, 16}) {
    // Emulate the allgatherv: per-rank blocks concatenated ascending.
    std::vector<double> gathered;
    for (int r = 0; r < P; ++r) {
      const auto [first, last] = pbmCurvatureBlock(fx.s, r, P);
      const std::vector<double> mine = pbmCurvatureTerms(
          fx.kern, fx.coefs, fx.rowOf(), fx.rowDot, first, last);
      gathered.insert(gathered.end(), mine.begin(), mine.end());
    }
    ASSERT_EQ(gathered.size(), fx.s) << "P=" << P;
    for (std::size_t a = 0; a < fx.s; ++a) {
      EXPECT_EQ(gathered[a], reference[a])
          << "term " << a << " differs bitwise at P=" << P;
    }
    EXPECT_EQ(pbmCurvatureSum(gathered), hReference)
        << "h differs bitwise at P=" << P;
  }
}

}  // namespace
}  // namespace casvm::core
