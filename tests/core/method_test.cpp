#include "casvm/core/method.hpp"

#include <gtest/gtest.h>

#include "casvm/support/error.hpp"

namespace casvm::core {
namespace {

TEST(MethodTest, TenMethodsOnTheCommLadder) {
  const auto all = allMethods();
  ASSERT_EQ(all.size(), 10u);
  EXPECT_EQ(all.front(), Method::DisSmo);
  EXPECT_EQ(all[1], Method::DisSmoShrink);
  EXPECT_EQ(all[2], Method::Pbm);
  EXPECT_EQ(all.back(), Method::RaCa);
}

TEST(MethodTest, NamesRoundTrip) {
  for (Method m : allMethods()) {
    EXPECT_EQ(methodFromName(methodName(m)), m);
  }
}

TEST(MethodTest, CaSvmAliasesResolveToRaCa) {
  EXPECT_EQ(methodFromName("ca-svm"), Method::RaCa);
  EXPECT_EQ(methodFromName("casvm"), Method::RaCa);
}

TEST(MethodTest, UnknownNameThrows) {
  EXPECT_THROW((void)methodFromName("svm-lite"), Error);
}

TEST(MethodTest, TraitsPartitionTheMethods) {
  for (Method m : allMethods()) {
    const int kinds = (isGlobalMethod(m) ? 1 : 0) +
                      (isTreeMethod(m) ? 1 : 0) +
                      (isPartitionedMethod(m) ? 1 : 0);
    EXPECT_EQ(kinds, 1) << methodName(m);
  }
}

TEST(MethodTest, GlobalMethods) {
  EXPECT_TRUE(isGlobalMethod(Method::DisSmo));
  EXPECT_TRUE(isGlobalMethod(Method::DisSmoShrink));
  EXPECT_TRUE(isGlobalMethod(Method::Pbm));
  EXPECT_FALSE(isGlobalMethod(Method::Cascade));
  EXPECT_FALSE(isGlobalMethod(Method::RaCa));
}

TEST(MethodTest, KmeansUsers) {
  EXPECT_FALSE(usesKmeans(Method::DisSmo));
  EXPECT_FALSE(usesKmeans(Method::Cascade));
  EXPECT_TRUE(usesKmeans(Method::DcSvm));
  EXPECT_TRUE(usesKmeans(Method::DcFilter));
  EXPECT_TRUE(usesKmeans(Method::CpSvm));
  EXPECT_TRUE(usesKmeans(Method::BkmCa));
  EXPECT_FALSE(usesKmeans(Method::FcfsCa));
  EXPECT_FALSE(usesKmeans(Method::RaCa));
}

TEST(MethodTest, CaSvmFamily) {
  EXPECT_TRUE(isCaSvm(Method::BkmCa));
  EXPECT_TRUE(isCaSvm(Method::FcfsCa));
  EXPECT_TRUE(isCaSvm(Method::RaCa));
  EXPECT_FALSE(isCaSvm(Method::CpSvm));
  EXPECT_FALSE(isCaSvm(Method::DisSmo));
}

}  // namespace
}  // namespace casvm::core
