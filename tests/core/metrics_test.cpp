#include "casvm/core/metrics.hpp"

#include <gtest/gtest.h>

#include "casvm/core/train.hpp"
#include "casvm/data/registry.hpp"
#include "casvm/support/error.hpp"

namespace casvm::core {
namespace {

BinaryMetrics counts(long long tp, long long tn, long long fp,
                     long long fn) {
  BinaryMetrics m;
  m.truePositives = tp;
  m.trueNegatives = tn;
  m.falsePositives = fp;
  m.falseNegatives = fn;
  return m;
}

TEST(MetricsMathTest, PerfectClassifier) {
  const BinaryMetrics m = counts(10, 90, 0, 0);
  EXPECT_DOUBLE_EQ(m.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(m.recall(), 1.0);
  EXPECT_DOUBLE_EQ(m.precision(), 1.0);
  EXPECT_DOUBLE_EQ(m.f1(), 1.0);
  EXPECT_DOUBLE_EQ(m.matthews(), 1.0);
}

TEST(MetricsMathTest, ConstantNegativeClassifierOnImbalancedData) {
  // The reason accuracy alone misleads: 95% accuracy, recall 0, MCC 0.
  const BinaryMetrics m = counts(0, 95, 0, 5);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.95);
  EXPECT_DOUBLE_EQ(m.recall(), 0.0);
  EXPECT_DOUBLE_EQ(m.f1(), 0.0);
  EXPECT_DOUBLE_EQ(m.balancedAccuracy(), 0.5);
  EXPECT_DOUBLE_EQ(m.matthews(), 0.0);
}

TEST(MetricsMathTest, KnownValues) {
  const BinaryMetrics m = counts(40, 30, 20, 10);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.70);
  EXPECT_DOUBLE_EQ(m.recall(), 0.8);
  EXPECT_NEAR(m.precision(), 40.0 / 60.0, 1e-12);
  EXPECT_NEAR(m.f1(), 2 * (2.0 / 3.0) * 0.8 / ((2.0 / 3.0) + 0.8), 1e-12);
  EXPECT_DOUBLE_EQ(m.specificity(), 0.6);
  EXPECT_DOUBLE_EQ(m.balancedAccuracy(), 0.7);
}

TEST(MetricsMathTest, DegenerateCountsDoNotDivideByZero) {
  const BinaryMetrics empty = counts(0, 0, 0, 0);
  EXPECT_DOUBLE_EQ(empty.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(empty.recall(), 0.0);
  EXPECT_DOUBLE_EQ(empty.precision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.f1(), 0.0);
  EXPECT_DOUBLE_EQ(empty.matthews(), 0.0);
}

TEST(MetricsMathTest, ReportMentionsEverything) {
  const std::string report = counts(1, 2, 3, 4).report();
  for (const char* token : {"TP=1", "TN=2", "FP=3", "FN=4", "recall",
                            "precision", "F1", "MCC"}) {
    EXPECT_NE(report.find(token), std::string::npos) << token;
  }
}

TEST(MetricsEvaluateTest, CountsSumToTestSize) {
  const auto nd = data::standin("face", 0.3);
  TrainConfig cfg;
  cfg.method = Method::FcfsCa;
  cfg.processes = 4;
  cfg.solver.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
  const TrainResult res = train(nd.train, cfg);
  const BinaryMetrics m = evaluate(res.model, nd.test);
  EXPECT_EQ(m.total(), static_cast<long long>(nd.test.rows()));
  EXPECT_NEAR(m.accuracy(), res.model.accuracy(nd.test), 1e-12);
  EXPECT_EQ(m.truePositives + m.falseNegatives,
            static_cast<long long>(nd.test.positives()));
}

TEST(MetricsEvaluateTest, PredictionVectorVariantAgrees) {
  const auto nd = data::standin("toy", 0.3);
  TrainConfig cfg;
  cfg.method = Method::RaCa;
  cfg.processes = 4;
  cfg.solver.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
  const TrainResult res = train(nd.train, cfg);
  std::vector<std::int8_t> predictions(nd.test.rows());
  for (std::size_t i = 0; i < nd.test.rows(); ++i) {
    predictions[i] = res.model.predictFor(nd.test, i);
  }
  const BinaryMetrics a = evaluate(res.model, nd.test);
  const BinaryMetrics b = evaluatePredictions(predictions, nd.test);
  EXPECT_EQ(a.truePositives, b.truePositives);
  EXPECT_EQ(a.falsePositives, b.falsePositives);
}

TEST(MetricsEvaluateTest, EmptyTestSetThrows) {
  EXPECT_THROW((void)evaluatePredictions({}, data::Dataset()), Error);
}

}  // namespace
}  // namespace casvm::core
