// Chaos tests for method-aware degradation: partitioned methods survive an
// injected rank crash with P-1 sub-models and routed prediction; tree
// methods and Dis-SMO fail fast with an error naming the fault.

#include "casvm/core/train.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "casvm/data/registry.hpp"
#include "casvm/support/error.hpp"

namespace casvm::core {
namespace {

TrainConfig baseConfig(const data::NamedDataset& nd, Method method,
                       int P = 8) {
  TrainConfig cfg;
  cfg.method = method;
  cfg.processes = P;
  cfg.solver.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
  cfg.solver.C = nd.suggestedC;
  return cfg;
}

const data::NamedDataset& toy() {
  static const data::NamedDataset nd = data::standin("toy");
  return nd;
}

std::vector<Method> partitionedMethods() {
  std::vector<Method> out;
  for (Method m : allMethods()) {
    if (isPartitionedMethod(m)) out.push_back(m);
  }
  return out;
}

std::vector<Method> failFastMethods() {
  std::vector<Method> out;
  for (Method m : allMethods()) {
    if (!isPartitionedMethod(m)) out.push_back(m);
  }
  return out;
}

std::string paramName(const ::testing::TestParamInfo<Method>& info) {
  std::string name = methodName(info.param);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

// ---------------------------------------------------------------------------
// Partitioned methods degrade
// ---------------------------------------------------------------------------

class DegradedTrainTest : public ::testing::TestWithParam<Method> {};

TEST_P(DegradedTrainTest, SurvivesOneRankCrashWithRoutedModel) {
  // Kill rank 2 at the train-phase boundary: by then every partition is
  // placed and training is purely local, so the other 7 sub-SVMs complete
  // and prediction routes around the hole.
  TrainConfig cfg = baseConfig(toy(), GetParam());
  cfg.faults = net::FaultPlan::parse("crash:rank=2,phase=train");
  const TrainResult res = train(toy().train, cfg);

  EXPECT_TRUE(res.degraded);
  ASSERT_EQ(res.failedRanks.size(), 1u);
  EXPECT_EQ(res.failedRanks[0], 2);
  EXPECT_TRUE(res.model.isRouted());
  EXPECT_EQ(res.model.numModels(), 7u);  // P-1 survivors

  // Coverage metadata: one entry per partition, rank 2 marked dead, the
  // covered fraction consistent with the per-rank sample counts.
  ASSERT_EQ(res.coverage.size(), 8u);
  long long total = 0;
  long long covered = 0;
  for (const PartitionCoverage& pc : res.coverage) {
    EXPECT_EQ(pc.rank, &pc - res.coverage.data());
    EXPECT_EQ(pc.survived, pc.rank != 2);
    total += pc.samples;
    if (pc.survived) covered += pc.samples;
  }
  EXPECT_EQ(total, static_cast<long long>(toy().train.rows()));
  EXPECT_GT(res.coveredFraction, 0.0);
  EXPECT_LT(res.coveredFraction, 1.0);
  EXPECT_DOUBLE_EQ(res.coveredFraction,
                   static_cast<double>(covered) / static_cast<double>(total));

  // The engine recorded the injected crash.
  ASSERT_EQ(res.runStats.failures.size(), 1u);
  EXPECT_EQ(res.runStats.failures[0].rank, 2);
  EXPECT_NE(res.runStats.failures[0].reason.find("injected fault"),
            std::string::npos);

  // predict() works on the degraded model and the accuracy stays within a
  // modest band of the fault-free run: one lost partition of eight.
  TrainConfig clean = baseConfig(toy(), GetParam());
  const TrainResult full = train(toy().train, clean);
  const double degradedAcc = res.model.accuracy(toy().test);
  const double fullAcc = full.model.accuracy(toy().test);
  EXPECT_GT(degradedAcc, 0.5);
  EXPECT_GE(degradedAcc, fullAcc - 0.15)
      << methodName(GetParam()) << ": degraded " << degradedAcc << " vs full "
      << fullAcc;
}

TEST_P(DegradedTrainTest, DegradedRunIsSeedReproducible) {
  TrainConfig cfg = baseConfig(toy(), GetParam());
  cfg.faults = net::FaultPlan::parse("crash:rank=2,phase=train", 11);
  const TrainResult a = train(toy().train, cfg);
  const TrainResult b = train(toy().train, cfg);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.failedRanks, b.failedRanks);
  EXPECT_EQ(a.model.numModels(), b.model.numModels());
  EXPECT_DOUBLE_EQ(a.coveredFraction, b.coveredFraction);
  EXPECT_DOUBLE_EQ(a.model.accuracy(toy().test), b.model.accuracy(toy().test));
}

TEST_P(DegradedTrainTest, DeadRankContributesNoTrainTime) {
  TrainConfig cfg = baseConfig(toy(), GetParam());
  cfg.faults = net::FaultPlan::parse("crash:rank=2,phase=train");
  const TrainResult res = train(toy().train, cfg);
  ASSERT_EQ(res.trainSecondsPerRank.size(), 8u);
  EXPECT_EQ(res.trainSecondsPerRank[2], 0.0);
  EXPECT_GT(res.trainSeconds, 0.0);  // survivors still measured
  for (double s : res.trainSecondsPerRank) EXPECT_GE(s, 0.0);
}

TEST_P(DegradedTrainTest, FaultFreePlanLeavesResultUndegraded) {
  TrainConfig cfg = baseConfig(toy(), GetParam());
  cfg.faults = net::FaultPlan::parse("");  // explicit empty plan
  const TrainResult res = train(toy().train, cfg);
  EXPECT_FALSE(res.degraded);
  EXPECT_TRUE(res.failedRanks.empty());
  EXPECT_EQ(res.model.numModels(), 8u);
  EXPECT_DOUBLE_EQ(res.coveredFraction, 1.0);
  for (const PartitionCoverage& pc : res.coverage) EXPECT_TRUE(pc.survived);
}

INSTANTIATE_TEST_SUITE_P(Partitioned, DegradedTrainTest,
                         ::testing::ValuesIn(partitionedMethods()), paramName);

// ---------------------------------------------------------------------------
// Tree methods and Dis-SMO fail fast
// ---------------------------------------------------------------------------

class FailFastTrainTest : public ::testing::TestWithParam<Method> {};

TEST_P(FailFastTrainTest, CrashAbortsNamingTheInjectedFault) {
  // Every rank's output feeds the global solve, so the run must abort —
  // and the error must name the injected fault, not a cascade symptom.
  TrainConfig cfg = baseConfig(toy(), GetParam());
  cfg.faults = net::FaultPlan::parse("crash:rank=2,phase=train");
  cfg.watchdogSeconds = 10.0;  // backstop: never hang the test suite
  try {
    (void)train(toy().train, cfg);
    FAIL() << "expected throw for " << methodName(GetParam());
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("injected fault"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 2"), std::string::npos) << what;
  }
}

TEST_P(FailFastTrainTest, FailFastIsReproducible) {
  TrainConfig cfg = baseConfig(toy(), GetParam());
  cfg.faults = net::FaultPlan::parse("crash:rank=1,phase=init", 5);
  cfg.watchdogSeconds = 10.0;
  std::vector<std::string> whats;
  for (int round = 0; round < 2; ++round) {
    try {
      (void)train(toy().train, cfg);
      FAIL() << "expected throw";
    } catch (const Error& e) {
      whats.emplace_back(e.what());
    }
  }
  ASSERT_EQ(whats.size(), 2u);
  EXPECT_EQ(whats[0], whats[1]);
  EXPECT_NE(whats[0].find("injected fault"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(FailFast, FailFastTrainTest,
                         ::testing::ValuesIn(failFastMethods()), paramName);

// ---------------------------------------------------------------------------
// Slow-rank and whole-run guards
// ---------------------------------------------------------------------------

TEST(DegradedTrainTest2, SlowRankShowsUpInPerRankTraining) {
  // An 8x straggler must dominate the per-rank virtual training times.
  TrainConfig cfg = baseConfig(toy(), Method::RaCa);
  cfg.faults = net::FaultPlan::parse("slow:rank=3,factor=8");
  const TrainResult res = train(toy().train, cfg);
  EXPECT_FALSE(res.degraded);
  double maxOther = 0.0;
  for (int r = 0; r < 8; ++r) {
    if (r != 3) maxOther = std::max(maxOther, res.trainSecondsPerRank[r]);
  }
  EXPECT_GT(res.trainSecondsPerRank[3], maxOther);
}

TEST(DegradedTrainTest2, AllRanksCrashedIsAnError) {
  TrainConfig cfg = baseConfig(toy(), Method::RaCa, 2);
  cfg.faults =
      net::FaultPlan::parse("crash:rank=0,phase=train;crash:rank=1,phase=train");
  try {
    (void)train(toy().train, cfg);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("every rank crashed"),
              std::string::npos);
  }
}

TEST(DegradedTrainTest2, DegradedModelSurvivesSerialization) {
  // The routed P-1 model must round-trip through pack/unpack like any
  // other (prediction artifacts are the paper's MF/CT files).
  TrainConfig cfg = baseConfig(toy(), Method::RaCa);
  cfg.faults = net::FaultPlan::parse("crash:rank=5,phase=train");
  const TrainResult res = train(toy().train, cfg);
  ASSERT_EQ(res.model.numModels(), 7u);
  const DistributedModel copy = DistributedModel::unpack(res.model.pack());
  EXPECT_EQ(copy.numModels(), 7u);
  EXPECT_DOUBLE_EQ(copy.accuracy(toy().test), res.model.accuracy(toy().test));
}

}  // namespace
}  // namespace casvm::core
