#include "casvm/core/train.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "casvm/data/registry.hpp"
#include "casvm/support/error.hpp"

namespace casvm::core {
namespace {

TrainConfig baseConfig(const data::NamedDataset& nd, Method method,
                       int P = 8) {
  TrainConfig cfg;
  cfg.method = method;
  cfg.processes = P;
  cfg.solver.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
  cfg.solver.C = nd.suggestedC;
  return cfg;
}

const data::NamedDataset& toy() {
  static const data::NamedDataset nd = data::standin("toy");
  return nd;
}

/// Integration sweep: every method must train to high accuracy on the toy
/// stand-in — the paper's Tables XIII-XVIII "comparable accuracy" claim.
class TrainMethodTest : public ::testing::TestWithParam<Method> {};

TEST_P(TrainMethodTest, AccuracyPreserved) {
  const TrainResult res = train(toy().train, baseConfig(toy(), GetParam()));
  EXPECT_GT(res.model.accuracy(toy().test), 0.93) << methodName(GetParam());
}

TEST_P(TrainMethodTest, IterationsAndTimingPopulated) {
  const TrainResult res = train(toy().train, baseConfig(toy(), GetParam()));
  EXPECT_GT(res.totalIterations, 0);
  EXPECT_GT(res.criticalIterations, 0);
  EXPECT_LE(res.criticalIterations, res.totalIterations);
  EXPECT_GT(res.trainSeconds, 0.0);
  EXPECT_GE(res.initSeconds, 0.0);
  EXPECT_GT(res.wallSeconds, 0.0);
  EXPECT_EQ(res.method, GetParam());
}

TEST_P(TrainMethodTest, ModelShapeMatchesMethodKind) {
  const TrainResult res = train(toy().train, baseConfig(toy(), GetParam()));
  if (isPartitionedMethod(GetParam())) {
    EXPECT_TRUE(res.model.isRouted());
    EXPECT_EQ(res.model.numModels(), 8u);
  } else {
    EXPECT_FALSE(res.model.isRouted());
    EXPECT_EQ(res.model.numModels(), 1u);
  }
  EXPECT_GT(res.model.totalSupportVectors(), 0u);
}

TEST_P(TrainMethodTest, SamplesCoverDataset) {
  const TrainResult res = train(toy().train, baseConfig(toy(), GetParam()));
  const long long total = std::accumulate(res.samplesPerRank.begin(),
                                          res.samplesPerRank.end(), 0LL);
  EXPECT_EQ(total, static_cast<long long>(toy().train.rows()));
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, TrainMethodTest, ::testing::ValuesIn(allMethods()),
    [](const ::testing::TestParamInfo<Method>& info) {
      std::string name = methodName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(TrainTest, RaCaCasvm2HasZeroTraffic) {
  // The paper's headline property (Table X: CA-SVM row = 0MB).
  const TrainResult res = train(toy().train, baseConfig(toy(), Method::RaCa));
  EXPECT_EQ(res.initTraffic.totalBytes(), 0u);
  EXPECT_EQ(res.trainTraffic.totalBytes(), 0u);
  EXPECT_EQ(res.runStats.traffic.totalOps(), 0u);
}

TEST(TrainTest, RaCaCasvm1HasDistributionTrafficOnly) {
  TrainConfig cfg = baseConfig(toy(), Method::RaCa);
  cfg.raInitialDataOnRoot = true;
  const TrainResult res = train(toy().train, cfg);
  // Rank 0 scattered the parts: init traffic from rank 0 only.
  EXPECT_GT(res.initTraffic.totalBytes(), 0u);
  EXPECT_EQ(res.trainTraffic.totalBytes(), 0u);
  for (int src = 1; src < 8; ++src) {
    for (int dst = 0; dst < 8; ++dst) {
      EXPECT_EQ(res.initTraffic.bytesBetween(src, dst), 0u);
    }
  }
  EXPECT_GT(res.model.accuracy(toy().test), 0.93);
}

TEST(TrainTest, PartitionedMethodsHaveQuietTraining) {
  // After partitioning, CP/BKM/FCFS/RA training is fully independent.
  for (Method m :
       {Method::CpSvm, Method::BkmCa, Method::FcfsCa, Method::RaCa}) {
    const TrainResult res = train(toy().train, baseConfig(toy(), m));
    EXPECT_EQ(res.trainTraffic.totalBytes(), 0u) << methodName(m);
  }
}

TEST(TrainTest, DisSmoTrafficDominatedBySmallMessages) {
  const TrainResult res =
      train(toy().train, baseConfig(toy(), Method::DisSmo));
  EXPECT_GT(res.trainTraffic.totalOps(), 1000u);
  // Mean message size far below one sample row (Table XI's 101B/operation).
  EXPECT_LT(res.trainTraffic.bytesPerOp(), 256.0);
}

TEST(TrainTest, CascadeUsesFewerBytesThanDisSmo) {
  const TrainResult smo =
      train(toy().train, baseConfig(toy(), Method::DisSmo));
  const TrainResult cascade =
      train(toy().train, baseConfig(toy(), Method::Cascade));
  EXPECT_LT(cascade.runStats.traffic.totalBytes(),
            smo.runStats.traffic.totalBytes());
}

TEST(TrainTest, DisSmoMatchesSerialAccuracy) {
  const TrainResult res =
      train(toy().train, baseConfig(toy(), Method::DisSmo));
  solver::SolverOptions opts;
  opts.kernel = kernel::KernelParams::gaussian(toy().suggestedGamma);
  opts.C = toy().suggestedC;
  const solver::SolverResult serial =
      solver::SmoSolver(opts).solve(toy().train);
  EXPECT_NEAR(res.model.accuracy(toy().test),
              serial.model.accuracy(toy().test), 0.02);
}

TEST(TrainTest, TreeMethodsRecordLayers) {
  for (Method m : {Method::Cascade, Method::DcSvm, Method::DcFilter}) {
    const TrainResult res = train(toy().train, baseConfig(toy(), m));
    ASSERT_EQ(res.layers.size(), 4u) << methodName(m);  // log2(8)+1
    EXPECT_EQ(res.layers[0].nodesUsed, 8);
    EXPECT_EQ(res.layers[1].nodesUsed, 4);
    EXPECT_EQ(res.layers[2].nodesUsed, 2);
    EXPECT_EQ(res.layers[3].nodesUsed, 1);
    for (const auto& layer : res.layers) {
      EXPECT_GT(layer.maxSamples(), 0) << methodName(m);
    }
  }
}

TEST(TrainTest, DcSvmBottomLayerSeesWholeDataset) {
  const TrainResult res = train(toy().train, baseConfig(toy(), Method::DcSvm));
  EXPECT_EQ(res.layers.back().maxSamples(),
            static_cast<long long>(toy().train.rows()));
}

TEST(TrainTest, CascadeBottomLayerFiltered) {
  const TrainResult res =
      train(toy().train, baseConfig(toy(), Method::Cascade));
  EXPECT_LT(res.layers.back().maxSamples(),
            static_cast<long long>(toy().train.rows()));
}

TEST(TrainTest, BalancedMethodsBalanceSamples) {
  // RA-CA deals exactly even parts. BKM/FCFS-CA use the paper's
  // divide-and-conquer parallelization (per-rank quotas of ceil(m/P)/P),
  // which leaves a small residual spread — the paper's own Table VIII
  // shows parts of 19,967..20,009 out of 20,000, the same effect.
  for (Method m : {Method::BkmCa, Method::FcfsCa, Method::RaCa}) {
    const TrainResult res = train(toy().train, baseConfig(toy(), m));
    const auto [lo, hi] = std::minmax_element(res.samplesPerRank.begin(),
                                              res.samplesPerRank.end());
    const long long bound = m == Method::RaCa ? 1 : 8 * 8;
    EXPECT_LE(*hi - *lo, bound) << methodName(m);
  }
}

TEST(TrainTest, KmeansLoopsReportedForKmeansMethods) {
  for (Method m : allMethods()) {
    const TrainResult res = train(toy().train, baseConfig(toy(), m));
    if (usesKmeans(m)) {
      EXPECT_GE(res.kmeansLoops, 1u) << methodName(m);
    } else {
      EXPECT_EQ(res.kmeansLoops, 0u) << methodName(m);
    }
  }
}

TEST(TrainTest, TreeMethodsHandleNonPowerOfTwoProcesses) {
  // Regression: the layer-L merge used to compute partner = rank + step/2
  // without checking partner < P, so e.g. P=6, layer 3 had rank 4 receive
  // from nonexistent rank 6 and crash. With a ragged tree, a partnerless
  // rank skips the merge but stays active, so every sample still reaches
  // the root and a usable model comes out.
  for (Method m : {Method::Cascade, Method::DcSvm, Method::DcFilter}) {
    for (int P : {3, 6}) {
      const TrainResult res = train(toy().train, baseConfig(toy(), m, P));
      EXPECT_FALSE(res.model.isRouted()) << methodName(m) << " P=" << P;
      EXPECT_GT(res.model.totalSupportVectors(), 0u)
          << methodName(m) << " P=" << P;
      EXPECT_GT(res.model.accuracy(toy().test), 0.93)
          << methodName(m) << " P=" << P;
      // Top layer uses all P ranks; the root layer is always a single node.
      ASSERT_FALSE(res.layers.empty()) << methodName(m) << " P=" << P;
      EXPECT_EQ(res.layers.front().nodesUsed, P) << methodName(m);
      EXPECT_EQ(res.layers.back().nodesUsed, 1) << methodName(m);
      const long long total = std::accumulate(res.samplesPerRank.begin(),
                                              res.samplesPerRank.end(), 0LL);
      EXPECT_EQ(total, static_cast<long long>(toy().train.rows()))
          << methodName(m) << " P=" << P;
    }
  }
}

TEST(TrainTest, NonPowerOfTwoFineForPartitioned) {
  const TrainResult res =
      train(toy().train, baseConfig(toy(), Method::RaCa, 6));
  EXPECT_EQ(res.model.numModels(), 6u);
  EXPECT_GT(res.model.accuracy(toy().test), 0.9);
}

TEST(TrainTest, SingleProcessWorks) {
  for (Method m : {Method::DisSmo, Method::Cascade, Method::RaCa}) {
    const TrainResult res = train(toy().train, baseConfig(toy(), m, 1));
    EXPECT_GT(res.model.accuracy(toy().test), 0.93) << methodName(m);
    EXPECT_EQ(res.runStats.traffic.totalBytes(), 0u) << methodName(m);
  }
}

TEST(TrainTest, FewerSamplesThanProcessesThrows) {
  const auto tiny = data::standin("toy", 0.01);  // 20 samples
  TrainConfig cfg = baseConfig(tiny, Method::RaCa, 64);
  EXPECT_THROW((void)train(tiny.train, cfg), Error);
}

TEST(TrainTest, DeterministicInSeed) {
  const TrainResult a = train(toy().train, baseConfig(toy(), Method::FcfsCa));
  const TrainResult b = train(toy().train, baseConfig(toy(), Method::FcfsCa));
  EXPECT_EQ(a.totalIterations, b.totalIterations);
  EXPECT_EQ(a.samplesPerRank, b.samplesPerRank);
  EXPECT_DOUBLE_EQ(a.model.accuracy(toy().test),
                   b.model.accuracy(toy().test));
}

TEST(TrainTest, ImbalancedDataYieldsImbalancedLoadWithoutRatioBalance) {
  // The Table VI phenomenon, at small scale: on a skewed dataset, CP-SVM's
  // per-rank iteration spread is wider than FCFS-CA's (ratio-balanced).
  const auto nd = data::standin("face", 0.5);
  const TrainResult cp = train(nd.train, baseConfig(nd, Method::CpSvm));
  const TrainResult fcfs = train(nd.train, baseConfig(nd, Method::FcfsCa));
  auto spread = [](const std::vector<long long>& v) {
    const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
    return *hi - *lo;
  };
  EXPECT_GT(spread(cp.samplesPerRank), spread(fcfs.samplesPerRank));
}


TEST(TrainTest, MultiPassCascadeRunsAllLayers) {
  TrainConfig cfg = baseConfig(toy(), Method::Cascade);
  cfg.cascadePasses = 2;
  const TrainResult res = train(toy().train, cfg);
  // Two passes of log2(8)+1 = 4 layers each.
  ASSERT_EQ(res.layers.size(), 8u);
  EXPECT_EQ(res.layers[4].nodesUsed, 8);  // pass 2 reuses all ranks
  EXPECT_GT(res.model.accuracy(toy().test), 0.93);
}

TEST(TrainTest, SecondPassSeesAugmentedData) {
  // Fig. 2's feedback loop: on pass 2, every node re-enters the top layer
  // with its original block plus the globally distributed SV set.
  TrainConfig cfg = baseConfig(toy(), Method::Cascade);
  cfg.cascadePasses = 2;
  const TrainResult res = train(toy().train, cfg);
  ASSERT_EQ(res.layers.size(), 8u);
  EXPECT_GT(res.layers[4].maxSamples(), res.layers[0].maxSamples());
}

TEST(TrainTest, MultiPassAccuracyNotWorse) {
  TrainConfig one = baseConfig(toy(), Method::Cascade);
  TrainConfig two = one;
  two.cascadePasses = 2;
  const double acc1 = train(toy().train, one).model.accuracy(toy().test);
  const double acc2 = train(toy().train, two).model.accuracy(toy().test);
  EXPECT_GE(acc2, acc1 - 0.03);
}

}  // namespace
}  // namespace casvm::core
