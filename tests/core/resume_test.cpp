// Checkpoint/resume property tests (casvm::ckpt × casvm::core):
//
//  * Resume equivalence: a run interrupted at the partition boundary or
//    mid-solve and restarted with --resume produces a final model that is
//    BITWISE identical (alphas, bias, SV set, routing centers) to the
//    uninterrupted run — for partitioned and tree methods, linear and
//    Gaussian kernels.
//  * In-run rank retry: a crashed rank in a partitioned method respawns
//    from its last checkpoint and restores full-P coverage (degraded is
//    false, the rank is reported recovered, not failed); when the retry
//    budget is exhausted the run falls back to PR 1's degraded path.
//  * Corrupt checkpoints are never trusted: a damaged generation is
//    detected and skipped in favor of the previous one, and the resumed
//    model is still exact.

#include "casvm/core/train.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "casvm/ckpt/store.hpp"
#include "casvm/data/registry.hpp"
#include "casvm/support/error.hpp"

namespace fs = std::filesystem;

namespace casvm::core {
namespace {

const data::NamedDataset& toy() {
  static const data::NamedDataset nd = data::standin("toy", 0.5);
  return nd;
}

TrainConfig baseConfig(Method method, bool gaussian, int P = 4) {
  TrainConfig cfg;
  cfg.method = method;
  cfg.processes = P;
  cfg.solver.kernel = gaussian
                          ? kernel::KernelParams::gaussian(toy().suggestedGamma)
                          : kernel::KernelParams::linear();
  cfg.solver.C = toy().suggestedC;
  cfg.checkpointEvery = 8;  // snapshot often so mid-solve faults can fire
  return cfg;
}

std::string freshDir(const std::string& leaf) {
  const std::string dir = ::testing::TempDir() + "/" + leaf;
  fs::remove_all(dir);
  return dir;
}

/// Fault-free reference model bytes for a config (no checkpointing).
std::vector<std::byte> baselineModel(Method method, bool gaussian) {
  return train(toy().train, baseConfig(method, gaussian)).model.pack();
}

void flipByteInFile(const std::string& path, std::size_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.get(c);
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(static_cast<char>(c ^ 0x20));
}

// ---------------------------------------------------------------------------
// Resume equivalence: interrupt × method × kernel → bitwise-equal model
// ---------------------------------------------------------------------------

struct ResumeCase {
  Method method;
  bool gaussian;
  const char* faultSpec;  ///< how the first run is interrupted
  const char* tag;        ///< test-name suffix
  bool nystrom = false;   ///< run with the low-rank solver backend
};

class ResumeEquivalenceTest : public ::testing::TestWithParam<ResumeCase> {};

std::string resumeCaseName(const ::testing::TestParamInfo<ResumeCase>& info) {
  std::string name = methodName(info.param.method) + "_" +
                     (info.param.gaussian ? "gaussian" : "linear") + "_" +
                     info.param.tag;
  if (info.param.nystrom) name += "_nystrom";
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

TrainConfig configFor(const ResumeCase& rc) {
  TrainConfig cfg = baseConfig(rc.method, rc.gaussian);
  if (rc.nystrom) {
    cfg.solverBackend = SolverBackend::Nystrom;
    cfg.nystromLandmarks = 48;
  }
  return cfg;
}

TEST_P(ResumeEquivalenceTest, InterruptedRunResumesBitwiseExact) {
  const ResumeCase& rc = GetParam();
  const std::vector<std::byte> expected =
      train(toy().train, configFor(rc)).model.pack();

  const std::string dir =
      freshDir(std::string("resume_") + resumeCaseName(
                   ::testing::TestParamInfo<ResumeCase>(rc, 0)));
  ckpt::CheckpointStore store(dir);

  // First run: interrupted by the injected fault. Partitioned methods
  // tolerate the crash (degraded run); tree methods fail fast — either way
  // the checkpoints written before the crash survive on disk.
  TrainConfig crashed = configFor(rc);
  crashed.checkpoints = &store;
  crashed.faults = net::FaultPlan::parse(rc.faultSpec);
  bool interrupted = false;
  if (isPartitionedMethod(rc.method)) {
    const TrainResult first = train(toy().train, crashed);
    interrupted = first.degraded;
  } else {
    try {
      (void)train(toy().train, crashed);
    } catch (const std::exception&) {
      interrupted = true;
    }
  }
  ASSERT_TRUE(interrupted) << "injected fault never fired: " << rc.faultSpec;

  // Second run: resume from the checkpoint directory, no faults.
  TrainConfig resumed = configFor(rc);
  resumed.checkpoints = &store;
  resumed.resume = true;
  const TrainResult res = train(toy().train, resumed);

  EXPECT_TRUE(res.resumed);
  EXPECT_GT(res.checkpointsLoaded, 0u);
  EXPECT_FALSE(res.degraded);
  EXPECT_TRUE(res.failedRanks.empty());
  EXPECT_EQ(res.model.pack(), expected) << "resumed model differs bitwise";
}

INSTANTIATE_TEST_SUITE_P(
    InterruptPoints, ResumeEquivalenceTest,
    ::testing::Values(
        // Partitioned (BKM-CA: collective partition phase + ratio balance
        // guarantees every part is two-class, so mid-solve faults can fire).
        ResumeCase{Method::BkmCa, true, "crash:rank=1,phase=train", "pretrain"},
        ResumeCase{Method::BkmCa, true, "crash:rank=1,phase=solve,nth=1",
                   "solve1"},
        ResumeCase{Method::BkmCa, true, "crash:rank=1,phase=solve,nth=3",
                   "solve3"},
        ResumeCase{Method::BkmCa, false, "crash:rank=1,phase=solve,nth=2",
                   "solve2"},
        // RA-CA casvm2: the zero-communication path decides resume locally.
        ResumeCase{Method::RaCa, true, "crash:rank=2,phase=solve,nth=2",
                   "solve2"},
        // Tree (Cascade: rank 0 is active at every layer, so its solve
        // checkpoints accumulate across layers).
        ResumeCase{Method::Cascade, true, "crash:rank=0,phase=train",
                   "pretrain"},
        ResumeCase{Method::Cascade, true, "crash:rank=0,phase=solve,nth=1",
                   "solve1"},
        ResumeCase{Method::Cascade, true, "crash:rank=0,phase=solve,nth=3",
                   "solve3"},
        ResumeCase{Method::Cascade, false, "crash:rank=0,phase=solve,nth=2",
                   "solve2"},
        // DC-Filter: K-means partition checkpoint + per-layer filtering.
        ResumeCase{Method::DcFilter, true, "crash:rank=0,phase=solve,nth=2",
                   "solve2"},
        // Global methods: every rank snapshots in lock-step, so a resume
        // re-enters the synchronized loop at a common iteration; the
        // elected-row cache is rebuilt, changing only the traffic.
        ResumeCase{Method::DisSmo, true, "crash:rank=1,phase=solve,nth=2",
                   "solve2"},
        ResumeCase{Method::DisSmo, false, "crash:rank=2,phase=solve,nth=1",
                   "solve1"},
        ResumeCase{Method::DisSmoShrink, true,
                   "crash:rank=1,phase=solve,nth=2", "solve2"},
        ResumeCase{Method::Pbm, true, "crash:rank=1,phase=solve,nth=2",
                   "solve2"},
        ResumeCase{Method::Pbm, false, "crash:rank=3,phase=solve,nth=1",
                   "solve1"},
        // Nystrom backend: the checkpointed factor restores bitwise on the
        // partitioned path, rebuilds deterministically per tree layer, and
        // the global-landmark Dis-SMO path re-derives the identical factor
        // from the run seed — either way the resumed trajectory (and the
        // model) is bitwise the uninterrupted one.
        ResumeCase{Method::BkmCa, true, "crash:rank=1,phase=solve,nth=2",
                   "solve2", true},
        ResumeCase{Method::Cascade, true, "crash:rank=0,phase=solve,nth=2",
                   "solve2", true},
        ResumeCase{Method::DisSmo, true, "crash:rank=1,phase=solve,nth=2",
                   "solve2", true}),
    resumeCaseName);

// ---------------------------------------------------------------------------
// Shrink-engaged resume: the interrupt fires AFTER adaptive shrinking has
// committed a pass, so the restored active set is the shrunk one
// ---------------------------------------------------------------------------

TEST(ResumeTest, ShrinkEngagedDisSmoResumesBitwiseExact) {
  auto shrinkConfig = [] {
    TrainConfig cfg = baseConfig(Method::DisSmoShrink, true);
    cfg.solver.shrinkInterval = 64;
    cfg.checkpointEvery = 96;  // second snapshot lands after the first pass
    return cfg;
  };
  const TrainResult reference = train(toy().train, shrinkConfig());
  ASSERT_GE(reference.shrinkEngagedIteration, 0)
      << "cadence too slow: shrinking never engaged, test is vacuous";
  const std::vector<std::byte> expected = reference.model.pack();

  const std::string dir = freshDir("resume_shrink_engaged");
  ckpt::CheckpointStore store(dir);
  TrainConfig crashed = shrinkConfig();
  crashed.checkpoints = &store;
  crashed.faults = net::FaultPlan::parse("crash:rank=1,phase=solve,nth=2");
  bool interrupted = false;
  try {
    (void)train(toy().train, crashed);
  } catch (const std::exception&) {
    interrupted = true;
  }
  ASSERT_TRUE(interrupted);

  TrainConfig resumed = shrinkConfig();
  resumed.checkpoints = &store;
  resumed.resume = true;
  const TrainResult res = train(toy().train, resumed);
  EXPECT_TRUE(res.resumed);
  // The engagement iteration is a per-run statistic: a resume that
  // restores an already-shrunk snapshot reports its own (later)
  // engagement, not the original one. What must survive is the state —
  // everShrunk and the shrunk active set ride the snapshot, so the
  // trajectory (and hence the model) is bitwise the uninterrupted one.
  EXPECT_GE(res.shrinkEngagedIteration, 0);
  EXPECT_EQ(res.model.pack(), expected);
}

// ---------------------------------------------------------------------------
// Resume of a completed run short-circuits from checkpoints
// ---------------------------------------------------------------------------

TEST(ResumeTest, CompletedRunResumesToTheSameModelWithoutResolving) {
  const std::vector<std::byte> expected = baselineModel(Method::BkmCa, true);
  const std::string dir = freshDir("resume_completed");
  ckpt::CheckpointStore store(dir);

  TrainConfig cfg = baseConfig(Method::BkmCa, true);
  cfg.checkpoints = &store;
  const TrainResult first = train(toy().train, cfg);
  EXPECT_EQ(first.model.pack(), expected);
  EXPECT_FALSE(first.resumed);

  cfg.resume = true;
  const TrainResult again = train(toy().train, cfg);
  EXPECT_TRUE(again.resumed);
  // Every rank restores its partition and its finished sub-model: 2 * P.
  EXPECT_EQ(again.checkpointsLoaded, 2u * 4u);
  EXPECT_EQ(again.totalIterations, 0) << "resume should not re-solve";
  EXPECT_EQ(again.model.pack(), expected);
}

// ---------------------------------------------------------------------------
// Corrupt checkpoints: detected, skipped, previous generation used
// ---------------------------------------------------------------------------

TEST(ResumeTest, CorruptNewestGenerationFallsBackAndStaysExact) {
  const std::vector<std::byte> expected = baselineModel(Method::BkmCa, true);
  const std::string dir = freshDir("resume_corrupt");
  ckpt::CheckpointStore store(dir);

  // Two fresh runs stack two identical generations of every artifact.
  TrainConfig cfg = baseConfig(Method::BkmCa, true);
  cfg.checkpoints = &store;
  (void)train(toy().train, cfg);
  (void)train(toy().train, cfg);

  // Damage the newest generation of every rank's finished sub-model.
  std::size_t damaged = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string f = entry.path().filename().string();
    if (f.rfind("model.r", 0) == 0 && f.find(".g2.") != std::string::npos) {
      flipByteInFile(entry.path().string(), fs::file_size(entry.path()) / 2);
      ++damaged;
    }
  }
  ASSERT_EQ(damaged, 4u);

  cfg.resume = true;
  const TrainResult res = train(toy().train, cfg);
  EXPECT_GE(store.corruptSkipped(), 4u) << "corruption went undetected";
  EXPECT_EQ(res.totalIterations, 0)
      << "the previous good generation should have been used";
  EXPECT_EQ(res.model.pack(), expected);
}

// ---------------------------------------------------------------------------
// In-run rank retry (partitioned methods)
// ---------------------------------------------------------------------------

TEST(RetryTest, CrashedRankRetriesBackToFullCoverage) {
  const std::vector<std::byte> expected = baselineModel(Method::RaCa, true);
  const std::string dir = freshDir("retry_full");
  ckpt::CheckpointStore store(dir);

  TrainConfig cfg = baseConfig(Method::RaCa, true);
  cfg.checkpoints = &store;
  cfg.rankRetries = 1;
  cfg.faults = net::FaultPlan::parse("crash:rank=2,phase=train");
  const TrainResult res = train(toy().train, cfg);

  EXPECT_FALSE(res.degraded);
  EXPECT_TRUE(res.failedRanks.empty());
  EXPECT_EQ(res.recoveredRanks, std::vector<int>{2});
  ASSERT_EQ(res.retriesPerRank.size(), 4u);
  EXPECT_EQ(res.retriesPerRank[2], 1);
  EXPECT_EQ(res.retriesPerRank[0], 0);
  EXPECT_DOUBLE_EQ(res.coveredFraction, 1.0);
  EXPECT_EQ(res.model.numModels(), 4u);
  EXPECT_EQ(res.model.pack(), expected) << "recovered model differs bitwise";
}

TEST(RetryTest, MidSolveCrashRetriesFromSnapshotBitwiseExact) {
  const std::vector<std::byte> expected = baselineModel(Method::BkmCa, true);
  const std::string dir = freshDir("retry_midsolve");
  ckpt::CheckpointStore store(dir);

  TrainConfig cfg = baseConfig(Method::BkmCa, true);
  cfg.checkpoints = &store;
  cfg.rankRetries = 2;
  // The crash fires at the rank's second solver snapshot; the snapshot is
  // written before the fault checkpoint, so the retry resumes mid-solve.
  cfg.faults = net::FaultPlan::parse("crash:rank=1,phase=solve,nth=2");
  const TrainResult res = train(toy().train, cfg);

  EXPECT_FALSE(res.degraded);
  EXPECT_EQ(res.recoveredRanks, std::vector<int>{1});
  EXPECT_GT(res.checkpointsLoaded, 0u) << "retry should restore a snapshot";
  EXPECT_EQ(res.model.pack(), expected);
}

TEST(RetryTest, RepeatedCrashesConsumeTheBudgetThenRecover) {
  const std::string dir = freshDir("retry_twice");
  ckpt::CheckpointStore store(dir);
  TrainConfig cfg = baseConfig(Method::RaCa, true);
  cfg.checkpoints = &store;
  cfg.rankRetries = 3;
  // times=2: the first two attempts die, the third succeeds.
  cfg.faults = net::FaultPlan::parse("crash:rank=2,phase=train,times=2");
  const TrainResult res = train(toy().train, cfg);
  EXPECT_FALSE(res.degraded);
  EXPECT_EQ(res.recoveredRanks, std::vector<int>{2});
  EXPECT_EQ(res.retriesPerRank[2], 2);
}

TEST(RetryTest, ExhaustedBudgetFallsBackToDegradedPath) {
  const std::string dir = freshDir("retry_exhausted");
  ckpt::CheckpointStore store(dir);
  TrainConfig cfg = baseConfig(Method::RaCa, true);
  cfg.checkpoints = &store;
  cfg.rankRetries = 2;
  // times=0 = crash every attempt: the budget runs out and the run
  // degrades exactly as without retries.
  cfg.faults = net::FaultPlan::parse("crash:rank=2,phase=train,times=0");
  const TrainResult res = train(toy().train, cfg);
  EXPECT_TRUE(res.degraded);
  EXPECT_EQ(res.failedRanks, std::vector<int>{2});
  EXPECT_TRUE(res.recoveredRanks.empty());
  EXPECT_EQ(res.model.numModels(), 3u);
  EXPECT_LT(res.coveredFraction, 1.0);
}

TEST(RetryTest, RetryWorksWithoutACheckpointStoreByResolving) {
  TrainConfig cfg = baseConfig(Method::RaCa, true);
  cfg.rankRetries = 1;
  cfg.faults = net::FaultPlan::parse("crash:rank=1,phase=train");
  const TrainResult res = train(toy().train, cfg);
  EXPECT_FALSE(res.degraded);
  EXPECT_EQ(res.recoveredRanks, std::vector<int>{1});
}

// ---------------------------------------------------------------------------
// Run-identity guards
// ---------------------------------------------------------------------------

TEST(ResumeTest, ResumeAgainstDifferentConfigIsRefused) {
  const std::string dir = freshDir("resume_mismatch");
  ckpt::CheckpointStore store(dir);
  TrainConfig cfg = baseConfig(Method::BkmCa, true);
  cfg.checkpoints = &store;
  (void)train(toy().train, cfg);

  TrainConfig other = baseConfig(Method::BkmCa, true);
  other.solver.kernel = kernel::KernelParams::gaussian(9.9);  // different run
  other.checkpoints = &store;
  other.resume = true;
  EXPECT_THROW((void)train(toy().train, other), Error);
}

TEST(ResumeTest, ResumeWithoutAStoreIsRefused) {
  TrainConfig cfg = baseConfig(Method::RaCa, true);
  cfg.resume = true;
  EXPECT_THROW((void)train(toy().train, cfg), Error);
}

}  // namespace
}  // namespace casvm::core
