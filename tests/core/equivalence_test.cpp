#include <gtest/gtest.h>

#include "casvm/core/train.hpp"
#include "casvm/data/synth.hpp"
#include "casvm/solver/smo.hpp"

namespace casvm::core {
namespace {

/// Property sweep: the distributed SMO must solve the same optimization
/// problem as the serial solver — same data, same KKT tolerance — so the
/// resulting classifiers must agree on (nearly) every point, for any rank
/// count and any dataset draw.
struct EquivCase {
  int seed;
  int processes;
};

class DisSmoEquivalenceTest : public ::testing::TestWithParam<EquivCase> {};

TEST_P(DisSmoEquivalenceTest, MatchesSerialSolver) {
  const EquivCase param = GetParam();
  data::MixtureSpec spec;
  spec.samples = 300;
  spec.features = 6;
  spec.clusters = 4;
  spec.minCenterSeparation = 8.0;
  spec.seed = static_cast<std::uint64_t>(param.seed);
  const data::Dataset ds = data::generateMixture(spec);
  if (ds.positives() < 4 || ds.negatives() < 4) GTEST_SKIP();

  solver::SolverOptions sopts;
  sopts.kernel = kernel::KernelParams::gaussian(0.5);
  sopts.C = 1.0;
  const solver::SolverResult serial = solver::SmoSolver(sopts).solve(ds);

  TrainConfig cfg;
  cfg.method = Method::DisSmo;
  cfg.processes = param.processes;
  cfg.solver = sopts;
  const TrainResult distributed = train(ds, cfg);

  // Same decision on (almost) every training point: both stopped within
  // the same KKT tolerance, so only margin-grazing points may flip.
  std::size_t disagree = 0;
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    disagree += (distributed.model.predictFor(ds, i) !=
                 serial.model.predictFor(ds, i));
  }
  EXPECT_LE(disagree, ds.rows() / 50 + 2)
      << "seed " << param.seed << " P " << param.processes;

  // SV counts in the same ballpark.
  const double svRatio =
      static_cast<double>(distributed.model.totalSupportVectors()) /
      static_cast<double>(serial.model.numSupportVectors());
  EXPECT_GT(svRatio, 0.5);
  EXPECT_LT(svRatio, 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndRanks, DisSmoEquivalenceTest,
    ::testing::Values(EquivCase{1, 2}, EquivCase{1, 5}, EquivCase{2, 3},
                      EquivCase{2, 8}, EquivCase{3, 4}, EquivCase{4, 7},
                      EquivCase{5, 2}, EquivCase{5, 8}, EquivCase{6, 6},
                      EquivCase{7, 3}),
    [](const ::testing::TestParamInfo<EquivCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_P" +
             std::to_string(info.param.processes);
    });

/// All-methods accuracy floor across random datasets: no method may fall
/// apart on any cluster-structured draw.
class MethodRobustnessTest : public ::testing::TestWithParam<int> {};

TEST_P(MethodRobustnessTest, EveryMethodLearnsEveryDraw) {
  data::MixtureSpec spec;
  spec.samples = 640;
  spec.features = 8;
  spec.clusters = 8;
  spec.minCenterSeparation = 8.0;
  spec.labelNoise = 0.01;
  spec.seed = static_cast<std::uint64_t>(GetParam()) * 101;
  const data::Dataset ds = data::generateMixture(spec);
  if (ds.positives() < 32 || ds.negatives() < 32) GTEST_SKIP();

  for (Method m : allMethods()) {
    TrainConfig cfg;
    cfg.method = m;
    cfg.processes = 8;
    // Within-cluster squared distances are ~2*n*clusterSpread^2 = 16 for
    // this geometry, so the kernel width must be ~1/(2n).
    cfg.solver.kernel = kernel::KernelParams::gaussian(
        1.0 / (2.0 * static_cast<double>(ds.cols())));
    const TrainResult res = train(ds, cfg);
    // The SV-filtering tree methods legitimately lose accuracy when the
    // partition hides global margin samples inside locally-pure parts —
    // the paper's own Table XV shows Cascade at 88.3% and DC-Filter at
    // 85.7% against Dis-SMO's 97.6% on gisette. Hold them to that bar and
    // everything else to a tight one.
    const bool lossyFilter =
        m == Method::Cascade || m == Method::DcFilter;
    EXPECT_GT(res.model.accuracy(ds), lossyFilter ? 0.8 : 0.9)
        << methodName(m) << " on draw " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Draws, MethodRobustnessTest, ::testing::Range(1, 7));

}  // namespace
}  // namespace casvm::core
