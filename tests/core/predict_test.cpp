#include "casvm/core/predict.hpp"

#include <gtest/gtest.h>

#include "casvm/core/train.hpp"
#include "casvm/data/registry.hpp"
#include "casvm/support/error.hpp"

namespace casvm::core {
namespace {

struct Trained {
  data::NamedDataset nd;
  TrainResult result;
};

const Trained& trainedRaCa() {
  static const Trained t = [] {
    Trained out;
    out.nd = data::standin("toy");
    TrainConfig cfg;
    cfg.method = Method::RaCa;
    cfg.processes = 8;
    cfg.solver.kernel =
        kernel::KernelParams::gaussian(out.nd.suggestedGamma);
    cfg.solver.C = out.nd.suggestedC;
    out.result = train(out.nd.train, cfg);
    return out;
  }();
  return t;
}

TEST(DistributedPredictTest, MatchesLocalPrediction) {
  const Trained& t = trainedRaCa();
  const DistributedPredictResult res =
      distributedPredict(t.result.model, t.nd.test);
  ASSERT_EQ(res.predictions.size(), t.nd.test.rows());
  for (std::size_t i = 0; i < t.nd.test.rows(); ++i) {
    EXPECT_EQ(res.predictions[i], t.result.model.predictFor(t.nd.test, i));
  }
  EXPECT_DOUBLE_EQ(res.accuracy, t.result.model.accuracy(t.nd.test));
}

TEST(DistributedPredictTest, CommunicationIsLittle) {
  // The paper's Algorithm 6 remark: prediction routing moves only the test
  // samples (out) and one byte per label (back) — far less than the
  // training data would be.
  const Trained& t = trainedRaCa();
  const DistributedPredictResult res =
      distributedPredict(t.result.model, t.nd.test);
  const std::size_t testBytes = t.nd.test.sampleBytes();
  EXPECT_GT(res.runStats.traffic.totalBytes(), 0u);
  EXPECT_LT(res.runStats.traffic.totalBytes(), 2 * testBytes + 4096);
  // And is an order of magnitude below the training set's volume.
  EXPECT_LT(res.runStats.traffic.totalBytes(),
            t.nd.train.sampleBytes() / 2);
}

TEST(DistributedPredictTest, OnlyRootEdgesUsed) {
  // Queries go root -> owner, labels owner -> root; no peer-to-peer
  // traffic between non-root ranks.
  const Trained& t = trainedRaCa();
  const DistributedPredictResult res =
      distributedPredict(t.result.model, t.nd.test);
  const int P = static_cast<int>(t.result.model.numModels());
  for (int src = 1; src < P; ++src) {
    for (int dst = 1; dst < P; ++dst) {
      if (src == dst) continue;
      EXPECT_EQ(res.runStats.traffic.bytesBetween(src, dst), 0u);
    }
  }
}

TEST(DistributedPredictTest, SingleModelWorks) {
  const auto nd = data::standin("toy", 0.3);
  TrainConfig cfg;
  cfg.method = Method::Cascade;
  cfg.processes = 4;
  cfg.solver.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
  const TrainResult trained = train(nd.train, cfg);
  const DistributedPredictResult res =
      distributedPredict(trained.model, nd.test);
  EXPECT_DOUBLE_EQ(res.accuracy, trained.model.accuracy(nd.test));
  // One rank: no communication at all.
  EXPECT_EQ(res.runStats.traffic.totalBytes(), 0u);
}

TEST(DistributedPredictTest, EmptyInputsThrow) {
  const Trained& t = trainedRaCa();
  EXPECT_THROW((void)distributedPredict(t.result.model, data::Dataset()),
               Error);
  EXPECT_THROW((void)distributedPredict(DistributedModel(), t.nd.test),
               Error);
}

}  // namespace
}  // namespace casvm::core
