#include "casvm/core/multiclass.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "casvm/data/synth.hpp"
#include "casvm/support/error.hpp"

namespace casvm::core {
namespace {

data::MulticlassData fourClasses(std::size_t samples = 600,
                                 std::uint64_t seed = 3) {
  data::MixtureSpec spec;
  spec.samples = samples;
  spec.features = 8;
  spec.clusters = 8;  // two components per class
  spec.labelNoise = 0.0;
  spec.minCenterSeparation = 10.0;
  spec.seed = seed;
  return data::generateMulticlassMixture(spec, 4);
}

TrainConfig config(Method method = Method::RaCa) {
  TrainConfig cfg;
  cfg.method = method;
  cfg.processes = 4;
  cfg.solver.kernel = kernel::KernelParams::gaussian(0.5);
  return cfg;
}

TEST(MulticlassTest, GeneratorShape) {
  const auto mc = fourClasses();
  EXPECT_EQ(mc.features.rows(), 600u);
  EXPECT_EQ(mc.labels.size(), 600u);
  const std::set<int> classes(mc.labels.begin(), mc.labels.end());
  EXPECT_EQ(classes.size(), 4u);
}

TEST(MulticlassTest, TrainsAllPairs) {
  const auto mc = fourClasses();
  const MulticlassResult res =
      trainMulticlass(mc.features, mc.labels, config());
  EXPECT_EQ(res.pairsTrained, 6u);  // C(4,2)
  EXPECT_EQ(res.model.numPairs(), 6u);
  EXPECT_EQ(res.model.classes(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_GT(res.totalIterations, 0);
}

TEST(MulticlassTest, HighAccuracyOnSeparatedClasses) {
  const auto train = fourClasses(600, 3);
  const auto test = fourClasses(200, 3);  // same geometry (same seed)
  const MulticlassResult res =
      trainMulticlass(train.features, train.labels, config());
  EXPECT_GT(res.model.accuracy(test.features, test.labels), 0.9);
}

TEST(MulticlassTest, WorksWithEveryMethodKind) {
  const auto mc = fourClasses(400, 7);
  for (Method m : {Method::DisSmo, Method::Cascade, Method::RaCa}) {
    const MulticlassResult res =
        trainMulticlass(mc.features, mc.labels, config(m));
    EXPECT_GT(res.model.accuracy(mc.features, mc.labels), 0.9)
        << methodName(m);
  }
}

TEST(MulticlassTest, PredictionsAreValidClasses) {
  const auto mc = fourClasses(300, 9);
  const MulticlassResult res =
      trainMulticlass(mc.features, mc.labels, config());
  for (std::size_t i = 0; i < 50; ++i) {
    const int cls = res.model.predictFor(mc.features, i);
    EXPECT_GE(cls, 0);
    EXPECT_LE(cls, 3);
  }
}

TEST(MulticlassTest, PackUnpackRoundTrip) {
  const auto mc = fourClasses(300, 11);
  const MulticlassResult res =
      trainMulticlass(mc.features, mc.labels, config());
  const MulticlassModel back = MulticlassModel::unpack(res.model.pack());
  EXPECT_EQ(back.numPairs(), res.model.numPairs());
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(back.predictFor(mc.features, i),
              res.model.predictFor(mc.features, i));
  }
}

TEST(MulticlassTest, HostileClassCountThrows) {
  const auto mc = fourClasses(200, 11);
  const MulticlassResult res =
      trainMulticlass(mc.features, mc.labels, config());
  auto bytes = res.model.pack();
  // The class count is the first u64; an absurd value must be rejected
  // before sizing the classes vector from it.
  for (std::size_t b = 0; b < sizeof(std::uint64_t); ++b) {
    bytes[b] = std::byte{0xFF};
  }
  EXPECT_THROW((void)MulticlassModel::unpack(bytes), Error);
}

TEST(MulticlassTest, SaveLoadRoundTrip) {
  const auto mc = fourClasses(200, 13);
  const MulticlassResult res =
      trainMulticlass(mc.features, mc.labels, config());
  const std::string path = ::testing::TempDir() + "/casvm_mc_test.bin";
  res.model.save(path);
  const MulticlassModel back = MulticlassModel::load(path);
  EXPECT_EQ(back.classes(), res.model.classes());
  std::remove(path.c_str());
}

TEST(MulticlassTest, SingleClassThrows) {
  const auto mc = fourClasses(100, 17);
  std::vector<int> constant(mc.labels.size(), 5);
  EXPECT_THROW((void)trainMulticlass(mc.features, constant, config()), Error);
}

TEST(MulticlassTest, LabelCountMismatchThrows) {
  const auto mc = fourClasses(100, 19);
  std::vector<int> tooFew(mc.labels.begin(), mc.labels.end() - 5);
  EXPECT_THROW((void)trainMulticlass(mc.features, tooFew, config()), Error);
}

TEST(MulticlassTest, ArbitraryClassIdsSupported) {
  const auto mc = fourClasses(400, 21);
  std::vector<int> shifted(mc.labels.size());
  for (std::size_t i = 0; i < shifted.size(); ++i) {
    shifted[i] = mc.labels[i] * 100 - 7;  // {-7, 93, 193, 293}
  }
  const MulticlassResult res =
      trainMulticlass(mc.features, shifted, config());
  EXPECT_EQ(res.model.classes(), (std::vector<int>{-7, 93, 193, 293}));
  EXPECT_GE(res.model.accuracy(mc.features, shifted), 0.9);
}

TEST(MulticlassTest, SmallPairsShrinkProcessCount) {
  // 3 tiny classes with config.processes = 8: must not throw even though
  // each pairwise problem has far fewer than 8*2 samples.
  data::MixtureSpec spec;
  spec.samples = 30;
  spec.features = 4;
  spec.clusters = 3;
  spec.minCenterSeparation = 10.0;
  spec.seed = 23;
  const auto mc = data::generateMulticlassMixture(spec, 3);
  TrainConfig cfg = config(Method::Cascade);
  cfg.processes = 8;
  const MulticlassResult res = trainMulticlass(mc.features, mc.labels, cfg);
  EXPECT_EQ(res.pairsTrained, 3u);
}


TEST(MulticlassParallelTest, MatchesSequentialResults) {
  const auto mc = fourClasses(400, 31);
  const MulticlassResult seq =
      trainMulticlass(mc.features, mc.labels, config());
  const MulticlassResult par =
      trainMulticlassParallel(mc.features, mc.labels, config(), 3);
  EXPECT_EQ(par.pairsTrained, seq.pairsTrained);
  EXPECT_EQ(par.totalIterations, seq.totalIterations);
  for (std::size_t i = 0; i < 60; ++i) {
    EXPECT_EQ(par.model.predictFor(mc.features, i),
              seq.model.predictFor(mc.features, i));
  }
}

TEST(MulticlassParallelTest, SingleGroupWorks) {
  const auto mc = fourClasses(600, 33);
  const MulticlassResult seq =
      trainMulticlass(mc.features, mc.labels, config());
  const MulticlassResult res =
      trainMulticlassParallel(mc.features, mc.labels, config(), 1);
  EXPECT_EQ(res.pairsTrained, 6u);
  // One group serializes the pairs; results still match the sequential
  // trainer exactly.
  EXPECT_DOUBLE_EQ(res.model.accuracy(mc.features, mc.labels),
                   seq.model.accuracy(mc.features, mc.labels));
}

TEST(MulticlassParallelTest, MoreGroupsThanPairsWorks) {
  const auto mc = fourClasses(300, 35);
  const MulticlassResult res =
      trainMulticlassParallel(mc.features, mc.labels, config(), 10);
  EXPECT_EQ(res.pairsTrained, 6u);
}

TEST(MulticlassParallelTest, TreeMethodsSupported) {
  const auto mc = fourClasses(400, 37);
  TrainConfig cfg = config(Method::Cascade);
  const MulticlassResult res =
      trainMulticlassParallel(mc.features, mc.labels, cfg, 2);
  EXPECT_GT(res.model.accuracy(mc.features, mc.labels), 0.9);
}

TEST(MulticlassParallelTest, InvalidGroupCountThrows) {
  const auto mc = fourClasses(100, 39);
  EXPECT_THROW(
      (void)trainMulticlassParallel(mc.features, mc.labels, config(), 0),
      Error);
}

}  // namespace
}  // namespace casvm::core
