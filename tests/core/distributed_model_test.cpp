#include "casvm/core/distributed_model.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdint>

#include "casvm/data/synth.hpp"
#include "casvm/solver/smo.hpp"
#include "casvm/support/error.hpp"

namespace casvm::core {
namespace {

solver::Model constantModel(double bias) {
  return solver::Model(kernel::KernelParams::gaussian(1.0), data::Dataset(),
                       {}, bias);
}

TEST(DistributedModelTest, SingleModelNotRouted) {
  const DistributedModel dm = DistributedModel::single(constantModel(1.0));
  EXPECT_FALSE(dm.isRouted());
  EXPECT_EQ(dm.numModels(), 1u);
}

TEST(DistributedModelTest, RoutedNeedsMatchingCenters) {
  std::vector<solver::Model> models;
  models.push_back(constantModel(1.0));
  EXPECT_THROW(
      (void)DistributedModel::routed(std::move(models),
                                     {{0.0f}, {1.0f}}),
      Error);
}

TEST(DistributedModelTest, RoutesToNearestCenter) {
  // Model 0 always predicts +1 and owns the region near the origin;
  // model 1 always predicts -1 and owns the region near (10, 10).
  std::vector<solver::Model> models;
  models.push_back(constantModel(1.0));
  models.push_back(constantModel(-1.0));
  const DistributedModel dm = DistributedModel::routed(
      std::move(models), {{0.0f, 0.0f}, {10.0f, 10.0f}});
  EXPECT_TRUE(dm.isRouted());

  const auto queries = data::Dataset::fromDense(
      2, {1.0f, 0.5f, 9.0f, 9.5f}, {1, -1});
  EXPECT_EQ(dm.route(queries, 0), 0u);
  EXPECT_EQ(dm.route(queries, 1), 1u);
  EXPECT_EQ(dm.predictFor(queries, 0), 1);
  EXPECT_EQ(dm.predictFor(queries, 1), -1);
  EXPECT_DOUBLE_EQ(dm.accuracy(queries), 1.0);
}

TEST(DistributedModelTest, SingleModelRoutesToZero) {
  const DistributedModel dm = DistributedModel::single(constantModel(1.0));
  const auto queries = data::Dataset::fromDense(1, {5.0f}, {1});
  EXPECT_EQ(dm.route(queries, 0), 0u);
}

TEST(DistributedModelTest, TotalSupportVectorsSums) {
  const auto ds = data::generateTwoGaussians(100, 3, 5.0, 7);
  solver::SolverOptions opts;
  opts.kernel = kernel::KernelParams::gaussian(0.3);
  const solver::Model m = solver::SmoSolver(opts).solve(ds).model;
  std::vector<solver::Model> models{m, m};
  const DistributedModel dm = DistributedModel::routed(
      std::move(models),
      {std::vector<float>(3, 0.0f), std::vector<float>(3, 1.0f)});
  EXPECT_EQ(dm.totalSupportVectors(), 2 * m.numSupportVectors());
}

TEST(DistributedModelTest, PackUnpackRoutedRoundTrip) {
  const auto ds = data::generateTwoGaussians(80, 3, 5.0, 9);
  solver::SolverOptions opts;
  opts.kernel = kernel::KernelParams::gaussian(0.3);
  const solver::Model m = solver::SmoSolver(opts).solve(ds).model;
  std::vector<solver::Model> models{m, constantModel(-1.0)};
  const DistributedModel dm = DistributedModel::routed(
      std::move(models),
      {std::vector<float>(3, 0.0f), std::vector<float>(3, 9.0f)});

  const DistributedModel back = DistributedModel::unpack(dm.pack());
  EXPECT_TRUE(back.isRouted());
  EXPECT_EQ(back.numModels(), 2u);
  const auto test = data::generateTwoGaussians(40, 3, 5.0, 11);
  for (std::size_t i = 0; i < test.rows(); ++i) {
    EXPECT_NEAR(back.decisionFor(test, i), dm.decisionFor(test, i), 1e-12);
  }
}

TEST(DistributedModelTest, PackUnpackSingleRoundTrip) {
  const DistributedModel dm = DistributedModel::single(constantModel(0.5));
  const DistributedModel back = DistributedModel::unpack(dm.pack());
  EXPECT_FALSE(back.isRouted());
  EXPECT_EQ(back.numModels(), 1u);
}

TEST(DistributedModelTest, SaveLoadRoundTrip) {
  std::vector<solver::Model> models{constantModel(1.0), constantModel(-1.0)};
  const DistributedModel dm = DistributedModel::routed(
      std::move(models), {{0.0f}, {5.0f}});
  const std::string path = ::testing::TempDir() + "/casvm_dm_test.bin";
  dm.save(path);
  const DistributedModel back = DistributedModel::load(path);
  EXPECT_EQ(back.numModels(), 2u);
  std::remove(path.c_str());
}

TEST(DistributedModelTest, EmptyModelThrowsOnUse) {
  const DistributedModel dm;
  const auto q = data::Dataset::fromDense(1, {1.0f}, {1});
  EXPECT_THROW((void)dm.decisionFor(q, 0), Error);
}

TEST(DistributedModelTest, TruncatedUnpackThrows) {
  const DistributedModel dm = DistributedModel::single(constantModel(1.0));
  auto bytes = dm.pack();
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW((void)DistributedModel::unpack(bytes), Error);
}

TEST(DistributedModelTest, HostileSubModelCountThrows) {
  const DistributedModel dm = DistributedModel::single(constantModel(1.0));
  auto bytes = dm.pack();
  // The sub-model count is the first u64; a corrupt value claiming 2^64-1
  // models must be rejected before any allocation is sized from it.
  for (std::size_t b = 0; b < sizeof(std::uint64_t); ++b) {
    bytes[b] = std::byte{0xFF};
  }
  EXPECT_THROW((void)DistributedModel::unpack(bytes), Error);
}

}  // namespace
}  // namespace casvm::core
