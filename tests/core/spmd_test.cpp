#include "casvm/core/spmd.hpp"

#include <gtest/gtest.h>

#include "casvm/cluster/partition.hpp"
#include "casvm/data/synth.hpp"
#include "casvm/support/error.hpp"

namespace casvm::core {
namespace {

solver::SolverOptions defaultOptions() {
  solver::SolverOptions opts;
  opts.kernel = kernel::KernelParams::gaussian(0.5);
  return opts;
}

TEST(TrainLocalSvmTest, NormalSolve) {
  const auto ds = data::generateTwoGaussians(100, 4, 5.0, 3);
  const LocalSolve solve = trainLocalSvm(ds, defaultOptions());
  EXPECT_GT(solve.iterations, 0);
  EXPECT_GT(solve.svs, 0);
  EXPECT_EQ(solve.alpha.size(), ds.rows());
  EXPECT_GT(solve.model.accuracy(ds), 0.95);
}

TEST(TrainLocalSvmTest, EmptyDatasetGivesEmptyModel) {
  const LocalSolve solve = trainLocalSvm(data::Dataset(), defaultOptions());
  EXPECT_EQ(solve.iterations, 0);
  EXPECT_TRUE(solve.model.supportVectors().empty());
}

TEST(TrainLocalSvmTest, SingleClassGivesConstantClassifier) {
  const auto pos = data::Dataset::fromDense(2, {1, 2, 3, 4}, {1, 1});
  const LocalSolve solvePos = trainLocalSvm(pos, defaultOptions());
  EXPECT_EQ(solvePos.iterations, 0);
  const auto probe = data::Dataset::fromDense(2, {0, 0}, {1});
  EXPECT_EQ(solvePos.model.predictFor(probe, 0), 1);

  const auto neg = data::Dataset::fromDense(2, {1, 2, 3, 4}, {-1, -1});
  const LocalSolve solveNeg = trainLocalSvm(neg, defaultOptions());
  EXPECT_EQ(solveNeg.model.predictFor(probe, 0), -1);
}

TEST(TrainLocalSvmTest, SingleSampleGivesItsLabel) {
  const auto one = data::Dataset::fromDense(1, {3.0f}, {-1});
  const LocalSolve solve = trainLocalSvm(one, defaultOptions());
  const auto probe = data::Dataset::fromDense(1, {9.0f}, {1});
  EXPECT_EQ(solve.model.predictFor(probe, 0), -1);
}

class ExchangeTest : public ::testing::TestWithParam<int> {};

TEST_P(ExchangeTest, SamplesLandOnOwningRanks) {
  const int P = GetParam();
  data::MixtureSpec spec;
  spec.samples = 240;
  spec.features = 4;
  spec.seed = 13;
  const auto ds = data::generateMixture(spec);
  const cluster::Partition blocks = cluster::blockPartition(ds, P);
  const auto groups = blocks.groups();
  // Destination of each sample: round-robin by global index, reconstructed
  // per-rank from the contiguous block layout.
  std::vector<data::Dataset> received(static_cast<std::size_t>(P));

  net::Engine engine(P);
  engine.run([&](net::Comm& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    const data::Dataset local = ds.subset(groups[r]);
    std::vector<int> assign(local.rows());
    for (std::size_t i = 0; i < local.rows(); ++i) {
      assign[i] = static_cast<int>((groups[r][i]) % P);
    }
    received[r] = exchangeToOwners(comm, local, assign);
  });

  // Every rank holds exactly the samples with globalIndex % P == rank.
  std::size_t total = 0;
  for (int r = 0; r < P; ++r) {
    const std::size_t expected = (ds.rows() + static_cast<std::size_t>(P) -
                                  1 - static_cast<std::size_t>(r)) /
                                 static_cast<std::size_t>(P);
    EXPECT_EQ(received[static_cast<std::size_t>(r)].rows(), expected);
    total += received[static_cast<std::size_t>(r)].rows();
  }
  EXPECT_EQ(total, ds.rows());

  // Content preserved: the multiset of norms matches per destination.
  for (int r = 0; r < P; ++r) {
    std::vector<double> want, got;
    for (std::size_t i = r; i < ds.rows(); i += static_cast<std::size_t>(P)) {
      want.push_back(ds.selfDot(i));
    }
    const auto& mine = received[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < mine.rows(); ++i) {
      got.push_back(mine.selfDot(i));
    }
    std::sort(want.begin(), want.end());
    std::sort(got.begin(), got.end());
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_NEAR(want[i], got[i], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ExchangeTest, ::testing::Values(2, 3, 8));

TEST(ExchangeTest, BadAssignmentThrows) {
  const auto ds = data::generateTwoGaussians(16, 2, 3.0, 17);
  net::Engine engine(2);
  EXPECT_THROW(engine.run([&](net::Comm& comm) {
                 std::vector<int> assign(8, 7);  // rank 7 does not exist
                 const cluster::Partition blocks =
                     cluster::blockPartition(ds, 2);
                 const auto groups = blocks.groups();
                 const data::Dataset local = ds.subset(
                     groups[static_cast<std::size_t>(comm.rank())]);
                 (void)exchangeToOwners(comm, local, assign);
               }),
               Error);
}

}  // namespace
}  // namespace casvm::core
