// End-to-end training on the proc transport (casvm::core × casvm::net):
//
//  * Backend equivalence: the same config trained on the thread and proc
//    backends produces a BITWISE-identical model and identical traffic.
//  * Real-kill chaos: a worker process SIGKILLed mid-solve is respawned
//    by the supervisor, resumes from the newest checkpoint generation,
//    and the recovered run's model is bitwise-identical to the fault-free
//    run's (the acceptance property of the process-isolation PR).
//  * Degraded fallback: a kill with no respawn budget — or a respawn that
//    finds no checkpoint to resume from — falls back to the surviving
//    P-1 partitions exactly like the thread backend's degraded path.

#include "casvm/core/train.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "casvm/ckpt/store.hpp"
#include "casvm/data/registry.hpp"
#include "casvm/obs/trace.hpp"
#include "casvm/support/error.hpp"

namespace fs = std::filesystem;

namespace casvm::core {
namespace {

const data::NamedDataset& toy() {
  static const data::NamedDataset nd = data::standin("toy", 0.5);
  return nd;
}

TrainConfig procConfig(Method method = Method::BkmCa, int P = 4) {
  TrainConfig cfg;
  cfg.method = method;
  cfg.processes = P;
  cfg.solver.kernel = kernel::KernelParams::gaussian(toy().suggestedGamma);
  cfg.solver.C = toy().suggestedC;
  cfg.transport = net::TransportKind::Proc;
  cfg.transportTuning.commTimeoutMs = 20000;
  cfg.transportTuning.respawnBackoffMs = 10;
  cfg.checkpointEvery = 8;  // snapshot often so mid-solve kills can fire
  return cfg;
}

std::string freshDir(const std::string& leaf) {
  const std::string dir = ::testing::TempDir() + "/" + leaf;
  fs::remove_all(dir);
  return dir;
}

TEST(ProcTrainTest, ProcMatchesThreadBitwise) {
  TrainConfig threadCfg = procConfig();
  threadCfg.transport = net::TransportKind::Thread;
  const TrainResult threadRes = train(toy().train, threadCfg);
  const TrainResult procRes = train(toy().train, procConfig());
  EXPECT_EQ(threadRes.model.pack(), procRes.model.pack())
      << "models differ bitwise between backends";
  EXPECT_EQ(threadRes.totalIterations, procRes.totalIterations);
  EXPECT_EQ(threadRes.runStats.traffic.bytes, procRes.runStats.traffic.bytes);
  EXPECT_EQ(threadRes.runStats.traffic.ops, procRes.runStats.traffic.ops);
  EXPECT_EQ(threadRes.initTraffic.bytes, procRes.initTraffic.bytes);
  EXPECT_EQ(threadRes.trainTraffic.bytes, procRes.trainTraffic.bytes);
}

TEST(ProcTrainTest, ProcRunMergesWorkerTraceShards) {
  obs::TraceRecorder recorder;
  TrainConfig cfg = procConfig();
  cfg.trace = &recorder;
  const TrainResult res = train(toy().train, cfg);
  EXPECT_FALSE(res.degraded);
  // One lane per rank, each populated by its worker process and merged
  // from the result-frame shards.
  EXPECT_EQ(recorder.laneCount(), 4u);
  EXPECT_GT(recorder.eventCount(), 0u);
}

TEST(ProcTrainTest, KilledWorkerMidSolveRecoversBitwiseExact) {
  const std::vector<std::byte> expected =
      train(toy().train, procConfig()).model.pack();

  const std::string dir = freshDir("proc_kill_recover");
  ckpt::CheckpointStore store(dir);
  TrainConfig cfg = procConfig();
  cfg.checkpoints = &store;
  cfg.rankRetries = 2;
  cfg.faults = net::FaultPlan::parse("kill:rank=2,phase=solve");
  cfg.supervisorLog = dir + "/supervisor.log";
  const TrainResult res = train(toy().train, cfg);

  // The SIGKILLed worker was respawned and restored full coverage: the
  // run is NOT degraded and rank 2 reports recovered, not failed.
  EXPECT_FALSE(res.degraded);
  EXPECT_TRUE(res.failedRanks.empty());
  ASSERT_EQ(res.recoveredRanks, std::vector<int>{2});
  ASSERT_EQ(res.retriesPerRank.size(), 4u);
  EXPECT_GE(res.retriesPerRank[2], 1);
  EXPECT_GT(res.checkpointsLoaded, 0u);
  EXPECT_EQ(res.coveredFraction, 1.0);
  EXPECT_EQ(res.model.pack(), expected)
      << "recovered model differs from the fault-free run";
}

TEST(ProcTrainTest, KillWithoutRespawnBudgetDegrades) {
  TrainConfig cfg = procConfig();
  // phase=train fires without a checkpoint store; rankRetries stays 0 so
  // the death is final and the run must degrade around partition 2.
  cfg.faults = net::FaultPlan::parse("kill:rank=2,phase=train");
  const TrainResult res = train(toy().train, cfg);
  EXPECT_TRUE(res.degraded);
  EXPECT_EQ(res.failedRanks, std::vector<int>{2});
  EXPECT_TRUE(res.recoveredRanks.empty());
  EXPECT_LT(res.coveredFraction, 1.0);
  ASSERT_EQ(res.coverage.size(), 4u);
  EXPECT_FALSE(res.coverage[2].survived);
  EXPECT_EQ(res.model.numModels(), 3u);
}

TEST(ProcTrainTest, RespawnWithoutCheckpointAbortsNamingRootCause) {
  const std::string dir = freshDir("proc_kill_no_anchor");
  ckpt::CheckpointStore store(dir);
  TrainConfig cfg = procConfig();
  cfg.checkpoints = &store;
  cfg.rankRetries = 1;
  // Killed before the partition checkpoint exists: the respawned worker
  // has no anchor to resume from, and the peers are still blocked in the
  // partitioning collectives, so — exactly like an init-phase crash on
  // the thread backend — the run must abort, and the error must name the
  // missing-anchor root cause rather than a cascade symptom.
  cfg.faults = net::FaultPlan::parse("kill:rank=2,phase=init");
  try {
    (void)train(toy().train, cfg);
    FAIL() << "expected the run to abort";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no partition checkpoint to resume from"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("rank 2"), std::string::npos) << what;
  }
}

TEST(ProcTrainTest, ThreadBackendRejectsKillPlans) {
  TrainConfig cfg = procConfig();
  cfg.transport = net::TransportKind::Thread;
  cfg.faults = net::FaultPlan::parse("kill:rank=2,phase=train");
  try {
    train(toy().train, cfg);
    FAIL() << "expected the thread backend to reject kill plans";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--transport proc"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace casvm::core
