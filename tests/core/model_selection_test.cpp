#include "casvm/core/model_selection.hpp"

#include <gtest/gtest.h>

#include "casvm/data/registry.hpp"
#include "casvm/support/error.hpp"

namespace casvm::core {
namespace {

TrainConfig fastConfig(double gamma = 0.5) {
  TrainConfig cfg;
  cfg.method = Method::RaCa;
  cfg.processes = 4;
  cfg.solver.kernel = kernel::KernelParams::gaussian(gamma);
  return cfg;
}

TEST(CrossValidateTest, FiveFoldOnToy) {
  const auto nd = data::standin("toy", 0.5);
  const CrossValidationResult res =
      crossValidate(nd.train, fastConfig(nd.suggestedGamma), 5);
  ASSERT_EQ(res.foldAccuracies.size(), 5u);
  EXPECT_GT(res.meanAccuracy, 0.9);
  EXPECT_LT(res.stddev, 0.1);
  EXPECT_GT(res.totalIterations, 0);
}

TEST(CrossValidateTest, DeterministicInSeed) {
  const auto nd = data::standin("toy", 0.3);
  const auto a = crossValidate(nd.train, fastConfig(), 3, 7);
  const auto b = crossValidate(nd.train, fastConfig(), 3, 7);
  EXPECT_EQ(a.foldAccuracies, b.foldAccuracies);
}

TEST(CrossValidateTest, StratificationSurvivesImbalance) {
  // face stand-in: ~5% positives. Unstratified folds would regularly get
  // zero positives and crash the solver; stratified folds must not.
  const auto nd = data::standin("face", 0.4);
  const CrossValidationResult res =
      crossValidate(nd.train, fastConfig(nd.suggestedGamma), 5);
  EXPECT_EQ(res.foldAccuracies.size(), 5u);
  for (double a : res.foldAccuracies) EXPECT_GT(a, 0.5);
}

TEST(CrossValidateTest, WorksWithTreeMethods) {
  const auto nd = data::standin("toy", 0.3);
  TrainConfig cfg = fastConfig();
  cfg.method = Method::Cascade;
  cfg.processes = 8;
  const CrossValidationResult res = crossValidate(nd.train, cfg, 3);
  EXPECT_GT(res.meanAccuracy, 0.9);
}

TEST(CrossValidateTest, InvalidInputsThrow) {
  const auto nd = data::standin("toy", 0.1);
  EXPECT_THROW((void)crossValidate(nd.train, fastConfig(), 1), Error);
  const auto tiny = data::Dataset::fromDense(1, {1, 2, 3, 4}, {1, -1, 1, -1});
  EXPECT_THROW((void)crossValidate(tiny, fastConfig(), 4), Error);
}

TEST(GridSearchTest, FindsReasonableRegion) {
  const auto nd = data::standin("toy", 0.4);
  // gamma 0.5 is the tuned value; 50.0 badly overfits (kernel too narrow).
  const GridSearchResult res = gridSearch(nd.train, fastConfig(),
                                          {0.5, 50.0}, {1.0}, 3);
  ASSERT_EQ(res.evaluated.size(), 2u);
  EXPECT_DOUBLE_EQ(res.best.gamma, 0.5);
  EXPECT_GT(res.best.meanAccuracy, 0.9);
}

TEST(GridSearchTest, EvaluatesFullGrid) {
  const auto nd = data::standin("toy", 0.25);
  const GridSearchResult res = gridSearch(nd.train, fastConfig(),
                                          {0.25, 0.5}, {0.5, 1.0, 2.0}, 2);
  EXPECT_EQ(res.evaluated.size(), 6u);
  // Best must be one of the evaluated points.
  bool found = false;
  for (const GridPoint& p : res.evaluated) {
    found |= (p.gamma == res.best.gamma && p.C == res.best.C &&
              p.meanAccuracy == res.best.meanAccuracy);
  }
  EXPECT_TRUE(found);
}

TEST(GridSearchTest, TiesPreferSmallerC) {
  const auto nd = data::standin("toy", 0.25);
  // On easy data many (gamma, C) points tie at the same accuracy; the
  // winner must then be the smallest C among the tied best.
  const GridSearchResult res = gridSearch(nd.train, fastConfig(),
                                          {0.5}, {4.0, 2.0, 1.0}, 2);
  double bestAcc = 0.0;
  for (const GridPoint& p : res.evaluated) {
    bestAcc = std::max(bestAcc, p.meanAccuracy);
  }
  double smallestTiedC = 1e300;
  for (const GridPoint& p : res.evaluated) {
    if (p.meanAccuracy == bestAcc) smallestTiedC = std::min(smallestTiedC, p.C);
  }
  EXPECT_DOUBLE_EQ(res.best.C, smallestTiedC);
}

TEST(GridSearchTest, EmptyGridThrows) {
  const auto nd = data::standin("toy", 0.2);
  EXPECT_THROW((void)gridSearch(nd.train, fastConfig(), {}, {1.0}, 2), Error);
}

}  // namespace
}  // namespace casvm::core
