// Global-method correctness (Dis-SMO, Dis-SMO + shrinking, PBM):
//
//  * Class-weight parity: P=1 Dis-SMO with asymmetric per-class boxes is
//    the serial solver run through the election machinery, so it must
//    land on the same support-vector set and bias. (Regression: the
//    distributed path used to apply plain C to both classes.)
//  * Finite-bias fallback: a degenerate per-class box (negativeWeight so
//    small no negative can become a support vector) must still produce a
//    finite bias, exactly like the serial solver's KKT-bound fallback.
//  * Objective convergence: the two communication-avoiding middle-ground
//    methods solve the SAME optimization problem as Dis-SMO, so their
//    dual objective must match the exact serial solver within the KKT
//    tolerance (1e-3 relative) — communication is what they save, not
//    solution quality.
//  * Shrink engagement: with a cadence small enough to fire mid-run,
//    DisSmoShrink must report when shrinking engaged and must absorb
//    elected-row broadcasts through the replicated cache.

#include "casvm/core/train.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "casvm/data/registry.hpp"
#include "casvm/data/synth.hpp"
#include "casvm/solver/smo.hpp"

namespace casvm::core {
namespace {

solver::SolverOptions weightedOptions() {
  solver::SolverOptions opts;
  opts.kernel = kernel::KernelParams::gaussian(0.5);
  opts.C = 1.0;
  opts.positiveWeight = 3.0;
  opts.negativeWeight = 0.5;
  return opts;
}

/// Dual objective sum(alpha) - 1/2 sum_ij a_i a_j y_i y_j K(i,j) recomputed
/// from a finished model's SV expansion (alphaY carries alpha_i y_i).
double dualObjective(const solver::Model& model) {
  const data::Dataset& svs = model.supportVectors();
  const std::vector<double>& ay = model.alphaY();
  const kernel::Kernel kern(model.kernelParams());
  double linear = 0.0;
  double quad = 0.0;
  for (std::size_t i = 0; i < ay.size(); ++i) {
    linear += std::abs(ay[i]);
    quad += ay[i] * ay[i] * kern.eval(svs, i, i);
    for (std::size_t j = i + 1; j < ay.size(); ++j) {
      quad += 2.0 * ay[i] * ay[j] * kern.eval(svs, i, j);
    }
  }
  return linear - 0.5 * quad;
}

TEST(ClassWeightParityTest, SingleRankDisSmoMatchesSerialWeightedSolve) {
  const auto ds = data::generateTwoGaussians(200, 4, 2.0, 31);
  const solver::SolverOptions opts = weightedOptions();
  const solver::SolverResult serial = solver::SmoSolver(opts).solve(ds);
  ASSERT_TRUE(serial.converged);

  TrainConfig cfg;
  cfg.method = Method::DisSmo;
  cfg.processes = 1;
  cfg.solver = opts;
  const TrainResult dist = train(ds, cfg);

  // One rank, one election per iteration over the whole problem: the
  // trajectory is the serial solver's, so the SV set matches exactly.
  const solver::Model& dm = dist.model.model(0);
  EXPECT_EQ(dm.numSupportVectors(), serial.model.numSupportVectors());
  EXPECT_EQ(dm.supportVectors().packAll(),
            serial.model.supportVectors().packAll());
  EXPECT_NEAR(dm.bias(), serial.model.bias(),
              1e-9 * std::max(1.0, std::abs(serial.model.bias())));
  EXPECT_NEAR(dualObjective(dm), serial.objective,
              1e-6 * std::max(1.0, std::abs(serial.objective)));
}

TEST(ClassWeightParityTest, MultiRankDisSmoHonorsPerClassBoxes) {
  const auto ds = data::generateTwoGaussians(240, 4, 1.5, 37);
  const solver::SolverOptions opts = weightedOptions();
  TrainConfig cfg;
  cfg.method = Method::DisSmo;
  cfg.processes = 4;
  cfg.solver = opts;
  const TrainResult dist = train(ds, cfg);

  // Every alpha must respect its class's box, not the unweighted C: a
  // positive SV may exceed C (cap 3C) and a negative must stay under C/2.
  const solver::Model& dm = dist.model.model(0);
  const std::vector<double>& ay = dm.alphaY();
  bool positiveAboveC = false;
  for (double v : ay) {
    const double a = std::abs(v);
    if (v > 0.0) {
      EXPECT_LE(a, opts.C * opts.positiveWeight + 1e-9);
      positiveAboveC = positiveAboveC || a > opts.C + 1e-6;
    } else {
      EXPECT_LE(a, opts.C * opts.negativeWeight + 1e-9);
    }
  }
  // The overlap is heavy enough that the enlarged positive box is used;
  // under the old plain-C clamp this never happens.
  EXPECT_TRUE(positiveAboveC);

  // And the solution still matches the serial weighted objective.
  const solver::SolverResult serial = solver::SmoSolver(opts).solve(ds);
  EXPECT_NEAR(dualObjective(dm), serial.objective,
              1e-3 * std::max(1.0, std::abs(serial.objective)));
}

TEST(ClassWeightParityTest, DegenerateNegativeBoxKeepsBiasFinite) {
  // negativeWeight ~ 0 starves the negative class of box room entirely;
  // the working-set scan can then find no low candidate and the naive
  // threshold midpoint is NaN/inf. The distributed solve must take the
  // same finite fallback as the serial one.
  const auto ds = data::generateTwoGaussians(120, 3, 4.0, 41);
  solver::SolverOptions opts;
  opts.kernel = kernel::KernelParams::gaussian(0.5);
  opts.C = 1.0;
  opts.negativeWeight = 1e-12;
  for (int P : {1, 4}) {
    TrainConfig cfg;
    cfg.method = Method::DisSmo;
    cfg.processes = P;
    cfg.solver = opts;
    const TrainResult res = train(ds, cfg);
    const solver::Model& m = res.model.model(0);
    EXPECT_TRUE(std::isfinite(m.bias())) << "P=" << P;
    const std::vector<float> probe(ds.cols(), 0.0f);
    EXPECT_TRUE(std::isfinite(m.decision(probe))) << "P=" << P;
  }
}

class GlobalObjectiveTest : public ::testing::TestWithParam<Method> {};

TEST_P(GlobalObjectiveTest, ReachesExactSerialObjective) {
  const auto nd = data::standin("toy", 0.5);
  solver::SolverOptions opts;
  opts.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
  opts.C = nd.suggestedC;
  const solver::SolverResult serial =
      solver::SmoSolver(opts).solve(nd.train);
  ASSERT_TRUE(serial.converged);

  TrainConfig cfg;
  cfg.method = GetParam();
  cfg.processes = 4;
  cfg.solver = opts;
  if (GetParam() == Method::DisSmoShrink) cfg.solver.shrinkInterval = 64;
  const TrainResult res = train(nd.train, cfg);

  EXPECT_NEAR(dualObjective(res.model.model(0)), serial.objective,
              1e-3 * std::abs(serial.objective))
      << methodName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Methods, GlobalObjectiveTest,
                         ::testing::Values(Method::DisSmo,
                                           Method::DisSmoShrink, Method::Pbm),
                         [](const ::testing::TestParamInfo<Method>& info) {
                           std::string n = methodName(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(DisSmoShrinkTest, EngagesAndAbsorbsRowBroadcasts) {
  const auto nd = data::standin("toy", 0.5);
  TrainConfig cfg;
  cfg.method = Method::DisSmoShrink;
  cfg.processes = 4;
  cfg.solver.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
  cfg.solver.C = nd.suggestedC;
  cfg.solver.shrinkInterval = 64;
  const TrainResult res = train(nd.train, cfg);

  EXPECT_GE(res.shrinkEngagedIteration, 0)
      << "shrinking never engaged despite the tight cadence";
  EXPECT_GT(res.electedRowBcastsSkipped, 0)
      << "cache absorbed no elected-row broadcasts after engaging";

  // The savings are real traffic, not just a counter: the same run
  // without shrinking moves strictly more bytes.
  TrainConfig plain = cfg;
  plain.method = Method::DisSmo;
  const TrainResult base = train(nd.train, plain);
  EXPECT_LT(res.totalTrafficBytes(), base.totalTrafficBytes());
}

TEST(DisSmoShrinkTest, PlainDisSmoReportsInertShrinkFields) {
  const auto ds = data::generateTwoGaussians(120, 3, 4.0, 43);
  TrainConfig cfg;
  cfg.method = Method::DisSmo;
  cfg.processes = 2;
  cfg.solver.kernel = kernel::KernelParams::gaussian(0.5);
  const TrainResult res = train(ds, cfg);
  EXPECT_EQ(res.shrinkEngagedIteration, -1);
  EXPECT_EQ(res.pairIterations, 0);
}

TEST(PbmTest, ReportsRoundStructure) {
  const auto nd = data::standin("toy", 0.5);
  TrainConfig cfg;
  cfg.method = Method::Pbm;
  cfg.processes = 4;
  cfg.solver.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
  cfg.solver.C = nd.suggestedC;
  const TrainResult res = train(nd.train, cfg);

  // totalIterations = block-solve iterations + global pair corrections;
  // both parts must be present and separable for the comm model.
  EXPECT_GT(res.pairIterations, 0);
  EXPECT_GT(res.totalIterations, res.pairIterations);
  EXPECT_GT(res.model.totalSupportVectors(), 0u);
}

}  // namespace
}  // namespace casvm::core
