#include <gtest/gtest.h>

#include <numeric>

#include "casvm/net/comm.hpp"

namespace casvm::net {
namespace {

/// Collectives must be correct for any rank count, including non-powers of
/// two (the binomial trees must handle ragged shapes). Parameterized over P.
class CollectiveTest : public ::testing::TestWithParam<int> {
 protected:
  int P() const { return GetParam(); }

  RunStats run(const std::function<void(Comm&)>& fn) {
    Engine engine(P());
    return engine.run(fn);
  }
};

TEST_P(CollectiveTest, BarrierCompletes) {
  run([](Comm& c) {
    for (int i = 0; i < 3; ++i) c.barrier();
  });
}

TEST_P(CollectiveTest, BcastScalarFromRankZero) {
  run([](Comm& c) {
    int value = c.rank() == 0 ? 99 : -1;
    c.bcast(value, 0);
    EXPECT_EQ(value, 99);
  });
}

TEST_P(CollectiveTest, BcastFromEveryRoot) {
  run([&](Comm& c) {
    for (int root = 0; root < c.size(); ++root) {
      double value = c.rank() == root ? root * 1.5 : -1.0;
      c.bcast(value, root);
      EXPECT_EQ(value, root * 1.5);
    }
  });
}

TEST_P(CollectiveTest, BcastVectorResizesNonRoots) {
  run([](Comm& c) {
    std::vector<int> v;
    if (c.rank() == 0) v = {5, 6, 7, 8};
    c.bcast(v, 0);
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[3], 8);
  });
}

TEST_P(CollectiveTest, BcastEmptyVector) {
  run([](Comm& c) {
    std::vector<int> v;
    if (c.rank() != 0) v = {1, 2, 3};  // must be cleared by the bcast
    c.bcast(v, 0);
    EXPECT_TRUE(v.empty());
  });
}

TEST_P(CollectiveTest, ReduceSumOnRoot) {
  run([&](Comm& c) {
    const long long result = c.reduce(
        static_cast<long long>(c.rank() + 1),
        [](long long a, long long b) { return a + b; }, 0);
    if (c.rank() == 0) {
      EXPECT_EQ(result, static_cast<long long>(P()) * (P() + 1) / 2);
    }
  });
}

TEST_P(CollectiveTest, ReduceToNonZeroRoot) {
  if (P() < 2) GTEST_SKIP();
  run([&](Comm& c) {
    const int result =
        c.reduce(1, [](int a, int b) { return a + b; }, P() - 1);
    if (c.rank() == P() - 1) {
      EXPECT_EQ(result, P());
    }
  });
}

TEST_P(CollectiveTest, AllreduceSumEverywhere) {
  run([&](Comm& c) {
    const double result = c.allreduceSum(static_cast<double>(c.rank()));
    EXPECT_DOUBLE_EQ(result, P() * (P() - 1) / 2.0);
  });
}

TEST_P(CollectiveTest, AllreduceMax) {
  run([&](Comm& c) {
    EXPECT_DOUBLE_EQ(c.allreduceMax(static_cast<double>(c.rank() * 2)),
                     (P() - 1) * 2.0);
  });
}

TEST_P(CollectiveTest, AllreduceVectorElementwise) {
  run([&](Comm& c) {
    std::vector<long long> v{1, static_cast<long long>(c.rank()), 100};
    v = c.allreduce(std::move(v),
                    [](long long a, long long b) { return a + b; });
    EXPECT_EQ(v[0], P());
    EXPECT_EQ(v[1], static_cast<long long>(P()) * (P() - 1) / 2);
    EXPECT_EQ(v[2], 100LL * P());
  });
}

TEST_P(CollectiveTest, GatherOnRoot) {
  run([&](Comm& c) {
    const std::vector<int> all = c.gather(c.rank() * 10, 0);
    if (c.rank() == 0) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(P()));
      for (int r = 0; r < P(); ++r) EXPECT_EQ(all[r], r * 10);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectiveTest, GathervVariableLengths) {
  run([&](Comm& c) {
    std::vector<double> mine(static_cast<std::size_t>(c.rank()), 1.5);
    const auto parts = c.gatherv(mine, 0);
    if (c.rank() == 0) {
      ASSERT_EQ(parts.size(), static_cast<std::size_t>(P()));
      for (int r = 0; r < P(); ++r) {
        EXPECT_EQ(parts[r].size(), static_cast<std::size_t>(r));
      }
    }
  });
}

TEST_P(CollectiveTest, ScattervDeliversParts) {
  run([&](Comm& c) {
    std::vector<std::vector<int>> parts;
    if (c.rank() == 0) {
      for (int r = 0; r < P(); ++r) {
        parts.push_back(std::vector<int>(static_cast<std::size_t>(r + 1), r));
      }
    }
    const std::vector<int> mine = c.scatterv(parts, 0);
    ASSERT_EQ(mine.size(), static_cast<std::size_t>(c.rank() + 1));
    for (int v : mine) EXPECT_EQ(v, c.rank());
  });
}

TEST_P(CollectiveTest, AllgatherEverywhere) {
  run([&](Comm& c) {
    const std::vector<int> all = c.allgather(c.rank() + 7);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(P()));
    for (int r = 0; r < P(); ++r) EXPECT_EQ(all[r], r + 7);
  });
}

TEST_P(CollectiveTest, AllgathervConcatenatesInRankOrder) {
  run([&](Comm& c) {
    const std::vector<int> mine{c.rank(), c.rank()};
    const std::vector<int> flat = c.allgatherv(mine);
    ASSERT_EQ(flat.size(), static_cast<std::size_t>(2 * P()));
    for (int r = 0; r < P(); ++r) {
      EXPECT_EQ(flat[2 * r], r);
      EXPECT_EQ(flat[2 * r + 1], r);
    }
  });
}

TEST_P(CollectiveTest, MinlocFindsGlobalMinimum) {
  run([&](Comm& c) {
    // Rank r contributes value P - r, so the max rank holds the minimum.
    const auto result = c.allreduceMinloc(
        static_cast<double>(P() - c.rank()), c.rank());
    EXPECT_DOUBLE_EQ(result.value, 1.0);
    EXPECT_EQ(result.index, P() - 1);
  });
}

TEST_P(CollectiveTest, MaxlocFindsGlobalMaximum) {
  run([&](Comm& c) {
    const auto result = c.allreduceMaxloc(
        static_cast<double>(c.rank() * 3), c.rank() + 100);
    EXPECT_DOUBLE_EQ(result.value, (P() - 1) * 3.0);
    EXPECT_EQ(result.index, P() - 1 + 100);
  });
}

TEST_P(CollectiveTest, MinlocTieBreaksToSmallestIndex) {
  run([](Comm& c) {
    const auto result = c.allreduceMinloc(5.0, c.rank());
    EXPECT_EQ(result.index, 0);
  });
}

TEST_P(CollectiveTest, CollectivesComposeRepeatedly) {
  run([&](Comm& c) {
    long long acc = 0;
    for (int round = 0; round < 20; ++round) {
      acc = c.allreduceSum(static_cast<long long>(c.rank() + round));
    }
    EXPECT_EQ(acc, static_cast<long long>(P()) * (P() - 1) / 2 +
                       static_cast<long long>(P()) * 19);
  });
}


TEST_P(CollectiveTest, AlltoallvDeliversPersonalizedParts) {
  run([&](Comm& c) {
    // Rank r sends {r*100 + dst} repeated (dst+1) times to each dst.
    std::vector<std::vector<int>> parts(static_cast<std::size_t>(P()));
    for (int dst = 0; dst < P(); ++dst) {
      parts[static_cast<std::size_t>(dst)].assign(
          static_cast<std::size_t>(dst + 1), c.rank() * 100 + dst);
    }
    const auto received = c.alltoallv(std::move(parts));
    ASSERT_EQ(received.size(), static_cast<std::size_t>(P()));
    for (int src = 0; src < P(); ++src) {
      const auto& part = received[static_cast<std::size_t>(src)];
      ASSERT_EQ(part.size(), static_cast<std::size_t>(c.rank() + 1));
      for (int v : part) EXPECT_EQ(v, src * 100 + c.rank());
    }
  });
}

TEST_P(CollectiveTest, AlltoallvEmptyParts) {
  run([&](Comm& c) {
    std::vector<std::vector<double>> parts(static_cast<std::size_t>(P()));
    // Only even ranks send anything, and only to rank 0.
    if (c.rank() % 2 == 0) parts[0] = {double(c.rank())};
    const auto received = c.alltoallv(std::move(parts));
    if (c.rank() == 0) {
      for (int src = 0; src < P(); ++src) {
        const auto& part = received[static_cast<std::size_t>(src)];
        if (src % 2 == 0) {
          ASSERT_EQ(part.size(), 1u);
          EXPECT_EQ(part[0], double(src));
        } else {
          EXPECT_TRUE(part.empty());
        }
      }
    }
  });
}

TEST_P(CollectiveTest, AlltoallvBytesRoundTrip) {
  run([&](Comm& c) {
    std::vector<std::vector<std::byte>> parts(static_cast<std::size_t>(P()));
    for (int dst = 0; dst < P(); ++dst) {
      parts[static_cast<std::size_t>(dst)].assign(
          static_cast<std::size_t>(c.rank() + dst),
          std::byte{static_cast<unsigned char>(c.rank())});
    }
    const auto received = c.alltoallvBytes(std::move(parts));
    for (int src = 0; src < P(); ++src) {
      const auto& part = received[static_cast<std::size_t>(src)];
      ASSERT_EQ(part.size(), static_cast<std::size_t>(src + c.rank()));
      for (std::byte b : part) {
        EXPECT_EQ(b, std::byte{static_cast<unsigned char>(src)});
      }
    }
  });
}

TEST_P(CollectiveTest, AlltoallvWrongArityThrows) {
  if (P() < 2) GTEST_SKIP();
  EXPECT_THROW(run([&](Comm& c) {
                 std::vector<std::vector<int>> tooFew(
                     static_cast<std::size_t>(P() - 1));
                 (void)c.alltoallv(std::move(tooFew));
               }),
               Error);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

// ---------------------------------------------------------------------------
// Failure unwinding: a rank that dies before entering a collective must not
// leave its peers parked inside the collective forever — the abort wakes
// every blocked internal receive and the run unwinds with the root cause.
// ---------------------------------------------------------------------------

TEST(CollectiveUnwindTest, RootFailureBeforeBcastUnblocksPeers) {
  Engine engine(4);
  try {
    engine.run([](Comm& c) {
      if (c.rank() == 0) throw Error("root died before bcast");
      int v = 0;
      c.bcast(v, 0);  // peers park on the binomial tree
    });
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("root died before bcast"),
              std::string::npos);
  }
}

TEST(CollectiveUnwindTest, LeafFailureBeforeReduceUnblocksTree) {
  // The last rank never contributes; everyone upstream of it in the
  // binomial tree (ultimately the root) is blocked and must be woken.
  Engine engine(8);
  try {
    engine.run([](Comm& c) {
      if (c.rank() == c.size() - 1) throw Error("leaf died before reduce");
      (void)c.reduce(c.rank(), [](int a, int b) { return a + b; }, 0);
    });
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("leaf died before reduce"),
              std::string::npos);
  }
}

TEST(CollectiveUnwindTest, FailureBeforeAlltoallvUnblocksAllReceivers) {
  // Alltoallv blocks every rank on a direct receive from every other; a
  // missing participant therefore blocks all of them at once.
  Engine engine(4);
  try {
    engine.run([](Comm& c) {
      if (c.rank() == 0) throw Error("rank 0 died before alltoallv");
      std::vector<std::vector<int>> parts(static_cast<std::size_t>(c.size()));
      for (auto& p : parts) p = {c.rank()};
      (void)c.alltoallv(std::move(parts));
    });
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("rank 0 died before alltoallv"),
              std::string::npos);
  }
}

TEST(CollectiveUnwindTest, FailureBeforeBarrierUnblocksEveryRank) {
  Engine engine(5);
  EXPECT_THROW(engine.run([](Comm& c) {
                 if (c.rank() == 2) throw Error("died before barrier");
                 c.barrier();
               }),
               Error);
}

}  // namespace
}  // namespace casvm::net
