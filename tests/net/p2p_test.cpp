#include <gtest/gtest.h>

#include <cstring>

#include "casvm/net/comm.hpp"

namespace casvm::net {
namespace {

/// Run an SPMD function on `size` ranks and return the stats.
RunStats run(int size, const std::function<void(Comm&)>& fn) {
  Engine engine(size);
  return engine.run(fn);
}

TEST(P2pTest, ScalarRoundTrip) {
  run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 42);
    } else {
      EXPECT_EQ(c.recv<int>(0), 42);
    }
  });
}

TEST(P2pTest, DoubleAndStructRoundTrip) {
  struct Payload {
    double x;
    int y;
  };
  run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 3.25);
      c.send(1, Payload{1.5, 7});
    } else {
      EXPECT_EQ(c.recv<double>(0), 3.25);
      const Payload p = c.recv<Payload>(0);
      EXPECT_EQ(p.x, 1.5);
      EXPECT_EQ(p.y, 7);
    }
  });
}

TEST(P2pTest, VectorRoundTrip) {
  run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, std::vector<float>{1.0f, 2.0f, 3.0f});
    } else {
      const auto v = c.recvVec<float>(0);
      ASSERT_EQ(v.size(), 3u);
      EXPECT_EQ(v[1], 2.0f);
    }
  });
}

TEST(P2pTest, EmptyVectorRoundTrip) {
  run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, std::vector<double>{});
    } else {
      EXPECT_TRUE(c.recvVec<double>(0).empty());
    }
  });
}

TEST(P2pTest, FifoOrderPerTag) {
  run(2, [](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 50; ++i) c.send(1, i, 3);
    } else {
      for (int i = 0; i < 50; ++i) EXPECT_EQ(c.recv<int>(0, 3), i);
    }
  });
}

TEST(P2pTest, TagsAreIndependentChannels) {
  run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 1, /*tag=*/10);
      c.send(1, 2, /*tag=*/20);
    } else {
      // Receive in the opposite order of sending: tags match, not order.
      EXPECT_EQ(c.recv<int>(0, 20), 2);
      EXPECT_EQ(c.recv<int>(0, 10), 1);
    }
  });
}

TEST(P2pTest, SourcesAreIndependentChannels) {
  run(3, [](Comm& c) {
    if (c.rank() == 1) {
      c.send(0, 100);
    } else if (c.rank() == 2) {
      c.send(0, 200);
    } else {
      // Receive from rank 2 first even though rank 1 may have sent first.
      EXPECT_EQ(c.recv<int>(2), 200);
      EXPECT_EQ(c.recv<int>(1), 100);
    }
  });
}

TEST(P2pTest, SelfSendThrows) {
  EXPECT_THROW(run(2, [](Comm& c) {
                 if (c.rank() == 0) c.send(0, 1);
               }),
               Error);
}

TEST(P2pTest, BadDestinationThrows) {
  EXPECT_THROW(run(2, [](Comm& c) {
                 if (c.rank() == 0) c.send(5, 1);
               }),
               Error);
}

TEST(P2pTest, ReservedTagRejected) {
  EXPECT_THROW(run(2, [](Comm& c) {
                 if (c.rank() == 0) {
                   const int x = 1;
                   c.sendBytes(1, Comm::kUserTagLimit + 1, &x, sizeof(x));
                 }
               }),
               Error);
}

TEST(P2pTest, TagContractSymmetricOnSendAndRecv) {
  // Both halves of the kUserTagLimit contract: the exact boundary tag and
  // negative tags are rejected on send AND on recv, with a diagnostic that
  // names the offending tag.
  const auto expectTagError = [](const std::function<void(Comm&)>& fn,
                                 const std::string& needle) {
    try {
      run(2, fn);
      FAIL() << "expected throw for " << needle;
    } catch (const Error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("user tag"), std::string::npos) << what;
      EXPECT_NE(what.find(needle), std::string::npos) << what;
    }
  };
  expectTagError(
      [](Comm& c) {
        if (c.rank() == 0) {
          const int x = 1;
          c.sendBytes(1, Comm::kUserTagLimit, &x, sizeof(x));
        }
      },
      std::to_string(Comm::kUserTagLimit));
  expectTagError(
      [](Comm& c) {
        if (c.rank() == 1) (void)c.recvBytes(0, Comm::kUserTagLimit);
      },
      std::to_string(Comm::kUserTagLimit));
  expectTagError(
      [](Comm& c) {
        if (c.rank() == 0) {
          const int x = 1;
          c.sendBytes(1, -1, &x, sizeof(x));
        }
      },
      "-1");
  expectTagError([](Comm& c) {
    if (c.rank() == 1) (void)c.recvBytes(0, -3);
  }, "-3");
}

TEST(P2pTest, LargestUserTagAccepted) {
  run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 99, Comm::kUserTagLimit - 1);
    } else {
      EXPECT_EQ(c.recv<int>(0, Comm::kUserTagLimit - 1), 99);
    }
  });
}

TEST(P2pTest, SizeMismatchThrows) {
  EXPECT_THROW(run(2, [](Comm& c) {
                 if (c.rank() == 0) {
                   c.send(1, std::int32_t{1});
                 } else {
                   c.recv<std::int64_t>(0);
                 }
               }),
               Error);
}

TEST(P2pTest, ManyMessagesStress) {
  run(4, [](Comm& c) {
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    for (int i = 0; i < 500; ++i) c.send(next, c.rank() * 1000 + i);
    long long sum = 0;
    for (int i = 0; i < 500; ++i) sum += c.recv<int>(prev);
    EXPECT_EQ(sum, 500LL * prev * 1000 + 500LL * 499 / 2);
  });
}

TEST(P2pTest, RawBytesRoundTrip) {
  run(2, [](Comm& c) {
    if (c.rank() == 0) {
      const char msg[] = "hello casvm";
      c.sendBytes(1, 7, msg, sizeof(msg));
    } else {
      const auto payload = c.recvBytes(0, 7);
      EXPECT_STREQ(reinterpret_cast<const char*>(payload.data()),
                   "hello casvm");
    }
  });
}

}  // namespace
}  // namespace casvm::net
