// Transport parity: every collective and the point-to-point tag contract
// must behave identically on the thread and proc backends — bitwise-equal
// payloads and an identical TrafficSnapshot. The digests each rank
// computes are shipped back from the worker processes through the
// engine's result channel (on the thread backend the ranks write the
// parent's memory directly, so the same harness covers both).
//
// Note: gtest assertions inside the rank body would be lost in a forked
// worker; bodies only compute digests, and all assertions run in the
// parent.

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "casvm/net/comm.hpp"

namespace casvm::net {
namespace {

using RankBody = std::function<void(Comm&, std::vector<double>&)>;

struct BackendResult {
  std::vector<std::vector<double>> digests;
  TrafficSnapshot traffic;
};

BackendResult runOn(TransportKind kind, int size, const RankBody& body) {
  Engine engine(size);
  TransportTuning tuning;
  tuning.commTimeoutMs = 20000;
  engine.setTransport(kind, tuning);
  std::vector<std::vector<double>> digests(static_cast<std::size_t>(size));
  Engine::ResultChannel channel;
  channel.serialize = [&](int rank) {
    const auto& d = digests[static_cast<std::size_t>(rank)];
    std::vector<std::byte> out(d.size() * sizeof(double));
    if (!out.empty()) std::memcpy(out.data(), d.data(), out.size());
    return out;
  };
  channel.absorb = [&](int rank, const std::vector<std::byte>& bytes) {
    auto& d = digests[static_cast<std::size_t>(rank)];
    d.resize(bytes.size() / sizeof(double));
    if (!bytes.empty()) std::memcpy(d.data(), bytes.data(), bytes.size());
  };
  engine.setResultChannel(std::move(channel));
  const RunStats stats = engine.run([&](Comm& comm) {
    body(comm, digests[static_cast<std::size_t>(comm.rank())]);
  });
  return {std::move(digests), stats.traffic};
}

/// Run `body` on both backends and require bitwise-identical digests and
/// an identical traffic matrix (bytes AND ops, every edge).
void expectParity(int size, const RankBody& body) {
  const BackendResult thread = runOn(TransportKind::Thread, size, body);
  const BackendResult proc = runOn(TransportKind::Proc, size, body);
  ASSERT_EQ(thread.digests.size(), proc.digests.size());
  for (std::size_t r = 0; r < thread.digests.size(); ++r) {
    const auto& a = thread.digests[r];
    const auto& b = proc.digests[r];
    ASSERT_EQ(a.size(), b.size()) << "rank " << r << " digest length differs";
    if (!a.empty()) {
      EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(double)))
          << "rank " << r << " digest differs bitwise";
    }
  }
  EXPECT_EQ(thread.traffic.size, proc.traffic.size);
  EXPECT_EQ(thread.traffic.bytes, proc.traffic.bytes)
      << "per-edge byte counts differ between backends";
  EXPECT_EQ(thread.traffic.ops, proc.traffic.ops)
      << "per-edge message counts differ between backends";
}

TEST(TransportParityTest, BcastScalarAndVector) {
  expectParity(4, [](Comm& comm, std::vector<double>& digest) {
    double x = comm.rank() == 1 ? 0.5 : -1.0;
    comm.bcast(x, 1);
    std::vector<double> v;
    if (comm.rank() == 0) v = {1.25, -2.5, 1e300, 0.0};
    comm.bcast(v, 0);
    digest.push_back(x);
    digest.insert(digest.end(), v.begin(), v.end());
  });
}

TEST(TransportParityTest, ReduceAndAllreduce) {
  expectParity(4, [](Comm& comm, std::vector<double>& digest) {
    const double mine = 1.0 / (comm.rank() + 3);
    const double sum =
        comm.reduce(mine, [](double a, double b) { return a + b; }, 2);
    const double all = comm.allreduceSum(mine);
    std::vector<double> v = {mine, -mine, double(comm.rank())};
    v = comm.allreduce(v, [](double a, double b) { return a > b ? a : b; });
    digest.push_back(sum);
    digest.push_back(all);
    digest.insert(digest.end(), v.begin(), v.end());
  });
}

TEST(TransportParityTest, GatherScattervRoundTrip) {
  expectParity(4, [](Comm& comm, std::vector<double>& digest) {
    const auto all = comm.gather(double(comm.rank()) * 1.5, 1);
    digest.insert(digest.end(), all.begin(), all.end());
    // Variable-length parts, including an empty one.
    std::vector<double> mine(static_cast<std::size_t>(comm.rank()),
                             double(comm.rank()) + 0.25);
    const auto parts = comm.gatherv(mine, 0);
    for (const auto& p : parts) digest.insert(digest.end(), p.begin(), p.end());
    const auto back = comm.scatterv(parts, 0);
    digest.insert(digest.end(), back.begin(), back.end());
  });
}

TEST(TransportParityTest, AllgatherAndAllgatherv) {
  expectParity(4, [](Comm& comm, std::vector<double>& digest) {
    const auto all = comm.allgather(double(comm.rank()) - 0.5);
    digest.insert(digest.end(), all.begin(), all.end());
    std::vector<double> mine(static_cast<std::size_t>(4 - comm.rank()),
                             1.0 / (comm.rank() + 1));
    const auto flat = comm.allgatherv(mine);
    digest.insert(digest.end(), flat.begin(), flat.end());
  });
}

TEST(TransportParityTest, Alltoallv) {
  expectParity(4, [](Comm& comm, std::vector<double>& digest) {
    std::vector<std::vector<double>> parts(4);
    for (int dst = 0; dst < 4; ++dst) {
      parts[static_cast<std::size_t>(dst)].assign(
          static_cast<std::size_t>(dst + 1), comm.rank() * 10.0 + dst);
    }
    const auto got = comm.alltoallv(std::move(parts));
    for (const auto& p : got) digest.insert(digest.end(), p.begin(), p.end());
  });
}

TEST(TransportParityTest, BarrierAndLocReductions) {
  expectParity(4, [](Comm& comm, std::vector<double>& digest) {
    comm.barrier();
    const auto mn =
        comm.allreduceMinloc(double((comm.rank() * 7) % 5), comm.rank());
    comm.barrier();
    const auto mx =
        comm.allreduceMaxloc(double((comm.rank() * 3) % 4), comm.rank());
    digest.push_back(mn.value);
    digest.push_back(double(mn.index));
    digest.push_back(mx.value);
    digest.push_back(double(mx.index));
  });
}

// The point-to-point tag contract: matching is exact on (src, tag) and
// FIFO per queue, so a receiver can take tags out of send order.
TEST(TransportParityTest, TagContractOutOfOrderAndFifo) {
  expectParity(2, [](Comm& comm, std::vector<double>& digest) {
    const int peer = 1 - comm.rank();
    comm.send(peer, 1.0 + comm.rank(), /*tag=*/7);
    comm.send(peer, 2.0 + comm.rank(), /*tag=*/3);
    comm.send(peer, 3.0 + comm.rank(), /*tag=*/7);
    // Take the lone tag-3 message first, then the two tag-7 messages,
    // which must arrive in their send order.
    digest.push_back(comm.recv<double>(peer, 3));
    digest.push_back(comm.recv<double>(peer, 7));
    digest.push_back(comm.recv<double>(peer, 7));
  });
}

TEST(TransportParityTest, SplitSubCommunicators) {
  expectParity(4, [](Comm& comm, std::vector<double>& digest) {
    Comm half = comm.split(comm.rank() % 2, comm.rank());
    const double sum = half.allreduceSum(double(comm.rank()) + 1.0);
    comm.barrier();
    const double whole = comm.allreduceSum(sum);
    digest.push_back(sum);
    digest.push_back(whole);
  });
}

// A payload much larger than one shared-memory ring (256 KiB) must flow
// through the proc backend in chunks and still arrive bitwise-intact.
TEST(TransportParityTest, PayloadLargerThanRingFlowsChunked) {
  expectParity(2, [](Comm& comm, std::vector<double>& digest) {
    std::vector<double> big;
    if (comm.rank() == 0) {
      big.resize(100000);  // 800 KB
      for (std::size_t i = 0; i < big.size(); ++i) {
        big[i] = double(i) * 0.75 - 1000.0;
      }
    }
    comm.bcast(big, 0);
    double acc = 0.0;
    for (double v : big) acc += v;
    digest.push_back(acc);
    digest.push_back(big.front());
    digest.push_back(big.back());
  });
}

TEST(TransportParityTest, ZeroLengthMessages) {
  expectParity(2, [](Comm& comm, std::vector<double>& digest) {
    std::vector<double> empty;
    comm.bcast(empty, 0);
    const auto flat = comm.allgatherv(empty);
    digest.push_back(double(empty.size()));
    digest.push_back(double(flat.size()));
  });
}

}  // namespace
}  // namespace casvm::net
