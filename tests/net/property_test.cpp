#include <gtest/gtest.h>

#include <numeric>

#include "casvm/net/comm.hpp"
#include "casvm/support/rng.hpp"

namespace casvm::net {
namespace {

/// Randomized collective correctness: for random rank counts, payload
/// lengths and values, every collective must match a directly computed
/// reference. Parameterized over seeds for breadth.
class CollectivePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectivePropertyTest, AllreduceSumMatchesReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int P = 2 + static_cast<int>(rng.below(7));
  const std::size_t len = 1 + rng.below(64);

  // Deterministic per-rank vectors derived from (seed, rank).
  auto vectorFor = [&](int rank) {
    Rng r(static_cast<std::uint64_t>(GetParam()) * 1000 + rank);
    std::vector<double> v(len);
    for (double& x : v) x = r.uniform(-10.0, 10.0);
    return v;
  };
  std::vector<double> expected(len, 0.0);
  for (int rank = 0; rank < P; ++rank) {
    const auto v = vectorFor(rank);
    for (std::size_t i = 0; i < len; ++i) expected[i] += v[i];
  }

  Engine engine(P);
  engine.run([&](Comm& c) {
    std::vector<double> v = vectorFor(c.rank());
    v = c.allreduce(std::move(v), [](double a, double b) { return a + b; });
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_NEAR(v[i], expected[i], 1e-9);
    }
  });
}

TEST_P(CollectivePropertyTest, GathervReassemblesExactly) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  const int P = 2 + static_cast<int>(rng.below(7));
  auto lengthFor = [&](int rank) {
    return static_cast<std::size_t>((rank * 7 + GetParam()) % 19);
  };

  Engine engine(P);
  engine.run([&](Comm& c) {
    std::vector<int> mine(lengthFor(c.rank()));
    std::iota(mine.begin(), mine.end(), c.rank() * 100);
    const auto parts = c.gatherv(mine, 0);
    if (c.rank() == 0) {
      ASSERT_EQ(parts.size(), static_cast<std::size_t>(P));
      for (int r = 0; r < P; ++r) {
        ASSERT_EQ(parts[r].size(), lengthFor(r));
        for (std::size_t i = 0; i < parts[r].size(); ++i) {
          EXPECT_EQ(parts[r][i], r * 100 + static_cast<int>(i));
        }
      }
    }
  });
}

TEST_P(CollectivePropertyTest, MinlocAgreesWithScan) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 900);
  const int P = 2 + static_cast<int>(rng.below(7));
  std::vector<double> values(static_cast<std::size_t>(P));
  for (double& v : values) v = rng.uniform(-1.0, 1.0);
  int expectedIdx = 0;
  for (int r = 1; r < P; ++r) {
    if (values[static_cast<std::size_t>(r)] <
        values[static_cast<std::size_t>(expectedIdx)]) {
      expectedIdx = r;
    }
  }

  Engine engine(P);
  engine.run([&](Comm& c) {
    const auto result = c.allreduceMinloc(
        values[static_cast<std::size_t>(c.rank())], c.rank());
    EXPECT_EQ(result.index, expectedIdx);
    EXPECT_DOUBLE_EQ(result.value,
                     values[static_cast<std::size_t>(expectedIdx)]);
  });
}

TEST_P(CollectivePropertyTest, ScattervThenGathervIsIdentity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1300);
  const int P = 2 + static_cast<int>(rng.below(6));
  std::vector<std::vector<float>> parts(static_cast<std::size_t>(P));
  for (auto& part : parts) {
    part.resize(rng.below(12));
    for (float& v : part) v = static_cast<float>(rng.uniform());
  }

  Engine engine(P);
  engine.run([&](Comm& c) {
    const std::vector<float> mine = c.scatterv(
        c.rank() == 0 ? parts : std::vector<std::vector<float>>{}, 0);
    const auto back = c.gatherv(mine, 0);
    if (c.rank() == 0) {
      ASSERT_EQ(back.size(), parts.size());
      for (std::size_t r = 0; r < parts.size(); ++r) {
        EXPECT_EQ(back[r], parts[r]);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollectivePropertyTest,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace casvm::net
