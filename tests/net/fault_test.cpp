#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "casvm/net/comm.hpp"
#include "casvm/support/timer.hpp"

namespace casvm::net {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan parsing
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, ParseRoundTripsEveryKind) {
  const std::string text =
      "crash:rank=1,op=5;crash:rank=2,phase=train;drop:src=0,dst=1,nth=1;"
      "delay:src=1,dst=0,seconds=0.001;slow:rank=3,factor=4";
  const FaultPlan plan = FaultPlan::parse(text, 7);
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.faults.size(), 5u);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::CrashAtOp);
  EXPECT_EQ(plan.faults[1].kind, FaultKind::CrashAtPhase);
  EXPECT_EQ(plan.faults[1].phase, "train");
  EXPECT_EQ(plan.faults[2].kind, FaultKind::DropMessage);
  EXPECT_EQ(plan.faults[3].kind, FaultKind::DelayMessage);
  EXPECT_EQ(plan.faults[4].kind, FaultKind::SlowRank);
  // describe() re-parses to the same plan.
  const FaultPlan again = FaultPlan::parse(plan.describe(), 7);
  EXPECT_EQ(again.describe(), plan.describe());
  ASSERT_EQ(again.faults.size(), plan.faults.size());
}

TEST(FaultPlanTest, EmptyAndWhitespaceTextYieldEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("  ;  ; ").empty());
  EXPECT_EQ(FaultPlan{}.describe(), "");
}

TEST(FaultPlanTest, MalformedClausesThrow) {
  // Unknown kind / key, missing required fields, bad numbers, bad ranges.
  EXPECT_THROW(FaultPlan::parse("explode:rank=1"), Error);
  EXPECT_THROW(FaultPlan::parse("crash:rank=1,op=5,frobnicate=2"), Error);
  EXPECT_THROW(FaultPlan::parse("crash:op=5"), Error);               // no rank
  EXPECT_THROW(FaultPlan::parse("crash:rank=1"), Error);             // no op/phase
  EXPECT_THROW(FaultPlan::parse("crash:rank=1,op=2,phase=x"), Error);  // both
  EXPECT_THROW(FaultPlan::parse("crash:rank=1,op=0"), Error);        // 1-based
  EXPECT_THROW(FaultPlan::parse("crash:rank=zzz,op=1"), Error);
  EXPECT_THROW(FaultPlan::parse("drop:nth=1"), Error);               // no edge
  EXPECT_THROW(FaultPlan::parse("drop:src=0,prob=0"), Error);
  EXPECT_THROW(FaultPlan::parse("drop:src=0,prob=1.5"), Error);
  EXPECT_THROW(FaultPlan::parse("delay:src=0,dst=1"), Error);        // no seconds
  EXPECT_THROW(FaultPlan::parse("slow:rank=1,factor=0.5"), Error);
  EXPECT_THROW(FaultPlan::parse("slow:factor=2"), Error);
}

TEST(FaultPlanTest, PhaseCrashTimesAndNthParseAndRoundTrip) {
  const FaultPlan plan = FaultPlan::parse(
      "crash:rank=2,phase=solve,nth=3;crash:rank=1,phase=train,times=2;"
      "crash:rank=0,phase=solve,times=0");
  ASSERT_EQ(plan.faults.size(), 3u);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::CrashAtPhase);
  EXPECT_EQ(plan.faults[0].nth, 3);
  EXPECT_EQ(plan.faults[0].times, 1);  // default: fire once
  EXPECT_EQ(plan.faults[1].times, 2);
  EXPECT_EQ(plan.faults[2].times, 0);  // 0 = every entry
  const FaultPlan again = FaultPlan::parse(plan.describe());
  EXPECT_EQ(again.describe(), plan.describe());
}

/// Parse `text`, which must fail, and return the error message.
std::string parseErrorOf(const std::string& text) {
  try {
    (void)FaultPlan::parse(text);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected parse of '" << text << "' to throw";
  return "";
}

TEST(FaultPlanTest, UnknownKindErrorNamesTokenAndListsValidKinds) {
  const std::string what = parseErrorOf("fizzle:rank=1");
  EXPECT_NE(what.find("fizzle"), std::string::npos);
  EXPECT_NE(what.find("crash, drop, delay, slow"), std::string::npos);
}

TEST(FaultPlanTest, UnknownKeyErrorNamesTokenAndListsValidKeys) {
  const std::string what = parseErrorOf("crash:rank=1,bogus=2,op=5");
  EXPECT_NE(what.find("bogus"), std::string::npos);
  EXPECT_NE(what.find("rank, op, phase, nth, times"), std::string::npos);
  // A key that exists for another kind is still invalid here, and the
  // error lists the keys of the kind that was actually written.
  const std::string crossed = parseErrorOf("slow:rank=1,seconds=3");
  EXPECT_NE(crossed.find("seconds"), std::string::npos);
  EXPECT_NE(crossed.find("rank, factor"), std::string::npos);
}

TEST(FaultPlanTest, BadValueErrorQuotesTheValueAndClause) {
  const std::string what = parseErrorOf("crash:rank=two,op=1");
  EXPECT_NE(what.find("'two'"), std::string::npos);
  EXPECT_NE(what.find("crash:rank=two,op=1"), std::string::npos);
}

TEST(FaultPlanTest, CrashClauseErrorsExplainPhaseVocabulary) {
  // A crash clause missing op=/phase= must point at the driver's phase
  // labels so the user knows what to write.
  const std::string what = parseErrorOf("crash:rank=1");
  EXPECT_NE(what.find("'init', 'train' and 'solve'"), std::string::npos);
}

TEST(FaultPlanTest, TimesAndNthRejectedOutsidePhaseCrashes) {
  EXPECT_THROW(FaultPlan::parse("crash:rank=1,op=2,nth=3"), Error);
  EXPECT_THROW(FaultPlan::parse("crash:rank=1,op=2,times=2"), Error);
  const std::string what = parseErrorOf("crash:rank=1,op=2,times=2");
  EXPECT_NE(what.find("phase placement only"), std::string::npos);
  // Negative windows are nonsense at parse time, not mid-run.
  EXPECT_THROW(FaultPlan::parse("crash:rank=1,phase=solve,nth=-1"), Error);
  EXPECT_THROW(FaultPlan::parse("crash:rank=1,phase=solve,times=-2"), Error);
}

TEST(FaultPlanTest, TargetsOutsideWorldRejectedAtInjectorConstruction) {
  EXPECT_THROW(FaultInjector(FaultPlan::parse("crash:rank=4,op=1"), 4), Error);
  EXPECT_THROW(FaultInjector(FaultPlan::parse("drop:src=9,dst=0"), 4), Error);
  EXPECT_NO_THROW(FaultInjector(FaultPlan::parse("crash:rank=3,op=1"), 4));
  EXPECT_THROW(FaultInjector(FaultPlan::parse("kill:rank=4,op=1"), 4), Error);
}

TEST(FaultPlanTest, KillAndHangParseAndRoundTrip) {
  const FaultPlan plan = FaultPlan::parse(
      "kill:rank=2,phase=solve;hang:rank=1,op=7;"
      "kill:rank=0,phase=train,nth=2,times=3");
  ASSERT_EQ(plan.faults.size(), 3u);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::KillRank);
  EXPECT_EQ(plan.faults[0].phase, "solve");
  EXPECT_EQ(plan.faults[1].kind, FaultKind::HangRank);
  EXPECT_EQ(plan.faults[1].op, 7);
  EXPECT_EQ(plan.faults[2].nth, 2);
  EXPECT_EQ(plan.faults[2].times, 3);
  EXPECT_TRUE(plan.requiresProcessTransport());
  EXPECT_FALSE(FaultPlan::parse("crash:rank=1,op=5;drop:src=0")
                   .requiresProcessTransport());
  const FaultPlan again = FaultPlan::parse(plan.describe());
  EXPECT_EQ(again.describe(), plan.describe());
}

TEST(FaultPlanTest, KillAndHangShareCrashPlacementValidation) {
  EXPECT_THROW(FaultPlan::parse("kill:op=1"), Error);           // no rank
  EXPECT_THROW(FaultPlan::parse("kill:rank=1"), Error);         // no op/phase
  EXPECT_THROW(FaultPlan::parse("hang:rank=1,op=2,phase=x"), Error);  // both
  EXPECT_THROW(FaultPlan::parse("hang:rank=1,op=0"), Error);    // 1-based
  EXPECT_THROW(FaultPlan::parse("kill:rank=1,seconds=2"), Error);  // bad key
}

TEST(FaultInjectorTest, KillWithoutProcessSignalsThrowsNamedError) {
  // Without process-signals mode a firing kill/hang clause must explain
  // that it needs the process transport, not deliver a signal.
  FaultInjector killer(FaultPlan::parse("kill:rank=0,op=1"), 2);
  try {
    killer.onSend(0, 1);
    FAIL() << "expected the kill clause to throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--transport proc"), std::string::npos);
    EXPECT_NE(what.find("kill:rank=0,op=1"), std::string::npos);
  }
  FaultInjector hanger(FaultPlan::parse("hang:rank=1,phase=solve"), 2);
  EXPECT_THROW(hanger.atPhase(1, "solve"), Error);
  // Non-matching ranks and phases are unaffected.
  EXPECT_NO_THROW(hanger.atPhase(0, "solve"));
  EXPECT_NO_THROW(hanger.atPhase(1, "init"));
}

// ---------------------------------------------------------------------------
// Crash injection through the Engine
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, CrashAtOpKillsExactlyTheConfiguredOp) {
  // Rank 1 performs sends to rank 0; its 3rd comm op must be the fatal one,
  // so exactly 2 messages arrive.
  Engine engine(2);
  engine.setFaultPlan(FaultPlan::parse("crash:rank=1,op=3"));
  std::atomic<int> delivered{0};
  try {
    engine.run([&](Comm& c) {
      if (c.rank() == 1) {
        for (int i = 0; i < 10; ++i) c.send(0, i);
      } else {
        for (int i = 0; i < 10; ++i) {
          (void)c.recv<int>(1);
          ++delivered;
        }
      }
    });
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("injected fault"), std::string::npos);
    EXPECT_NE(what.find("rank 1"), std::string::npos);
    EXPECT_NE(what.find("op 3"), std::string::npos);
  }
  EXPECT_EQ(delivered.load(), 2);
}

TEST(FaultInjectionTest, SameSeedSamePlanReproducesIdenticalOutcome) {
  // Determinism contract: run the same faulted program twice and compare
  // the error text and side effects exactly.
  std::vector<std::string> whats;
  std::vector<int> delivered;
  for (int round = 0; round < 2; ++round) {
    Engine engine(3);
    engine.setFaultPlan(FaultPlan::parse("crash:rank=2,op=4", 99));
    int got = 0;
    try {
      engine.run([&](Comm& c) {
        if (c.rank() == 2) {
          for (int i = 0; i < 8; ++i) c.send(0, i);
        } else if (c.rank() == 0) {
          for (int i = 0; i < 8; ++i) {
            (void)c.recv<int>(2);
            ++got;
          }
        }
      });
      FAIL() << "expected throw";
    } catch (const Error& e) {
      whats.emplace_back(e.what());
      delivered.push_back(got);
    }
  }
  ASSERT_EQ(whats.size(), 2u);
  EXPECT_EQ(whats[0], whats[1]);
  EXPECT_EQ(delivered[0], delivered[1]);
}

TEST(FaultInjectionTest, CrashAtPhaseFiresAtNamedCheckpointOnly) {
  Engine engine(2);
  engine.setFaultPlan(FaultPlan::parse("crash:rank=0,phase=shutdown"));
  // A different label does not fire.
  EXPECT_NO_THROW(engine.run([](Comm& c) { c.faultCheckpoint("startup"); }));
  try {
    engine.run([](Comm& c) {
      c.faultCheckpoint("startup");
      c.faultCheckpoint("shutdown");
    });
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("injected fault"), std::string::npos);
    EXPECT_NE(what.find("phase 'shutdown'"), std::string::npos);
  }
}

TEST(FaultInjectionTest, PhaseCrashWindowFiresOnNthThroughNthPlusTimes) {
  // nth=2,times=2 → entries 2 and 3 crash; entries 1, 4, 5 pass. This is
  // the budget the rank-retry path consumes: a retried rank re-enters the
  // phase and survives once the window is spent.
  FaultInjector injector(
      FaultPlan::parse("crash:rank=0,phase=solve,nth=2,times=2"), 1);
  EXPECT_NO_THROW(injector.atPhase(0, "solve"));  // entry 1
  EXPECT_THROW(injector.atPhase(0, "solve"), RankCrash);  // entry 2
  EXPECT_THROW(injector.atPhase(0, "solve"), RankCrash);  // entry 3
  EXPECT_NO_THROW(injector.atPhase(0, "solve"));  // entry 4: budget spent
  EXPECT_NO_THROW(injector.atPhase(0, "solve"));  // entry 5
}

TEST(FaultInjectionTest, PhaseCrashTimesZeroFiresOnEveryEntry) {
  FaultInjector injector(
      FaultPlan::parse("crash:rank=0,phase=train,times=0"), 1);
  for (int i = 0; i < 4; ++i) {
    EXPECT_THROW(injector.atPhase(0, "train"), RankCrash) << "entry " << i;
  }
}

TEST(FaultInjectionTest, ToleratedCrashRecordedInRunStats) {
  // With tolerance on, the crash of rank 1 must not sink the run: rank 0
  // completes, the result is degraded, and the failure names the fault.
  Engine engine(2);
  engine.setFaultPlan(FaultPlan::parse("crash:rank=1,phase=work"));
  engine.setTolerateRankFailures(true);
  std::atomic<bool> rank0Done{false};
  const RunStats stats = engine.run([&](Comm& c) {
    c.faultCheckpoint("work");
    if (c.rank() == 0) rank0Done = true;
  });
  EXPECT_TRUE(rank0Done.load());
  EXPECT_TRUE(stats.degraded());
  ASSERT_EQ(stats.failures.size(), 1u);
  EXPECT_EQ(stats.failures[0].rank, 1);
  EXPECT_NE(stats.failures[0].reason.find("injected fault"),
            std::string::npos);
}

TEST(FaultInjectionTest, WaitingOnToleratedCrashNamesTheDeadPeer) {
  // Rank 0 waits for a message the crashed rank will never send: the wait
  // must unwind with an error naming the dead peer, not hang.
  Engine engine(2);
  engine.setFaultPlan(FaultPlan::parse("crash:rank=1,phase=work"));
  engine.setTolerateRankFailures(true);
  try {
    engine.run([](Comm& c) {
      c.faultCheckpoint("work");
      if (c.rank() == 0) (void)c.recv<int>(1);
    });
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("peer rank 1 failed"), std::string::npos);
    EXPECT_NE(what.find("injected fault"), std::string::npos);
  }
}

TEST(FaultInjectionTest, OrganicFailureStillAbortsUnderTolerance) {
  // Tolerance covers injected RankCrash only; a real bug must abort.
  Engine engine(2);
  engine.setTolerateRankFailures(true);
  EXPECT_THROW(engine.run([](Comm& c) {
                 if (c.rank() == 1) throw Error("organic bug");
                 (void)c.recv<int>(1);
               }),
               Error);
}

// ---------------------------------------------------------------------------
// Drop / delay / slow
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, DroppedMessageNeverArrivesButCostIsPaid) {
  // Drop the first 1->0 message; the second one still arrives. Traffic
  // records both (the bytes left the NIC).
  FaultInjector injector(FaultPlan::parse("drop:src=1,dst=0,nth=1"), 2);
  World world(2, CostModel{}, &injector);
  VirtualClock clock0, clock1;
  clock0.start();
  clock1.start();
  Comm c1(&world, 1, &clock1);
  c1.send(0, 111, 0);
  c1.send(0, 222, 0);
  EXPECT_EQ(world.mailbox(0).pending(), 1u);  // first was dropped
  Comm c0(&world, 0, &clock0);
  EXPECT_EQ(c0.recv<int>(1, 0), 222);
  const TrafficSnapshot traffic = world.traffic().snapshot();
  EXPECT_EQ(traffic.totalOps(), 2u);  // dropped send still recorded
}

TEST(FaultInjectionTest, ProbabilisticDropIsSeedDeterministic) {
  // The per-sender RNG stream makes the drop pattern a pure function of
  // (seed, program order): two identical runs agree message for message.
  std::vector<std::vector<int>> arrivals;
  for (int round = 0; round < 2; ++round) {
    FaultInjector injector(FaultPlan::parse("drop:src=1,prob=0.5", 1234), 2);
    World world(2, CostModel{}, &injector);
    VirtualClock clock;
    clock.start();
    Comm c1(&world, 1, &clock);
    for (int i = 0; i < 64; ++i) c1.send(0, i, /*tag=*/i % 4);
    std::vector<int> seen;
    for (const auto& q : world.mailbox(0).pendingQueues()) {
      seen.push_back(q.tag * 1000 + static_cast<int>(q.depth));
    }
    arrivals.push_back(std::move(seen));
  }
  EXPECT_EQ(arrivals[0], arrivals[1]);
  // And a different seed gives a different pattern (overwhelmingly likely
  // over 64 coin flips).
  FaultInjector injector(FaultPlan::parse("drop:src=1,prob=0.5", 4321), 2);
  World world(2, CostModel{}, &injector);
  VirtualClock clock;
  clock.start();
  Comm c1(&world, 1, &clock);
  for (int i = 0; i < 64; ++i) c1.send(0, i, i % 4);
  std::vector<int> seen;
  for (const auto& q : world.mailbox(0).pendingQueues()) {
    seen.push_back(q.tag * 1000 + static_cast<int>(q.depth));
  }
  EXPECT_NE(seen, arrivals[0]);
}

TEST(FaultInjectionTest, DelayedMessageChargesReceiverWaitTime) {
  // +50ms virtual latency on 0->1: the receiver's comm time must absorb
  // the wait (arrival-time propagation), dwarfing the undelayed baseline.
  const auto run = [](const std::string& spec) {
    Engine engine(2);
    engine.setFaultPlan(FaultPlan::parse(spec));
    return engine.run([](Comm& c) {
      if (c.rank() == 0) c.send(1, 7);
      else (void)c.recv<int>(0);
    });
  };
  const RunStats slow = run("delay:src=0,dst=1,seconds=0.05");
  const RunStats fast = run("");
  EXPECT_GE(slow.commSeconds[1], 0.05);
  EXPECT_LT(fast.commSeconds[1], 0.05);
}

TEST(FaultInjectionTest, SlowRankScalesComputeOnVirtualClock) {
  // Same real work on both ranks; rank 1 is configured 8x slower, so its
  // virtual compute time must come out well above rank 0's.
  Engine engine(2);
  engine.setFaultPlan(FaultPlan::parse("slow:rank=1,factor=8"));
  const RunStats stats = engine.run([](Comm&) {
    double x = 1.0;
    for (int i = 0; i < 8000000; ++i) x = x * 1.0000001 + 1e-9;
    EXPECT_GT(x, 0.0);
  });
  EXPECT_GT(stats.computeSeconds[1], stats.computeSeconds[0] * 3.0);
}

// ---------------------------------------------------------------------------
// Deadlock watchdog
// ---------------------------------------------------------------------------

TEST(WatchdogTest, DroppedMessageDeadlockDetectedWithDiagnosticDump) {
  // Drop the only message of the run: the receiver blocks forever and only
  // the watchdog can unwind it. The whole detection must stay wall-clock
  // bounded, and the report names the blocked (src, tag).
  WallTimer wall;
  Engine engine(2);
  engine.setFaultPlan(FaultPlan::parse("drop:src=0,dst=1,nth=1"));
  engine.setWatchdogSeconds(0.2);
  try {
    engine.run([](Comm& c) {
      if (c.rank() == 0) c.send(1, 7, /*tag=*/5);
      else (void)c.recv<int>(0, /*tag=*/5);
    });
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock watchdog"), std::string::npos);
    EXPECT_NE(what.find("blocked waiting on (src=0, tag=5)"),
              std::string::npos);
    EXPECT_NE(what.find("active fault plan"), std::string::npos);
    EXPECT_NE(what.find("drop:src=0,dst=1,nth=1"), std::string::npos);
  }
  EXPECT_LT(wall.seconds(), 20.0);  // bounded, not hung
}

TEST(WatchdogTest, DroppedCollectiveInternalMessageDetected) {
  // Lose rank 1's barrier token (1->0, a collective-internal message):
  // both ranks end up parked inside the barrier and the watchdog must
  // dump every mailbox's pending queues.
  WallTimer wall;
  Engine engine(2);
  engine.setFaultPlan(FaultPlan::parse("drop:src=1,dst=0,nth=1"));
  engine.setWatchdogSeconds(0.2);
  try {
    engine.run([](Comm& c) { c.barrier(); });
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock watchdog"), std::string::npos);
    EXPECT_NE(what.find("rank 0"), std::string::npos);
    EXPECT_NE(what.find("rank 1"), std::string::npos);
    EXPECT_NE(what.find("blocked waiting on"), std::string::npos);
  }
  EXPECT_LT(wall.seconds(), 20.0);
}

TEST(WatchdogTest, SlowComputeIsNotADeadlock) {
  // One rank computes well past the watchdog window while the other waits
  // for its message: progress exists (the computing rank is not blocked),
  // so the watchdog must stay silent.
  Engine engine(2);
  engine.setWatchdogSeconds(0.1);
  const RunStats stats = engine.run([](Comm& c) {
    if (c.rank() == 0) {
      WallTimer t;
      double x = 1.0;
      while (t.seconds() < 0.4) x = x * 1.0000001 + 1e-9;
      EXPECT_GT(x, 0.0);
      c.send(1, 1);
    } else {
      (void)c.recv<int>(0);
    }
  });
  EXPECT_EQ(stats.size, 2);
}

TEST(WatchdogTest, DisabledWatchdogLeavesCleanRunsAlone) {
  Engine engine(2);
  engine.setWatchdogSeconds(0.0);
  EXPECT_NO_THROW(engine.run([](Comm& c) { c.barrier(); }));
}

}  // namespace
}  // namespace casvm::net
