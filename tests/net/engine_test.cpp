#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "casvm/net/comm.hpp"

namespace casvm::net {
namespace {

/// Busy-work the optimizer cannot fold away (multiplicative recurrence).
double spin(int iters) {
  double x = 1.0;
  for (int i = 0; i < iters; ++i) x = x * 1.0000001 + 1e-9;
  return x;
}

TEST(EngineTest, RunsEveryRankExactlyOnce) {
  std::atomic<int> count{0};
  std::vector<std::atomic<int>> perRank(6);
  Engine engine(6);
  engine.run([&](Comm& c) {
    ++count;
    ++perRank[static_cast<std::size_t>(c.rank())];
    EXPECT_EQ(c.size(), 6);
  });
  EXPECT_EQ(count.load(), 6);
  for (auto& p : perRank) EXPECT_EQ(p.load(), 1);
}

TEST(EngineTest, ZeroRanksRejected) {
  EXPECT_THROW(Engine(0), Error);
}

TEST(EngineTest, ExceptionPropagatesWithRank) {
  Engine engine(3);
  try {
    engine.run([](Comm& c) {
      if (c.rank() == 2) throw Error("deliberate failure");
      // Other ranks do unrelated work and finish.
    });
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 2"), std::string::npos);
    EXPECT_NE(what.find("deliberate failure"), std::string::npos);
  }
}

TEST(EngineTest, FailureUnblocksWaitingPeers) {
  // Rank 0 blocks on a message that will never come; rank 1 throws. The
  // abort must wake rank 0 rather than deadlocking the join.
  Engine engine(2);
  EXPECT_THROW(engine.run([](Comm& c) {
                 if (c.rank() == 0) {
                   (void)c.recv<int>(1);  // never sent
                 } else {
                   throw Error("peer failure");
                 }
               }),
               Error);
}

TEST(EngineTest, RootCausePreferredOverCascade) {
  Engine engine(4);
  try {
    engine.run([](Comm& c) {
      if (c.rank() == 3) throw Error("root cause");
      (void)c.recv<int>((c.rank() + 1) % c.size());
    });
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("root cause"), std::string::npos);
  }
}

TEST(EngineTest, EngineIsReusable) {
  Engine engine(2);
  for (int round = 0; round < 3; ++round) {
    const RunStats stats = engine.run([](Comm& c) {
      if (c.rank() == 0) c.send(1, 1);
      else (void)c.recv<int>(0);
    });
    // Traffic resets between runs: always exactly one message.
    EXPECT_EQ(stats.traffic.totalOps(), 1u);
  }
}

TEST(EngineStatsTest, ComputeTimeReflectsWork) {
  Engine engine(2);
  const RunStats stats = engine.run([](Comm& c) {
    if (c.rank() == 0) {
      EXPECT_GT(spin(30000000), 0.0);
    }
  });
  EXPECT_GT(stats.computeSeconds[0], stats.computeSeconds[1]);
  EXPECT_GT(stats.computeSeconds[0], 0.005);
}

TEST(EngineStatsTest, CommTimeChargedForMessages) {
  CostModel cost;
  cost.alpha = 1e-3;  // exaggerated latency so the charge is visible
  Engine engine(2, cost);
  const RunStats stats = engine.run([](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) c.send(1, i);
    } else {
      for (int i = 0; i < 10; ++i) (void)c.recv<int>(0);
    }
  });
  // Sender pays 10 alpha charges.
  EXPECT_GE(stats.commSeconds[0], 10e-3 * 0.99);
}

TEST(EngineStatsTest, ReceiverAdvancesPastSlowSender) {
  // Rank 0 computes for a while before sending; rank 1 receives instantly.
  // Virtual-time propagation must push rank 1's clock past rank 0's send
  // time — the receiver "waited" in virtual time.
  Engine engine(2);
  const RunStats stats = engine.run([](Comm& c) {
    if (c.rank() == 0) {
      EXPECT_GT(spin(30000000), 0.0);
      c.send(1, 1);
    } else {
      (void)c.recv<int>(0);
    }
  });
  const double senderTotal = stats.computeSeconds[0] + stats.commSeconds[0];
  const double receiverTotal = stats.computeSeconds[1] + stats.commSeconds[1];
  EXPECT_GE(receiverTotal, senderTotal * 0.95);
  // The receiver's time is dominated by waiting, reported as comm.
  EXPECT_GT(stats.commSeconds[1], stats.computeSeconds[1]);
}

TEST(EngineStatsTest, VirtualSecondsIsMaxOverRanks) {
  Engine engine(3);
  const RunStats stats = engine.run([](Comm& c) {
    EXPECT_GT(spin((c.rank() + 1) * 3000000), 0.0);
  });
  double maxTotal = 0.0;
  for (int r = 0; r < 3; ++r) {
    maxTotal = std::max(maxTotal,
                        stats.computeSeconds[r] + stats.commSeconds[r]);
  }
  EXPECT_DOUBLE_EQ(stats.virtualSeconds(), maxTotal);
  EXPECT_GE(stats.totalComputeSeconds(), stats.maxComputeSeconds());
}

TEST(WorldTest, AbortedFlagWiredToAbortAll) {
  // Regression: aborted() used to return false unconditionally, so nothing
  // observing the world could tell a failed run from a healthy one.
  World world(2, CostModel{});
  EXPECT_FALSE(world.aborted());
  world.abortAll();
  EXPECT_TRUE(world.aborted());
}

TEST(WorldTest, AbortedVisibleDuringEngineFailure) {
  // The flag must flip while surviving ranks are still running, not just
  // after the join: rank 1 spins on it after rank 0 throws.
  Engine engine(2);
  std::atomic<bool> observed{false};
  EXPECT_THROW(engine.run([&](Comm& c) {
                 if (c.rank() == 0) {
                   throw Error("deliberate failure");
                 }
                 // Rank 1 waits in a blocked recv; the abort wakes it with
                 // an error, proving the failure propagated while running.
                 try {
                   (void)c.recv<int>(0);
                 } catch (const Error&) {
                   observed = true;
                   throw;
                 }
               }),
               Error);
  EXPECT_TRUE(observed.load());
}

TEST(WorldTest, PerRankFailureStateTracksMarkFailed) {
  World world(3, CostModel{});
  EXPECT_FALSE(world.rankFailed(1));
  EXPECT_TRUE(world.failedRanks().empty());
  world.markFailed(1, "test reason");
  EXPECT_TRUE(world.rankFailed(1));
  EXPECT_FALSE(world.rankFailed(0));
  EXPECT_EQ(world.failedRanks(), (std::vector<int>{1}));
  // A rank failure is not a whole-run abort.
  EXPECT_FALSE(world.aborted());
}

TEST(EngineStatsTest, WallClockPositive) {
  Engine engine(2);
  const RunStats stats = engine.run([](Comm&) {});
  EXPECT_GT(stats.wallSeconds, 0.0);
  EXPECT_EQ(stats.size, 2);
}

TEST(EngineStatsTest, WallClockTracksRankWork) {
  // wallSeconds is captured the moment the rank threads join; the watchdog
  // shutdown (up to one full poll tick) must not inflate it. An instant
  // workload therefore reads as roughly the 50ms sleep below, not
  // sleep + watchdog tick + thread teardown slop.
  Engine engine(2);
  const RunStats stats = engine.run(
      [](Comm&) { std::this_thread::sleep_for(std::chrono::milliseconds(50)); });
  EXPECT_GE(stats.wallSeconds, 0.045);
  // Generous ceiling for slow CI machines; the pre-fix code added the
  // watchdog's full shutdown tick on top of scheduling noise.
  EXPECT_LE(stats.wallSeconds, 1.0);
}

TEST(EngineStatsTest, WaitSecondsReportedPerRank) {
  // Rank 1 blocks on a message rank 0 sends only after heavy compute, so
  // rank 1 accrues skew (wait) while rank 0 accrues none of note.
  Engine engine(2);
  const RunStats stats = engine.run([](Comm& c) {
    if (c.rank() == 0) {
      (void)spin(2000000);
      c.send(1, 1);
    } else {
      (void)c.recv<int>(0);
    }
  });
  ASSERT_EQ(stats.waitSeconds.size(), 2u);
  EXPECT_GE(stats.waitSeconds[1], 0.0);
  EXPECT_GT(stats.waitSeconds[1], stats.waitSeconds[0]);
}

}  // namespace
}  // namespace casvm::net
