#include <gtest/gtest.h>

#include "casvm/net/comm.hpp"

namespace casvm::net {
namespace {

TEST(TrafficMatrixTest, RecordAccumulates) {
  TrafficMatrix tm(3);
  tm.record(0, 1, 100);
  tm.record(0, 1, 50);
  tm.record(2, 0, 7);
  const TrafficSnapshot s = tm.snapshot();
  EXPECT_EQ(s.bytesBetween(0, 1), 150u);
  EXPECT_EQ(s.opsBetween(0, 1), 2u);
  EXPECT_EQ(s.bytesBetween(2, 0), 7u);
  EXPECT_EQ(s.bytesBetween(1, 2), 0u);
  EXPECT_EQ(s.totalBytes(), 157u);
  EXPECT_EQ(s.totalOps(), 3u);
}

TEST(TrafficMatrixTest, ResetZeroes) {
  TrafficMatrix tm(2);
  tm.record(0, 1, 10);
  tm.reset();
  EXPECT_EQ(tm.snapshot().totalBytes(), 0u);
}

TEST(TrafficSnapshotTest, BytesTouchingCountsBothDirections) {
  TrafficMatrix tm(3);
  tm.record(0, 1, 10);
  tm.record(1, 0, 5);
  tm.record(1, 2, 3);
  const TrafficSnapshot s = tm.snapshot();
  EXPECT_EQ(s.bytesTouching(0), 15u);
  EXPECT_EQ(s.bytesTouching(1), 18u);
  EXPECT_EQ(s.bytesTouching(2), 3u);
}

TEST(TrafficSnapshotTest, BytesPerOp) {
  TrafficMatrix tm(2);
  EXPECT_EQ(tm.snapshot().bytesPerOp(), 0.0);
  tm.record(0, 1, 100);
  tm.record(0, 1, 200);
  EXPECT_DOUBLE_EQ(tm.snapshot().bytesPerOp(), 150.0);
}

TEST(TrafficSnapshotTest, SinceSubtracts) {
  TrafficMatrix tm(2);
  tm.record(0, 1, 10);
  const TrafficSnapshot early = tm.snapshot();
  tm.record(0, 1, 25);
  tm.record(1, 0, 4);
  const TrafficSnapshot diff = tm.snapshot().since(early);
  EXPECT_EQ(diff.bytesBetween(0, 1), 25u);
  EXPECT_EQ(diff.bytesBetween(1, 0), 4u);
  EXPECT_EQ(diff.totalOps(), 2u);
}

TEST(TrafficSnapshotTest, SinceSizeMismatchThrows) {
  TrafficMatrix a(2), b(3);
  EXPECT_THROW((void)b.snapshot().since(a.snapshot()), Error);
}

TEST(TrafficSnapshotTest, SinceAfterResetThrows) {
  // A reset() between the two snapshots makes the later one smaller; the
  // subtraction would underflow into garbage counters, so it must throw
  // in every build, not only under debug assertions.
  TrafficMatrix tm(2);
  tm.record(0, 1, 100);
  const TrafficSnapshot before = tm.snapshot();
  tm.reset();
  tm.record(0, 1, 10);
  const TrafficSnapshot after = tm.snapshot();
  EXPECT_THROW((void)after.since(before), Error);
}

TEST(TrafficSnapshotTest, HeatmapMentionsEveryRank) {
  TrafficMatrix tm(4);
  tm.record(1, 2, 1024);
  const std::string map = tm.snapshot().heatmap();
  EXPECT_NE(map.find("1.0KB"), std::string::npos);
  EXPECT_NE(map.find("src\\dst"), std::string::npos);
}

TEST(TrafficIntegrationTest, P2pBytesMatchPayload) {
  Engine engine(2);
  const RunStats stats = engine.run([](Comm& c) {
    if (c.rank() == 0) c.send(1, std::vector<double>(100, 1.0));
    else (void)c.recvVec<double>(0);
  });
  EXPECT_EQ(stats.traffic.bytesBetween(0, 1), 800u);
  EXPECT_EQ(stats.traffic.bytesBetween(1, 0), 0u);
  EXPECT_EQ(stats.traffic.opsBetween(0, 1), 1u);
}

TEST(TrafficIntegrationTest, NoCommMeansZeroTraffic) {
  Engine engine(4);
  const RunStats stats = engine.run([](Comm&) {
    double x = 1.0;
    for (int i = 0; i < 1000; ++i) x = x * 1.0000001 + 1e-9;
    EXPECT_GT(x, 0.0);
  });
  EXPECT_EQ(stats.traffic.totalBytes(), 0u);
  EXPECT_EQ(stats.traffic.totalOps(), 0u);
}

TEST(TrafficIntegrationTest, BcastUsesLogTreeEdges) {
  // A binomial broadcast from rank 0 among 8 ranks sends exactly 7 payload
  // messages (every rank receives once).
  Engine engine(8);
  const RunStats stats = engine.run([](Comm& c) {
    double v = c.rank() == 0 ? 1.0 : 0.0;
    c.bcast(v, 0);
  });
  std::size_t receives = 0;
  for (int dst = 0; dst < 8; ++dst) {
    for (int src = 0; src < 8; ++src) {
      if (stats.traffic.bytesBetween(src, dst) > 0) ++receives;
    }
  }
  EXPECT_EQ(receives, 7u);
  EXPECT_EQ(stats.traffic.totalBytes(), 7 * sizeof(double));
}

TEST(TrafficIntegrationTest, MidRunSnapshotIsMonotonic) {
  Engine engine(2);
  engine.run([](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 1);
      const TrafficSnapshot s1 = c.trafficSnapshot();
      c.send(1, 2);
      const TrafficSnapshot s2 = c.trafficSnapshot();
      EXPECT_GE(s2.totalBytes(), s1.totalBytes());
      EXPECT_EQ(s2.since(s1).totalOps(), 1u);
    } else {
      c.recv<int>(0);
      c.recv<int>(0);
    }
  });
}

}  // namespace
}  // namespace casvm::net
