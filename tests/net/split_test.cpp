#include <gtest/gtest.h>

#include "casvm/net/comm.hpp"

namespace casvm::net {
namespace {

RunStats run(int size, const std::function<void(Comm&)>& fn) {
  Engine engine(size);
  return engine.run(fn);
}

TEST(SplitTest, EvenOddGroups) {
  run(8, [](Comm& world) {
    Comm group = world.split(world.rank() % 2, world.rank());
    EXPECT_EQ(group.size(), 4);
    EXPECT_EQ(group.rank(), world.rank() / 2);
    EXPECT_EQ(group.worldRank(), world.rank());
    EXPECT_FALSE(group.isWorld());
    EXPECT_TRUE(world.isWorld());

    // Group-local allreduce sums only the group's world ranks.
    const long long sum = group.allreduceSum(
        static_cast<long long>(world.rank()));
    const long long expected = world.rank() % 2 == 0 ? 0 + 2 + 4 + 6
                                                     : 1 + 3 + 5 + 7;
    EXPECT_EQ(sum, expected);
  });
}

TEST(SplitTest, KeyControlsOrdering) {
  run(4, [](Comm& world) {
    // Reverse the ranks: key = -rank.
    Comm reversed = world.split(0, -world.rank());
    EXPECT_EQ(reversed.size(), 4);
    EXPECT_EQ(reversed.rank(), 3 - world.rank());
    // Broadcast from the new rank 0 (= old rank 3).
    int value = world.rank() == 3 ? 99 : -1;
    reversed.bcast(value, 0);
    EXPECT_EQ(value, 99);
  });
}

TEST(SplitTest, SingletonGroups) {
  run(3, [](Comm& world) {
    Comm alone = world.split(world.rank(), 0);  // unique color each
    EXPECT_EQ(alone.size(), 1);
    EXPECT_EQ(alone.rank(), 0);
    // Collectives on a singleton are no-ops that still work.
    EXPECT_EQ(alone.allreduceSum(7LL), 7LL);
    alone.barrier();
  });
}

TEST(SplitTest, ParentStillUsableAfterSplit) {
  run(6, [](Comm& world) {
    Comm group = world.split(world.rank() / 3, world.rank());
    const long long groupSum = group.allreduceSum(1LL);
    EXPECT_EQ(groupSum, 3);
    // The parent communicator is unaffected.
    const long long worldSum = world.allreduceSum(1LL);
    EXPECT_EQ(worldSum, 6);
  });
}

TEST(SplitTest, ContextsIsolateTraffic) {
  // Same (src, dst, tag) on parent and child simultaneously in flight:
  // messages must match within their own communicator.
  run(2, [](Comm& world) {
    Comm child = world.split(0, world.rank());
    if (world.rank() == 0) {
      world.send(1, 111, /*tag=*/5);
      child.send(1, 222, /*tag=*/5);
    } else {
      // Receive in the OPPOSITE order of sending: contexts must keep the
      // two channels apart even though (src, tag) coincide.
      EXPECT_EQ(child.recv<int>(0, 5), 222);
      EXPECT_EQ(world.recv<int>(0, 5), 111);
    }
  });
}

TEST(SplitTest, NestedSplits) {
  run(8, [](Comm& world) {
    Comm half = world.split(world.rank() / 4, world.rank());  // two halves
    ASSERT_EQ(half.size(), 4);
    Comm quarter = half.split(half.rank() / 2, half.rank());  // two pairs
    ASSERT_EQ(quarter.size(), 2);
    const long long sum = quarter.allreduceSum(
        static_cast<long long>(world.rank()));
    // Pairs are (0,1), (2,3), (4,5), (6,7) in world ranks.
    const int base = (world.rank() / 2) * 2;
    EXPECT_EQ(sum, base + base + 1);
  });
}

TEST(SplitTest, TrafficRecordedOnWorldEdges) {
  TrafficSnapshot afterSplit;
  const RunStats stats = run(4, [&](Comm& world) {
    Comm group = world.split(world.rank() / 2, world.rank());
    // Baseline after the split's own allgather traffic settles.
    world.instrumentationFence(
        [&] { afterSplit = world.trafficSnapshot(); });
    if (group.rank() == 0) {
      group.send(1, 42);
    } else {
      (void)group.recv<int>(0);
    }
  });
  const TrafficSnapshot sends = stats.traffic.since(afterSplit);
  // Group {0,1}: 0 -> 1. Group {2,3}: 2 -> 3. Physical edges preserved.
  EXPECT_EQ(sends.bytesBetween(0, 1), sizeof(int));
  EXPECT_EQ(sends.bytesBetween(2, 3), sizeof(int));
  EXPECT_EQ(sends.totalOps(), 2u);
}

TEST(SplitTest, GroupGatherCollectsGroupMembers) {
  run(6, [](Comm& world) {
    Comm group = world.split(world.rank() % 3, world.rank());
    ASSERT_EQ(group.size(), 2);
    const std::vector<int> all = group.allgather(world.rank());
    EXPECT_EQ(all[0] % 3, all[1] % 3);
    EXPECT_NE(all[0], all[1]);
  });
}

TEST(SplitTest, FenceWorksOnSubcommunicator) {
  run(4, [](Comm& world) {
    Comm group = world.split(world.rank() / 2, world.rank());
    int hits = 0;
    group.instrumentationFence([&] { ++hits; });
    // Only group rank 0 executes the callback.
    EXPECT_EQ(hits, group.rank() == 0 ? 1 : 0);
  });
}

TEST(SplitTest, ManySplitsExhaustBudgetGracefully) {
  run(2, [](Comm& world) {
    // The per-communicator split budget is 15; the 16th must throw.
    for (int i = 0; i < 15; ++i) {
      (void)world.split(0, world.rank());
    }
    EXPECT_THROW((void)world.split(0, world.rank()), Error);
  });
}

}  // namespace
}  // namespace casvm::net
