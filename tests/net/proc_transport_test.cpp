// Lifecycle tests for the proc backend: bounded receives, real-signal
// fault injection (SIGKILL / SIGSTOP on forked workers), the supervisor's
// crash-vs-hang taxonomy, respawn with backoff, and degraded-mode
// fallback when a rank is finally dead.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "casvm/net/comm.hpp"
#include "casvm/support/error.hpp"

namespace casvm::net {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Engine preconfigured for the proc backend with fast-failure tuning so
/// the chaos tests stay quick.
Engine procEngine(int size, TransportTuning tuning = {}) {
  Engine engine(size);
  engine.setTransport(TransportKind::Proc, tuning);
  return engine;
}

TEST(ProcTransportTest, RecvFromSilentPeerTimesOutWithNamedError) {
  TransportTuning tuning;
  tuning.commTimeoutMs = 300;
  Engine engine = procEngine(2, tuning);
  try {
    engine.run([](Comm& comm) {
      if (comm.rank() == 0) comm.recv<double>(1, 5);  // never sent
    });
    FAIL() << "expected a comm timeout";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("comm timeout"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("supervisor log"), std::string::npos) << what;
  }
}

TEST(ProcTransportTest, KilledWorkerIsClassifiedAsCrash) {
  FaultPlan plan = FaultPlan::parse("kill:rank=1,op=1");
  TransportTuning tuning;
  tuning.commTimeoutMs = 10000;
  Engine engine = procEngine(2, tuning);
  engine.setFaultPlan(plan);
  const std::string logPath =
      testing::TempDir() + "casvm_kill_taxonomy.log";
  std::remove(logPath.c_str());
  engine.setSupervisorLogPath(logPath);
  try {
    engine.run([](Comm& comm) {
      if (comm.rank() == 1) {
        comm.send(0, 7.0);  // op 1: SIGKILL fires here
      } else {
        comm.recv<double>(1);  // woken by the abort, not the timeout
      }
    });
    FAIL() << "expected the run to fail";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("killed by signal 9"), std::string::npos) << what;
  }
  const std::string log = slurp(logPath);
  EXPECT_NE(log.find("crash (killed by signal 9)"), std::string::npos) << log;
  EXPECT_NE(log.find("aborting the whole run"), std::string::npos) << log;
}

TEST(ProcTransportTest, StoppedWorkerIsClassifiedAsHangAndKilled) {
  FaultPlan plan = FaultPlan::parse("hang:rank=1,op=1");
  TransportTuning tuning;
  tuning.heartbeatMs = 10;  // staleAfterMs() floors at 500ms
  tuning.commTimeoutMs = 10000;
  Engine engine = procEngine(2, tuning);
  engine.setFaultPlan(plan);
  const std::string logPath = testing::TempDir() + "casvm_hang_taxonomy.log";
  std::remove(logPath.c_str());
  engine.setSupervisorLogPath(logPath);
  try {
    engine.run([](Comm& comm) {
      if (comm.rank() == 1) {
        comm.send(0, 7.0);  // op 1: SIGSTOP fires here
      } else {
        comm.recv<double>(1);
      }
    });
    FAIL() << "expected the run to fail";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("hang (heartbeat stale"), std::string::npos) << what;
    EXPECT_NE(what.find("SIGKILLed"), std::string::npos) << what;
  }
  const std::string log = slurp(logPath);
  EXPECT_NE(log.find("taxonomy: hang"), std::string::npos) << log;
}

TEST(ProcTransportTest, KilledWorkerRespawnsAndRunRecovers) {
  FaultPlan plan = FaultPlan::parse("kill:rank=1,op=1");
  TransportTuning tuning;
  tuning.commTimeoutMs = 20000;
  tuning.respawnBackoffMs = 10;
  Engine engine = procEngine(2, tuning);
  engine.setFaultPlan(plan);
  engine.setRespawnBudget(2);
  // The respawned incarnation runs this instead of the original body; the
  // fault plan is not re-armed, so the send goes through.
  engine.setRespawnFn(
      [](Comm& comm, int attempt) { comm.send(0, 100.0 + attempt); });
  const std::string logPath = testing::TempDir() + "casvm_respawn.log";
  std::remove(logPath.c_str());
  engine.setSupervisorLogPath(logPath);

  // Ship rank 0's received value back through the result channel (the
  // value lives in the worker process's memory).
  std::vector<double> got(2, 0.0);
  Engine::ResultChannel channel;
  channel.serialize = [&](int rank) {
    std::vector<std::byte> out(sizeof(double));
    std::memcpy(out.data(), &got[static_cast<std::size_t>(rank)],
                sizeof(double));
    return out;
  };
  channel.absorb = [&](int rank, const std::vector<std::byte>& bytes) {
    ASSERT_EQ(bytes.size(), sizeof(double));
    std::memcpy(&got[static_cast<std::size_t>(rank)], bytes.data(),
                sizeof(double));
  };
  engine.setResultChannel(std::move(channel));

  const RunStats stats = engine.run([&](Comm& comm) {
    if (comm.rank() == 1) {
      comm.send(0, 7.0);  // SIGKILLed before this lands
    } else {
      got[0] = comm.recv<double>(1);  // satisfied by the respawn
    }
  });
  // run() returning at all proves the respawn resolved rank 1; the value
  // proves rank 0's blocked recv was satisfied by the second incarnation.
  EXPECT_TRUE(stats.failures.empty());
  EXPECT_EQ(got[0], 101.0);  // attempt 1, not the original 7.0
  const std::string log = slurp(logPath);
  EXPECT_NE(log.find("scheduling respawn attempt 1"), std::string::npos)
      << log;
  EXPECT_NE(log.find("attempt 1"), std::string::npos) << log;
}

TEST(ProcTransportTest, FinalDeathDegradesWhenTolerated) {
  FaultPlan plan = FaultPlan::parse("kill:rank=1,op=1");
  TransportTuning tuning;
  tuning.commTimeoutMs = 10000;
  Engine engine = procEngine(2, tuning);
  engine.setFaultPlan(plan);
  engine.setTolerateRankFailures(true);  // no respawn fn: death is final
  const RunStats stats = engine.run([](Comm& comm) {
    if (comm.rank() == 1) comm.send(0, 7.0);
    // rank 0 does not depend on rank 1 — communication-avoiding shape.
  });
  ASSERT_EQ(stats.failures.size(), 1u);
  EXPECT_EQ(stats.failures[0].rank, 1);
  EXPECT_NE(stats.failures[0].reason.find("killed by signal 9"),
            std::string::npos)
      << stats.failures[0].reason;
  EXPECT_TRUE(stats.degraded());
}

TEST(ProcTransportTest, RunStatsCarryCrossProcessTrafficAndClocks) {
  Engine engine = procEngine(2);
  const RunStats stats = engine.run([](Comm& comm) {
    for (int i = 0; i < 3; ++i) comm.allreduceSum(1.0);
  });
  EXPECT_GT(stats.traffic.totalBytes(), 0u);
  EXPECT_GT(stats.traffic.totalOps(), 0u);
  // Virtual clocks crossed the process boundary via result frames.
  EXPECT_GT(stats.commSeconds.at(0) + stats.commSeconds.at(1), 0.0);
}

TEST(ProcTransportTest, HostileTuningIsRejectedAtConfigurationTime) {
  Engine engine(2);
  TransportTuning zeroTimeout;
  zeroTimeout.commTimeoutMs = 0;
  EXPECT_THROW(engine.setTransport(TransportKind::Proc, zeroTimeout), Error);
  TransportTuning negativeBeat;
  negativeBeat.heartbeatMs = -5;
  EXPECT_THROW(engine.setTransport(TransportKind::Proc, negativeBeat), Error);
  TransportTuning hugeBackoff;
  hugeBackoff.respawnBackoffMs = 1 << 30;
  EXPECT_THROW(engine.setTransport(TransportKind::Proc, hugeBackoff), Error);
}

TEST(ProcTransportTest, ThreadBackendRejectsKillAndHangPlans) {
  Engine engine(2);  // default thread backend
  engine.setFaultPlan(FaultPlan::parse("hang:rank=0,op=1"));
  try {
    engine.run([](Comm&) {});
    FAIL() << "expected the thread backend to reject the plan";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--transport proc"), std::string::npos) << what;
    EXPECT_NE(what.find("hang:rank=0,op=1"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace casvm::net
