#include "casvm/solver/smo.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "casvm/data/registry.hpp"
#include "casvm/data/synth.hpp"
#include "casvm/support/error.hpp"

namespace casvm::solver {
namespace {

SolverOptions gaussianOptions(double gamma = 0.5, double C = 1.0) {
  SolverOptions opts;
  opts.kernel = kernel::KernelParams::gaussian(gamma);
  opts.C = C;
  return opts;
}

TEST(SmoAnalyticTest, TwoPointProblem) {
  // Two points on the x-axis at -1 and +1 with a linear kernel: the dual
  // optimum is alpha_0 = alpha_1 = 0.5 (margin 2 => |w| = 1), bias 0.
  const auto ds = data::Dataset::fromDense(1, {-1.0f, 1.0f}, {-1, 1});
  SolverOptions opts;
  opts.kernel = kernel::KernelParams::linear();
  opts.C = 10.0;
  opts.tolerance = 1e-6;
  const SolverResult res = SmoSolver(opts).solve(ds);
  ASSERT_EQ(res.alpha.size(), 2u);
  EXPECT_NEAR(res.alpha[0], 0.5, 1e-4);
  EXPECT_NEAR(res.alpha[1], 0.5, 1e-4);
  EXPECT_NEAR(res.model.bias(), 0.0, 1e-4);
  EXPECT_NEAR(res.objective, 0.5, 1e-4);  // sum a - 1/2 a^T Q a = 1 - 0.5
  EXPECT_TRUE(res.converged);
}

TEST(SmoAnalyticTest, AsymmetricTwoPoints) {
  // Points at 0 and 2: separating plane at x = 1, decision = x - 1.
  const auto ds = data::Dataset::fromDense(1, {0.0f, 2.0f}, {-1, 1});
  SolverOptions opts;
  opts.kernel = kernel::KernelParams::linear();
  opts.C = 10.0;
  opts.tolerance = 1e-6;
  const SolverResult res = SmoSolver(opts).solve(ds);
  const std::vector<float> probe{3.0f};
  EXPECT_NEAR(res.model.decision(probe), 2.0, 1e-3);
  const std::vector<float> origin{1.0f};
  EXPECT_NEAR(res.model.decision(origin), 0.0, 1e-3);
}

TEST(SmoTest, SeparableBlobsPerfectTraining) {
  const auto ds = data::generateTwoGaussians(400, 6, 8.0, 17);
  const SolverResult res = SmoSolver(gaussianOptions(0.1)).solve(ds);
  EXPECT_TRUE(res.converged);
  EXPECT_GE(res.model.accuracy(ds), 0.995);
}

TEST(SmoTest, SumAlphaYIsZero) {
  const auto ds = data::generateTwoGaussians(200, 4, 3.0, 23);
  const SolverResult res = SmoSolver(gaussianOptions()).solve(ds);
  double sum = 0.0;
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    sum += res.alpha[i] * ds.label(i);
  }
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(SmoTest, BoxConstraintsRespected) {
  const auto ds = data::generateTwoGaussians(300, 4, 1.0, 29);  // overlapping
  const double C = 0.7;
  const SolverResult res = SmoSolver(gaussianOptions(0.5, C)).solve(ds);
  for (double a : res.alpha) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, C + 1e-12);
  }
}

TEST(SmoTest, KktConditionsAtSolution) {
  // At convergence, b_low <= b_high + 2 tau means: for every i in the high
  // set f_i >= b_high, for every i in the low set f_i <= b_low, and the
  // two thresholds straddle the bias. Verify via explicit f recomputation.
  const auto ds = data::generateTwoGaussians(150, 3, 2.0, 31);
  SolverOptions opts = gaussianOptions(0.5, 1.0);
  opts.tolerance = 1e-3;
  const SolverResult res = SmoSolver(opts).solve(ds);
  ASSERT_TRUE(res.converged);

  const kernel::Kernel k(opts.kernel);
  std::vector<double> f(ds.rows(), 0.0);
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < ds.rows(); ++j) {
      if (res.alpha[j] != 0.0) {
        acc += res.alpha[j] * ds.label(j) * k.eval(ds, i, j);
      }
    }
    f[i] = acc - ds.label(i);
  }
  double bHigh = 1e300, bLow = -1e300;
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    const bool highSet = (ds.label(i) == 1 && res.alpha[i] < opts.C) ||
                         (ds.label(i) == -1 && res.alpha[i] > 0.0);
    const bool lowSet = (ds.label(i) == 1 && res.alpha[i] > 0.0) ||
                        (ds.label(i) == -1 && res.alpha[i] < opts.C);
    if (highSet) bHigh = std::min(bHigh, f[i]);
    if (lowSet) bLow = std::max(bLow, f[i]);
  }
  EXPECT_LE(bLow, bHigh + 2.0 * opts.tolerance + 1e-9);
}

TEST(SmoTest, ObjectiveMatchesBruteForce) {
  const auto ds = data::generateTwoGaussians(80, 3, 2.0, 37);
  SolverOptions opts = gaussianOptions(0.5);
  const SolverResult res = SmoSolver(opts).solve(ds);
  const kernel::Kernel k(opts.kernel);
  double brute = 0.0;
  for (std::size_t i = 0; i < ds.rows(); ++i) brute += res.alpha[i];
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    if (res.alpha[i] == 0.0) continue;
    for (std::size_t j = 0; j < ds.rows(); ++j) {
      if (res.alpha[j] == 0.0) continue;
      brute -= 0.5 * res.alpha[i] * res.alpha[j] * ds.label(i) *
               ds.label(j) * k.eval(ds, i, j);
    }
  }
  EXPECT_NEAR(res.objective, brute, 1e-6 * std::max(1.0, std::abs(brute)));
}

TEST(SmoTest, WarmStartReducesIterations) {
  const auto nd = data::standin("toy", 0.5);
  SolverOptions opts = gaussianOptions(nd.suggestedGamma, nd.suggestedC);
  const SolverResult cold = SmoSolver(opts).solve(nd.train);
  ASSERT_TRUE(cold.converged);
  // Re-solving from the converged alphas should take (almost) no work.
  const SolverResult warm = SmoSolver(opts).solve(nd.train, cold.alpha);
  EXPECT_LT(warm.iterations, cold.iterations / 4 + 10);
  EXPECT_NEAR(warm.model.accuracy(nd.test), cold.model.accuracy(nd.test),
              0.02);
}

TEST(SmoTest, WarmStartClipsOutOfBoxValues) {
  const auto ds = data::generateTwoGaussians(60, 3, 3.0, 41);
  SolverOptions opts = gaussianOptions(0.5, 1.0);
  std::vector<double> bad(ds.rows(), 5.0);  // way above C
  const SolverResult res = SmoSolver(opts).solve(ds, bad);
  for (double a : res.alpha) EXPECT_LE(a, 1.0 + 1e-12);
}

TEST(SmoTest, MaxIterationsCapRespected) {
  const auto nd = data::standin("toy", 0.5);
  SolverOptions opts = gaussianOptions(nd.suggestedGamma);
  opts.maxIterations = 5;
  const SolverResult res = SmoSolver(opts).solve(nd.train);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 5u);
}

TEST(SmoTest, SingleClassThrows) {
  const auto ds = data::Dataset::fromDense(1, {1.0f, 2.0f}, {1, 1});
  EXPECT_THROW((void)SmoSolver(gaussianOptions()).solve(ds), Error);
}

TEST(SmoTest, TooFewSamplesThrows) {
  const auto ds = data::Dataset::fromDense(1, {1.0f}, {1});
  EXPECT_THROW((void)SmoSolver(gaussianOptions()).solve(ds), Error);
}

TEST(SmoTest, WrongAlphaLengthThrows) {
  const auto ds = data::generateTwoGaussians(10, 2, 3.0, 43);
  std::vector<double> alpha(5, 0.0);
  EXPECT_THROW((void)SmoSolver(gaussianOptions()).solve(ds, alpha), Error);
}

TEST(SmoTest, InvalidOptionsThrow) {
  SolverOptions opts = gaussianOptions();
  opts.C = 0.0;
  EXPECT_THROW(SmoSolver{opts}, Error);
  opts = gaussianOptions();
  opts.tolerance = 0.0;
  EXPECT_THROW(SmoSolver{opts}, Error);
}

TEST(SmoTest, CacheStatsReported) {
  const auto ds = data::generateTwoGaussians(100, 3, 3.0, 47);
  const SolverResult res = SmoSolver(gaussianOptions()).solve(ds);
  EXPECT_GT(res.kernelRowsComputed + res.kernelRowHits, 0u);
}

TEST(SmoTest, SupportVectorsAreNonzeroAlphas) {
  const auto ds = data::generateTwoGaussians(120, 3, 4.0, 53);
  const SolverResult res = SmoSolver(gaussianOptions(0.2)).solve(ds);
  std::size_t nonzero = 0;
  for (double a : res.alpha) nonzero += (a > 0.0);
  EXPECT_EQ(res.model.numSupportVectors(), nonzero);
  EXPECT_LT(nonzero, ds.rows());  // separable data -> sparse model
}

TEST(SmoTest, SparseDatasetSolvable) {
  data::MixtureSpec spec;
  spec.samples = 200;
  spec.features = 30;
  spec.sparsity = 0.7;
  spec.sparseOutput = true;
  spec.seed = 59;
  const auto ds = data::generateMixture(spec);
  const SolverResult res = SmoSolver(gaussianOptions(0.5)).solve(ds);
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.model.accuracy(ds), 0.9);
}

/// Generalization sweep: every stand-in dataset must reach a reasonable
/// test accuracy with its suggested parameters — the baseline for the
/// paper-table benches.
class SmoDatasetTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SmoDatasetTest, SuggestedParametersGeneralize) {
  const auto nd = data::standin(GetParam(), 0.25);
  SolverOptions opts;
  opts.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
  opts.C = nd.suggestedC;
  const SolverResult res = SmoSolver(opts).solve(nd.train);
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.model.accuracy(nd.test), 0.85) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Standins, SmoDatasetTest,
                         ::testing::Values("adult", "epsilon", "face",
                                           "gisette", "ijcnn", "usps",
                                           "webspam", "forest", "toy"));

/// Selection-rule sweep: first- and second-order working-set selection
/// must both converge to solutions of the same quality.
class SmoSelectionTest : public ::testing::TestWithParam<Selection> {};

TEST_P(SmoSelectionTest, ConvergesWithGoodAccuracy) {
  const auto nd = data::standin("toy", 0.4);
  SolverOptions opts = gaussianOptions(nd.suggestedGamma);
  opts.selection = GetParam();
  const SolverResult res = SmoSolver(opts).solve(nd.train);
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.model.accuracy(nd.test), 0.93);
}

INSTANTIATE_TEST_SUITE_P(Rules, SmoSelectionTest,
                         ::testing::Values(Selection::FirstOrder,
                                           Selection::SecondOrder));

TEST(SmoSelectionTest, SecondOrderNoMoreIterations) {
  const auto nd = data::standin("ijcnn", 0.3);
  SolverOptions first = gaussianOptions(nd.suggestedGamma);
  SolverOptions second = first;
  second.selection = Selection::SecondOrder;
  const SolverResult r1 = SmoSolver(first).solve(nd.train);
  const SolverResult r2 = SmoSolver(second).solve(nd.train);
  // Second-order selection should be in the same ballpark or better.
  EXPECT_LE(r2.iterations, r1.iterations * 2 + 100);
}


TEST(SmoWeightedTest, WeightsRespectPerClassBox) {
  const auto ds = data::generateTwoGaussians(200, 4, 1.0, 61);  // overlapping
  SolverOptions opts = gaussianOptions(0.5, 1.0);
  opts.positiveWeight = 3.0;
  opts.negativeWeight = 0.5;
  const SolverResult res = SmoSolver(opts).solve(ds);
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    const double box = ds.label(i) == 1 ? 3.0 : 0.5;
    EXPECT_GE(res.alpha[i], 0.0);
    EXPECT_LE(res.alpha[i], box + 1e-12);
  }
  // Some negative alphas must actually sit at their tighter bound for the
  // weighting to have bitten on overlapping data.
  bool negAtBound = false;
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    if (ds.label(i) == -1 && res.alpha[i] > 0.5 - 1e-9) negAtBound = true;
  }
  EXPECT_TRUE(negAtBound);
}

TEST(SmoWeightedTest, UpweightingPositivesRaisesRecall) {
  // Imbalanced, overlapping data: boosting the positive box should recover
  // more of the minority class (at some precision cost).
  data::MixtureSpec spec;
  spec.samples = 800;
  spec.features = 6;
  spec.clusters = 4;
  spec.positiveFraction = 0.1;
  spec.clusterSpread = 2.0;  // heavy overlap so errors exist
  spec.centerSpread = 2.0;
  spec.seed = 67;
  const auto ds = data::generateMixture(spec);

  auto recall = [&](double posWeight) {
    SolverOptions opts = gaussianOptions(0.25, 1.0);
    opts.positiveWeight = posWeight;
    const Model model = SmoSolver(opts).solve(ds).model;
    std::size_t hit = 0, pos = 0;
    for (std::size_t i = 0; i < ds.rows(); ++i) {
      if (ds.label(i) != 1) continue;
      ++pos;
      hit += (model.predictFor(ds, i) == 1);
    }
    return static_cast<double>(hit) / static_cast<double>(pos);
  };
  EXPECT_GE(recall(8.0), recall(1.0));
}

TEST(SmoWeightedTest, InvalidWeightsThrow) {
  SolverOptions opts = gaussianOptions();
  opts.positiveWeight = 0.0;
  EXPECT_THROW(SmoSolver{opts}, Error);
  opts = gaussianOptions();
  opts.negativeWeight = -1.0;
  EXPECT_THROW(SmoSolver{opts}, Error);
}

TEST(SmoDegenerateTest, BoundPinnedWarmStartKeepsBiasFinite) {
  // Regression: with every positive alpha at C and every negative at 0, the
  // high set is empty on the very first scan, so bHigh stayed +inf and
  // bias = -(bHigh + bLow)/2 came out NaN/inf. The solver must fall back to
  // the one finite threshold (or bracket f) and produce a usable model.
  const auto ds = data::generateTwoGaussians(40, 3, 6.0, 73);
  SolverOptions opts = gaussianOptions(0.5, 1.0);
  std::vector<double> pinned(ds.rows());
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    pinned[i] = ds.label(i) == 1 ? opts.C : 0.0;
  }
  const SolverResult res = SmoSolver(opts).solve(ds, pinned);
  EXPECT_TRUE(std::isfinite(res.model.bias()));
  EXPECT_TRUE(std::isfinite(res.objective));
  const std::vector<float> probe(ds.cols(), 0.0f);
  EXPECT_TRUE(std::isfinite(res.model.decision(probe)));
}

TEST(SmoDegenerateTest, AllAlphasAtBoundBothWays) {
  // Mirror case: positives at 0, negatives at C empties the low set too.
  const auto ds = data::generateTwoGaussians(40, 3, 6.0, 79);
  SolverOptions opts = gaussianOptions(0.5, 1.0);
  std::vector<double> pinned(ds.rows());
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    pinned[i] = ds.label(i) == 1 ? 0.0 : opts.C;
  }
  const SolverResult res = SmoSolver(opts).solve(ds, pinned);
  EXPECT_TRUE(std::isfinite(res.model.bias()));
  EXPECT_TRUE(std::isfinite(res.objective));
}

TEST(SmoShrinkingTest, ObjectiveMatchesShrinkingOff) {
  // Regression for the stale-threshold shrink pass: the filter used to
  // sample bLow/bHigh *before* the two-variable update mutated f, so it
  // could shrink a sample the update had just made violating, and the
  // shrunk solve drifted from the exact one. With post-update thresholds,
  // shrinking + unshrink must land on the same objective as shrinking off
  // (up to the convergence tolerance).
  for (const char* name : {"ijcnn", "adult"}) {
    const auto nd = data::standin(name, 0.4);
    SolverOptions plain = gaussianOptions(nd.suggestedGamma, nd.suggestedC);
    plain.selection = Selection::SecondOrder;
    SolverOptions shrunk = plain;
    shrunk.shrinking = true;
    shrunk.shrinkInterval = 25;  // aggressive, to stress the filter
    const SolverResult a = SmoSolver(plain).solve(nd.train);
    const SolverResult b = SmoSolver(shrunk).solve(nd.train);
    ASSERT_TRUE(a.converged) << name;
    ASSERT_TRUE(b.converged) << name;
    EXPECT_NEAR(a.objective, b.objective,
                1e-3 * std::max(1.0, std::abs(a.objective)))
        << name;
  }
}

TEST(SmoShrinkingTest, SameSolutionQuality) {
  const auto nd = data::standin("ijcnn", 0.4);
  SolverOptions plain = gaussianOptions(nd.suggestedGamma, nd.suggestedC);
  SolverOptions shrunk = plain;
  shrunk.shrinking = true;
  shrunk.shrinkInterval = 100;
  const SolverResult a = SmoSolver(plain).solve(nd.train);
  const SolverResult b = SmoSolver(shrunk).solve(nd.train);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_NEAR(a.model.accuracy(nd.test), b.model.accuracy(nd.test), 0.02);
  EXPECT_NEAR(a.objective, b.objective,
              0.02 * std::max(1.0, std::abs(a.objective)));
}

TEST(SmoShrinkingTest, KktStillHoldsAfterShrinking) {
  const auto ds = data::generateTwoGaussians(300, 3, 2.0, 71);
  SolverOptions opts = gaussianOptions(0.5, 1.0);
  opts.shrinking = true;
  opts.shrinkInterval = 50;
  const SolverResult res = SmoSolver(opts).solve(ds);
  ASSERT_TRUE(res.converged);
  // Recompute thresholds over the FULL problem; shrinking must not have
  // declared convergence while a shrunk-out sample still violates.
  const kernel::Kernel k(opts.kernel);
  double bHigh = 1e300, bLow = -1e300;
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < ds.rows(); ++j) {
      if (res.alpha[j] != 0.0) {
        acc += res.alpha[j] * ds.label(j) * k.eval(ds, i, j);
      }
    }
    const double fi = acc - ds.label(i);
    const bool highSet = (ds.label(i) == 1 && res.alpha[i] < opts.C) ||
                         (ds.label(i) == -1 && res.alpha[i] > 0.0);
    const bool lowSet = (ds.label(i) == 1 && res.alpha[i] > 0.0) ||
                        (ds.label(i) == -1 && res.alpha[i] < opts.C);
    if (highSet) bHigh = std::min(bHigh, fi);
    if (lowSet) bLow = std::max(bLow, fi);
  }
  EXPECT_LE(bLow, bHigh + 2.0 * opts.tolerance + 1e-6);
}

TEST(SmoShrinkingTest, DegenerateStepWhileShrunkUnshrinksAndRecovers) {
  // Regression: when the maximal violating pair over the SHRUNK set is
  // pinned at the box and cannot move, the solver used to bail out of the
  // whole solve — but the pair is often only stuck because the sample that
  // would free it was shrunk away. The solver must restore the full
  // problem and retry once before giving up. Stress the path with a very
  // aggressive shrink cadence and asymmetric per-class boxes (the small
  // negative box pins negatives almost immediately) across several draws;
  // a premature bail shows up as non-convergence or a worse objective
  // than the shrinking-off reference.
  for (int seed : {3, 11, 19, 27}) {
    const auto ds = data::generateTwoGaussians(240, 4, 1.5, seed);
    SolverOptions plain = gaussianOptions(0.5, 1.0);
    plain.positiveWeight = 3.0;
    plain.negativeWeight = 0.05;
    SolverOptions shrunk = plain;
    shrunk.shrinking = true;
    shrunk.shrinkInterval = 10;
    const SolverResult a = SmoSolver(plain).solve(ds);
    const SolverResult b = SmoSolver(shrunk).solve(ds);
    ASSERT_TRUE(a.converged) << "seed " << seed;
    EXPECT_TRUE(b.converged) << "seed " << seed;
    EXPECT_NEAR(a.objective, b.objective,
                1e-3 * std::max(1.0, std::abs(a.objective)))
        << "seed " << seed;
  }
}

TEST(SmoShrinkingTest, WarmStartComposesWithShrinking) {
  const auto nd = data::standin("toy", 0.5);
  SolverOptions opts = gaussianOptions(nd.suggestedGamma);
  opts.shrinking = true;
  opts.shrinkInterval = 50;
  const SolverResult cold = SmoSolver(opts).solve(nd.train);
  const SolverResult warm = SmoSolver(opts).solve(nd.train, cold.alpha);
  EXPECT_LT(warm.iterations, cold.iterations / 4 + 10);
}

}  // namespace
}  // namespace casvm::solver
