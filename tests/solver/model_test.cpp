#include "casvm/solver/model.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>

#include "casvm/data/synth.hpp"
#include "casvm/solver/smo.hpp"
#include "casvm/support/error.hpp"

namespace casvm::solver {
namespace {

Model trainedModel(std::uint64_t seed = 61) {
  const auto ds = data::generateTwoGaussians(150, 4, 5.0, seed);
  SolverOptions opts;
  opts.kernel = kernel::KernelParams::gaussian(0.2);
  return SmoSolver(opts).solve(ds).model;
}

TEST(ModelTest, CoefficientCountMustMatchSVs) {
  const auto svs = data::Dataset::fromDense(1, {1.0f}, {1});
  EXPECT_THROW(Model(kernel::KernelParams::linear(), svs, {0.5, 0.5}, 0.0),
               Error);
}

TEST(ModelTest, DecisionMatchesManualSum) {
  const auto svs = data::Dataset::fromDense(1, {-1.0f, 1.0f}, {-1, 1});
  const Model m(kernel::KernelParams::linear(), svs, {-0.5, 0.5}, 0.25);
  // decision(x) = -0.5*(-1*x) ... coefficients are alpha*y already:
  // = -0.5*(-1 . x) + 0.5*(1 . x) + 0.25 = x + 0.25
  const std::vector<float> probe{2.0f};
  EXPECT_NEAR(m.decision(probe), 2.25, 1e-12);
}

TEST(ModelTest, DecisionForMatchesDecision) {
  const Model m = trainedModel();
  const auto test = data::generateTwoGaussians(20, 4, 5.0, 67);
  for (std::size_t i = 0; i < test.rows(); ++i) {
    EXPECT_NEAR(m.decisionFor(test, i), m.decision(test.denseRow(i)), 1e-9);
  }
}

TEST(ModelTest, PredictSignOfDecision) {
  const Model m = trainedModel();
  const auto test = data::generateTwoGaussians(30, 4, 5.0, 71);
  for (std::size_t i = 0; i < test.rows(); ++i) {
    const std::int8_t expected = m.decisionFor(test, i) >= 0.0 ? 1 : -1;
    EXPECT_EQ(m.predictFor(test, i), expected);
  }
}

TEST(ModelTest, AccuracyHighOnSeparableData) {
  const Model m = trainedModel();
  const auto test = data::generateTwoGaussians(200, 4, 5.0, 73);
  EXPECT_GT(m.accuracy(test), 0.97);
}

TEST(ModelTest, EmptyModelPredictsBias) {
  const Model m(kernel::KernelParams::gaussian(1.0), data::Dataset(), {}, -1.0);
  const auto test = data::generateTwoGaussians(10, 4, 5.0, 79);
  for (std::size_t i = 0; i < test.rows(); ++i) {
    EXPECT_EQ(m.predictFor(test, i), -1);
  }
}

TEST(ModelTest, PackUnpackRoundTrip) {
  const Model m = trainedModel();
  const Model back = Model::unpack(m.pack());
  EXPECT_EQ(back.numSupportVectors(), m.numSupportVectors());
  EXPECT_DOUBLE_EQ(back.bias(), m.bias());
  EXPECT_EQ(back.kernelParams().type, m.kernelParams().type);
  const auto test = data::generateTwoGaussians(25, 4, 5.0, 83);
  for (std::size_t i = 0; i < test.rows(); ++i) {
    EXPECT_NEAR(back.decisionFor(test, i), m.decisionFor(test, i), 1e-12);
  }
}

TEST(ModelTest, SaveLoadRoundTrip) {
  const Model m = trainedModel();
  const std::string path = ::testing::TempDir() + "/casvm_model_test.bin";
  m.save(path);
  const Model back = Model::load(path);
  EXPECT_EQ(back.numSupportVectors(), m.numSupportVectors());
  EXPECT_DOUBLE_EQ(back.bias(), m.bias());
  std::remove(path.c_str());
}

TEST(ModelTest, LoadMissingFileThrows) {
  EXPECT_THROW((void)Model::load("/nonexistent/model.bin"), Error);
}

TEST(ModelTest, LoadTruncatedFileThrows) {
  // A file cut short (crash mid-copy, partial download) must be rejected
  // with Error, never turned into a half-initialized model.
  const Model m = trainedModel();
  const std::string path = ::testing::TempDir() + "/casvm_model_trunc.bin";
  m.save(path);
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) / 2);
  EXPECT_THROW((void)Model::load(path), Error);
  std::remove(path.c_str());
}

TEST(ModelTest, LoadGarbageFileThrows) {
  const std::string path = ::testing::TempDir() + "/casvm_model_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a model, it is a text file full of nonsense bytes";
  }
  EXPECT_THROW((void)Model::load(path), Error);
  std::remove(path.c_str());
}

TEST(ModelTest, SaveOverwritesAtomicallyLeavingNoTemp) {
  // Model::save goes through the atomic temp-file + rename helper: a second
  // save fully replaces the first (no stale tail bytes) and the directory
  // holds exactly the final file, no .tmp.* stragglers.
  const std::string dir = ::testing::TempDir() + "/casvm_model_atomic";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/model.bin";
  const Model a = trainedModel(61);
  const Model b = trainedModel(67);
  a.save(path);
  b.save(path);
  const Model back = Model::load(path);
  EXPECT_EQ(back.pack(), b.pack());
  std::size_t entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  std::filesystem::remove_all(dir);
}

TEST(ModelTest, TruncatedPackThrows) {
  const Model m = trainedModel();
  auto bytes = m.pack();
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW((void)Model::unpack(bytes), Error);
}

TEST(ModelTest, TruncationAtEveryPrefixThrowsNotCrashes) {
  const Model m = trainedModel();
  const auto bytes = m.pack();
  // Every strict prefix must be rejected with Error — in particular cuts
  // inside the header, inside the coefficient array and inside the SV
  // payload must never reach an allocation sized from garbage.
  for (std::size_t cut : {std::size_t{0}, std::size_t{4}, std::size_t{39},
                          std::size_t{47}, std::size_t{55}, std::size_t{56},
                          bytes.size() - 1}) {
    if (cut >= bytes.size()) continue;
    EXPECT_THROW((void)Model::unpack(std::span(bytes).first(cut)), Error)
        << "cut=" << cut;
  }
}

TEST(ModelTest, HostileCoefficientCountThrows) {
  const Model m = trainedModel();
  auto bytes = m.pack();
  // The alphaY count lives right after the kernel params and the bias.
  // Claiming 2^64-1 coefficients must throw (count validated against the
  // remaining payload, with no overflow in the size computation) instead
  // of attempting an absurd allocation.
  const std::size_t countOffset = sizeof(kernel::KernelParams) + sizeof(double);
  ASSERT_LT(countOffset + sizeof(std::uint64_t), bytes.size());
  for (std::size_t b = 0; b < sizeof(std::uint64_t); ++b) {
    bytes[countOffset + b] = std::byte{0xFF};
  }
  EXPECT_THROW((void)Model::unpack(bytes), Error);
}

TEST(ModelTest, CorruptCountJustPastPayloadThrows) {
  const Model m = trainedModel();
  auto bytes = m.pack();
  const std::size_t countOffset = sizeof(kernel::KernelParams) + sizeof(double);
  // One more coefficient than the payload can hold: the count/payload
  // cross-check must reject it even though the multiply would not overflow.
  const std::size_t remaining =
      bytes.size() - countOffset - sizeof(std::uint64_t);
  const std::uint64_t count = remaining / sizeof(double) + 1;
  std::memcpy(bytes.data() + countOffset, &count, sizeof(count));
  EXPECT_THROW((void)Model::unpack(bytes), Error);
}

TEST(ModelTest, AccuracyOnEmptyTestSetThrows) {
  const Model m = trainedModel();
  EXPECT_THROW((void)m.accuracy(data::Dataset()), Error);
}

}  // namespace
}  // namespace casvm::solver
