#include "casvm/solver/model.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "casvm/data/synth.hpp"
#include "casvm/solver/smo.hpp"
#include "casvm/support/error.hpp"

namespace casvm::solver {
namespace {

Model trainedModel(std::uint64_t seed = 61) {
  const auto ds = data::generateTwoGaussians(150, 4, 5.0, seed);
  SolverOptions opts;
  opts.kernel = kernel::KernelParams::gaussian(0.2);
  return SmoSolver(opts).solve(ds).model;
}

TEST(ModelTest, CoefficientCountMustMatchSVs) {
  const auto svs = data::Dataset::fromDense(1, {1.0f}, {1});
  EXPECT_THROW(Model(kernel::KernelParams::linear(), svs, {0.5, 0.5}, 0.0),
               Error);
}

TEST(ModelTest, DecisionMatchesManualSum) {
  const auto svs = data::Dataset::fromDense(1, {-1.0f, 1.0f}, {-1, 1});
  const Model m(kernel::KernelParams::linear(), svs, {-0.5, 0.5}, 0.25);
  // decision(x) = -0.5*(-1*x) ... coefficients are alpha*y already:
  // = -0.5*(-1 . x) + 0.5*(1 . x) + 0.25 = x + 0.25
  const std::vector<float> probe{2.0f};
  EXPECT_NEAR(m.decision(probe), 2.25, 1e-12);
}

TEST(ModelTest, DecisionForMatchesDecision) {
  const Model m = trainedModel();
  const auto test = data::generateTwoGaussians(20, 4, 5.0, 67);
  for (std::size_t i = 0; i < test.rows(); ++i) {
    EXPECT_NEAR(m.decisionFor(test, i), m.decision(test.denseRow(i)), 1e-9);
  }
}

TEST(ModelTest, PredictSignOfDecision) {
  const Model m = trainedModel();
  const auto test = data::generateTwoGaussians(30, 4, 5.0, 71);
  for (std::size_t i = 0; i < test.rows(); ++i) {
    const std::int8_t expected = m.decisionFor(test, i) >= 0.0 ? 1 : -1;
    EXPECT_EQ(m.predictFor(test, i), expected);
  }
}

TEST(ModelTest, AccuracyHighOnSeparableData) {
  const Model m = trainedModel();
  const auto test = data::generateTwoGaussians(200, 4, 5.0, 73);
  EXPECT_GT(m.accuracy(test), 0.97);
}

TEST(ModelTest, EmptyModelPredictsBias) {
  const Model m(kernel::KernelParams::gaussian(1.0), data::Dataset(), {}, -1.0);
  const auto test = data::generateTwoGaussians(10, 4, 5.0, 79);
  for (std::size_t i = 0; i < test.rows(); ++i) {
    EXPECT_EQ(m.predictFor(test, i), -1);
  }
}

TEST(ModelTest, PackUnpackRoundTrip) {
  const Model m = trainedModel();
  const Model back = Model::unpack(m.pack());
  EXPECT_EQ(back.numSupportVectors(), m.numSupportVectors());
  EXPECT_DOUBLE_EQ(back.bias(), m.bias());
  EXPECT_EQ(back.kernelParams().type, m.kernelParams().type);
  const auto test = data::generateTwoGaussians(25, 4, 5.0, 83);
  for (std::size_t i = 0; i < test.rows(); ++i) {
    EXPECT_NEAR(back.decisionFor(test, i), m.decisionFor(test, i), 1e-12);
  }
}

TEST(ModelTest, SaveLoadRoundTrip) {
  const Model m = trainedModel();
  const std::string path = ::testing::TempDir() + "/casvm_model_test.bin";
  m.save(path);
  const Model back = Model::load(path);
  EXPECT_EQ(back.numSupportVectors(), m.numSupportVectors());
  EXPECT_DOUBLE_EQ(back.bias(), m.bias());
  std::remove(path.c_str());
}

TEST(ModelTest, LoadMissingFileThrows) {
  EXPECT_THROW((void)Model::load("/nonexistent/model.bin"), Error);
}

TEST(ModelTest, TruncatedPackThrows) {
  const Model m = trainedModel();
  auto bytes = m.pack();
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW((void)Model::unpack(bytes), Error);
}

TEST(ModelTest, AccuracyOnEmptyTestSetThrows) {
  const Model m = trainedModel();
  EXPECT_THROW((void)m.accuracy(data::Dataset()), Error);
}

}  // namespace
}  // namespace casvm::solver
