#include <gtest/gtest.h>


#include <cmath>
#include "casvm/data/registry.hpp"
#include "casvm/solver/smo.hpp"
#include "casvm/support/error.hpp"

namespace casvm::solver {
namespace {

/// Tolerance sweep: tighter tolerances must not worsen the objective (the
/// dual is maximized), and the KKT gap shrinks monotonically with tau.
class ToleranceSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ToleranceSweepTest, ConvergesAtEveryTolerance) {
  const auto nd = data::standin("toy", 0.3);
  SolverOptions opts;
  opts.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
  opts.tolerance = GetParam();
  const SolverResult res = SmoSolver(opts).solve(nd.train);
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.model.accuracy(nd.test), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Taus, ToleranceSweepTest,
                         ::testing::Values(1e-1, 1e-2, 1e-3, 1e-4),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "tau1em" +
                                  std::to_string(static_cast<int>(
                                      -std::log10(info.param)));
                         });

TEST(ToleranceOrderingTest, TighterToleranceImprovesObjective) {
  const auto nd = data::standin("toy", 0.3);
  SolverOptions loose, tight;
  loose.kernel = tight.kernel =
      kernel::KernelParams::gaussian(nd.suggestedGamma);
  loose.tolerance = 1e-1;
  tight.tolerance = 1e-4;
  const SolverResult a = SmoSolver(loose).solve(nd.train);
  const SolverResult b = SmoSolver(tight).solve(nd.train);
  EXPECT_GE(b.objective, a.objective - 1e-6);
  EXPECT_GE(b.iterations, a.iterations);
}

/// Every kernel family must train a usable model end to end, not just
/// evaluate pointwise.
class KernelFamilyTrainingTest
    : public ::testing::TestWithParam<kernel::KernelParams> {};

TEST_P(KernelFamilyTrainingTest, LearnsSeparableData) {
  const auto ds = data::generateTwoGaussians(300, 5, 6.0, 77);
  SolverOptions opts;
  opts.kernel = GetParam();
  opts.C = 1.0;
  const SolverResult res = SmoSolver(opts).solve(ds);
  EXPECT_TRUE(res.converged) << kernel::kernelName(GetParam().type);
  EXPECT_GT(res.model.accuracy(ds), 0.95)
      << kernel::kernelName(GetParam().type);
}

INSTANTIATE_TEST_SUITE_P(
    Families, KernelFamilyTrainingTest,
    ::testing::Values(kernel::KernelParams::linear(),
                      kernel::KernelParams::gaussian(0.1),
                      kernel::KernelParams::polynomial(0.2, 1.0, 3),
                      kernel::KernelParams::sigmoid(0.05, -0.5)),
    [](const ::testing::TestParamInfo<kernel::KernelParams>& info) {
      return kernel::kernelName(info.param.type);
    });

/// C sweep on overlapping data: larger C always (weakly) increases the
/// dual objective's margin-violation budget usage — more bound SVs at
/// small C, fewer margin violations allowed at large C.
class CSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(CSweepTest, AlphasRespectBox) {
  const auto ds = data::generateTwoGaussians(200, 4, 1.5, 81);
  SolverOptions opts;
  opts.kernel = kernel::KernelParams::gaussian(0.5);
  opts.C = GetParam();
  const SolverResult res = SmoSolver(opts).solve(ds);
  for (double a : res.alpha) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, GetParam() + 1e-12);
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    sum += res.alpha[i] * ds.label(i);
  }
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Cs, CSweepTest,
                         ::testing::Values(0.1, 1.0, 10.0, 100.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           // (std::string built stepwise: GCC 12's
                           // -Wrestrict false-positives on the inline
                           // concatenation.)
                           std::string name = "C";
                           name += std::to_string(
                               static_cast<int>(info.param * 10));
                           return name;
                         });

TEST(CacheBudgetTest, TinyCacheSameSolution) {
  // Forcing constant cache eviction must not change the optimum, only the
  // number of kernel rows computed.
  const auto nd = data::standin("toy", 0.25);
  SolverOptions big, small;
  big.kernel = small.kernel =
      kernel::KernelParams::gaussian(nd.suggestedGamma);
  big.cacheBytes = 64u << 20;
  small.cacheBytes = 1;  // one row slot
  const SolverResult a = SmoSolver(big).solve(nd.train);
  const SolverResult b = SmoSolver(small).solve(nd.train);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_NEAR(a.objective, b.objective, 1e-9);
  EXPECT_GT(b.kernelRowsComputed, a.kernelRowsComputed);
}

}  // namespace
}  // namespace casvm::solver
