#include "casvm/cluster/fcfs.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "casvm/cluster/partition.hpp"
#include "casvm/data/synth.hpp"
#include "casvm/support/error.hpp"

namespace casvm::cluster {
namespace {

data::Dataset imbalancedData(std::size_t rows = 400, std::uint64_t seed = 3) {
  data::MixtureSpec spec;
  spec.samples = rows;
  spec.features = 6;
  spec.clusters = 5;
  spec.positiveFraction = 0.1;  // skewed, like the paper's `face`
  spec.seed = seed;
  return data::generateMixture(spec);
}

std::size_t ceilDiv(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

TEST(FcfsTest, EveryPartAtMostBalancedSize) {
  const auto ds = imbalancedData(403);
  FcfsOptions opts;
  opts.parts = 8;
  const Partition p = fcfsPartition(ds, opts);
  p.validate(ds.rows());
  const auto sizes = p.sizes();
  for (std::size_t s : sizes) EXPECT_LE(s, ceilDiv(403, 8));
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}),
            403u);
}

TEST(FcfsTest, BalancedComparedToKmeans) {
  // The Fig. 5 property: FCFS sizes are all ~m/P.
  const auto ds = imbalancedData(800);
  FcfsOptions opts;
  opts.parts = 8;
  const Partition p = fcfsPartition(ds, opts);
  EXPECT_LE(p.imbalance(), 1.0 + 1e-9);
}

TEST(FcfsTest, RatioBalancedEqualizesClassCounts) {
  // The Tables VII->VIII property: per-part positive counts all ~pos/P.
  const auto ds = imbalancedData(800);
  FcfsOptions opts;
  opts.parts = 8;
  opts.ratioBalanced = true;
  const Partition p = fcfsPartition(ds, opts);
  const auto pos = p.positiveCounts(ds);
  const std::size_t posQuota = ceilDiv(ds.positives(), 8);
  for (std::size_t c : pos) EXPECT_LE(c, posQuota);
  const auto sizes = p.sizes();
  for (std::size_t s : sizes) {
    EXPECT_LE(s, ceilDiv(ds.positives(), 8) + ceilDiv(ds.negatives(), 8));
  }
}

TEST(FcfsTest, WithoutRatioBalanceClassSkewSurvives) {
  // The Table VII phenomenon: plain FCFS balances volume, not class mix.
  const auto ds = imbalancedData(800, 5);
  FcfsOptions opts;
  opts.parts = 8;
  opts.ratioBalanced = false;
  const Partition p = fcfsPartition(ds, opts);
  const auto pos = p.positiveCounts(ds);
  const std::size_t lo = *std::min_element(pos.begin(), pos.end());
  const std::size_t hi = *std::max_element(pos.begin(), pos.end());
  // Clustered positives land unevenly; expect visible spread.
  EXPECT_GT(hi, lo);
}

TEST(FcfsTest, DeterministicInSeed) {
  const auto ds = imbalancedData();
  FcfsOptions opts;
  opts.parts = 4;
  opts.seed = 31;
  EXPECT_EQ(fcfsPartition(ds, opts).assign, fcfsPartition(ds, opts).assign);
}

TEST(FcfsTest, RecomputeCentersGivesGroupMeans) {
  const auto ds = imbalancedData(120);
  FcfsOptions opts;
  opts.parts = 4;
  opts.recomputeCenters = true;
  const Partition p = fcfsPartition(ds, opts);
  const auto groups = p.groups();
  for (int c = 0; c < 4; ++c) {
    if (groups[c].empty()) continue;
    std::vector<double> mean(ds.cols(), 0.0);
    for (std::size_t i : groups[c]) ds.addRowTo(i, mean);
    for (std::size_t f = 0; f < ds.cols(); ++f) {
      EXPECT_NEAR(p.centers[c][f], mean[f] / groups[c].size(), 1e-4);
    }
  }
}

TEST(FcfsTest, KeepInitialCentersWhenNotRecomputing) {
  const auto ds = imbalancedData(120);
  FcfsOptions opts;
  opts.parts = 4;
  opts.recomputeCenters = false;
  const Partition p = fcfsPartition(ds, opts);
  // Initial centers are actual samples of the dataset.
  for (const auto& center : p.centers) {
    bool found = false;
    for (std::size_t i = 0; i < ds.rows() && !found; ++i) {
      double self = 0.0;
      for (float v : center) self += double(v) * double(v);
      found = ds.squaredDistanceTo(i, center, self) < 1e-9;
    }
    EXPECT_TRUE(found);
  }
}

TEST(FcfsTest, FewerSamplesThanPartsThrows) {
  const auto ds = imbalancedData(16);
  FcfsOptions opts;
  opts.parts = 20;
  EXPECT_THROW((void)fcfsPartition(ds, opts), Error);
}

class ParallelFcfsTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelFcfsTest, LocalQuotasHold) {
  const int P = GetParam();
  const auto ds = imbalancedData(320, 7);
  const Partition blocks = blockPartition(ds, P);
  const auto groups = blocks.groups();

  FcfsOptions opts;
  opts.parts = P;
  opts.seed = 37;

  std::vector<std::vector<int>> assign(P);
  net::Engine engine(P);
  engine.run([&](net::Comm& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    const data::Dataset local = ds.subset(groups[r]);
    assign[r] = fcfsPartitionDistributed(comm, local, opts).assign;
  });

  // Every rank's local assignment respects the per-rank quota of
  // ceil(localRows / P) per destination part (Algorithm 4's pm/P).
  for (int r = 0; r < P; ++r) {
    std::vector<std::size_t> counts(static_cast<std::size_t>(P), 0);
    for (int a : assign[r]) {
      ASSERT_GE(a, 0);
      ASSERT_LT(a, P);
      ++counts[static_cast<std::size_t>(a)];
    }
    const std::size_t quota =
        (assign[r].size() + static_cast<std::size_t>(P) - 1) /
        static_cast<std::size_t>(P);
    for (std::size_t c : counts) EXPECT_LE(c, quota);
  }

  // Global result: every destination part ends up with ~m/P samples.
  std::vector<std::size_t> global(static_cast<std::size_t>(P), 0);
  for (int r = 0; r < P; ++r) {
    for (int a : assign[r]) ++global[static_cast<std::size_t>(a)];
  }
  const std::size_t balanced = ds.rows() / static_cast<std::size_t>(P);
  for (std::size_t g : global) {
    EXPECT_GE(g, balanced - static_cast<std::size_t>(P));
    EXPECT_LE(g, balanced + static_cast<std::size_t>(P));
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ParallelFcfsTest,
                         ::testing::Values(2, 4, 8));

TEST(ParallelFcfsTest, EmptyClusterKeepsSeedCenterWhenRecomputing) {
  // Force a globally empty cluster: every sample sits at the same point
  // (2, 2), so all seed centers coincide there and FCFS fills parts in
  // index order — with 4 rows per rank, 2 ranks and 3 parts (per-rank
  // quota ceil(4/3) = 2), part 2 receives nothing anywhere. Recomputing
  // its center used to leave the all-zeros initialization, silently
  // pulling prediction-time routing toward the origin; it must keep the
  // seed center (a real data point) instead.
  constexpr int P = 2;
  constexpr std::size_t kRowsPerRank = 4;
  auto makeBlock = [] {
    return data::Dataset::fromDense(
        2, std::vector<float>{2.0f, 2.0f, 2.0f, 2.0f, 2.0f, 2.0f, 2.0f, 2.0f},
        std::vector<std::int8_t>{1, -1, 1, -1});
  };

  FcfsOptions opts;
  opts.parts = 3;
  opts.ratioBalanced = false;
  opts.recomputeCenters = true;

  std::vector<Partition> result(P);
  net::Engine engine(P);
  engine.run([&](net::Comm& comm) {
    result[static_cast<std::size_t>(comm.rank())] =
        fcfsPartitionDistributed(comm, makeBlock(), opts);
  });

  // Find the globally empty part.
  std::vector<std::size_t> counts(3, 0);
  for (const Partition& p : result) {
    for (int a : p.assign) ++counts[static_cast<std::size_t>(a)];
  }
  EXPECT_EQ(counts[0] + counts[1] + counts[2], P * kRowsPerRank);
  bool sawEmpty = false;
  for (std::size_t c = 0; c < 3; ++c) {
    if (counts[c] != 0) continue;
    sawEmpty = true;
    for (const Partition& p : result) {
      // The seed centers are all (2, 2) — the only data point.
      EXPECT_NEAR(p.centers[c][0], 2.0f, 1e-6f);
      EXPECT_NEAR(p.centers[c][1], 2.0f, 1e-6f);
    }
  }
  EXPECT_TRUE(sawEmpty) << "setup no longer produces an empty cluster";
}

}  // namespace
}  // namespace casvm::cluster
