#include <gtest/gtest.h>

#include "casvm/cluster/kmeans.hpp"
#include "casvm/data/synth.hpp"

namespace casvm::cluster {
namespace {

data::Dataset hardClusters(std::uint64_t seed) {
  data::MixtureSpec spec;
  spec.samples = 400;
  spec.features = 6;
  spec.clusters = 6;
  spec.minCenterSeparation = 8.0;
  spec.seed = seed;
  return data::generateMixture(spec);
}

TEST(KMeansRestartTest, MoreRestartsNeverWorseSse) {
  // Best-of-R by SSE is monotone in R by construction; verify end to end
  // over several data draws.
  for (std::uint64_t seed : {3u, 11u, 29u}) {
    const data::Dataset ds = hardClusters(seed);
    KMeansOptions one;
    one.clusters = 6;
    one.seed = 5;
    KMeansOptions five = one;
    five.restarts = 5;
    EXPECT_LE(kmeans(ds, five).sse, kmeans(ds, one).sse + 1e-9) << seed;
  }
}

TEST(KMeansRestartTest, SseMatchesDirectComputation) {
  const data::Dataset ds = hardClusters(7);
  KMeansOptions opts;
  opts.clusters = 4;
  const KMeansResult res = kmeans(ds, opts);
  double direct = 0.0;
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    const auto& c = res.partition.centers[
        static_cast<std::size_t>(res.partition.assign[i])];
    double self = 0.0;
    for (float v : c) self += double(v) * double(v);
    direct += ds.squaredDistanceTo(i, c, self);
  }
  EXPECT_NEAR(res.sse, direct, 1e-6 * std::max(1.0, direct));
}

TEST(KMeansRestartTest, PlusPlusAtLeastAsGoodOnAverage) {
  // Aggregate SSE across draws: ++ seeding should not lose to uniform.
  double uniformTotal = 0.0, plusTotal = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const data::Dataset ds = hardClusters(seed * 13);
    KMeansOptions uniform;
    uniform.clusters = 6;
    uniform.seed = 9;
    KMeansOptions plus = uniform;
    plus.plusPlusInit = true;
    uniformTotal += kmeans(ds, uniform).sse;
    plusTotal += kmeans(ds, plus).sse;
  }
  EXPECT_LE(plusTotal, uniformTotal * 1.05);
}

TEST(KMeansRestartTest, InvalidRestartsThrow) {
  const data::Dataset ds = hardClusters(1);
  KMeansOptions opts;
  opts.clusters = 4;
  opts.restarts = 0;
  EXPECT_THROW((void)kmeans(ds, opts), Error);
}

}  // namespace
}  // namespace casvm::cluster
