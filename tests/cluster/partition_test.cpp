#include "casvm/cluster/partition.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "casvm/data/synth.hpp"
#include "casvm/support/error.hpp"

namespace casvm::cluster {
namespace {

data::Dataset makeData(std::size_t rows = 100, std::uint64_t seed = 5) {
  data::MixtureSpec spec;
  spec.samples = rows;
  spec.features = 6;
  spec.clusters = 4;
  spec.seed = seed;
  return data::generateMixture(spec);
}

TEST(RandomPartitionTest, SizesDifferByAtMostOne) {
  const auto ds = makeData(103);
  const Partition p = randomPartition(ds, 8, 42);
  const auto sizes = p.sizes();
  const std::size_t lo = *std::min_element(sizes.begin(), sizes.end());
  const std::size_t hi = *std::max_element(sizes.begin(), sizes.end());
  EXPECT_LE(hi - lo, 1u);
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}),
            103u);
}

TEST(RandomPartitionTest, DeterministicInSeed) {
  const auto ds = makeData();
  const Partition a = randomPartition(ds, 4, 7);
  const Partition b = randomPartition(ds, 4, 7);
  EXPECT_EQ(a.assign, b.assign);
}

TEST(RandomPartitionTest, DifferentSeedsShuffleDifferently) {
  const auto ds = makeData();
  const Partition a = randomPartition(ds, 4, 7);
  const Partition b = randomPartition(ds, 4, 8);
  EXPECT_NE(a.assign, b.assign);
}

TEST(RandomPartitionTest, CentersAreGroupMeans) {
  const auto ds = makeData(40);
  const Partition p = randomPartition(ds, 4, 11);
  const auto groups = p.groups();
  for (int c = 0; c < 4; ++c) {
    std::vector<double> mean(ds.cols(), 0.0);
    for (std::size_t i : groups[c]) ds.addRowTo(i, mean);
    for (std::size_t f = 0; f < ds.cols(); ++f) {
      EXPECT_NEAR(p.centers[c][f], mean[f] / groups[c].size(), 1e-4);
    }
  }
}

TEST(BlockPartitionTest, ContiguousBlocks) {
  const auto ds = makeData(10);
  const Partition p = blockPartition(ds, 3);
  // Assignments must be nondecreasing (contiguous blocks).
  for (std::size_t i = 1; i < p.assign.size(); ++i) {
    EXPECT_GE(p.assign[i], p.assign[i - 1]);
  }
  const auto sizes = p.sizes();
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}), 10u);
}

TEST(PartitionTest, GroupsPreserveOrder) {
  const auto ds = makeData(20);
  const Partition p = blockPartition(ds, 4);
  const auto groups = p.groups();
  for (const auto& g : groups) {
    for (std::size_t i = 1; i < g.size(); ++i) EXPECT_GT(g[i], g[i - 1]);
  }
}

TEST(PartitionTest, PositiveCounts) {
  const auto ds = makeData(60);
  const Partition p = blockPartition(ds, 3);
  const auto pos = p.positiveCounts(ds);
  std::size_t total = 0;
  for (std::size_t c : pos) total += c;
  EXPECT_EQ(total, ds.positives());
}

TEST(PartitionTest, ImbalanceOfEvenPartitionIsOne) {
  const auto ds = makeData(80);
  const Partition p = randomPartition(ds, 8, 3);
  EXPECT_NEAR(p.imbalance(), 1.0, 1e-9);
}

TEST(PartitionTest, NearestCenterPicksClosest) {
  Partition p;
  p.parts = 2;
  p.centers = {{0.0f, 0.0f}, {10.0f, 10.0f}};
  const std::vector<float> nearOrigin{1.0f, 1.0f};
  const std::vector<float> nearFar{9.0f, 9.0f};
  EXPECT_EQ(p.nearestCenter(nearOrigin), 0);
  EXPECT_EQ(p.nearestCenter(nearFar), 1);
}

TEST(PartitionTest, NearestCenterOnDatasetRows) {
  const auto ds = data::Dataset::fromDense(2, {0.5f, 0.5f, 9.5f, 9.5f},
                                           {1, -1});
  Partition p;
  p.parts = 2;
  p.centers = {{0.0f, 0.0f}, {10.0f, 10.0f}};
  EXPECT_EQ(p.nearestCenter(ds, 0), 0);
  EXPECT_EQ(p.nearestCenter(ds, 1), 1);
}

TEST(PartitionTest, ValidateCatchesBadAssign) {
  Partition p;
  p.parts = 2;
  p.assign = {0, 1, 2};  // 2 out of range
  EXPECT_THROW(p.validate(3), Error);
  p.assign = {0, 1};
  EXPECT_THROW(p.validate(3), Error);  // wrong length
  p.assign = {0, 1, 1};
  EXPECT_NO_THROW(p.validate(3));
}

TEST(PartitionTest, ComputeCentersHandlesEmptyPart) {
  const auto ds = makeData(10);
  std::vector<int> assign(10, 0);  // everything in part 0; part 1 empty
  const auto centers = computeCenters(ds, assign, 2);
  ASSERT_EQ(centers.size(), 2u);
  for (float v : centers[1]) EXPECT_EQ(v, 0.0f);
}

TEST(PartitionTest, FewerSamplesThanPartsThrows) {
  const auto ds = makeData(3);
  EXPECT_THROW((void)randomPartition(ds, 5, 1), Error);
  EXPECT_THROW((void)blockPartition(ds, 5), Error);
}

}  // namespace
}  // namespace casvm::cluster
