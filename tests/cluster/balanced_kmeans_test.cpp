#include "casvm/cluster/balanced_kmeans.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "casvm/data/synth.hpp"
#include "casvm/support/error.hpp"

namespace casvm::cluster {
namespace {

data::Dataset clusteredData(std::size_t rows = 400, std::uint64_t seed = 5,
                            double posFrac = 0.5) {
  data::MixtureSpec spec;
  spec.samples = rows;
  spec.features = 6;
  spec.clusters = 4;  // fewer natural clusters than parts -> imbalance
  spec.positiveFraction = posFrac;
  spec.seed = seed;
  return data::generateMixture(spec);
}

std::size_t ceilDiv(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

TEST(BalancedKMeansTest, PerfectSizeBalanceAfterRebalance) {
  const auto ds = clusteredData(397);
  BalancedKMeansOptions opts;
  opts.parts = 8;
  const BalancedKMeansResult res = balancedKmeans(ds, opts);
  res.partition.validate(ds.rows());
  const auto sizes = res.partition.sizes();
  for (std::size_t s : sizes) EXPECT_LE(s, ceilDiv(397, 8));
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}),
            397u);
}

TEST(BalancedKMeansTest, MovesReportedWhenImbalanced) {
  const auto ds = clusteredData(400, 7);
  BalancedKMeansOptions opts;
  opts.parts = 8;  // 8 parts over 4 natural clusters forces migration
  const BalancedKMeansResult res = balancedKmeans(ds, opts);
  EXPECT_GT(res.moves, 0u);
  EXPECT_GE(res.kmeansLoops, 1u);
}

TEST(BalancedKMeansTest, RatioBalanceEqualizesClasses) {
  const auto ds = clusteredData(600, 11, 0.15);
  BalancedKMeansOptions opts;
  opts.parts = 6;
  opts.ratioBalanced = true;
  const BalancedKMeansResult res = balancedKmeans(ds, opts);
  const auto pos = res.partition.positiveCounts(ds);
  for (std::size_t c : pos) EXPECT_LE(c, ceilDiv(ds.positives(), 6));
  const auto sizes = res.partition.sizes();
  for (std::size_t s : sizes) {
    EXPECT_LE(s, ceilDiv(ds.positives(), 6) + ceilDiv(ds.negatives(), 6));
  }
}

TEST(BalancedKMeansTest, PreservesLocalityBetterThanRandom) {
  // Rebalancing moves only boundary samples, so the average distance from
  // a sample to its part center should stay well below a random split's.
  const auto ds = clusteredData(400, 13);
  BalancedKMeansOptions opts;
  opts.parts = 4;
  const Partition bkm = balancedKmeans(ds, opts).partition;
  const Partition rnd = randomPartition(ds, 4, 13);

  auto meanDistToCenter = [&](const Partition& p) {
    double total = 0.0;
    for (std::size_t i = 0; i < ds.rows(); ++i) {
      const auto& c = p.centers[static_cast<std::size_t>(p.assign[i])];
      double self = 0.0;
      for (float v : c) self += double(v) * double(v);
      total += ds.squaredDistanceTo(i, c, self);
    }
    return total / ds.rows();
  };
  EXPECT_LT(meanDistToCenter(bkm), meanDistToCenter(rnd) * 0.9);
}

TEST(BalancedKMeansTest, DeterministicInSeed) {
  const auto ds = clusteredData();
  BalancedKMeansOptions opts;
  opts.parts = 4;
  opts.seed = 41;
  EXPECT_EQ(balancedKmeans(ds, opts).partition.assign,
            balancedKmeans(ds, opts).partition.assign);
}

TEST(BalancedKMeansTest, FewerSamplesThanPartsThrows) {
  const auto ds = clusteredData(20);
  BalancedKMeansOptions opts;
  opts.parts = 30;
  EXPECT_THROW((void)balancedKmeans(ds, opts), Error);
}

class DistributedBkmTest : public ::testing::TestWithParam<int> {};

TEST_P(DistributedBkmTest, LocalBlocksBalanced) {
  const int P = GetParam();
  const auto ds = clusteredData(320, 17);
  const Partition blocks = blockPartition(ds, P);
  const auto groups = blocks.groups();

  BalancedKMeansOptions opts;
  opts.parts = P;
  opts.seed = 43;

  std::vector<std::vector<int>> assign(P);
  net::Engine engine(P);
  engine.run([&](net::Comm& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    const data::Dataset local = ds.subset(groups[r]);
    assign[r] = balancedKmeansDistributed(comm, local, opts).partition.assign;
  });

  // Global sizes end up near m/P (each rank balances its own block).
  std::vector<std::size_t> global(static_cast<std::size_t>(P), 0);
  for (int r = 0; r < P; ++r) {
    for (int a : assign[r]) {
      ASSERT_GE(a, 0);
      ASSERT_LT(a, P);
      ++global[static_cast<std::size_t>(a)];
    }
  }
  const std::size_t balanced = ds.rows() / static_cast<std::size_t>(P);
  for (std::size_t g : global) {
    EXPECT_GE(g, balanced - static_cast<std::size_t>(P));
    EXPECT_LE(g, balanced + static_cast<std::size_t>(P));
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistributedBkmTest,
                         ::testing::Values(2, 4, 8));

}  // namespace
}  // namespace casvm::cluster
