#include "casvm/cluster/kmeans.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "casvm/cluster/partition.hpp"
#include "casvm/data/synth.hpp"
#include "casvm/support/error.hpp"

namespace casvm::cluster {
namespace {

data::Dataset clustered(std::size_t rows = 300, std::size_t clusters = 4,
                        std::uint64_t seed = 9) {
  data::MixtureSpec spec;
  spec.samples = rows;
  spec.features = 5;
  spec.clusters = clusters;
  spec.seed = seed;
  return data::generateMixture(spec);
}

TEST(KMeansTest, ConvergesOnSeparatedClusters) {
  const auto ds = clustered();
  KMeansOptions opts;
  opts.clusters = 4;
  const KMeansResult res = kmeans(ds, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_GE(res.loops, 1u);
  res.partition.validate(ds.rows());
}

TEST(KMeansTest, AssignmentIsNearestCenterAtConvergence) {
  const auto ds = clustered();
  KMeansOptions opts;
  opts.clusters = 4;
  const KMeansResult res = kmeans(ds, opts);
  ASSERT_TRUE(res.converged);
  for (std::size_t i = 0; i < ds.rows(); i += 3) {
    EXPECT_EQ(res.partition.assign[i], res.partition.nearestCenter(ds, i));
  }
}

TEST(KMeansTest, AllPartsCovered) {
  const auto ds = clustered(400, 4);
  KMeansOptions opts;
  opts.clusters = 4;
  const auto sizes = kmeans(ds, opts).partition.sizes();
  const std::size_t total =
      std::accumulate(sizes.begin(), sizes.end(), std::size_t{0});
  EXPECT_EQ(total, 400u);
}

TEST(KMeansTest, DeterministicInSeed) {
  const auto ds = clustered();
  KMeansOptions opts;
  opts.clusters = 3;
  opts.seed = 17;
  EXPECT_EQ(kmeans(ds, opts).partition.assign,
            kmeans(ds, opts).partition.assign);
}

TEST(KMeansTest, MaxLoopsCapRespected) {
  const auto ds = clustered();
  KMeansOptions opts;
  opts.clusters = 4;
  opts.maxLoops = 2;
  const KMeansResult res = kmeans(ds, opts);
  EXPECT_LE(res.loops, 2u);
}

TEST(KMeansTest, ThresholdStopsEarlier) {
  const auto ds = clustered(600, 6, 13);
  KMeansOptions strict;
  strict.clusters = 6;
  strict.changeThreshold = 0.0;
  KMeansOptions loose = strict;
  loose.changeThreshold = 0.2;
  EXPECT_LE(kmeans(ds, loose).loops, kmeans(ds, strict).loops);
}

TEST(KMeansTest, MoreClustersThanSamplesThrows) {
  const auto ds = clustered(5, 2);
  KMeansOptions opts;
  opts.clusters = 10;
  EXPECT_THROW((void)kmeans(ds, opts), Error);
}

TEST(KMeansTest, RecoversTrueClusters) {
  // With well-separated mixture components, the K-means objective should
  // place nearly all samples of one component in one part: check that each
  // part is label-pure when labels are cluster-correlated and noise-free.
  data::MixtureSpec spec;
  spec.samples = 400;
  spec.features = 6;
  spec.clusters = 4;
  spec.labelNoise = 0.0;
  spec.seed = 19;
  spec.minCenterSeparation = 10.0;  // unambiguous cluster structure
  const auto ds = data::generateMixture(spec);
  KMeansOptions opts;
  opts.clusters = 4;
  opts.plusPlusInit = true;  // D^2 seeding avoids collapsed inits
  opts.restarts = 5;         // best-of-5 by SSE escapes Lloyd local optima
  const Partition p = kmeans(ds, opts).partition;
  const auto groups = p.groups();
  std::size_t pure = 0, total = 0;
  for (const auto& g : groups) {
    if (g.empty()) continue;
    std::size_t pos = 0;
    for (std::size_t i : g) pos += (ds.label(i) == 1);
    const std::size_t majority = std::max(pos, g.size() - pos);
    pure += majority;
    total += g.size();
  }
  EXPECT_GT(static_cast<double>(pure) / total, 0.9);
}

class DistributedKMeansTest : public ::testing::TestWithParam<int> {};

TEST_P(DistributedKMeansTest, MatchesGlobalSemantics) {
  const int P = GetParam();
  const auto ds = clustered(320, 4, 23);
  const Partition blocks = blockPartition(ds, P);
  const auto groups = blocks.groups();

  KMeansOptions opts;
  opts.clusters = 4;
  opts.seed = 29;

  std::vector<std::vector<int>> localAssign(P);
  std::vector<std::vector<std::vector<float>>> centers(P);
  std::vector<std::size_t> loops(P);
  net::Engine engine(P);
  engine.run([&](net::Comm& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    const data::Dataset local = ds.subset(groups[r]);
    const KMeansResult res = kmeansDistributed(comm, local, opts);
    localAssign[r] = res.partition.assign;
    centers[r] = res.partition.centers;
    loops[r] = res.loops;
  });

  // Every rank converged in the same number of loops to identical centers.
  for (int r = 1; r < P; ++r) {
    EXPECT_EQ(loops[r], loops[0]);
    for (int c = 0; c < 4; ++c) {
      for (std::size_t f = 0; f < ds.cols(); ++f) {
        EXPECT_FLOAT_EQ(centers[r][c][f], centers[0][c][f]);
      }
    }
  }

  // Local assignments are nearest-center w.r.t. the shared centers.
  Partition shared;
  shared.parts = 4;
  shared.centers = centers[0];
  for (int r = 0; r < P; ++r) {
    const data::Dataset local = ds.subset(groups[r]);
    for (std::size_t i = 0; i < local.rows(); ++i) {
      EXPECT_EQ(localAssign[r][i], shared.nearestCenter(local, i));
    }
  }

  // Total assigned samples across ranks covers the dataset.
  std::size_t total = 0;
  for (int r = 0; r < P; ++r) total += localAssign[r].size();
  EXPECT_EQ(total, ds.rows());
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistributedKMeansTest,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace casvm::cluster
