#include "casvm/kernel/kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "casvm/data/synth.hpp"
#include "casvm/support/error.hpp"

namespace casvm::kernel {
namespace {

data::Dataset pair() {
  // x0 = (1, 2), x1 = (3, -1).
  return data::Dataset::fromDense(2, {1.0f, 2.0f, 3.0f, -1.0f}, {1, -1});
}

TEST(KernelValueTest, Linear) {
  const Kernel k(KernelParams::linear());
  EXPECT_DOUBLE_EQ(k.eval(pair(), 0, 1), 1.0);  // 1*3 + 2*(-1)
  EXPECT_DOUBLE_EQ(k.eval(pair(), 0, 0), 5.0);
}

TEST(KernelValueTest, Polynomial) {
  const Kernel k(KernelParams::polynomial(2.0, 1.0, 3));
  // (2*1 + 1)^3 = 27
  EXPECT_DOUBLE_EQ(k.eval(pair(), 0, 1), 27.0);
}

TEST(KernelValueTest, Gaussian) {
  const Kernel k(KernelParams::gaussian(0.25));
  // ||x0 - x1||^2 = 4 + 9 = 13
  EXPECT_NEAR(k.eval(pair(), 0, 1), std::exp(-0.25 * 13.0), 1e-12);
}

TEST(KernelValueTest, Sigmoid) {
  const Kernel k(KernelParams::sigmoid(0.5, -1.0));
  EXPECT_NEAR(k.eval(pair(), 0, 1), std::tanh(0.5 * 1.0 - 1.0), 1e-12);
}

TEST(KernelValueTest, GaussianDiagonalIsOne) {
  const Kernel k(KernelParams::gaussian(2.0));
  const auto ds = pair();
  EXPECT_DOUBLE_EQ(k.eval(ds, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(k.eval(ds, 1, 1), 1.0);
}

TEST(KernelValueTest, NamesStable) {
  EXPECT_EQ(kernelName(KernelType::Linear), "linear");
  EXPECT_EQ(kernelName(KernelType::Polynomial), "polynomial");
  EXPECT_EQ(kernelName(KernelType::Gaussian), "gaussian");
  EXPECT_EQ(kernelName(KernelType::Sigmoid), "sigmoid");
}

/// Property sweep: symmetry, bounds and cross-consistency on random data,
/// parameterized over kernel families.
class KernelPropertyTest : public ::testing::TestWithParam<KernelParams> {
 protected:
  data::Dataset ds_ = [] {
    data::MixtureSpec spec;
    spec.samples = 60;
    spec.features = 7;
    spec.clusters = 3;
    spec.seed = 11;
    return data::generateMixture(spec);
  }();
};

TEST_P(KernelPropertyTest, Symmetric) {
  const Kernel k(GetParam());
  for (std::size_t i = 0; i < ds_.rows(); i += 5) {
    for (std::size_t j = 0; j < ds_.rows(); j += 7) {
      EXPECT_NEAR(k.eval(ds_, i, j), k.eval(ds_, j, i), 1e-12);
    }
  }
}

TEST_P(KernelPropertyTest, RowMatchesPointwise) {
  const Kernel k(GetParam());
  std::vector<double> row(ds_.rows());
  k.row(ds_, 4, row);
  for (std::size_t j = 0; j < ds_.rows(); ++j) {
    EXPECT_DOUBLE_EQ(row[j], k.eval(ds_, 4, j));
  }
}

TEST_P(KernelPropertyTest, EvalWithMatchesEval) {
  const Kernel k(GetParam());
  std::vector<float> x(ds_.cols());
  ds_.copyRowDense(9, x);
  for (std::size_t i = 0; i < ds_.rows(); i += 3) {
    EXPECT_NEAR(k.evalWith(ds_, i, x, ds_.selfDot(9)), k.eval(ds_, i, 9),
                1e-9);
  }
}

TEST_P(KernelPropertyTest, EvalVectorsMatchesEval) {
  const Kernel k(GetParam());
  std::vector<float> x(ds_.cols()), z(ds_.cols());
  ds_.copyRowDense(2, x);
  ds_.copyRowDense(5, z);
  EXPECT_NEAR(k.evalVectors(x, ds_.selfDot(2), z, ds_.selfDot(5)),
              k.eval(ds_, 2, 5), 1e-9);
}

TEST_P(KernelPropertyTest, CrossEvalMatchesWithinDataset) {
  const Kernel k(GetParam());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(k.evalCross(ds_, i, ds_, i + 10), k.eval(ds_, i, i + 10),
                1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, KernelPropertyTest,
    ::testing::Values(KernelParams::linear(), KernelParams::gaussian(0.3),
                      KernelParams::polynomial(0.5, 1.0, 2),
                      KernelParams::sigmoid(0.1, 0.0)),
    [](const ::testing::TestParamInfo<KernelParams>& info) {
      return kernelName(info.param.type);
    });

/// The blocked row fills promise *bitwise* identity with per-element eval
/// (the SMO overhaul relies on it to keep iteration counts unchanged), so
/// these properties compare with EXPECT_EQ, not a tolerance.
class KernelRowPropertyTest : public ::testing::TestWithParam<KernelParams> {
 protected:
  /// 45 rows: two full 16-row tile blocks plus a ragged 13-row tail.
  data::Dataset dense_ = [] {
    data::MixtureSpec spec;
    spec.samples = 45;
    spec.features = 9;
    spec.clusters = 3;
    spec.seed = 17;
    return data::generateMixture(spec);
  }();
  /// Hand-built CSR with empty rows (0, 3 and the last).
  data::Dataset sparse_ = [] {
    const std::size_t cols = 6;
    std::vector<std::size_t> rowPtr = {0, 0, 2, 5, 5, 7, 9, 9};
    std::vector<std::uint32_t> colIdx = {1, 4, 0, 2, 5, 1, 3, 0, 5};
    std::vector<float> values = {0.5f, -1.25f, 2.0f, 0.75f, -0.5f,
                                 1.5f, -2.0f,  0.25f, 1.0f};
    std::vector<std::int8_t> labels = {1, -1, 1, -1, 1, -1, 1};
    return data::Dataset::fromSparse(cols, std::move(rowPtr),
                                     std::move(colIdx), std::move(values),
                                     std::move(labels));
  }();
};

TEST_P(KernelRowPropertyTest, DenseRowBitwiseMatchesEval) {
  const Kernel k(GetParam());
  std::vector<double> row(dense_.rows());
  RowWorkspace ws;
  for (std::size_t i : {std::size_t{0}, std::size_t{16}, std::size_t{44}}) {
    k.row(dense_, i, row);
    for (std::size_t j = 0; j < dense_.rows(); ++j) {
      EXPECT_EQ(row[j], k.eval(dense_, i, j)) << "i=" << i << " j=" << j;
    }
    k.row(dense_, i, row, ws);  // tiled micro-kernel path
    for (std::size_t j = 0; j < dense_.rows(); ++j) {
      EXPECT_EQ(row[j], k.eval(dense_, i, j)) << "ws i=" << i << " j=" << j;
    }
  }
}

TEST_P(KernelRowPropertyTest, SparseRowBitwiseMatchesEval) {
  const Kernel k(GetParam());
  std::vector<double> row(sparse_.rows());
  RowWorkspace ws;
  for (std::size_t i = 0; i < sparse_.rows(); ++i) {  // includes empty rows
    k.row(sparse_, i, row);
    for (std::size_t j = 0; j < sparse_.rows(); ++j) {
      EXPECT_EQ(row[j], k.eval(sparse_, i, j)) << "i=" << i << " j=" << j;
    }
    k.row(sparse_, i, row, ws);
    for (std::size_t j = 0; j < sparse_.rows(); ++j) {
      EXPECT_EQ(row[j], k.eval(sparse_, i, j)) << "ws i=" << i << " j=" << j;
    }
  }
}

TEST_P(KernelRowPropertyTest, SubsetRowFillsOnlySubset) {
  const Kernel k(GetParam());
  const std::vector<std::size_t> subset = {1, 4, 17, 31, 40};
  for (const data::Dataset* ds : {&dense_, &sparse_}) {
    std::vector<std::size_t> sub;
    for (std::size_t j : subset) {
      if (j < ds->rows()) sub.push_back(j);
    }
    std::vector<double> row(ds->rows(), -7.5);
    k.row(*ds, 2, sub, row);
    std::size_t p = 0;
    for (std::size_t j = 0; j < ds->rows(); ++j) {
      if (p < sub.size() && sub[p] == j) {
        EXPECT_EQ(row[j], k.eval(*ds, 2, j)) << "j=" << j;
        ++p;
      } else {
        EXPECT_EQ(row[j], -7.5) << "entry outside subset touched, j=" << j;
      }
    }
  }
}

TEST_P(KernelRowPropertyTest, DiagonalBitwiseMatchesEval) {
  const Kernel k(GetParam());
  for (const data::Dataset* ds : {&dense_, &sparse_}) {
    std::vector<double> diag(ds->rows());
    k.diagonal(*ds, diag);
    for (std::size_t j = 0; j < ds->rows(); ++j) {
      EXPECT_EQ(diag[j], k.eval(*ds, j, j)) << "j=" << j;
    }
  }
}

TEST_P(KernelRowPropertyTest, WorkspaceRebindsAcrossDatasets) {
  const Kernel k(GetParam());
  RowWorkspace ws;
  std::vector<double> row(dense_.rows());
  k.row(dense_, 3, row, ws);
  data::MixtureSpec spec;
  spec.samples = 21;
  spec.features = 4;
  spec.seed = 5;
  const data::Dataset other = data::generateMixture(spec);
  std::vector<double> otherRow(other.rows());
  k.row(other, 2, otherRow, ws);  // must rebuild the blocked copy
  for (std::size_t j = 0; j < other.rows(); ++j) {
    EXPECT_EQ(otherRow[j], k.eval(other, 2, j)) << "j=" << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, KernelRowPropertyTest,
    ::testing::Values(KernelParams::linear(), KernelParams::gaussian(0.3),
                      KernelParams::polynomial(0.5, 1.0, 2),
                      KernelParams::sigmoid(0.1, 0.0)),
    [](const ::testing::TestParamInfo<KernelParams>& info) {
      return kernelName(info.param.type);
    });

TEST(KernelGaussianTest, BoundedInUnitInterval) {
  data::MixtureSpec spec;
  spec.samples = 80;
  spec.seed = 3;
  const auto ds = data::generateMixture(spec);
  const Kernel k(KernelParams::gaussian(0.7));
  for (std::size_t i = 0; i < ds.rows(); i += 4) {
    for (std::size_t j = 0; j < ds.rows(); j += 5) {
      const double v = k.eval(ds, i, j);
      // Far pairs may underflow to exactly 0; that is within bounds.
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(KernelGaussianTest, DecaysWithDistance) {
  // The locality property CP-SVM relies on (paper §IV-A): far pairs have
  // near-zero kernel values.
  const auto ds = data::Dataset::fromDense(
      1, {0.0f, 0.1f, 100.0f}, {1, -1, 1});
  const Kernel k(KernelParams::gaussian(1.0));
  EXPECT_GT(k.eval(ds, 0, 1), 0.9);
  EXPECT_LT(k.eval(ds, 0, 2), 1e-100);
}

TEST(KernelSparseTest, SparseCrossDenseAgree) {
  data::MixtureSpec spec;
  spec.samples = 40;
  spec.features = 20;
  spec.sparsity = 0.6;
  spec.seed = 8;
  const data::Dataset dense = data::generateMixture(spec);
  spec.sparseOutput = true;
  const data::Dataset sparse = data::generateMixture(spec);
  const Kernel k(KernelParams::gaussian(0.2));
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(k.evalCross(sparse, i, dense, i + 1),
                k.eval(dense, i, i + 1), 1e-6);
    EXPECT_NEAR(k.evalCross(sparse, i, sparse, i + 1),
                k.eval(dense, i, i + 1), 1e-6);
  }
}

TEST(KernelTest, CrossDimensionMismatchThrows) {
  const auto a = data::Dataset::fromDense(2, {1, 2}, {1});
  const auto b = data::Dataset::fromDense(3, {1, 2, 3}, {1});
  const Kernel k(KernelParams::linear());
  EXPECT_THROW((void)k.evalCross(a, 0, b, 0), Error);
}

TEST(KernelTest, FlopsPerEvalScalesWithDensity) {
  data::MixtureSpec spec;
  spec.samples = 50;
  spec.features = 100;
  const auto dense = data::generateMixture(spec);
  spec.sparsity = 0.9;
  spec.sparseOutput = true;
  const auto sparse = data::generateMixture(spec);
  const Kernel k(KernelParams::gaussian(1.0));
  EXPECT_GT(k.flopsPerEval(dense), k.flopsPerEval(sparse));
}

}  // namespace
}  // namespace casvm::kernel
