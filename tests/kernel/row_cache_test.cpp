#include "casvm/kernel/row_cache.hpp"

#include <gtest/gtest.h>

#include "casvm/data/synth.hpp"
#include "casvm/support/error.hpp"

namespace casvm::kernel {
namespace {

data::Dataset makeData(std::size_t rows = 30) {
  data::MixtureSpec spec;
  spec.samples = rows;
  spec.features = 5;
  spec.seed = 21;
  return data::generateMixture(spec);
}

TEST(RowCacheTest, ValuesMatchDirectEvaluation) {
  const auto ds = makeData();
  const Kernel k(KernelParams::gaussian(0.4));
  RowCache cache(k, ds, 1 << 20);
  const auto row = cache.row(3);
  ASSERT_EQ(row.size(), ds.rows());
  for (std::size_t j = 0; j < ds.rows(); ++j) {
    EXPECT_DOUBLE_EQ(row[j], k.eval(ds, 3, j));
  }
}

TEST(RowCacheTest, HitsAndMissesCounted) {
  const auto ds = makeData();
  const Kernel k(KernelParams::gaussian(0.4));
  RowCache cache(k, ds, 1 << 20);
  cache.row(0);
  cache.row(0);
  cache.row(1);
  cache.row(0);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(RowCacheTest, EvictsLeastRecentlyUsed) {
  const auto ds = makeData();
  const Kernel k(KernelParams::gaussian(0.4));
  // Budget for exactly two rows.
  RowCache cache(k, ds, 2 * ds.rows() * sizeof(double));
  ASSERT_EQ(cache.capacityRows(), 2u);
  cache.row(0);  // miss
  cache.row(1);  // miss
  cache.row(0);  // hit (0 becomes MRU)
  cache.row(2);  // miss, evicts 1
  cache.row(0);  // hit
  cache.row(1);  // miss again (was evicted)
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(RowCacheTest, EvictedRowRecomputedCorrectly) {
  const auto ds = makeData(10);
  const Kernel k(KernelParams::linear());
  RowCache cache(k, ds, 2 * ds.rows() * sizeof(double));  // two rows
  cache.row(0);
  cache.row(1);
  cache.row(2);  // evicts row 0
  const auto row0 = cache.row(0);
  for (std::size_t j = 0; j < ds.rows(); ++j) {
    EXPECT_DOUBLE_EQ(row0[j], k.eval(ds, 0, j));
  }
}

TEST(RowCacheTest, TinyBudgetStillGrantsTwoRows) {
  // SMO holds spans to two rows of the same iteration, so the cache never
  // shrinks below two slots no matter the budget.
  const auto ds = makeData();
  const Kernel k(KernelParams::gaussian(0.4));
  RowCache cache(k, ds, 1);
  EXPECT_EQ(cache.capacityRows(), 2u);
  const auto a = cache.row(5);
  const auto b = cache.row(6);
  EXPECT_NE(a.data(), b.data());  // both rows live simultaneously
  EXPECT_EQ(a.size(), ds.rows());
}

TEST(RowCacheTest, OutOfRangeRowThrows) {
  const auto ds = makeData(10);
  const Kernel k(KernelParams::gaussian(0.4));
  RowCache cache(k, ds, 1 << 20);
  EXPECT_THROW((void)cache.row(10), Error);
}

}  // namespace
}  // namespace casvm::kernel
