#include "casvm/kernel/row_cache.hpp"

#include <gtest/gtest.h>

#include "casvm/data/synth.hpp"
#include "casvm/support/error.hpp"

namespace casvm::kernel {
namespace {

data::Dataset makeData(std::size_t rows = 30) {
  data::MixtureSpec spec;
  spec.samples = rows;
  spec.features = 5;
  spec.seed = 21;
  return data::generateMixture(spec);
}

TEST(RowCacheTest, ValuesMatchDirectEvaluation) {
  const auto ds = makeData();
  const Kernel k(KernelParams::gaussian(0.4));
  RowCache cache(k, ds, 1 << 20);
  const auto row = cache.row(3);
  ASSERT_EQ(row.size(), ds.rows());
  for (std::size_t j = 0; j < ds.rows(); ++j) {
    EXPECT_DOUBLE_EQ(row[j], k.eval(ds, 3, j));
  }
}

TEST(RowCacheTest, HitsAndMissesCounted) {
  const auto ds = makeData();
  const Kernel k(KernelParams::gaussian(0.4));
  RowCache cache(k, ds, 1 << 20);
  cache.row(0);
  cache.row(0);
  cache.row(1);
  cache.row(0);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(RowCacheTest, EvictsLeastRecentlyUsed) {
  const auto ds = makeData();
  const Kernel k(KernelParams::gaussian(0.4));
  // Budget for exactly two rows.
  RowCache cache(k, ds, 2 * ds.rows() * sizeof(double));
  ASSERT_EQ(cache.capacityRows(), 2u);
  cache.row(0);  // miss
  cache.row(1);  // miss
  cache.row(0);  // hit (0 becomes MRU)
  cache.row(2);  // miss, evicts 1
  cache.row(0);  // hit
  cache.row(1);  // miss again (was evicted)
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(RowCacheTest, EvictedRowRecomputedCorrectly) {
  const auto ds = makeData(10);
  const Kernel k(KernelParams::linear());
  RowCache cache(k, ds, 2 * ds.rows() * sizeof(double));  // two rows
  cache.row(0);
  cache.row(1);
  cache.row(2);  // evicts row 0
  const auto row0 = cache.row(0);
  for (std::size_t j = 0; j < ds.rows(); ++j) {
    EXPECT_DOUBLE_EQ(row0[j], k.eval(ds, 0, j));
  }
}

TEST(RowCacheTest, TinyBudgetStillGrantsTwoRows) {
  // SMO holds spans to two rows of the same iteration, so the cache never
  // shrinks below two slots no matter the budget.
  const auto ds = makeData();
  const Kernel k(KernelParams::gaussian(0.4));
  RowCache cache(k, ds, 1);
  EXPECT_EQ(cache.capacityRows(), 2u);
  const auto a = cache.row(5);
  const auto b = cache.row(6);
  EXPECT_NE(a.data(), b.data());  // both rows live simultaneously
  EXPECT_EQ(a.size(), ds.rows());
}

TEST(RowCacheTest, OutOfRangeRowThrows) {
  const auto ds = makeData(10);
  const Kernel k(KernelParams::gaussian(0.4));
  RowCache cache(k, ds, 1 << 20);
  EXPECT_THROW((void)cache.row(10), Error);
}

TEST(RowCacheTest, PinnedRowsSurviveEvictionPressure) {
  // The solver's exact usage at the capacity floor: two pinned rows, then
  // further fills. Eviction must never recycle a pinned slot's backing
  // vector, even when every budgeted slot is pinned.
  const auto ds = makeData(12);
  const Kernel k(KernelParams::gaussian(0.4));
  RowCache cache(k, ds, 2 * ds.rows() * sizeof(double));
  ASSERT_EQ(cache.capacityRows(), 2u);
  const auto rowA = cache.row(0);
  cache.pin(0);
  const auto genA = cache.generation(0);
  const auto rowB = cache.row(1);
  cache.pin(1);
  const auto genB = cache.generation(1);
  EXPECT_EQ(cache.pinnedRows(), 2u);
  // Both slots pinned: these fills must grow past the budget, not recycle.
  (void)cache.row(2);
  (void)cache.row(3);
  cache.checkLive(0, genA);
  cache.checkLive(1, genB);
  for (std::size_t j = 0; j < ds.rows(); ++j) {
    EXPECT_DOUBLE_EQ(rowA[j], k.eval(ds, 0, j));
    EXPECT_DOUBLE_EQ(rowB[j], k.eval(ds, 1, j));
  }
  cache.unpin(0);
  cache.unpin(1);
  EXPECT_EQ(cache.pinnedRows(), 0u);
}

TEST(RowCacheTest, PinsNest) {
  const auto ds = makeData(8);
  const Kernel k(KernelParams::linear());
  RowCache cache(k, ds, 1 << 20);
  (void)cache.row(4);
  cache.pin(4);
  cache.pin(4);
  EXPECT_EQ(cache.pinnedRows(), 1u);
  cache.unpin(4);
  EXPECT_EQ(cache.pinnedRows(), 1u);  // still pinned once
  cache.unpin(4);
  EXPECT_EQ(cache.pinnedRows(), 0u);
}

TEST(RowCacheTest, GenerationDetectsEviction) {
  const auto ds = makeData(10);
  const Kernel k(KernelParams::linear());
  RowCache cache(k, ds, 2 * ds.rows() * sizeof(double));
  (void)cache.row(0);
  const auto gen = cache.generation(0);
  ASSERT_NE(gen, 0u);
  cache.checkLive(0, gen);   // cached: passes
  (void)cache.row(1);
  (void)cache.row(2);        // evicts row 0
  EXPECT_EQ(cache.generation(0), 0u);
  EXPECT_THROW(cache.checkLive(0, gen), Error);  // use-after-evict tripwire
  (void)cache.row(0);        // refilled under a fresh generation
  EXPECT_NE(cache.generation(0), gen);
  EXPECT_THROW(cache.checkLive(0, gen), Error);  // stale generation rejected
}

TEST(RowCacheTest, PartialFillComputesActiveEntriesOnly) {
  // Large enough that the small active sets below stay under the
  // full-fill cutoff (active * 4 < rows) and genuinely fill partially.
  const auto ds = makeData(48);
  const Kernel k(KernelParams::gaussian(0.4));
  RowCache cache(k, ds, 1 << 20);
  const std::vector<std::size_t> active = {0, 2, 5, 9};
  const auto row = cache.row(3, active);
  EXPECT_EQ(cache.partialFills(), 1u);
  for (std::size_t j : active) {
    EXPECT_DOUBLE_EQ(row[j], k.eval(ds, 3, j));
  }
  // A shrunk active set (subset of the fill set) is served from the same
  // partial slot.
  const std::vector<std::size_t> shrunk = {2, 9};
  (void)cache.row(3, shrunk);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.partialFills(), 1u);
}

TEST(RowCacheTest, FullReadUpgradesPartialFill) {
  // Large enough that the small active sets below stay under the
  // full-fill cutoff (active * 4 < rows) and genuinely fill partially.
  const auto ds = makeData(48);
  const Kernel k(KernelParams::gaussian(0.4));
  RowCache cache(k, ds, 1 << 20);
  const std::vector<std::size_t> active = {1, 4, 7};
  (void)cache.row(3, active);
  const auto full = cache.row(3);  // upgrade: counted as a miss
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
  for (std::size_t j = 0; j < ds.rows(); ++j) {
    EXPECT_DOUBLE_EQ(full[j], k.eval(ds, 3, j));
  }
}

TEST(RowCacheTest, InvalidatePartialDropsOnlyPartialRows) {
  // Large enough that the small active sets below stay under the
  // full-fill cutoff (active * 4 < rows) and genuinely fill partially.
  const auto ds = makeData(48);
  const Kernel k(KernelParams::gaussian(0.4));
  RowCache cache(k, ds, 1 << 20);
  const std::vector<std::size_t> active = {0, 1, 2};
  (void)cache.row(5, active);  // partial
  (void)cache.row(6);          // full
  cache.invalidatePartial();
  EXPECT_EQ(cache.generation(5), 0u);  // dropped
  EXPECT_NE(cache.generation(6), 0u);  // kept
  // Re-reading the dropped row over a *grown* active set recomputes it.
  const std::vector<std::size_t> grown = {0, 1, 2, 3, 4, 5, 6, 7};
  const auto row = cache.row(5, grown);
  for (std::size_t j : grown) {
    EXPECT_DOUBLE_EQ(row[j], k.eval(ds, 5, j));
  }
}

}  // namespace
}  // namespace casvm::kernel
