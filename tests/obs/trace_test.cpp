// casvm::obs tests: lane/recorder units, Chrome export shape, and the
// end-to-end bridges — a traced 4-rank cascade training run and a traced
// serving engine — that back ISSUE 4's acceptance criteria.

#include "casvm/obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>

#include "casvm/core/train.hpp"
#include "casvm/data/registry.hpp"
#include "casvm/data/synth.hpp"
#include "casvm/obs/metrics.hpp"
#include "casvm/serve/engine.hpp"

namespace casvm::obs {
namespace {

TEST(LaneTest, SpanAndProgressRecordAllFields) {
  TraceRecorder rec;
  Lane& lane = rec.addLane(3, 0, "rank 3");
  lane.span("send", Cat::Comm, 1.0, 1.5, /*peer=*/2, /*bytes=*/800);
  lane.span("solve", Cat::Phase, 0.0, 4.0, -1, -1, /*detail=*/1);
  lane.progress(2.0, /*iter=*/512, /*active=*/100, /*gap=*/0.25,
                /*hitRate=*/0.75);

  ASSERT_EQ(lane.events().size(), 3u);
  const Event& comm = lane.events()[0];
  EXPECT_STREQ(comm.name, "send");
  EXPECT_EQ(comm.cat, Cat::Comm);
  EXPECT_FALSE(comm.instant);
  EXPECT_DOUBLE_EQ(comm.durationSeconds(), 0.5);
  EXPECT_EQ(comm.peer, 2);
  EXPECT_EQ(comm.bytes, 800);
  const Event& prog = lane.events()[2];
  EXPECT_TRUE(prog.instant);
  EXPECT_EQ(prog.iter, 512);
  EXPECT_EQ(prog.active, 100);
  EXPECT_DOUBLE_EQ(prog.gap, 0.25);
  EXPECT_DOUBLE_EQ(prog.hitRate, 0.75);

  EXPECT_EQ(rec.eventCount(), 3u);
  EXPECT_EQ(rec.spanCount(3, Cat::Comm), 1u);
  EXPECT_EQ(rec.spanCount(3, Cat::Phase), 1u);
  EXPECT_EQ(rec.spanCount(3, Cat::Solver), 0u);  // instants are not spans
  EXPECT_DOUBLE_EQ(rec.commSeconds(3), 0.5);
  EXPECT_DOUBLE_EQ(rec.commSeconds(0), 0.0);  // unknown pid is empty
}

TEST(TraceRecorderTest, LanesAreKeptPerPid) {
  TraceRecorder rec;
  rec.addLane(0, 0, "rank 0").span("recv", Cat::Comm, 0.0, 1.0);
  rec.addLane(1, 0, "rank 1").span("recv", Cat::Comm, 0.0, 2.0);
  rec.addLane(1, 1, "rank 1 aux").span("send", Cat::Comm, 2.0, 3.0);
  EXPECT_EQ(rec.laneCount(), 3u);
  EXPECT_EQ(rec.spanCount(0, Cat::Comm), 1u);
  EXPECT_EQ(rec.spanCount(1, Cat::Comm), 2u);
  EXPECT_DOUBLE_EQ(rec.commSeconds(0), 1.0);
  EXPECT_DOUBLE_EQ(rec.commSeconds(1), 3.0);  // summed across the pid's lanes
}

TEST(TraceRecorderTest, ChromeExportHasMetadataAndEvents) {
  TraceRecorder rec;
  Lane& lane = rec.addLane(0, 0, "rank 0");
  lane.span("allreduce", Cat::Comm, 0.001, 0.002, /*peer=*/-1, /*bytes=*/64);
  lane.progress(0.0015, 7, 3, 0.5, 0.0);
  const std::string json = rec.chromeTraceJson();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);  // "M" metadata
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);  // complete span
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);  // instant
  EXPECT_NE(json.find("allreduce"), std::string::npos);
  // Timestamps are microseconds: 0.001s -> 1000us.
  EXPECT_NE(json.find("\"ts\": 1000"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
}

TEST(MetricsReportTest, JsonCarriesEveryField) {
  MetricsReport report;
  report.ranks = 2;
  report.wallSeconds = 0.125;
  report.perRank.push_back({0, 1.0, 0.25, 0.125, 0.26, 12});
  report.perRank.push_back({1, 0.5, 0.75, 0.5, 0.74, 9});
  report.phases.push_back({"init", 4096, 16});
  report.phases.push_back({"train", 1024, 4});
  report.traceEvents = 99;
  const std::string json = report.toJson();
  for (const char* key :
       {"\"ranks\": 2", "\"wall_seconds\"", "\"per_rank\"",
        "\"compute_seconds\"", "\"comm_seconds\"", "\"wait_seconds\"",
        "\"trace_comm_seconds\"", "\"comm_spans\"", "\"phases\"",
        "\"init\"", "\"train\"", "\"bytes\": 4096", "\"ops\": 16",
        "\"trace_events\": 99"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

// The acceptance bar for the training bridge: a 4-rank cascade run emits at
// least one comm span and one phase span per rank, solver progress events,
// and the trace-derived comm time agrees with the virtual clock.
TEST(TraceIntegrationTest, CascadeRunPopulatesEveryRankLane) {
  const data::NamedDataset& nd = data::standin("toy");
  TraceRecorder rec;
  core::TrainConfig cfg;
  cfg.method = core::Method::Cascade;
  cfg.processes = 4;
  cfg.solver.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
  cfg.solver.C = nd.suggestedC;
  cfg.trace = &rec;
  const core::TrainResult res = core::train(nd.train, cfg);

  EXPECT_GT(rec.eventCount(), 0u);
  std::size_t progressEvents = 0;
  for (std::size_t i = 0; i < rec.laneCount(); ++i) {
    for (const Event& e : rec.lane(i).events()) {
      if (e.cat == Cat::Solver) ++progressEvents;
    }
  }
  EXPECT_GT(progressEvents, 0u);

  ASSERT_EQ(res.runStats.commSeconds.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    EXPECT_GE(rec.spanCount(r, Cat::Comm), 1u) << "rank " << r;
    EXPECT_GE(rec.spanCount(r, Cat::Phase), 1u) << "rank " << r;
    // Comm spans wrap every clock-charging comm op and record exactly the
    // op's comm (+wait) charge, so per rank the spans sum back to the
    // clock's commSeconds.
    const double clockComm =
        res.runStats.commSeconds[static_cast<std::size_t>(r)];
    EXPECT_NEAR(rec.commSeconds(r), clockComm, 1e-9 + clockComm * 0.01)
        << "rank " << r;
  }

  // The export of a real run must still be well-formed.
  const std::string json = rec.chromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("solve"), std::string::npos);
}

TEST(TraceIntegrationTest, ServeEngineRecordsBatchSpans) {
  const auto train = data::generateTwoGaussians(120, 6, 4.0, 5);
  solver::SolverOptions opts;
  opts.kernel = kernel::KernelParams::gaussian(0.4);
  const auto compiled = serve::CompiledDistributedModel::compile(
      core::DistributedModel::single(
          solver::SmoSolver(opts).solve(train).model));

  TraceRecorder rec;
  serve::ServeConfig config;
  config.workers = 2;
  config.trace = &rec;
  serve::ServeEngine engine(compiled, config);
  std::vector<float> query(train.cols());
  train.copyRowDense(0, query);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(engine.score(query).code, serve::ServeCode::Ok);
  }
  engine.drain();

  // Worker lanes live under the dedicated serve pid and record one span
  // per scored micro-batch, tagged with the batch row count; the `serve
  // health` lane shares the pid with one span per health state.
  EXPECT_GE(rec.spanCount(serve::kServeTracePid, Cat::Serve), 1u);
  bool sawBatch = false;
  bool sawHealth = false;
  for (std::size_t i = 0; i < rec.laneCount(); ++i) {
    const bool healthLane = rec.lane(i).name() == "serve health";
    sawHealth |= healthLane;
    for (const Event& e : rec.lane(i).events()) {
      if (e.cat != Cat::Serve) continue;
      EXPECT_GE(e.durationSeconds(), 0.0);
      if (healthLane) continue;  // covered by ServeEngineTest's lane test
      EXPECT_STREQ(e.name, "batch");
      EXPECT_GE(e.detail, 1);  // rows scored
      sawBatch = true;
    }
  }
  EXPECT_TRUE(sawBatch);
  EXPECT_TRUE(sawHealth);
}

}  // namespace
}  // namespace casvm::obs
