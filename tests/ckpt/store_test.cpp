// Generation-numbered checkpoint storage: atomic rotation, newest-first
// loading, and the corrupt-generation fallback the resume path depends on
// (a damaged newest checkpoint must yield the previous generation, never
// garbage and never a crash).

#include "casvm/ckpt/store.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "casvm/support/error.hpp"

namespace fs = std::filesystem;

namespace casvm::ckpt {
namespace {

std::vector<std::byte> toBytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::string freshDir(const std::string& leaf) {
  const std::string dir = ::testing::TempDir() + "/" + leaf;
  fs::remove_all(dir);
  return dir;
}

/// Path of the newest generation file of `name` in `dir`.
std::string newestGenerationPath(const std::string& dir,
                                 const std::string& name) {
  std::string best;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string f = entry.path().filename().string();
    if (f.rfind(name + ".g", 0) == 0 && f > best) best = f;
  }
  EXPECT_FALSE(best.empty());
  return dir + "/" + best;
}

void flipByteInFile(const std::string& path, std::size_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.get(c);
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(static_cast<char>(c ^ 0x40));
}

TEST(CheckpointStoreTest, CreatesDirectoryAndRoundTrips) {
  const std::string dir = freshDir("store_roundtrip") + "/nested/deeper";
  CheckpointStore store(dir);
  EXPECT_TRUE(fs::is_directory(dir));
  store.save("solver.r0", Kind::SolverState, toBytes("state v1"));
  const auto back = store.load("solver.r0", Kind::SolverState);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, toBytes("state v1"));
}

TEST(CheckpointStoreTest, MissingNameLoadsNothing) {
  CheckpointStore store(freshDir("store_missing"));
  EXPECT_FALSE(store.load("no-such", Kind::Meta).has_value());
  EXPECT_FALSE(store.contains("no-such"));
  EXPECT_EQ(store.corruptSkipped(), 0u);
}

TEST(CheckpointStoreTest, NewestGenerationWinsAndOldOnesArePruned) {
  const std::string dir = freshDir("store_rotate");
  CheckpointStore store(dir);
  for (int v = 1; v <= 5; ++v) {
    store.save("part.r1", Kind::Partition,
               toBytes("version " + std::to_string(v)));
  }
  const auto back = store.load("part.r1", Kind::Partition);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, toBytes("version 5"));
  // Only the newest kKeepGenerations files survive the rotation.
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, CheckpointStore::kKeepGenerations);
}

TEST(CheckpointStoreTest, CorruptNewestFallsBackToPreviousGeneration) {
  const std::string dir = freshDir("store_corrupt");
  CheckpointStore store(dir);
  store.save("solver.r2", Kind::SolverState, toBytes("older good state"));
  store.save("solver.r2", Kind::SolverState, toBytes("newer state"));
  // Damage the payload of the newest generation on disk.
  flipByteInFile(newestGenerationPath(dir, "solver.r2"), 30);
  const auto back = store.load("solver.r2", Kind::SolverState);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, toBytes("older good state"));
  EXPECT_EQ(store.corruptSkipped(), 1u);
}

TEST(CheckpointStoreTest, TruncatedNewestFallsBackToPreviousGeneration) {
  const std::string dir = freshDir("store_truncated");
  CheckpointStore store(dir);
  store.save("model.r0", Kind::SubModel, toBytes("older model"));
  store.save("model.r0", Kind::SubModel, toBytes("newer model"));
  const std::string newest = newestGenerationPath(dir, "model.r0");
  fs::resize_file(newest, fs::file_size(newest) / 2);
  const auto back = store.load("model.r0", Kind::SubModel);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, toBytes("older model"));
  EXPECT_GE(store.corruptSkipped(), 1u);
}

TEST(CheckpointStoreTest, EveryGenerationCorruptYieldsNullopt) {
  const std::string dir = freshDir("store_allbad");
  CheckpointStore store(dir);
  store.save("meta", Kind::Meta, toBytes("a"));
  store.save("meta", Kind::Meta, toBytes("b"));
  for (const auto& e : fs::directory_iterator(dir)) {
    fs::resize_file(e.path(), 3);  // destroy even the header
  }
  EXPECT_FALSE(store.load("meta", Kind::Meta).has_value());
  EXPECT_EQ(store.corruptSkipped(), 2u);
}

TEST(CheckpointStoreTest, KindMismatchIsNeverTrusted) {
  CheckpointStore store(freshDir("store_kind"));
  store.save("thing", Kind::Partition, toBytes("partition bytes"));
  EXPECT_FALSE(store.load("thing", Kind::SolverState).has_value());
  EXPECT_TRUE(store.load("thing", Kind::Partition).has_value());
}

TEST(CheckpointStoreTest, SimilarNamesDoNotCollide) {
  CheckpointStore store(freshDir("store_names"));
  store.save("solver.r1", Kind::SolverState, toBytes("rank one"));
  store.save("solver.r10", Kind::SolverState, toBytes("rank ten"));
  EXPECT_EQ(*store.load("solver.r1", Kind::SolverState), toBytes("rank one"));
  EXPECT_EQ(*store.load("solver.r10", Kind::SolverState),
            toBytes("rank ten"));
}

TEST(CheckpointStoreTest, RemoveDeletesEveryGeneration) {
  CheckpointStore store(freshDir("store_remove"));
  store.save("solver.r0", Kind::SolverState, toBytes("a"));
  store.save("solver.r0", Kind::SolverState, toBytes("b"));
  EXPECT_TRUE(store.contains("solver.r0"));
  store.remove("solver.r0");
  EXPECT_FALSE(store.contains("solver.r0"));
  EXPECT_FALSE(store.load("solver.r0", Kind::SolverState).has_value());
}

TEST(CheckpointStoreTest, NamesWithSlashesAreRejected) {
  CheckpointStore store(freshDir("store_slash"));
  EXPECT_THROW(store.save("../escape", Kind::Meta, {}), Error);
}

}  // namespace
}  // namespace casvm::ckpt
