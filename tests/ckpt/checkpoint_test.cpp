// The checkpoint frame format: versioned, CRC-guarded, and paranoid —
// decodeFrame() must reject every way a file can be damaged (wrong magic,
// unknown version/kind, truncation, trailing garbage, payload bit flips)
// rather than hand back a partially trusted payload.

#include "casvm/ckpt/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace casvm::ckpt {
namespace {

std::vector<std::byte> toBytes(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

TEST(CheckpointFrameTest, RoundTripPreservesKindAndPayload) {
  const auto payload = toBytes("solver state bytes");
  const auto framed = encodeFrame(Kind::SolverState, payload);
  const auto frame = decodeFrame(framed);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, Kind::SolverState);
  EXPECT_EQ(frame->payload, payload);
}

TEST(CheckpointFrameTest, EmptyPayloadRoundTrips) {
  const auto framed = encodeFrame(Kind::Meta, {});
  const auto frame = decodeFrame(framed);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, Kind::Meta);
  EXPECT_TRUE(frame->payload.empty());
}

TEST(CheckpointFrameTest, EveryTruncationIsRejected) {
  const auto framed = encodeFrame(Kind::Partition, toBytes("0123456789"));
  for (std::size_t cut = 0; cut < framed.size(); ++cut) {
    EXPECT_FALSE(
        decodeFrame(std::span(framed).first(cut)).has_value())
        << "cut=" << cut;
  }
}

TEST(CheckpointFrameTest, TrailingGarbageIsRejected) {
  // The header's size field must agree with the actual byte count: a frame
  // with extra bytes appended (e.g. two writes interleaved by a crash) is
  // not a valid checkpoint even though the CRC of the claimed payload
  // would pass.
  auto framed = encodeFrame(Kind::SubModel, toBytes("payload"));
  framed.push_back(std::byte{0xAB});
  EXPECT_FALSE(decodeFrame(framed).has_value());
}

TEST(CheckpointFrameTest, BadMagicIsRejected) {
  auto framed = encodeFrame(Kind::SubModel, toBytes("payload"));
  framed[0] = std::byte{'X'};
  EXPECT_FALSE(decodeFrame(framed).has_value());
}

TEST(CheckpointFrameTest, UnknownVersionIsRejected) {
  auto framed = encodeFrame(Kind::SubModel, toBytes("payload"));
  framed[8] = std::byte{0x7F};  // version lives at bytes 8..11
  EXPECT_FALSE(decodeFrame(framed).has_value());
}

TEST(CheckpointFrameTest, UnknownKindIsRejected) {
  auto framed = encodeFrame(Kind::SubModel, toBytes("payload"));
  framed[12] = std::byte{0x63};  // kind lives at bytes 12..15
  EXPECT_FALSE(decodeFrame(framed).has_value());
}

TEST(CheckpointFrameTest, PayloadBitFlipIsRejected) {
  auto framed = encodeFrame(Kind::TreeLayer, toBytes("some payload data"));
  framed[framed.size() - 3] ^= std::byte{0x10};
  EXPECT_FALSE(decodeFrame(framed).has_value());
}

TEST(CheckpointFrameTest, CrcFieldBitFlipIsRejected) {
  auto framed = encodeFrame(Kind::TreeLayer, toBytes("some payload data"));
  framed[24] ^= std::byte{0x01};  // CRC lives at bytes 24..27
  EXPECT_FALSE(decodeFrame(framed).has_value());
}

}  // namespace
}  // namespace casvm::ckpt
