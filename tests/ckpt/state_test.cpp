// Payload codecs for the training-state checkpoint kinds. Resume is only
// bitwise-exact if every codec round-trips exactly, so these tests compare
// raw serialized bytes (doubles included) rather than approximate values.

#include "casvm/ckpt/state.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "casvm/data/synth.hpp"
#include "casvm/solver/smo.hpp"
#include "casvm/support/error.hpp"

namespace casvm::ckpt {
namespace {

solver::Model trainedModel() {
  const auto ds = data::generateTwoGaussians(120, 4, 5.0, 17);
  solver::SolverOptions opts;
  opts.kernel = kernel::KernelParams::gaussian(0.25);
  return solver::SmoSolver(opts).solve(ds).model;
}

TEST(StateCodecTest, MetaRoundTrip) {
  RunMeta meta;
  meta.fingerprint = 0xDEADBEEFCAFEF00Dull;
  meta.method = 7;
  meta.processes = 16;
  meta.rows = 123456;
  meta.cols = 78;
  const RunMeta back = decodeMeta(encodeMeta(meta));
  EXPECT_EQ(back.fingerprint, meta.fingerprint);
  EXPECT_EQ(back.method, meta.method);
  EXPECT_EQ(back.processes, meta.processes);
  EXPECT_EQ(back.rows, meta.rows);
  EXPECT_EQ(back.cols, meta.cols);
}

TEST(StateCodecTest, PartitionRoundTripIsBitwise) {
  PartitionState state;
  state.local = data::generateTwoGaussians(90, 6, 4.0, 23);
  state.center = {1.5f, -2.25f, 0.0f, 3.75f, -0.5f, 9.0f};
  state.kmeansLoops = 12;
  const PartitionState back = decodePartition(encodePartition(state));
  EXPECT_EQ(back.local.packAll(), state.local.packAll());
  EXPECT_EQ(back.center, state.center);
  EXPECT_EQ(back.kmeansLoops, state.kmeansLoops);
}

TEST(StateCodecTest, SolverStateRoundTripIsBitwise) {
  solver::SolverSnapshot snap;
  snap.iteration = 4096;
  snap.everShrunk = true;
  // Values chosen to have no short decimal representation: only an exact
  // bit-pattern round-trip reproduces them.
  snap.alpha = {0.1, 1.0 / 3.0, std::nextafter(1.0, 2.0), 0.0};
  snap.f = {-1.0, 2e-17, std::acos(-1.0), 7.5};
  snap.active = {0, 2, 3};
  const solver::SolverSnapshot back =
      decodeSolverState(encodeSolverState(snap));
  EXPECT_EQ(back.iteration, snap.iteration);
  EXPECT_EQ(back.everShrunk, snap.everShrunk);
  EXPECT_EQ(back.alpha, snap.alpha);  // operator== on double is exact
  EXPECT_EQ(back.f, snap.f);
  EXPECT_EQ(back.active, snap.active);
}

TEST(StateCodecTest, DisSmoStateRoundTripIsBitwise) {
  solver::SolverSnapshot snap;
  snap.iteration = 123;
  snap.everShrunk = true;
  snap.alpha = {2.0 / 7.0, 0.0, std::nextafter(0.5, 1.0)};
  snap.f = {-1e-300, 3e17, 0.25};
  snap.active = {1, 2};
  const solver::SolverSnapshot back =
      decodeDisSmoState(encodeDisSmoState(snap));
  EXPECT_EQ(back.iteration, snap.iteration);
  EXPECT_EQ(back.everShrunk, snap.everShrunk);
  EXPECT_EQ(back.alpha, snap.alpha);
  EXPECT_EQ(back.f, snap.f);
  EXPECT_EQ(back.active, snap.active);
}

TEST(StateCodecTest, PbmRoundRoundTripIsBitwise) {
  PbmRoundState state;
  state.round = 5;
  state.blockIterations = 4321;
  state.pairIterations = 987;
  state.alpha = {1.0 / 3.0, 0.0, std::nextafter(1.0, 0.0)};
  state.f = {std::acos(-1.0), -2e-17};
  const PbmRoundState back = decodePbmRound(encodePbmRound(state));
  EXPECT_EQ(back.round, state.round);
  EXPECT_EQ(back.blockIterations, state.blockIterations);
  EXPECT_EQ(back.pairIterations, state.pairIterations);
  EXPECT_EQ(back.alpha, state.alpha);
  EXPECT_EQ(back.f, state.f);
}

TEST(StateCodecTest, TruncatedPbmRoundThrowsNotCrashes) {
  PbmRoundState state;
  state.alpha = {1.0, 2.0};
  state.f = {3.0, 4.0};
  const auto bytes = encodePbmRound(state);
  for (std::size_t cut = 0; cut < bytes.size(); cut += 3) {
    EXPECT_THROW((void)decodePbmRound(std::span(bytes).first(cut)), Error)
        << "cut=" << cut;
  }
}

TEST(StateCodecTest, SubModelRoundTripIsBitwise) {
  SubModelState state;
  state.model = trainedModel();
  state.iterations = 777;
  state.svs = static_cast<long long>(state.model.numSupportVectors());
  const SubModelState back = decodeSubModel(encodeSubModel(state));
  EXPECT_EQ(back.model.pack(), state.model.pack());
  EXPECT_EQ(back.iterations, state.iterations);
  EXPECT_EQ(back.svs, state.svs);
}

TEST(StateCodecTest, TreeLayerRoundTripWithAndWithoutModel) {
  TreeLayerState state;
  state.layer = 3;
  state.current = data::generateTwoGaussians(40, 4, 5.0, 29);
  state.currentAlpha.assign(state.current.rows(), 0.5);
  state.currentAlpha[7] = 1.0 / 7.0;
  state.samples = 40;
  state.iterations = 321;
  state.svs = 11;
  state.seconds = 0.125;

  const TreeLayerState noModel = decodeTreeLayer(encodeTreeLayer(state));
  EXPECT_EQ(noModel.layer, state.layer);
  EXPECT_EQ(noModel.current.packAll(), state.current.packAll());
  EXPECT_EQ(noModel.currentAlpha, state.currentAlpha);
  EXPECT_EQ(noModel.samples, state.samples);
  EXPECT_EQ(noModel.iterations, state.iterations);
  EXPECT_EQ(noModel.svs, state.svs);
  EXPECT_EQ(noModel.seconds, state.seconds);
  EXPECT_FALSE(noModel.model.has_value());

  state.model = trainedModel();
  const TreeLayerState withModel = decodeTreeLayer(encodeTreeLayer(state));
  ASSERT_TRUE(withModel.model.has_value());
  EXPECT_EQ(withModel.model->pack(), state.model->pack());
}

TEST(StateCodecTest, TruncatedPayloadThrowsNotCrashes) {
  solver::SolverSnapshot snap;
  snap.alpha = {1.0, 2.0, 3.0};
  snap.f = {4.0, 5.0, 6.0};
  snap.active = {0, 1, 2};
  const auto bytes = encodeSolverState(snap);
  for (std::size_t cut = 0; cut < bytes.size(); cut += 3) {
    EXPECT_THROW((void)decodeSolverState(std::span(bytes).first(cut)), Error)
        << "cut=" << cut;
  }
}

}  // namespace
}  // namespace casvm::ckpt
