// Zero-downtime hot-swap tests: the acceptance property (>= 20
// consecutive publishes under concurrent load, zero dropped or unresolved
// futures, every scored reply bitwise-identical to the scalar decision of
// the generation that scored it) plus the drain()+submit()+publish() race
// stress that CI runs under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "casvm/core/distributed_model.hpp"
#include "casvm/data/synth.hpp"
#include "casvm/serve/engine.hpp"
#include "casvm/solver/smo.hpp"
#include "casvm/support/error.hpp"

namespace casvm::serve {
namespace {

solver::Model trainBase(std::uint64_t seed = 5) {
  const auto train = data::generateTwoGaussians(120, 6, 4.0, seed);
  solver::SolverOptions opts;
  opts.kernel = kernel::KernelParams::gaussian(0.4);
  return solver::SmoSolver(opts).solve(train).model;
}

// Generation g is the base model with a bias shifted by g * 1e-3: cheap to
// build, identical support set, and every generation's decisions are
// bitwise-distinguishable from every other's.
solver::Model generationModel(const solver::Model& base, std::uint64_t g) {
  return solver::Model(base.kernelParams(), base.supportVectors(),
                       base.alphaY(), base.bias() + 1e-3 * static_cast<double>(g));
}

CompiledDistributedModel compiled(const solver::Model& model) {
  return CompiledDistributedModel::compile(
      core::DistributedModel::single(model));
}

std::vector<std::vector<float>> queriesFrom(const data::Dataset& ds) {
  std::vector<std::vector<float>> q(ds.rows());
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    q[i].resize(ds.cols());
    ds.copyRowDense(i, q[i]);
  }
  return q;
}

TEST(HotSwapTest, PublishTakesEffectAndMatchesNewScalarPath) {
  const solver::Model base = trainBase();
  const auto testSet = data::generateTwoGaussians(16, 6, 4.0, 9);
  const auto queries = queriesFrom(testSet);

  ServeConfig config;
  config.workers = 1;
  ServeEngine engine(compiled(generationModel(base, 0)), config);
  EXPECT_EQ(engine.modelGeneration(), 1u);

  const ServeReply before = engine.score(queries[0]);
  ASSERT_EQ(before.code, ServeCode::Ok);
  EXPECT_EQ(before.modelGeneration, 1u);

  const solver::Model next = generationModel(base, 1);
  EXPECT_EQ(engine.publish(compiled(next)), 2u);
  EXPECT_EQ(engine.modelGeneration(), 2u);

  // publish() installs between micro-batches; once a reply reports the
  // new generation every subsequent decision is the new model's, bitwise.
  while (engine.score(queries[0]).modelGeneration < 2u) {
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const ServeReply reply = engine.score(queries[i]);
    ASSERT_EQ(reply.code, ServeCode::Ok);
    EXPECT_EQ(reply.modelGeneration, 2u);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(reply.decision),
              std::bit_cast<std::uint64_t>(next.decisionFor(testSet, i)))
        << i;
  }
  engine.drain();
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.modelSwaps, 1u);
  EXPECT_EQ(stats.modelGeneration, 2u);
}

TEST(HotSwapTest, PublishRejectsMismatchedFeatureWidth) {
  ServeConfig config;
  ServeEngine engine(compiled(trainBase()), config);
  const auto narrow = data::generateTwoGaussians(80, 4, 4.0, 7);
  solver::SolverOptions opts;
  opts.kernel = kernel::KernelParams::gaussian(0.4);
  EXPECT_THROW(
      engine.publish(compiled(solver::SmoSolver(opts).solve(narrow).model)),
      Error);
  EXPECT_EQ(engine.modelGeneration(), 1u);
  // The engine still serves the original model after the failed publish.
  const auto testSet = data::generateTwoGaussians(2, 6, 4.0, 9);
  EXPECT_EQ(engine.score(queriesFrom(testSet)[0]).code, ServeCode::Ok);
  engine.drain();
}

// The PR's acceptance property: 20 consecutive publishes while a producer
// thread keeps the queue busy. Every future resolves, no request is shed
// or dropped by a swap, and every Ok reply's decision is bitwise-identical
// to the scalar decisionFor of exactly the generation that scored it — a
// batch pinned to a retired pack would fail the bitwise check because
// every generation's bias differs.
TEST(HotSwapTest, TwentyPublishesUnderLoadStayBitwiseCorrect) {
  constexpr std::uint64_t kSwaps = 20;
  const solver::Model base = trainBase();
  const auto testSet = data::generateTwoGaussians(24, 6, 4.0, 9);
  const auto queries = queriesFrom(testSet);

  // gens[g] backs generation g+1; ref[g][i] is its scalar decision.
  std::vector<solver::Model> gens;
  std::vector<std::vector<double>> ref;
  for (std::uint64_t g = 0; g <= kSwaps; ++g) {
    gens.push_back(generationModel(base, g));
    auto& r = ref.emplace_back(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      r[i] = gens.back().decisionFor(testSet, i);
    }
  }

  ServeConfig config;
  config.workers = 2;
  config.batchSize = 8;
  config.maxWaitUs = 100;
  config.queueCapacity = 4096;  // ample: a swap must never cause a shed
  ServeEngine engine(compiled(gens[0]), config);

  std::mutex mu;
  std::vector<std::pair<std::size_t, std::future<ServeReply>>> inflight;
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t q = i++ % queries.size();
      auto f = engine.submit(queries[q]);
      {
        std::lock_guard<std::mutex> lock(mu);
        inflight.emplace_back(q, std::move(f));
      }
      if (i % 32 == 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  for (std::uint64_t g = 1; g <= kSwaps; ++g) {
    ASSERT_EQ(engine.publish(compiled(gens[g])), g + 1);
    // Wait until the new generation is live before the next publish so
    // every generation actually scores traffic.
    while (engine.score(queries[0]).modelGeneration < g + 1) {
    }
  }
  stop.store(true);
  producer.join();
  engine.drain();

  std::size_t ok = 0;
  for (auto& [q, f] : inflight) {
    const ServeReply reply = f.get();  // throws if any future never resolved
    ASSERT_EQ(reply.code, ServeCode::Ok);
    ASSERT_GE(reply.modelGeneration, 1u);
    ASSERT_LE(reply.modelGeneration, kSwaps + 1);
    EXPECT_EQ(
        std::bit_cast<std::uint64_t>(reply.decision),
        std::bit_cast<std::uint64_t>(ref[reply.modelGeneration - 1][q]))
        << "query " << q << " generation " << reply.modelGeneration;
    ++ok;
  }
  EXPECT_GT(ok, 0u);
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.modelSwaps, kSwaps);
  EXPECT_EQ(stats.modelGeneration, kSwaps + 1);
  EXPECT_EQ(stats.shed, 0u);  // zero drops across all 20 swaps
  EXPECT_EQ(stats.health, "drained");
}

// TSan coverage for the three-way race: producers submitting, a publisher
// hot-swapping, and drain() cutting in mid-stream. Every future must
// resolve exactly once with a valid code and the counters must add up.
TEST(HotSwapTest, DrainSubmitPublishRaceResolvesEveryFuture) {
  const solver::Model base = trainBase();
  const auto testSet = data::generateTwoGaussians(16, 6, 4.0, 9);
  const auto queries = queriesFrom(testSet);

  ServeConfig config;
  config.workers = 2;
  config.batchSize = 4;
  config.maxWaitUs = 50;
  config.queueCapacity = 32;
  ServeEngine engine(compiled(generationModel(base, 0)), config);

  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kPerProducer = 200;
  std::atomic<std::uint64_t> ok{0}, shed{0}, timedOut{0}, stopped{0}, bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kProducers + 1);
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        SubmitOptions options;
        options.priority = (i % 4 == 0) ? Priority::Low : Priority::High;
        std::vector<float> q = queries[(p * kPerProducer + i) % queries.size()];
        if (i % 50 == 7) q.pop_back();  // exercise BadRequest under race
        switch (engine.score(std::move(q), options).code) {
          case ServeCode::Ok: ++ok; break;
          case ServeCode::Shed: ++shed; break;
          case ServeCode::Timeout: ++timedOut; break;
          case ServeCode::Stopped: ++stopped; break;
          case ServeCode::BadRequest: ++bad; break;
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (std::uint64_t g = 1; g <= 30; ++g) {
      engine.publish(compiled(generationModel(base, g)));
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  engine.drain();  // races the tail of the producers and the publisher
  for (auto& t : threads) t.join();
  engine.drain();  // idempotent post-join

  EXPECT_EQ(ok + shed + timedOut + stopped + bad, kProducers * kPerProducer);
  EXPECT_GT(bad.load(), 0u);
  EXPECT_EQ(engine.health(), Health::Drained);
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.completed, ok.load());
  EXPECT_EQ(stats.badRequests, bad.load());
  EXPECT_EQ(stats.timedOut, stats.expiredAtAdmission + stats.expiredInQueue);
  EXPECT_EQ(stats.modelSwaps, 30u);
}

}  // namespace
}  // namespace casvm::serve
