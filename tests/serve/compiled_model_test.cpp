// Property tests for the compiled batch scoring path. The contract under
// test is bitwise identity: every decision value produced by the compiled
// path must have the same 64-bit pattern as the scalar Model::decisionFor /
// DistributedModel::decisionFor / MulticlassModel::predictFor result, for
// every kernel family, both storage layouts and any batch size.

#include "casvm/serve/compiled_ensemble.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <numeric>
#include <vector>

#include "casvm/core/multiclass.hpp"
#include "casvm/data/synth.hpp"
#include "casvm/solver/smo.hpp"
#include "casvm/support/error.hpp"

namespace casvm::serve {
namespace {

std::uint64_t bits(double d) { return std::bit_cast<std::uint64_t>(d); }

data::Dataset denseData(std::size_t samples, std::uint64_t seed) {
  return data::generateTwoGaussians(samples, 12, 4.0, seed);
}

data::Dataset sparseData(std::size_t samples, std::uint64_t seed) {
  data::MixtureSpec spec;
  spec.samples = samples;
  spec.features = 40;
  spec.clusters = 4;
  spec.sparsity = 0.7;
  spec.clusterSparsePattern = true;
  spec.sparseOutput = true;
  spec.seed = seed;
  return data::generateMixture(spec);
}

std::vector<kernel::KernelParams> allKernels() {
  return {kernel::KernelParams::linear(),
          kernel::KernelParams::polynomial(0.5, 1.0, 3),
          kernel::KernelParams::gaussian(0.3),
          kernel::KernelParams::sigmoid(0.01, -0.1)};
}

solver::Model train(const data::Dataset& ds, kernel::KernelParams params) {
  solver::SolverOptions opts;
  opts.kernel = params;
  opts.maxIterations = 5000;
  return solver::SmoSolver(opts).solve(ds).model;
}

// The core property: for all 4 kernel families x dense/sparse SV storage
// x batch sizes {1, 7, 64}, compiled batch decisions equal the scalar
// path bit for bit.
TEST(CompiledModelTest, BitwiseIdenticalAcrossKernelsStorageAndBatchSize) {
  for (bool sparse : {false, true}) {
    const data::Dataset trainSet =
        sparse ? sparseData(120, 11) : denseData(120, 11);
    const data::Dataset testSet =
        sparse ? sparseData(64, 13) : denseData(64, 13);
    for (const kernel::KernelParams& params : allKernels()) {
      const solver::Model model = train(trainSet, params);
      ASSERT_GT(model.numSupportVectors(), 0u);
      const CompiledModel compiled = compile(model);
      BatchScratch scratch;
      for (std::size_t batch : {std::size_t{1}, std::size_t{7},
                                std::size_t{64}}) {
        for (std::size_t at = 0; at < testSet.rows(); at += batch) {
          const std::size_t n = std::min(batch, testSet.rows() - at);
          std::vector<std::size_t> rows(n);
          std::iota(rows.begin(), rows.end(), at);
          std::vector<double> out(n);
          compiled.decisionBatch(testSet, rows, out, scratch);
          for (std::size_t j = 0; j < n; ++j) {
            const double scalar = model.decisionFor(testSet, rows[j]);
            ASSERT_EQ(bits(out[j]), bits(scalar))
                << "kernel=" << kernel::kernelName(params.type)
                << " sparse=" << sparse << " batch=" << batch
                << " row=" << rows[j] << " got " << out[j] << " want "
                << scalar;
          }
        }
      }
    }
  }
}

TEST(CompiledModelTest, RawVectorDecisionMatchesModelDecision) {
  const data::Dataset trainSet = denseData(100, 17);
  const data::Dataset testSet = denseData(20, 19);
  for (const kernel::KernelParams& params : allKernels()) {
    const solver::Model model = train(trainSet, params);
    const CompiledModel compiled = compile(model);
    BatchScratch scratch;
    for (std::size_t i = 0; i < testSet.rows(); ++i) {
      const auto row = testSet.denseRow(i);
      ASSERT_EQ(bits(compiled.decision(row, scratch)),
                bits(model.decision(row)));
    }
  }
}

TEST(CompiledModelTest, EmptyModelScoresBiasEverywhere) {
  const CompiledModel compiled(kernel::KernelParams::gaussian(1.0),
                               data::Dataset(), {}, -0.75);
  EXPECT_TRUE(compiled.empty());
  const data::Dataset testSet = denseData(9, 23);
  BatchScratch scratch;
  std::vector<double> out(testSet.rows());
  compiled.decisionAll(testSet, out, scratch);
  for (double d : out) EXPECT_EQ(bits(d), bits(-0.75));
  EXPECT_EQ(bits(compiled.decision(testSet.denseRow(0), scratch)),
            bits(-0.75));
}

TEST(CompiledModelTest, AccuracyRoutesThroughBatchPathUnchanged) {
  const data::Dataset trainSet = denseData(150, 29);
  const data::Dataset testSet = denseData(80, 31);
  const solver::Model model = train(trainSet, kernel::KernelParams::gaussian(0.3));
  // Model::accuracy uses the compiled path internally; cross-check against
  // the scalar loop it replaced.
  std::size_t correct = 0;
  for (std::size_t i = 0; i < testSet.rows(); ++i) {
    correct += (model.predictFor(testSet, i) == testSet.label(i));
  }
  EXPECT_DOUBLE_EQ(model.accuracy(testSet),
                   double(correct) / double(testSet.rows()));
}

core::DistributedModel routedModel(const data::Dataset& all,
                                   kernel::KernelParams params) {
  // Split rows in half, train one sub-model per half, use the halves'
  // means as routing centers — a miniature CP-SVM outcome.
  const std::size_t half = all.rows() / 2;
  std::vector<std::size_t> left(half), right(all.rows() - half);
  std::iota(left.begin(), left.end(), 0);
  std::iota(right.begin(), right.end(), half);
  std::vector<solver::Model> models = {train(all.subset(left), params),
                                       train(all.subset(right), params)};
  std::vector<std::vector<float>> centers(
      2, std::vector<float>(all.cols(), 0.0f));
  std::vector<double> acc(all.cols());
  for (int part = 0; part < 2; ++part) {
    const auto& idx = part == 0 ? left : right;
    std::fill(acc.begin(), acc.end(), 0.0);
    for (std::size_t i : idx) all.addRowTo(i, acc);
    for (std::size_t c = 0; c < all.cols(); ++c) {
      centers[part][c] = static_cast<float>(acc[c] / double(idx.size()));
    }
  }
  return core::DistributedModel::routed(std::move(models), std::move(centers));
}

TEST(CompiledEnsembleTest, RoutedDecisionsBitwiseMatchScalar) {
  const data::Dataset all = denseData(160, 37);
  const data::Dataset testSet = denseData(50, 41);
  const core::DistributedModel model =
      routedModel(all, kernel::KernelParams::gaussian(0.3));
  const CompiledDistributedModel compiled =
      CompiledDistributedModel::compile(model);
  ASSERT_TRUE(compiled.isRouted());
  BatchScratch scratch;
  std::vector<double> out(testSet.rows());
  compiled.decisionAll(testSet, out, scratch);
  for (std::size_t i = 0; i < testSet.rows(); ++i) {
    EXPECT_EQ(compiled.route(testSet, i), model.route(testSet, i));
    ASSERT_EQ(bits(out[i]), bits(model.decisionFor(testSet, i))) << i;
  }
  EXPECT_DOUBLE_EQ(compiled.accuracy(testSet, scratch),
                   model.accuracy(testSet));
}

TEST(CompiledEnsembleTest, SingleModelDecisionsBitwiseMatchScalar) {
  const data::Dataset trainSet = sparseData(100, 43);
  const data::Dataset testSet = sparseData(30, 47);
  const core::DistributedModel model = core::DistributedModel::single(
      train(trainSet, kernel::KernelParams::gaussian(0.2)));
  const CompiledDistributedModel compiled =
      CompiledDistributedModel::compile(model);
  EXPECT_FALSE(compiled.isRouted());
  BatchScratch scratch;
  std::vector<double> out(testSet.rows());
  compiled.decisionAll(testSet, out, scratch);
  for (std::size_t i = 0; i < testSet.rows(); ++i) {
    ASSERT_EQ(bits(out[i]), bits(model.decisionFor(testSet, i))) << i;
  }
}

data::MulticlassData fourClasses(std::size_t samples, std::uint64_t seed) {
  data::MixtureSpec spec;
  spec.samples = samples;
  spec.features = 8;
  spec.clusters = 8;
  spec.labelNoise = 0.0;
  spec.minCenterSeparation = 10.0;
  spec.seed = seed;
  return data::generateMulticlassMixture(spec, 4);
}

TEST(CompiledEnsembleTest, MulticlassSharedPoolMatchesScalarPredictions) {
  const auto mc = fourClasses(400, 53);
  const auto probe = fourClasses(120, 53);
  core::TrainConfig cfg;
  cfg.method = core::Method::Cascade;  // tree method: single sub-models,
  cfg.processes = 2;                   // so the shared SV pool is eligible
  cfg.solver.kernel = kernel::KernelParams::gaussian(0.5);
  const core::MulticlassModel model =
      core::trainMulticlass(mc.features, mc.labels, cfg).model;

  const CompiledMulticlassModel compiled =
      CompiledMulticlassModel::compile(model);
  EXPECT_TRUE(compiled.sharesPool());
  EXPECT_GT(compiled.poolSize(), 0u);
  // Dedup can only shrink: unique pool entries <= total pair SV references.
  EXPECT_LE(compiled.poolSize(), compiled.pairSvTotal());

  BatchScratch scratch;
  std::vector<int> out(probe.features.rows());
  compiled.predictAll(probe.features, out, scratch);
  for (std::size_t i = 0; i < probe.features.rows(); ++i) {
    ASSERT_EQ(out[i], model.predictFor(probe.features, i)) << i;
  }
  EXPECT_DOUBLE_EQ(compiled.accuracy(probe.features, probe.labels, scratch),
                   model.accuracy(probe.features, probe.labels));
}

TEST(CompiledEnsembleTest, MulticlassRoutedFallbackMatchesScalarPredictions) {
  const auto mc = fourClasses(400, 59);
  const auto probe = fourClasses(120, 59);
  core::TrainConfig cfg;
  cfg.method = core::Method::RaCa;  // partitioned: routed pair models,
  cfg.processes = 4;                // shared pool ineligible -> fallback
  cfg.solver.kernel = kernel::KernelParams::gaussian(0.5);
  const core::MulticlassModel model =
      core::trainMulticlass(mc.features, mc.labels, cfg).model;

  const CompiledMulticlassModel compiled =
      CompiledMulticlassModel::compile(model);
  EXPECT_FALSE(compiled.sharesPool());

  BatchScratch scratch;
  std::vector<int> out(probe.features.rows());
  compiled.predictAll(probe.features, out, scratch);
  for (std::size_t i = 0; i < probe.features.rows(); ++i) {
    ASSERT_EQ(out[i], model.predictFor(probe.features, i)) << i;
  }
}

}  // namespace
}  // namespace casvm::serve
