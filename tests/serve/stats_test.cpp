#include "casvm/serve/stats.hpp"

#include <gtest/gtest.h>

namespace casvm::serve {
namespace {

TEST(Log2HistogramTest, EmptyHistogramIsZero) {
  const Log2Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0.0);
}

TEST(Log2HistogramTest, QuantileWithinBucketResolution) {
  Log2Histogram h;
  for (int i = 0; i < 100; ++i) h.record(1000.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 1000.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  // 1000 lands in bucket [512, 1024); the reported quantile is that
  // bucket's geometric midpoint, so it is within 2x of the true value.
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_GE(h.quantile(q), 500.0);
    EXPECT_LE(h.quantile(q), 2000.0);
  }
}

TEST(Log2HistogramTest, QuantilesAreMonotonic) {
  Log2Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(double(i));
  double prev = 0.0;
  for (double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  EXPECT_LE(h.quantile(0.5), h.max());
}

TEST(Log2HistogramTest, SubUnitValuesLandInBucketZero) {
  Log2Histogram h;
  h.record(0.25);
  h.record(0.0);
  h.record(-3.0);  // negative values clamp into bucket 0, never UB
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.quantile(0.5), 0.5);  // bucket 0 reports its midpoint
}

TEST(Log2HistogramTest, MergeAccumulates) {
  Log2Histogram a, b;
  for (int i = 0; i < 10; ++i) a.record(100.0);
  for (int i = 0; i < 30; ++i) b.record(100000.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 40u);
  EXPECT_DOUBLE_EQ(a.max(), 100000.0);
  // 3/4 of the mass is at 1e5, so the median comes from b's bucket.
  EXPECT_GT(a.quantile(0.5), 10000.0);
}

TEST(ServeStatsTest, JsonHasEveryField) {
  ServeStats s;
  s.submitted = 10;
  s.completed = 8;
  s.shed = 2;
  s.elapsedSeconds = 0.5;
  s.qps = 16.0;
  s.latencyP50 = 0.000123;
  const std::string json = s.toJson();
  for (const char* key :
       {"\"submitted\": 10", "\"completed\": 8", "\"shed\": 2",
        "\"timed_out\"", "\"rejected_stopped\"", "\"batches\"",
        "\"elapsed_seconds\"", "\"qps\": 16.0", "\"latency_p50_us\": 123.0",
        "\"latency_p95_us\"", "\"latency_p99_us\"", "\"latency_max_us\"",
        "\"mean_batch_rows\"", "\"batch_rows_p50\"", "\"batch_rows_max\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

}  // namespace
}  // namespace casvm::serve
