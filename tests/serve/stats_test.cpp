#include "casvm/serve/stats.hpp"

#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

namespace casvm::serve {
namespace {

TEST(Log2HistogramTest, EmptyHistogramIsZero) {
  const Log2Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0.0);
}

TEST(Log2HistogramTest, QuantileWithinBucketResolution) {
  Log2Histogram h;
  for (int i = 0; i < 100; ++i) h.record(1000.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 1000.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  // 1000 lands in bucket [512, 1024); the reported quantile is that
  // bucket's geometric midpoint, so it is within 2x of the true value.
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_GE(h.quantile(q), 500.0);
    EXPECT_LE(h.quantile(q), 2000.0);
  }
}

TEST(Log2HistogramTest, QuantilesAreMonotonic) {
  Log2Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(double(i));
  double prev = 0.0;
  for (double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  EXPECT_LE(h.quantile(0.5), h.max());
}

TEST(Log2HistogramTest, SubUnitValuesLandInBucketZero) {
  Log2Histogram h;
  h.record(0.25);
  h.record(0.0);
  h.record(-3.0);  // negative values clamp into bucket 0, never UB
  EXPECT_EQ(h.count(), 3u);
  // Bucket 0's midpoint (0.5) exceeds the recorded max, so the quantile
  // clamps to max() instead.
  EXPECT_EQ(h.quantile(0.5), 0.25);
}

TEST(Log2HistogramTest, QuantileNeverExceedsMax) {
  // A single sample near the low edge of its bucket: the geometric
  // midpoint of [512, 1024) is ~724, well above the only recorded value.
  Log2Histogram single;
  single.record(520.0);
  for (double q : {0.5, 0.99, 1.0}) {
    EXPECT_LE(single.quantile(q), single.max()) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(single.quantile(1.0), 520.0);

  // Many samples spread across buckets: still bounded by the max.
  Log2Histogram spread;
  for (int i = 1; i <= 257; ++i) spread.record(double(i));
  for (double q : {0.5, 0.99, 1.0}) {
    EXPECT_LE(spread.quantile(q), spread.max()) << "q=" << q;
  }
}

TEST(Log2HistogramTest, MergeAccumulates) {
  Log2Histogram a, b;
  for (int i = 0; i < 10; ++i) a.record(100.0);
  for (int i = 0; i < 30; ++i) b.record(100000.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 40u);
  EXPECT_DOUBLE_EQ(a.max(), 100000.0);
  // 3/4 of the mass is at 1e5, so the median comes from b's bucket.
  EXPECT_GT(a.quantile(0.5), 10000.0);
}

TEST(ServeStatsTest, JsonHasEveryField) {
  ServeStats s;
  s.submitted = 10;
  s.completed = 8;
  s.shed = 2;
  s.elapsedSeconds = 0.5;
  s.qps = 16.0;
  s.latencyP50 = 0.000123;
  s.badRequests = 3;
  s.expiredAtAdmission = 1;
  s.expiredInQueue = 4;
  s.shedLow = 2;
  s.brownoutEngaged = 1;
  s.brownoutBatches = 5;
  s.breakerTrips = 1;
  s.breakerRecoveries = 1;
  s.modelGeneration = 7;
  s.modelSwaps = 6;
  s.health = "degraded";
  const std::string json = s.toJson();
  for (const char* key :
       {"\"submitted\": 10", "\"completed\": 8", "\"shed\": 2",
        "\"timed_out\"", "\"rejected_stopped\"", "\"batches\"",
        "\"elapsed_seconds\"", "\"qps\": 16.0", "\"latency_p50_us\": 123.0",
        "\"latency_p95_us\"", "\"latency_p99_us\"", "\"latency_max_us\"",
        "\"mean_batch_rows\"", "\"batch_rows_p50\"", "\"batch_rows_max\"",
        "\"bad_requests\": 3", "\"expired_at_admission\": 1",
        "\"expired_in_queue\": 4", "\"shed_low\": 2",
        "\"brownout_engaged\": 1", "\"brownout_batches\": 5",
        "\"breaker_trips\": 1", "\"breaker_recoveries\": 1",
        "\"model_generation\": 7", "\"model_swaps\": 6",
        "\"health\": \"degraded\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST(ServeStatsTest, DefaultHealthIsStarting) {
  const ServeStats s;
  EXPECT_EQ(s.health, "starting");
  EXPECT_NE(s.toJson().find("\"health\": \"starting\""), std::string::npos);
}

TEST(ServeStatsTest, JsonSurvivesExtremeValues) {
  // The old fixed 768-byte snprintf buffer silently truncated once the
  // formatted values got long enough; the JSON must stay complete for any
  // counter magnitude.
  ServeStats s;
  s.submitted = std::numeric_limits<std::uint64_t>::max();
  s.completed = std::numeric_limits<std::uint64_t>::max();
  s.shed = std::numeric_limits<std::uint64_t>::max();
  s.timedOut = std::numeric_limits<std::uint64_t>::max();
  s.rejectedStopped = std::numeric_limits<std::uint64_t>::max();
  s.batches = std::numeric_limits<std::uint64_t>::max();
  s.elapsedSeconds = 1e300;
  s.qps = 1e300;
  s.latencyP50 = 1e300;
  s.latencyP95 = 1e300;
  s.latencyP99 = 1e300;
  s.latencyMax = 1e300;
  s.meanBatchRows = 1e300;
  s.batchRowsP50 = 1e300;
  s.batchRowsMax = 1e300;
  const std::string json = s.toJson();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key :
       {"\"submitted\"", "\"completed\"", "\"shed\"", "\"timed_out\"",
        "\"rejected_stopped\"", "\"batches\"", "\"elapsed_seconds\"",
        "\"qps\"", "\"latency_p50_us\"", "\"latency_p95_us\"",
        "\"latency_p99_us\"", "\"latency_max_us\"", "\"mean_batch_rows\"",
        "\"batch_rows_p50\"", "\"batch_rows_max\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_GT(json.size(), 768u);  // would have been cut off before
}

}  // namespace
}  // namespace casvm::serve
