// Pure-state-machine tests for the overload-protection policies: the
// circuit breaker's windowed trip/recover hysteresis and the health-state
// naming used by ServeStats JSON.

#include "casvm/serve/health.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace casvm::serve {
namespace {

BreakerConfig tinyWindow() {
  BreakerConfig config;
  config.windowRequests = 4;
  config.maxShedRate = 0.5;
  config.maxP99Us = 0.0;
  config.tripWindows = 2;
  config.recoverWindows = 2;
  return config;
}

// Feed one full window of identical outcomes; returns the action emitted
// when the window closes.
CircuitBreaker::Action feedWindow(CircuitBreaker& breaker,
                                  const BreakerConfig& config, bool shed,
                                  double latencyUs = 10.0) {
  CircuitBreaker::Action last = CircuitBreaker::Action::None;
  for (std::uint64_t i = 0; i < config.windowRequests; ++i) {
    last = breaker.onOutcome(shed, latencyUs);
  }
  return last;
}

TEST(CircuitBreakerTest, DisabledBreakerNeverTrips) {
  BreakerConfig config = tinyWindow();
  config.windowRequests = 0;
  CircuitBreaker breaker(config);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(breaker.onOutcome(true, 0.0), CircuitBreaker::Action::None);
  }
  EXPECT_FALSE(breaker.open());
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreakerTest, TripsOnlyAfterConsecutiveBreachingWindows) {
  const BreakerConfig config = tinyWindow();  // tripWindows = 2
  CircuitBreaker breaker(config);
  EXPECT_EQ(feedWindow(breaker, config, /*shed=*/true),
            CircuitBreaker::Action::None);  // first breach: streak 1
  EXPECT_FALSE(breaker.open());
  EXPECT_EQ(feedWindow(breaker, config, /*shed=*/true),
            CircuitBreaker::Action::Trip);  // second consecutive breach
  EXPECT_TRUE(breaker.open());
  EXPECT_EQ(breaker.trips(), 1u);
  // Further breaching windows while open emit no duplicate Trip.
  EXPECT_EQ(feedWindow(breaker, config, /*shed=*/true),
            CircuitBreaker::Action::None);
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(CircuitBreakerTest, HealthyWindowResetsBreachStreak) {
  const BreakerConfig config = tinyWindow();
  CircuitBreaker breaker(config);
  feedWindow(breaker, config, true);   // breach, streak 1
  feedWindow(breaker, config, false);  // healthy window resets the streak
  EXPECT_EQ(feedWindow(breaker, config, true),
            CircuitBreaker::Action::None);  // breach again: streak back to 1
  EXPECT_FALSE(breaker.open());
}

TEST(CircuitBreakerTest, RecoversAfterConsecutiveHealthyWindows) {
  const BreakerConfig config = tinyWindow();  // recoverWindows = 2
  CircuitBreaker breaker(config);
  feedWindow(breaker, config, true);
  feedWindow(breaker, config, true);
  ASSERT_TRUE(breaker.open());
  EXPECT_EQ(feedWindow(breaker, config, false),
            CircuitBreaker::Action::None);  // healthy streak 1
  EXPECT_TRUE(breaker.open());              // hysteresis: still open
  EXPECT_EQ(feedWindow(breaker, config, false),
            CircuitBreaker::Action::Recover);
  EXPECT_FALSE(breaker.open());
  EXPECT_EQ(breaker.recoveries(), 1u);
  // The streaks reset: a fresh trip needs tripWindows breaches again.
  EXPECT_EQ(feedWindow(breaker, config, true), CircuitBreaker::Action::None);
  EXPECT_EQ(feedWindow(breaker, config, true), CircuitBreaker::Action::Trip);
  EXPECT_EQ(breaker.trips(), 2u);
}

TEST(CircuitBreakerTest, BreachingShedWindowInterruptsRecovery) {
  const BreakerConfig config = tinyWindow();
  CircuitBreaker breaker(config);
  feedWindow(breaker, config, true);
  feedWindow(breaker, config, true);
  ASSERT_TRUE(breaker.open());
  feedWindow(breaker, config, false);  // healthy streak 1
  feedWindow(breaker, config, true);   // breach resets the healthy streak
  feedWindow(breaker, config, false);  // healthy streak 1 again
  EXPECT_TRUE(breaker.open());
  EXPECT_EQ(feedWindow(breaker, config, false),
            CircuitBreaker::Action::Recover);
}

TEST(CircuitBreakerTest, LatencyP99TriggersIndependentlyOfSheds) {
  BreakerConfig config = tinyWindow();
  config.maxP99Us = 100.0;
  CircuitBreaker breaker(config);
  // No sheds at all, but every completion is 10x over the p99 budget.
  EXPECT_EQ(feedWindow(breaker, config, false, 1000.0),
            CircuitBreaker::Action::None);
  EXPECT_EQ(feedWindow(breaker, config, false, 1000.0),
            CircuitBreaker::Action::Trip);
  EXPECT_TRUE(breaker.open());
  // Fast completions recover it.
  feedWindow(breaker, config, false, 5.0);
  EXPECT_EQ(feedWindow(breaker, config, false, 5.0),
            CircuitBreaker::Action::Recover);
  EXPECT_FALSE(breaker.open());
}

TEST(HealthTest, NamesMatchStatsJsonVocabulary) {
  EXPECT_STREQ(healthName(Health::Starting), "starting");
  EXPECT_STREQ(healthName(Health::Ready), "ready");
  EXPECT_STREQ(healthName(Health::Degraded), "degraded");
  EXPECT_STREQ(healthName(Health::Draining), "draining");
  EXPECT_STREQ(healthName(Health::Drained), "drained");
}

}  // namespace
}  // namespace casvm::serve
