// Serving runtime tests: admission control (deterministic shedding),
// per-request timeouts, graceful drain, and a multi-producer stress run
// that the TSan CI job executes for data-race coverage.

#include "casvm/serve/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <future>
#include <thread>
#include <vector>

#include "casvm/core/distributed_model.hpp"
#include "casvm/data/synth.hpp"
#include "casvm/solver/smo.hpp"

namespace casvm::serve {
namespace {

CompiledDistributedModel smallModel(std::uint64_t seed = 5) {
  const auto train = data::generateTwoGaussians(120, 6, 4.0, seed);
  solver::SolverOptions opts;
  opts.kernel = kernel::KernelParams::gaussian(0.4);
  return CompiledDistributedModel::compile(core::DistributedModel::single(
      solver::SmoSolver(opts).solve(train).model));
}

std::vector<std::vector<float>> queriesFrom(const data::Dataset& ds) {
  std::vector<std::vector<float>> q(ds.rows());
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    q[i].resize(ds.cols());
    ds.copyRowDense(i, q[i]);
  }
  return q;
}

TEST(ServeEngineTest, RepliesBitwiseMatchScalarDecisions) {
  const auto train = data::generateTwoGaussians(120, 6, 4.0, 5);
  solver::SolverOptions opts;
  opts.kernel = kernel::KernelParams::gaussian(0.4);
  const solver::Model model = solver::SmoSolver(opts).solve(train).model;
  const auto testSet = data::generateTwoGaussians(40, 6, 4.0, 9);
  const auto queries = queriesFrom(testSet);

  ServeConfig config;
  config.workers = 2;
  ServeEngine engine(
      CompiledDistributedModel::compile(core::DistributedModel::single(model)),
      config);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const ServeReply reply = engine.score(queries[i]);
    ASSERT_EQ(reply.code, ServeCode::Ok);
    ASSERT_EQ(std::bit_cast<std::uint64_t>(reply.decision),
              std::bit_cast<std::uint64_t>(model.decisionFor(testSet, i)))
        << i;
    EXPECT_EQ(reply.label, reply.decision >= 0.0 ? 1 : -1);
    EXPECT_GT(reply.latencySeconds, 0.0);
    EXPECT_GE(reply.batchRows, 1u);
  }
  engine.drain();
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.completed, queries.size());
  EXPECT_EQ(stats.shed, 0u);
}

// Admission control must shed deterministically when the queue is full: a
// single slow worker (injected 50ms per batch) and a 2-slot queue can
// accept at most 1 in-flight + 2 queued of 10 instant submissions; every
// other request gets an explicit Shed reply, never a silent drop.
TEST(ServeEngineTest, ShedsExplicitlyWhenQueueIsFull) {
  ServeConfig config;
  config.workers = 1;
  config.batchSize = 1;
  config.maxWaitUs = 0;
  config.queueCapacity = 2;
  config.injectScoreDelayUs = 50000;
  ServeEngine engine(smallModel(), config);
  const auto queries = queriesFrom(data::generateTwoGaussians(10, 6, 4.0, 13));

  std::vector<std::future<ServeReply>> inflight;
  for (const auto& q : queries) inflight.push_back(engine.submit(q));
  std::size_t ok = 0, shed = 0;
  for (auto& f : inflight) {
    const ServeCode code = f.get().code;
    ASSERT_TRUE(code == ServeCode::Ok || code == ServeCode::Shed);
    (code == ServeCode::Ok ? ok : shed)++;
  }
  EXPECT_GT(shed, 0u);
  EXPECT_GT(ok, 0u);
  EXPECT_EQ(ok + shed, queries.size());
  engine.drain();
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.shed, shed);
  EXPECT_EQ(stats.completed, ok);
  EXPECT_EQ(stats.submitted, ok);  // submitted counts admitted requests only
}

TEST(ServeEngineTest, PerRequestDeadlineYieldsTimeoutCode) {
  ServeConfig config;
  config.workers = 1;
  config.batchSize = 1;
  config.maxWaitUs = 0;
  config.requestTimeoutUs = 1;        // expires immediately...
  config.injectScoreDelayUs = 20000;  // ...because scoring stalls 20ms
  ServeEngine engine(smallModel(), config);
  const auto queries = queriesFrom(data::generateTwoGaussians(4, 6, 4.0, 17));

  std::vector<std::future<ServeReply>> inflight;
  for (const auto& q : queries) inflight.push_back(engine.submit(q));
  std::size_t timedOut = 0;
  for (auto& f : inflight) {
    const ServeReply reply = f.get();
    if (reply.code == ServeCode::Timeout) {
      ++timedOut;
      EXPECT_GT(reply.latencySeconds, 0.0);
    }
  }
  EXPECT_GT(timedOut, 0u);
  engine.drain();
  EXPECT_EQ(engine.stats().timedOut, timedOut);
}

// Graceful drain: everything admitted before drain() must still be scored
// (Ok), and everything submitted after must be rejected with Stopped.
TEST(ServeEngineTest, DrainScoresQueuedThenRejectsNewSubmits) {
  ServeConfig config;
  config.workers = 1;
  config.batchSize = 2;
  config.maxWaitUs = 100;
  config.queueCapacity = 64;
  config.injectScoreDelayUs = 2000;
  ServeEngine engine(smallModel(), config);
  const auto queries = queriesFrom(data::generateTwoGaussians(8, 6, 4.0, 19));

  std::vector<std::future<ServeReply>> inflight;
  for (const auto& q : queries) inflight.push_back(engine.submit(q));
  engine.drain();
  for (auto& f : inflight) EXPECT_EQ(f.get().code, ServeCode::Ok);

  const ServeReply after = engine.score(queries.front());
  EXPECT_EQ(after.code, ServeCode::Stopped);
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.completed, queries.size());
  EXPECT_EQ(stats.rejectedStopped, 1u);
  EXPECT_EQ(stats.timedOut, 0u);

  engine.drain();  // idempotent
}

TEST(ServeEngineTest, StatsJsonContainsCounters) {
  ServeConfig config;
  ServeEngine engine(smallModel(), config);
  (void)engine.score(
      queriesFrom(data::generateTwoGaussians(1, 6, 4.0, 23)).front());
  engine.drain();
  const std::string json = engine.statsJson();
  for (const char* key : {"\"submitted\"", "\"completed\"", "\"shed\"",
                          "\"qps\"", "\"latency_p99_us\"",
                          "\"mean_batch_rows\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

// Multi-producer stress (runs under TSan in CI): N producers hammer a
// small queue concurrently with drain racing the last submissions. The
// invariant is full accounting — every future resolves with one of the
// four codes and the engine's counters agree with the client tallies.
TEST(ServeEngineTest, ThreadedStressKeepsFullAccounting) {
  ServeConfig config;
  config.workers = 3;
  config.batchSize = 8;
  config.maxWaitUs = 50;
  config.queueCapacity = 16;
  ServeEngine engine(smallModel(), config);
  const auto queries = queriesFrom(data::generateTwoGaussians(32, 6, 4.0, 29));

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 250;
  std::atomic<std::uint64_t> ok{0}, shed{0}, timedOut{0}, stopped{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        switch (engine.score(queries[(p * kPerProducer + i) % queries.size()])
                    .code) {
          case ServeCode::Ok: ++ok; break;
          case ServeCode::Shed: ++shed; break;
          case ServeCode::Timeout: ++timedOut; break;
          case ServeCode::Stopped: ++stopped; break;
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  engine.drain();

  EXPECT_EQ(ok + shed + timedOut + stopped, kProducers * kPerProducer);
  EXPECT_GT(ok.load(), 0u);
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.completed, ok.load());
  EXPECT_EQ(stats.shed, shed.load());
  EXPECT_EQ(stats.timedOut, timedOut.load());
  EXPECT_EQ(stats.submitted, ok.load() + timedOut.load());
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GE(stats.batchRowsMax, 1.0);
}

}  // namespace
}  // namespace casvm::serve
