// Serving runtime tests: admission control (deterministic shedding),
// per-request timeouts, graceful drain, and a multi-producer stress run
// that the TSan CI job executes for data-race coverage.

#include "casvm/serve/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <future>
#include <thread>
#include <vector>

#include "casvm/core/distributed_model.hpp"
#include "casvm/data/synth.hpp"
#include "casvm/obs/trace.hpp"
#include "casvm/solver/smo.hpp"

namespace casvm::serve {
namespace {

CompiledDistributedModel smallModel(std::uint64_t seed = 5) {
  const auto train = data::generateTwoGaussians(120, 6, 4.0, seed);
  solver::SolverOptions opts;
  opts.kernel = kernel::KernelParams::gaussian(0.4);
  return CompiledDistributedModel::compile(core::DistributedModel::single(
      solver::SmoSolver(opts).solve(train).model));
}

std::vector<std::vector<float>> queriesFrom(const data::Dataset& ds) {
  std::vector<std::vector<float>> q(ds.rows());
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    q[i].resize(ds.cols());
    ds.copyRowDense(i, q[i]);
  }
  return q;
}

TEST(ServeEngineTest, RepliesBitwiseMatchScalarDecisions) {
  const auto train = data::generateTwoGaussians(120, 6, 4.0, 5);
  solver::SolverOptions opts;
  opts.kernel = kernel::KernelParams::gaussian(0.4);
  const solver::Model model = solver::SmoSolver(opts).solve(train).model;
  const auto testSet = data::generateTwoGaussians(40, 6, 4.0, 9);
  const auto queries = queriesFrom(testSet);

  ServeConfig config;
  config.workers = 2;
  ServeEngine engine(
      CompiledDistributedModel::compile(core::DistributedModel::single(model)),
      config);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const ServeReply reply = engine.score(queries[i]);
    ASSERT_EQ(reply.code, ServeCode::Ok);
    ASSERT_EQ(std::bit_cast<std::uint64_t>(reply.decision),
              std::bit_cast<std::uint64_t>(model.decisionFor(testSet, i)))
        << i;
    EXPECT_EQ(reply.label, reply.decision >= 0.0 ? 1 : -1);
    EXPECT_GT(reply.latencySeconds, 0.0);
    EXPECT_GE(reply.batchRows, 1u);
  }
  engine.drain();
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.completed, queries.size());
  EXPECT_EQ(stats.shed, 0u);
}

// Admission control must shed deterministically when the queue is full: a
// single slow worker (injected 50ms per batch) and a 2-slot queue can
// accept at most 1 in-flight + 2 queued of 10 instant submissions; every
// other request gets an explicit Shed reply, never a silent drop.
TEST(ServeEngineTest, ShedsExplicitlyWhenQueueIsFull) {
  ServeConfig config;
  config.workers = 1;
  config.batchSize = 1;
  config.maxWaitUs = 0;
  config.queueCapacity = 2;
  config.injectScoreDelayUs = 50000;
  ServeEngine engine(smallModel(), config);
  const auto queries = queriesFrom(data::generateTwoGaussians(10, 6, 4.0, 13));

  std::vector<std::future<ServeReply>> inflight;
  for (const auto& q : queries) inflight.push_back(engine.submit(q));
  std::size_t ok = 0, shed = 0;
  for (auto& f : inflight) {
    const ServeCode code = f.get().code;
    ASSERT_TRUE(code == ServeCode::Ok || code == ServeCode::Shed);
    (code == ServeCode::Ok ? ok : shed)++;
  }
  EXPECT_GT(shed, 0u);
  EXPECT_GT(ok, 0u);
  EXPECT_EQ(ok + shed, queries.size());
  engine.drain();
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.shed, shed);
  EXPECT_EQ(stats.completed, ok);
  EXPECT_EQ(stats.submitted, ok);  // submitted counts admitted requests only
}

TEST(ServeEngineTest, PerRequestDeadlineYieldsTimeoutCode) {
  ServeConfig config;
  config.workers = 1;
  config.batchSize = 1;
  config.maxWaitUs = 0;
  config.requestTimeoutUs = 1;        // expires immediately...
  config.injectScoreDelayUs = 20000;  // ...because scoring stalls 20ms
  ServeEngine engine(smallModel(), config);
  const auto queries = queriesFrom(data::generateTwoGaussians(4, 6, 4.0, 17));

  std::vector<std::future<ServeReply>> inflight;
  for (const auto& q : queries) inflight.push_back(engine.submit(q));
  std::size_t timedOut = 0;
  for (auto& f : inflight) {
    const ServeReply reply = f.get();
    if (reply.code == ServeCode::Timeout) {
      ++timedOut;
      EXPECT_GT(reply.latencySeconds, 0.0);
    }
  }
  EXPECT_GT(timedOut, 0u);
  engine.drain();
  EXPECT_EQ(engine.stats().timedOut, timedOut);
}

// Graceful drain: everything admitted before drain() must still be scored
// (Ok), and everything submitted after must be rejected with Stopped.
TEST(ServeEngineTest, DrainScoresQueuedThenRejectsNewSubmits) {
  ServeConfig config;
  config.workers = 1;
  config.batchSize = 2;
  config.maxWaitUs = 100;
  config.queueCapacity = 64;
  config.injectScoreDelayUs = 2000;
  ServeEngine engine(smallModel(), config);
  const auto queries = queriesFrom(data::generateTwoGaussians(8, 6, 4.0, 19));

  std::vector<std::future<ServeReply>> inflight;
  for (const auto& q : queries) inflight.push_back(engine.submit(q));
  engine.drain();
  for (auto& f : inflight) EXPECT_EQ(f.get().code, ServeCode::Ok);

  const ServeReply after = engine.score(queries.front());
  EXPECT_EQ(after.code, ServeCode::Stopped);
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.completed, queries.size());
  EXPECT_EQ(stats.rejectedStopped, 1u);
  EXPECT_EQ(stats.timedOut, 0u);

  engine.drain();  // idempotent
}

TEST(ServeEngineTest, StatsJsonContainsCounters) {
  ServeConfig config;
  ServeEngine engine(smallModel(), config);
  (void)engine.score(
      queriesFrom(data::generateTwoGaussians(1, 6, 4.0, 23)).front());
  engine.drain();
  const std::string json = engine.statsJson();
  for (const char* key :
       {"\"submitted\"", "\"completed\"", "\"shed\"", "\"qps\"",
        "\"latency_p99_us\"", "\"mean_batch_rows\"", "\"bad_requests\"",
        "\"expired_at_admission\"", "\"expired_in_queue\"", "\"shed_low\"",
        "\"brownout_engaged\"", "\"breaker_trips\"", "\"model_generation\"",
        "\"model_swaps\"", "\"health\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

// Admission must reject malformed feature vectors (wrong width) with an
// explicit BadRequest before they reach the queue — a short vector that
// slipped into a batch would read out of bounds in the tiled scorer.
TEST(ServeEngineTest, RejectsWrongFeatureWidthAsBadRequest) {
  ServeConfig config;
  config.workers = 1;
  ServeEngine engine(smallModel(), config);
  const auto queries = queriesFrom(data::generateTwoGaussians(2, 6, 4.0, 23));

  std::vector<float> shortVec = queries[0];
  shortVec.pop_back();
  std::vector<float> longVec = queries[0];
  longVec.push_back(0.0F);
  for (const auto& bad :
       {shortVec, longVec, std::vector<float>{} /* empty */}) {
    const ServeReply reply = engine.score(bad);
    EXPECT_EQ(reply.code, ServeCode::BadRequest);
    EXPECT_EQ(reply.latencySeconds, 0.0);
    EXPECT_EQ(reply.modelGeneration, 0u);
  }
  // A well-formed request still scores on the same engine.
  EXPECT_EQ(engine.score(queries[1]).code, ServeCode::Ok);
  engine.drain();
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.badRequests, 3u);
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

// A deadline already in the past is resolved Timeout at admission: it
// never touches the queue, and is counted separately from in-queue expiry.
TEST(ServeEngineTest, ExpiredDeadlineIsRejectedAtAdmission) {
  ServeConfig config;
  config.workers = 1;
  ServeEngine engine(smallModel(), config);
  const auto queries = queriesFrom(data::generateTwoGaussians(2, 6, 4.0, 23));

  SubmitOptions past;
  past.deadline = std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(5);
  const ServeReply reply = engine.score(queries[0], past);
  EXPECT_EQ(reply.code, ServeCode::Timeout);
  engine.drain();
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.expiredAtAdmission, 1u);
  EXPECT_EQ(stats.expiredInQueue, 0u);
  EXPECT_EQ(stats.timedOut, 1u);
  EXPECT_EQ(stats.submitted, 0u);  // never admitted to the queue
}

// Requests whose deadline passes while queued are resolved Timeout at pop
// and never occupy a batch slot: completed/batch-row stats must count only
// the one request that actually scored.
TEST(ServeEngineTest, InQueueExpirySkipsScoringAndBatchSlots) {
  ServeConfig config;
  config.workers = 1;
  config.batchSize = 8;
  config.maxWaitUs = 0;
  config.queueCapacity = 64;
  config.injectScoreDelayUs = 30000;  // first batch stalls 30ms
  ServeEngine engine(smallModel(), config);
  const auto queries = queriesFrom(data::generateTwoGaussians(6, 6, 4.0, 23));

  // The first submit occupies the worker for 30ms; the rest carry a 5ms
  // deadline and are guaranteed to expire while queued behind it.
  std::vector<std::future<ServeReply>> inflight;
  inflight.push_back(engine.submit(queries[0]));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  SubmitOptions tight;
  tight.deadlineUs = 5000;
  for (std::size_t i = 1; i < queries.size(); ++i) {
    inflight.push_back(engine.submit(queries[i], tight));
  }
  EXPECT_EQ(inflight[0].get().code, ServeCode::Ok);
  for (std::size_t i = 1; i < inflight.size(); ++i) {
    const ServeReply reply = inflight[i].get();
    EXPECT_EQ(reply.code, ServeCode::Timeout);
    EXPECT_GT(reply.latencySeconds, 0.0);
    EXPECT_EQ(reply.batchRows, 0u);  // expired before taking a batch slot
  }
  engine.drain();
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.expiredInQueue, queries.size() - 1);
  EXPECT_EQ(stats.expiredAtAdmission, 0u);
  EXPECT_EQ(stats.timedOut, queries.size() - 1);
  EXPECT_LE(stats.batchRowsMax, 1.0);  // expired rows never inflated a batch
}

// Shed-low-first: low-priority submits only see lowPriorityAdmitFraction
// of the queue, so under pressure the low class sheds while high-priority
// requests still land.
TEST(ServeEngineTest, LowPriorityShedsBeforeHighPriority) {
  ServeConfig config;
  config.workers = 1;
  config.batchSize = 1;
  config.maxWaitUs = 0;
  config.queueCapacity = 4;
  config.lowPriorityAdmitFraction = 0.5;  // low sees only 2 of 4 slots
  config.injectScoreDelayUs = 50000;
  ServeEngine engine(smallModel(), config);
  const auto queries = queriesFrom(data::generateTwoGaussians(8, 6, 4.0, 23));

  // Park the worker on one in-flight request so queue depth is ours.
  auto parked = engine.submit(queries[0]);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  SubmitOptions low;
  low.priority = Priority::Low;
  std::vector<std::future<ServeReply>> admitted;
  admitted.push_back(engine.submit(queries[1], low));  // depth 1
  admitted.push_back(engine.submit(queries[2], low));  // depth 2 = low cap
  const ServeReply lowShed = engine.score(queries[3], low);
  EXPECT_EQ(lowShed.code, ServeCode::Shed);  // low class is over its cap...
  admitted.push_back(engine.submit(queries[4]));  // ...high still admits
  admitted.push_back(engine.submit(queries[5]));  // depth 4 = capacity
  const ServeReply highShed = engine.score(queries[6]);
  EXPECT_EQ(highShed.code, ServeCode::Shed);  // full queue sheds everyone

  EXPECT_EQ(parked.get().code, ServeCode::Ok);
  for (auto& f : admitted) EXPECT_EQ(f.get().code, ServeCode::Ok);
  engine.drain();
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.shedLow, 1u);
  EXPECT_EQ(stats.completed, 5u);
}

// Brownout: when the queue depth a worker sees at batch start crosses the
// engage watermark, it shrinks the micro-batch flush threshold and stops
// lingering. Without brownout this workload would stall: partial batches
// only flush after the 500ms linger, but the browned-out engine clears
// everything in a few small batches.
TEST(ServeEngineTest, BrownoutFlushesInsteadOfLingering) {
  ServeConfig config;
  config.workers = 1;
  config.batchSize = 16;
  config.maxWaitUs = 500000;  // without brownout a partial batch waits 500ms
  config.queueCapacity = 64;
  config.brownout.engageFraction = 0.1;  // engage at depth >= 7
  config.brownout.recoverFraction = 0.0;
  config.brownout.maxWaitUs = 0;   // browned out: no linger...
  config.brownout.batchSize = 4;   // ...and 4-row flushes
  config.injectScoreDelayUs = 20000;  // park the worker inside each batch
  ServeEngine engine(smallModel(), config);
  const auto queries = queriesFrom(data::generateTwoGaussians(24, 6, 4.0, 23));

  // Wave 1: exactly one full micro-batch, so the worker flushes by size
  // (never by linger) and parks in the injected scoring delay...
  std::vector<std::future<ServeReply>> inflight;
  for (std::size_t i = 0; i < 16; ++i) {
    inflight.push_back(engine.submit(queries[i]));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // ...wave 2: eight more pile up behind the parked worker, so its next
  // batch starts at depth >= 7 and engages brownout. A non-brownout
  // engine would linger 500ms on the 8-row partial batch; browned out it
  // flushes 4-row batches immediately.
  for (std::size_t i = 16; i < queries.size(); ++i) {
    inflight.push_back(engine.submit(queries[i]));
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(450);
  for (auto& f : inflight) {
    ASSERT_EQ(f.wait_until(deadline), std::future_status::ready);
    EXPECT_EQ(f.get().code, ServeCode::Ok);
  }
  engine.drain();
  const ServeStats stats = engine.stats();
  EXPECT_GE(stats.brownoutEngaged, 1u);
  EXPECT_GE(stats.brownoutBatches, 2u);
  EXPECT_EQ(stats.completed, queries.size());
  EXPECT_EQ(stats.shed, 0u);
}

// Circuit breaker: sustained admission sheds trip the engine into
// Degraded (where the low priority class is rejected outright); draining
// the pressure recovers it to Ready. Both edges must appear in the
// recorded health transitions.
TEST(ServeEngineTest, BreakerTripsToDegradedAndRecovers) {
  ServeConfig config;
  config.workers = 1;
  config.batchSize = 8;
  config.maxWaitUs = 0;
  config.queueCapacity = 2;
  config.injectScoreDelayUs = 5000;
  config.breaker.windowRequests = 16;
  config.breaker.maxShedRate = 0.4;
  config.breaker.tripWindows = 1;
  config.breaker.recoverWindows = 1;
  ServeEngine engine(smallModel(), config);
  const auto queries = queriesFrom(data::generateTwoGaussians(4, 6, 4.0, 23));

  // Burst far past the 2-slot queue: almost everything sheds, so the
  // first full breaker window breaches and trips the engine.
  std::vector<std::future<ServeReply>> inflight;
  for (int i = 0; i < 200; ++i) {
    inflight.push_back(engine.submit(queries[i % queries.size()]));
  }
  for (auto& f : inflight) (void)f.get();
  EXPECT_EQ(engine.health(), Health::Degraded);

  // While Degraded, low-priority requests are shed outright even though
  // the queue has free slots by now.
  SubmitOptions low;
  low.priority = Priority::Low;
  EXPECT_EQ(engine.score(queries[0], low).code, ServeCode::Shed);

  // Gentle synchronous traffic completes without sheds; one healthy
  // window closes the breaker again.
  std::size_t recoverScores = 0;
  while (engine.health() != Health::Ready && recoverScores < 500) {
    ASSERT_EQ(engine.score(queries[recoverScores % queries.size()]).code,
              ServeCode::Ok);
    ++recoverScores;
  }
  EXPECT_EQ(engine.health(), Health::Ready);
  engine.drain();

  const ServeStats stats = engine.stats();
  EXPECT_GE(stats.breakerTrips, 1u);
  EXPECT_GE(stats.breakerRecoveries, 1u);
  EXPECT_GE(stats.shedLow, 1u);
  bool sawTrip = false, sawRecover = false;
  for (const HealthTransition& t : engine.healthTransitions()) {
    sawTrip |= t.from == Health::Ready && t.to == Health::Degraded;
    sawRecover |= t.from == Health::Degraded && t.to == Health::Ready;
  }
  EXPECT_TRUE(sawTrip);
  EXPECT_TRUE(sawRecover);
}

// The health lattice end to end: construction lands in Ready (via
// Starting), drain walks Draining -> Drained, and the terminal tail is
// one-way — the transition log records each step exactly once.
TEST(ServeEngineTest, HealthWalksLifecycleAndDrainIsTerminal) {
  ServeConfig config;
  config.workers = 1;
  ServeEngine engine(smallModel(), config);
  EXPECT_EQ(engine.health(), Health::Ready);
  (void)engine.score(
      queriesFrom(data::generateTwoGaussians(1, 6, 4.0, 23)).front());
  engine.drain();
  EXPECT_EQ(engine.health(), Health::Drained);
  engine.drain();  // idempotent: no duplicate transitions
  const auto transitions = engine.healthTransitions();
  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_EQ(transitions[0].from, Health::Starting);
  EXPECT_EQ(transitions[0].to, Health::Ready);
  EXPECT_EQ(transitions[1].from, Health::Ready);
  EXPECT_EQ(transitions[1].to, Health::Draining);
  EXPECT_EQ(transitions[2].from, Health::Draining);
  EXPECT_EQ(transitions[2].to, Health::Drained);
  for (std::size_t i = 1; i < transitions.size(); ++i) {
    EXPECT_GE(transitions[i].atSeconds, transitions[i - 1].atSeconds);
  }
  EXPECT_EQ(engine.stats().health, "drained");
}

// With a trace recorder attached, drain() flushes the health timeline as
// a dedicated `serve health` lane: one Cat::Serve span per health state,
// contiguous from engine start to drain.
TEST(ServeEngineTest, TraceCarriesHealthTimelineLane) {
  obs::TraceRecorder recorder;
  ServeConfig config;
  config.workers = 2;
  config.trace = &recorder;
  ServeEngine engine(smallModel(), config);
  const auto queries = queriesFrom(data::generateTwoGaussians(4, 6, 4.0, 23));
  for (const auto& q : queries) EXPECT_EQ(engine.score(q).code, ServeCode::Ok);
  engine.drain();

  const obs::Lane* healthLane = nullptr;
  for (std::size_t i = 0; i < recorder.laneCount(); ++i) {
    if (recorder.lane(i).name() == "serve health") {
      healthLane = &recorder.lane(i);
    }
  }
  ASSERT_NE(healthLane, nullptr);
  EXPECT_EQ(healthLane->pid(), kServeTracePid);
  // At minimum the starting, ready and draining states each get a span.
  ASSERT_GE(healthLane->events().size(), 3u);
  double prevEnd = 0.0;
  for (const obs::Event& e : healthLane->events()) {
    EXPECT_EQ(e.cat, obs::Cat::Serve);
    EXPECT_GE(e.startSeconds, prevEnd);  // states tile the timeline in order
    EXPECT_GE(e.endSeconds, e.startSeconds);
    prevEnd = e.startSeconds;
  }
  // Worker batch spans still share the serve pid alongside the new lane.
  EXPECT_GT(recorder.spanCount(kServeTracePid, obs::Cat::Serve),
            healthLane->events().size());
}

// Multi-producer stress (runs under TSan in CI): N producers hammer a
// small queue concurrently with drain racing the last submissions. The
// invariant is full accounting — every future resolves with one of the
// four codes and the engine's counters agree with the client tallies.
TEST(ServeEngineTest, ThreadedStressKeepsFullAccounting) {
  ServeConfig config;
  config.workers = 3;
  config.batchSize = 8;
  config.maxWaitUs = 50;
  config.queueCapacity = 16;
  ServeEngine engine(smallModel(), config);
  const auto queries = queriesFrom(data::generateTwoGaussians(32, 6, 4.0, 29));

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 250;
  std::atomic<std::uint64_t> ok{0}, shed{0}, timedOut{0}, stopped{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        switch (engine.score(queries[(p * kPerProducer + i) % queries.size()])
                    .code) {
          case ServeCode::Ok: ++ok; break;
          case ServeCode::Shed: ++shed; break;
          case ServeCode::Timeout: ++timedOut; break;
          case ServeCode::Stopped: ++stopped; break;
          case ServeCode::BadRequest: FAIL() << "valid width rejected"; break;
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  engine.drain();

  EXPECT_EQ(ok + shed + timedOut + stopped, kProducers * kPerProducer);
  EXPECT_GT(ok.load(), 0u);
  const ServeStats stats = engine.stats();
  EXPECT_EQ(stats.completed, ok.load());
  EXPECT_EQ(stats.shed, shed.load());
  EXPECT_EQ(stats.timedOut, timedOut.load());
  EXPECT_EQ(stats.submitted, ok.load() + timedOut.load());
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GE(stats.batchRowsMax, 1.0);
}

}  // namespace
}  // namespace casvm::serve
