// ModelSlot: generation numbering, pack pinning across publishes, and the
// feature-width compatibility contract that keeps admission validation
// race-free across hot-swaps.

#include "casvm/serve/model_slot.hpp"

#include <gtest/gtest.h>

#include "casvm/core/distributed_model.hpp"
#include "casvm/data/synth.hpp"
#include "casvm/solver/smo.hpp"
#include "casvm/support/error.hpp"

namespace casvm::serve {
namespace {

CompiledDistributedModel modelWithCols(std::size_t cols,
                                       std::uint64_t seed = 5) {
  const auto train = data::generateTwoGaussians(80, cols, 4.0, seed);
  solver::SolverOptions opts;
  opts.kernel = kernel::KernelParams::gaussian(0.4);
  return CompiledDistributedModel::compile(core::DistributedModel::single(
      solver::SmoSolver(opts).solve(train).model));
}

TEST(ModelSlotTest, InitialPackIsGenerationOne) {
  ModelSlot slot(modelWithCols(6));
  EXPECT_EQ(slot.generation(), 1u);
  EXPECT_EQ(slot.swaps(), 0u);
  EXPECT_EQ(slot.cols(), 6u);
  const auto pack = slot.acquire();
  ASSERT_NE(pack, nullptr);
  EXPECT_EQ(pack->generation, 1u);
  EXPECT_EQ(pack->model.cols(), 6u);
}

TEST(ModelSlotTest, PublishAdvancesGenerationAndSwaps) {
  ModelSlot slot(modelWithCols(6));
  EXPECT_EQ(slot.publish(modelWithCols(6, 7)), 2u);
  EXPECT_EQ(slot.publish(modelWithCols(6, 9)), 3u);
  EXPECT_EQ(slot.generation(), 3u);
  EXPECT_EQ(slot.swaps(), 2u);
}

// The RCU property: a pin taken before a publish keeps the retired pack
// alive and intact; a pin taken after sees the new generation.
TEST(ModelSlotTest, AcquiredPinSurvivesPublish) {
  ModelSlot slot(modelWithCols(6));
  const auto before = slot.acquire();
  const std::size_t svsBefore = before->model.totalSupportVectors();
  slot.publish(modelWithCols(6, 7));
  EXPECT_EQ(before->generation, 1u);
  EXPECT_EQ(before->model.totalSupportVectors(), svsBefore);
  const auto after = slot.acquire();
  EXPECT_EQ(after->generation, 2u);
  EXPECT_NE(before.get(), after.get());
}

TEST(ModelSlotTest, PublishRejectsMismatchedFeatureWidth) {
  ModelSlot slot(modelWithCols(6));
  EXPECT_THROW(slot.publish(modelWithCols(4)), Error);
  // The failed publish left the current pack untouched.
  EXPECT_EQ(slot.generation(), 1u);
  EXPECT_EQ(slot.swaps(), 0u);
}

// A width-0 pack (no support vectors anywhere) is compatible with any
// width; the slot adopts the width of the first non-empty pack.
TEST(ModelSlotTest, EmptySlotAdoptsFirstNonEmptyWidth) {
  ModelSlot slot((CompiledDistributedModel()));
  EXPECT_EQ(slot.cols(), 0u);
  EXPECT_EQ(slot.publish(modelWithCols(6)), 2u);
  EXPECT_EQ(slot.cols(), 6u);
  EXPECT_THROW(slot.publish(modelWithCols(4)), Error);
  EXPECT_EQ(slot.publish(modelWithCols(6, 11)), 3u);
}

}  // namespace
}  // namespace casvm::serve
