#include "casvm/perf/comm_model.hpp"

#include <gtest/gtest.h>

namespace casvm::perf {
namespace {

/// The paper's worked example (§IV-C1): ijcnn on 8 nodes with m = 48,000,
/// n = 13, s = 4,474 predicts Cascade volume ~8.4MB.
CommModelParams paperExample() {
  CommModelParams q;
  q.m = 48000;
  q.n = 13;
  q.s = 4474;
  q.I = 30297;
  q.k = 7;
  q.p = 8;
  return q;
}

TEST(CommModelTest, CascadeMatchesPaperWorkedExample) {
  const double bytes = predictedCommBytes(core::Method::Cascade,
                                          paperExample());
  EXPECT_NEAR(bytes / (1024.0 * 1024.0), 8.4, 0.3);
}

TEST(CommModelTest, DisSmoNearPaperPrediction) {
  // Paper predicts 36MB for Dis-SMO on the same run.
  const double bytes =
      predictedCommBytes(core::Method::DisSmo, paperExample());
  EXPECT_NEAR(bytes / (1024.0 * 1024.0), 36.0, 4.0);
}

TEST(CommModelTest, DcSvmNearPaperPrediction) {
  const double bytes = predictedCommBytes(core::Method::DcSvm, paperExample());
  EXPECT_NEAR(bytes / (1024.0 * 1024.0), 24.0, 3.0);
}

TEST(CommModelTest, DcFilterAndCpSvmNearPaperPredictions) {
  EXPECT_NEAR(predictedCommBytes(core::Method::DcFilter, paperExample()) /
                  (1024.0 * 1024.0),
              16.2, 2.0);
  EXPECT_NEAR(predictedCommBytes(core::Method::CpSvm, paperExample()) /
                  (1024.0 * 1024.0),
              15.6, 2.0);
}

TEST(CommModelTest, CaSvmIsExactlyZero) {
  EXPECT_EQ(predictedCommBytes(core::Method::RaCa, paperExample()), 0.0);
}

TEST(CommModelTest, PaperOrderingHolds) {
  // Table X ordering: Dis-SMO > DC-SVM > DC-Filter ~ CP-SVM > Cascade > 0.
  const auto q = paperExample();
  const double smo = predictedCommBytes(core::Method::DisSmo, q);
  const double dc = predictedCommBytes(core::Method::DcSvm, q);
  const double filter = predictedCommBytes(core::Method::DcFilter, q);
  const double cp = predictedCommBytes(core::Method::CpSvm, q);
  const double cascade = predictedCommBytes(core::Method::Cascade, q);
  EXPECT_GT(smo, dc);
  EXPECT_GT(dc, filter);
  EXPECT_GT(filter, cp * 0.99);
  EXPECT_GT(cp, cascade);
  EXPECT_GT(cascade, 0.0);
}

TEST(CommModelTest, VolumeGrowsWithProblemSize) {
  CommModelParams small = paperExample();
  CommModelParams big = small;
  big.m *= 2;
  big.I *= 2;
  big.s *= 2;
  for (core::Method m :
       {core::Method::DisSmo, core::Method::Cascade, core::Method::DcSvm,
        core::Method::DcFilter, core::Method::CpSvm}) {
    EXPECT_GT(predictedCommBytes(m, big), predictedCommBytes(m, small));
  }
}

TEST(CommModelTest, FormulasNonEmpty) {
  for (core::Method m : core::allMethods()) {
    EXPECT_STRNE(commFormula(m), "");
  }
  EXPECT_STREQ(commFormula(core::Method::RaCa), "0");
}

}  // namespace
}  // namespace casvm::perf
