#include <gtest/gtest.h>

#include "casvm/core/train.hpp"
#include "casvm/data/registry.hpp"
#include "casvm/perf/comm_model.hpp"

namespace casvm::perf {
namespace {

struct MeasuredRun {
  core::TrainResult result;
  CommModelParams params;
};

MeasuredRun trainAndMeasure(core::Method method) {
  static const data::NamedDataset nd = data::standin("ijcnn", 0.5);
  core::TrainConfig cfg;
  cfg.method = method;
  cfg.processes = 8;
  cfg.solver.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
  cfg.solver.C = nd.suggestedC;
  MeasuredRun run{core::train(nd.train, cfg), {}};
  run.params.m = static_cast<long long>(nd.train.rows());
  run.params.n = static_cast<long long>(nd.train.cols());
  run.params.s = static_cast<long long>(run.result.model.totalSupportVectors());
  run.params.I = run.result.totalIterations;
  run.params.k = static_cast<long long>(run.result.kmeansLoops);
  run.params.p = 8;
  return run;
}

/// The Table X closed forms must predict the byte-exact measured traffic
/// within an order of magnitude on a real run — the same validation the
/// paper performs (its predictions landed within ~5-20%; ours differ more
/// because our collectives and filtered layer sizes differ from the
/// formulas' assumptions, but a 10x envelope catches structural breakage).
class CommModelIntegrationTest : public ::testing::TestWithParam<core::Method> {};

TEST_P(CommModelIntegrationTest, PredictionWithinOrderOfMagnitude) {
  const MeasuredRun run = trainAndMeasure(GetParam());
  const double measured =
      static_cast<double>(run.result.runStats.traffic.totalBytes());
  const double predicted = predictedCommBytes(GetParam(), run.params);
  if (GetParam() == core::Method::RaCa) {
    EXPECT_EQ(measured, 0.0);
    EXPECT_EQ(predicted, 0.0);
    return;
  }
  ASSERT_GT(measured, 0.0);
  ASSERT_GT(predicted, 0.0);
  const double ratio = predicted / measured;
  EXPECT_GT(ratio, 0.1) << methodName(GetParam());
  EXPECT_LT(ratio, 12.0) << methodName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Methods, CommModelIntegrationTest,
    ::testing::Values(core::Method::DisSmo, core::Method::Cascade,
                      core::Method::DcSvm, core::Method::DcFilter,
                      core::Method::CpSvm, core::Method::RaCa),
    [](const ::testing::TestParamInfo<core::Method>& info) {
      std::string name = core::methodName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(TrafficDecompositionTest, InitPlusTrainEqualsTotal) {
  // The phase split must conserve bytes: init + train = whole run
  // (collection deposits are shared-memory and add nothing).
  for (core::Method method :
       {core::Method::DisSmo, core::Method::Cascade, core::Method::CpSvm,
        core::Method::RaCa}) {
    const MeasuredRun run = trainAndMeasure(method);
    EXPECT_EQ(run.result.initTraffic.totalBytes() +
                  run.result.trainTraffic.totalBytes(),
              run.result.runStats.traffic.totalBytes())
        << methodName(method);
    EXPECT_EQ(run.result.initTraffic.totalOps() +
                  run.result.trainTraffic.totalOps(),
              run.result.runStats.traffic.totalOps())
        << methodName(method);
  }
}

TEST(CommOrderingTest, MeasuredOrderingMatchesPaper) {
  // Paper Table X measured ordering: Dis-SMO > DC-SVM > DC-Filter >
  // CP-SVM (approx) > Cascade > CA-SVM = 0.
  const double smo =
      trainAndMeasure(core::Method::DisSmo).result.runStats.traffic.totalBytes();
  const double dc =
      trainAndMeasure(core::Method::DcSvm).result.runStats.traffic.totalBytes();
  const double filter = trainAndMeasure(core::Method::DcFilter)
                            .result.runStats.traffic.totalBytes();
  const double cascade = trainAndMeasure(core::Method::Cascade)
                             .result.runStats.traffic.totalBytes();
  const double ca =
      trainAndMeasure(core::Method::RaCa).result.runStats.traffic.totalBytes();
  EXPECT_GT(smo, dc);
  EXPECT_GT(dc, filter);
  EXPECT_GT(filter, cascade);
  EXPECT_EQ(ca, 0.0);
}

}  // namespace
}  // namespace casvm::perf
