#include "casvm/perf/isoefficiency.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "casvm/support/error.hpp"

namespace casvm::perf {
namespace {

double growthExponent(ScalingMethod method, int pLo, int pHi) {
  const IsoParams params;
  const double wLo = isoefficiencyW(method, pLo, params);
  const double wHi = isoefficiencyW(method, pHi, params);
  return std::log(wHi / wLo) / std::log(double(pHi) / pLo);
}

TEST(IsoefficiencyTest, FormulasMatchTableIV) {
  EXPECT_EQ(isoefficiencyFormula(ScalingMethod::MatVec1D), "W = Omega(P^2)");
  EXPECT_EQ(isoefficiencyFormula(ScalingMethod::MatVec2D), "W = Omega(P)");
  EXPECT_EQ(isoefficiencyFormula(ScalingMethod::DisSmo), "W = Omega(P^3)");
  EXPECT_EQ(isoefficiencyFormula(ScalingMethod::Cascade), "W = Omega(P^3)");
  EXPECT_EQ(isoefficiencyFormula(ScalingMethod::DcSvm), "W = Omega(P^3)");
  EXPECT_EQ(isoefficiencyFormula(ScalingMethod::CaSvm), "W = Omega(P)");
}

TEST(IsoefficiencyTest, DisSmoGrowsCubically) {
  const double e = growthExponent(ScalingMethod::DisSmo, 256, 4096);
  EXPECT_GT(e, 2.5);
  EXPECT_LT(e, 3.3);
}

TEST(IsoefficiencyTest, CaSvmGrowsLinearly) {
  const double e = growthExponent(ScalingMethod::CaSvm, 256, 4096);
  EXPECT_NEAR(e, 1.0, 0.2);
}

TEST(IsoefficiencyTest, MatVecReferencesBracketTheMethods) {
  const double e1d = growthExponent(ScalingMethod::MatVec1D, 256, 4096);
  const double e2d = growthExponent(ScalingMethod::MatVec2D, 256, 4096);
  EXPECT_GT(e1d, 1.6);
  EXPECT_LT(e2d, 1.7);
  EXPECT_LT(e2d, e1d);
}

TEST(IsoefficiencyTest, SmoWorseThan1DMatVec) {
  // The paper's §III-A punchline: the SVM methods scale worse than even a
  // 1-D matvec.
  const IsoParams params;
  for (int p : {512, 1024, 2048}) {
    EXPECT_GT(isoefficiencyW(ScalingMethod::DisSmo, p, params),
              isoefficiencyW(ScalingMethod::MatVec1D, p, params));
  }
}

TEST(IsoefficiencyTest, CaSvmCanUseFarMoreProcessors) {
  // At a fixed W, find the largest P each method sustains: CA-SVM's should
  // be much larger than Dis-SMO's.
  const IsoParams params;
  const double budget = isoefficiencyW(ScalingMethod::DisSmo, 64, params);
  int pCa = 64;
  while (isoefficiencyW(ScalingMethod::CaSvm, pCa * 2, params) <= budget &&
         pCa < (1 << 24)) {
    pCa *= 2;
  }
  EXPECT_GE(pCa, 64 * 16);
}

TEST(IsoefficiencyTest, MonotoneInP) {
  const IsoParams params;
  for (ScalingMethod method :
       {ScalingMethod::MatVec1D, ScalingMethod::MatVec2D,
        ScalingMethod::DisSmo, ScalingMethod::Cascade, ScalingMethod::DcSvm,
        ScalingMethod::CaSvm}) {
    double prev = 0.0;
    for (int p : {64, 128, 256, 512}) {
      const double w = isoefficiencyW(method, p, params);
      EXPECT_GT(w, prev);
      prev = w;
    }
  }
}

TEST(IsoefficiencyTest, HigherEfficiencyNeedsBiggerProblem) {
  IsoParams lo, hi;
  lo.efficiency = 0.3;
  hi.efficiency = 0.8;
  EXPECT_LT(isoefficiencyW(ScalingMethod::DisSmo, 512, lo),
            isoefficiencyW(ScalingMethod::DisSmo, 512, hi));
}

TEST(IsoefficiencyTest, InvalidEfficiencyThrows) {
  IsoParams params;
  params.efficiency = 1.0;
  EXPECT_THROW((void)isoefficiencyW(ScalingMethod::CaSvm, 8, params), Error);
  params.efficiency = 0.0;
  EXPECT_THROW((void)isoefficiencyW(ScalingMethod::CaSvm, 8, params), Error);
}

}  // namespace
}  // namespace casvm::perf
