#include "casvm/perf/scaling_sim.hpp"

#include <gtest/gtest.h>

#include "casvm/data/registry.hpp"
#include "casvm/support/error.hpp"

namespace casvm::perf {
namespace {

const ScalingCalibration& cal() {
  static const ScalingCalibration c = [] {
    const auto nd = data::standin("toy");
    solver::SolverOptions opts;
    opts.kernel = kernel::KernelParams::gaussian(nd.suggestedGamma);
    opts.C = nd.suggestedC;
    return calibrate(nd.train, opts, {300, 600, 1200});
  }();
  return c;
}

TEST(CalibrateTest, ProducesPlausibleConstants) {
  EXPECT_GT(cal().itersPerSample, 0.0);
  EXPECT_LT(cal().itersPerSample, 10.0);
  EXPECT_GT(cal().secPerIterRow, 0.0);
  EXPECT_LT(cal().secPerIterRow, 1e-3);
  EXPECT_GT(cal().svFraction, 0.0);
  EXPECT_LE(cal().svFraction, 1.0);
  EXPECT_GE(cal().kmeansLoops, 1.0);
  EXPECT_GE(cal().cpImbalance, 1.0);
}

TEST(CalibrateTest, RejectsBadInputs) {
  const auto nd = data::standin("toy", 0.1);
  solver::SolverOptions opts;
  EXPECT_THROW((void)calibrate(nd.train, opts, {}), Error);
  EXPECT_THROW((void)calibrate(nd.train, opts, {nd.train.rows() + 10}),
               Error);
}

TEST(ScalingSimTest, CaSvmStrongScalingSuperlinear) {
  // Doubling P better than halves CA-SVM's time: both the iteration count
  // and per-iteration cost shrink with m/P (Table XX's >100% efficiency).
  const long long m = 128000;
  double prev = modeledTrainTime(core::Method::RaCa, cal(), m, 96).total();
  for (int p : {192, 384, 768, 1536}) {
    const double t = modeledTrainTime(core::Method::RaCa, cal(), m, p).total();
    EXPECT_LT(t, prev / 2.0) << p;
    prev = t;
  }
}

TEST(ScalingSimTest, CaSvmWeakScalingFlat) {
  // 2k samples per node: time nearly constant from 96 to 1536 (Table XXII's
  // 95.3% efficiency).
  const double t96 =
      modeledTrainTime(core::Method::RaCa, cal(), 2000 * 96, 96).total();
  const double t1536 =
      modeledTrainTime(core::Method::RaCa, cal(), 2000 * 1536, 1536).total();
  EXPECT_NEAR(t1536 / t96, 1.0, 0.1);
}

TEST(ScalingSimTest, DisSmoWeakScalingDegradesLinearly) {
  const double t96 =
      modeledTrainTime(core::Method::DisSmo, cal(), 2000 * 96, 96).total();
  const double t1536 =
      modeledTrainTime(core::Method::DisSmo, cal(), 2000 * 1536, 1536)
          .total();
  const double ratio = t1536 / t96;
  EXPECT_GT(ratio, 8.0);   // paper: ~12.7x
  EXPECT_LT(ratio, 40.0);
}

TEST(ScalingSimTest, DcSvmWeakScalingCollapses) {
  // The final layer retrains on all m = 2000 P samples: ~P^2 growth
  // (paper: 17.8s -> 3547s, a 200x degradation over 16x processes).
  const double t96 =
      modeledTrainTime(core::Method::DcSvm, cal(), 2000 * 96, 96).total();
  const double t1536 =
      modeledTrainTime(core::Method::DcSvm, cal(), 2000 * 1536, 1536).total();
  EXPECT_GT(t1536 / t96, 50.0);
}

TEST(ScalingSimTest, CaSvmFastestAtScaleStrong) {
  const long long m = 128000;
  const double ca =
      modeledTrainTime(core::Method::RaCa, cal(), m, 1536).total();
  for (core::Method method :
       {core::Method::DisSmo, core::Method::DcSvm, core::Method::DcFilter,
        core::Method::CpSvm}) {
    EXPECT_GT(modeledTrainTime(method, cal(), m, 1536).total(), ca);
  }
}

TEST(ScalingSimTest, CaSvmHasZeroCommTime) {
  const ModeledTime t = modeledTrainTime(core::Method::RaCa, cal(), 64000, 64);
  EXPECT_EQ(t.comm, 0.0);
  EXPECT_GT(t.compute, 0.0);
}

TEST(ScalingSimTest, DisSmoCommGrowsWithP) {
  const long long m = 128000;
  const double c96 = modeledTrainTime(core::Method::DisSmo, cal(), m, 96).comm;
  const double c1536 =
      modeledTrainTime(core::Method::DisSmo, cal(), m, 1536).comm;
  EXPECT_GT(c1536, c96);
}

TEST(ScalingSimTest, CpSlowerThanBalancedCa) {
  // CP-SVM's largest K-means part dominates; BKM-CA's parts are even.
  const long long m = 64000;
  EXPECT_GE(modeledTrainTime(core::Method::CpSvm, cal(), m, 64).compute,
            modeledTrainTime(core::Method::BkmCa, cal(), m, 64).compute);
}

TEST(ScalingSimTest, InvalidArgsThrow) {
  EXPECT_THROW((void)modeledTrainTime(core::Method::RaCa, cal(), 10, 0),
               Error);
  EXPECT_THROW((void)modeledTrainTime(core::Method::RaCa, cal(), 4, 8),
               Error);
}

}  // namespace
}  // namespace casvm::perf
