#pragma once

// Shared option parsing for the casvm command-line tools.

#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "casvm/net/fault.hpp"

namespace casvm::cli {

/// Minimal "--flag value" / "--switch" parser with typed getters.
class Args {
 public:
  Args(int argc, char** argv, const std::vector<std::string>& switches = {}) {
    for (int i = 1; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        positional_.push_back(std::move(key));
        continue;
      }
      key = key.substr(2);
      const bool isSwitch =
          std::find(switches.begin(), switches.end(), key) != switches.end();
      if (isSwitch || i + 1 >= argc) {
        values_[key] = "1";
      } else {
        values_[key] = argv[++i];
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  double getDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  long long getInt(const std::string& key, long long fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

[[noreturn]] inline void usage(const char* text) {
  std::fputs(text, stderr);
  std::exit(2);
}

/// Build the fault schedule from the shared --fault-spec / --fault-seed
/// flags (empty plan when --fault-spec is absent). Parse errors surface as
/// casvm::Error with the offending clause.
inline net::FaultPlan faultPlanFromArgs(const Args& args) {
  return net::FaultPlan::parse(
      args.get("fault-spec", ""),
      static_cast<std::uint64_t>(args.getInt("fault-seed", 0)));
}

}  // namespace casvm::cli
