// casvm-train: train a distributed SVM from the command line.
//
//   casvm-train --data train.libsvm --method ra-ca --procs 8
//               --gamma 0.5 --C 1 --out model.bin
//   casvm-train --standin ijcnn --method cp-svm --out model.bin
//
// Any registered method can be selected — the paper's eight plus the two
// middle-ground global methods (dis-smo-shrink, pbm); the model file is
// the DistributedModel serialization readable by casvm-predict.

#include <cstdio>
#include <limits>
#include <optional>

#include "casvm/ckpt/store.hpp"
#include "casvm/core/train.hpp"
#include "casvm/data/io.hpp"
#include "casvm/data/registry.hpp"
#include "casvm/obs/metrics.hpp"
#include "casvm/obs/trace.hpp"
#include "casvm/support/table.hpp"
#include "cli_common.hpp"

namespace {

constexpr const char* kUsage = R"(usage: casvm-train [options]
  --data <file>        LIBSVM training file (or --standin)
  --standin <name>     built-in synthetic dataset (adult, epsilon, face,
                       gisette, ijcnn, usps, webspam, forest, toy)
  --scale <f>          stand-in scale factor (default 1.0)
  --samples <m>        exact stand-in sample count via the chunked
                       generator (overrides --scale; million-sample safe)
  --method <name>      dis-smo | dis-smo-shrink | pbm | cascade | dc-svm |
                       dc-filter | cp-svm | bkm-ca | fcfs-ca | ra-ca
                       (default ra-ca)
  --procs <P>          simulated ranks (default 8)
  --kernel <name>      linear | polynomial | gaussian | sigmoid
  --gamma <g>          Gaussian gamma (default 1/features)
  --degree <d>         polynomial degree (default 3)
  --coef0 <r>          polynomial/sigmoid offset (default 0)
  --C <c>              regularization (default 1.0)
  --w-pos / --w-neg    per-class C weights (default 1.0)
  --tolerance <t>      KKT tolerance (default 1e-3)
  --shrinking          enable shrinking in the sub-solver
  --shrink-interval <n> iterations between shrink passes (serial shrinking
                       and dis-smo-shrink; default 1000)
  --dis-shrink         shorthand for --method dis-smo-shrink
  --backend <name>     exact | nystrom: kernel the sub-solvers train
                       against (default exact; nystrom trains on the
                       low-rank K ~ Z Z^T, prediction stays exact)
  --landmarks <L>      Nystrom landmarks per factor (default 64)
  --landmark-strategy <s> uniform | kmeans++ (default kmeans++)
  --cascade-passes <n> Cascade feedback passes (default 1)
  --pbm-rounds <n>     PBM outer block-solve rounds (default 8)
  --pbm-pair-iters <n> PBM pair corrections per round (default 256)
  --seed <s>           RNG seed (default 42)
  --fault-spec <s>     injected fault schedule, e.g.
                       "crash:rank=2,phase=train;slow:rank=1,factor=4"
                       (partitioned methods degrade, others fail fast);
                       kill:/hang: clauses deliver real SIGKILL/SIGSTOP
                       and need --transport proc
  --fault-seed <s>     seed for probabilistic fault clauses (default 0)
  --checkpoint-dir <d> persist training state into <d> (crash-consistent,
                       CRC-guarded); enables --resume and --rank-retries
  --checkpoint-every <n> solver snapshot cadence in iterations (default 4096)
  --resume             restart from the newest consistent checkpoints in
                       --checkpoint-dir (bitwise-identical final model)
  --rank-retries <n>   in-run retry budget per crashed rank before the
                       degraded path (partitioned methods; default 0).
                       Under --transport proc this is also the respawn
                       budget for killed worker processes
  --transport <name>   thread | proc: rank delivery backend (default
                       thread). proc forks one worker process per rank
                       over shared-memory rings, with per-rank heartbeats
                       and supervised respawn
  --heartbeat-ms <n>   proc worker heartbeat cadence (default 50; a rank
                       is declared hung past 10x this, floor 500ms)
  --comm-timeout-ms <n> proc bounded-receive timeout (default 30000)
  --respawn-backoff-ms <n> base respawn delay, doubled per attempt
                       (default 50)
  --supervisor-log <f> append proc supervisor lifecycle events to <f>
  --trace <file>       write a Chrome trace (chrome://tracing) of the run
                       (flushed even when the run aborts)
  --metrics-json <file> write per-rank/per-phase metrics as JSON
  --out <file>         model output path (default casvm.model)
)";

/// Per-rank and per-phase rollup combining the engine's virtual clocks
/// with the trace recorder's span data and the phase traffic deltas.
casvm::obs::MetricsReport buildMetrics(const casvm::core::TrainResult& res,
                                       const casvm::obs::TraceRecorder& rec) {
  using namespace casvm;
  obs::MetricsReport report;
  report.ranks = res.runStats.size;
  report.wallSeconds = res.wallSeconds;
  report.traceEvents = rec.eventCount();
  for (int r = 0; r < res.runStats.size; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    obs::RankMetrics rm;
    rm.rank = r;
    rm.computeSeconds = res.runStats.computeSeconds[ur];
    rm.commSeconds = res.runStats.commSeconds[ur];
    rm.waitSeconds =
        ur < res.runStats.waitSeconds.size() ? res.runStats.waitSeconds[ur]
                                             : 0.0;
    rm.traceCommSeconds = rec.commSeconds(r);
    rm.commSpans = rec.spanCount(r, obs::Cat::Comm);
    report.perRank.push_back(rm);
  }
  report.phases.push_back(obs::PhaseTraffic{
      "init", res.initTraffic.totalBytes(), res.initTraffic.totalOps()});
  report.phases.push_back(obs::PhaseTraffic{
      "train", res.trainTraffic.totalBytes(), res.trainTraffic.totalOps()});
  report.recovery.degraded = res.degraded;
  report.recovery.resumed = res.resumed;
  report.recovery.checkpointsLoaded = res.checkpointsLoaded;
  report.recovery.failedRanks = res.failedRanks;
  report.recovery.recoveredRanks = res.recoveredRanks;
  report.recovery.retriesPerRank = res.retriesPerRank;
  return report;
}

/// Flush the partial trace to disk before the process unwinds: a watchdog
/// abort or an unwound collective must still leave the evidence of what
/// every rank was doing on disk, or the trace is useless exactly when it
/// is most needed.
void flushTraceOnFailure(const casvm::obs::TraceRecorder* recorder,
                         const casvm::cli::Args& args) {
  if (recorder == nullptr || !args.has("trace")) return;
  const std::string path = args.get("trace", "trace.json");
  try {
    recorder->writeChromeTrace(path);
    std::fprintf(stderr, "casvm-train: partial trace flushed to %s\n",
                 path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "casvm-train: trace flush failed: %s\n", e.what());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace casvm;
  const cli::Args args(argc, argv,
                       {"shrinking", "dis-shrink", "help", "resume"});
  if (args.has("help") || argc == 1) cli::usage(kUsage);

  try {
    data::Dataset train;
    data::Dataset test;
    double defaultGamma = 0.0;
    if (args.has("data")) {
      train = data::readLibsvmFile(args.get("data", ""));
      defaultGamma = 1.0 / static_cast<double>(train.cols());
    } else if (args.has("standin")) {
      const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 42));
      const data::NamedDataset nd =
          args.has("samples")
              ? data::standinSized(
                    args.get("standin", "toy"),
                    static_cast<std::size_t>(args.getInt("samples", 4000)),
                    seed)
              : data::standin(args.get("standin", "toy"),
                              args.getDouble("scale", 1.0), seed);
      train = nd.train;
      test = nd.test;
      defaultGamma = nd.suggestedGamma;
    } else {
      cli::usage(kUsage);
    }

    core::TrainConfig cfg;
    cfg.method = args.has("dis-shrink")
                     ? core::Method::DisSmoShrink
                     : core::methodFromName(args.get("method", "ra-ca"));
    cfg.processes = static_cast<int>(args.getInt("procs", 8));
    cfg.seed = static_cast<std::uint64_t>(args.getInt("seed", 42));
    cfg.cascadePasses = static_cast<int>(args.getInt("cascade-passes", 1));
    cfg.pbmRounds = static_cast<int>(args.getInt("pbm-rounds", cfg.pbmRounds));
    cfg.pbmPairIterations = static_cast<int>(
        args.getInt("pbm-pair-iters", cfg.pbmPairIterations));
    cfg.solverBackend = core::backendFromName(args.get("backend", "exact"));
    cfg.nystromLandmarks = static_cast<std::size_t>(
        args.getInt("landmarks",
                    static_cast<long long>(cfg.nystromLandmarks)));
    cfg.nystromStrategy = lowrank::strategyFromName(
        args.get("landmark-strategy", "kmeans++"));
    cfg.faults = cli::faultPlanFromArgs(args);

    const std::string kernelName = args.get("kernel", "gaussian");
    const double gamma = args.getDouble("gamma", defaultGamma);
    if (kernelName == "linear") {
      cfg.solver.kernel = kernel::KernelParams::linear();
    } else if (kernelName == "polynomial") {
      cfg.solver.kernel = kernel::KernelParams::polynomial(
          gamma, args.getDouble("coef0", 0.0),
          static_cast<int>(args.getInt("degree", 3)));
    } else if (kernelName == "sigmoid") {
      cfg.solver.kernel = kernel::KernelParams::sigmoid(
          gamma, args.getDouble("coef0", 0.0));
    } else {
      cfg.solver.kernel = kernel::KernelParams::gaussian(gamma);
    }
    cfg.solver.C = args.getDouble("C", 1.0);
    cfg.solver.positiveWeight = args.getDouble("w-pos", 1.0);
    cfg.solver.negativeWeight = args.getDouble("w-neg", 1.0);
    cfg.solver.tolerance = args.getDouble("tolerance", 1e-3);
    cfg.solver.shrinking = args.has("shrinking");
    cfg.solver.shrinkInterval = static_cast<std::size_t>(
        args.getInt("shrink-interval",
                    static_cast<long long>(cfg.solver.shrinkInterval)));

    std::optional<ckpt::CheckpointStore> store;
    if (args.has("checkpoint-dir")) {
      store.emplace(args.get("checkpoint-dir", "casvm-ckpt"));
      cfg.checkpoints = &*store;
      cfg.checkpointEvery =
          static_cast<std::size_t>(args.getInt("checkpoint-every", 4096));
      cfg.resume = args.has("resume");
    } else if (args.has("resume")) {
      std::fprintf(stderr, "casvm-train: --resume needs --checkpoint-dir\n");
      return 1;
    }
    // Retries work without a store too — each attempt just re-solves from
    // scratch instead of resuming from a snapshot.
    cfg.rankRetries = static_cast<int>(args.getInt("rank-retries", 0));

    const std::string transportName = args.get("transport", "thread");
    if (transportName == "proc") {
      cfg.transport = net::TransportKind::Proc;
    } else if (transportName != "thread") {
      throw Error("unknown transport '" + transportName +
                  "' (expected thread|proc)");
    }
    // Bounds-check before narrowing so a hostile 64-bit value cannot wrap
    // into a plausible tuning number; validate() then enforces the real
    // operational ranges with named errors.
    const auto tuningMs = [&](const char* name, int fallback) {
      const long long v = args.getInt(name, fallback);
      if (v < std::numeric_limits<int>::min() ||
          v > std::numeric_limits<int>::max()) {
        throw Error(std::string("--") + name + " value " + std::to_string(v) +
                    " is out of range");
      }
      return static_cast<int>(v);
    };
    cfg.transportTuning.heartbeatMs =
        tuningMs("heartbeat-ms", cfg.transportTuning.heartbeatMs);
    cfg.transportTuning.commTimeoutMs =
        tuningMs("comm-timeout-ms", cfg.transportTuning.commTimeoutMs);
    cfg.transportTuning.respawnBackoffMs =
        tuningMs("respawn-backoff-ms", cfg.transportTuning.respawnBackoffMs);
    cfg.transportTuning.validate();
    cfg.supervisorLog = args.get("supervisor-log", "");

    std::optional<obs::TraceRecorder> recorder;
    if (args.has("trace") || args.has("metrics-json")) {
      recorder.emplace();
      cfg.trace = &*recorder;
    }

    std::printf("training: %zu samples x %zu features, method %s, P=%d\n",
                train.rows(), train.cols(),
                core::methodName(cfg.method).c_str(), cfg.processes);
    if (cfg.solverBackend == core::SolverBackend::Nystrom) {
      std::printf("backend: nystrom (%zu landmarks per factor, %s)\n",
                  cfg.nystromLandmarks,
                  lowrank::strategyName(cfg.nystromStrategy).c_str());
    }
    std::optional<core::TrainResult> trained;
    try {
      trained = core::train(train, cfg);
    } catch (...) {
      // The run is unwinding (watchdog abort, unwound collective, injected
      // crash past tolerance): flush the partial trace before teardown.
      flushTraceOnFailure(recorder ? &*recorder : nullptr, args);
      throw;
    }
    const core::TrainResult& res = *trained;

    if (res.resumed && res.checkpointsLoaded > 0) {
      std::printf("resumed: %zu checkpoint artifact(s) restored from %s\n",
                  res.checkpointsLoaded,
                  args.get("checkpoint-dir", "casvm-ckpt").c_str());
    }
    if (!res.recoveredRanks.empty()) {
      std::string ranks;
      for (int r : res.recoveredRanks) {
        if (!ranks.empty()) ranks += ", ";
        ranks += std::to_string(r);
      }
      std::printf("recovered: rank(s) %s crashed and were retried back to "
                  "full coverage\n",
                  ranks.c_str());
    }
    if (res.degraded) {
      std::string ranks;
      for (int r : res.failedRanks) {
        if (!ranks.empty()) ranks += ", ";
        ranks += std::to_string(r);
      }
      std::printf(
          "degraded run: rank(s) %s crashed; %zu of %d partitions survived "
          "(%.1f%% of training data covered)\n",
          ranks.c_str(), res.model.numModels(), cfg.processes,
          100.0 * res.coveredFraction);
    }
    std::printf("iterations: %lld (critical path %lld)\n",
                res.totalIterations, res.criticalIterations);
    std::printf("time: init %.3fs + train %.3fs (virtual), wall %.3fs\n",
                res.initSeconds, res.trainSeconds, res.wallSeconds);
    std::printf("communication: %s in %s messages\n",
                TablePrinter::fmtBytes(
                    static_cast<double>(res.runStats.traffic.totalBytes()))
                    .c_str(),
                TablePrinter::fmtCount(
                    static_cast<long long>(res.runStats.traffic.totalOps()))
                    .c_str());
    std::printf("support vectors: %zu across %zu sub-models\n",
                res.model.totalSupportVectors(), res.model.numModels());
    if (!test.empty()) {
      std::printf("held-out accuracy: %.2f%%\n",
                  100.0 * res.model.accuracy(test));
    }

    if (recorder) {
      if (args.has("trace")) {
        const std::string path = args.get("trace", "trace.json");
        recorder->writeChromeTrace(path);
        std::printf("trace written to %s (%zu events; open in "
                    "chrome://tracing)\n",
                    path.c_str(), recorder->eventCount());
      }
      if (args.has("metrics-json")) {
        const std::string path = args.get("metrics-json", "metrics.json");
        buildMetrics(res, *recorder).writeFile(path);
        std::printf("metrics written to %s\n", path.c_str());
      }
    }

    const std::string out = args.get("out", "casvm.model");
    res.model.save(out);
    std::printf("model written to %s\n", out.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "casvm-train: %s\n", e.what());
    return 1;
  }
}
