// casvm-train: train a distributed SVM from the command line.
//
//   casvm-train --data train.libsvm --method ra-ca --procs 8
//               --gamma 0.5 --C 1 --out model.bin
//   casvm-train --standin ijcnn --method cp-svm --out model.bin
//
// Any of the paper's eight methods can be selected; the model file is the
// DistributedModel serialization readable by casvm-predict.

#include <cstdio>
#include <optional>

#include "casvm/core/train.hpp"
#include "casvm/data/io.hpp"
#include "casvm/data/registry.hpp"
#include "casvm/obs/metrics.hpp"
#include "casvm/obs/trace.hpp"
#include "casvm/support/table.hpp"
#include "cli_common.hpp"

namespace {

constexpr const char* kUsage = R"(usage: casvm-train [options]
  --data <file>        LIBSVM training file (or --standin)
  --standin <name>     built-in synthetic dataset (adult, epsilon, face,
                       gisette, ijcnn, usps, webspam, forest, toy)
  --scale <f>          stand-in scale factor (default 1.0)
  --method <name>      dis-smo | cascade | dc-svm | dc-filter | cp-svm |
                       bkm-ca | fcfs-ca | ra-ca (default ra-ca)
  --procs <P>          simulated ranks (default 8)
  --kernel <name>      linear | polynomial | gaussian | sigmoid
  --gamma <g>          Gaussian gamma (default 1/features)
  --degree <d>         polynomial degree (default 3)
  --coef0 <r>          polynomial/sigmoid offset (default 0)
  --C <c>              regularization (default 1.0)
  --w-pos / --w-neg    per-class C weights (default 1.0)
  --tolerance <t>      KKT tolerance (default 1e-3)
  --shrinking          enable shrinking in the sub-solver
  --cascade-passes <n> Cascade feedback passes (default 1)
  --seed <s>           RNG seed (default 42)
  --fault-spec <s>     injected fault schedule, e.g.
                       "crash:rank=2,phase=train;slow:rank=1,factor=4"
                       (partitioned methods degrade, others fail fast)
  --fault-seed <s>     seed for probabilistic fault clauses (default 0)
  --trace <file>       write a Chrome trace (chrome://tracing) of the run
  --metrics-json <file> write per-rank/per-phase metrics as JSON
  --out <file>         model output path (default casvm.model)
)";

/// Per-rank and per-phase rollup combining the engine's virtual clocks
/// with the trace recorder's span data and the phase traffic deltas.
casvm::obs::MetricsReport buildMetrics(const casvm::core::TrainResult& res,
                                       const casvm::obs::TraceRecorder& rec) {
  using namespace casvm;
  obs::MetricsReport report;
  report.ranks = res.runStats.size;
  report.wallSeconds = res.wallSeconds;
  report.traceEvents = rec.eventCount();
  for (int r = 0; r < res.runStats.size; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    obs::RankMetrics rm;
    rm.rank = r;
    rm.computeSeconds = res.runStats.computeSeconds[ur];
    rm.commSeconds = res.runStats.commSeconds[ur];
    rm.waitSeconds =
        ur < res.runStats.waitSeconds.size() ? res.runStats.waitSeconds[ur]
                                             : 0.0;
    rm.traceCommSeconds = rec.commSeconds(r);
    rm.commSpans = rec.spanCount(r, obs::Cat::Comm);
    report.perRank.push_back(rm);
  }
  report.phases.push_back(obs::PhaseTraffic{
      "init", res.initTraffic.totalBytes(), res.initTraffic.totalOps()});
  report.phases.push_back(obs::PhaseTraffic{
      "train", res.trainTraffic.totalBytes(), res.trainTraffic.totalOps()});
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace casvm;
  const cli::Args args(argc, argv, {"shrinking", "help"});
  if (args.has("help") || argc == 1) cli::usage(kUsage);

  try {
    data::Dataset train;
    data::Dataset test;
    double defaultGamma = 0.0;
    if (args.has("data")) {
      train = data::readLibsvmFile(args.get("data", ""));
      defaultGamma = 1.0 / static_cast<double>(train.cols());
    } else if (args.has("standin")) {
      const data::NamedDataset nd = data::standin(
          args.get("standin", "toy"), args.getDouble("scale", 1.0),
          static_cast<std::uint64_t>(args.getInt("seed", 42)));
      train = nd.train;
      test = nd.test;
      defaultGamma = nd.suggestedGamma;
    } else {
      cli::usage(kUsage);
    }

    core::TrainConfig cfg;
    cfg.method = core::methodFromName(args.get("method", "ra-ca"));
    cfg.processes = static_cast<int>(args.getInt("procs", 8));
    cfg.seed = static_cast<std::uint64_t>(args.getInt("seed", 42));
    cfg.cascadePasses = static_cast<int>(args.getInt("cascade-passes", 1));
    cfg.faults = cli::faultPlanFromArgs(args);

    const std::string kernelName = args.get("kernel", "gaussian");
    const double gamma = args.getDouble("gamma", defaultGamma);
    if (kernelName == "linear") {
      cfg.solver.kernel = kernel::KernelParams::linear();
    } else if (kernelName == "polynomial") {
      cfg.solver.kernel = kernel::KernelParams::polynomial(
          gamma, args.getDouble("coef0", 0.0),
          static_cast<int>(args.getInt("degree", 3)));
    } else if (kernelName == "sigmoid") {
      cfg.solver.kernel = kernel::KernelParams::sigmoid(
          gamma, args.getDouble("coef0", 0.0));
    } else {
      cfg.solver.kernel = kernel::KernelParams::gaussian(gamma);
    }
    cfg.solver.C = args.getDouble("C", 1.0);
    cfg.solver.positiveWeight = args.getDouble("w-pos", 1.0);
    cfg.solver.negativeWeight = args.getDouble("w-neg", 1.0);
    cfg.solver.tolerance = args.getDouble("tolerance", 1e-3);
    cfg.solver.shrinking = args.has("shrinking");

    std::optional<obs::TraceRecorder> recorder;
    if (args.has("trace") || args.has("metrics-json")) {
      recorder.emplace();
      cfg.trace = &*recorder;
    }

    std::printf("training: %zu samples x %zu features, method %s, P=%d\n",
                train.rows(), train.cols(),
                core::methodName(cfg.method).c_str(), cfg.processes);
    const core::TrainResult res = core::train(train, cfg);

    if (res.degraded) {
      std::string ranks;
      for (int r : res.failedRanks) {
        if (!ranks.empty()) ranks += ", ";
        ranks += std::to_string(r);
      }
      std::printf(
          "degraded run: rank(s) %s crashed; %zu of %d partitions survived "
          "(%.1f%% of training data covered)\n",
          ranks.c_str(), res.model.numModels(), cfg.processes,
          100.0 * res.coveredFraction);
    }
    std::printf("iterations: %lld (critical path %lld)\n",
                res.totalIterations, res.criticalIterations);
    std::printf("time: init %.3fs + train %.3fs (virtual), wall %.3fs\n",
                res.initSeconds, res.trainSeconds, res.wallSeconds);
    std::printf("communication: %s in %s messages\n",
                TablePrinter::fmtBytes(
                    static_cast<double>(res.runStats.traffic.totalBytes()))
                    .c_str(),
                TablePrinter::fmtCount(
                    static_cast<long long>(res.runStats.traffic.totalOps()))
                    .c_str());
    std::printf("support vectors: %zu across %zu sub-models\n",
                res.model.totalSupportVectors(), res.model.numModels());
    if (!test.empty()) {
      std::printf("held-out accuracy: %.2f%%\n",
                  100.0 * res.model.accuracy(test));
    }

    if (recorder) {
      if (args.has("trace")) {
        const std::string path = args.get("trace", "trace.json");
        recorder->writeChromeTrace(path);
        std::printf("trace written to %s (%zu events; open in "
                    "chrome://tracing)\n",
                    path.c_str(), recorder->eventCount());
      }
      if (args.has("metrics-json")) {
        const std::string path = args.get("metrics-json", "metrics.json");
        buildMetrics(res, *recorder).writeFile(path);
        std::printf("metrics written to %s\n", path.c_str());
      }
    }

    const std::string out = args.get("out", "casvm.model");
    res.model.save(out);
    std::printf("model written to %s\n", out.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "casvm-train: %s\n", e.what());
    return 1;
  }
}
